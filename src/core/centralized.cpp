#include "core/centralized.hpp"

#include <limits>

namespace aria::proto {

AriaNode* CentralizedMetaScheduler::best_node_for(const grid::JobSpec& job,
                                                  double* cost_out) const {
  AriaNode* best = nullptr;
  double best_cost = std::numeric_limits<double>::infinity();
  for (AriaNode* n : nodes_) {
    if (!n->can_bid(job)) continue;
    const double c = n->quote(job);
    if (c < best_cost) {
      best_cost = c;
      best = n;
    }
  }
  if (cost_out != nullptr) *cost_out = best_cost;
  return best;
}

bool CentralizedMetaScheduler::submit(const grid::JobSpec& job,
                                      NodeId submitted_to) {
  if (observer_ != nullptr) {
    observer_->on_submitted(job, submitted_to, sim_.now());
  }
  AriaNode* best = best_node_for(job, nullptr);
  if (best == nullptr) {
    if (observer_ != nullptr) observer_->on_unschedulable(job.id, sim_.now());
    return false;
  }
  best->deliver_assignment(job, submitted_to, /*reschedule=*/false);
  return true;
}

std::size_t CentralizedMetaScheduler::rebalance(double threshold_seconds) {
  std::size_t moved = 0;
  for (AriaNode* holder : nodes_) {
    // Snapshot: moving jobs mutates the queue being iterated.
    std::vector<grid::JobSpec> waiting;
    for (const auto& q : holder->scheduler().queue()) waiting.push_back(q.spec);
    for (const grid::JobSpec& spec : waiting) {
      const double current = holder->scheduler().current_cost(
          spec.id, holder->running_remaining(), sim_.now());
      double best_cost = 0.0;
      AriaNode* best = best_node_for(spec, &best_cost);
      if (best == nullptr || best == holder) continue;
      if (!(best_cost < current - threshold_seconds)) continue;
      if (!holder->remove_queued(spec.id)) continue;  // started meanwhile
      best->deliver_assignment(spec, kInvalidNode, /*reschedule=*/true);
      ++moved;
    }
  }
  return moved;
}

}  // namespace aria::proto
