// The four ARiA message types (paper Table I) plus the optional
// housekeeping notifications the paper mentions in passing.
//
// Wire sizes follow the traffic evaluation (§V-E): REQUEST, INFORM and
// ASSIGN carry a full job profile and are metered at 1 KiB; ACCEPT is a
// compact (address, uuid, cost) triple metered at 128 bytes. Each type
// interns its name once (static_type()) so per-message metering is an
// integer id, never a string.
//
// REQUEST and INFORM are flooded: they carry a FloodMeta with a per-emission
// flood id (for duplicate suppression), the remaining hop budget, and the
// flood origin.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "common/uuid.hpp"
#include "grid/job.hpp"
#include "overlay/region.hpp"
#include "sim/network.hpp"

namespace aria::proto {

inline constexpr std::size_t kRequestWireBytes = 1024;
inline constexpr std::size_t kInformWireBytes = 1024;
inline constexpr std::size_t kAssignWireBytes = 1024;
inline constexpr std::size_t kAcceptWireBytes = 128;
inline constexpr std::size_t kNotifyWireBytes = 128;
inline constexpr std::size_t kAssignAckWireBytes = 128;
// Overload plane: a REJECT returns the full job profile to the delegator
// (who no longer holds the spec once the ASSIGN left), so it meters like
// the profile-carrying types.
inline constexpr std::size_t kRejectWireBytes = 1024;
// Healing-plane control traffic: PING/LINK_REQ are a bare (address, seq)
// pair; PONG/LINK_ACK additionally carry a small live-neighbor sample.
inline constexpr std::size_t kPingWireBytes = 64;
inline constexpr std::size_t kPongWireBytes = 256;
inline constexpr std::size_t kLinkReqWireBytes = 64;
inline constexpr std::size_t kLinkAckWireBytes = 256;

// Hierarchical discovery plane (docs/hierarchy.md): REGION_LOAD is a compact
// member→aggregator load triple; REGION_DIGEST carries one region's
// aggregate (region, epoch, members, idle, backlog, queue) to remote
// aggregators; REGION_QUERY and REGION_FWD carry a full job profile like
// REQUEST, so they meter at the same 1 KiB.
inline constexpr std::size_t kRegionLoadWireBytes = 64;
inline constexpr std::size_t kRegionDigestWireBytes = 256;
inline constexpr std::size_t kRegionQueryWireBytes = 1024;
inline constexpr std::size_t kRegionFwdWireBytes = 1024;
// Cold-restart solicitation (docs/hierarchy.md "Failure modes"): a bare
// (candidate address, flood meta) pair, metered like the other 64 B control
// messages.
inline constexpr std::size_t kRegionPullWireBytes = 64;

inline constexpr const char* kRequestType = "REQUEST";
inline constexpr const char* kAcceptType = "ACCEPT";
inline constexpr const char* kInformType = "INFORM";
inline constexpr const char* kAssignType = "ASSIGN";
inline constexpr const char* kNotifyType = "NOTIFY";
inline constexpr const char* kAssignAckType = "ASSIGN_ACK";
inline constexpr const char* kRejectType = "REJECT";
inline constexpr const char* kPingType = "PING";
inline constexpr const char* kPongType = "PONG";
inline constexpr const char* kLinkReqType = "LINK_REQ";
inline constexpr const char* kLinkAckType = "LINK_ACK";
inline constexpr const char* kRegionLoadType = "REGION_LOAD";
inline constexpr const char* kRegionDigestType = "REGION_DIGEST";
inline constexpr const char* kRegionQueryType = "REGION_QUERY";
inline constexpr const char* kRegionFwdType = "REGION_FWD";
inline constexpr const char* kRegionPullType = "REGION_PULL";

/// Flood bookkeeping carried by REQUEST and INFORM.
struct FloodMeta {
  Uuid flood_id{};           // one per emission (re-floods get fresh ids)
  std::uint32_t hops_left{0};  // remaining hop budget after this delivery
  NodeId origin{};           // who started the flood
};

/// Resource discovery query: "Initiator's address | Job UUID | Job Profile".
struct RequestMsg final : sim::Message {
  NodeId initiator;
  grid::JobSpec job;  // carries the UUID and the profile
  FloodMeta flood;
  /// Hierarchy scope widening (docs/hierarchy.md): forwarders ignore the
  /// region filter for this flood. Always false outside the hierarchy
  /// plane; one flag bit, folded into the existing wire-size constant.
  bool wide{false};

  RequestMsg(NodeId initiator_, grid::JobSpec job_, FloodMeta flood_,
             bool wide_ = false)
      : initiator{initiator_},
        job{std::move(job_)},
        flood{flood_},
        wide{wide_} {}
  std::size_t wire_size() const override { return kRequestWireBytes; }
  std::uint32_t flood_hops_left() const override { return flood.hops_left; }
  std::unique_ptr<sim::Message> clone() const override {
    return std::make_unique<RequestMsg>(*this);
  }
  sim::MessageTypeId type_id() const override { return static_type(); }
  static sim::MessageTypeId static_type() {
    static const sim::MessageTypeId id =
        sim::MessageTypeRegistry::intern(kRequestType);
    return id;
  }
};

/// Offer: "Node's address | Job UUID | Cost". Sent to the initiator in the
/// submission phase, or to the current assignee in the rescheduling phase.
struct AcceptMsg final : sim::Message {
  NodeId node;
  JobId job_id;
  double cost;

  AcceptMsg(NodeId node_, JobId job_id_, double cost_)
      : node{node_}, job_id{job_id_}, cost{cost_} {}
  std::size_t wire_size() const override { return kAcceptWireBytes; }
  std::unique_ptr<sim::Message> clone() const override {
    return std::make_unique<AcceptMsg>(*this);
  }
  sim::MessageTypeId type_id() const override { return static_type(); }
  static sim::MessageTypeId static_type() {
    static const sim::MessageTypeId id =
        sim::MessageTypeRegistry::intern(kAcceptType);
    return id;
  }
};

/// Rescheduling advertisement:
/// "Assignee's address | Job UUID | Job Profile | Cost".
struct InformMsg final : sim::Message {
  NodeId assignee;
  grid::JobSpec job;
  double cost;  // the assignee's current cost for this job
  FloodMeta flood;

  InformMsg(NodeId assignee_, grid::JobSpec job_, double cost_, FloodMeta flood_)
      : assignee{assignee_}, job{std::move(job_)}, cost{cost_}, flood{flood_} {}
  std::size_t wire_size() const override { return kInformWireBytes; }
  std::uint32_t flood_hops_left() const override { return flood.hops_left; }
  std::unique_ptr<sim::Message> clone() const override {
    return std::make_unique<InformMsg>(*this);
  }
  sim::MessageTypeId type_id() const override { return static_type(); }
  static sim::MessageTypeId static_type() {
    static const sim::MessageTypeId id =
        sim::MessageTypeRegistry::intern(kInformType);
    return id;
  }
};

/// Delegation: "Initiator's address | Job UUID | Job Profile". Sent by the
/// initiator on first assignment, or by the departing assignee on a
/// reschedule (the initiator address lets the new assignee keep notifying).
struct AssignMsg final : sim::Message {
  NodeId initiator;
  grid::JobSpec job;
  /// True when this delegation moves an already-assigned job (set by the
  /// departing assignee; a single flag, does not change the metered size).
  bool reschedule{false};
  /// Identifies one delegation attempt when acknowledged delegation is on
  /// (AriaConfig::assign_ack): retransmissions of the same attempt reuse it,
  /// so the receiver can deduplicate. Nil when ACKs are off.
  Uuid assign_id{};
  /// Hedged re-dispatch (docs/adversary.md): this delegation duplicates a
  /// revoked straggler onto the runner-up bid. One flag bit so the auditor
  /// can meter hedges against DefenseParams::hedge_budget on the wire.
  bool hedge{false};

  AssignMsg(NodeId initiator_, grid::JobSpec job_, bool reschedule_ = false,
            Uuid assign_id_ = Uuid{}, bool hedge_ = false)
      : initiator{initiator_}, job{std::move(job_)}, reschedule{reschedule_},
        assign_id{assign_id_}, hedge{hedge_} {}
  std::size_t wire_size() const override { return kAssignWireBytes; }
  std::unique_ptr<sim::Message> clone() const override {
    return std::make_unique<AssignMsg>(*this);
  }
  sim::MessageTypeId type_id() const override { return static_type(); }
  static sim::MessageTypeId static_type() {
    static const sim::MessageTypeId id =
        sim::MessageTypeRegistry::intern(kAssignType);
    return id;
  }
};

/// Optional tracking notification to the initiator (paper §III-D:
/// "rescheduling actions may be notified to the job's initiator").
struct NotifyMsg final : sim::Message {
  /// kRevoke / kRevokeAck extend the failsafe vocabulary for the adversarial
  /// defense plane (docs/adversary.md): an initiator revokes a straggling
  /// delegation before granting the job to the runner-up bid, and the
  /// assignee confirms it gave the (still queued) job back. Same 128 B
  /// control-message framing as the lifecycle kinds.
  enum class Kind { kQueued, kRescheduled, kStarted, kCompleted, kRevoke,
                    kRevokeAck };
  Kind kind;
  JobId job_id;
  NodeId current_assignee;

  NotifyMsg(Kind kind_, JobId job_id_, NodeId current_assignee_)
      : kind{kind_}, job_id{job_id_}, current_assignee{current_assignee_} {}
  std::size_t wire_size() const override { return kNotifyWireBytes; }
  std::unique_ptr<sim::Message> clone() const override {
    return std::make_unique<NotifyMsg>(*this);
  }
  sim::MessageTypeId type_id() const override { return static_type(); }
  static sim::MessageTypeId static_type() {
    static const sim::MessageTypeId id =
        sim::MessageTypeRegistry::intern(kNotifyType);
    return id;
  }
};

/// Delegation receipt: "Node's address | Job UUID | Assign UUID". Sent back
/// to the delegator when acknowledged delegation is on; absence within
/// AriaConfig::assign_ack_timeout triggers a retransmission.
struct AssignAckMsg final : sim::Message {
  NodeId node;
  JobId job_id;
  Uuid assign_id;

  AssignAckMsg(NodeId node_, JobId job_id_, Uuid assign_id_)
      : node{node_}, job_id{job_id_}, assign_id{assign_id_} {}
  std::size_t wire_size() const override { return kAssignAckWireBytes; }
  std::unique_ptr<sim::Message> clone() const override {
    return std::make_unique<AssignAckMsg>(*this);
  }
  sim::MessageTypeId type_id() const override { return static_type(); }
  static sim::MessageTypeId static_type() {
    static const sim::MessageTypeId id =
        sim::MessageTypeRegistry::intern(kAssignAckType);
    return id;
  }
};

/// Admission refusal (overload plane, docs/overload.md): "Rejecter's address
/// | Job Profile | Initiator's address | reschedule flag". A node over its
/// admission watermark answers an ASSIGN with this instead of enqueueing;
/// the delegator treats it like an exhausted ACK and re-discovers
/// immediately. Carries the full spec because the delegator dropped its copy
/// when the ASSIGN went out. `reject_id` is fresh per refusal so network
/// duplicates of one REJECT can be deduplicated without suppressing a later,
/// genuine second refusal of the same job.
struct RejectMsg final : sim::Message {
  NodeId node;
  grid::JobSpec job;
  NodeId initiator;
  bool reschedule{false};
  Uuid reject_id{};

  RejectMsg(NodeId node_, grid::JobSpec job_, NodeId initiator_,
            bool reschedule_, Uuid reject_id_)
      : node{node_}, job{std::move(job_)}, initiator{initiator_},
        reschedule{reschedule_}, reject_id{reject_id_} {}
  std::size_t wire_size() const override { return kRejectWireBytes; }
  std::unique_ptr<sim::Message> clone() const override {
    return std::make_unique<RejectMsg>(*this);
  }
  sim::MessageTypeId type_id() const override { return static_type(); }
  static sim::MessageTypeId static_type() {
    static const sim::MessageTypeId id =
        sim::MessageTypeRegistry::intern(kRejectType);
    return id;
  }
};

// --- self-healing overlay plane (docs/overlay.md) --------------------------

/// Liveness probe: "Prober's address | Probe sequence number". One per
/// tracked neighbor per probe round.
struct PingMsg final : sim::Message {
  NodeId from;
  std::uint32_t seq;

  PingMsg(NodeId from_, std::uint32_t seq_) : from{from_}, seq{seq_} {}
  std::size_t wire_size() const override { return kPingWireBytes; }
  std::unique_ptr<sim::Message> clone() const override {
    return std::make_unique<PingMsg>(*this);
  }
  sim::MessageTypeId type_id() const override { return static_type(); }
  static sim::MessageTypeId static_type() {
    static const sim::MessageTypeId id =
        sim::MessageTypeRegistry::intern(kPingType);
    return id;
  }
};

/// Probe answer echoing the PING's sequence number, plus a bounded sample of
/// the responder's live neighbors — the neighbor-exchange gossip that feeds
/// every node's repair-contact cache.
struct PongMsg final : sim::Message {
  NodeId from;
  std::uint32_t seq;
  std::vector<NodeId> contacts;

  PongMsg(NodeId from_, std::uint32_t seq_, std::vector<NodeId> contacts_)
      : from{from_}, seq{seq_}, contacts{std::move(contacts_)} {}
  std::size_t wire_size() const override { return kPongWireBytes; }
  std::unique_ptr<sim::Message> clone() const override {
    return std::make_unique<PongMsg>(*this);
  }
  sim::MessageTypeId type_id() const override { return static_type(); }
  static sim::MessageTypeId static_type() {
    static const sim::MessageTypeId id =
        sim::MessageTypeRegistry::intern(kPongType);
    return id;
  }
};

/// Repair request: "Requester's address". Sent to a cached contact when the
/// live degree drops below the floor, or to remembered neighbors when a
/// restarted node rejoins.
struct LinkReqMsg final : sim::Message {
  NodeId from;

  explicit LinkReqMsg(NodeId from_) : from{from_} {}
  std::size_t wire_size() const override { return kLinkReqWireBytes; }
  std::unique_ptr<sim::Message> clone() const override {
    return std::make_unique<LinkReqMsg>(*this);
  }
  sim::MessageTypeId type_id() const override { return static_type(); }
  static sim::MessageTypeId static_type() {
    static const sim::MessageTypeId id =
        sim::MessageTypeRegistry::intern(kLinkReqType);
    return id;
  }
};

/// Repair confirmation, carrying the accepter's live-neighbor sample so the
/// (possibly freshly restarted) requester seeds its contact cache.
struct LinkAckMsg final : sim::Message {
  NodeId from;
  std::vector<NodeId> contacts;

  LinkAckMsg(NodeId from_, std::vector<NodeId> contacts_)
      : from{from_}, contacts{std::move(contacts_)} {}
  std::size_t wire_size() const override { return kLinkAckWireBytes; }
  std::unique_ptr<sim::Message> clone() const override {
    return std::make_unique<LinkAckMsg>(*this);
  }
  sim::MessageTypeId type_id() const override { return static_type(); }
  static sim::MessageTypeId static_type() {
    static const sim::MessageTypeId id =
        sim::MessageTypeRegistry::intern(kLinkAckType);
    return id;
  }
};

// --- hierarchical discovery plane (docs/hierarchy.md) -----------------------

/// Member → own-region aggregator candidates: "Reporter's address | idle
/// flag | backlog seconds | queue length". Sent every load_report_period;
/// the digest input.
struct RegionLoadMsg final : sim::Message {
  NodeId from;
  overlay::MemberLoad load;

  RegionLoadMsg(NodeId from_, overlay::MemberLoad load_)
      : from{from_}, load{load_} {}
  std::size_t wire_size() const override { return kRegionLoadWireBytes; }
  std::unique_ptr<sim::Message> clone() const override {
    return std::make_unique<RegionLoadMsg>(*this);
  }
  sim::MessageTypeId type_id() const override { return static_type(); }
  static sim::MessageTypeId static_type() {
    static const sim::MessageTypeId id =
        sim::MessageTypeRegistry::intern(kRegionLoadType);
    return id;
  }
};

/// Aggregator → every other region's candidates: one region's summarized
/// load. Replaces per-job global INFORM reach with a periodic O(R²)
/// aggregate exchange.
struct RegionDigestMsg final : sim::Message {
  NodeId from;
  overlay::RegionDigest digest;

  RegionDigestMsg(NodeId from_, overlay::RegionDigest digest_)
      : from{from_}, digest{digest_} {}
  std::size_t wire_size() const override { return kRegionDigestWireBytes; }
  std::unique_ptr<sim::Message> clone() const override {
    return std::make_unique<RegionDigestMsg>(*this);
  }
  sim::MessageTypeId type_id() const override { return static_type(); }
  static sim::MessageTypeId static_type() {
    static const sim::MessageTypeId id =
        sim::MessageTypeRegistry::intern(kRegionDigestType);
    return id;
  }
};

/// Initiator → own-region aggregator: "my region-local REQUEST flood drew no
/// offers on `attempt`; find this job a region". Carries the full spec so
/// the aggregator can forward without holding per-job state.
struct RegionQueryMsg final : sim::Message {
  NodeId initiator;
  grid::JobSpec job;
  std::uint32_t attempt;
  /// Cold-restart handoffs already taken (docs/hierarchy.md "Failure
  /// modes"): a cold candidate forwards the query to the next rank and
  /// increments this; once every rank has been tried the holder serves
  /// best-effort instead of bouncing forever.
  std::uint32_t handoffs;

  RegionQueryMsg(NodeId initiator_, grid::JobSpec job_, std::uint32_t attempt_,
                 std::uint32_t handoffs_ = 0)
      : initiator{initiator_},
        job{std::move(job_)},
        attempt{attempt_},
        handoffs{handoffs_} {}
  std::size_t wire_size() const override { return kRegionQueryWireBytes; }
  std::unique_ptr<sim::Message> clone() const override {
    return std::make_unique<RegionQueryMsg>(*this);
  }
  sim::MessageTypeId type_id() const override { return static_type(); }
  static sim::MessageTypeId static_type() {
    static const sim::MessageTypeId id =
        sim::MessageTypeRegistry::intern(kRegionQueryType);
    return id;
  }
};

/// Aggregator → target-region aggregator: "flood this query in your region
/// on the initiator's behalf". The receiving aggregator region-floods a
/// REQUEST carrying the *original* initiator, so ACCEPT offers flow directly
/// back to it — aggregators never sit on the offer path.
struct RegionFwdMsg final : sim::Message {
  NodeId initiator;
  grid::JobSpec job;
  std::uint32_t attempt;

  RegionFwdMsg(NodeId initiator_, grid::JobSpec job_, std::uint32_t attempt_)
      : initiator{initiator_}, job{std::move(job_)}, attempt{attempt_} {}
  std::size_t wire_size() const override { return kRegionFwdWireBytes; }
  std::unique_ptr<sim::Message> clone() const override {
    return std::make_unique<RegionFwdMsg>(*this);
  }
  sim::MessageTypeId type_id() const override { return static_type(); }
  static sim::MessageTypeId static_type() {
    static const sim::MessageTypeId id =
        sim::MessageTypeRegistry::intern(kRegionFwdType);
    return id;
  }
};

/// Restarted aggregator candidate → its region (flood-relayed, region
/// scoped): "I came back cold; send me a fresh REGION_LOAD now" (docs/
/// hierarchy.md "Failure modes"). Members answer with an immediate
/// out-of-cycle report so the candidate can warm up without waiting a full
/// load_report_period.
struct RegionPullMsg final : sim::Message {
  NodeId from;
  FloodMeta flood;

  RegionPullMsg(NodeId from_, FloodMeta flood_) : from{from_}, flood{flood_} {}
  std::size_t wire_size() const override { return kRegionPullWireBytes; }
  std::unique_ptr<sim::Message> clone() const override {
    return std::make_unique<RegionPullMsg>(*this);
  }
  sim::MessageTypeId type_id() const override { return static_type(); }
  static sim::MessageTypeId static_type() {
    static const sim::MessageTypeId id =
        sim::MessageTypeRegistry::intern(kRegionPullType);
    return id;
  }
};

}  // namespace aria::proto
