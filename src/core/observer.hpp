// Protocol lifecycle observer: the seam between the protocol engine and
// metrics/trackers/tests. All callbacks are optional.
#pragma once

#include "common/ids.hpp"
#include "common/time.hpp"
#include "common/uuid.hpp"
#include "grid/job.hpp"

namespace aria::proto {

class ProtocolObserver {
 public:
  virtual ~ProtocolObserver() = default;

  /// A user handed `job` to `initiator`.
  virtual void on_submitted(const grid::JobSpec& job, NodeId initiator,
                            TimePoint at) {
    (void)job; (void)initiator; (void)at;
  }

  /// A REQUEST flood drew no offers; attempt `attempt` (1-based) upcoming.
  virtual void on_request_retry(const JobId& id, std::size_t attempt,
                                TimePoint at) {
    (void)id; (void)attempt; (void)at;
  }

  /// The initiator gave up on the job (DiscoveryRetryPolicy::max_attempts
  /// exhausted); terminal.
  virtual void on_unschedulable(const JobId& id, TimePoint at) {
    (void)id; (void)at;
  }

  /// A candidate answered a REQUEST or INFORM flood with an ACCEPT quote of
  /// `cost`, addressed to `to` (the initiator, or the advertising assignee
  /// during rescheduling). Fired on the bidder as the ACCEPT leaves.
  virtual void on_bid_sent(const JobId& id, NodeId bidder, NodeId to,
                           double cost, TimePoint at) {
    (void)id; (void)bidder; (void)to; (void)cost; (void)at;
  }

  /// A collector took `bidder`'s quote into consideration: an offer joined
  /// an initiator's discovery set, or a rescheduling/shed offer won. The
  /// initiator's self-quote fires this without a matching on_bid_sent.
  virtual void on_bid_received(const JobId& id, NodeId collector,
                               NodeId bidder, double cost, TimePoint at) {
    (void)id; (void)collector; (void)bidder; (void)cost; (void)at;
  }

  /// A delegator picked `to` and handed the job over (ASSIGN, or a local
  /// hand-off when the initiator won its own discovery round). Fired once
  /// per delegation decision — ACK retransmissions do not repeat it.
  virtual void on_delegated(const JobId& id, NodeId from, NodeId to,
                            TimePoint at, bool reschedule) {
    (void)id; (void)from; (void)to; (void)at; (void)reschedule;
  }

  /// The job entered `node`'s queue. `reschedule` is false for the initial
  /// delegation, true when it moved from a previous assignee.
  virtual void on_assigned(const grid::JobSpec& job, NodeId node, TimePoint at,
                           bool reschedule) {
    (void)job; (void)node; (void)at; (void)reschedule;
  }

  /// Execution began on `node`.
  virtual void on_started(const JobId& id, NodeId node, TimePoint at) {
    (void)id; (void)node; (void)at;
  }

  /// Execution finished; `art` is the actual running time.
  virtual void on_completed(const JobId& id, NodeId node, TimePoint at,
                            Duration art) {
    (void)id; (void)node; (void)at; (void)art;
  }

  /// The initiator's failsafe watchdog expired and the job is being
  /// re-flooded (recovery `attempt` is 1-based).
  virtual void on_recovery(const JobId& id, std::size_t attempt,
                           TimePoint at) {
    (void)id; (void)attempt; (void)at;
  }

  /// The initiator exhausted failsafe_max_recoveries and stopped watching
  /// the job; it will never be re-flooded again. Terminal, like
  /// on_unschedulable, but reached from the recovery path.
  virtual void on_abandoned(const JobId& id, TimePoint at) {
    (void)id; (void)at;
  }

  /// Overload plane: `node`'s bounded queue overflowed and the policy chose
  /// this job as the shed victim; an INFORM burst re-advertising it is
  /// going out. Not terminal — the job is rescheduled or re-discovered.
  virtual void on_shed(const grid::JobSpec& job, NodeId node, TimePoint at) {
    (void)job; (void)node; (void)at;
  }

  /// Overload plane: `node` refused an ASSIGN with REJECT because its
  /// backlog exceeded the admission watermark; the delegator re-discovers.
  virtual void on_rejected(const JobId& id, NodeId node, TimePoint at) {
    (void)id; (void)node; (void)at;
  }

  /// Hierarchy plane: `aggregator` answered a REGION_QUERY by forwarding the
  /// job from `from_region` to `to_region`'s aggregator for a region-local
  /// flood there. Fired on the aggregator as the REGION_FWD leaves.
  virtual void on_region_delegated(const JobId& id, NodeId aggregator,
                                   std::uint32_t from_region,
                                   std::uint32_t to_region, TimePoint at) {
    (void)id; (void)aggregator; (void)from_region; (void)to_region; (void)at;
  }

  /// Defense plane (docs/adversary.md): `owner` rejected a REGION_DIGEST
  /// from `from` claiming `region`/`epoch` because it violated member-report
  /// conservation bounds; the digest was not folded into the table.
  virtual void on_digest_clamped(NodeId owner, NodeId from,
                                 std::uint32_t region, std::uint64_t epoch,
                                 TimePoint at) {
    (void)owner; (void)from; (void)region; (void)epoch; (void)at;
  }

  /// Defense plane: `owner`'s reputation ledger re-scored `subject` after a
  /// promise-vs-delivery observation; `score` is the post-update EWMA in
  /// [0, 1]. The auditor checks the per-update movement bound on this stream.
  virtual void on_reputation(NodeId owner, NodeId subject, double score,
                             TimePoint at) {
    (void)owner; (void)subject; (void)score; (void)at;
  }
};

}  // namespace aria::proto
