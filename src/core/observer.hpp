// Protocol lifecycle observer: the seam between the protocol engine and
// metrics/trackers/tests. All callbacks are optional.
#pragma once

#include "common/ids.hpp"
#include "common/time.hpp"
#include "common/uuid.hpp"
#include "grid/job.hpp"

namespace aria::proto {

class ProtocolObserver {
 public:
  virtual ~ProtocolObserver() = default;

  /// A user handed `job` to `initiator`.
  virtual void on_submitted(const grid::JobSpec& job, NodeId initiator,
                            TimePoint at) {
    (void)job; (void)initiator; (void)at;
  }

  /// A REQUEST flood drew no offers; attempt `attempt` (1-based) upcoming.
  virtual void on_request_retry(const JobId& id, std::size_t attempt,
                                TimePoint at) {
    (void)id; (void)attempt; (void)at;
  }

  /// The initiator gave up on the job (max_request_attempts exhausted).
  virtual void on_unschedulable(const JobId& id, TimePoint at) {
    (void)id; (void)at;
  }

  /// The job entered `node`'s queue. `reschedule` is false for the initial
  /// delegation, true when it moved from a previous assignee.
  virtual void on_assigned(const grid::JobSpec& job, NodeId node, TimePoint at,
                           bool reschedule) {
    (void)job; (void)node; (void)at; (void)reschedule;
  }

  /// Execution began on `node`.
  virtual void on_started(const JobId& id, NodeId node, TimePoint at) {
    (void)id; (void)node; (void)at;
  }

  /// Execution finished; `art` is the actual running time.
  virtual void on_completed(const JobId& id, NodeId node, TimePoint at,
                            Duration art) {
    (void)id; (void)node; (void)at; (void)art;
  }

  /// The initiator's failsafe watchdog expired and the job is being
  /// re-flooded (recovery `attempt` is 1-based).
  virtual void on_recovery(const JobId& id, std::size_t attempt,
                           TimePoint at) {
    (void)id; (void)attempt; (void)at;
  }

  /// The initiator exhausted failsafe_max_recoveries and stopped watching
  /// the job; it will never be re-flooded again. Terminal, like
  /// on_unschedulable, but reached from the recovery path.
  virtual void on_abandoned(const JobId& id, TimePoint at) {
    (void)id; (void)at;
  }

  /// Overload plane: `node`'s bounded queue overflowed and the policy chose
  /// this job as the shed victim; an INFORM burst re-advertising it is
  /// going out. Not terminal — the job is rescheduled or re-discovered.
  virtual void on_shed(const grid::JobSpec& job, NodeId node, TimePoint at) {
    (void)job; (void)node; (void)at;
  }

  /// Overload plane: `node` refused an ASSIGN with REJECT because its
  /// backlog exceeded the admission watermark; the delegator re-discovers.
  virtual void on_rejected(const JobId& id, NodeId node, TimePoint at) {
    (void)id; (void)node; (void)at;
  }
};

}  // namespace aria::proto
