// Grid-wide job lifecycle tracking.
//
// JobTracker observes every protocol event and maintains one record per
// job: submission, the full assignment chain, execution start/end, retries.
// It doubles as the reproduction's safety net: lifecycle violations (a job
// started twice, completed without starting, ...) are collected as strings
// and asserted empty by the test suite after every simulated run.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/observer.hpp"

namespace aria::proto {

struct JobRecord {
  grid::JobSpec spec;
  NodeId initiator{};
  TimePoint submitted{};
  /// Every node the job was queued on, in order (first = initial assignee).
  std::vector<std::pair<NodeId, TimePoint>> assignments;
  std::optional<TimePoint> started;
  NodeId executor{};
  std::optional<TimePoint> completed;
  Duration art{};
  std::size_t retries{0};
  std::size_t recoveries{0};  // failsafe re-submissions
  std::size_t sheds{0};       // bounded-queue evictions (overload plane)
  std::size_t rejects{0};     // admission REJECTs (overload plane)
  bool unschedulable{false};
  /// The initiator exhausted its recovery budget and stopped watching.
  bool abandoned{false};
  /// Number of times execution began (> 1 only after crash recoveries).
  std::size_t executions{0};

  bool done() const { return completed.has_value(); }
  /// A job is terminal once it completed or was given up on; under faults
  /// every submitted job must end terminal (no stranded jobs).
  bool terminal() const { return done() || unschedulable || abandoned; }
  std::size_t reschedule_count() const {
    return assignments.empty() ? 0 : assignments.size() - 1;
  }
  /// Submission -> execution start.
  Duration waiting_time() const { return *started - submitted; }
  /// Execution start -> completion (== actual running time).
  Duration execution_time() const { return *completed - *started; }
  /// Submission -> completion.
  Duration completion_time() const { return *completed - submitted; }

  bool has_deadline() const { return spec.deadline.has_value(); }
  bool missed_deadline() const {
    return done() && has_deadline() && *completed > *spec.deadline;
  }
  /// deadline - completion; positive = met with slack, negative = missed.
  Duration deadline_slack() const { return *spec.deadline - *completed; }
};

class JobTracker final : public ProtocolObserver {
 public:
  void on_submitted(const grid::JobSpec& job, NodeId initiator,
                    TimePoint at) override;
  void on_request_retry(const JobId& id, std::size_t attempt,
                        TimePoint at) override;
  void on_unschedulable(const JobId& id, TimePoint at) override;
  void on_assigned(const grid::JobSpec& job, NodeId node, TimePoint at,
                   bool reschedule) override;
  void on_started(const JobId& id, NodeId node, TimePoint at) override;
  void on_completed(const JobId& id, NodeId node, TimePoint at,
                    Duration art) override;
  void on_recovery(const JobId& id, std::size_t attempt,
                   TimePoint at) override;
  void on_abandoned(const JobId& id, TimePoint at) override;
  void on_shed(const grid::JobSpec& job, NodeId node, TimePoint at) override;
  void on_rejected(const JobId& id, NodeId node, TimePoint at) override;

  const std::unordered_map<JobId, JobRecord>& records() const {
    return records_;
  }
  const JobRecord* find(const JobId& id) const;

  std::size_t submitted_count() const { return records_.size(); }
  std::size_t completed_count() const { return completed_; }
  std::size_t unschedulable_count() const { return unschedulable_; }
  std::size_t abandoned_count() const { return abandoned_; }
  std::uint64_t total_reschedules() const { return reschedules_; }
  std::uint64_t total_recoveries() const { return recoveries_; }
  std::uint64_t total_sheds() const { return sheds_; }
  std::uint64_t total_rejects() const { return rejects_; }

  /// Submitted jobs that never reached a terminal state (completed,
  /// unschedulable, or abandoned). Must be 0 at the end of any run.
  std::size_t stranded_count() const;

  /// Jobs that were admission-rejected at least once and still never
  /// completed (unschedulable, abandoned, or stranded) — the population an
  /// overload run must account for instead of silently reporting success.
  std::size_t rejected_incomplete_count() const;

  /// Lifecycle violations seen so far; empty on a healthy run.
  const std::vector<std::string>& violations() const { return violations_; }

 private:
  JobRecord* must_find(const JobId& id, const char* context);

  std::unordered_map<JobId, JobRecord> records_;
  std::vector<std::string> violations_;
  std::size_t completed_{0};
  std::size_t unschedulable_{0};
  std::size_t abandoned_{0};
  std::uint64_t reschedules_{0};
  std::uint64_t recoveries_{0};
  std::uint64_t sheds_{0};
  std::uint64_t rejects_{0};
};

}  // namespace aria::proto
