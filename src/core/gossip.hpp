// Gossip-based meta-scheduling baseline (related-work comparison).
//
// The paper's §II surveys decentralized alternatives, among them
// gossip-based dissemination of resource state (Erdil & Lewis [25]): nodes
// periodically push a summary of their state to random neighbors, remote
// summaries are cached with an age bound, and an initiator assigns a job
// directly to the best *cached* candidate instead of flooding a discovery
// query. This module implements that scheme over the same substrates
// (network, overlay, schedulers) so `bench_ablation_gossip` can compare
// the two philosophies: query-on-demand (ARiA) vs state-dissemination
// (gossip).
//
// Wire model: a GOSSIP message carries up to `summaries_per_message`
// cached summaries (its size scales accordingly); assignment reuses the
// ASSIGN message type for cost parity with ARiA.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "core/config.hpp"
#include "core/messages.hpp"
#include "core/observer.hpp"
#include "grid/job.hpp"
#include "grid/resources.hpp"
#include "overlay/topology.hpp"
#include "sched/scheduler.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace aria::proto {

struct GossipConfig {
  Duration gossip_period{Duration::seconds(30)};
  /// Random neighbors each round is pushed to.
  std::size_t gossip_fanout{2};
  /// Newest summaries included per message.
  std::size_t summaries_per_message{8};
  /// Cached summaries older than this are ignored for scheduling.
  Duration max_summary_age{Duration::minutes(5)};
  /// Retry policy when no cached candidate matches a job. Shares
  /// DiscoveryRetryPolicy with ARiA's REQUEST re-floods (docs/protocol.md
  /// §1) so the two discovery schemes cannot drift apart; the gossip
  /// baseline keeps its historical fixed 30s interval (factor cap 1 = no
  /// exponential growth) and 40-attempt cap.
  DiscoveryRetryPolicy retry{Duration::seconds(30), /*max_backoff_factor=*/1,
                             /*max_attempts=*/40};
};

/// A node's advertised state: enough to estimate the ETTC a job would see.
struct NodeSummary {
  NodeId node{};
  grid::NodeProfile profile{};
  /// Estimated seconds until the queue (incl. running job) drains.
  double backlog_seconds{0.0};
  TimePoint stamped{};
};

struct GossipMsg final : sim::Message {
  std::vector<NodeSummary> summaries;

  explicit GossipMsg(std::vector<NodeSummary> s) : summaries{std::move(s)} {}
  std::size_t wire_size() const override {
    // 64 bytes of header + ~96 bytes per carried summary.
    return 64 + summaries.size() * 96;
  }
  std::unique_ptr<sim::Message> clone() const override {
    return std::make_unique<GossipMsg>(*this);
  }
  sim::MessageTypeId type_id() const override { return static_type(); }
  static sim::MessageTypeId static_type() {
    static const sim::MessageTypeId id =
        sim::MessageTypeRegistry::intern("GOSSIP");
    return id;
  }
};

/// One grid machine under gossip scheduling: same profile/scheduler/executor
/// model as AriaNode, but discovery works through the summary cache.
class GossipNode {
 public:
  struct Context {
    sim::Simulator* sim{nullptr};
    sim::Network* net{nullptr};
    const overlay::Topology* topo{nullptr};
    const GossipConfig* config{nullptr};
    const grid::ErtErrorModel* ert_error{nullptr};
    ProtocolObserver* observer{nullptr};
  };

  GossipNode(Context ctx, NodeId self, grid::NodeProfile profile,
             std::unique_ptr<sched::LocalScheduler> scheduler, Rng rng);
  ~GossipNode();
  GossipNode(const GossipNode&) = delete;
  GossipNode& operator=(const GossipNode&) = delete;

  void start();
  void stop();

  /// User submission: assign to the best fresh cached candidate (self
  /// counts); retries while the cache has no match.
  void submit(grid::JobSpec job);

  NodeId id() const { return self_; }
  const grid::NodeProfile& profile() const { return profile_; }
  bool executing() const { return running_.has_value(); }
  std::size_t queue_length() const { return sched_->size(); }
  bool idle() const { return !executing() && sched_->empty(); }
  std::size_t cache_size() const { return cache_.size(); }

 private:
  struct Running {
    sched::QueuedJob job;
    TimePoint started;
    Duration art;
    sim::EventHandle completion;
  };

  void handle(sim::Envelope env);
  void on_gossip(const GossipMsg& msg);
  void gossip_tick();
  void try_assign(const grid::JobSpec& job, std::size_t attempt);
  void accept_job(const grid::JobSpec& spec);
  void kick_executor();
  void complete_running();

  Duration running_remaining() const;
  NodeSummary own_summary() const;
  /// Freshest summaries (own first), capped at summaries_per_message.
  std::vector<NodeSummary> newest_summaries() const;

  Context ctx_;
  NodeId self_;
  grid::NodeProfile profile_;
  std::unique_ptr<sched::LocalScheduler> sched_;
  Rng rng_;

  std::optional<Running> running_;
  std::unordered_map<NodeId, NodeSummary> cache_;
  sim::EventHandle gossip_timer_;
  bool started_{false};
};

}  // namespace aria::proto
