// Per-node ARiA protocol engine (paper §III).
//
// One AriaNode = one grid machine: its resource profile, its local
// scheduler (any policy), a single-slot executor, and the protocol state
// machine for all four message types. Nodes interact only through the
// Network (messages) and read only their own overlay neighbor list, so the
// implementation is faithful to a fully distributed deployment even though
// it runs in one process.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "common/uuid.hpp"
#include "core/config.hpp"
#include "core/messages.hpp"
#include "core/observer.hpp"
#include "grid/job.hpp"
#include "grid/resources.hpp"
#include "overlay/flooding.hpp"
#include "overlay/liveness.hpp"
#include "overlay/topology.hpp"
#include "sched/reputation.hpp"
#include "sched/scheduler.hpp"
#include "sim/fault.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace aria::proto {

/// Everything a node needs from its environment; all pointers are non-owning
/// and must outlive the node.
struct NodeContext {
  sim::Simulator* sim{nullptr};
  sim::Network* net{nullptr};
  const overlay::Topology* topo{nullptr};
  overlay::FloodRelay* relay{nullptr};
  const AriaConfig* config{nullptr};
  const grid::ErtErrorModel* ert_error{nullptr};
  ProtocolObserver* observer{nullptr};  // may be null
  /// Optional shared gauge of idle nodes: the node adds/removes itself as
  /// its idle() state flips, so the engine samples utilization in O(1)
  /// instead of scanning every node. Must outlive the node.
  std::size_t* idle_gauge{nullptr};
  /// Mutable topology handle for the self-healing plane: eviction drops the
  /// overlay link, repair re-adds one. Required (and only consulted) when
  /// config->healing.enabled; the plane models both endpoints updating
  /// their local neighbor sets, which the simulation stores as their union
  /// (see overlay/topology.hpp).
  overlay::Topology* healing_topo{nullptr};
  /// Fault plane handle for adversary-role designation (docs/adversary.md):
  /// the node asks once at construction whether it misbehaves, and how. May
  /// be null (fault-free runs) — the node is then honest.
  const sim::FaultPlane* faults{nullptr};
  /// Upper bound on the grid size (initial nodes plus any expansion
  /// target), for the defense plane's digest conservation clamp — the same
  /// ground truth the audit plane checks against. A deployment would learn
  /// an approximate grid size through membership gossip; the engine hands
  /// the exact one. 0 disables the population bound (idle/backlog sanity
  /// checks still apply).
  std::size_t grid_size{0};
};

class AriaNode {
 public:
  AriaNode(NodeContext ctx, NodeId self, grid::NodeProfile profile,
           std::unique_ptr<sched::LocalScheduler> scheduler, Rng rng,
           std::string virtual_org = {});
  ~AriaNode();
  AriaNode(const AriaNode&) = delete;
  AriaNode& operator=(const AriaNode&) = delete;

  /// Attaches to the network and starts the INFORM timer. Call once.
  void start();

  /// Detaches from the network and cancels timers (node departure).
  void stop();

  /// Simulates a node failure: detaches from the network and wipes all
  /// volatile state — the queue, the executing job, in-flight discovery
  /// rounds, advertisements and delegation retries. The failsafe watchdog
  /// table for jobs this node *initiated* survives (it models the user's
  /// stable storage), so a restarted initiator resumes supervising its
  /// jobs. Driven by the fault plane's churn schedule.
  void crash();

  /// Rejoins after a crash: reattaches, restarts the INFORM timer, and
  /// re-arms every surviving failsafe watchdog.
  void restart();

  bool crashed() const { return crashed_; }

  /// User entry point: this node becomes the initiator of `job`.
  void submit(grid::JobSpec job);

  /// Places `job` directly into this node's queue, bypassing the discovery
  /// protocol. Used by the centralized baseline and by tests; fires the same
  /// on_assigned observer event as a protocol delegation.
  void deliver_assignment(const grid::JobSpec& job, NodeId initiator,
                          bool reschedule = false);

  /// Removes a queued (not executing) job and drops its bookkeeping. The
  /// counterpart of deliver_assignment for external meta-schedulers; keeps
  /// the idle gauge and initiator map consistent. Returns false if the job
  /// is not queued here.
  bool remove_queued(const JobId& id);

  /// Cost this node would quote for `job` right now (the ACCEPT value).
  double quote(const grid::JobSpec& job) const { return my_cost(job); }

  // --- introspection (metrics, tests) ----------------------------------
  NodeId id() const { return self_; }
  const grid::NodeProfile& profile() const { return profile_; }
  const std::string& virtual_org() const { return vo_; }
  sched::LocalScheduler& scheduler() { return *sched_; }
  const sched::LocalScheduler& scheduler() const { return *sched_; }

  bool executing() const { return running_.has_value(); }
  std::size_t queue_length() const { return sched_->size(); }
  /// Idle = up, not executing, and nothing queued (Fig. 3's utilization
  /// metric; a crashed node is down, not idle).
  bool idle() const { return !crashed_ && !executing() && sched_->empty(); }

  /// Estimated remaining runtime of the executing job (>= 0; based on ERTp,
  /// since the actual running time is unknown until completion).
  Duration running_remaining() const;

  /// Can this node, by profile and cost-family, bid on `job` at all?
  bool can_bid(const grid::JobSpec& job) const;

  struct Counters {
    std::uint64_t requests_initiated{0};
    std::uint64_t requests_forwarded{0};
    std::uint64_t accepts_sent{0};
    std::uint64_t informs_initiated{0};
    std::uint64_t informs_forwarded{0};
    std::uint64_t assigns_sent{0};
    std::uint64_t jobs_executed{0};
    std::uint64_t reschedules_out{0};  // jobs this node gave away
    std::uint64_t reschedules_in{0};   // jobs this node won via INFORM
    std::uint64_t recoveries{0};       // failsafe re-submissions issued
    std::uint64_t assign_acks_sent{0};   // ASSIGN_ACK replies (assign_ack on)
    std::uint64_t assign_retries{0};     // ASSIGN retransmissions
    std::uint64_t assign_rediscoveries{0};  // ACKs exhausted, re-flooded
    std::uint64_t completion_replays{0};  // recovery floods answered with a
                                          // replayed completion receipt
    // --- overload plane (all zero when the plane is off) -----------------
    std::uint64_t jobs_shed{0};          // bounded-queue evictions here
    std::uint64_t sheds_rescheduled{0};  // shed jobs taken by an INFORM offer
    std::uint64_t sheds_failsafe{0};     // shed bursts that fell back to
                                         // a discovery round
    std::uint64_t rejects_sent{0};       // ASSIGNs answered with REJECT
    std::uint64_t reject_rediscoveries{0};  // REJECTed delegations re-floated
    std::uint64_t bids_suppressed{0};    // ACCEPTs withheld while saturated
    std::uint64_t peak_queue_depth{0};   // high-water mark of the local queue
    // --- hierarchy plane (all zero when the plane is off) ----------------
    std::uint64_t region_queries_sent{0};   // empty rounds escalated to an
                                            // aggregator
    std::uint64_t region_queries_served{0};  // REGION_QUERYs this aggregator
                                             // answered
    std::uint64_t region_forwards{0};    // REGION_FWDs sent to remote regions
    std::uint64_t region_floods{0};      // remote-initiator floods started
                                         // here on a REGION_FWD
    std::uint64_t load_reports_sent{0};  // REGION_LOADs to own candidates
    std::uint64_t digests_sent{0};       // REGION_DIGESTs broadcast
    std::uint64_t digests_received{0};   // remote digests folded into the
                                         // table
    std::uint64_t wide_floods{0};        // scope-widened REQUEST floods
                                         // (wide_flood_every retries)
    // --- hierarchy chaos hardening (docs/hierarchy.md "Failure modes") ---
    std::uint64_t region_pulls_sent{0};  // cold-restart REGION_PULL floods
    std::uint64_t region_handoffs{0};    // queries bounced while cold/empty
    std::uint64_t early_wide_escalations{0};  // wide floods forced by
                                              // sustained aggregator silence
    // --- adversary injection (zero when this node is honest) -------------
    std::uint64_t adv_underbids{0};      // ACCEPT quotes scaled by the lie
    std::uint64_t adv_informs_deflated{0};  // INFORM ads at deflated cost
    std::uint64_t adv_assigns_swallowed{0};  // ASSIGNs ACKed then dropped
    std::uint64_t adv_digests_poisoned{0};   // REGION_DIGESTs inflated
    // --- defense plane (all zero when the plane is off) ------------------
    std::uint64_t offers_distrusted{0};  // bids skipped: rep < suspicion
    std::uint64_t stragglers_detected{0};  // quotes overrun past the deadline
    std::uint64_t revokes_sent{0};       // kRevoke NOTIFYs (incl. retries)
    std::uint64_t revoke_acks_sent{0};   // assignee side: jobs handed back
    std::uint64_t hedges_dispatched{0};  // hedged ASSIGNs to runner-up bids
    std::uint64_t digests_clamped{0};    // non-conserving digests rejected
    std::uint64_t reputation_evictions{0};  // overlay evictions on suspicion
  };
  const Counters& counters() const { return counters_; }

  /// Self-healing plane: this node's local liveness view of its overlay
  /// neighbors (empty when healing is off). See docs/overlay.md.
  const overlay::NeighborView& neighbor_view() const { return view_; }

  /// Failsafe: number of initiated jobs still being watched (not yet
  /// known-completed). Always 0 when config.failsafe is off.
  std::size_t watched_jobs() const { return watched_.size(); }
  /// Failsafe introspection for tests: is this initiated job still watched,
  /// and does it have a live watchdog timer?
  bool watching(const JobId& id) const { return watched_.contains(id); }
  bool watchdog_armed(const JobId& id) const {
    const auto it = watched_.find(id);
    return it != watched_.end() && it->second.timer.pending();
  }
  /// Does this node currently hold the job (queued or executing)?
  bool holds(const JobId& id) const {
    return sched_->contains(id) ||
           (running_ && running_->job.spec.id == id);
  }
  /// Is a discovery round or an unacknowledged delegation in flight here?
  bool discovering(const JobId& id) const {
    return pending_requests_.contains(id) || pending_assigns_.contains(id);
  }
  /// Overload plane: is this shed job still waiting for an INFORM offer?
  bool shedding(const JobId& id) const { return shed_jobs_.contains(id); }
  /// Overload plane: is this node currently withholding ACCEPT replies?
  bool bids_suppressed() const { return bids_suppressed_; }
  /// Hierarchy plane: is this node an aggregator candidate of its region?
  /// (Constant false when the plane is off.)
  bool region_aggregator() const;
  /// Hierarchy plane: this node's region under the configured partition.
  std::uint32_t my_region() const;
  /// Hierarchy plane: the freshest digest this aggregator holds for
  /// `region`, if any (tests/metrics).
  std::optional<overlay::RegionDigest> region_digest_of(
      std::uint32_t region) const;
  /// Overload plane: remaining runtime of the executing job plus the ERTp
  /// of everything queued — the admission-watermark quantity.
  Duration backlog_duration() const {
    return running_remaining() + sched_->backlog();
  }
  /// Adversary plane: this node's designated misbehavior, if any (cached
  /// from the fault plane at construction; nullopt = honest).
  std::optional<sim::FaultConfig::Adversary::Role> adversary_role() const {
    return adv_role_;
  }
  /// Defense plane: the promise-vs-delivery score this node holds for
  /// `subject` (initial_reputation when never observed).
  double reputation_of(NodeId subject) const {
    return reputation_.score(subject);
  }
  /// Failsafe: completion receipts currently held (TTL-sweep test hook).
  std::size_t completion_receipts() const { return completed_here_.size(); }

 private:
  struct PendingRequest {
    grid::JobSpec spec;
    std::vector<proto::AcceptMsg> offers;  // reusing the message as a record
    sim::EventHandle timeout;
    std::size_t attempt{1};
    /// Failsafe recovery of a job whose earlier ASSIGN was confirmed: the
    /// eventual re-assignment is a reschedule, not a first delegation.
    bool recovery_reschedule{false};
    /// When a departing assignee's delegation fails (ACK retries exhausted)
    /// it re-floods on the original initiator's behalf; the eventual ASSIGN
    /// must still carry that initiator, not this node.
    NodeId on_behalf_of{};
    /// Hierarchy plane: this round already solicited a cross-region offer
    /// because the best local one was poor (delegate_cost_threshold). One
    /// extra collection window per round, never more.
    bool remote_round{false};
    /// Consecutive rounds that ended with zero offers AND no sign of life
    /// from the escalation path. Feeds escalate_silent_rounds: a sustained
    /// streak means every aggregator candidate may be dead, so widen the
    /// flood early instead of waiting for wide_flood_every.
    std::size_t silent_rounds{0};
  };
  struct PendingInform {
    double advertised_cost{0.0};
  };
  /// Failsafe bookkeeping for a job this node initiated (config.failsafe).
  struct Watchdog {
    grid::JobSpec spec;
    sim::EventHandle timer;
    /// Absolute expiry, persisted across the initiator's own crashes
    /// (stable storage). restart() must NOT restart the full span from
    /// `now`: under periodic churn with an uptime shorter than the span
    /// the watchdog would be re-armed forever and never fire.
    TimePoint deadline{};
    NodeId last_known{};       // most recent assignee we heard from
    bool assign_confirmed{false};  // some node confirmed queueing the job
    std::size_t recoveries{0};
    // --- defense plane (docs/adversary.md; untouched when it is off) -----
    /// The winning quote and when it was granted: the promise the straggler
    /// deadline and the reputation ledger hold the assignee to.
    double quoted_cost{0.0};
    TimePoint assigned_at{};
    /// Runner-up of the deciding round — the hedge target. Invalid when the
    /// round had a single offer.
    NodeId runner_up{};
    double runner_up_cost{0.0};
    /// Hedged re-dispatches already spent (bounded by hedge_budget).
    std::size_t hedges{0};
    /// Revoke-before-grant state: a kRevoke is in flight to last_known and
    /// the hedge waits for its kRevokeAck (or retry exhaustion).
    bool revoke_pending{false};
    std::size_t revoke_sends{0};
    sim::EventHandle straggler_timer;
    sim::EventHandle revoke_timer;
  };
  struct Running {
    sched::QueuedJob job;
    TimePoint started;
    Duration art;
    sim::EventHandle completion;
  };
  /// A shed job awaiting an INFORM offer (overload plane). The job is no
  /// longer in the queue; this buffer is its only home until an offer or
  /// the fallback timer moves it on.
  struct ShedJob {
    grid::JobSpec spec;
    NodeId initiator{};
    sim::EventHandle timer;
  };
  /// One unacknowledged delegation attempt (AriaConfig::assign_ack).
  struct PendingAssign {
    grid::JobSpec spec;
    NodeId target{};
    NodeId initiator{};
    bool reschedule{false};
    Uuid assign_id{};
    /// Defense plane: this attempt is a hedged re-dispatch; retransmissions
    /// must keep the wire flag so the auditor's hedge meter sees them.
    bool hedge{false};
    std::size_t sends{1};
    sim::EventHandle timer;
  };

  void handle(sim::Envelope env);
  void on_request(NodeId from, const RequestMsg& msg);
  void on_accept(const AcceptMsg& msg);
  void on_inform(NodeId from, const InformMsg& msg);
  void on_assign(NodeId from, const AssignMsg& msg);
  void on_assign_ack(const AssignAckMsg& msg);
  void assign_ack_expired(const JobId& id);
  void on_notify(const NotifyMsg& msg);

  // --- overload plane (docs/overload.md) ---------------------------------
  bool overload_on() const { return ctx_.config->overload.enabled; }
  /// Is the backlog over the admission watermark right now?
  bool admission_over() const;
  /// Updates the bid-suppression hysteresis from the current backlog and
  /// returns its state. Called exactly where a bid decision is made, so the
  /// gate is always fresh without extra events.
  bool bid_gate_closed();
  void on_reject(NodeId from, const RejectMsg& msg);
  /// Shared by on_reject and the local self-assign refusal: tears down any
  /// ACK bookkeeping for the attempt and starts a fresh discovery round on
  /// the initiator's behalf (unless the job already found a home here).
  void handle_reject(const grid::JobSpec& spec, NodeId initiator,
                     bool reschedule);
  /// Shed-and-forward: re-advertises the victim via an immediate INFORM
  /// burst, falling back to a discovery round after shed_offer_timeout.
  void shed_job(sched::QueuedJob&& victim);
  void shed_offer_expired(const JobId& id);

  // --- hierarchy plane (docs/hierarchy.md) --------------------------------
  bool hierarchy_on() const { return ctx_.config->hierarchy.enabled; }
  /// Dispatches REGION_* messages; false if `env` is not one of them.
  bool handle_region(const sim::Envelope& env);
  /// Region-scoped flood target pick when the plane is on; the plain
  /// pick_targets otherwise (identical RNG draws to pre-plane code).
  /// `wide` drops the region filter for scope-widened REQUEST floods.
  std::vector<NodeId> flood_targets(std::size_t fanout,
                                    NodeId exclude_a = kInvalidNode,
                                    NodeId exclude_b = kInvalidNode,
                                    bool wide = false);
  /// Should discovery attempt `attempt` (1-based) flood without the region
  /// filter? (hierarchy.wide_flood_every; always false with the plane off)
  bool wide_flood(std::size_t attempt) const;
  /// Periodic member → candidate load report.
  void region_report_tick();
  /// Periodic aggregate broadcast (aggregator candidates only).
  void region_digest_tick();
  void on_region_load(const RegionLoadMsg& msg);
  void on_region_digest(const RegionDigestMsg& msg);
  void on_region_query(const RegionQueryMsg& msg);
  void on_region_fwd(const RegionFwdMsg& msg);
  void on_region_pull(NodeId from, const RegionPullMsg& msg);
  /// Cold-restart discipline: floods a REGION_PULL through the region so
  /// members answer with immediate out-of-cycle REGION_LOADs.
  void solicit_region_reports();
  /// Is this aggregator candidate still inside its post-restart warm-up
  /// (no fresh member report since it came back)?
  bool aggregator_cold() const;
  /// Escalates an unsatisfied discovery round to the own-region aggregator
  /// whose rank rotates with the attempt number (failover by retry).
  void send_region_query(const grid::JobSpec& spec, std::size_t attempt);
  /// Aggregator side of a query: pick a target region from the digest table
  /// (rotating with `attempt` so repeated retries sweep regions) and forward.
  /// A cold or digest-less candidate hands the query to the next rank
  /// instead (bounded by `handoffs`, see RegionQueryMsg::handoffs).
  void serve_region_query(NodeId initiator, const grid::JobSpec& spec,
                          std::uint32_t attempt, std::uint32_t handoffs);

  // --- self-healing plane (docs/overlay.md) ------------------------------
  /// One probe round: re-syncs the view against the overlay neighbor list,
  /// records misses (suspect/evict), pings every tracked peer without an
  /// outstanding probe, then tops the live degree back up via repair.
  void probe_tick();
  void on_ping(NodeId from, const PingMsg& msg);
  void on_pong(const PongMsg& msg);
  void on_link_req(NodeId from, const LinkReqMsg& msg);
  void on_link_ack(const LinkAckMsg& msg);
  /// Evicts `peer`: drops the overlay link and forgets the view entry.
  void evict_neighbor(NodeId peer);
  /// While the live degree sits below the floor, spends cached contacts on
  /// LINK_REQ attempts (bounded per round).
  void maybe_repair();
  /// Bounded live-neighbor sample piggybacked on PONG / LINK_ACK.
  std::vector<NodeId> contact_sample();

  /// Failsafe: sends (or locally applies) a lifecycle NOTIFY to the job's
  /// initiator.
  void notify_initiator_of(const JobId& id, NotifyMsg::Kind kind);
  void arm_watchdog(const JobId& id);
  void watchdog_expired(const JobId& id);
  /// Failsafe: lazy TTL sweep of completion receipts (completion_receipt_ttl;
  /// called from the periodic inform tick, mirroring flood-dedup GC).
  void sweep_completion_receipts();

  // --- adversary + defense planes (docs/adversary.md) ---------------------
  bool defense_on() const { return ctx_.config->defense.enabled; }
  bool adv_is(sim::FaultConfig::Adversary::Role role) const {
    return adv_role_ == role;
  }
  /// The configured lie magnitude (1.0 when no adversary plan is armed, so
  /// honest paths dividing by it are no-ops).
  double lie_factor() const;
  /// The cost this node *claims* when bidding (ACCEPT quote sites):
  /// my_cost for honest nodes, my_cost / lie_factor for underbidders.
  double bid_cost(const grid::JobSpec& job);
  /// The cost this node *advertises* for a held job (INFORM sites):
  /// truthful for honest nodes, deflated for free-riders.
  double advertised_cost(double true_cost);
  /// Reputation-discounted ranking cost of an offer: quoted cost divided by
  /// the bidder's credibility (floored). Identity when the defense is off.
  double discounted_cost(const AcceptMsg& offer) const;
  /// Folds a promise-vs-delivery outcome for `subject` into the ledger,
  /// fires on_reputation, and evicts the peer on crossing the suspicion
  /// threshold. No-op when the defense plane is off.
  void observe_reputation(NodeId subject, double outcome);
  /// Arms (or re-arms) the straggler deadline of a watched job from its
  /// recorded quote. No-op unless the defense plane is on.
  void arm_straggler(const JobId& id);
  /// Straggler deadline fired: open the revoke-before-grant window.
  void straggler_expired(const JobId& id);
  /// kRevoke retransmission timer fired: retry or treat as an ignored
  /// revoke (score 0) and hedge anyway.
  void revoke_expired(const JobId& id);
  /// Sends one kRevoke NOTIFY to the last known assignee and arms the
  /// retransmission timer.
  void send_revoke(const JobId& id);
  /// Revoke window closed (kRevokeAck or retries exhausted): duplicate the
  /// ASSIGN to the recorded runner-up, within hedge_budget.
  void dispatch_hedge(const JobId& id);
  /// Assignee side of a kRevoke NOTIFY: replay the receipt if completed,
  /// defend with kStarted if running, hand the job back with kRevokeAck if
  /// queued (or unknown).
  void handle_revoke(const NotifyMsg& msg);

  /// Re-syncs this node's contribution to ctx_.idle_gauge after any queue
  /// or executor transition.
  void sync_idle_gauge();

  void flood_request(const grid::JobSpec& spec, std::size_t attempt);
  void decide_assignment(const JobId& id);
  void send_assign(NodeId target, const grid::JobSpec& spec, NodeId initiator,
                   bool reschedule, bool hedge = false);
  void accept_job(const grid::JobSpec& spec, NodeId initiator, bool reschedule);
  void inform_tick();
  void kick_executor();
  void complete_running();
  void schedule_flood_gc(const Uuid& flood_id);

  double my_cost(const grid::JobSpec& job) const;

  NodeContext ctx_;
  NodeId self_;
  grid::NodeProfile profile_;
  std::unique_ptr<sched::LocalScheduler> sched_;
  Rng rng_;
  std::string vo_;

  std::optional<Running> running_;
  std::unordered_map<JobId, PendingRequest> pending_requests_;
  std::unordered_map<JobId, PendingInform> pending_informs_;
  std::unordered_map<JobId, Watchdog> watched_;
  /// Delegations awaiting an ASSIGN_ACK (empty when assign_ack is off).
  std::unordered_map<JobId, PendingAssign> pending_assigns_;
  /// Assign ids already accepted, so retransmissions and network duplicates
  /// re-ACK without re-enqueueing (entries GC after assign_dedup_gc_delay).
  std::unordered_set<Uuid> acked_assigns_;
  /// Initiator address for every job currently queued or running here.
  std::unordered_map<JobId, NodeId> initiator_of_;
  /// Jobs this node ran to completion (failsafe only), with the completion
  /// time. Like watched_ on the initiator side, the receipt models stable
  /// storage and survives crashes: a failsafe recovery flood for one of
  /// these jobs means the completion NOTIFY never landed, and the answer is
  /// a replayed receipt, not a bid for a second execution. Receipts older
  /// than completion_receipt_ttl are dropped by a lazy sweep inside the
  /// periodic inform tick (no extra events, so enabling the TTL keeps
  /// failsafe runs byte-identical) — no recovery flood can arrive once the
  /// initiator's watchdog budget is spent, so expired receipts are dead
  /// weight.
  std::unordered_map<JobId, TimePoint> completed_here_;
  /// Overload plane: shed jobs waiting out their INFORM burst.
  std::unordered_map<JobId, ShedJob> shed_jobs_;
  /// REJECT ids already acted on, so network duplicates of one refusal do
  /// not spawn competing discovery rounds (GC'd like acked_assigns_).
  std::unordered_set<Uuid> seen_rejects_;

  sim::EventHandle inform_timer_;
  sim::EventHandle reservation_wake_;
  bool started_{false};
  bool crashed_{false};
  bool counted_idle_{false};  // current contribution to ctx_.idle_gauge
  /// Overload-plane hysteresis: true while this node withholds ACCEPTs.
  bool bids_suppressed_{false};
  Counters counters_;

  // --- adversary + defense plane state ------------------------------------
  /// This node's designated misbehavior, asked of the fault plane once at
  /// construction (stateless hash — no RNG draws). nullopt = honest.
  std::optional<sim::FaultConfig::Adversary::Role> adv_role_{};
  /// Promise-vs-delivery ledger over past delegation targets. Constructed
  /// from config but only written when the defense plane is on.
  sched::ReputationLedger reputation_;

  // --- self-healing plane state (all inert when healing is off) ----------
  overlay::NeighborView view_;
  sim::EventHandle probe_timer_;
  /// Probe-plane randomness is a separate stream seeded from the node id
  /// only: gossip samples and probe phases never perturb the protocol RNG,
  /// so healing-off runs stay byte-identical whether or not the plane is
  /// compiled in.
  Rng probe_rng_;
  /// Neighbor addresses snapshotted at crash time (stable storage): the
  /// rejoin path LINK_REQs them on restart.
  std::vector<NodeId> stable_contacts_;
  std::uint32_t probe_seq_{0};

  // --- hierarchy plane state (all inert when the plane is off) ------------
  /// A member's latest load report, held by aggregator candidates.
  struct MemberReport {
    overlay::MemberLoad load;
    TimePoint received{};
  };
  /// A remote region's latest digest, held by aggregator candidates.
  struct DigestEntry {
    overlay::RegionDigest digest;
    TimePoint received{};
  };
  std::unordered_map<NodeId, MemberReport> member_loads_;
  std::unordered_map<std::uint32_t, DigestEntry> digest_table_;
  sim::EventHandle report_timer_;
  sim::EventHandle digest_timer_;
  /// Monotone per-aggregator digest sequence (informational; survives
  /// crashes so restarted aggregators never reuse an epoch).
  std::uint64_t digest_epoch_{0};
  /// Cold-restart discipline (aggregator_warmup): set on the restart path
  /// only — fault-free runs never touch it — and cleared by the first fresh
  /// REGION_LOAD or by the warm-up deadline passing. While cold the
  /// candidate refuses to serve REGION_QUERYs on stale state and hands them
  /// to the next rank.
  bool agg_cold_{false};
  TimePoint cold_until_{};
  /// Hierarchy-plane randomness is its own stream seeded from the node id
  /// only, same discipline as probe_rng_: timer phases never perturb the
  /// protocol RNG tree, so hierarchy-off runs stay byte-identical.
  Rng hier_rng_;
};

}  // namespace aria::proto
