// Centralized omniscient meta-scheduler — an ablation baseline, not part of
// the paper's protocol.
//
// It represents the idealized classical alternative ARiA argues against
// (§II): a single scheduler with an instantaneous global view. On every
// submission it quotes all matching nodes with zero communication cost or
// delay and assigns to the cheapest. Comparing it against ARiA bounds how
// much the distributed protocol pays for decentralization.
#pragma once

#include <vector>

#include "core/node.hpp"
#include "core/observer.hpp"

namespace aria::proto {

class CentralizedMetaScheduler {
 public:
  /// `nodes` are the machines under management (non-owning); `observer` may
  /// be null.
  CentralizedMetaScheduler(sim::Simulator& sim, std::vector<AriaNode*> nodes,
                           ProtocolObserver* observer)
      : sim_{sim}, nodes_{std::move(nodes)}, observer_{observer} {}

  /// Assigns `job` to the lowest-cost matching node immediately.
  /// Returns false (and reports unschedulable) when nothing matches.
  bool submit(const grid::JobSpec& job, NodeId submitted_to);

  /// One global rescheduling sweep (the centralized analogue of the INFORM
  /// phase): moves any waiting job to a node quoting a lower cost than its
  /// current one by more than `threshold` seconds. Returns moves made.
  std::size_t rebalance(double threshold_seconds);

 private:
  AriaNode* best_node_for(const grid::JobSpec& job, double* cost_out) const;

  sim::Simulator& sim_;
  std::vector<AriaNode*> nodes_;
  ProtocolObserver* observer_;
};

}  // namespace aria::proto
