#include "core/tracker.hpp"

namespace aria::proto {

JobRecord* JobTracker::must_find(const JobId& id, const char* context) {
  auto it = records_.find(id);
  if (it == records_.end()) {
    violations_.push_back(std::string{context} + " for unknown job " +
                          id.to_string());
    return nullptr;
  }
  return &it->second;
}

void JobTracker::on_submitted(const grid::JobSpec& job, NodeId initiator,
                              TimePoint at) {
  auto [it, inserted] = records_.try_emplace(job.id);
  if (!inserted) {
    violations_.push_back("job " + job.id.to_string() + " submitted twice");
    return;
  }
  it->second.spec = job;
  it->second.initiator = initiator;
  it->second.submitted = at;
}

void JobTracker::on_request_retry(const JobId& id, std::size_t, TimePoint) {
  if (JobRecord* r = must_find(id, "retry")) ++r->retries;
}

void JobTracker::on_unschedulable(const JobId& id, TimePoint) {
  if (JobRecord* r = must_find(id, "unschedulable")) {
    r->unschedulable = true;
    ++unschedulable_;
  }
}

void JobTracker::on_assigned(const grid::JobSpec& job, NodeId node,
                             TimePoint at, bool reschedule) {
  JobRecord* r = must_find(job.id, "assignment");
  if (r == nullptr) return;
  if (r->started && !r->recovering) {
    violations_.push_back("job " + job.id.to_string() +
                          " assigned after execution started");
  }
  if (!r->recovering && reschedule != !r->assignments.empty()) {
    violations_.push_back("job " + job.id.to_string() +
                          " reschedule flag inconsistent with history");
  }
  if (reschedule) ++reschedules_;
  r->assignments.emplace_back(node, at);
}

void JobTracker::on_started(const JobId& id, NodeId node, TimePoint at) {
  JobRecord* r = must_find(id, "start");
  if (r == nullptr) return;
  if (r->started && !r->recovering) {
    violations_.push_back("job " + id.to_string() + " started twice");
    return;
  }
  if (r->assignments.empty() || r->assignments.back().first != node) {
    violations_.push_back("job " + id.to_string() +
                          " started on a node it was not assigned to");
  }
  r->started = at;
  r->executor = node;
  r->recovering = false;
  ++r->executions;
}

void JobTracker::on_completed(const JobId& id, NodeId node, TimePoint at,
                              Duration art) {
  JobRecord* r = must_find(id, "completion");
  if (r == nullptr) return;
  if (!r->started) {
    violations_.push_back("job " + id.to_string() +
                          " completed without starting");
    return;
  }
  if (r->completed) {
    violations_.push_back("job " + id.to_string() + " completed twice");
    return;
  }
  if (r->executor != node) {
    violations_.push_back("job " + id.to_string() +
                          " completed on a different node than it started");
  }
  r->completed = at;
  r->art = art;
  ++completed_;
}

void JobTracker::on_recovery(const JobId& id, std::size_t, TimePoint) {
  if (JobRecord* r = must_find(id, "recovery")) {
    ++r->recoveries;
    r->recovering = true;
    ++recoveries_;
  }
}

const JobRecord* JobTracker::find(const JobId& id) const {
  auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

}  // namespace aria::proto
