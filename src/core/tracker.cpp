#include "core/tracker.hpp"

namespace aria::proto {
namespace {

bool was_assigned(const JobRecord& r, NodeId node) {
  for (const auto& [assignee, at] : r.assignments) {
    if (assignee == node) return true;
  }
  return false;
}

}  // namespace

JobRecord* JobTracker::must_find(const JobId& id, const char* context) {
  auto it = records_.find(id);
  if (it == records_.end()) {
    violations_.push_back(std::string{context} + " for unknown job " +
                          id.to_string());
    return nullptr;
  }
  return &it->second;
}

void JobTracker::on_submitted(const grid::JobSpec& job, NodeId initiator,
                              TimePoint at) {
  auto [it, inserted] = records_.try_emplace(job.id);
  if (!inserted) {
    violations_.push_back("job " + job.id.to_string() + " submitted twice");
    return;
  }
  it->second.spec = job;
  it->second.initiator = initiator;
  it->second.submitted = at;
}

void JobTracker::on_request_retry(const JobId& id, std::size_t, TimePoint) {
  if (JobRecord* r = must_find(id, "retry")) ++r->retries;
}

void JobTracker::on_unschedulable(const JobId& id, TimePoint) {
  if (JobRecord* r = must_find(id, "unschedulable")) {
    r->unschedulable = true;
    ++unschedulable_;
  }
}

void JobTracker::on_assigned(const grid::JobSpec& job, NodeId node,
                             TimePoint at, bool reschedule) {
  JobRecord* r = must_find(job.id, "assignment");
  if (r == nullptr) return;
  // A job that has undergone a recovery is tracked with at-least-once
  // semantics for the rest of its life: the presumed-dead assignee may have
  // been alive all along (only its ACKs/NOTIFYs were lost) and race the
  // recovery round, so re-assignment after a start is legitimate there.
  if (r->started && r->recoveries == 0) {
    violations_.push_back("job " + job.id.to_string() +
                          " assigned after execution started");
  }
  if (r->recoveries == 0 && reschedule != !r->assignments.empty()) {
    violations_.push_back("job " + job.id.to_string() +
                          " reschedule flag inconsistent with history");
  }
  if (reschedule) ++reschedules_;
  r->assignments.emplace_back(node, at);
}

void JobTracker::on_started(const JobId& id, NodeId node, TimePoint at) {
  JobRecord* r = must_find(id, "start");
  if (r == nullptr) return;
  if (r->started && r->recoveries == 0) {
    violations_.push_back("job " + id.to_string() + " started twice");
    return;
  }
  // Normally only the latest assignee may start the job; after a recovery
  // any node it was ever assigned to may (the original assignee races the
  // recovery assignee — at-least-once).
  const bool assigned_here =
      r->recoveries > 0
          ? was_assigned(*r, node)
          : !r->assignments.empty() && r->assignments.back().first == node;
  if (!assigned_here) {
    violations_.push_back("job " + id.to_string() +
                          " started on a node it was not assigned to");
  }
  if (!r->started) r->started = at;
  r->executor = node;
  ++r->executions;
}

void JobTracker::on_completed(const JobId& id, NodeId node, TimePoint at,
                              Duration art) {
  JobRecord* r = must_find(id, "completion");
  if (r == nullptr) return;
  if (!r->started) {
    violations_.push_back("job " + id.to_string() +
                          " completed without starting");
    return;
  }
  if (r->completed) {
    // After a failsafe recovery the job runs at-least-once: if the original
    // assignee was alive all along (only its NOTIFYs were lost), both the
    // original and the recovered execution legitimately complete. The first
    // completion wins; replays are dropped silently.
    if (r->recoveries == 0) {
      violations_.push_back("job " + id.to_string() + " completed twice");
    }
    return;
  }
  if (r->executor != node) {
    if (r->recoveries > 0 && was_assigned(*r, node)) {
      // The racing execution finished first; record the actual winner.
      r->executor = node;
    } else {
      violations_.push_back("job " + id.to_string() +
                            " completed on a different node than it started");
    }
  }
  r->completed = at;
  r->art = art;
  ++completed_;
}

void JobTracker::on_recovery(const JobId& id, std::size_t, TimePoint) {
  if (JobRecord* r = must_find(id, "recovery")) {
    ++r->recoveries;
    ++recoveries_;
  }
}

void JobTracker::on_abandoned(const JobId& id, TimePoint) {
  JobRecord* r = must_find(id, "abandonment");
  if (r == nullptr) return;
  if (r->done()) {
    violations_.push_back("job " + id.to_string() +
                          " abandoned after completing");
    return;
  }
  if (!r->abandoned) {
    r->abandoned = true;
    ++abandoned_;
  }
}

void JobTracker::on_shed(const grid::JobSpec& job, NodeId, TimePoint) {
  if (JobRecord* r = must_find(job.id, "shed")) {
    ++r->sheds;
    ++sheds_;
  }
}

void JobTracker::on_rejected(const JobId& id, NodeId, TimePoint) {
  if (JobRecord* r = must_find(id, "rejection")) {
    ++r->rejects;
    ++rejects_;
  }
}

std::size_t JobTracker::rejected_incomplete_count() const {
  std::size_t n = 0;
  for (const auto& [id, r] : records_) {
    if (r.rejects > 0 && !r.done()) ++n;
  }
  return n;
}

std::size_t JobTracker::stranded_count() const {
  std::size_t n = 0;
  for (const auto& [id, r] : records_) {
    if (!r.terminal()) ++n;
  }
  return n;
}

const JobRecord* JobTracker::find(const JobId& id) const {
  auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

}  // namespace aria::proto
