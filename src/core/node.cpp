#include "core/node.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/logging.hpp"

namespace aria::proto {

namespace {
// splitmix64-style mix so consecutive node ids seed well-separated
// per-plane streams (neither the probe nor the hierarchy plane may touch
// the protocol RNG tree). Tag 0 reproduces the historical probe seeds
// exactly; other tags open further independent streams per node.
std::uint64_t plane_seed(NodeId self, std::uint64_t tag) {
  std::uint64_t z = 0x9E3779B97F4A7C15ULL * (tag + 1) + self.value();
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}
constexpr std::uint64_t kProbePlane = 0;
constexpr std::uint64_t kHierarchyPlane = 1;

// Exact member count of region r under the stateless `n mod R` partition —
// the same ground truth the audit plane checks digests against; the defense
// plane's conservation clamp reuses it (docs/adversary.md).
std::size_t region_population(std::size_t node_count, std::uint32_t regions,
                              std::uint32_t r) {
  if (regions == 0) return 0;
  return node_count / regions + (r < node_count % regions ? 1 : 0);
}
}  // namespace

AriaNode::AriaNode(NodeContext ctx, NodeId self, grid::NodeProfile profile,
                   std::unique_ptr<sched::LocalScheduler> scheduler, Rng rng,
                   std::string virtual_org)
    : ctx_{ctx},
      self_{self},
      profile_{std::move(profile)},
      sched_{std::move(scheduler)},
      rng_{rng},
      vo_{std::move(virtual_org)},
      reputation_{ctx.config->defense.reputation_alpha,
                  ctx.config->defense.initial_reputation},
      probe_rng_{plane_seed(self, kProbePlane)},
      hier_rng_{plane_seed(self, kHierarchyPlane)} {
  assert(ctx_.sim && ctx_.net && ctx_.topo && ctx_.relay && ctx_.config &&
         ctx_.ert_error);
  assert(!ctx_.config->healing.enabled || ctx_.healing_topo != nullptr);
  assert(sched_);
  if (ctx_.faults != nullptr) {
    // Stateless designation — no RNG draws, so honest runs stay
    // byte-identical whether or not an (inert) adversary plan is configured.
    adv_role_ = ctx_.faults->adversary_role(self_);
  }
  if (ctx_.config->overload.enabled) {
    // Queue bound scales with the machine's speed: a 2x performance index
    // drains twice as fast, so it may hold twice the work.
    const double cap =
        ctx_.config->overload.capacity_per_perf * profile_.performance_index;
    sched_->set_capacity(std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(cap))));
  }
  sync_idle_gauge();  // a fresh node is idle
}

AriaNode::~AriaNode() {
  if (started_) stop();
  if (counted_idle_ && ctx_.idle_gauge != nullptr) {
    --*ctx_.idle_gauge;  // leave the gauge consistent for surviving nodes
  }
}

void AriaNode::sync_idle_gauge() {
  if (ctx_.idle_gauge == nullptr) return;
  const bool now_idle = idle();
  if (now_idle == counted_idle_) return;
  counted_idle_ = now_idle;
  if (now_idle) {
    ++*ctx_.idle_gauge;
  } else {
    --*ctx_.idle_gauge;
  }
}

void AriaNode::start() {
  assert(!started_);
  started_ = true;
  ctx_.net->attach(self_, [this](sim::Envelope env) { handle(std::move(env)); });
  // Random phase decorrelates the per-node INFORM timers (a deployment has
  // no synchronized clocks either).
  const Duration phase =
      rng_.uniform_duration(Duration::zero(), ctx_.config->inform_period);
  inform_timer_ = ctx_.sim->schedule_periodic(
      phase, ctx_.config->inform_period, [this] { inform_tick(); });
  if (ctx_.config->healing.enabled) {
    // Probe phase comes from the probe stream: enabling healing must not
    // consume draws the protocol plane would otherwise make.
    const Duration probe_phase = probe_rng_.uniform_duration(
        Duration::zero(), ctx_.config->healing.probe_period);
    probe_timer_ = ctx_.sim->schedule_periodic(
        probe_phase, ctx_.config->healing.probe_period,
        [this] { probe_tick(); });
  }
  if (hierarchy_on()) {
    // Phases come from the hierarchy stream (same discipline as the probe
    // plane): enabling the hierarchy must not consume protocol draws.
    const HierarchyParams& h = ctx_.config->hierarchy;
    const Duration report_phase =
        hier_rng_.uniform_duration(Duration::zero(), h.load_report_period);
    report_timer_ = ctx_.sim->schedule_periodic(
        report_phase, h.load_report_period, [this] { region_report_tick(); });
    if (region_aggregator()) {
      const Duration digest_phase =
          hier_rng_.uniform_duration(Duration::zero(), h.digest_period);
      digest_timer_ = ctx_.sim->schedule_periodic(
          digest_phase, h.digest_period, [this] { region_digest_tick(); });
    }
  }
}

void AriaNode::stop() {
  started_ = false;
  inform_timer_.cancel();
  probe_timer_.cancel();
  report_timer_.cancel();
  digest_timer_.cancel();
  reservation_wake_.cancel();
  if (running_) running_->completion.cancel();
  for (auto& [id, pending] : pending_requests_) pending.timeout.cancel();
  for (auto& [id, p] : pending_assigns_) p.timer.cancel();
  for (auto& [id, s] : shed_jobs_) s.timer.cancel();
  for (auto& [id, w] : watched_) {
    w.timer.cancel();
    w.straggler_timer.cancel();
    w.revoke_timer.cancel();
  }
  ctx_.net->detach(self_);
}

void AriaNode::crash() {
  assert(started_ && !crashed_);
  stop();
  crashed_ = true;
  // Volatile state is gone: the executing job, the queue, in-flight
  // discovery rounds, advertisements, delegation retries and the ACK dedup
  // set. watched_ deliberately survives — the list of jobs a user handed to
  // this node models stable storage, and a restarted initiator must resume
  // supervising them (stop() already cancelled the timers; restart()
  // re-arms them).
  running_.reset();
  sched_->clear();
  pending_requests_.clear();
  pending_informs_.clear();
  pending_assigns_.clear();
  acked_assigns_.clear();
  initiator_of_.clear();
  shed_jobs_.clear();  // in-flight shed buffers die with the node; the
                       // initiator's failsafe watchdog recovers those jobs
  seen_rejects_.clear();
  bids_suppressed_ = false;
  // Aggregator tables are volatile: a restarted candidate rebuilds them
  // from the next report/digest cycle (digest_epoch_ stays monotone).
  member_loads_.clear();
  digest_table_.clear();
  if (ctx_.config->healing.enabled) {
    // The liveness view is volatile, but the neighbor *addresses* model
    // stable storage (a deployment keeps its bootstrap list on disk): the
    // rejoin path LINK_REQs them on restart. Snapshot before the survivors
    // start evicting this node's links.
    stable_contacts_ = ctx_.topo->neighbors(self_);
    view_.clear();
  }
  sync_idle_gauge();  // crashed nodes are down, not idle
}

void AriaNode::restart() {
  assert(crashed_ && !started_);
  crashed_ = false;
  start();
  // Resume supervising every initiated job not yet known-completed; if its
  // assignee also vanished meanwhile, the watchdog re-floods. The stored
  // deadline survives the crash (stable storage) — re-arming the full span
  // from `now` would let periodic churn starve the watchdog forever
  // whenever this node's uptime is shorter than the span. A deadline that
  // passed while we were down fires after one margin, leaving a live
  // assignee's heartbeats time to arrive and disarm the false alarm.
  for (auto& [id, w] : watched_) {
    const TimePoint due = std::max(
        w.deadline, ctx_.sim->now() + ctx_.config->failsafe_margin);
    w.timer.cancel();
    w.deadline = due;
    // Straggler/revoke timers died with the crash; the plain watchdog covers
    // the job until the next defended decision records a fresh promise.
    w.revoke_pending = false;
    const JobId job = id;
    w.timer = ctx_.sim->schedule_after(
        due - ctx_.sim->now(), [this, job] { watchdog_expired(job); });
  }
  if (ctx_.config->healing.enabled) {
    // Rejoin: ask every remembered neighbor to re-establish the link. The
    // dead ones simply never answer; the live ones LINK_ACK and reseed the
    // contact cache, after which normal repair tops the degree back up.
    for (NodeId c : stable_contacts_) {
      ++view_.stats().rejoin_requests;
      ctx_.net->send(self_, c, std::make_unique<LinkReqMsg>(self_));
    }
  }
  if (hierarchy_on() && region_aggregator() &&
      !ctx_.config->hierarchy.aggregator_warmup.is_zero()) {
    // Cold-restart discipline: the crash wiped member_loads_ and
    // digest_table_, so until a fresh report arrives this candidate would
    // answer REGION_QUERYs from nothing. Mark it cold (serve_region_query
    // hands queries to the next rank meanwhile) and solicit immediate
    // out-of-cycle reports instead of waiting a full load_report_period.
    agg_cold_ = true;
    cold_until_ = ctx_.sim->now() + ctx_.config->hierarchy.aggregator_warmup;
    solicit_region_reports();
  }
  sync_idle_gauge();
}

Duration AriaNode::running_remaining() const {
  if (!running_) return Duration::zero();
  const TimePoint eta = running_->started + running_->job.ertp;
  const Duration left = eta - ctx_.sim->now();
  return left.is_negative() ? Duration::zero() : left;
}

bool AriaNode::can_bid(const grid::JobSpec& job) const {
  if (!grid::satisfies(profile_, job.requirements, vo_)) return false;
  // Deadline offers are never mixed with batch ones (paper §III-C).
  const bool deadline_node =
      sched_->cost_family() == sched::CostFamily::kDeadline;
  return job.has_deadline() == deadline_node;
}

double AriaNode::my_cost(const grid::JobSpec& job) const {
  return sched_->cost_of_adding(job, job.ert_on(profile_.performance_index),
                                running_remaining(), ctx_.sim->now());
}

// ---------------------------------------------------------------------------
// Submission phase
// ---------------------------------------------------------------------------

void AriaNode::submit(grid::JobSpec job) {
  assert(!job.id.is_nil());
  if (ctx_.observer) {
    ctx_.observer->on_submitted(job, self_, ctx_.sim->now());
  }
  auto [it, inserted] = pending_requests_.try_emplace(job.id);
  assert(inserted && "duplicate submission of the same job UUID");
  it->second.spec = std::move(job);
  it->second.attempt = 1;
  if (ctx_.config->failsafe) {
    Watchdog& w = watched_[it->second.spec.id];
    w.spec = it->second.spec;
    arm_watchdog(it->second.spec.id);
  }
  flood_request(it->second.spec, 1);
}

void AriaNode::flood_request(const grid::JobSpec& spec, std::size_t attempt) {
  auto it = pending_requests_.find(spec.id);
  assert(it != pending_requests_.end());
  it->second.attempt = attempt;
  it->second.offers.clear();
  it->second.remote_round = false;  // each round gets one fresh extra window

  const Uuid flood_id = Uuid::generate(rng_);
  ctx_.relay->mark_seen(self_, flood_id, ctx_.sim->now());
  schedule_flood_gc(flood_id);

  // The initiator may compete for its own job (no wire traffic involved).
  if (ctx_.config->initiator_self_candidate && can_bid(spec)) {
    if (overload_on() && bid_gate_closed()) {
      ++counters_.bids_suppressed;  // saturated: don't bid on own job either
    } else {
      const double cost = bid_cost(spec);
      it->second.offers.emplace_back(self_, spec.id, cost);
      if (ctx_.observer) {
        ctx_.observer->on_bid_received(spec.id, self_, self_, cost,
                                       ctx_.sim->now());
      }
    }
  }

  bool wide = wide_flood(attempt);
  const std::size_t escalate = ctx_.config->hierarchy.escalate_silent_rounds;
  if (!wide && escalate > 0 && it->second.silent_rounds >= escalate) {
    // Sustained silence — region-local floods AND the cross-region
    // escalation path both drew nothing, the signature of a fully dead
    // candidate list. Widen now instead of waiting for wide_flood_every.
    wide = true;
    ++counters_.early_wide_escalations;
  }
  if (wide) ++counters_.wide_floods;
  const auto targets = flood_targets(ctx_.config->request_fanout,
                                     kInvalidNode, kInvalidNode, wide);
  const FloodMeta meta{flood_id,
                       static_cast<std::uint32_t>(ctx_.config->request_hops - 1),
                       self_};
  for (NodeId t : targets) {
    ctx_.net->send(self_, t,
                   std::make_unique<RequestMsg>(self_, spec, meta, wide));
  }
  ++counters_.requests_initiated;

  const JobId id = spec.id;
  it->second.timeout = ctx_.sim->schedule_after(
      ctx_.config->accept_timeout, [this, id] { decide_assignment(id); });
}

void AriaNode::decide_assignment(const JobId& id) {
  auto it = pending_requests_.find(id);
  if (it == pending_requests_.end()) return;  // already decided
  PendingRequest& pending = it->second;

  if (defense_on() && !pending.offers.empty()) {
    // Suspicion filter: offers from nodes whose promise-vs-delivery score
    // fell below the threshold are dropped outright — before the empty-round
    // check, so a round carried only by distrusted bids goes into retry
    // instead of rewarding a known liar.
    const double thr = ctx_.config->defense.suspicion_threshold;
    const auto first_bad = std::remove_if(
        pending.offers.begin(), pending.offers.end(),
        [this, thr](const AcceptMsg& o) {
          return reputation_.score(o.node) < thr;
        });
    counters_.offers_distrusted += static_cast<std::uint64_t>(
        std::distance(first_bad, pending.offers.end()));
    pending.offers.erase(first_bad, pending.offers.end());
  }

  if (pending.offers.empty()) {
    ++pending.silent_rounds;  // feeds early wide-flood escalation
    const std::size_t next_attempt = pending.attempt + 1;
    if (ctx_.config->retry.exhausted(pending.attempt)) {
      ARIA_WARN << self_.to_string() << ": job " << id.to_string()
                << " unschedulable after " << pending.attempt << " attempts";
      if (ctx_.observer) ctx_.observer->on_unschedulable(id, ctx_.sim->now());
      pending_requests_.erase(it);
      return;
    }
    if (ctx_.observer) {
      ctx_.observer->on_request_retry(id, next_attempt, ctx_.sim->now());
    }
    if (hierarchy_on()) {
      // Escalate cross-region in parallel with the local backoff: the
      // aggregator forwards the query to another region, whose members
      // ACCEPT directly into this still-open round.
      send_region_query(pending.spec, pending.attempt);
    }
    Duration backoff = ctx_.config->retry.wait_after(pending.attempt);
    const HierarchyParams& h = ctx_.config->hierarchy;
    if (h.silent_backoff_factor_cap > 0 && h.escalate_silent_rounds > 0 &&
        pending.silent_rounds >= h.escalate_silent_rounds) {
      // Dead-candidate-list suspicion: clamp the exponential curve so the
      // widened retries come on a short, bounded cadence.
      backoff = std::min(
          backoff, ctx_.config->retry.backoff *
                       static_cast<std::int64_t>(h.silent_backoff_factor_cap));
    }
    ctx_.sim->schedule_after(backoff, [this, id, next_attempt] {
      auto again = pending_requests_.find(id);
      if (again == pending_requests_.end()) return;
      if (hierarchy_on() && !again->second.offers.empty()) {
        // Cross-region offers arrived during the backoff: decide now
        // instead of re-flooding (which would wipe them).
        decide_assignment(id);
        return;
      }
      flood_request(again->second.spec, next_attempt);
    });
    return;
  }

  // Lowest cost wins; arrival order breaks ties (deterministic). Under the
  // defense plane the ranking cost is credibility-discounted (quoted cost /
  // reputation) — discounted_cost is the identity when the plane is off, so
  // this is exactly `a.cost < b.cost` for undefended runs.
  const auto best = std::min_element(
      pending.offers.begin(), pending.offers.end(),
      [this](const AcceptMsg& a, const AcceptMsg& b) {
        return discounted_cost(a) < discounted_cost(b);
      });

  // Hierarchy: a round whose best offer is poor counts as unsatisfied too.
  // Solicit one cross-region window (digest-guided) before committing —
  // without this, region-scoped discovery traps jobs in hot regions and the
  // backlog re-surfaces as per-job INFORM floods. At most one extra window
  // per round, so the decision still terminates deterministically.
  if (hierarchy_on() && !pending.remote_round &&
      best->cost >
          ctx_.config->hierarchy.delegate_cost_threshold.to_seconds()) {
    pending.remote_round = true;
    send_region_query(pending.spec, pending.attempt);
    const JobId again = id;
    pending.timeout = ctx_.sim->schedule_after(
        ctx_.config->accept_timeout, [this, again] { decide_assignment(again); });
    return;
  }
  const grid::JobSpec spec = std::move(pending.spec);
  const NodeId winner = best->node;
  const bool reschedule = pending.recovery_reschedule;
  const NodeId initiator =
      pending.on_behalf_of.valid() ? pending.on_behalf_of : self_;
  if (defense_on()) {
    // Record the promise this decision extracts: the winning quote, the
    // grant time, and the runner-up bid the hedge falls back to. Only the
    // watching initiator holds this state — rounds run on another node's
    // behalf leave the real initiator's plain watchdog in charge.
    if (const auto wit = watched_.find(id); wit != watched_.end()) {
      Watchdog& w = wit->second;
      w.quoted_cost = best->cost;
      w.assigned_at = ctx_.sim->now();
      w.last_known = winner;  // attributable even if the assignee goes dark
                              // before its first NOTIFY (black holes do)
      w.revoke_pending = false;
      w.revoke_sends = 0;
      w.runner_up = NodeId{};
      w.runner_up_cost = 0.0;
      const AcceptMsg* second = nullptr;
      for (const AcceptMsg& o : pending.offers) {
        if (o.node == winner) continue;
        if (second == nullptr ||
            discounted_cost(o) < discounted_cost(*second)) {
          second = &o;
        }
      }
      if (second != nullptr) {
        w.runner_up = second->node;
        w.runner_up_cost = second->cost;
      }
      arm_straggler(id);
    }
  }
  pending_requests_.erase(it);
  send_assign(winner, spec, initiator, reschedule);
}

void AriaNode::deliver_assignment(const grid::JobSpec& job, NodeId initiator,
                                  bool reschedule) {
  accept_job(job, initiator, reschedule);
}

bool AriaNode::remove_queued(const JobId& id) {
  if (!sched_->remove(id)) return false;
  initiator_of_.erase(id);
  pending_informs_.erase(id);
  sync_idle_gauge();
  return true;
}

void AriaNode::send_assign(NodeId target, const grid::JobSpec& spec,
                           NodeId initiator, bool reschedule, bool hedge) {
  if (target == self_) {
    if (overload_on() && admission_over()) {
      // The backlog crossed the watermark between the self-bid and this
      // decision; refuse locally exactly like a wire REJECT would.
      ++counters_.rejects_sent;
      if (ctx_.observer) {
        ctx_.observer->on_rejected(spec.id, self_, ctx_.sim->now());
      }
      handle_reject(spec, initiator, reschedule);
      return;
    }
    // Local delegation needs no wire message.
    if (ctx_.observer) {
      ctx_.observer->on_delegated(spec.id, self_, self_, ctx_.sim->now(),
                                  reschedule);
    }
    accept_job(spec, initiator, reschedule);
    return;
  }
  ++counters_.assigns_sent;
  if (ctx_.observer) {
    ctx_.observer->on_delegated(spec.id, self_, target, ctx_.sim->now(),
                                reschedule);
  }
  if (!ctx_.config->assign_ack) {
    ctx_.net->send(self_, target,
                   std::make_unique<AssignMsg>(initiator, spec, reschedule,
                                               Uuid{}, hedge));
    return;
  }
  // Acknowledged delegation: remember the attempt and retransmit until the
  // target confirms (or is presumed dead and a new discovery round starts).
  PendingAssign& p = pending_assigns_[spec.id];
  p.timer.cancel();  // a previous attempt for this job is superseded
  p.spec = spec;
  p.target = target;
  p.initiator = initiator;
  p.reschedule = reschedule;
  p.hedge = hedge;
  p.assign_id = Uuid::generate(rng_);
  p.sends = 1;
  const JobId id = spec.id;
  p.timer = ctx_.sim->schedule_after(ctx_.config->assign_ack_timeout,
                                     [this, id] { assign_ack_expired(id); });
  ctx_.net->send(self_, target,
                 std::make_unique<AssignMsg>(initiator, spec, reschedule,
                                             p.assign_id, hedge));
}

void AriaNode::assign_ack_expired(const JobId& id) {
  auto it = pending_assigns_.find(id);
  if (it == pending_assigns_.end()) return;
  PendingAssign& p = it->second;
  if (p.sends <= ctx_.config->assign_max_retries) {
    ++p.sends;
    ++counters_.assign_retries;
    ctx_.net->send(self_, p.target,
                   std::make_unique<AssignMsg>(p.initiator, p.spec,
                                               p.reschedule, p.assign_id,
                                               p.hedge));
    p.timer = ctx_.sim->schedule_after(ctx_.config->assign_ack_timeout,
                                       [this, id] { assign_ack_expired(id); });
    return;
  }
  // Target presumed dead. Re-flood on the original initiator's behalf; the
  // job may end up executing twice if the target was alive after all (only
  // the ACKs were lost) — at-least-once semantics, resolved by the tracker.
  const grid::JobSpec spec = std::move(p.spec);
  const NodeId initiator = p.initiator;
  const bool reschedule = p.reschedule;
  pending_assigns_.erase(it);
  ARIA_WARN << self_.to_string() << ": no ASSIGN_ACK for job "
            << id.to_string() << " after " << ctx_.config->assign_max_retries
            << " retries; rediscovering";
  if (pending_requests_.contains(id)) return;  // a round is already running
  ++counters_.assign_rediscoveries;
  if (ctx_.observer) ctx_.observer->on_recovery(id, 1, ctx_.sim->now());
  auto [pending, inserted] = pending_requests_.try_emplace(id);
  assert(inserted);
  pending->second.spec = spec;
  pending->second.recovery_reschedule = reschedule;
  pending->second.on_behalf_of = initiator;
  flood_request(pending->second.spec, 1);
}

void AriaNode::accept_job(const grid::JobSpec& spec, NodeId initiator,
                          bool reschedule) {
  if (adv_is(sim::FaultConfig::Adversary::Role::kBlackhole)) {
    // Black hole: the ASSIGN was ACKed upstream (on_assign) but the job is
    // silently dropped before any bookkeeping — no kQueued, no heartbeats,
    // no queue entry. With an always-empty queue this node keeps quoting an
    // attractive idle-machine cost, so undefended grids feed it forever; the
    // initiator's straggler revoke (ignored here) and failsafe watchdog are
    // the recovery paths.
    ++counters_.adv_assigns_swallowed;
    return;
  }
  // Nodes may not decline jobs they offered to take (paper §III-A). Under
  // the overload plane the bounded queue may still evict — the job (or a
  // policy-chosen victim) is then shed-and-forwarded, never dropped.
  initiator_of_[spec.id] = initiator;
  sched::QueuedJob incoming{
      spec, spec.ert_on(profile_.performance_index), ctx_.sim->now(), 0};
  std::optional<sched::QueuedJob> victim;
  if (overload_on()) {
    victim = sched_->enqueue_bounded(std::move(incoming), running_remaining(),
                                     ctx_.sim->now());
  } else {
    sched_->enqueue(std::move(incoming));
  }
  counters_.peak_queue_depth =
      std::max<std::uint64_t>(counters_.peak_queue_depth, sched_->size());
  if (reschedule) ++counters_.reschedules_in;
  if (ctx_.observer) {
    ctx_.observer->on_assigned(spec, self_, ctx_.sim->now(), reschedule);
  }
  if (ctx_.config->failsafe) {
    notify_initiator_of(spec.id, NotifyMsg::Kind::kQueued);
  }
  if (victim) shed_job(std::move(*victim));
  kick_executor();
  sync_idle_gauge();
}

// ---------------------------------------------------------------------------
// Message handling
// ---------------------------------------------------------------------------

void AriaNode::handle(sim::Envelope env) {
  if (auto* req = dynamic_cast<const RequestMsg*>(env.message.get())) {
    on_request(env.from, *req);
  } else if (auto* acc = dynamic_cast<const AcceptMsg*>(env.message.get())) {
    on_accept(*acc);
  } else if (auto* inf = dynamic_cast<const InformMsg*>(env.message.get())) {
    on_inform(env.from, *inf);
  } else if (auto* asg = dynamic_cast<const AssignMsg*>(env.message.get())) {
    on_assign(env.from, *asg);
  } else if (auto* ack = dynamic_cast<const AssignAckMsg*>(env.message.get())) {
    on_assign_ack(*ack);
  } else if (auto* ntf = dynamic_cast<const NotifyMsg*>(env.message.get())) {
    on_notify(*ntf);
  } else if (auto* rej = dynamic_cast<const RejectMsg*>(env.message.get())) {
    on_reject(env.from, *rej);
  } else if (hierarchy_on() && handle_region(env)) {
    // dispatched by handle_region
  } else if (ctx_.config->healing.enabled) {
    if (auto* ping = dynamic_cast<const PingMsg*>(env.message.get())) {
      on_ping(env.from, *ping);
    } else if (auto* pong = dynamic_cast<const PongMsg*>(env.message.get())) {
      on_pong(*pong);
    } else if (auto* lr = dynamic_cast<const LinkReqMsg*>(env.message.get())) {
      on_link_req(env.from, *lr);
    } else if (auto* la = dynamic_cast<const LinkAckMsg*>(env.message.get())) {
      on_link_ack(*la);
    }
  }
  // Unknown message types are ignored.
}

void AriaNode::on_request(NodeId from, const RequestMsg& msg) {
  if (!ctx_.relay->mark_seen(self_, msg.flood.flood_id, ctx_.sim->now())) {
    return;  // duplicate
  }

  if (ctx_.config->failsafe && completed_here_.contains(msg.job.id)) {
    // This node already ran the job to completion, so the flood is a
    // failsafe recovery whose NOTIFY never reached the initiator (down or
    // partitioned when the receipt landed). Replay the receipt and stop:
    // bidding would buy a pointless re-execution, and forwarding would
    // spread a flood whose answer is already known here.
    ++counters_.completion_replays;
    ctx_.net->send(self_, msg.initiator,
                   std::make_unique<NotifyMsg>(NotifyMsg::Kind::kCompleted,
                                               msg.job.id, self_));
    return;
  }

  bool replied = false;
  if (can_bid(msg.job)) {
    if (overload_on() && bid_gate_closed()) {
      // Saturated: withhold the bid so discovery routes around this node.
      // Not replying means the flood still forwards below.
      ++counters_.bids_suppressed;
    } else {
      ++counters_.accepts_sent;
      const double cost = bid_cost(msg.job);
      ctx_.net->send(self_, msg.initiator,
                     std::make_unique<AcceptMsg>(self_, msg.job.id, cost));
      if (ctx_.observer) {
        ctx_.observer->on_bid_sent(msg.job.id, self_, msg.initiator, cost,
                                   ctx_.sim->now());
      }
      replied = true;
    }
  }
  // Paper-literal forwarding rule: satisfied requests stop here.
  if (replied && !ctx_.config->forward_on_match) return;
  if (msg.flood.hops_left == 0) return;

  FloodMeta next = msg.flood;
  --next.hops_left;
  const auto targets = flood_targets(ctx_.config->request_fanout, from,
                                     msg.flood.origin, msg.wide);
  for (NodeId t : targets) {
    ++counters_.requests_forwarded;
    ctx_.net->send(self_, t, std::make_unique<RequestMsg>(msg.initiator,
                                                          msg.job, next,
                                                          msg.wide));
  }
}

void AriaNode::on_inform(NodeId from, const InformMsg& msg) {
  if (!ctx_.relay->mark_seen(self_, msg.flood.flood_id, ctx_.sim->now())) {
    return;
  }

  bool replied = false;
  if (msg.assignee != self_ && can_bid(msg.job)) {
    // An underbidder's lie also lets it falsely "improve" on advertisements.
    const double cost = bid_cost(msg.job);
    // Reply only when the improvement clears the threshold (paper §III-D).
    if (cost < msg.cost - ctx_.config->reschedule_threshold.to_seconds()) {
      if (overload_on() && bid_gate_closed()) {
        ++counters_.bids_suppressed;  // would have offered, but saturated
      } else {
        ++counters_.accepts_sent;
        ctx_.net->send(self_, msg.assignee,
                       std::make_unique<AcceptMsg>(self_, msg.job.id, cost));
        if (ctx_.observer) {
          ctx_.observer->on_bid_sent(msg.job.id, self_, msg.assignee, cost,
                                     ctx_.sim->now());
        }
        replied = true;
      }
    }
  }
  if (replied && !ctx_.config->forward_on_match) return;
  if (msg.flood.hops_left == 0) return;

  FloodMeta next = msg.flood;
  --next.hops_left;
  const auto targets =
      flood_targets(ctx_.config->inform_fanout, from, msg.flood.origin);
  for (NodeId t : targets) {
    ++counters_.informs_forwarded;
    ctx_.net->send(self_, t,
                   std::make_unique<InformMsg>(msg.assignee, msg.job, msg.cost,
                                               next));
  }
}

void AriaNode::on_accept(const AcceptMsg& msg) {
  // Case 1: an offer for a REQUEST this node initiated.
  if (auto it = pending_requests_.find(msg.job_id);
      it != pending_requests_.end()) {
    it->second.offers.push_back(msg);
    if (ctx_.observer) {
      ctx_.observer->on_bid_received(msg.job_id, self_, msg.node, msg.cost,
                                     ctx_.sim->now());
    }
    return;
  }

  // Case 2: an offer for a job this node shed from its bounded queue. The
  // job's only home is the shed buffer, so the first viable offer wins —
  // there is no local cost to re-verify against.
  if (auto sh = shed_jobs_.find(msg.job_id); sh != shed_jobs_.end()) {
    ShedJob shed = std::move(sh->second);
    shed.timer.cancel();
    shed_jobs_.erase(sh);
    if (ctx_.observer) {
      ctx_.observer->on_bid_received(msg.job_id, self_, msg.node, msg.cost,
                                     ctx_.sim->now());
    }
    ++counters_.sheds_rescheduled;
    ++counters_.reschedules_out;
    if ((ctx_.config->notify_initiator || ctx_.config->failsafe) &&
        shed.initiator.valid()) {
      if (shed.initiator == self_) {
        on_notify(
            NotifyMsg{NotifyMsg::Kind::kRescheduled, msg.job_id, msg.node});
      } else {
        ctx_.net->send(self_, shed.initiator,
                       std::make_unique<NotifyMsg>(
                           NotifyMsg::Kind::kRescheduled, msg.job_id,
                           msg.node));
      }
    }
    send_assign(msg.node, shed.spec, shed.initiator, /*reschedule=*/true);
    return;
  }

  // Case 3: a rescheduling proposal for a job this node currently holds.
  const auto pi = pending_informs_.find(msg.job_id);
  if (pi == pending_informs_.end()) return;  // stale or unsolicited
  const sched::QueuedJob* held = sched_->find(msg.job_id);
  if (held == nullptr) {
    // Started executing or already moved elsewhere meanwhile.
    pending_informs_.erase(pi);
    return;
  }
  // Re-verify against the *current* local cost — the queue may have changed
  // since the INFORM went out.
  const double current = sched_->current_cost(msg.job_id, running_remaining(),
                                              ctx_.sim->now());
  if (!(msg.cost < current)) return;  // keep waiting; other offers may come
  if (ctx_.observer) {
    // Rescheduling offers are not collected into a set — the first offer
    // that still beats the current local cost wins — so only the winning
    // bid is recorded.
    ctx_.observer->on_bid_received(msg.job_id, self_, msg.node, msg.cost,
                                   ctx_.sim->now());
  }

  const grid::JobSpec spec = held->spec;
  const NodeId initiator = initiator_of_[msg.job_id];
  sched_->remove(msg.job_id);
  initiator_of_.erase(msg.job_id);
  pending_informs_.erase(pi);
  ++counters_.reschedules_out;
  sync_idle_gauge();

  // Keep the initiator's picture fresh: announce where the job went. The
  // plain flag is the paper's optional notification; failsafe requires it.
  if ((ctx_.config->notify_initiator || ctx_.config->failsafe) &&
      initiator.valid()) {
    if (initiator == self_) {
      on_notify(NotifyMsg{NotifyMsg::Kind::kRescheduled, spec.id, msg.node});
    } else {
      ctx_.net->send(self_, initiator,
                     std::make_unique<NotifyMsg>(NotifyMsg::Kind::kRescheduled,
                                                 spec.id, msg.node));
    }
  }
  send_assign(msg.node, spec, initiator, /*reschedule=*/true);
}

void AriaNode::on_assign(NodeId from, const AssignMsg& msg) {
  if (overload_on() && admission_over() && !holds(msg.job.id) &&
      !(ctx_.config->assign_ack && !msg.assign_id.is_nil() &&
        acked_assigns_.contains(msg.assign_id))) {
    // Over the admission watermark: answer with an explicit REJECT instead
    // of silently enqueueing, so the delegator can re-discover immediately.
    // Retransmissions of an already-queued attempt fall through to the
    // normal path (they must be re-ACKed, not refused), hence the holds()
    // and dedup guards.
    ++counters_.rejects_sent;
    if (ctx_.observer) {
      ctx_.observer->on_rejected(msg.job.id, self_, ctx_.sim->now());
    }
    ctx_.net->send(self_, from,
                   std::make_unique<RejectMsg>(self_, msg.job, msg.initiator,
                                               msg.reschedule,
                                               Uuid::generate(rng_)));
    return;
  }
  if (ctx_.config->assign_ack && !msg.assign_id.is_nil()) {
    // Always confirm — a duplicate usually means the previous ACK was lost.
    ++counters_.assign_acks_sent;
    ctx_.net->send(self_, from, std::make_unique<AssignAckMsg>(
                                    self_, msg.job.id, msg.assign_id));
    if (!acked_assigns_.insert(msg.assign_id).second) {
      return;  // retransmission or network duplicate; already enqueued
    }
    const Uuid assign_id = msg.assign_id;
    ctx_.sim->schedule_after(ctx_.config->assign_dedup_gc_delay,
                             [this, assign_id] {
                               acked_assigns_.erase(assign_id);
                             });
  }
  accept_job(msg.job, msg.initiator, msg.reschedule);
}

void AriaNode::on_assign_ack(const AssignAckMsg& msg) {
  auto it = pending_assigns_.find(msg.job_id);
  if (it == pending_assigns_.end()) return;  // late ACK; already resolved
  if (it->second.assign_id != msg.assign_id) return;  // stale attempt
  it->second.timer.cancel();
  pending_assigns_.erase(it);
}

// ---------------------------------------------------------------------------
// Failsafe (initiator-side job tracking and crash recovery)
// ---------------------------------------------------------------------------

void AriaNode::notify_initiator_of(const JobId& id, NotifyMsg::Kind kind) {
  const auto it = initiator_of_.find(id);
  if (it == initiator_of_.end() || !it->second.valid()) return;
  const NodeId initiator = it->second;
  if (initiator == self_) {
    on_notify(NotifyMsg{kind, id, self_});
    return;
  }
  ctx_.net->send(self_, initiator,
                 std::make_unique<NotifyMsg>(kind, id, self_));
}

void AriaNode::on_notify(const NotifyMsg& msg) {
  if (msg.kind == NotifyMsg::Kind::kRevoke) {
    handle_revoke(msg);  // assignee side; the job is not watched here
    return;
  }
  const auto it = watched_.find(msg.job_id);
  if (it == watched_.end()) return;  // not failsafe-tracking this job
  Watchdog& w = it->second;
  w.last_known = msg.current_assignee;
  switch (msg.kind) {
    case NotifyMsg::Kind::kQueued:
      w.assign_confirmed = true;
      arm_watchdog(msg.job_id);
      break;
    case NotifyMsg::Kind::kRescheduled:
    case NotifyMsg::Kind::kStarted:
      if (w.revoke_pending) {
        // The assignee defended the revoke (it is executing, or the job
        // legitimately moved): stand down — no hedge, no duplicate.
        w.revoke_pending = false;
        w.revoke_timer.cancel();
      }
      if (msg.kind == NotifyMsg::Kind::kRescheduled) {
        // The promise chain broke (a new assignee, a quote this watcher
        // never saw): the straggler deadline is void; the plain watchdog
        // keeps covering the job.
        w.straggler_timer.cancel();
        w.quoted_cost = 0.0;
      }
      arm_watchdog(msg.job_id);
      break;
    case NotifyMsg::Kind::kCompleted:
      w.timer.cancel();
      w.straggler_timer.cancel();
      w.revoke_timer.cancel();
      if (defense_on() && w.quoted_cost > 0.0) {
        // Promise vs delivery: on-time completions score ~1, a lie_factor
        // overrun scores ~1/lie_factor (clamped into [0, 1] by the ledger).
        const double elapsed = (ctx_.sim->now() - w.assigned_at).to_seconds();
        observe_reputation(msg.current_assignee,
                           elapsed <= 0.0 ? 1.0 : w.quoted_cost / elapsed);
      }
      watched_.erase(it);
      // A recovery round may already be in flight (the watchdog re-flooded
      // before this receipt arrived); drop it — assigning a job that is
      // known-completed would only re-execute it.
      pending_requests_.erase(msg.job_id);
      break;
    case NotifyMsg::Kind::kRevokeAck:
      if (w.revoke_pending) {
        // The straggler handed the job back while it was still queued: the
        // promise is void, the job is homeless, and the hedge window opens.
        w.revoke_pending = false;
        w.revoke_timer.cancel();
        observe_reputation(msg.current_assignee, 0.0);
        dispatch_hedge(msg.job_id);
      }
      break;
    case NotifyMsg::Kind::kRevoke:
      break;  // dispatched before the watched_ lookup; unreachable
  }
}

void AriaNode::arm_watchdog(const JobId& id) {
  const auto it = watched_.find(id);
  if (it == watched_.end()) return;
  Watchdog& w = it->second;
  w.timer.cancel();
  // The assignee heartbeats every inform_period while it holds the job
  // (queued or executing), so the deadline is a function of the heartbeat
  // cadence, NOT of the job's length: failsafe_factor is the number of
  // consecutive heartbeats the initiator tolerates losing before it
  // presumes the assignee dead. An ERT-scaled span would make crash
  // detection on long jobs take hours — longer than a churn cycle — and
  // strand them inside a finite horizon.
  const Duration span = ctx_.config->inform_period.scaled(
                            ctx_.config->failsafe_factor) +
                        ctx_.config->failsafe_margin +
                        ctx_.config->accept_timeout;
  w.deadline = ctx_.sim->now() + span;
  w.timer =
      ctx_.sim->schedule_after(span, [this, id] { watchdog_expired(id); });
}

void AriaNode::watchdog_expired(const JobId& id) {
  const auto it = watched_.find(id);
  if (it == watched_.end()) return;
  Watchdog& w = it->second;
  // Alive here (queued or executing locally): just keep watching.
  if (sched_->contains(id) || (running_ && running_->job.spec.id == id)) {
    arm_watchdog(id);
    return;
  }
  // A discovery round, delegation retry, or shed re-advertisement is
  // already in flight: keep watching rather than starting a competing one.
  if (pending_requests_.contains(id) || pending_assigns_.contains(id) ||
      shed_jobs_.contains(id)) {
    arm_watchdog(id);
    return;
  }
  if (w.recoveries >= ctx_.config->failsafe_max_recoveries) {
    ARIA_WARN << self_.to_string() << ": giving up on recovering job "
              << id.to_string() << " after " << w.recoveries << " attempts";
    if (ctx_.observer) ctx_.observer->on_abandoned(id, ctx_.sim->now());
    watched_.erase(it);
    return;
  }
  ++w.recoveries;
  ++counters_.recoveries;
  if (defense_on()) {
    // The assignee went silent past every heartbeat tolerance: the promise
    // is broken outright. Score zero so repeat offenders (black holes,
    // crashed-and-restarted liars) lose the next rounds they underbid.
    if (w.last_known.valid() && w.last_known != self_) {
      observe_reputation(w.last_known, 0.0);
    }
    w.straggler_timer.cancel();
    w.revoke_timer.cancel();
    w.revoke_pending = false;
    w.quoted_cost = 0.0;  // the recovery round records a fresh promise
  }
  if (ctx_.observer) {
    ctx_.observer->on_recovery(id, w.recoveries, ctx_.sim->now());
  }
  auto [pending, inserted] = pending_requests_.try_emplace(id);
  assert(inserted);
  pending->second.spec = w.spec;
  pending->second.recovery_reschedule = w.assign_confirmed;
  arm_watchdog(id);
  flood_request(pending->second.spec, 1);
}

// ---------------------------------------------------------------------------
// Adversary injection + defense plane (docs/adversary.md)
// ---------------------------------------------------------------------------

double AriaNode::lie_factor() const {
  if (!adv_role_ || ctx_.faults == nullptr ||
      !ctx_.faults->config().adversary) {
    return 1.0;
  }
  return std::max(1.0, ctx_.faults->config().adversary->lie_factor);
}

double AriaNode::bid_cost(const grid::JobSpec& job) {
  const double honest = my_cost(job);
  if (adv_is(sim::FaultConfig::Adversary::Role::kUnderbid)) {
    ++counters_.adv_underbids;
    return honest / lie_factor();
  }
  return honest;
}

double AriaNode::advertised_cost(double true_cost) {
  if (adv_is(sim::FaultConfig::Adversary::Role::kFreeride)) {
    // A deflated advertisement claims the job is already well placed, so
    // would-be rescuers fail the improvement threshold and the job stays
    // trapped behind this node's (honestly slow) backlog.
    ++counters_.adv_informs_deflated;
    return true_cost / lie_factor();
  }
  return true_cost;
}

double AriaNode::discounted_cost(const AcceptMsg& offer) const {
  if (!defense_on()) return offer.cost;
  const double rep = std::max(reputation_.score(offer.node),
                              ctx_.config->defense.reputation_floor);
  return offer.cost / rep;
}

void AriaNode::observe_reputation(NodeId subject, double outcome) {
  if (!defense_on() || !subject.valid() || subject == self_) return;
  const double thr = ctx_.config->defense.suspicion_threshold;
  const double before = reputation_.score(subject);
  const double after = reputation_.observe(subject, outcome);
  if (ctx_.observer) {
    ctx_.observer->on_reputation(self_, subject, after, ctx_.sim->now());
  }
  if (ctx_.config->healing.enabled && before >= thr && after < thr &&
      ctx_.topo->has_link(self_, subject)) {
    // Crossing into suspicion: cut the overlay link, so this node's floods
    // stop handing the offender fresh bidding opportunities. The healing
    // plane's repair path keeps the degree up with honest peers.
    ++counters_.reputation_evictions;
    evict_neighbor(subject);
  }
}

void AriaNode::arm_straggler(const JobId& id) {
  if (!defense_on()) return;
  const auto it = watched_.find(id);
  if (it == watched_.end()) return;
  Watchdog& w = it->second;
  w.straggler_timer.cancel();
  const DefenseParams& d = ctx_.config->defense;
  // Deadline = quoted cost * factor + slack: how far past its own promise
  // the assignee may run. Scales with the quote (unlike the heartbeat-based
  // watchdog) because the promise is exactly what is being policed.
  const Duration span =
      Duration::seconds_f(std::max(0.0, w.quoted_cost) * d.straggler_factor) +
      d.straggler_min_overdue;
  w.straggler_timer =
      ctx_.sim->schedule_after(span, [this, id] { straggler_expired(id); });
}

void AriaNode::straggler_expired(const JobId& id) {
  const auto it = watched_.find(id);
  if (it == watched_.end()) return;
  Watchdog& w = it->second;
  if (w.revoke_pending) return;  // already mid-revoke
  // The job is demonstrably in motion here (held, re-discovering, or being
  // re-advertised): the failsafe machinery owns it; a revoke would race.
  if (holds(id) || pending_requests_.contains(id) ||
      pending_assigns_.contains(id) || shedding(id)) {
    return;
  }
  if (w.hedges >= ctx_.config->defense.hedge_budget) return;  // budget spent
  if (!w.last_known.valid() || w.last_known == self_) return;
  if (!w.runner_up.valid() || w.runner_up == w.last_known) {
    return;  // single-offer round: nothing to hedge onto; watchdog covers
  }
  ++counters_.stragglers_detected;
  // Revoke-before-grant: never duplicate the ASSIGN while the straggler
  // might still legitimately hold (or finish) the job. The hedge waits for
  // the kRevokeAck — or for the retry budget to decide the node is a black
  // hole or a corpse.
  w.revoke_pending = true;
  w.revoke_sends = 0;
  send_revoke(id);
}

void AriaNode::send_revoke(const JobId& id) {
  const auto it = watched_.find(id);
  if (it == watched_.end()) return;
  Watchdog& w = it->second;
  ++w.revoke_sends;
  ++counters_.revokes_sent;
  // current_assignee carries the *revoker's* address here, so the assignee
  // knows where to answer (the initiator field of its bookkeeping may be a
  // third node for on-behalf delegations).
  ctx_.net->send(self_, w.last_known,
                 std::make_unique<NotifyMsg>(NotifyMsg::Kind::kRevoke, id,
                                             self_));
  w.revoke_timer = ctx_.sim->schedule_after(
      ctx_.config->assign_ack_timeout, [this, id] { revoke_expired(id); });
}

void AriaNode::revoke_expired(const JobId& id) {
  const auto it = watched_.find(id);
  if (it == watched_.end()) return;
  Watchdog& w = it->second;
  if (!w.revoke_pending) return;  // answered (ack or defense) meanwhile
  if (w.revoke_sends <= ctx_.config->assign_max_retries) {
    send_revoke(id);  // same retransmission discipline as ASSIGN_ACK
    return;
  }
  // Ignored revoke: a live node would have answered *something* (ack,
  // started-defense, or a completion replay). Presume black hole or corpse,
  // score the silence, and hedge — the ASSIGN dedup and completion-receipt
  // replay make the duplicate safe if the node was merely slow.
  w.revoke_pending = false;
  observe_reputation(w.last_known, 0.0);
  dispatch_hedge(id);
}

void AriaNode::dispatch_hedge(const JobId& id) {
  const auto it = watched_.find(id);
  if (it == watched_.end()) return;
  Watchdog& w = it->second;
  if (w.hedges >= ctx_.config->defense.hedge_budget) return;
  if (!w.runner_up.valid() || w.runner_up == w.last_known) return;
  if (holds(id) || pending_requests_.contains(id) ||
      pending_assigns_.contains(id)) {
    return;  // the job found (or is finding) a home since the revoke opened
  }
  ++w.hedges;
  ++counters_.hedges_dispatched;
  const NodeId target = w.runner_up;
  // The runner-up's quote becomes the new promise; the spent runner-up slot
  // is cleared so a second hedge (budget permitting) needs a fresh round.
  w.last_known = target;
  w.quoted_cost = w.runner_up_cost;
  w.assigned_at = ctx_.sim->now();
  w.runner_up = NodeId{};
  w.runner_up_cost = 0.0;
  arm_watchdog(id);  // fresh heartbeat window for the new assignee
  arm_straggler(id);
  send_assign(target, w.spec, self_, /*reschedule=*/w.assign_confirmed,
              /*hedge=*/true);
}

void AriaNode::handle_revoke(const NotifyMsg& msg) {
  if (!defense_on()) return;  // knob off: nobody legitimately sends these
  if (adv_is(sim::FaultConfig::Adversary::Role::kBlackhole)) {
    return;  // swallows revokes like everything else; retries will exhaust
  }
  const JobId& id = msg.job_id;
  const NodeId revoker = msg.current_assignee;  // see send_revoke
  if (!revoker.valid() || revoker == self_) return;
  if (ctx_.config->failsafe && completed_here_.contains(id)) {
    // Already ran it: the completion NOTIFY was lost. Replay the receipt —
    // hedging a finished job would be the double-run this protocol exists
    // to prevent.
    ++counters_.completion_replays;
    ctx_.net->send(self_, revoker,
                   std::make_unique<NotifyMsg>(NotifyMsg::Kind::kCompleted,
                                               id, self_));
    return;
  }
  if (running_ && running_->job.spec.id == id) {
    // Mid-execution there is no preemption (paper §III-A): defend the
    // assignment; the initiator cancels the revoke on this heartbeat.
    ctx_.net->send(self_, revoker,
                   std::make_unique<NotifyMsg>(NotifyMsg::Kind::kStarted, id,
                                               self_));
    return;
  }
  // Still queued (or unknown — e.g. receipt already swept): hand the job
  // back. remove_queued keeps the gauge, informs, and initiator map clean.
  remove_queued(id);
  ++counters_.revoke_acks_sent;
  ctx_.net->send(self_, revoker,
                 std::make_unique<NotifyMsg>(NotifyMsg::Kind::kRevokeAck, id,
                                             self_));
}

void AriaNode::sweep_completion_receipts() {
  const Duration ttl = ctx_.config->completion_receipt_ttl;
  if (ttl.is_zero() || completed_here_.empty()) return;
  const TimePoint now = ctx_.sim->now();
  for (auto it = completed_here_.begin(); it != completed_here_.end();) {
    if (it->second + ttl <= now) {
      it = completed_here_.erase(it);
    } else {
      ++it;
    }
  }
}

// ---------------------------------------------------------------------------
// Dynamic rescheduling phase
// ---------------------------------------------------------------------------

void AriaNode::inform_tick() {
  // Failsafe heartbeats: while a node holds a job, it keeps refreshing the
  // initiator's watchdog — queue waits are unbounded, so a one-shot
  // kQueued notification would not prevent false recoveries.
  if (ctx_.config->failsafe) {
    // Receipt TTL rides the existing periodic tick (a lazy sweep, like
    // flood-dedup GC): no new events, so arming the TTL keeps failsafe
    // runs byte-identical.
    sweep_completion_receipts();
    for (const auto& q : sched_->queue()) {
      notify_initiator_of(q.spec.id, NotifyMsg::Kind::kQueued);
    }
    if (running_) {
      notify_initiator_of(running_->job.spec.id, NotifyMsg::Kind::kStarted);
    }
  }

  if (!ctx_.config->dynamic_rescheduling) return;
  if (sched_->empty()) return;

  const auto candidates = sched_->rescheduling_candidates(
      ctx_.config->inform_jobs_per_period, running_remaining(),
      ctx_.sim->now());
  for (const JobId& id : candidates) {
    const sched::QueuedJob* held = sched_->find(id);
    if (held == nullptr) continue;
    const double cost = advertised_cost(
        sched_->current_cost(id, running_remaining(), ctx_.sim->now()));

    const Uuid flood_id = Uuid::generate(rng_);
    ctx_.relay->mark_seen(self_, flood_id, ctx_.sim->now());
    schedule_flood_gc(flood_id);
    const FloodMeta meta{
        flood_id, static_cast<std::uint32_t>(ctx_.config->inform_hops - 1),
        self_};
    const auto targets = flood_targets(ctx_.config->inform_fanout);
    for (NodeId t : targets) {
      ctx_.net->send(self_, t, std::make_unique<InformMsg>(self_, held->spec,
                                                           cost, meta));
    }
    if (!targets.empty()) ++counters_.informs_initiated;
    pending_informs_[id] = PendingInform{cost};
  }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

void AriaNode::kick_executor() {
  if (running_) return;
  if (sched_->empty()) return;

  // Advance reservation: a head job whose reservation has not opened yet
  // blocks the queue (no backfilling past a reservation); wake up when it
  // opens. Queue mutations re-enter here and re-arm as needed.
  const sched::QueuedJob& head = sched_->queue().front();
  if (head.spec.earliest_start && *head.spec.earliest_start > ctx_.sim->now()) {
    reservation_wake_.cancel();
    reservation_wake_ = ctx_.sim->schedule_at(*head.spec.earliest_start,
                                              [this] { kick_executor(); });
    return;
  }

  auto next = sched_->pop_next();
  if (!next) return;

  // Once execution starts the job can no longer move (no preemption or
  // migration, paper §III-A): drop any outstanding advertisement.
  pending_informs_.erase(next->spec.id);

  const Duration art = ctx_.ert_error->actual_running_time(
      next->spec.ert, profile_.performance_index, rng_);
  const JobId id = next->spec.id;
  Running run{std::move(*next), ctx_.sim->now(), art, {}};
  run.completion =
      ctx_.sim->schedule_after(art, [this] { complete_running(); });
  running_ = std::move(run);
  if (ctx_.observer) ctx_.observer->on_started(id, self_, ctx_.sim->now());
  if (ctx_.config->failsafe) {
    notify_initiator_of(id, NotifyMsg::Kind::kStarted);
  }
}

void AriaNode::complete_running() {
  assert(running_);
  const JobId id = running_->job.spec.id;
  const Duration art = running_->art;
  if (ctx_.config->failsafe) {
    notify_initiator_of(id, NotifyMsg::Kind::kCompleted);
    // Durable receipt (see completed_here_); the timestamp feeds the TTL
    // sweep riding the inform tick.
    completed_here_[id] = ctx_.sim->now();
  }
  initiator_of_.erase(id);
  ++counters_.jobs_executed;
  running_.reset();
  if (ctx_.observer) {
    ctx_.observer->on_completed(id, self_, ctx_.sim->now(), art);
  }
  kick_executor();
  sync_idle_gauge();
}

// ---------------------------------------------------------------------------
// Overload plane (docs/overload.md)
// ---------------------------------------------------------------------------

bool AriaNode::admission_over() const {
  return backlog_duration() >= ctx_.config->overload.admission_backlog;
}

bool AriaNode::bid_gate_closed() {
  // Hard gate: a full queue must not attract more work. Winning a bid while
  // at capacity would immediately shed a victim, and under grid-wide
  // saturation that degenerates into shed ping-pong (jobs bouncing between
  // full nodes forever). Sheds stay reachable through the genuine race —
  // two delegators assigning into the same last slot.
  if (sched_->at_capacity()) return true;
  const OverloadParams& ov = ctx_.config->overload;
  const Duration backlog = backlog_duration();
  if (bids_suppressed_) {
    if (backlog <= ov.admission_backlog.scaled(ov.bid_resume)) {
      bids_suppressed_ = false;  // drained enough: resume bidding
    }
  } else if (backlog >= ov.admission_backlog.scaled(ov.bid_stop)) {
    bids_suppressed_ = true;  // saturating: stop attracting work
  }
  return bids_suppressed_;
}

void AriaNode::on_reject(NodeId from, const RejectMsg& msg) {
  (void)from;
  if (!overload_on()) return;  // knob off: nobody legitimately sends these
  // The fault plane may duplicate the wire message; each *refusal* carries
  // its own UUID, so retransmitted copies collapse while a legitimate second
  // refusal of the same (job, node) pair still gets through.
  if (!seen_rejects_.insert(msg.reject_id).second) return;
  const Uuid reject_id = msg.reject_id;
  ctx_.sim->schedule_after(ctx_.config->assign_dedup_gc_delay,
                           [this, reject_id] {
                             seen_rejects_.erase(reject_id);
                           });
  handle_reject(msg.job, msg.initiator, msg.reschedule);
}

void AriaNode::handle_reject(const grid::JobSpec& spec, NodeId initiator,
                             bool reschedule) {
  // Stop retransmitting the refused attempt.
  if (auto it = pending_assigns_.find(spec.id); it != pending_assigns_.end()) {
    it->second.timer.cancel();
    pending_assigns_.erase(it);
  }
  // The job already found a home (a duplicate ASSIGN landed elsewhere, a
  // racing recovery round is in flight, or it bounced back here): starting
  // another discovery round would double-execute it.
  if (pending_requests_.contains(spec.id) || holds(spec.id) ||
      shedding(spec.id)) {
    return;
  }
  ++counters_.reject_rediscoveries;
  auto [pending, inserted] = pending_requests_.try_emplace(spec.id);
  assert(inserted);
  pending->second.spec = spec;
  pending->second.recovery_reschedule = reschedule;
  if (initiator.valid() && initiator != self_) {
    pending->second.on_behalf_of = initiator;
  }
  flood_request(pending->second.spec, 1);
}

void AriaNode::shed_job(sched::QueuedJob&& victim) {
  ++counters_.jobs_shed;
  const JobId id = victim.spec.id;
  NodeId initiator{};
  if (auto it = initiator_of_.find(id); it != initiator_of_.end()) {
    initiator = it->second;
    initiator_of_.erase(it);
  }
  pending_informs_.erase(id);
  if (ctx_.observer) {
    ctx_.observer->on_shed(victim.spec, self_, ctx_.sim->now());
  }

  // Shed-and-forward: an immediate out-of-cycle INFORM burst advertising the
  // job at the cost it would incur by *staying* here, so any less-loaded
  // neighbor outbids it (a free-rider deflates even this, starving its own
  // shed bursts of rescuers).
  const double cost = advertised_cost(
      sched_->cost_of_adding(victim.spec, victim.ertp, running_remaining(),
                             ctx_.sim->now()));
  const Uuid flood_id = Uuid::generate(rng_);
  ctx_.relay->mark_seen(self_, flood_id, ctx_.sim->now());
  schedule_flood_gc(flood_id);
  const FloodMeta meta{
      flood_id, static_cast<std::uint32_t>(ctx_.config->inform_hops - 1),
      self_};
  const auto targets = flood_targets(ctx_.config->inform_fanout);
  for (NodeId t : targets) {
    ctx_.net->send(self_, t, std::make_unique<InformMsg>(self_, victim.spec,
                                                         cost, meta));
  }
  if (!targets.empty()) ++counters_.informs_initiated;

  ShedJob shed{std::move(victim.spec), initiator, {}};
  shed.timer = ctx_.sim->schedule_after(
      ctx_.config->overload.shed_offer_timeout,
      [this, id] { shed_offer_expired(id); });
  shed_jobs_[id] = std::move(shed);
  sync_idle_gauge();
}

void AriaNode::shed_offer_expired(const JobId& id) {
  const auto it = shed_jobs_.find(id);
  if (it == shed_jobs_.end()) return;
  ShedJob shed = std::move(it->second);
  shed_jobs_.erase(it);
  ++counters_.sheds_failsafe;
  // No taker within the offer window: fall back to the regular discovery
  // path on the initiator's behalf (same shape as a failed delegation).
  if (pending_requests_.contains(id)) return;  // a round is already running
  auto [pending, inserted] = pending_requests_.try_emplace(id);
  assert(inserted);
  pending->second.spec = std::move(shed.spec);
  pending->second.recovery_reschedule = true;
  if (shed.initiator.valid() && shed.initiator != self_) {
    pending->second.on_behalf_of = shed.initiator;
  }
  flood_request(pending->second.spec, 1);
}

// ---------------------------------------------------------------------------
// Self-healing plane (docs/overlay.md)
// ---------------------------------------------------------------------------

void AriaNode::probe_tick() {
  const overlay::HealingParams& hp = ctx_.config->healing;
  ++view_.stats().probe_rounds;

  // Re-sync against the overlay: the ant-based maintainer (and the repair
  // path itself) adds and removes links between rounds, and the view must
  // follow the node's *current* neighbor list.
  for (NodeId n : ctx_.topo->neighbors(self_)) {
    if (!view_.tracked(n)) view_.track(n);
  }
  for (NodeId n : view_.tracked_peers()) {
    if (!ctx_.topo->has_link(self_, n)) view_.untrack(n);
  }

  for (NodeId peer : view_.tracked_peers()) {
    if (view_.outstanding(peer)) {
      // The previous round's probe went unanswered.
      if (view_.record_miss(peer, hp) ==
          overlay::NeighborView::Transition::kEvicted) {
        evict_neighbor(peer);
        continue;
      }
    }
    ++probe_seq_;
    view_.probe_sent(peer, probe_seq_);
    ctx_.net->send(self_, peer, std::make_unique<PingMsg>(self_, probe_seq_));
  }

  maybe_repair();
}

void AriaNode::evict_neighbor(NodeId peer) {
  view_.untrack(peer);
  // Both endpoints drop the link from their local neighbor sets; the
  // simulation stores their union, so one remove_link models both. A peer
  // that was merely partitioned converges to the same decision about us
  // from its own missed probes.
  if (ctx_.healing_topo != nullptr) {
    ctx_.healing_topo->remove_link(self_, peer);
  }
}

void AriaNode::maybe_repair() {
  const overlay::HealingParams& hp = ctx_.config->healing;
  std::size_t attempts = 0;
  std::size_t pending = 0;
  while (view_.live_degree() + pending < hp.degree_floor &&
         attempts < hp.repair_attempts) {
    const NodeId contact = view_.take_contact();
    if (!contact.valid()) break;  // cache exhausted; refills via PONG gossip
    ++attempts;
    ++pending;
    ctx_.net->send(self_, contact, std::make_unique<LinkReqMsg>(self_));
  }
}

std::vector<NodeId> AriaNode::contact_sample() {
  const overlay::HealingParams& hp = ctx_.config->healing;
  std::vector<NodeId> live = view_.live_neighbors();
  if (live.empty()) live = ctx_.topo->neighbors(self_);
  if (live.size() <= hp.gossip_contacts) return live;
  return probe_rng_.sample(live, hp.gossip_contacts);
}

void AriaNode::on_ping(NodeId from, const PingMsg& msg) {
  if (!view_.tracked(from)) {
    // The sender probed before our first round synced the view; admit it
    // lazily if the link really exists, otherwise ignore the stray probe
    // (answering would keep an evicted link half-alive).
    if (!ctx_.topo->has_link(self_, from)) return;
    view_.track(from);
  }
  ctx_.net->send(self_, from,
                 std::make_unique<PongMsg>(self_, msg.seq, contact_sample()));
}

void AriaNode::on_pong(const PongMsg& msg) {
  const overlay::HealingParams& hp = ctx_.config->healing;
  view_.pong_received(msg.from, msg.seq);
  for (NodeId c : msg.contacts) {
    view_.learn_contact(c, self_, hp.contact_cache);
  }
}

void AriaNode::on_link_req(NodeId from, const LinkReqMsg& msg) {
  // Accept unconditionally: a requester is either repairing a degree hole
  // or rejoining after a crash, and turning it away re-fragments the grid.
  (void)msg;
  if (ctx_.healing_topo != nullptr) {
    ctx_.healing_topo->add_link(self_, from);
  }
  view_.track(from);
  ctx_.net->send(self_, from,
                 std::make_unique<LinkAckMsg>(self_, contact_sample()));
}

void AriaNode::on_link_ack(const LinkAckMsg& msg) {
  const overlay::HealingParams& hp = ctx_.config->healing;
  if (ctx_.healing_topo != nullptr) {
    ctx_.healing_topo->add_link(self_, msg.from);
  }
  if (!view_.tracked(msg.from)) ++view_.stats().repair_links;
  view_.track(msg.from);
  for (NodeId c : msg.contacts) {
    view_.learn_contact(c, self_, hp.contact_cache);
  }
}

// ---------------------------------------------------------------------------
// Hierarchy plane (docs/hierarchy.md)
// ---------------------------------------------------------------------------

std::uint32_t AriaNode::my_region() const {
  return overlay::region_of(self_, ctx_.config->hierarchy.region_count);
}

bool AriaNode::region_aggregator() const {
  if (!hierarchy_on()) return false;
  const HierarchyParams& h = ctx_.config->hierarchy;
  return overlay::is_aggregator_candidate(self_, h.region_count,
                                          h.agg_standby);
}

std::optional<overlay::RegionDigest> AriaNode::region_digest_of(
    std::uint32_t region) const {
  const auto it = digest_table_.find(region);
  if (it == digest_table_.end()) return std::nullopt;
  return it->second.digest;
}

std::vector<NodeId> AriaNode::flood_targets(std::size_t fanout,
                                            NodeId exclude_a,
                                            NodeId exclude_b, bool wide) {
  if (!hierarchy_on() || wide) {
    return ctx_.relay->pick_targets(self_, fanout, exclude_a, exclude_b);
  }
  const HierarchyParams& h = ctx_.config->hierarchy;
  return ctx_.relay->pick_targets_in_region(
      self_, fanout, h.region_count, my_region(), exclude_a, exclude_b);
}

bool AriaNode::wide_flood(std::size_t attempt) const {
  const std::size_t every = ctx_.config->hierarchy.wide_flood_every;
  return hierarchy_on() && every != 0 && attempt % every == 0;
}

bool AriaNode::handle_region(const sim::Envelope& env) {
  if (auto* rl = dynamic_cast<const RegionLoadMsg*>(env.message.get())) {
    on_region_load(*rl);
  } else if (auto* rd =
                 dynamic_cast<const RegionDigestMsg*>(env.message.get())) {
    on_region_digest(*rd);
  } else if (auto* rq =
                 dynamic_cast<const RegionQueryMsg*>(env.message.get())) {
    on_region_query(*rq);
  } else if (auto* rf = dynamic_cast<const RegionFwdMsg*>(env.message.get())) {
    on_region_fwd(*rf);
  } else if (auto* rp = dynamic_cast<const RegionPullMsg*>(env.message.get())) {
    on_region_pull(env.from, *rp);
  } else {
    return false;
  }
  return true;
}

void AriaNode::region_report_tick() {
  const HierarchyParams& h = ctx_.config->hierarchy;
  const overlay::MemberLoad load{idle(), backlog_duration().to_seconds(),
                                 static_cast<std::uint32_t>(queue_length())};
  // Report to every candidate (not just the primary) so standbys hold a
  // warm table and failover costs one retry, not a table rebuild.
  for (std::size_t k = 0; k < h.agg_standby; ++k) {
    const NodeId cand =
        overlay::aggregator_candidate(my_region(), h.region_count, k);
    if (cand == self_) {
      member_loads_[self_] = MemberReport{load, ctx_.sim->now()};
      continue;
    }
    ++counters_.load_reports_sent;
    ctx_.net->send(self_, cand, std::make_unique<RegionLoadMsg>(self_, load));
  }
}

void AriaNode::region_digest_tick() {
  const HierarchyParams& h = ctx_.config->hierarchy;
  // Refresh the own entry, then age out members that stopped reporting
  // (crashed or partitioned) so the digest tracks the live region.
  member_loads_[self_] = MemberReport{
      overlay::MemberLoad{idle(), backlog_duration().to_seconds(),
                          static_cast<std::uint32_t>(queue_length())},
      ctx_.sim->now()};
  std::vector<std::pair<NodeId, overlay::MemberLoad>> fresh;
  fresh.reserve(member_loads_.size());
  for (auto it = member_loads_.begin(); it != member_loads_.end();) {
    if (it->second.received + h.staleness <= ctx_.sim->now()) {
      it = member_loads_.erase(it);
    } else {
      fresh.emplace_back(it->first, it->second.load);
      ++it;
    }
  }
  // Id order, so the (float) backlog sum never depends on hash-map history.
  std::sort(fresh.begin(), fresh.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<overlay::MemberLoad> loads;
  loads.reserve(fresh.size());
  for (const auto& [n, l] : fresh) loads.push_back(l);
  overlay::RegionDigest digest =
      overlay::aggregate_loads(my_region(), ++digest_epoch_, loads);
  if (adv_is(sim::FaultConfig::Adversary::Role::kPoison)) {
    // Byzantine aggregator: the digest claims an inflated, fully idle,
    // backlog-free region, so remote aggregators steer cross-region
    // delegations here. The inflation deliberately exceeds the region's
    // true population — exactly the conservation bound the defense clamp
    // and the audit plane check.
    ++counters_.adv_digests_poisoned;
    const double lie = lie_factor();
    digest.members = static_cast<std::uint32_t>(std::max(
        1.0, std::ceil(static_cast<double>(std::max(
                           digest.members, std::uint32_t{1})) *
                       lie)));
    digest.idle = digest.members;
    digest.backlog_seconds = 0.0;
    digest.queue_len = 0;
  }
  // Staleness hard bound: drop remote digests past the age-out instead of
  // merely skipping them at serve time, so a region severed for hours can
  // never resurface through region_digest_of or a future code path that
  // forgets the freshness check. Behavior-neutral for serve_region_query
  // (it already skips stale entries); pure state hygiene otherwise.
  for (auto it = digest_table_.begin(); it != digest_table_.end();) {
    if (it->second.received + h.staleness <= ctx_.sim->now()) {
      it = digest_table_.erase(it);
    } else {
      ++it;
    }
  }
  for (std::uint32_t r = 0; r < h.region_count; ++r) {
    if (r == my_region()) continue;
    for (std::size_t k = 0; k < h.agg_standby; ++k) {
      ++counters_.digests_sent;
      ctx_.net->send(
          self_, overlay::aggregator_candidate(r, h.region_count, k),
          std::make_unique<RegionDigestMsg>(self_, digest));
    }
  }
}

void AriaNode::on_region_load(const RegionLoadMsg& msg) {
  member_loads_[msg.from] = MemberReport{msg.load, ctx_.sim->now()};
  agg_cold_ = false;  // first fresh report ends a cold-restart warm-up early
}

void AriaNode::on_region_digest(const RegionDigestMsg& msg) {
  if (defense_on() && ctx_.config->defense.digest_clamp) {
    // Conservation clamp: a digest is a sum of member reports, so it can
    // never claim more members than the region holds, more idle machines
    // than members, or negative backlog. Violations are rejected whole —
    // "clamping" to a sane value would still let a poisoner steer
    // delegations — and surfaced to the audit plane.
    const overlay::RegionDigest& d = msg.digest;
    const std::uint32_t regions =
        static_cast<std::uint32_t>(ctx_.config->hierarchy.region_count);
    bool bad = d.region >= regions || d.idle > d.members ||
               d.backlog_seconds < 0.0;
    if (!bad && ctx_.grid_size > 0) {
      bad = d.members > region_population(ctx_.grid_size, regions, d.region);
    }
    if (bad) {
      ++counters_.digests_clamped;
      if (ctx_.observer) {
        ctx_.observer->on_digest_clamped(self_, msg.from, d.region, d.epoch,
                                         ctx_.sim->now());
      }
      return;
    }
  }
  ++counters_.digests_received;
  // Last received wins: primaries and standbys broadcast independently, and
  // a later arrival is always at least as fresh a view of that region.
  digest_table_[msg.digest.region] = DigestEntry{msg.digest, ctx_.sim->now()};
}

void AriaNode::send_region_query(const grid::JobSpec& spec,
                                 std::size_t attempt) {
  const HierarchyParams& h = ctx_.config->hierarchy;
  if (h.region_count <= 1) return;  // nowhere to delegate to
  // Failover by rotation: if the rank-0 aggregator is dead the query dies
  // with it, and the next attempt addresses rank 1 — no liveness tracking.
  const std::size_t rank =
      (attempt - 1) % std::max<std::size_t>(1, h.agg_standby);
  const NodeId cand =
      overlay::aggregator_candidate(my_region(), h.region_count, rank);
  ++counters_.region_queries_sent;
  const auto att = static_cast<std::uint32_t>(attempt);
  if (cand == self_) {
    serve_region_query(self_, spec, att, 0);  // the initiator is its own
                                              // aggregator; no wire hop
    return;
  }
  ctx_.net->send(self_, cand,
                 std::make_unique<RegionQueryMsg>(self_, spec, att));
}

void AriaNode::on_region_query(const RegionQueryMsg& msg) {
  serve_region_query(msg.initiator, msg.job, msg.attempt, msg.handoffs);
}

bool AriaNode::aggregator_cold() const {
  return agg_cold_ && ctx_.sim->now() < cold_until_;
}

void AriaNode::serve_region_query(NodeId initiator, const grid::JobSpec& spec,
                                  std::uint32_t attempt,
                                  std::uint32_t handoffs) {
  const HierarchyParams& h = ctx_.config->hierarchy;
  // Cold-restart discipline: a candidate inside its warm-up window lost its
  // tables in the crash, so an answer would silently strand the escalation.
  // Bounce the query to the next-rank candidate — at most agg_standby hops,
  // after which the holder serves best-effort rather than ping-ponging.
  if (aggregator_cold() && handoffs < h.agg_standby) {
    const std::size_t next_rank =
        (attempt - 1 + handoffs + 1) %
        std::max<std::size_t>(1, h.agg_standby);
    const NodeId next =
        overlay::aggregator_candidate(my_region(), h.region_count, next_rank);
    if (next != self_) {
      ++counters_.region_handoffs;
      ctx_.net->send(self_, next,
                     std::make_unique<RegionQueryMsg>(initiator, spec, attempt,
                                                      handoffs + 1));
      return;
    }
    // Sole candidate of the region: nobody to hand off to, serve anyway.
  }
  ++counters_.region_queries_served;
  // Candidate target regions: every fresh, non-empty digest except our own.
  std::vector<overlay::RegionDigest> cands;
  cands.reserve(digest_table_.size());
  for (const auto& [r, e] : digest_table_) {
    if (r == my_region()) continue;
    if (e.received + h.staleness <= ctx_.sim->now()) continue;
    if (e.digest.members == 0) continue;
    cands.push_back(e.digest);
  }
  if (cands.empty()) return;  // no digests yet; the initiator's region-local
                              // retry loop remains the fallback
  // Idle capacity first, then the shortest total backlog; region id breaks
  // ties deterministically.
  std::sort(cands.begin(), cands.end(),
            [](const overlay::RegionDigest& a, const overlay::RegionDigest& b) {
              if (a.idle != b.idle) return a.idle > b.idle;
              if (a.backlog_seconds != b.backlog_seconds) {
                return a.backlog_seconds < b.backlog_seconds;
              }
              return a.region < b.region;
            });
  // A digest cannot see VO or profile constraints, so the load-best region
  // may be wrong for this particular job — repeated retries must sweep the
  // others. Rotating an index into the load-sorted order is NOT a sweep:
  // idle counts drift between attempts, reshuffling the sort under the
  // rotation, and a region can be skipped on every retry (observed with a
  // job whose only matching machine sat in one region of 15). The first two
  // attempts go load-best; from the third the rotation runs over the
  // region-id order, which is stable across attempts and therefore provably
  // visits every region within cands.size() retries.
  std::size_t pick = attempt - 1;
  if (attempt > 2) {
    std::sort(cands.begin(), cands.end(),
              [](const overlay::RegionDigest& a,
                 const overlay::RegionDigest& b) { return a.region < b.region; });
    pick = attempt - 3;
  }
  const overlay::RegionDigest& target = cands[pick % cands.size()];
  const std::size_t rank =
      (attempt - 1) % std::max<std::size_t>(1, h.agg_standby);
  const NodeId remote =
      overlay::aggregator_candidate(target.region, h.region_count, rank);
  ++counters_.region_forwards;
  if (ctx_.observer) {
    ctx_.observer->on_region_delegated(spec.id, self_, my_region(),
                                       target.region, ctx_.sim->now());
  }
  ctx_.net->send(self_, remote,
                 std::make_unique<RegionFwdMsg>(initiator, spec, attempt));
}

void AriaNode::on_region_fwd(const RegionFwdMsg& msg) {
  ++counters_.region_floods;
  // Entry point into this region on the remote initiator's behalf: flood a
  // REQUEST carrying the *original* initiator, so ACCEPT offers flow
  // straight back to it — this aggregator never sits on the offer path.
  const Uuid flood_id = Uuid::generate(rng_);
  ctx_.relay->mark_seen(self_, flood_id, ctx_.sim->now());
  schedule_flood_gc(flood_id);
  if (msg.initiator != self_ && can_bid(msg.job)) {
    // The entry aggregator is just another member here: it competes too.
    if (overload_on() && bid_gate_closed()) {
      ++counters_.bids_suppressed;
    } else {
      ++counters_.accepts_sent;
      const double cost = bid_cost(msg.job);
      ctx_.net->send(self_, msg.initiator,
                     std::make_unique<AcceptMsg>(self_, msg.job.id, cost));
      if (ctx_.observer) {
        ctx_.observer->on_bid_sent(msg.job.id, self_, msg.initiator, cost,
                                   ctx_.sim->now());
      }
    }
  }
  const FloodMeta meta{
      flood_id, static_cast<std::uint32_t>(ctx_.config->request_hops - 1),
      self_};
  const auto targets = flood_targets(ctx_.config->request_fanout);
  for (NodeId t : targets) {
    ++counters_.requests_forwarded;
    ctx_.net->send(self_, t,
                   std::make_unique<RequestMsg>(msg.initiator, msg.job, meta));
  }
}

void AriaNode::solicit_region_reports() {
  // Region-scoped flood announcing "this candidate is back and cold"; every
  // member that sees it answers with an immediate out-of-cycle REGION_LOAD.
  // The flood id comes from the hierarchy stream — this path only runs
  // after a churn restart, but the per-plane RNG discipline holds anyway.
  ++counters_.region_pulls_sent;
  const Uuid flood_id = Uuid::generate(hier_rng_);
  ctx_.relay->mark_seen(self_, flood_id, ctx_.sim->now());
  schedule_flood_gc(flood_id);
  const FloodMeta meta{
      flood_id, static_cast<std::uint32_t>(ctx_.config->request_hops - 1),
      self_};
  for (NodeId t : flood_targets(ctx_.config->request_fanout)) {
    ctx_.net->send(self_, t, std::make_unique<RegionPullMsg>(self_, meta));
  }
}

void AriaNode::on_region_pull(NodeId from, const RegionPullMsg& msg) {
  if (!ctx_.relay->mark_seen(self_, msg.flood.flood_id, ctx_.sim->now())) {
    return;  // duplicate
  }
  schedule_flood_gc(msg.flood.flood_id);
  // Answer straight to the soliciting candidate, skipping the report cycle.
  if (msg.from != self_) {
    const overlay::MemberLoad load{idle(), backlog_duration().to_seconds(),
                                   static_cast<std::uint32_t>(queue_length())};
    ++counters_.load_reports_sent;
    ctx_.net->send(self_, msg.from,
                   std::make_unique<RegionLoadMsg>(self_, load));
  }
  if (msg.flood.hops_left == 0) return;
  FloodMeta next = msg.flood;
  --next.hops_left;
  for (NodeId t :
       flood_targets(ctx_.config->request_fanout, from, msg.flood.origin)) {
    ctx_.net->send(self_, t, std::make_unique<RegionPullMsg>(msg.from, next));
  }
}

// ---------------------------------------------------------------------------
// Flood state GC
// ---------------------------------------------------------------------------

void AriaNode::schedule_flood_gc(const Uuid& flood_id) {
  overlay::FloodRelay* relay = ctx_.relay;
  ctx_.sim->schedule_after(ctx_.config->flood_gc_delay,
                           [relay, flood_id] { relay->forget(flood_id); });
}

}  // namespace aria::proto
