#include "core/gossip.hpp"

#include <algorithm>
#include <cassert>

namespace aria::proto {

GossipNode::GossipNode(Context ctx, NodeId self, grid::NodeProfile profile,
                       std::unique_ptr<sched::LocalScheduler> scheduler,
                       Rng rng)
    : ctx_{ctx},
      self_{self},
      profile_{std::move(profile)},
      sched_{std::move(scheduler)},
      rng_{rng} {
  assert(ctx_.sim && ctx_.net && ctx_.topo && ctx_.config && ctx_.ert_error);
  assert(sched_);
}

GossipNode::~GossipNode() {
  if (started_) stop();
}

void GossipNode::start() {
  assert(!started_);
  started_ = true;
  ctx_.net->attach(self_, [this](sim::Envelope env) { handle(std::move(env)); });
  const Duration phase =
      rng_.uniform_duration(Duration::zero(), ctx_.config->gossip_period);
  gossip_timer_ = ctx_.sim->schedule_periodic(
      phase, ctx_.config->gossip_period, [this] { gossip_tick(); });
}

void GossipNode::stop() {
  started_ = false;
  gossip_timer_.cancel();
  if (running_) running_->completion.cancel();
  ctx_.net->detach(self_);
}

Duration GossipNode::running_remaining() const {
  if (!running_) return Duration::zero();
  const TimePoint eta = running_->started + running_->job.ertp;
  const Duration left = eta - ctx_.sim->now();
  return left.is_negative() ? Duration::zero() : left;
}

NodeSummary GossipNode::own_summary() const {
  NodeSummary s;
  s.node = self_;
  s.profile = profile_;
  Duration backlog = running_remaining();
  for (const auto& q : sched_->queue()) backlog += q.ertp;
  s.backlog_seconds = backlog.to_seconds();
  s.stamped = ctx_.sim->now();
  return s;
}

std::vector<NodeSummary> GossipNode::newest_summaries() const {
  std::vector<NodeSummary> all;
  all.reserve(cache_.size() + 1);
  all.push_back(own_summary());
  for (const auto& [id, s] : cache_) all.push_back(s);
  std::sort(all.begin(), all.end(),
            [](const NodeSummary& a, const NodeSummary& b) {
              if (a.stamped != b.stamped) return a.stamped > b.stamped;
              return a.node < b.node;  // deterministic tie-break
            });
  if (all.size() > ctx_.config->summaries_per_message) {
    all.resize(ctx_.config->summaries_per_message);
  }
  return all;
}

void GossipNode::gossip_tick() {
  const auto& neighbors = ctx_.topo->neighbors(self_);
  if (neighbors.empty()) return;
  std::vector<NodeId> targets = rng_.sample(neighbors,
                                            ctx_.config->gossip_fanout);
  const auto payload = newest_summaries();
  for (NodeId t : targets) {
    ctx_.net->send(self_, t, std::make_unique<GossipMsg>(payload));
  }
}

void GossipNode::handle(sim::Envelope env) {
  if (auto* g = dynamic_cast<const GossipMsg*>(env.message.get())) {
    on_gossip(*g);
  } else if (auto* asg = dynamic_cast<const AssignMsg*>(env.message.get())) {
    accept_job(asg->job);
  }
}

void GossipNode::on_gossip(const GossipMsg& msg) {
  for (const NodeSummary& s : msg.summaries) {
    if (s.node == self_) continue;
    auto [it, inserted] = cache_.try_emplace(s.node, s);
    if (!inserted && s.stamped > it->second.stamped) it->second = s;
  }
}

void GossipNode::submit(grid::JobSpec job) {
  assert(!job.id.is_nil());
  if (ctx_.observer) {
    ctx_.observer->on_submitted(job, self_, ctx_.sim->now());
  }
  try_assign(job, 1);
}

void GossipNode::try_assign(const grid::JobSpec& job, std::size_t attempt) {
  // Candidate set: fresh cached summaries plus this node itself.
  const TimePoint now = ctx_.sim->now();
  const double horizon = ctx_.config->max_summary_age.to_seconds();

  const NodeSummary* best = nullptr;
  double best_cost = 0.0;
  const NodeSummary self_summary = own_summary();
  auto consider = [&](const NodeSummary& s) {
    if (!grid::satisfies(s.profile, job.requirements)) return;
    if ((now - s.stamped).to_seconds() > horizon) return;
    // Estimated ETTC from the summary: advertised backlog + own ERTp.
    const double cost =
        s.backlog_seconds + job.ert_on(s.profile.performance_index).to_seconds();
    if (best == nullptr || cost < best_cost) {
      best = &s;
      best_cost = cost;
    }
  };
  consider(self_summary);
  for (const auto& [id, s] : cache_) consider(s);

  if (best == nullptr) {
    if (ctx_.config->retry.exhausted(attempt)) {
      if (ctx_.observer) ctx_.observer->on_unschedulable(job.id, now);
      return;
    }
    if (ctx_.observer) ctx_.observer->on_request_retry(job.id, attempt + 1, now);
    grid::JobSpec copy = job;
    ctx_.sim->schedule_after(ctx_.config->retry.wait_after(attempt),
                             [this, copy = std::move(copy), attempt] {
                               try_assign(copy, attempt + 1);
                             });
    return;
  }

  if (best->node == self_) {
    accept_job(job);
    return;
  }
  ctx_.net->send(self_, best->node,
                 std::make_unique<AssignMsg>(self_, job));
}

void GossipNode::accept_job(const grid::JobSpec& spec) {
  sched_->enqueue(sched::QueuedJob{
      spec, spec.ert_on(profile_.performance_index), ctx_.sim->now(), 0});
  if (ctx_.observer) {
    ctx_.observer->on_assigned(spec, self_, ctx_.sim->now(), false);
  }
  kick_executor();
}

void GossipNode::kick_executor() {
  if (running_) return;
  auto next = sched_->pop_next();
  if (!next) return;
  const Duration art = ctx_.ert_error->actual_running_time(
      next->spec.ert, profile_.performance_index, rng_);
  const JobId id = next->spec.id;
  Running run{std::move(*next), ctx_.sim->now(), art, {}};
  run.completion =
      ctx_.sim->schedule_after(art, [this] { complete_running(); });
  running_ = std::move(run);
  if (ctx_.observer) ctx_.observer->on_started(id, self_, ctx_.sim->now());
}

void GossipNode::complete_running() {
  assert(running_);
  const JobId id = running_->job.spec.id;
  const Duration art = running_->art;
  running_.reset();
  if (ctx_.observer) {
    ctx_.observer->on_completed(id, self_, ctx_.sim->now(), art);
  }
  kick_executor();
}

}  // namespace aria::proto
