// ARiA protocol parameters. Defaults reproduce the paper's baseline
// configuration (§IV-E): REQUEST floods of 9 hops / fanout 4, INFORM floods
// of 8 hops / fanout 2, at most 2 jobs advertised every 5 minutes, and a
// 3-minute improvement threshold for rescheduling.
#pragma once

#include <algorithm>
#include <cstddef>

#include "common/time.hpp"
#include "overlay/liveness.hpp"

namespace aria::proto {

/// Shared discovery-retry policy (docs/protocol.md §1). Both discovery
/// schemes — ARiA's REQUEST re-floods and the gossip baseline's cache-miss
/// retries — give up the same way: wait, try again, declare the job
/// unschedulable after a bounded number of attempts. One struct keeps the
/// two knob sets from drifting apart.
struct DiscoveryRetryPolicy {
  /// Base wait before the next attempt.
  Duration backoff{Duration::seconds(10)};
  /// The wait doubles per attempt up to backoff * max_backoff_factor;
  /// 1 means a fixed interval (the gossip baseline's historical behavior).
  std::size_t max_backoff_factor{8};
  /// Attempts before the job is declared unschedulable (0 = retry forever).
  std::size_t max_attempts{25};

  /// Wait after attempt `attempt` (1-based) drew no candidate.
  Duration wait_after(std::size_t attempt) const {
    std::size_t factor = max_backoff_factor;
    if (attempt >= 1 && attempt - 1 < 63) {
      factor = std::min(max_backoff_factor, std::size_t{1} << (attempt - 1));
    }
    return backoff * static_cast<std::int64_t>(factor);
  }
  /// Was `attempt` (1-based) the last one allowed?
  bool exhausted(std::size_t attempt) const {
    return max_attempts != 0 && attempt >= max_attempts;
  }
};

/// Overload-robustness plane (docs/overload.md): bounded queues, admission
/// control with an explicit REJECT answer, cost-aware bid suppression, and
/// shed-and-forward rescheduling. Off by default — with the plane off queues
/// are unbounded, no REJECT traffic exists, and runs stay byte-identical to
/// the unhardened protocol.
struct OverloadParams {
  bool enabled{false};
  /// Queue bound = max(1, round(capacity_per_perf * performance_index)):
  /// faster machines drain faster, so they may hold proportionally more.
  double capacity_per_perf{6.0};
  /// Admission watermark in backlog terms (remaining runtime of the
  /// executing job + ERTp of everything queued): an ASSIGN arriving while
  /// the backlog exceeds this is answered with REJECT instead of silently
  /// enqueued. Length-bounded sheds catch short-job pileups; this cost
  /// watermark catches long-job ones.
  Duration admission_backlog{Duration::hours(10)};
  /// Cost-aware bidding hysteresis: stop answering REQUEST/INFORM once the
  /// backlog exceeds bid_stop * admission_backlog, resume only after it
  /// drains below bid_resume * admission_backlog (no flapping around one
  /// threshold).
  double bid_stop{0.75};
  double bid_resume{0.5};
  /// How long a shed job's INFORM burst collects offers before falling back
  /// to a discovery round on the initiator's behalf.
  Duration shed_offer_timeout{Duration::seconds(10)};
};

/// Hierarchical discovery plane (docs/hierarchy.md): the overlay is
/// partitioned into regions (region(n) = n mod region_count), REQUEST/INFORM
/// floods stay inside the sender's region, and discovery rounds that drew no
/// offers delegate cross-region through designated aggregator super-peers
/// exchanging periodic load digests — replacing global flood reach with
/// region-local traffic plus O(regions²) digest aggregates. Off by default:
/// with the plane off no REGION_* message exists, floods pick targets exactly
/// as before, and runs stay byte-identical to flat ARiA.
struct HierarchyParams {
  bool enabled{false};
  /// Number of regions R. 0 = auto-size at build time so regions hold about
  /// `target_region_size` nodes; the engine writes the resolved value back
  /// here (see overlay::resolve_region_count for the clamping rules).
  std::size_t region_count{0};
  std::size_t target_region_size{128};
  /// Aggregator candidates per region (rank 0 = primary, the rest warm
  /// standbys). Failover is attempt-driven: retry k addresses candidate
  /// rank k mod agg_standby, so a dead primary costs one backoff, not a
  /// view-change protocol.
  std::size_t agg_standby{2};
  /// How often members report their load to their region's candidates.
  Duration load_report_period{Duration::minutes(5)};
  /// How often candidates broadcast their region digest to every other
  /// region's candidates.
  Duration digest_period{Duration::minutes(5)};
  /// Member reports older than this are dropped from the digest (crashed
  /// members age out); received digests older than this are ignored when
  /// picking a delegation target.
  Duration staleness{Duration::minutes(15)};
  /// Cross-region delegation also triggers on *poor* rounds, not only empty
  /// ones: when the best region-local offer would add more than this to the
  /// job's completion (cost units — ETTC seconds for batch schedulers, NAL
  /// seconds for EDF), the initiator solicits one cross-region offer window
  /// before committing. Region-scoped discovery otherwise traps jobs in hot
  /// regions, and the queue backlog re-surfaces as per-job INFORM floods —
  /// exactly the traffic the digest plane is meant to replace.
  Duration delegate_cost_threshold{Duration::minutes(10)};
  /// Scope widening: every Nth discovery attempt floods the REQUEST without
  /// the region filter (0 = never widen). Digests are capability-blind —
  /// they steer by load, not by profile — so a job whose only matching
  /// machine hides in an unlucky region could otherwise burn every retry on
  /// wrong regions; the periodic wide flood restores flat ARiA's guarantee
  /// that feasible jobs are eventually discovered.
  std::size_t wide_flood_every{4};
  /// Intra-region average degree for bootstrap_hierarchical.
  double intra_degree{4.0};
  /// Random cross-region links per region at bootstrap (resilience only;
  /// region-scoped floods never traverse them).
  std::size_t cross_links{2};

  // --- chaos hardening (docs/hierarchy.md "Failure modes") ---------------
  /// Cold-restart discipline for aggregator candidates: a restarted
  /// candidate has lost its member reports and digest table, so for up to
  /// this long it solicits fresh REGION_LOADs (a region-scoped REGION_PULL
  /// flood) and hands REGION_QUERYs off to the next-rank candidate instead
  /// of answering from an empty/stale table. Warmth returns early with the
  /// first fresh member report. Zero disables the discipline (a cold
  /// candidate then serves whatever it has, the pre-hardening behavior).
  /// Only the restart path consults this, so fault-free runs are untouched.
  Duration aggregator_warmup{Duration::minutes(5)};
  /// Early wide-flood escalation: after this many *consecutive* discovery
  /// rounds with zero offers (region-local flood and cross-region
  /// delegation both silent — the signature of a fully dead candidate
  /// list), the next flood widens immediately instead of waiting for the
  /// wide_flood_every rotation. 0 disables; the CLI arms it (2) whenever
  /// the fault plane runs alongside the hierarchy, keeping fault-free
  /// hierarchy runs byte-identical to the unhardened plane.
  std::size_t escalate_silent_rounds{0};
  /// Backoff cap once sustained silence is detected: while a request's
  /// consecutive silent-round count is at or past escalate_silent_rounds,
  /// the exponential retry backoff factor is clamped to this value, so a
  /// job facing a dead candidate list retries on a short, bounded cadence
  /// instead of the full exponential curve. 0 = no cap. Armed with
  /// escalate_silent_rounds.
  std::size_t silent_backoff_factor_cap{0};
};

/// Adversarial-defense plane (docs/adversary.md): a promise-vs-delivery
/// reputation ledger at every initiator, credibility-discounted bid ranking,
/// suspicion-driven neighbor eviction, straggler detection with revoke-then-
/// hedge re-dispatch, and digest sanity clamping. Off by default — with the
/// plane off no ledger exists, rankings are the plain lowest-cost rule, and
/// runs stay byte-identical to the undefended protocol.
struct DefenseParams {
  bool enabled{false};
  /// EWMA weight of one promise-vs-delivery observation. Also the auditor's
  /// per-update movement bound (reputation-monotonicity check). 0.3 lets two
  /// broken promises (score 1.0 -> 0.7 -> 0.49) cross the default suspicion
  /// threshold — fast enough that a black hole is distrusted well inside the
  /// failsafe recovery budget, slow enough that one unlucky overrun is not a
  /// conviction.
  double reputation_alpha{0.3};
  /// Score assumed for nodes never observed (fresh grids are trusted).
  double initial_reputation{1.0};
  /// Discount floor: bid ranking divides quoted cost by
  /// max(reputation, floor), so a zero-reputation node is penalized
  /// 1/floor-fold instead of infinitely (it may still win an empty round).
  double reputation_floor{0.05};
  /// Below this score a node's offers are skipped outright and, when the
  /// healing plane runs, the offender is evicted from the flood overlay.
  double suspicion_threshold{0.5};
  /// Straggler deadline = assignment time + quoted cost * straggler_factor
  /// + straggler_min_overdue: how far past its own quote an assignee may run
  /// before the initiator revokes and hedges. The additive term keeps short
  /// jobs from being revoked over scheduling jitter.
  double straggler_factor{3.0};
  Duration straggler_min_overdue{Duration::minutes(10)};
  /// Hedged re-dispatches allowed per job (0 disables hedging). The auditor
  /// enforces this bound on the wire (hedge-budget check).
  std::size_t hedge_budget{1};
  /// Reject REGION_DIGESTs that violate member-report conservation (members
  /// beyond the region population, idle > members, negative backlog) instead
  /// of folding them into the digest table.
  bool digest_clamp{true};
};

struct AriaConfig {
  // --- submission phase -----------------------------------------------
  std::size_t request_hops{9};
  std::size_t request_fanout{4};
  /// How long an initiator collects ACCEPT offers before deciding.
  Duration accept_timeout{Duration::seconds(5)};
  /// Re-flood policy for REQUESTs that drew no offers: 10s base backoff
  /// doubling per attempt (capped at 8x), at most 25 attempts.
  DiscoveryRetryPolicy retry{};
  /// May the initiator offer itself as a candidate when it matches?
  bool initiator_self_candidate{true};

  // --- dynamic rescheduling phase --------------------------------------
  /// Master switch: the plain scenarios in Table II run with this off, the
  /// i-scenarios with it on.
  bool dynamic_rescheduling{true};
  std::size_t inform_hops{8};
  std::size_t inform_fanout{2};
  Duration inform_period{Duration::minutes(5)};
  /// Jobs advertised per period ("at most 2 scheduled jobs every 5
  /// minutes"; iInform1/iInform4 vary this).
  std::size_t inform_jobs_per_period{2};
  /// Minimum cost improvement a remote node must guarantee before proposing
  /// itself (iInform15m/iInform30m vary this). Interpreted in cost units,
  /// i.e. seconds of ETTC for batch schedulers and NAL seconds for EDF.
  Duration reschedule_threshold{Duration::minutes(3)};
  /// Notify the initiator when its job moves (paper: "may be notified").
  /// Off by default so the traffic breakdown matches Fig. 10's four types.
  bool notify_initiator{false};

  // --- failsafe extension (paper §III-D mentions "failsafe mechanisms in
  // the event of an assignee's crash" as the purpose of initiator
  // notifications; this implements one) ----------------------------------
  /// When on, the initiator tracks each job it submitted: assignees report
  /// rescheduling, execution start, and completion via NOTIFY messages. If
  /// no completion arrives by the watchdog deadline, the initiator assumes
  /// the assignee crashed and re-floods the REQUEST. Implies NOTIFY
  /// traffic (metered separately from Fig. 10's four types).
  bool failsafe{false};
  /// Watchdog deadline = inform_period * factor + margin + accept_timeout,
  /// re-armed on every NOTIFY. Assignees heartbeat every inform_period
  /// while they hold the job, so `factor` is the number of consecutive
  /// heartbeats the initiator tolerates losing before presuming the
  /// assignee dead; the deadline deliberately does NOT scale with the
  /// job's ERT (crash detection on a long job would otherwise take hours).
  double failsafe_factor{3.0};
  Duration failsafe_margin{Duration::minutes(30)};
  /// After this many recovery re-floods the initiator stops watching the
  /// job (prevents an unbounded retry loop for unschedulable work).
  std::size_t failsafe_max_recoveries{8};
  /// How long an executor keeps a completion receipt (completed_here_)
  /// before the periodic sweep drops it. Receipts exist to answer failsafe
  /// recovery floods with a replay instead of a second execution, and no
  /// recovery flood can arrive once the initiator's watchdog budget is
  /// exhausted — 12 h comfortably exceeds failsafe_max_recoveries watchdog
  /// spans plus margins. Zero = keep forever (the pre-TTL behavior).
  Duration completion_receipt_ttl{Duration::hours(12)};

  // --- acknowledged delegation (lossy-network hardening) -----------------
  /// When on, every ASSIGN carries an attempt UUID and the receiver replies
  /// with ASSIGN_ACK; a missing ACK triggers retransmission and, once
  /// assign_max_retries is exhausted, a fresh discovery round. Off by
  /// default: on a reliable network ASSIGNs cannot vanish, and the extra
  /// ACK type would distort the Fig. 10 traffic breakdown.
  bool assign_ack{false};
  /// How long the delegator waits for an ASSIGN_ACK before retransmitting.
  Duration assign_ack_timeout{Duration::seconds(10)};
  /// Retransmissions to the same target before falling back to a new
  /// discovery round (the target is presumed dead).
  std::size_t assign_max_retries{2};
  /// How long a receiver remembers acknowledged assign ids so delayed
  /// retransmissions and network duplicates stay idempotent.
  Duration assign_dedup_gc_delay{Duration::minutes(5)};

  // --- flood mechanics --------------------------------------------------
  /// Paper-literal: a node that satisfies a REQUEST/INFORM replies and does
  /// not forward. Enabling this makes matching nodes forward too.
  bool forward_on_match{false};
  /// When a flood can no longer be in flight its dedup state is dropped
  /// after this long (memory bound; must exceed hops * max latency).
  Duration flood_gc_delay{Duration::seconds(60)};

  // --- self-healing overlay plane (docs/overlay.md) ----------------------
  /// PING/PONG liveness probing, dead-neighbor eviction, and churn-aware
  /// link repair. Off by default: with healing off nodes send no probe
  /// traffic at all, keeping fault-free runs byte-identical.
  overlay::HealingParams healing{};

  // --- overload-robustness plane (docs/overload.md) ----------------------
  /// Bounded queues, admission REJECTs, bid suppression under saturation,
  /// and shed-and-forward. Off by default with the same byte-identity
  /// contract as the fault and healing planes.
  OverloadParams overload{};

  // --- hierarchical discovery plane (docs/hierarchy.md) ------------------
  /// Region-scoped flooding plus cross-region delegation through digest-
  /// keeping aggregator super-peers. Off by default with the same
  /// byte-identity contract as every other plane.
  HierarchyParams hierarchy{};

  // --- adversarial-defense plane (docs/adversary.md) ---------------------
  /// Reputation-weighted bidding, straggler revoke-then-hedge, and digest
  /// clamping against misbehaving nodes. Off by default with the same
  /// byte-identity contract as every other plane.
  DefenseParams defense{};
};

}  // namespace aria::proto
