// Promise-vs-delivery reputation ledger (docs/adversary.md).
//
// Every initiator keeps one: a per-node EWMA of how well past delegations
// honored their quoted cost. An assignee that completes a job within its
// quote scores 1; one that takes lie_factor times longer scores
// 1/lie_factor; one that strands the job (watchdog recovery, ignored or
// acknowledged revoke) scores 0. The protocol layer feeds observations and
// reads scores — the ledger itself is policy-free bookkeeping, so it lives
// in sched next to the cost functions it discounts.
//
// Scores stay in [0, 1] by construction (observations are clamped), and one
// update moves a score by at most `alpha` — the invariant the audit plane's
// reputation-monotonicity check enforces on the observer stream.
#pragma once

#include <algorithm>
#include <cstddef>
#include <unordered_map>

#include "common/ids.hpp"

namespace aria::sched {

class ReputationLedger {
 public:
  ReputationLedger(double alpha, double initial)
      : alpha_{std::clamp(alpha, 0.0, 1.0)},
        initial_{std::clamp(initial, 0.0, 1.0)} {}

  /// Current score for `subject`; nodes never observed hold the initial
  /// (trusting) score.
  double score(NodeId subject) const {
    const auto it = scores_.find(subject);
    return it == scores_.end() ? initial_ : it->second;
  }

  /// Folds one promise-vs-delivery observation (clamped to [0, 1]) into
  /// `subject`'s EWMA and returns the post-update score.
  double observe(NodeId subject, double outcome) {
    outcome = std::clamp(outcome, 0.0, 1.0);
    auto [it, inserted] = scores_.try_emplace(subject, initial_);
    it->second = (1.0 - alpha_) * it->second + alpha_ * outcome;
    return it->second;
  }

  /// Nodes with at least one observation.
  std::size_t tracked() const { return scores_.size(); }

 private:
  double alpha_;
  double initial_;
  std::unordered_map<NodeId, double> scores_;
};

}  // namespace aria::sched
