#include "sched/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace aria::sched {

std::string to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFcfs: return "FCFS";
    case SchedulerKind::kSjf: return "SJF";
    case SchedulerKind::kEdf: return "EDF";
    case SchedulerKind::kPriority: return "PRIORITY";
    case SchedulerKind::kFairSjf: return "FAIR-SJF";
  }
  return "?";
}

void LocalScheduler::enqueue(QueuedJob job) {
  job.seq = next_seq_++;
  const auto pos = std::upper_bound(
      queue_.begin(), queue_.end(), job,
      [this](const QueuedJob& a, const QueuedJob& b) { return before(a, b); });
  queue_.insert(pos, std::move(job));
}

Duration LocalScheduler::backlog() const {
  Duration t = Duration::zero();
  for (const QueuedJob& q : queue_) t += q.ertp;
  return t;
}

std::optional<QueuedJob> LocalScheduler::enqueue_bounded(
    QueuedJob job, Duration running_remaining, TimePoint now) {
  enqueue(std::move(job));
  if (capacity_ == 0 || queue_.size() <= capacity_) return std::nullopt;

  std::size_t victim = queue_.size() - 1;
  if (cost_family() == CostFamily::kDeadline) {
    // Shed the most lateness-hopeless job: the smallest gamma along the
    // execution order (EDF keeps the queue deadline-sorted, but gamma also
    // depends on everything in front, so scan). Ties go to the newer
    // arrival — evicting long-waiting work last.
    Duration t = running_remaining;
    double worst = HUGE_VAL;
    std::uint64_t worst_seq = 0;
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      t += queue_[i].ertp;
      const TimePoint etc = now + t;
      const double gamma = queue_[i].spec.deadline
                               ? (*queue_[i].spec.deadline - etc).to_seconds()
                               : HUGE_VAL;
      if (gamma < worst ||
          (gamma == worst && queue_[i].seq > worst_seq)) {
        worst = gamma;
        worst_seq = queue_[i].seq;
        victim = i;
      }
    }
  }
  // Batch family: the tail job. ETTC is monotone along the execution order,
  // so the tail is by construction the largest-ETTC job.
  QueuedJob out = std::move(queue_[victim]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(victim));
  return out;
}

std::optional<QueuedJob> LocalScheduler::pop_next() {
  if (queue_.empty()) return std::nullopt;
  QueuedJob head = std::move(queue_.front());
  queue_.erase(queue_.begin());
  return head;
}

bool LocalScheduler::remove(const JobId& id) {
  const auto it = std::find_if(queue_.begin(), queue_.end(),
                               [&](const QueuedJob& q) { return q.spec.id == id; });
  if (it == queue_.end()) return false;
  queue_.erase(it);
  return true;
}

bool LocalScheduler::contains(const JobId& id) const { return find(id) != nullptr; }

const QueuedJob* LocalScheduler::find(const JobId& id) const {
  const auto it = std::find_if(queue_.begin(), queue_.end(),
                               [&](const QueuedJob& q) { return q.spec.id == id; });
  return it == queue_.end() ? nullptr : &*it;
}

void LocalScheduler::resort() {
  std::stable_sort(
      queue_.begin(), queue_.end(),
      [this](const QueuedJob& a, const QueuedJob& b) { return before(a, b); });
}

Duration LocalScheduler::ettc_of(const JobId& id,
                                 Duration running_remaining) const {
  Duration t = running_remaining;
  for (const QueuedJob& q : queue_) {
    t += q.ertp;
    if (q.spec.id == id) return t;
  }
  return Duration::max();  // not queued here
}

double LocalScheduler::nal_of_sequence(
    const std::vector<const QueuedJob*>& order, Duration running_remaining,
    TimePoint now) const {
  // Completion instants follow the queue order; gamma = deadline - ETC
  // (paper §III-C). Jobs without a deadline never occur in the deadline
  // family by construction; treat a missing one as "always on time".
  Duration t = running_remaining;
  double sum_abs_on_time = 0.0;
  double sum_abs_late = 0.0;
  bool any_late = false;
  for (const QueuedJob* q : order) {
    t += q->ertp;
    const TimePoint etc = now + t;
    const Duration gamma =
        q->spec.deadline ? (*q->spec.deadline - etc) : Duration::max();
    if (gamma.is_negative()) {
      any_late = true;
      sum_abs_late += -gamma.to_seconds();
    } else if (q->spec.deadline) {
      sum_abs_on_time += gamma.to_seconds();
    }
  }
  // delta = -1 for every job when all are on time; otherwise on-time jobs
  // contribute 0 and late jobs contribute +|gamma|.
  if (!any_late) return -sum_abs_on_time;
  return sum_abs_late;
}

double LocalScheduler::cost_of_adding(const grid::JobSpec& job, Duration ertp,
                                      Duration running_remaining,
                                      TimePoint now) const {
  QueuedJob hypothetical{job, ertp, now, next_seq_};
  if (cost_family() == CostFamily::kBatch) {
    // ETTC: everything ordered before the new job, plus the job itself.
    Duration t = running_remaining + ertp;
    for (const QueuedJob& q : queue_) {
      if (before(q, hypothetical)) t += q.ertp;
    }
    return t.to_seconds();
  }
  // NAL over Q' = Q + {job}, in policy order.
  std::vector<const QueuedJob*> order;
  order.reserve(queue_.size() + 1);
  bool inserted = false;
  for (const QueuedJob& q : queue_) {
    if (!inserted && before(hypothetical, q)) {
      order.push_back(&hypothetical);
      inserted = true;
    }
    order.push_back(&q);
  }
  if (!inserted) order.push_back(&hypothetical);
  return nal_of_sequence(order, running_remaining, now);
}

double LocalScheduler::current_cost(const JobId& id, Duration running_remaining,
                                    TimePoint now) const {
  if (cost_family() == CostFamily::kBatch) {
    const Duration t = ettc_of(id, running_remaining);
    return t == Duration::max() ? HUGE_VAL : t.to_seconds();
  }
  if (!contains(id)) return HUGE_VAL;
  std::vector<const QueuedJob*> order;
  order.reserve(queue_.size());
  for (const QueuedJob& q : queue_) order.push_back(&q);
  return nal_of_sequence(order, running_remaining, now);
}

std::vector<JobId> LocalScheduler::rescheduling_candidates(
    std::size_t max_jobs, Duration running_remaining, TimePoint now) const {
  if (max_jobs == 0 || queue_.empty()) return {};
  struct Keyed {
    JobId id;
    double key;  // smaller = selected first
    std::uint64_t seq;
  };
  std::vector<Keyed> keyed;
  keyed.reserve(queue_.size());
  if (cost_family() == CostFamily::kBatch) {
    // Largest waiting time first => smallest enqueue instant first.
    for (const QueuedJob& q : queue_) {
      keyed.push_back({q.spec.id, q.enqueued_at.to_seconds(), q.seq});
    }
  } else {
    // Least lateness first: smallest gamma = deadline - ETC.
    Duration t = running_remaining;
    for (const QueuedJob& q : queue_) {
      t += q.ertp;
      const TimePoint etc = now + t;
      const double gamma = q.spec.deadline
                               ? (*q.spec.deadline - etc).to_seconds()
                               : HUGE_VAL;
      keyed.push_back({q.spec.id, gamma, q.seq});
    }
  }
  std::sort(keyed.begin(), keyed.end(), [](const Keyed& a, const Keyed& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.seq < b.seq;
  });
  if (keyed.size() > max_jobs) keyed.resize(max_jobs);
  std::vector<JobId> out;
  out.reserve(keyed.size());
  for (const Keyed& k : keyed) out.push_back(k.id);
  return out;
}

}  // namespace aria::sched
