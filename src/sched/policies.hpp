// Concrete local scheduling policies (paper §IV-C plus two extensions the
// paper lists as future work).
#pragma once

#include "sched/scheduler.hpp"

namespace aria::sched {

/// First-Come-First-Served: execution order == local arrival order.
class FcfsScheduler final : public LocalScheduler {
 public:
  SchedulerKind kind() const override { return SchedulerKind::kFcfs; }
  CostFamily cost_family() const override { return CostFamily::kBatch; }

 protected:
  bool before(const QueuedJob& a, const QueuedJob& b) const override;
};

/// Shortest-Job-First: ordered by ERT (paper: "the scheduling order depends
/// on the jobs' ERT"), arrival order for ties.
class SjfScheduler final : public LocalScheduler {
 public:
  SchedulerKind kind() const override { return SchedulerKind::kSjf; }
  CostFamily cost_family() const override { return CostFamily::kBatch; }

 protected:
  bool before(const QueuedJob& a, const QueuedJob& b) const override;
};

/// Earliest-Deadline-First; jobs without a deadline sort last.
class EdfScheduler final : public LocalScheduler {
 public:
  SchedulerKind kind() const override { return SchedulerKind::kEdf; }
  CostFamily cost_family() const override { return CostFamily::kDeadline; }

 protected:
  bool before(const QueuedJob& a, const QueuedJob& b) const override;
};

/// Extension: explicit user priority (higher first), FCFS within a level.
class PriorityScheduler final : public LocalScheduler {
 public:
  SchedulerKind kind() const override { return SchedulerKind::kPriority; }
  CostFamily cost_family() const override { return CostFamily::kBatch; }

 protected:
  bool before(const QueuedJob& a, const QueuedJob& b) const override;
};

/// Extension: SJF with linear aging — effective key is
/// ertp + aging_factor * enqueued_at, which preserves SJF locally while
/// guaranteeing that sufficiently old jobs reach the head (no starvation).
/// The relative order of two queued jobs is time-invariant, so the queue
/// stays sorted without re-sorting.
class FairSjfScheduler final : public LocalScheduler {
 public:
  /// `aging_factor`: seconds of ERT discounted per second of waiting.
  explicit FairSjfScheduler(double aging_factor = 0.5)
      : aging_factor_{aging_factor} {}

  SchedulerKind kind() const override { return SchedulerKind::kFairSjf; }
  CostFamily cost_family() const override { return CostFamily::kBatch; }
  double aging_factor() const { return aging_factor_; }

 protected:
  bool before(const QueuedJob& a, const QueuedJob& b) const override;

 private:
  double aging_factor_;
};

}  // namespace aria::sched
