#include "sched/policies.hpp"

namespace aria::sched {

bool FcfsScheduler::before(const QueuedJob& a, const QueuedJob& b) const {
  return a.seq < b.seq;
}

bool SjfScheduler::before(const QueuedJob& a, const QueuedJob& b) const {
  // Order on the grid-baseline ERT, not ERTp: the paper keys SJF on the
  // job's ERT, and doing so keeps the order independent of the node that
  // happens to hold the job.
  if (a.spec.ert != b.spec.ert) return a.spec.ert < b.spec.ert;
  return a.seq < b.seq;
}

bool EdfScheduler::before(const QueuedJob& a, const QueuedJob& b) const {
  const TimePoint da = a.spec.deadline.value_or(TimePoint::max());
  const TimePoint db = b.spec.deadline.value_or(TimePoint::max());
  if (da != db) return da < db;
  return a.seq < b.seq;
}

bool PriorityScheduler::before(const QueuedJob& a, const QueuedJob& b) const {
  if (a.spec.priority != b.spec.priority) return a.spec.priority > b.spec.priority;
  return a.seq < b.seq;
}

bool FairSjfScheduler::before(const QueuedJob& a, const QueuedJob& b) const {
  const double ka =
      a.ertp.to_seconds() + aging_factor_ * a.enqueued_at.to_seconds();
  const double kb =
      b.ertp.to_seconds() + aging_factor_ * b.enqueued_at.to_seconds();
  if (ka != kb) return ka < kb;
  return a.seq < b.seq;
}

std::unique_ptr<LocalScheduler> make_scheduler(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFcfs: return std::make_unique<FcfsScheduler>();
    case SchedulerKind::kSjf: return std::make_unique<SjfScheduler>();
    case SchedulerKind::kEdf: return std::make_unique<EdfScheduler>();
    case SchedulerKind::kPriority: return std::make_unique<PriorityScheduler>();
    case SchedulerKind::kFairSjf: return std::make_unique<FairSjfScheduler>();
  }
  return nullptr;
}

}  // namespace aria::sched
