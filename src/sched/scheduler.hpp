// Local scheduling (paper §III-A/C, §IV-C).
//
// Every grid node runs one local scheduler: a queue of accepted jobs plus an
// ordering policy. Only one job executes at a time (paper assumption); the
// executor lives in the protocol layer and simply pops the next job when
// idle. The scheduler also implements the two ARiA cost functions:
//
//   ETTC (batch policies, FCFS/SJF/...): the relative time at which a job
//   would complete, i.e. remaining runtime of the executing job + estimated
//   runtimes of everything scheduled before it + its own ERTp.
//
//   NAL (deadline policies, EDF): the Negative Accumulated Lateness of the
//   whole queue with the job included — strictly negative when every queued
//   job would meet its deadline (more slack => more negative => better),
//   and positive (sum of overruns) as soon as anything would be late.
//
// Costs are plain doubles in seconds; lower is better. Batch and deadline
// costs are never compared with each other (paper: deadline offers are not
// mixed with batch ones).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "common/uuid.hpp"
#include "grid/job.hpp"

namespace aria::sched {

enum class SchedulerKind : std::uint8_t {
  kFcfs,     // first come, first served
  kSjf,      // shortest job first
  kEdf,      // earliest deadline first (deadline family)
  kPriority, // extension: explicit job priority, FCFS within a priority
  kFairSjf,  // extension: SJF with aging (starvation-free)
};

/// Which cost function a scheduler speaks.
enum class CostFamily : std::uint8_t { kBatch, kDeadline };

std::string to_string(SchedulerKind kind);

/// A job sitting in a local queue.
struct QueuedJob {
  grid::JobSpec spec;
  Duration ertp;            // spec.ert scaled by this node's perf index
  TimePoint enqueued_at;    // local arrival time (ASSIGN reception)
  std::uint64_t seq{0};     // arrival tie-breaker, set by the scheduler
};

class LocalScheduler {
 public:
  virtual ~LocalScheduler() = default;
  LocalScheduler() = default;
  LocalScheduler(const LocalScheduler&) = delete;
  LocalScheduler& operator=(const LocalScheduler&) = delete;

  virtual SchedulerKind kind() const = 0;
  virtual CostFamily cost_family() const = 0;

  /// Inserts a job at its policy position. `job.seq` is overwritten.
  void enqueue(QueuedJob job);

  // --- bounded queue (overload plane, docs/overload.md) -----------------
  /// Maximum queued jobs; 0 (the default) means unbounded.
  void set_capacity(std::size_t cap) { capacity_ = cap; }
  std::size_t capacity() const { return capacity_; }
  bool at_capacity() const {
    return capacity_ != 0 && queue_.size() >= capacity_;
  }

  /// Total queued work in ERTp terms (excluding the executing job).
  Duration backlog() const;

  /// enqueue() under the capacity bound: inserts `job` at its policy
  /// position, then — if the queue now exceeds the bound — removes and
  /// returns the policy's shed victim (possibly the job just added). Batch
  /// family: the tail job, i.e. the one with the largest ETTC. Deadline
  /// family: the most lateness-hopeless job (smallest gamma = deadline -
  /// ETC along the queue order). `running_remaining`/`now` only matter to
  /// the deadline family. Returns nullopt when nothing was shed.
  std::optional<QueuedJob> enqueue_bounded(QueuedJob job,
                                           Duration running_remaining,
                                           TimePoint now);

  /// Removes and returns the job to execute next (queue head).
  std::optional<QueuedJob> pop_next();

  /// Removes a waiting job (it was rescheduled to another node).
  bool remove(const JobId& id);

  /// Drops every queued job at once (crash simulation: a node's queue is
  /// volatile state and does not survive a restart).
  void clear() { queue_.clear(); }

  bool contains(const JobId& id) const;
  const QueuedJob* find(const JobId& id) const;
  std::size_t size() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }

  /// The queue in execution order (head first).
  const std::vector<QueuedJob>& queue() const { return queue_; }

  /// Hypothetical cost of accepting `job` (NOT currently queued), given the
  /// estimated remaining runtime of the currently executing job. `now` only
  /// matters to the deadline family (deadlines are absolute).
  /// This is the value an ACCEPT message carries.
  double cost_of_adding(const grid::JobSpec& job, Duration ertp,
                        Duration running_remaining, TimePoint now) const;

  /// Cost of a job that IS currently queued here — the value an INFORM
  /// message advertises. For the batch family this is the job's current
  /// ETTC; for the deadline family, the NAL of the queue as it stands.
  double current_cost(const JobId& id, Duration running_remaining,
                      TimePoint now) const;

  /// Estimated relative time-to-completion of a queued job.
  Duration ettc_of(const JobId& id, Duration running_remaining) const;

  /// Selects up to `max_jobs` queued jobs to advertise for rescheduling
  /// (paper §III-D): batch — largest waiting time first; deadline — least
  /// lateness (smallest deadline slack) first.
  std::vector<JobId> rescheduling_candidates(std::size_t max_jobs,
                                             Duration running_remaining,
                                             TimePoint now) const;

 protected:
  /// Strict weak ordering: does `a` execute before `b`? Implementations
  /// must fall back to `seq` for ties so ordering is deterministic.
  virtual bool before(const QueuedJob& a, const QueuedJob& b) const = 0;

  /// Re-sorts the queue; policies whose keys depend on time (aging) call
  /// this from their hooks.
  void resort();

  std::vector<QueuedJob> queue_;  // maintained in execution order

 private:
  double nal_of_sequence(const std::vector<const QueuedJob*>& order,
                         Duration running_remaining, TimePoint now) const;

  std::uint64_t next_seq_{0};
  std::size_t capacity_{0};  // 0 = unbounded
};

/// Factory covering every kind.
std::unique_ptr<LocalScheduler> make_scheduler(SchedulerKind kind);

}  // namespace aria::sched
