#include "trace/collector.hpp"

namespace aria::trace {

namespace {
TraceRecord make(TraceEventKind kind, TimePoint at, const JobId& job,
                 NodeId node) {
  TraceRecord r;
  r.kind = kind;
  r.at = at;
  r.job = job;
  r.node = node;
  return r;
}
}  // namespace

TraceCollector::TraceCollector(const TraceConfig& config,
                               proto::ProtocolObserver* next)
    : buffer_{std::make_shared<TraceBuffer>(config)}, next_{next} {}

void TraceCollector::on_submitted(const grid::JobSpec& job, NodeId initiator,
                                  TimePoint at) {
  if (next_) next_->on_submitted(job, initiator, at);
  buffer_->record(make(TraceEventKind::kSubmitted, at, job.id, initiator));
}

void TraceCollector::on_request_retry(const JobId& id, std::size_t attempt,
                                      TimePoint at) {
  if (next_) next_->on_request_retry(id, attempt, at);
  TraceRecord r = make(TraceEventKind::kRetry, at, id, kInvalidNode);
  r.a = static_cast<std::uint32_t>(attempt);
  buffer_->record(r);
}

void TraceCollector::on_unschedulable(const JobId& id, TimePoint at) {
  if (next_) next_->on_unschedulable(id, at);
  buffer_->record(make(TraceEventKind::kUnschedulable, at, id, kInvalidNode));
}

void TraceCollector::on_bid_sent(const JobId& id, NodeId bidder, NodeId to,
                                 double cost, TimePoint at) {
  if (next_) next_->on_bid_sent(id, bidder, to, cost, at);
  TraceRecord r = make(TraceEventKind::kBidSent, at, id, bidder);
  r.peer = to;
  r.value = cost;
  buffer_->record(r);
}

void TraceCollector::on_bid_received(const JobId& id, NodeId collector,
                                     NodeId bidder, double cost,
                                     TimePoint at) {
  if (next_) next_->on_bid_received(id, collector, bidder, cost, at);
  TraceRecord r = make(TraceEventKind::kBidReceived, at, id, collector);
  r.peer = bidder;
  r.value = cost;
  buffer_->record(r);
}

void TraceCollector::on_delegated(const JobId& id, NodeId from, NodeId to,
                                  TimePoint at, bool reschedule) {
  if (next_) next_->on_delegated(id, from, to, at, reschedule);
  TraceRecord r = make(TraceEventKind::kDelegated, at, id, from);
  r.peer = to;
  if (reschedule) r.flags |= TraceRecord::kReschedule;
  buffer_->record(r);
}

void TraceCollector::on_assigned(const grid::JobSpec& job, NodeId node,
                                 TimePoint at, bool reschedule) {
  if (next_) next_->on_assigned(job, node, at, reschedule);
  TraceRecord r = make(TraceEventKind::kAssigned, at, job.id, node);
  if (reschedule) r.flags |= TraceRecord::kReschedule;
  buffer_->record(r);
}

void TraceCollector::on_started(const JobId& id, NodeId node, TimePoint at) {
  if (next_) next_->on_started(id, node, at);
  buffer_->record(make(TraceEventKind::kStarted, at, id, node));
}

void TraceCollector::on_completed(const JobId& id, NodeId node, TimePoint at,
                                  Duration art) {
  if (next_) next_->on_completed(id, node, at, art);
  TraceRecord r = make(TraceEventKind::kCompleted, at, id, node);
  r.value = art.to_seconds();
  buffer_->record(r);
}

void TraceCollector::on_recovery(const JobId& id, std::size_t attempt,
                                 TimePoint at) {
  if (next_) next_->on_recovery(id, attempt, at);
  TraceRecord r = make(TraceEventKind::kRecovery, at, id, kInvalidNode);
  r.a = static_cast<std::uint32_t>(attempt);
  buffer_->record(r);
}

void TraceCollector::on_abandoned(const JobId& id, TimePoint at) {
  if (next_) next_->on_abandoned(id, at);
  buffer_->record(make(TraceEventKind::kAbandoned, at, id, kInvalidNode));
}

void TraceCollector::on_shed(const grid::JobSpec& job, NodeId node,
                             TimePoint at) {
  if (next_) next_->on_shed(job, node, at);
  buffer_->record(make(TraceEventKind::kShed, at, job.id, node));
}

void TraceCollector::on_rejected(const JobId& id, NodeId node, TimePoint at) {
  if (next_) next_->on_rejected(id, node, at);
  buffer_->record(make(TraceEventKind::kRejected, at, id, node));
}

void TraceCollector::on_message(NodeId from, NodeId to,
                                const sim::Message& message, TimePoint sent,
                                TimePoint deliver, bool faulted) {
  TraceRecord r = make(TraceEventKind::kMsg, sent, JobId{}, from);
  r.peer = to;
  r.end = deliver;
  r.value = static_cast<double>(message.wire_size());
  r.a = static_cast<std::uint32_t>(message.type_id().index());
  r.b = message.flood_hops_left();
  if (faulted) r.flags |= TraceRecord::kFaultDropped;
  buffer_->record(r);
}

}  // namespace aria::trace
