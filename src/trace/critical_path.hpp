// Per-job critical-path summaries derived from a collected trace: where did
// each job's wall-clock go between submission and completion? (docs/tracing.md
// §Critical path; the aria_sim --trace summary table is built from these.)
#pragma once

#include <cstddef>
#include <vector>

#include "common/ids.hpp"
#include "common/stats.hpp"
#include "common/time.hpp"
#include "common/uuid.hpp"
#include "trace/sink.hpp"

namespace aria::trace {

/// One job's scheduling timeline, reduced to the latencies that matter.
/// Built by walking the job-event stream in collection order; jobs appear in
/// first-seen (= submission) order.
struct JobCriticalPath {
  JobId job{};
  NodeId initiator{};
  TimePoint submitted{};

  /// submit → first ACCEPT quote entering an offer set (includes the
  /// initiator's own quote). Valid only when `bids > 0`.
  Duration time_to_first_bid{};
  /// ACCEPT quotes collected across the job's whole life (discovery floods
  /// and reschedule INFORMs alike).
  std::size_t bids{0};

  /// Mean ASSIGN-in-flight latency over matched delegated→assigned pairs
  /// (zero when `delegations == 0`, i.e. every placement was local).
  Duration delegation_latency() const {
    return delegations == 0 ? Duration::zero()
                            : Duration::micros(delegation_us_total /
                                               static_cast<std::int64_t>(
                                                   delegations));
  }
  std::int64_t delegation_us_total{0};
  std::size_t delegations{0};

  /// Final queue residence: last ASSIGN accepted → execution start. Earlier
  /// waits ended by a reschedule are counted as scheduling time, not queue
  /// wait. Valid only when `started`.
  Duration queue_wait{};

  std::size_t reschedules{0};  // kAssigned records flagged kReschedule
  std::size_t retries{0};      // empty discovery rounds
  std::size_t recoveries{0};   // failsafe re-floods
  std::size_t sheds{0};        // bounded-queue evictions
  std::size_t rejects{0};      // admission REJECTs

  bool started{false};
  /// Last execution span (kStarted → kCompleted). Valid only when
  /// `completed`.
  Duration execution{};

  bool completed{false};
  bool unschedulable{false};
  bool abandoned{false};
  /// Terminal timestamp; `finished - submitted` is the job's makespan.
  /// Valid when any terminal flag is set.
  TimePoint finished{};

  bool terminal() const { return completed || unschedulable || abandoned; }
};

/// Fleet-level aggregation of the per-job summaries (only jobs with the
/// relevant milestone contribute to each accumulator; times in seconds).
struct CriticalPathAggregate {
  RunningStats time_to_first_bid_s;
  RunningStats bids;
  RunningStats delegation_latency_s;  // jobs with >= 1 remote placement
  RunningStats queue_wait_s;          // jobs that started executing
  RunningStats reschedules;
  RunningStats makespan_s;  // terminal jobs: submit → terminal event
  std::size_t jobs{0};
  std::size_t completed{0};
  std::size_t unschedulable{0};
  std::size_t abandoned{0};
  std::size_t open{0};  // no terminal event inside the trace horizon
};

/// Reduces the buffer's job-event stream to per-job summaries,
/// first-submission order.
std::vector<JobCriticalPath> critical_paths(const TraceBuffer& buffer);

CriticalPathAggregate aggregate(const std::vector<JobCriticalPath>& paths);

}  // namespace aria::trace
