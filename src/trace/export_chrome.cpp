// Chrome trace_event exporter. Format reference:
// https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//
// Mapping (docs/tracing.md has the loading walkthrough):
// * one metadata-named thread per node (pid 1, tid = node id);
// * execution = balanced B/E duration spans on the executing node's track —
//   the single-slot executor guarantees they never overlap per track, and
//   only matched start/complete pairs are emitted, so B/E counts always
//   balance even when a crash interrupts an execution;
// * job lifecycle = one async b/n/e span per job (async events may overlap
//   freely, which job lifecycles do), keyed by the job UUID;
// * causality = s/f flow arrows: bid_sent → bid_received ("bid" category,
//   the ACCEPT answering a REQUEST/INFORM) and delegated → assigned
//   ("delegation" category, the ASSIGN reaching its target), anchored on
//   thread-scoped instants.
// Sampled kMsg records are deliberately not rendered — per-message data
// lives in the JSONL export; Chrome tracks would drown in them.
#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <ostream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "trace/export.hpp"

namespace aria::trace {

namespace {

struct Ev {
  std::int64_t ts;
  std::uint64_t order;  // insertion index: stable tie-break at equal ts
  std::string json;
};

std::string short_id(const JobId& job) { return job.to_string().substr(0, 8); }

}  // namespace

void export_chrome(const TraceBuffer& buffer, std::ostream& out) {
  const auto& events = buffer.job_events();

  std::vector<Ev> evs;
  evs.reserve(events.size() * 2 + 64);
  std::uint64_t order = 0;
  auto emit = [&](std::int64_t ts, std::string json) {
    evs.push_back(Ev{ts, order++, std::move(json)});
  };

  std::set<std::uint32_t> nodes_seen;
  auto see = [&](NodeId n) {
    if (n.valid()) nodes_seen.insert(n.value());
  };

  // Execution spans: per-node open start, emitted as a pair on completion.
  std::map<std::uint32_t, std::pair<JobId, std::int64_t>> open_exec;
  // Async lifecycle spans: job -> (initiator tid, open?).
  std::map<JobId, std::pair<std::uint32_t, bool>> jobs;
  // Pending flow arrows, keyed by the pairing identity of each causal edge.
  std::map<std::pair<JobId, std::uint32_t>, std::deque<std::uint64_t>>
      bid_flows, assign_flows;
  std::uint64_t next_flow = 1;
  std::int64_t max_ts = 0;

  auto async_ev = [&](const TraceRecord& r, const char* ph,
                      std::uint32_t tid, const std::string& args) {
    std::string json = "{\"name\":\"job " + short_id(r.job) +
                       "\",\"cat\":\"job\",\"ph\":\"" + ph + "\",\"id\":\"" +
                       r.job.to_string() + "\",\"pid\":1,\"tid\":" +
                       std::to_string(tid) +
                       ",\"ts\":" + std::to_string(r.at.count_micros());
    if (!args.empty()) json += ",\"args\":{" + args + "}";
    json += "}";
    emit(r.at.count_micros(), std::move(json));
  };
  auto milestone = [&](const TraceRecord& r, const char* what) {
    const auto it = jobs.find(r.job);
    if (it == jobs.end() || !it->second.second) return;
    std::string args = "\"event\":\"" + std::string{what} + "\"";
    if (r.node.valid()) args += ",\"node\":\"" + r.node.to_string() + "\"";
    async_ev(r, "n", it->second.first, args);
  };
  auto close_async = [&](const TraceRecord& r, const char* what) {
    const auto it = jobs.find(r.job);
    if (it == jobs.end() || !it->second.second) return;
    it->second.second = false;
    async_ev(r, "e", it->second.first,
             "\"event\":\"" + std::string{what} + "\"");
  };
  auto flow_ev = [&](std::int64_t ts, const char* ph, const char* cat,
                     std::uint64_t id, std::uint32_t tid) {
    // The s/f pair plus a thread-scoped instant to anchor each end on its
    // node track.
    emit(ts, "{\"name\":\"" + std::string{cat} +
                 "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":" +
                 std::to_string(tid) + ",\"ts\":" + std::to_string(ts) + "}");
    std::string json = "{\"name\":\"" + std::string{cat} + "\",\"cat\":\"" +
                       cat + "\",\"ph\":\"" + ph +
                       "\",\"id\":" + std::to_string(id) + ",\"pid\":1" +
                       ",\"tid\":" + std::to_string(tid) +
                       ",\"ts\":" + std::to_string(ts);
    if (ph[0] == 'f') json += ",\"bp\":\"e\"";
    json += "}";
    emit(ts, std::move(json));
  };

  for (const TraceRecord& r : events) {
    const std::int64_t ts = r.at.count_micros();
    max_ts = std::max(max_ts, ts);
    see(r.node);
    see(r.peer);
    switch (r.kind) {
      case TraceEventKind::kSubmitted:
        jobs[r.job] = {r.node.value(), true};
        async_ev(r, "b", r.node.value(),
                 "\"initiator\":\"" + r.node.to_string() + "\"");
        break;
      case TraceEventKind::kRetry:
        milestone(r, "retry");
        break;
      case TraceEventKind::kUnschedulable:
        close_async(r, "unschedulable");
        break;
      case TraceEventKind::kBidSent: {
        const std::uint64_t id = next_flow++;
        bid_flows[{r.job, r.node.value()}].push_back(id);
        flow_ev(ts, "s", "bid", id, r.node.value());
        break;
      }
      case TraceEventKind::kBidReceived: {
        // Pair with the oldest unmatched bid this bidder sent for the job;
        // the initiator's self-quote has no matching send and draws no
        // arrow.
        auto q = bid_flows.find({r.job, r.peer.value()});
        if (q != bid_flows.end() && !q->second.empty()) {
          const std::uint64_t id = q->second.front();
          q->second.pop_front();
          flow_ev(ts, "f", "bid", id, r.node.value());
        }
        break;
      }
      case TraceEventKind::kDelegated: {
        const std::uint64_t id = next_flow++;
        assign_flows[{r.job, r.peer.value()}].push_back(id);
        flow_ev(ts, "s", "delegation", id, r.node.value());
        milestone(r, r.reschedule() ? "reschedule" : "delegated");
        break;
      }
      case TraceEventKind::kAssigned: {
        auto q = assign_flows.find({r.job, r.node.value()});
        if (q != assign_flows.end() && !q->second.empty()) {
          const std::uint64_t id = q->second.front();
          q->second.pop_front();
          flow_ev(ts, "f", "delegation", id, r.node.value());
        }
        milestone(r, "assigned");
        break;
      }
      case TraceEventKind::kStarted:
        open_exec[r.node.value()] = {r.job, ts};
        break;
      case TraceEventKind::kCompleted: {
        const auto it = open_exec.find(r.node.value());
        if (it != open_exec.end() && it->second.first == r.job) {
          const std::string name = "exec " + short_id(r.job);
          const std::string tid = std::to_string(r.node.value());
          emit(it->second.second,
               "{\"name\":\"" + name +
                   "\",\"cat\":\"exec\",\"ph\":\"B\",\"pid\":1,\"tid\":" +
                   tid + ",\"ts\":" + std::to_string(it->second.second) +
                   ",\"args\":{\"job\":\"" + r.job.to_string() + "\"}}");
          emit(ts, "{\"name\":\"" + name +
                       "\",\"cat\":\"exec\",\"ph\":\"E\",\"pid\":1,\"tid\":" +
                       tid + ",\"ts\":" + std::to_string(ts) + "}");
          open_exec.erase(it);
        }
        close_async(r, "completed");
        break;
      }
      case TraceEventKind::kRecovery:
        milestone(r, "recovery");
        break;
      case TraceEventKind::kAbandoned:
        close_async(r, "abandoned");
        break;
      case TraceEventKind::kShed:
        milestone(r, "shed");
        break;
      case TraceEventKind::kRejected:
        milestone(r, "rejected");
        break;
      case TraceEventKind::kMsg:
        break;  // not rendered; see header comment
    }
  }

  // Close async spans for jobs with no terminal event inside the horizon
  // (still queued/executing, or their terminal record was ring-dropped) so
  // every b has an e.
  for (auto& [job, state] : jobs) {
    if (!state.second) continue;
    state.second = false;
    emit(max_ts, "{\"name\":\"job " + short_id(job) +
                     "\",\"cat\":\"job\",\"ph\":\"e\",\"id\":\"" +
                     job.to_string() + "\",\"pid\":1,\"tid\":" +
                     std::to_string(state.first) +
                     ",\"ts\":" + std::to_string(max_ts) +
                     ",\"args\":{\"event\":\"open_at_horizon\"}}");
  }

  std::stable_sort(evs.begin(), evs.end(), [](const Ev& a, const Ev& b) {
    return a.ts != b.ts ? a.ts < b.ts : a.order < b.order;
  });

  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
         "\"args\":{\"name\":\"aria grid\"}}";
  for (const std::uint32_t n : nodes_seen) {
    out << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << n
        << ",\"args\":{\"name\":\"n" << n << "\"}}";
  }
  for (const Ev& e : evs) out << ",\n" << e.json;
  out << "\n]}\n";
}

}  // namespace aria::trace
