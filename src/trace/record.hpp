// Structured trace records: the binary event stream behind the tracing
// plane (docs/tracing.md).
//
// A TraceRecord is a fixed-size POD describing one protocol or wire event.
// Collection is O(1) per event — a struct copy into a pre-sized ring — so
// tracing stays off the simulation's hot path even when enabled, and costs
// nothing at all when disabled (the collector simply is not constructed;
// see the determinism contract in docs/tracing.md).
//
// The record is deliberately generic: a small set of typed fields whose
// meaning depends on the event kind (documented per kind below). Exporters
// (src/trace/export.hpp) turn the raw stream into JSONL, Chrome trace_event
// JSON, and per-job critical-path summaries.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "common/uuid.hpp"

namespace aria::trace {

/// What happened. Job-lifecycle kinds mirror proto::ProtocolObserver
/// callbacks one-to-one; kMsg records come from the network tap.
enum class TraceEventKind : std::uint8_t {
  kSubmitted = 0,   // user handed the job to `node` (the initiator)
  kRetry,           // REQUEST flood drew no offers; attempt `a` upcoming
  kUnschedulable,   // initiator exhausted retry.max_attempts (terminal)
  kBidSent,         // `node` sent (or self-recorded) an ACCEPT quote of
                    // `value` to collector `peer`
  kBidReceived,     // collector `node` took bidder `peer`'s quote `value`
                    // into its offer set
  kDelegated,       // delegator `node` sent ASSIGN to `peer`
                    // (flag kReschedule distinguishes moves)
  kAssigned,        // the job entered `node`'s queue
  kStarted,         // execution began on `node`
  kCompleted,       // execution finished on `node`; `value` = ART seconds
  kRecovery,        // failsafe watchdog re-flood, attempt `a`
  kAbandoned,       // recovery budget exhausted (terminal)
  kShed,            // bounded queue evicted the job on `node`
  kRejected,        // `node` refused an ASSIGN at the admission watermark
  kMsg,             // sampled wire message: `node`→`peer`, type index `a`,
                    // hops left `b`, `value` = wire bytes, `end` = delivery
};

/// Number of distinct kinds (dense array sizing in exporters/tests).
inline constexpr std::size_t kTraceEventKinds =
    static_cast<std::size_t>(TraceEventKind::kMsg) + 1;

/// Stable lowercase name for a kind (JSONL `kind` field, Chrome labels).
const char* kind_name(TraceEventKind kind);

/// One collected event. ~72 bytes, trivially copyable; field meaning by
/// kind is described on TraceEventKind.
struct TraceRecord {
  /// Global collection order (assigned by the buffer); merging the job and
  /// message streams on `seq` reconstructs exact call order.
  std::uint64_t seq{0};
  TimePoint at{};        // when the event happened (simulated clock)
  TimePoint end{};       // kMsg only: scheduled delivery time
  JobId job{};           // nil for kMsg
  NodeId node{};         // acting node (sender for kMsg)
  NodeId peer{};         // counterparty; invalid when not applicable
  double value{0.0};     // cost quote / ART seconds / wire bytes
  std::uint32_t a{0};    // attempt number, or message type index for kMsg
  std::uint32_t b{0};    // kMsg: remaining hop budget (kNoHops if none)
  std::uint8_t flags{0};
  TraceEventKind kind{TraceEventKind::kSubmitted};

  static constexpr std::uint8_t kReschedule = 1u << 0;  // kDelegated/kAssigned
  static constexpr std::uint8_t kFaultDropped = 1u << 1;  // kMsg: injected loss
  static constexpr std::uint32_t kNoHops = UINT32_MAX;

  bool reschedule() const { return (flags & kReschedule) != 0; }
  bool fault_dropped() const { return (flags & kFaultDropped) != 0; }
};

static_assert(sizeof(TraceRecord) <= 80, "keep trace records cache-friendly");

/// Collection knobs. Everything defaults to off; an enabled default-config
/// trace captures every lifecycle event and every 16th wire message.
struct TraceConfig {
  /// Master switch. Off ⇒ no collector exists, no observer decoration, no
  /// network tap: default output stays byte-identical (docs/tracing.md).
  bool enabled{false};
  /// Ring bound for job-lifecycle records. Full ⇒ newest records are
  /// dropped (and counted), so span *beginnings* stay coherent.
  std::size_t job_ring_capacity{1u << 20};
  /// Ring bound for sampled wire-message records (separate from the job
  /// ring so a message flood can never evict lifecycle events).
  std::size_t message_ring_capacity{1u << 18};
  /// Record every Nth Network::send (deterministic counter, no RNG).
  /// 1 = every message; 0 is treated as 1.
  std::uint64_t message_sample_every{16};
};

}  // namespace aria::trace
