#include "trace/record.hpp"

namespace aria::trace {

const char* kind_name(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kSubmitted: return "submitted";
    case TraceEventKind::kRetry: return "retry";
    case TraceEventKind::kUnschedulable: return "unschedulable";
    case TraceEventKind::kBidSent: return "bid_sent";
    case TraceEventKind::kBidReceived: return "bid_received";
    case TraceEventKind::kDelegated: return "delegated";
    case TraceEventKind::kAssigned: return "assigned";
    case TraceEventKind::kStarted: return "started";
    case TraceEventKind::kCompleted: return "completed";
    case TraceEventKind::kRecovery: return "recovery";
    case TraceEventKind::kAbandoned: return "abandoned";
    case TraceEventKind::kShed: return "shed";
    case TraceEventKind::kRejected: return "rejected";
    case TraceEventKind::kMsg: return "msg";
  }
  return "unknown";
}

}  // namespace aria::trace
