#include <cstdio>
#include <ostream>
#include <string>

#include "sim/message_types.hpp"
#include "trace/export.hpp"

namespace aria::trace {

namespace {

// Fixed "%.9g" rendering: enough digits for costs/ART, and — crucially for
// the determinism contract — a pure function of the double's bits, so
// same-seed runs serialize identically.
std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

void export_jsonl(const TraceBuffer& buffer, std::ostream& out) {
  for (const TraceRecord& r : buffer.merged()) {
    out << "{\"seq\":" << r.seq << ",\"t_us\":" << r.at.count_micros()
        << ",\"kind\":\"" << kind_name(r.kind) << '"';
    if (!r.job.is_nil()) out << ",\"job\":\"" << r.job.to_string() << '"';
    if (r.node.valid()) out << ",\"node\":\"" << r.node.to_string() << '"';
    if (r.peer.valid()) out << ",\"peer\":\"" << r.peer.to_string() << '"';
    switch (r.kind) {
      case TraceEventKind::kBidSent:
      case TraceEventKind::kBidReceived:
        out << ",\"cost\":" << fmt_double(r.value);
        break;
      case TraceEventKind::kCompleted:
        out << ",\"art_s\":" << fmt_double(r.value);
        break;
      case TraceEventKind::kRetry:
      case TraceEventKind::kRecovery:
        out << ",\"attempt\":" << r.a;
        break;
      case TraceEventKind::kDelegated:
      case TraceEventKind::kAssigned:
        out << ",\"reschedule\":" << (r.reschedule() ? "true" : "false");
        break;
      case TraceEventKind::kMsg: {
        const auto type = sim::MessageTypeId::from_index(r.a);
        out << ",\"type\":\"" << sim::MessageTypeRegistry::name(type)
            << "\",\"bytes\":" << static_cast<std::uint64_t>(r.value)
            << ",\"deliver_us\":" << r.end.count_micros();
        if (r.b != TraceRecord::kNoHops) out << ",\"hops_left\":" << r.b;
        if (r.fault_dropped()) out << ",\"faulted\":true";
        break;
      }
      default:
        break;
    }
    out << "}\n";
  }
}

}  // namespace aria::trace
