// TraceSink: where trace records go. The production sink is TraceBuffer, a
// bounded in-memory ring; tests may substitute their own sink to observe
// the raw stream.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "trace/record.hpp"

namespace aria::trace {

/// Abstract record consumer. Implementations must be O(1) per record —
/// record() runs inside protocol handlers and the network send path.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Consumes one record. The sink assigns `r.seq` (callers leave it 0);
  /// sequence numbers are global across both streams, so merging on `seq`
  /// reconstructs exact collection order.
  virtual void record(TraceRecord r) = 0;
};

/// Bounded binary collection buffer: two pre-sized rings (job lifecycle vs
/// sampled wire messages) with drop-newest overflow. Dropping the *newest*
/// records keeps every captured span's beginning intact — a truncated trace
/// shows complete early history rather than orphaned span ends — and the
/// dropped counters make truncation explicit instead of silent.
class TraceBuffer final : public TraceSink {
 public:
  explicit TraceBuffer(const TraceConfig& config) : config_{config} {
    // Pre-size to modest starting chunks; capacity is a cap, not a reserve,
    // so a short run never pays for a 1M-record allocation.
    job_events_.reserve(std::min<std::size_t>(config_.job_ring_capacity, 4096));
    message_events_.reserve(
        std::min<std::size_t>(config_.message_ring_capacity, 4096));
  }

  void record(TraceRecord r) override {
    r.seq = seq_++;
    if (r.kind == TraceEventKind::kMsg) {
      append(message_events_, config_.message_ring_capacity, r,
             dropped_message_events_);
    } else {
      append(job_events_, config_.job_ring_capacity, r, dropped_job_events_);
    }
  }

  /// Job-lifecycle records in collection (= chronological) order.
  const std::vector<TraceRecord>& job_events() const { return job_events_; }
  /// Sampled wire-message records in collection order.
  const std::vector<TraceRecord>& message_events() const {
    return message_events_;
  }

  /// Both streams merged on `seq` (exact collection order).
  std::vector<TraceRecord> merged() const {
    std::vector<TraceRecord> out;
    out.reserve(job_events_.size() + message_events_.size());
    std::size_t j = 0, m = 0;
    while (j < job_events_.size() || m < message_events_.size()) {
      const bool take_job =
          m == message_events_.size() ||
          (j < job_events_.size() &&
           job_events_[j].seq < message_events_[m].seq);
      out.push_back(take_job ? job_events_[j++] : message_events_[m++]);
    }
    return out;
  }

  std::uint64_t total_recorded() const { return seq_; }
  std::uint64_t dropped_job_events() const { return dropped_job_events_; }
  std::uint64_t dropped_message_events() const {
    return dropped_message_events_;
  }

  const TraceConfig& config() const { return config_; }

 private:
  static void append(std::vector<TraceRecord>& ring, std::size_t capacity,
                     const TraceRecord& r, std::uint64_t& dropped) {
    if (ring.size() >= capacity) {
      ++dropped;
      return;
    }
    ring.push_back(r);
  }

  TraceConfig config_;
  std::uint64_t seq_{0};
  std::vector<TraceRecord> job_events_;
  std::vector<TraceRecord> message_events_;
  std::uint64_t dropped_job_events_{0};
  std::uint64_t dropped_message_events_{0};
};

}  // namespace aria::trace
