#include "trace/critical_path.hpp"

#include <cstddef>
#include <deque>
#include <map>
#include <unordered_map>
#include <utility>

namespace aria::trace {

std::vector<JobCriticalPath> critical_paths(const TraceBuffer& buffer) {
  std::vector<JobCriticalPath> out;
  std::unordered_map<JobId, std::size_t> index;

  // Transient per-job state not worth keeping in the public summary.
  struct Open {
    std::deque<std::int64_t> delegated_at;  // kDelegated awaiting kAssigned
    TimePoint last_assigned{};
    bool has_assigned{false};
    TimePoint started_at{};
    bool executing{false};
  };
  std::unordered_map<JobId, Open> open;

  auto find = [&](const JobId& job) -> JobCriticalPath* {
    const auto it = index.find(job);
    return it == index.end() ? nullptr : &out[it->second];
  };

  for (const TraceRecord& r : buffer.job_events()) {
    if (r.kind == TraceEventKind::kSubmitted) {
      index.emplace(r.job, out.size());
      JobCriticalPath p;
      p.job = r.job;
      p.initiator = r.node;
      p.submitted = r.at;
      out.push_back(p);
      continue;
    }
    JobCriticalPath* p = find(r.job);
    if (p == nullptr) continue;  // submission record ring-dropped
    Open& o = open[r.job];
    switch (r.kind) {
      case TraceEventKind::kBidReceived:
        if (p->bids == 0) p->time_to_first_bid = r.at - p->submitted;
        ++p->bids;
        break;
      case TraceEventKind::kRetry:
        ++p->retries;
        break;
      case TraceEventKind::kDelegated:
        // Local placements (node == peer) deliver instantly and would bias
        // the ASSIGN-latency mean toward zero; only wire hops count.
        if (r.node != r.peer) o.delegated_at.push_back(r.at.count_micros());
        break;
      case TraceEventKind::kAssigned:
        if (!o.delegated_at.empty()) {
          p->delegation_us_total +=
              r.at.count_micros() - o.delegated_at.front();
          o.delegated_at.pop_front();
          ++p->delegations;
        }
        if (r.reschedule()) ++p->reschedules;
        o.last_assigned = r.at;
        o.has_assigned = true;
        break;
      case TraceEventKind::kStarted:
        if (o.has_assigned) p->queue_wait = r.at - o.last_assigned;
        p->started = true;
        o.started_at = r.at;
        o.executing = true;
        break;
      case TraceEventKind::kCompleted:
        if (o.executing) p->execution = r.at - o.started_at;
        o.executing = false;
        p->completed = true;
        p->finished = r.at;
        break;
      case TraceEventKind::kRecovery:
        ++p->recoveries;
        break;
      case TraceEventKind::kUnschedulable:
        p->unschedulable = true;
        p->finished = r.at;
        break;
      case TraceEventKind::kAbandoned:
        p->abandoned = true;
        p->finished = r.at;
        break;
      case TraceEventKind::kShed:
        ++p->sheds;
        break;
      case TraceEventKind::kRejected:
        ++p->rejects;
        break;
      case TraceEventKind::kSubmitted:
      case TraceEventKind::kBidSent:
      case TraceEventKind::kMsg:
        break;
    }
  }
  return out;
}

CriticalPathAggregate aggregate(const std::vector<JobCriticalPath>& paths) {
  CriticalPathAggregate agg;
  agg.jobs = paths.size();
  for (const JobCriticalPath& p : paths) {
    if (p.bids > 0) agg.time_to_first_bid_s.add(p.time_to_first_bid.to_seconds());
    agg.bids.add(static_cast<double>(p.bids));
    if (p.delegations > 0)
      agg.delegation_latency_s.add(p.delegation_latency().to_seconds());
    if (p.started) agg.queue_wait_s.add(p.queue_wait.to_seconds());
    agg.reschedules.add(static_cast<double>(p.reschedules));
    if (p.terminal()) agg.makespan_s.add((p.finished - p.submitted).to_seconds());
    if (p.completed) ++agg.completed;
    else if (p.unschedulable) ++agg.unschedulable;
    else if (p.abandoned) ++agg.abandoned;
    else ++agg.open;
  }
  return agg;
}

}  // namespace aria::trace
