// TraceCollector: turns protocol-observer callbacks and network-tap events
// into TraceRecords.
//
// The collector is a *decorator*: it wraps the run's existing observer
// (normally the JobTracker) and forwards every callback unchanged, so
// attaching tracing never alters what the tracker — and therefore every
// golden metric — sees. It also implements sim::MessageTap for the sampled
// wire-message stream. Construction only happens when TraceConfig::enabled
// is true; a disabled trace plane has no collector, no decorated observer
// and no tap, which is what keeps default output byte-identical
// (docs/tracing.md).
#pragma once

#include <memory>

#include "core/observer.hpp"
#include "sim/network.hpp"
#include "trace/sink.hpp"

namespace aria::trace {

class TraceCollector final : public proto::ProtocolObserver,
                             public sim::MessageTap {
 public:
  /// `next` (may be null) receives every observer callback unchanged,
  /// before the record is collected.
  explicit TraceCollector(const TraceConfig& config,
                          proto::ProtocolObserver* next = nullptr);

  /// The collected stream; shared so RunResult can keep it alive after the
  /// simulation (and its collector) is gone.
  std::shared_ptr<const TraceBuffer> buffer() const { return buffer_; }

  // --- proto::ProtocolObserver ------------------------------------------
  void on_submitted(const grid::JobSpec& job, NodeId initiator,
                    TimePoint at) override;
  void on_request_retry(const JobId& id, std::size_t attempt,
                        TimePoint at) override;
  void on_unschedulable(const JobId& id, TimePoint at) override;
  void on_bid_sent(const JobId& id, NodeId bidder, NodeId to, double cost,
                   TimePoint at) override;
  void on_bid_received(const JobId& id, NodeId collector, NodeId bidder,
                       double cost, TimePoint at) override;
  void on_delegated(const JobId& id, NodeId from, NodeId to, TimePoint at,
                    bool reschedule) override;
  void on_assigned(const grid::JobSpec& job, NodeId node, TimePoint at,
                   bool reschedule) override;
  void on_started(const JobId& id, NodeId node, TimePoint at) override;
  void on_completed(const JobId& id, NodeId node, TimePoint at,
                    Duration art) override;
  void on_recovery(const JobId& id, std::size_t attempt,
                   TimePoint at) override;
  void on_abandoned(const JobId& id, TimePoint at) override;
  void on_shed(const grid::JobSpec& job, NodeId node, TimePoint at) override;
  void on_rejected(const JobId& id, NodeId node, TimePoint at) override;

  // --- sim::MessageTap ---------------------------------------------------
  void on_message(NodeId from, NodeId to, const sim::Message& message,
                  TimePoint sent, TimePoint deliver, bool faulted) override;

 private:
  std::shared_ptr<TraceBuffer> buffer_;
  proto::ProtocolObserver* next_;
};

}  // namespace aria::trace
