// Trace exporters (docs/tracing.md).
//
// * export_jsonl — one JSON object per record, in exact collection order.
//   The machine-diffable format: two same-seed runs produce byte-identical
//   files (pinned by tests/trace/trace_determinism_test.cpp).
// * export_chrome — Chrome trace_event JSON ("{"traceEvents":[...]}"),
//   loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. One thread
//   track per node carrying balanced B/E execution spans, one async track
//   per job for its lifecycle, and s/f flow arrows for bid and delegation
//   causality (REQUEST → ACCEPT → ASSIGN).
#pragma once

#include <iosfwd>

#include "trace/sink.hpp"

namespace aria::trace {

void export_jsonl(const TraceBuffer& buffer, std::ostream& out);

void export_chrome(const TraceBuffer& buffer, std::ostream& out);

}  // namespace aria::trace
