#include "sim/latency.hpp"

#include <cmath>
#include <numbers>

namespace aria::sim {

namespace {
std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}
}  // namespace

void GeoLatencyModel::position(NodeId n, double& x, double& y) const {
  const std::uint64_t h = mix(params_.seed ^ (static_cast<std::uint64_t>(n.value()) + 1));
  x = static_cast<double>(h >> 32) / 4294967296.0;
  y = static_cast<double>(h & 0xFFFFFFFFULL) / 4294967296.0;
}

Duration GeoLatencyModel::latency(NodeId a, NodeId b, Rng& rng) {
  double ax, ay, bx, by;
  position(a, ax, ay);
  position(b, bx, by);
  const double dist = std::hypot(ax - bx, ay - by) / std::numbers::sqrt2;
  const Duration deterministic = params_.base + params_.span.scaled(dist);
  const double jitter = rng.uniform(0.0, params_.jitter_fraction);
  return deterministic + deterministic.scaled(jitter);
}

}  // namespace aria::sim
