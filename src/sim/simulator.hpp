// Deterministic discrete-event simulation kernel.
//
// Events are (time, sequence) ordered: two events at the same instant fire
// in scheduling order, which makes whole runs bit-reproducible.
//
// Storage layout (see docs/kernel.md for the full design):
//   - Event records live in a slab (std::vector<Slot>) with a free list;
//     after warm-up, scheduling allocates nothing beyond what the closure
//     itself needs (small closures are stored inline in the slot).
//   - The ready queue is a 4-ary heap of 24-byte PODs {time, seq, slot,
//     generation} — sift swaps move three words, never a closure.
//   - EventHandle is a POD {simulator, slot, generation} triple. Cancelling
//     frees the slot immediately (bumping the generation so the handle and
//     any stale heap entry are recognized as dead) and counts the orphaned
//     heap entry in cancelled_pending(); when dead entries dominate the
//     heap, it is compacted in one pass.
//   - Periodic events re-arm by recycling their slot: one heap push per
//     tick, zero allocation.
//
// Lifetime: an EventHandle must not be used after its Simulator is
// destroyed (a default-constructed handle is always inert). Every component
// in this codebase destroys nodes/timers before the simulator.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/time.hpp"
#include "sim/callback.hpp"

namespace aria::sim {

class Simulator;

/// Handle to a scheduled event; cheap to copy. cancel() is idempotent and a
/// no-op once the event fired; for periodic events it stops the series.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevents the event from firing; idempotent.
  void cancel();

  /// True while the event is still scheduled and not cancelled.
  bool pending() const;

 private:
  friend class Simulator;
  EventHandle(Simulator* sim, std::uint32_t slot, std::uint32_t generation)
      : sim_{sim}, slot_{slot}, generation_{generation} {}

  Simulator* sim_{nullptr};
  std::uint32_t slot_{0};
  std::uint32_t generation_{0};
};

class Simulator {
 public:
  using Callback = UniqueCallback;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimePoint now() const { return now_; }

  /// Schedules `fn` at absolute time `at`; `at` must not precede now().
  EventHandle schedule_at(TimePoint at, Callback fn);

  /// Schedules `fn` after `delay` (clamped to zero if negative).
  EventHandle schedule_after(Duration delay, Callback fn);

  /// Schedules `fn` every `period` starting at now() + `phase`. The callback
  /// keeps firing until the returned handle is cancelled or the run ends.
  EventHandle schedule_periodic(Duration phase, Duration period, Callback fn);

  /// Runs until the queue drains. Returns the number of events fired.
  std::uint64_t run();

  /// Runs until the queue drains or simulated time would pass `deadline`;
  /// the clock is left at min(deadline, last event time). Events scheduled
  /// exactly at `deadline` do fire.
  std::uint64_t run_until(TimePoint deadline);

  /// Fires at most one event. Returns false if the queue was empty.
  bool step();

  /// Time of the next live event without firing it (prunes dead heap tops
  /// as a side effect), or nullopt when the queue is drained.
  std::optional<TimePoint> peek();

  /// Requests run()/run_until() to return after the current event.
  void stop() { stop_requested_ = true; }

  /// Live (not cancelled) scheduled events.
  std::size_t pending_events() const {
    return heap_.size() - static_cast<std::size_t>(cancelled_pending_);
  }
  std::uint64_t fired_events() const { return fired_; }

  // --- introspection (tests, docs/kernel.md invariants) -----------------
  /// Dead heap entries awaiting lazy skip or compaction.
  std::uint64_t cancelled_pending() const { return cancelled_pending_; }
  /// Times the heap was rebuilt to shed dead entries.
  std::uint64_t compactions() const { return compactions_; }
  /// Event-record slots ever allocated (slab high-water mark).
  std::size_t slab_slots() const { return slots_.size(); }

 private:
  friend class EventHandle;

  struct Slot {
    Callback fn;
    std::uint32_t generation{0};
    bool periodic{false};
    /// A heap entry for the current generation exists (false while the
    /// event is being dispatched).
    bool in_heap{false};
    Duration period{};
  };

  /// 24-byte POD the heap orders by (at, seq).
  struct HeapEntry {
    TimePoint at;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t generation;
  };

  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  // Compaction triggers when at least kCompactMinDead dead entries make up
  // half the heap; the rebuild is O(n) and amortizes to O(1) per cancel.
  static constexpr std::uint64_t kCompactMinDead = 64;

  bool slot_live(const HeapEntry& e) const {
    return slots_[e.slot].generation == e.generation;
  }

  std::uint32_t alloc_slot();
  void free_slot(std::uint32_t slot);
  void cancel(std::uint32_t slot, std::uint32_t generation);
  bool is_pending(std::uint32_t slot, std::uint32_t generation) const {
    return slot < slots_.size() && slots_[slot].generation == generation;
  }

  void heap_push(HeapEntry entry);
  void heap_pop_front();
  void sift_down(std::size_t i);
  void maybe_compact();

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<HeapEntry> heap_;
  TimePoint now_{};
  std::uint64_t next_seq_{0};
  std::uint64_t fired_{0};
  std::uint64_t cancelled_pending_{0};
  std::uint64_t compactions_{0};
  bool stop_requested_{false};
};

inline void EventHandle::cancel() {
  if (sim_ != nullptr) sim_->cancel(slot_, generation_);
}

inline bool EventHandle::pending() const {
  return sim_ != nullptr && sim_->is_pending(slot_, generation_);
}

}  // namespace aria::sim
