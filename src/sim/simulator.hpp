// Deterministic discrete-event simulation kernel.
//
// Events are (time, sequence) ordered: two events at the same instant fire
// in scheduling order, which makes whole runs bit-reproducible. Events may
// be cancelled through their handle; cancelled entries are skipped lazily
// when popped.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/time.hpp"

namespace aria::sim {

/// Handle to a scheduled event; cheap to copy, outliving the simulator is
/// safe (cancel becomes a no-op once the event fired).
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevents the event from firing; idempotent.
  void cancel() {
    if (auto s = state_.lock()) *s = true;
  }

  /// True while the event is still scheduled and not cancelled.
  bool pending() const {
    auto s = state_.lock();
    return s && !*s;
  }

 private:
  friend class Simulator;
  explicit EventHandle(std::weak_ptr<bool> state) : state_{std::move(state)} {}
  std::weak_ptr<bool> state_;
};

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimePoint now() const { return now_; }

  /// Schedules `fn` at absolute time `at`; `at` must not precede now().
  EventHandle schedule_at(TimePoint at, Callback fn);

  /// Schedules `fn` after `delay` (clamped to zero if negative).
  EventHandle schedule_after(Duration delay, Callback fn);

  /// Schedules `fn` every `period` starting at now() + `phase`. The callback
  /// keeps firing until the returned handle is cancelled or the run ends.
  EventHandle schedule_periodic(Duration phase, Duration period, Callback fn);

  /// Runs until the queue drains. Returns the number of events fired.
  std::uint64_t run();

  /// Runs until the queue drains or simulated time would pass `deadline`;
  /// the clock is left at min(deadline, last event time). Events scheduled
  /// exactly at `deadline` do fire.
  std::uint64_t run_until(TimePoint deadline);

  /// Fires at most one event. Returns false if the queue was empty.
  bool step();

  /// Requests run()/run_until() to return after the current event.
  void stop() { stop_requested_ = true; }

  std::size_t pending_events() const;
  std::uint64_t fired_events() const { return fired_; }

 private:
  struct Entry {
    TimePoint at;
    std::uint64_t seq;
    Callback fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  // Pops skipping cancelled entries; false when drained.
  bool pop_next(Entry& out);

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  TimePoint now_{};
  std::uint64_t next_seq_{0};
  std::uint64_t fired_{0};
  std::uint64_t cancelled_pending_{0};
  bool stop_requested_{false};
};

}  // namespace aria::sim
