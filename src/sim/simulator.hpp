// Deterministic discrete-event simulation kernel.
//
// Events are (time, key, sequence) ordered: two events at the same instant
// fire in key order, then scheduling order, which makes whole runs
// bit-reproducible. The key defaults to 0; message deliveries pass an
// explicit (sender, per-sender seq) key via schedule_at_keyed so that
// same-instant deliveries fire in an order independent of *when* each one
// was scheduled — the property that lets the sharded PDES executor
// (sim/pdes, docs/pdes.md) reproduce sequential runs byte-for-byte even
// though cross-shard messages are enqueued at window boundaries rather
// than at their senders' send instants.
//
// Storage layout (see docs/kernel.md for the full design):
//   - Event records live in a slab (std::vector<Slot>) with a free list;
//     after warm-up, scheduling allocates nothing beyond what the closure
//     itself needs (small closures are stored inline in the slot).
//   - The ready queue is a 4-ary heap of 32-byte PODs {time, key, seq,
//     slot, generation} — sift swaps move four words, never a closure.
//   - EventHandle is a POD {simulator, slot, generation} triple. Cancelling
//     frees the slot immediately (bumping the generation so the handle and
//     any stale heap entry are recognized as dead) and counts the orphaned
//     heap entry in cancelled_pending(); when dead entries dominate the
//     heap, it is compacted in one pass.
//   - Periodic events re-arm by recycling their slot: one heap push per
//     tick, zero allocation.
//
// Lifetime: an EventHandle must not be used after its Simulator is
// destroyed (a default-constructed handle is always inert). Every component
// in this codebase destroys nodes/timers before the simulator.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/time.hpp"
#include "sim/callback.hpp"

namespace aria::sim {

class Simulator;

/// Handle to a scheduled event; cheap to copy. cancel() is idempotent and a
/// no-op once the event fired; for periodic events it stops the series.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevents the event from firing; idempotent.
  void cancel();

  /// True while the event is still scheduled and not cancelled.
  bool pending() const;

 private:
  friend class Simulator;
  EventHandle(Simulator* sim, std::uint32_t slot, std::uint32_t generation)
      : sim_{sim}, slot_{slot}, generation_{generation} {}

  Simulator* sim_{nullptr};
  std::uint32_t slot_{0};
  std::uint32_t generation_{0};
};

class Simulator {
 public:
  using Callback = UniqueCallback;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimePoint now() const { return now_; }

  /// Schedules `fn` at absolute time `at`; `at` must not precede now().
  EventHandle schedule_at(TimePoint at, Callback fn);

  /// Like schedule_at, but with an explicit same-instant ordering key:
  /// events at equal times fire in ascending key order (ties by scheduling
  /// order). Key 0 — what schedule_at uses — sorts before every nonzero
  /// key, so timers and engine-plane events keep firing ahead of
  /// same-instant deliveries. The Network keys deliveries by
  /// (sender, per-sender wire seq), making same-instant delivery order a
  /// pure function of message identity (docs/pdes.md "Determinism
  /// contract").
  EventHandle schedule_at_keyed(TimePoint at, std::uint64_t key, Callback fn);

  /// Schedules `fn` after `delay` (clamped to zero if negative).
  EventHandle schedule_after(Duration delay, Callback fn);

  /// Schedules `fn` every `period` starting at now() + `phase`. The callback
  /// keeps firing until the returned handle is cancelled or the run ends.
  EventHandle schedule_periodic(Duration phase, Duration period, Callback fn);

  /// Runs until the queue drains. Returns the number of events fired.
  std::uint64_t run();

  /// Runs until the queue drains or simulated time would pass `deadline`;
  /// the clock is left at min(deadline, last event time). Events scheduled
  /// exactly at `deadline` do fire.
  std::uint64_t run_until(TimePoint deadline);

  /// Runs every event strictly before `bound` and leaves events at or after
  /// it in the queue; the clock stays at the last fired event (never bumped
  /// to `bound`). This is the shard-side primitive of the conservative PDES
  /// executor (sim/pdes): a shard granted the window [now, bound) may fire
  /// exactly the events run_until_before(bound) fires. Events scheduled
  /// exactly at `bound` do NOT fire.
  std::uint64_t run_until_before(TimePoint bound);

  /// Advances the clock to `at` without firing anything. Requires that no
  /// live event is scheduled before `at` (asserted) — i.e. the caller knows
  /// the interval [now, at) is empty, which is exactly what the PDES
  /// barrier protocol establishes before running engine-plane events at
  /// `at`. A no-op when `at` is in the past.
  void advance_to(TimePoint at);

  /// Fires at most one event. Returns false if the queue was empty.
  bool step();

  /// Time of the next live event without firing it (prunes dead heap tops
  /// as a side effect), or nullopt when the queue is drained.
  std::optional<TimePoint> peek();

  /// Requests run()/run_until() to return after the current event.
  void stop() { stop_requested_ = true; }

  /// Live (not cancelled) scheduled events.
  std::size_t pending_events() const {
    return heap_.size() - static_cast<std::size_t>(cancelled_pending_);
  }
  std::uint64_t fired_events() const { return fired_; }

  // --- introspection (tests, docs/kernel.md invariants) -----------------
  /// Dead heap entries awaiting lazy skip or compaction.
  std::uint64_t cancelled_pending() const { return cancelled_pending_; }
  /// Times the heap was rebuilt to shed dead entries.
  std::uint64_t compactions() const { return compactions_; }
  /// Event-record slots ever allocated (slab high-water mark).
  std::size_t slab_slots() const { return slots_.size(); }

 private:
  friend class EventHandle;

  struct Slot {
    Callback fn;
    std::uint32_t generation{0};
    bool periodic{false};
    /// A heap entry for the current generation exists (false while the
    /// event is being dispatched).
    bool in_heap{false};
    Duration period{};
  };

  /// 32-byte POD the heap orders by (at, key, seq).
  struct HeapEntry {
    TimePoint at;
    std::uint64_t key;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t generation;
  };

  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.key != b.key) return a.key < b.key;
    return a.seq < b.seq;
  }

  // Compaction triggers when at least kCompactMinDead dead entries make up
  // half the heap; the rebuild is O(n) and amortizes to O(1) per cancel.
  static constexpr std::uint64_t kCompactMinDead = 64;

  bool slot_live(const HeapEntry& e) const {
    return slots_[e.slot].generation == e.generation;
  }

  std::uint32_t alloc_slot();
  void free_slot(std::uint32_t slot);
  void cancel(std::uint32_t slot, std::uint32_t generation);
  bool is_pending(std::uint32_t slot, std::uint32_t generation) const {
    return slot < slots_.size() && slots_[slot].generation == generation;
  }

  void heap_push(HeapEntry entry);
  void heap_pop_front();
  void sift_down(std::size_t i);
  void maybe_compact();

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<HeapEntry> heap_;
  TimePoint now_{};
  std::uint64_t next_seq_{0};
  std::uint64_t fired_{0};
  std::uint64_t cancelled_pending_{0};
  std::uint64_t compactions_{0};
  bool stop_requested_{false};
};

inline void EventHandle::cancel() {
  if (sim_ != nullptr) sim_->cancel(slot_, generation_);
}

inline bool EventHandle::pending() const {
  return sim_ != nullptr && sim_->is_pending(slot_, generation_);
}

}  // namespace aria::sim
