#include "sim/message_types.hpp"

#include <cassert>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace aria::sim {

namespace {

struct Registry {
  std::mutex mu;
  // Names are heap-stable (unique_ptr) so name() can hand out references
  // that survive later registrations.
  std::vector<std::unique_ptr<const std::string>> names;
  std::unordered_map<std::string_view, std::uint16_t> index;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: outlives static dtors
  return *r;
}

}  // namespace

MessageTypeId MessageTypeRegistry::intern(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock{r.mu};
  if (const auto it = r.index.find(name); it != r.index.end()) {
    return MessageTypeId{it->second};
  }
  assert(r.names.size() < MessageTypeId::kInvalid);
  const auto id = static_cast<std::uint16_t>(r.names.size());
  r.names.push_back(std::make_unique<const std::string>(name));
  r.index.emplace(std::string_view{*r.names.back()}, id);
  return MessageTypeId{id};
}

std::optional<MessageTypeId> MessageTypeRegistry::find(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock{r.mu};
  if (const auto it = r.index.find(name); it != r.index.end()) {
    return MessageTypeId{it->second};
  }
  return std::nullopt;
}

const std::string& MessageTypeRegistry::name(MessageTypeId id) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock{r.mu};
  assert(id.valid() && id.index() < r.names.size());
  return *r.names[id.index()];
}

std::size_t MessageTypeRegistry::count() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock{r.mu};
  return r.names.size();
}

}  // namespace aria::sim
