#include "sim/pdes/executor.hpp"

#include <barrier>
#include <cassert>
#include <thread>
#include <utility>

namespace aria::sim::pdes {

ShardExecutor::ShardExecutor(std::vector<Simulator*> shards, Simulator& engine,
                             ChannelMatrix& channels,
                             std::vector<Network*> nets, Config config)
    : shards_{std::move(shards)},
      engine_{engine},
      channels_{channels},
      nets_{std::move(nets)},
      config_{config},
      fired_(shards_.size(), 0) {
  assert(!shards_.empty());
  assert(nets_.size() == shards_.size());
  assert(config_.lookahead > Duration::zero());
}

void ShardExecutor::drain() noexcept {
  // Canonical order — destination-major, source ascending, FIFO within a
  // channel. Each delivery is scheduled under its sender-stamped ordering
  // key, so same-instant deliveries fire in (sender, per-sender seq) order
  // no matter when they were drained — the drain order itself only has to
  // be deterministic, not sequential-equivalent.
  const std::size_t n = shards_.size();
  for (std::size_t dst = 0; dst < n; ++dst) {
    for (std::size_t src = 0; src < n; ++src) {
      if (src == dst) continue;
      stats_.messages_forwarded +=
          channels_.at(src, dst).drain([&](CrossShardEnvelope&& e) {
            nets_[dst]->deliver_remote(e.from, e.to, e.deliver_at, e.key,
                                       std::move(e.message));
          });
    }
  }
}

// Runs in a serial context only: before the workers start, and as the
// barrier completion step while every worker is blocked. Decides whether
// the next stretch of simulated time belongs to the engine (run here,
// serially) or to the shards (set up a parallel window and return).
void ShardExecutor::coordinate() noexcept {
  drain();  // messages produced by the window that just ended
  if (config_.stamp != nullptr) config_.stamp->active = true;
  for (;;) {
    const std::optional<TimePoint> t_engine = engine_.peek();
    std::optional<TimePoint> t_shard;
    for (Simulator* s : shards_) {
      const std::optional<TimePoint> p = s->peek();
      if (p && (!t_shard || *p < *t_shard)) t_shard = p;
    }

    // Engine phase. Ties go to the engine — a documented deviation from
    // the sequential kernel's global (time, seq) order; see docs/pdes.md
    // "Determinism contract" for why same-microsecond engine/shard ties
    // are the one accepted hazard.
    if (t_engine && *t_engine <= config_.horizon &&
        (!t_shard || *t_engine <= *t_shard)) {
      const TimePoint t = *t_engine;
      // Shard clocks must sit at t before engine events call into nodes:
      // node code schedules follow-ups via its shard simulator, and those
      // offsets anchor at now(). Safe — no shard holds an event before t.
      for (Simulator* s : shards_) s->advance_to(t);
      ++stats_.engine_phases;
      stats_.engine_events += engine_.run_until(t);
      drain();  // engine-phase sends may have crossed shards
      continue;
    }

    if (!t_shard || *t_shard > config_.horizon) {
      // Nothing left inside the horizon. Land every clock on it, exactly
      // like Simulator::run_until leaves the sequential clock.
      engine_.run_until(config_.horizon);
      for (Simulator* s : shards_) s->advance_to(config_.horizon);
      done_ = true;
      return;
    }

    // Shard window [*t_shard, end). Any message sent at time t inside it
    // arrives at t + latency >= *t_shard + lookahead >= end, so shards
    // cannot affect each other within the window. The +1us past the
    // horizon makes events scheduled exactly at the horizon fire
    // (run_until_before's bound is exclusive).
    TimePoint end = *t_shard + config_.lookahead;
    if (t_engine && *t_engine < end) end = *t_engine;
    const TimePoint hard = config_.horizon + Duration::micros(1);
    if (end > hard) end = hard;
    window_end_ = end;
    ++stats_.windows;
    if (config_.stamp != nullptr) config_.stamp->active = false;
    return;
  }
}

template <typename Barrier>
void ShardExecutor::worker(std::size_t index, Barrier& sync) {
  while (!done_) {
    fired_[index] += shards_[index]->run_until_before(window_end_);
    sync.arrive_and_wait();  // completion step runs coordinate()
  }
}

ShardExecutor::Stats ShardExecutor::run() {
  coordinate();  // first directive; may finish an event-free run outright
  if (!done_) {
    struct Completion {
      ShardExecutor* self;
      void operator()() noexcept { self->coordinate(); }
    };
    std::barrier<Completion> sync{
        static_cast<std::ptrdiff_t>(shards_.size()), Completion{this}};
    std::vector<std::thread> threads;
    threads.reserve(shards_.size() - 1);
    for (std::size_t i = 1; i < shards_.size(); ++i) {
      threads.emplace_back([this, i, &sync] { worker(i, sync); });
    }
    worker(0, sync);
    for (std::thread& t : threads) t.join();
  }
  if (config_.stamp != nullptr) config_.stamp->active = true;
  for (const std::uint64_t f : fired_) stats_.shard_events += f;
  return stats_;
}

}  // namespace aria::sim::pdes
