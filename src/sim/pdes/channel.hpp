// Cross-shard message transport (docs/pdes.md "Channel protocol").
//
// Every ordered shard pair (src, dst) gets one bounded SPSC channel.
// Messages enter at send time — after the sender-side fault verdict and
// latency draw, stamped with their absolute delivery instant — and leave at
// the next barrier, when the coordinator drains all channels in canonical
// order (destination-major, source ascending, FIFO within a channel) and
// schedules each message on the owning shard's simulator under its
// sender-stamped ordering key, so same-instant deliveries fire in
// (sender, per-sender seq) order exactly as they would sequentially —
// never in thread-timing or drain order.
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "common/spsc.hpp"
#include "common/time.hpp"
#include "sim/network.hpp"
#include "sim/pdes/shard_map.hpp"

namespace aria::sim::pdes {

/// One in-flight cross-shard message. `deliver_at` was fixed on the sender
/// side; the conservative window bound guarantees it is still in the
/// destination shard's future when the envelope is drained.
struct CrossShardEnvelope {
  NodeId from{};
  NodeId to{};
  TimePoint deliver_at{};
  /// Sender-side delivery ordering key (Network::next_delivery_key);
  /// reapplied verbatim when the destination shard schedules the delivery.
  std::uint64_t key{0};
  std::unique_ptr<Message> message;
};

/// The full shards x shards channel fabric (diagonal unused).
class ChannelMatrix {
 public:
  explicit ChannelMatrix(std::size_t shards, std::size_t ring_capacity = 1024)
      : shards_{shards} {
    channels_.reserve(shards * shards);
    for (std::size_t i = 0; i < shards * shards; ++i) {
      channels_.push_back(
          std::make_unique<SpscChannel<CrossShardEnvelope>>(ring_capacity));
    }
  }

  SpscChannel<CrossShardEnvelope>& at(std::size_t src, std::size_t dst) {
    assert(src < shards_ && dst < shards_);
    return *channels_[src * shards_ + dst];
  }

  std::size_t shards() const { return shards_; }

  std::uint64_t total_overflows() const {
    std::uint64_t n = 0;
    for (const auto& c : channels_) n += c->overflow_count();
    return n;
  }

 private:
  std::size_t shards_;
  std::vector<std::unique_ptr<SpscChannel<CrossShardEnvelope>>> channels_;
};

/// The sender-side half of the transport: one per shard, attached to that
/// shard's Network via set_remote_route(). During a window only the shard's
/// own worker sends through it; during engine phases only the coordinator
/// does — there is never more than one producer at a time per channel,
/// which is exactly the SPSC contract.
class ShardRoute final : public RemoteRoute {
 public:
  ShardRoute(ShardMap map, std::size_t self, ChannelMatrix& channels)
      : map_{map}, self_{self}, channels_{&channels} {}

  bool is_remote(NodeId to) const override {
    return map_.shard_of(to) != self_;
  }

  void forward(NodeId from, NodeId to, TimePoint deliver_at,
               std::uint64_t key, std::unique_ptr<Message> message) override {
    channels_->at(self_, map_.shard_of(to))
        .push(CrossShardEnvelope{from, to, deliver_at, key,
                                 std::move(message)});
  }

 private:
  ShardMap map_;
  std::size_t self_;
  ChannelMatrix* channels_;
};

}  // namespace aria::sim::pdes
