// Conservative barrier-window PDES executor (docs/pdes.md).
//
// One simulation is split over S shard simulators (per-node protocol
// events) plus one engine simulator (workload submissions, churn,
// maintenance, sampling — everything the engine schedules globally). The
// executor alternates two phases:
//
//   * engine phase (serial): when the engine holds the globally earliest
//     event, every shard clock is advanced to that instant and the engine
//     events at it run on the coordinating thread — they may call into any
//     node, on any shard, exactly like the sequential kernel.
//   * shard window (parallel): otherwise, with T = min over shards of the
//     next event time and lookahead L = the latency model's minimum
//     cross-link delay, every shard independently runs its events in
//     [T, E) where E = min(T + L, next engine event, horizon + 1us). Any
//     message sent at t in the window arrives no earlier than t + L >= E,
//     so nothing a peer shard does inside the window can affect this
//     window — the classic conservative-lookahead argument.
//
// Cross-shard messages ride the ChannelMatrix and are drained at every
// barrier, in canonical order, onto the owning shard's simulator. The
// protocol is window-based rather than null-message-based because the
// engine plane already forces a global rendezvous (submissions and churn
// touch arbitrary shards), so the barrier is paid anyway and null-message
// plumbing would buy nothing.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/time.hpp"
#include "sim/network.hpp"
#include "sim/pdes/channel.hpp"
#include "sim/simulator.hpp"

namespace aria::sim::pdes {

/// Shared flag + serial counter stamping engine-phase observer callbacks.
/// The coordinator raises `active` for the serial phases (and leaves it
/// raised outside run(), covering build-time callbacks) and clears it
/// before releasing workers into a window; per-shard recorders read it to
/// give engine-phase events a single global order. All accesses are
/// separated by the executor's barrier, so no atomics are needed.
struct EngineStamp {
  bool active{true};
  std::uint64_t next{0};
};

class ShardExecutor {
 public:
  struct Config {
    /// Conservative lookahead: must be a lower bound on every cross-shard
    /// message latency (LatencyModel::min_latency()), and must be > 0 —
    /// zero lookahead would make every window empty.
    Duration lookahead{};
    /// Run end; events scheduled exactly at the horizon fire, matching
    /// Simulator::run_until semantics.
    TimePoint horizon{};
    /// Optional engine-phase stamp (see EngineStamp).
    EngineStamp* stamp{nullptr};
  };

  /// Window-occupancy telemetry: on a host with few cores (or a scenario
  /// with tiny lookahead) these numbers, not the shard count, explain the
  /// wall-clock (docs/pdes.md "What bounds the speedup").
  struct Stats {
    std::uint64_t windows{0};        // parallel shard windows executed
    std::uint64_t engine_phases{0};  // serial engine rendezvous
    std::uint64_t engine_events{0};  // events fired in engine phases
    std::uint64_t shard_events{0};   // events fired inside windows (all shards)
    std::uint64_t messages_forwarded{0};  // cross-shard channel hops
  };

  /// `shards[i]` and `nets[i]` are shard i's simulator and network (the
  /// drain side of the channels); `engine` is the engine-plane simulator.
  /// All pointers are non-owning and must outlive the executor.
  ShardExecutor(std::vector<Simulator*> shards, Simulator& engine,
                ChannelMatrix& channels, std::vector<Network*> nets,
                Config config);

  /// Runs the simulation to the horizon on shards.size() threads (the
  /// calling thread drives shard 0). On return every shard clock and the
  /// engine clock sit at the horizon and all channels are empty.
  Stats run();

 private:
  void coordinate() noexcept;
  void drain() noexcept;
  template <typename Barrier>
  void worker(std::size_t index, Barrier& sync);

  std::vector<Simulator*> shards_;
  Simulator& engine_;
  ChannelMatrix& channels_;
  std::vector<Network*> nets_;
  Config config_;
  Stats stats_;
  // Written only by the coordinator (barrier completion / pre-spawn), read
  // by workers after the barrier releases them — the barrier supplies the
  // happens-before edge.
  TimePoint window_end_{};
  bool done_{false};
  std::vector<std::uint64_t> fired_;  // per-worker event counts, no sharing
};

}  // namespace aria::sim::pdes
