// Node-to-shard assignment for the sharded PDES executor (docs/pdes.md).
//
// The partition is stateless — a pure function of (node id, region count,
// shard count) — so every component (engine, channels, routes, tests)
// agrees on ownership without sharing state, and a node's shard never
// changes mid-run.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/ids.hpp"

namespace aria::sim::pdes {

struct ShardMap {
  std::size_t shards{1};
  /// Resolved hierarchy region count R; 0 or 1 when the hierarchy plane is
  /// off. With regions, shards own whole regions ((id mod R) mod S, i.e.
  /// regions round-robin across shards) so region-scoped floods and
  /// digest traffic stay shard-local and only cross-region messages pay
  /// the channel hop. Without regions there is no locality structure to
  /// exploit and nodes round-robin directly (id mod S).
  std::size_t region_count{0};

  std::size_t shard_of(NodeId n) const {
    const auto v = static_cast<std::size_t>(n.value());
    return region_count > 1 ? (v % region_count) % shards : v % shards;
  }
};

}  // namespace aria::sim::pdes
