#include "sim/pdes/journal.hpp"

#include <algorithm>
#include <sstream>

namespace aria::sim::pdes {

std::string JournalEntry::to_string() const {
  std::ostringstream out;
  out << "t=+" << sent.count_micros() << "us n" << from.value() << " -> n"
      << to.value() << " " << MessageTypeRegistry::name(type);
  if (faulted) {
    out << " FAULTED";
  } else {
    out << " deliver=+" << deliver.count_micros() << "us";
  }
  out << " seq=" << sender_seq;
  return out.str();
}

void EventJournal::on_message(NodeId from, NodeId to, const Message& message,
                              TimePoint sent, TimePoint deliver,
                              bool faulted) {
  entries_.push_back(JournalEntry{sent, from, to, message.type_id(), deliver,
                                  faulted, sender_seq_[from]++});
}

std::vector<JournalEntry> merge_journals(
    const std::vector<const EventJournal*>& journals) {
  std::vector<JournalEntry> merged;
  std::size_t total = 0;
  for (const EventJournal* j : journals) total += j->entries().size();
  merged.reserve(total);
  for (const EventJournal* j : journals) {
    merged.insert(merged.end(), j->entries().begin(), j->entries().end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const JournalEntry& a, const JournalEntry& b) {
              if (a.sent != b.sent) return a.sent < b.sent;
              if (a.from != b.from) return a.from.value() < b.from.value();
              return a.sender_seq < b.sender_seq;
            });
  return merged;
}

std::optional<Divergence> first_divergence(
    const std::vector<JournalEntry>& expected,
    const std::vector<JournalEntry>& actual) {
  const std::size_t common = std::min(expected.size(), actual.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (expected[i] == actual[i]) continue;
    std::ostringstream out;
    out << "first divergent event at canonical index " << i
        << ":\n  sequential: " << expected[i].to_string()
        << "\n  sharded:    " << actual[i].to_string();
    return Divergence{i, out.str()};
  }
  if (expected.size() != actual.size()) {
    std::ostringstream out;
    const bool longer = actual.size() > expected.size();
    const JournalEntry& extra = longer ? actual[common] : expected[common];
    out << "journals agree on the first " << common << " events, then the "
        << (longer ? "sharded" : "sequential") << " run has "
        << (longer ? actual.size() - common : expected.size() - common)
        << " extra event(s); first extra: " << extra.to_string();
    return Divergence{common, out.str()};
  }
  return std::nullopt;
}

}  // namespace aria::sim::pdes
