// Canonical send journal + first-divergence reporter (docs/pdes.md
// "Divergence triage").
//
// When a sharded run fails to reproduce its sequential golden, aggregate
// counters say *that* something differed, not *what*. The journal records
// every wire send — timestamp, endpoints, type, delivery instant, fault
// verdict — through the existing MessageTap seam, stamps each record with a
// per-sender sequence number, and sorts canonically by (send time, sender,
// per-sender seq). Per-sender order is shard-invariant (a sender's sends
// are a function of its own local event order), so the sequential and
// sharded journals of equivalent runs are byte-identical and the first
// mismatching record names the first divergent event.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "sim/network.hpp"

namespace aria::sim::pdes {

struct JournalEntry {
  TimePoint sent{};
  NodeId from{};
  NodeId to{};
  MessageTypeId type{};
  TimePoint deliver{};  // == sent for messages the fault plane dropped
  bool faulted{false};
  std::uint64_t sender_seq{0};

  bool operator==(const JournalEntry&) const = default;

  /// "t=+1234567us n42 -> n17 REQUEST deliver=+1234912us seq=3"
  std::string to_string() const;
};

/// One journal per Network (one per shard in a sharded run): on_message is
/// called from that shard's worker only, so no synchronization is needed.
/// Attach with Network::set_tap(journal, 1) — sampling must be 1, the
/// contract is *every* send.
class EventJournal final : public MessageTap {
 public:
  void on_message(NodeId from, NodeId to, const Message& message,
                  TimePoint sent, TimePoint deliver, bool faulted) override;

  const std::vector<JournalEntry>& entries() const { return entries_; }

 private:
  std::vector<JournalEntry> entries_;
  std::unordered_map<NodeId, std::uint64_t> sender_seq_;
};

/// Concatenates per-shard journals and sorts canonically by
/// (sent, sender id, per-sender seq).
std::vector<JournalEntry> merge_journals(
    const std::vector<const EventJournal*>& journals);

struct Divergence {
  std::size_t index{0};     // position in the canonical order
  std::string description;  // names the first divergent event, both sides
};

/// First position at which the canonical journals differ; nullopt when they
/// are identical. `expected` is the sequential oracle, `actual` the sharded
/// run.
std::optional<Divergence> first_divergence(
    const std::vector<JournalEntry>& expected,
    const std::vector<JournalEntry>& actual);

}  // namespace aria::sim::pdes
