// Per-message-type traffic accounting (paper §V-E / Fig. 10).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace aria::sim {

class TrafficLedger {
 public:
  struct Entry {
    std::uint64_t messages{0};
    std::uint64_t bytes{0};
  };

  void record(const std::string& type, std::uint64_t bytes) {
    auto& e = by_type_[type];
    ++e.messages;
    e.bytes += bytes;
  }

  void record_drop(const std::string& type) { ++drops_[type]; }

  Entry total() const {
    Entry t;
    for (const auto& [_, e] : by_type_) {
      t.messages += e.messages;
      t.bytes += e.bytes;
    }
    return t;
  }

  Entry of(const std::string& type) const {
    auto it = by_type_.find(type);
    return it == by_type_.end() ? Entry{} : it->second;
  }

  std::uint64_t drops(const std::string& type) const {
    auto it = drops_.find(type);
    return it == drops_.end() ? 0 : it->second;
  }

  const std::map<std::string, Entry>& by_type() const { return by_type_; }

  void merge(const TrafficLedger& other) {
    for (const auto& [k, e] : other.by_type_) {
      auto& mine = by_type_[k];
      mine.messages += e.messages;
      mine.bytes += e.bytes;
    }
    for (const auto& [k, n] : other.drops_) drops_[k] += n;
  }

  void clear() {
    by_type_.clear();
    drops_.clear();
  }

 private:
  std::map<std::string, Entry> by_type_;
  std::map<std::string, std::uint64_t> drops_;
};

}  // namespace aria::sim
