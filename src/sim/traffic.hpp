// Per-message-type traffic accounting (paper §V-E / Fig. 10).
//
// Counters are a flat array indexed by interned MessageTypeId — recording a
// send is two increments, no string, no tree walk. String-keyed queries and
// the name-sorted by_type() snapshot survive for reports, figures and
// tests; they resolve names through the MessageTypeRegistry on the cold
// path only.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/message_types.hpp"

namespace aria::sim {

class TrafficLedger {
 public:
  struct Entry {
    std::uint64_t messages{0};
    std::uint64_t bytes{0};
  };

  void record(MessageTypeId type, std::uint64_t bytes) {
    Counter& c = at(type);
    ++c.messages;
    c.bytes += bytes;
  }

  /// Convenience for tests/tools; interns `type` on first use.
  void record(std::string_view type, std::uint64_t bytes) {
    record(MessageTypeRegistry::intern(type), bytes);
  }

  /// Delivery failed organically: destination unknown or down.
  void record_drop(MessageTypeId type) { ++at(type).drops; }
  void record_drop(std::string_view type) {
    record_drop(MessageTypeRegistry::intern(type));
  }

  /// Delivery failed because the fault plane injected it (loss/partition).
  /// Kept separate from drops so "the destination crashed" and "the wire
  /// ate it" stay distinguishable in reports and tests.
  void record_fault(MessageTypeId type) { ++at(type).faulted; }
  void record_fault(std::string_view type) {
    record_fault(MessageTypeRegistry::intern(type));
  }

  Entry total() const {
    Entry t;
    for (const Counter& c : by_id_) {
      t.messages += c.messages;
      t.bytes += c.bytes;
    }
    return t;
  }

  Entry of(MessageTypeId type) const {
    if (!type.valid() || type.index() >= by_id_.size()) return Entry{};
    const Counter& c = by_id_[type.index()];
    return Entry{c.messages, c.bytes};
  }

  Entry of(std::string_view type) const {
    const auto id = MessageTypeRegistry::find(type);
    return id ? of(*id) : Entry{};
  }

  std::uint64_t drops(MessageTypeId type) const {
    if (!type.valid() || type.index() >= by_id_.size()) return 0;
    return by_id_[type.index()].drops;
  }

  std::uint64_t drops(std::string_view type) const {
    const auto id = MessageTypeRegistry::find(type);
    return id ? drops(*id) : 0;
  }

  std::uint64_t faulted(MessageTypeId type) const {
    if (!type.valid() || type.index() >= by_id_.size()) return 0;
    return by_id_[type.index()].faulted;
  }

  std::uint64_t faulted(std::string_view type) const {
    const auto id = MessageTypeRegistry::find(type);
    return id ? faulted(*id) : 0;
  }

  std::uint64_t total_drops() const {
    std::uint64_t n = 0;
    for (const Counter& c : by_id_) n += c.drops;
    return n;
  }

  std::uint64_t total_faulted() const {
    std::uint64_t n = 0;
    for (const Counter& c : by_id_) n += c.faulted;
    return n;
  }

  /// Name-sorted snapshot of every type with recorded sends (drops alone
  /// do not list a type, matching the historical ledger shape).
  std::map<std::string, Entry> by_type() const {
    std::map<std::string, Entry> out;
    for (std::size_t i = 0; i < by_id_.size(); ++i) {
      const Counter& c = by_id_[i];
      if (c.messages == 0 && c.bytes == 0) continue;
      out.emplace(MessageTypeRegistry::name(MessageTypeId::from_index(i)),
                  Entry{c.messages, c.bytes});
    }
    return out;
  }

  void merge(const TrafficLedger& other) {
    if (other.by_id_.size() > by_id_.size()) {
      by_id_.resize(other.by_id_.size());
    }
    for (std::size_t i = 0; i < other.by_id_.size(); ++i) {
      by_id_[i].messages += other.by_id_[i].messages;
      by_id_[i].bytes += other.by_id_[i].bytes;
      by_id_[i].drops += other.by_id_[i].drops;
      by_id_[i].faulted += other.by_id_[i].faulted;
    }
  }

  void clear() { by_id_.clear(); }

 private:
  struct Counter {
    std::uint64_t messages{0};
    std::uint64_t bytes{0};
    std::uint64_t drops{0};    // organic: destination unknown or down
    std::uint64_t faulted{0};  // injected: fault-plane loss or partition
  };

  Counter& at(MessageTypeId type) {
    const std::size_t i = type.index();
    if (i >= by_id_.size()) by_id_.resize(i + 1);
    return by_id_[i];
  }

  std::vector<Counter> by_id_;
};

}  // namespace aria::sim
