#include "sim/fault.hpp"

#include <algorithm>

namespace aria::sim {

namespace {

// splitmix64 finalizer — stateless, so partition sides need no per-node
// registration and nodes joining mid-run (expansion) hash consistently.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

FaultPlane::FaultPlane(FaultConfig config) : config_{std::move(config)} {
  // Resolve the message-class bias table to interned ids once. Interning
  // here is idempotent with the function-local statics the message structs
  // use — a name biased before its first wire appearance still lands on the
  // id that type will carry.
  for (const auto& b : config_.message_bias) {
    const MessageTypeId id = MessageTypeRegistry::intern(b.type);
    if (id.index() >= bias_.size()) {
      bias_.resize(id.index() + 1, {1.0, 1.0});
    }
    bias_[id.index()] = {b.loss_mult, b.dup_mult};
  }
}

bool FaultPlane::minority_side(std::size_t index, NodeId node) const {
  const std::uint64_t h = mix64(
      mix64(config_.seed ^ (static_cast<std::uint64_t>(index) + 1)) ^
      node.value());
  // Top 53 bits -> uniform double in [0, 1).
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < config_.partitions[index].fraction;
}

bool FaultPlane::partitioned(NodeId from, NodeId to, TimePoint now) const {
  for (std::size_t i = 0; i < config_.partitions.size(); ++i) {
    const auto& p = config_.partitions[i];
    const TimePoint start = TimePoint::origin() + p.start;
    if (now < start || now >= start + p.duration) continue;
    if (minority_side(i, from) != minority_side(i, to)) return true;
  }
  if (config_.region_count > 0) {
    for (const auto& rp : config_.region_partitions) {
      const TimePoint start = TimePoint::origin() + rp.start;
      if (now < start || now >= start + rp.duration) continue;
      // The same stateless `n mod R` partition the hierarchy plane uses
      // (overlay::region_of; recomputed here so sim stays below overlay in
      // the layering): a message is severed exactly when one endpoint is
      // inside the partitioned region and the other is not.
      const bool from_in = from.value() % config_.region_count == rp.region;
      const bool to_in = to.value() % config_.region_count == rp.region;
      if (from_in != to_in) return true;
    }
  }
  return false;
}

bool FaultPlane::churn_target(NodeId node) const {
  if (!config_.targeted_churn || config_.targeted_churn->ranks == 0) {
    return false;
  }
  const std::uint32_t r_count = config_.region_count;
  if (r_count == 0) return false;  // no hierarchy, no roles to target
  const auto& tc = *config_.targeted_churn;
  // Candidate k of region r is node r + k*R, so "rank < ranks" is exactly
  // "id < R * ranks" (mirrors overlay::is_aggregator_candidate).
  if (node.value() >= static_cast<std::uint64_t>(r_count) * tc.ranks) {
    return false;
  }
  if (tc.regions.empty()) return true;
  const auto region = static_cast<std::uint32_t>(node.value() % r_count);
  return std::find(tc.regions.begin(), tc.regions.end(), region) !=
         tc.regions.end();
}

std::optional<FaultConfig::Adversary::Role> FaultPlane::adversary_role(
    NodeId node) const {
  if (!config_.adversary) return std::nullopt;
  const auto& adv = *config_.adversary;
  if (adv.fraction <= 0.0 || adv.roles.empty()) return std::nullopt;
  // Same stateless designation scheme as minority_side: one hash decides
  // membership, a second (domain-separated) hash picks the role, so the
  // fraction draw and the role draw are independent.
  const std::uint64_t h = mix64(mix64(adv.seed ^ 0xAD5E11ULL) ^ node.value());
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  if (u >= adv.fraction) return std::nullopt;
  const std::uint64_t r = mix64(mix64(adv.seed ^ 0xAD701EULL) ^ node.value());
  return adv.roles[r % adv.roles.size()];
}

std::pair<double, double> FaultPlane::biased_rates(MessageTypeId type) const {
  double loss = config_.loss;
  double dup = config_.duplicate;
  if (type.index() < bias_.size()) {
    const auto& [loss_mult, dup_mult] = bias_[type.index()];
    loss = std::min(1.0, loss * loss_mult);
    dup = std::min(1.0, dup * dup_mult);
  }
  return {loss, dup};
}

Rng& FaultPlane::verdict_rng(NodeId from) {
  auto it = verdict_rng_.find(from);
  if (it == verdict_rng_.end()) {
    it = verdict_rng_
             .emplace(from, Rng{config_.seed}.fork(0xFA17u).fork(from.value()))
             .first;
  }
  return it->second;
}

FaultPlane::Verdict FaultPlane::on_send(NodeId from, NodeId to,
                                        MessageTypeId type, TimePoint now) {
  Verdict v;
  if ((!config_.partitions.empty() || !config_.region_partitions.empty()) &&
      partitioned(from, to, now)) {
    v.drop = true;
    v.partitioned = true;
    ++counters_.partition_drops;
    return v;
  }
  const auto [loss, duplicate] = biased_rates(type);
  Rng& rng = verdict_rng(from);
  if (loss > 0.0 && rng.bernoulli(loss)) {
    v.drop = true;
    ++counters_.lost;
    return v;
  }
  if (duplicate > 0.0 && rng.bernoulli(duplicate)) {
    v.duplicate = true;
    v.duplicate_lag =
        rng.uniform_duration(Duration::millis(1), config_.duplicate_lag_max);
    ++counters_.duplicated;
  }
  if (config_.spike > 0.0 && rng.bernoulli(config_.spike)) {
    v.extra_delay = rng.uniform_duration(config_.spike_min, config_.spike_max);
    ++counters_.delayed;
  }
  return v;
}

}  // namespace aria::sim
