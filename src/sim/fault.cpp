#include "sim/fault.hpp"

namespace aria::sim {

namespace {

// splitmix64 finalizer — stateless, so partition sides need no per-node
// registration and nodes joining mid-run (expansion) hash consistently.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

bool FaultPlane::minority_side(std::size_t index, NodeId node) const {
  const std::uint64_t h = mix64(
      mix64(config_.seed ^ (static_cast<std::uint64_t>(index) + 1)) ^
      node.value());
  // Top 53 bits -> uniform double in [0, 1).
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < config_.partitions[index].fraction;
}

bool FaultPlane::partitioned(NodeId from, NodeId to, TimePoint now) const {
  for (std::size_t i = 0; i < config_.partitions.size(); ++i) {
    const auto& p = config_.partitions[i];
    const TimePoint start = TimePoint::origin() + p.start;
    if (now < start || now >= start + p.duration) continue;
    if (minority_side(i, from) != minority_side(i, to)) return true;
  }
  return false;
}

FaultPlane::Verdict FaultPlane::on_send(NodeId from, NodeId to,
                                        TimePoint now) {
  Verdict v;
  if (!config_.partitions.empty() && partitioned(from, to, now)) {
    v.drop = true;
    v.partitioned = true;
    ++counters_.partition_drops;
    return v;
  }
  if (config_.loss > 0.0 && rng_.bernoulli(config_.loss)) {
    v.drop = true;
    ++counters_.lost;
    return v;
  }
  if (config_.duplicate > 0.0 && rng_.bernoulli(config_.duplicate)) {
    v.duplicate = true;
    v.duplicate_lag =
        rng_.uniform_duration(Duration::millis(1), config_.duplicate_lag_max);
    ++counters_.duplicated;
  }
  if (config_.spike > 0.0 && rng_.bernoulli(config_.spike)) {
    v.extra_delay =
        rng_.uniform_duration(config_.spike_min, config_.spike_max);
    ++counters_.delayed;
  }
  return v;
}

}  // namespace aria::sim
