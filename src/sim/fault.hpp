// Deterministic fault injection for the simulated network and grid.
//
// The FaultPlane decides, per message and per node, which adversities a run
// suffers: probabilistic loss and duplication, latency spikes, scheduled
// network partitions with heal times, and node crash/restart schedules
// (churn). Every decision is drawn from a dedicated RNG stream seeded
// independently of the main simulation seed, so
//
//   * a run with faults disabled is byte-identical to a build without the
//     fault plane (Network::send never consults it), and
//   * a (scenario seed, fault seed) pair reproduces the exact same fault
//     schedule — fault scenarios are as replayable as fault-free ones.
//
// The plane only *decides*; enforcement lives where the state is:
// Network::send consults on_send() for message faults, GridSimulation
// drives crash/restart schedules through AriaNode::crash()/restart().
// See docs/faults.md for the full model.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"

namespace aria::sim {

/// Everything injectable in one run. Defaults are all-off; `enabled` is the
/// master switch the hot path tests first.
struct FaultConfig {
  bool enabled{false};
  /// Seed of the fault decision stream. Engines mix in the per-run seed
  /// (see GridSimulation) so repeated runs see different fault schedules
  /// while staying individually reproducible.
  std::uint64_t seed{0};

  // --- per-message faults ----------------------------------------------
  /// Probability that a sent message never arrives.
  double loss{0.0};
  /// Probability that a message is delivered twice (the copy arrives up to
  /// `duplicate_lag_max` after the original).
  double duplicate{0.0};
  Duration duplicate_lag_max{Duration::millis(500)};
  /// Probability of a link-level latency spike, adding a uniform extra
  /// delay in [spike_min, spike_max] on top of the latency model.
  double spike{0.0};
  Duration spike_min{Duration::millis(200)};
  Duration spike_max{Duration::seconds(2)};

  // --- churn (node crash/restart schedules) -----------------------------
  struct Churn {
    /// Mean time a churning node stays up between crashes; actual spans
    /// are jittered uniformly in [mean/2, 3*mean/2].
    Duration mean_uptime{Duration::hours(2)};
    /// Mean outage length, jittered the same way.
    Duration mean_downtime{Duration::minutes(10)};
    /// Fraction of the initial grid subject to churn (drawn per node).
    double node_fraction{0.2};
    /// Churn starts after this offset (lets the overlay converge first).
    Duration start{Duration::minutes(30)};
  };
  std::optional<Churn> churn{};

  // --- partitions --------------------------------------------------------
  /// A pairwise/group partition: for [start, start + duration) the grid is
  /// split in two sides (a stateless per-node hash puts ~`fraction` of the
  /// nodes on the minority side); messages crossing sides are dropped.
  /// Windows may overlap; a message is blocked if any active window
  /// separates the endpoints.
  struct Partition {
    Duration start{};
    Duration duration{};
    double fraction{0.5};
  };
  std::vector<Partition> partitions{};

  bool any_message_faults() const {
    return enabled &&
           (loss > 0.0 || duplicate > 0.0 || spike > 0.0 ||
            !partitions.empty());
  }
};

class FaultPlane {
 public:
  /// Outcome of one send. `drop` covers both random loss and partition
  /// blocking (`partitioned` tells them apart for the counters).
  struct Verdict {
    bool drop{false};
    bool partitioned{false};
    bool duplicate{false};
    Duration duplicate_lag{};
    Duration extra_delay{};
  };

  /// Injected-event totals, for reconciling metrics against the schedule.
  struct Counters {
    std::uint64_t lost{0};
    std::uint64_t duplicated{0};
    std::uint64_t delayed{0};
    std::uint64_t partition_drops{0};
    std::uint64_t crashes{0};
    std::uint64_t restarts{0};

    std::uint64_t injected_drops() const { return lost + partition_drops; }
  };

  explicit FaultPlane(FaultConfig config)
      : config_{std::move(config)}, rng_{config_.seed} {}

  const FaultConfig& config() const { return config_; }

  /// Cheap master-switch test; Network::send short-circuits on this.
  bool active() const { return config_.enabled; }

  /// Draws the fault verdict for one message. Deterministic in call order
  /// for a fixed fault seed. Zero-probability faults consume no RNG draws,
  /// so an enabled plane with all rates at zero behaves identically to a
  /// disabled one.
  Verdict on_send(NodeId from, NodeId to, TimePoint now);

  /// True when an active partition window separates `from` and `to`.
  bool partitioned(NodeId from, NodeId to, TimePoint now) const;

  /// Which side of partition `index` a node falls on (stateless hash of
  /// (fault seed, partition index, node); true = minority side).
  bool minority_side(std::size_t index, NodeId node) const;

  /// Independent stream for churn schedules, so message faults and churn
  /// timing never perturb each other.
  Rng churn_rng() const { return Rng{config_.seed}.fork(0xC0FFu); }

  // --- lifecycle accounting (incremented by the churn driver) ------------
  void count_crash() { ++counters_.crashes; }
  void count_restart() { ++counters_.restarts; }

  const Counters& counters() const { return counters_; }

 private:
  FaultConfig config_;
  Rng rng_;
  Counters counters_;
};

}  // namespace aria::sim
