// Deterministic fault injection for the simulated network and grid.
//
// The FaultPlane decides, per message and per node, which adversities a run
// suffers: probabilistic loss and duplication, latency spikes, scheduled
// network partitions with heal times, and node crash/restart schedules
// (churn). Every decision is drawn from a dedicated RNG stream seeded
// independently of the main simulation seed, so
//
//   * a run with faults disabled is byte-identical to a build without the
//     fault plane (Network::send never consults it), and
//   * a (scenario seed, fault seed) pair reproduces the exact same fault
//     schedule — fault scenarios are as replayable as fault-free ones.
//
// The plane only *decides*; enforcement lives where the state is:
// Network::send consults on_send() for message faults, GridSimulation
// drives crash/restart schedules through AriaNode::crash()/restart().
// See docs/faults.md for the full model.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "sim/message_types.hpp"

namespace aria::sim {

/// Everything injectable in one run. Defaults are all-off; `enabled` is the
/// master switch the hot path tests first.
struct FaultConfig {
  bool enabled{false};
  /// Seed of the fault decision stream. Engines mix in the per-run seed
  /// (see GridSimulation) so repeated runs see different fault schedules
  /// while staying individually reproducible.
  std::uint64_t seed{0};

  // --- per-message faults ----------------------------------------------
  /// Probability that a sent message never arrives.
  double loss{0.0};
  /// Probability that a message is delivered twice (the copy arrives up to
  /// `duplicate_lag_max` after the original).
  double duplicate{0.0};
  Duration duplicate_lag_max{Duration::millis(500)};
  /// Probability of a link-level latency spike, adding a uniform extra
  /// delay in [spike_min, spike_max] on top of the latency model.
  double spike{0.0};
  Duration spike_min{Duration::millis(200)};
  Duration spike_max{Duration::seconds(2)};

  // --- churn (node crash/restart schedules) -----------------------------
  struct Churn {
    /// Mean time a churning node stays up between crashes; actual spans
    /// are jittered uniformly in [mean/2, 3*mean/2].
    Duration mean_uptime{Duration::hours(2)};
    /// Mean outage length, jittered the same way.
    Duration mean_downtime{Duration::minutes(10)};
    /// Fraction of the initial grid subject to churn (drawn per node).
    double node_fraction{0.2};
    /// Churn starts after this offset (lets the overlay converge first).
    Duration start{Duration::minutes(30)};
  };
  std::optional<Churn> churn{};

  // --- targeted churn (role-aimed crash schedules) ------------------------
  /// Crash/restart schedules aimed at the hierarchy's interior: aggregator
  /// candidates of rank < `ranks` (designation is stateless — candidate k of
  /// region r is node r + k*R — so targeting needs no overlay state). The
  /// adversarial counterpart of `churn`, which picks victims uniformly.
  /// Timing draws come from a stream disjoint from the untargeted one
  /// (`targeted_rng()`), so adding a targeted plan never shifts existing
  /// churn schedules.
  struct TargetedChurn {
    /// Candidate ranks to attack (0 = plan inert; 1 = primaries only;
    /// agg_standby = the whole candidate list of every targeted region).
    std::uint32_t ranks{0};
    /// Restrict to these region ids; empty = every region.
    std::vector<std::uint32_t> regions{};
    Duration mean_uptime{Duration::minutes(30)};
    Duration mean_downtime{Duration::minutes(10)};
    Duration start{Duration::minutes(30)};
  };
  std::optional<TargetedChurn> targeted_churn{};

  // --- partitions --------------------------------------------------------
  /// A pairwise/group partition: for [start, start + duration) the grid is
  /// split in two sides (a stateless per-node hash puts ~`fraction` of the
  /// nodes on the minority side); messages crossing sides are dropped.
  /// Windows may overlap; a message is blocked if any active window
  /// separates the endpoints.
  struct Partition {
    Duration start{};
    Duration duration{};
    double fraction{0.5};
  };
  std::vector<Partition> partitions{};

  /// A region-aligned partition: for [start, start + duration) region
  /// `region` — its members *and* its aggregator candidates, which share
  /// the `n mod R` partition — is severed from the rest of the grid; the
  /// window's end is the heal time. Checked statelessly against
  /// `region_count` (the resolved R, written by the engine at build time),
  /// so mid-run joiners land on a deterministic side. Inert when
  /// `region_count` is 0 (hierarchy off).
  struct RegionPartition {
    std::uint32_t region{0};
    Duration start{};
    Duration duration{};
  };
  std::vector<RegionPartition> region_partitions{};
  /// Resolved region count backing region_partitions and targeted_churn.
  /// Filled in by GridSimulation::build() after region auto-sizing; 0 when
  /// the hierarchy plane is off (region-targeted faults are then inert).
  std::uint32_t region_count{0};

  // --- adversarial nodes (docs/adversary.md) ------------------------------
  /// Byzantine misbehavior: a deterministic fraction of the grid *lies*
  /// instead of crashing. Role designation is a stateless hash of
  /// (adversary seed, node id) — like `minority_side` — so it needs no RNG
  /// draws, survives expansion joiners, and the engine, the nodes, and the
  /// auditor all agree on who misbehaves without sharing state. The plane
  /// only designates; the lies themselves live in AriaNode (the protocol
  /// knows what to lie about), keyed off `FaultPlane::adversary_role`.
  struct Adversary {
    /// Fraction of nodes acting adversarially (drawn statelessly per node).
    double fraction{0.0};
    /// Magnitude of every lie: underbidders quote cost / lie_factor,
    /// free-riders advertise held jobs at cost / lie_factor, digest
    /// poisoners inflate member counts by it.
    double lie_factor{4.0};
    enum class Role {
      kUnderbid,   // ACCEPT quotes scaled down by lie_factor
      kBlackhole,  // ACKs ASSIGNs, then silently drops the job
      kFreeride,   // INFORM-advertises held jobs at deflated cost (traps them)
      kPoison,     // aggregator: REGION_DIGESTs claim an idle, inflated region
    };
    /// Roles in play; a designated adversary picks one by a second stateless
    /// hash. Empty = plan inert (no adversaries regardless of fraction).
    std::vector<Role> roles{};
    /// Seed of the designation hash. 0 = the engine derives one from the
    /// (already run-mixed) fault seed, so repeated runs draw different
    /// adversary sets while staying individually reproducible.
    std::uint64_t seed{0};
  };
  std::optional<Adversary> adversary{};

  // --- message-class fault bias ------------------------------------------
  /// Loss/duplication multipliers keyed on a message type name, resolved to
  /// interned MessageTypeIds when the plane is built. A bias lets one
  /// message class be starved independently of the rest — e.g. multiplying
  /// REGION_DIGEST loss 25x while job traffic keeps the base rate. A
  /// multiplier of 1 leaves the draw sequence bit-identical to an unbiased
  /// run; a multiplier of 0 makes that class's fault draw-free (the same
  /// zero-probability contract as the base rates).
  struct MessageBias {
    std::string type;  // message type name (e.g. "REGION_DIGEST")
    double loss_mult{1.0};
    double dup_mult{1.0};
  };
  std::vector<MessageBias> message_bias{};

  bool any_message_faults() const {
    return enabled &&
           (loss > 0.0 || duplicate > 0.0 || spike > 0.0 ||
            !partitions.empty() || !region_partitions.empty());
  }
};

class FaultPlane {
 public:
  /// Outcome of one send. `drop` covers both random loss and partition
  /// blocking (`partitioned` tells them apart for the counters).
  struct Verdict {
    bool drop{false};
    bool partitioned{false};
    bool duplicate{false};
    Duration duplicate_lag{};
    Duration extra_delay{};
  };

  /// Injected-event totals, for reconciling metrics against the schedule.
  struct Counters {
    std::uint64_t lost{0};
    std::uint64_t duplicated{0};
    std::uint64_t delayed{0};
    std::uint64_t partition_drops{0};
    std::uint64_t crashes{0};
    std::uint64_t restarts{0};
    /// Subset of `crashes` caused by the targeted (role-aimed) schedule.
    std::uint64_t targeted_crashes{0};

    std::uint64_t injected_drops() const { return lost + partition_drops; }

    /// Field-wise sum — used after a sharded run to fold the per-shard
    /// planes' message-fault tallies into the engine plane's counters
    /// (which alone hold the churn-driven crash/restart counts).
    void absorb(const Counters& other) {
      lost += other.lost;
      duplicated += other.duplicated;
      delayed += other.delayed;
      partition_drops += other.partition_drops;
      crashes += other.crashes;
      restarts += other.restarts;
      targeted_crashes += other.targeted_crashes;
    }
  };

  explicit FaultPlane(FaultConfig config);

  const FaultConfig& config() const { return config_; }

  /// Cheap master-switch test; Network::send short-circuits on this.
  bool active() const { return config_.enabled; }

  /// Draws the fault verdict for one message of interned type `type`.
  /// Deterministic in call order for a fixed fault seed. Zero-probability
  /// faults consume no RNG draws, so an enabled plane with all rates at
  /// zero behaves identically to a disabled one — and a message-class bias
  /// multiplier of 1 (or no bias at all) leaves the draw sequence
  /// bit-identical to an unbiased plane.
  Verdict on_send(NodeId from, NodeId to, MessageTypeId type, TimePoint now);

  /// True when an active partition window (hash-sliced or region-aligned)
  /// separates `from` and `to`.
  bool partitioned(NodeId from, NodeId to, TimePoint now) const;

  /// Which side of partition `index` a node falls on (stateless hash of
  /// (fault seed, partition index, node); true = minority side).
  bool minority_side(std::size_t index, NodeId node) const;

  /// Is `node` a victim of the targeted churn plan? Pure function of the
  /// config (candidate designation is stateless), so the engine's schedule
  /// builder and tests agree without sharing state.
  bool churn_target(NodeId node) const;

  /// `node`'s adversary role, if it is one. Pure function of the config
  /// (stateless hash, no RNG draws), so nodes cache it at construction, the
  /// engine counts adversaries, and the auditor's expected-adversary
  /// predicate all agree. nullopt when the plan is absent/inert or the node
  /// is honest.
  std::optional<FaultConfig::Adversary::Role> adversary_role(
      NodeId node) const;

  /// Effective (loss, duplicate) probabilities for a message type after the
  /// class bias; equals the base rates for unbiased types.
  std::pair<double, double> biased_rates(MessageTypeId type) const;

  /// Independent stream for churn schedules, so message faults and churn
  /// timing never perturb each other.
  Rng churn_rng() const { return Rng{config_.seed}.fork(0xC0FFu); }

  /// Independent stream for the *targeted* churn plan: adding a targeted
  /// schedule must never shift the untargeted one (and vice versa).
  Rng targeted_rng() const { return Rng{config_.seed}.fork(0xA66Cu); }

  // --- lifecycle accounting (incremented by the churn driver) ------------
  void count_crash() { ++counters_.crashes; }
  void count_targeted_crash() {
    ++counters_.crashes;
    ++counters_.targeted_crashes;
  }
  void count_restart() { ++counters_.restarts; }

  const Counters& counters() const { return counters_; }

  /// Folds a peer plane's counters into this one (sharded-run merge).
  void absorb_counters(const Counters& other) { counters_.absorb(other); }

 private:
  /// Message-fault verdicts draw from a per-sender stream (cached lazily),
  /// not one shared stream — the same PDES determinism-contract rule as
  /// Network's jitter streams (docs/pdes.md): each sender's verdict sequence
  /// must be a function of its own send order, not the global interleaving.
  /// The double fork (0xFA17, then the node id) keeps every per-sender
  /// stream disjoint from churn_rng()/targeted_rng() even when node ids
  /// collide with those tags' values.
  Rng& verdict_rng(NodeId from);

  FaultConfig config_;
  Counters counters_;
  std::unordered_map<NodeId, Rng> verdict_rng_;
  /// (loss_mult, dup_mult) per interned message-type index; types beyond
  /// the vector (or interned later without a bias entry) are unbiased.
  std::vector<std::pair<double, double>> bias_;
};

}  // namespace aria::sim
