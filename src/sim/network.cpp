#include "sim/network.hpp"

#include <utility>

namespace aria::sim {

void Network::send(NodeId from, NodeId to, std::unique_ptr<Message> message) {
  assert(message);
  assert(from.valid() && to.valid());
  const std::string type = message->type_name();
  traffic_.record(type, message->wire_size());
  ++sent_;

  const Duration delay = latency_->latency(from, to, rng_);
  // The envelope is moved into the event; shared_ptr smooths over
  // std::function's copyability requirement.
  auto box = std::make_shared<Envelope>(Envelope{from, to, std::move(message)});
  sim_.schedule_after(delay, [this, box, type] {
    auto it = nodes_.find(box->to);
    if (it == nodes_.end() || !it->second.up) {
      ++dropped_;
      traffic_.record_drop(type);
      return;
    }
    ++delivered_;
    it->second.handler(std::move(*box));
  });
}

}  // namespace aria::sim
