#include "sim/network.hpp"

#include <utility>

namespace aria::sim {

void Network::schedule_delivery(NodeId from, NodeId to, MessageTypeId type,
                                Duration delay,
                                std::unique_ptr<Message> message) {
  const TimePoint deliver_at = sim_.now() + delay;
  // The key is drawn on the sender's network whether or not the delivery is
  // local — the cross-shard path must consume the same counter values the
  // sequential path does.
  const std::uint64_t key = next_delivery_key(from);
  if (remote_ != nullptr && remote_->is_remote(to)) {
    remote_->forward(from, to, deliver_at, key, std::move(message));
    return;
  }
  schedule_delivery_at(from, to, type, deliver_at, key, std::move(message));
}

void Network::schedule_delivery_at(NodeId from, NodeId to, MessageTypeId type,
                                   TimePoint deliver_at, std::uint64_t key,
                                   std::unique_ptr<Message> message) {
  // The message moves straight into the delivery closure (UniqueCallback is
  // move-only, so no shared_ptr shim and no extra allocation).
  sim_.schedule_at_keyed(
      deliver_at, key,
      [this, from, to, type, msg = std::move(message)]() mutable {
        auto it = nodes_.find(to);
        if (it == nodes_.end() || !it->second.up) {
          ++dropped_;
          traffic_.record_drop(type);
          return;
        }
        ++delivered_;
        it->second.handler(Envelope{from, to, std::move(msg)});
      });
}

void Network::deliver_remote(NodeId from, NodeId to, TimePoint deliver_at,
                             std::uint64_t key,
                             std::unique_ptr<Message> message) {
  assert(message);
  // Read the type before the call: evaluation order of the arguments is
  // unspecified, and the move may empty `message` first.
  const MessageTypeId type = message->type_id();
  schedule_delivery_at(from, to, type, deliver_at, key, std::move(message));
}

void Network::send(NodeId from, NodeId to, std::unique_ptr<Message> message) {
  assert(message);
  assert(from.valid() && to.valid());
  const MessageTypeId type = message->type_id();
  const std::size_t bytes = message->wire_size();
  traffic_.record(type, bytes);
  ++sent_;
  if (region_count_ > 1) {
    if (from.value() % region_count_ == to.value() % region_count_) {
      ++intra_region_messages_;
      intra_region_bytes_ += bytes;
    } else {
      ++cross_region_messages_;
      cross_region_bytes_ += bytes;
    }
  }

  // Fault injection: one cheap null/flag test on the fault-free path; all
  // fault RNG draws happen on a dedicated stream inside the plane, so the
  // latency RNG below never shifts when faults are disabled.
  if (faults_ != nullptr && faults_->active()) {
    const FaultPlane::Verdict v = faults_->on_send(from, to, type, sim_.now());
    if (v.drop) {
      ++faulted_;
      traffic_.record_fault(type);
      if (tap_ != nullptr) {
        tap_message(from, to, *message, sim_.now(), /*faulted=*/true);
      }
      return;
    }
    const Duration delay =
        latency_->latency(from, to, jitter_rng(from)) + v.extra_delay;
    if (v.duplicate) {
      if (auto copy = message->clone()) {
        ++duplicated_;
        schedule_delivery(from, to, type, delay + v.duplicate_lag,
                          std::move(copy));
      }
    }
    if (tap_ != nullptr) {
      // One tap per logical send: an injected duplicate is the same message
      // on the wire twice, and the trace records the primary delivery.
      tap_message(from, to, *message, sim_.now() + delay, /*faulted=*/false);
    }
    schedule_delivery(from, to, type, delay, std::move(message));
    return;
  }

  const Duration delay = latency_->latency(from, to, jitter_rng(from));
  if (tap_ != nullptr) {
    tap_message(from, to, *message, sim_.now() + delay, /*faulted=*/false);
  }
  schedule_delivery(from, to, type, delay, std::move(message));
}

}  // namespace aria::sim
