#include "sim/network.hpp"

#include <utility>

namespace aria::sim {

void Network::send(NodeId from, NodeId to, std::unique_ptr<Message> message) {
  assert(message);
  assert(from.valid() && to.valid());
  const MessageTypeId type = message->type_id();
  traffic_.record(type, message->wire_size());
  ++sent_;

  const Duration delay = latency_->latency(from, to, rng_);
  // The message moves straight into the delivery closure (UniqueCallback is
  // move-only, so no shared_ptr shim and no extra allocation).
  sim_.schedule_after(
      delay, [this, from, to, type, msg = std::move(message)]() mutable {
        auto it = nodes_.find(to);
        if (it == nodes_.end() || !it->second.up) {
          ++dropped_;
          traffic_.record_drop(type);
          return;
        }
        ++delivered_;
        it->second.handler(Envelope{from, to, std::move(msg)});
      });
}

}  // namespace aria::sim
