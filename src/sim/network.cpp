#include "sim/network.hpp"

#include <utility>

namespace aria::sim {

void Network::schedule_delivery(NodeId from, NodeId to, MessageTypeId type,
                                Duration delay,
                                std::unique_ptr<Message> message) {
  // The message moves straight into the delivery closure (UniqueCallback is
  // move-only, so no shared_ptr shim and no extra allocation).
  sim_.schedule_after(
      delay, [this, from, to, type, msg = std::move(message)]() mutable {
        auto it = nodes_.find(to);
        if (it == nodes_.end() || !it->second.up) {
          ++dropped_;
          traffic_.record_drop(type);
          return;
        }
        ++delivered_;
        it->second.handler(Envelope{from, to, std::move(msg)});
      });
}

void Network::send(NodeId from, NodeId to, std::unique_ptr<Message> message) {
  assert(message);
  assert(from.valid() && to.valid());
  const MessageTypeId type = message->type_id();
  const std::size_t bytes = message->wire_size();
  traffic_.record(type, bytes);
  ++sent_;
  if (region_count_ > 1) {
    if (from.value() % region_count_ == to.value() % region_count_) {
      ++intra_region_messages_;
      intra_region_bytes_ += bytes;
    } else {
      ++cross_region_messages_;
      cross_region_bytes_ += bytes;
    }
  }

  // Fault injection: one cheap null/flag test on the fault-free path; all
  // fault RNG draws happen on a dedicated stream inside the plane, so the
  // latency RNG below never shifts when faults are disabled.
  if (faults_ != nullptr && faults_->active()) {
    const FaultPlane::Verdict v = faults_->on_send(from, to, type, sim_.now());
    if (v.drop) {
      ++faulted_;
      traffic_.record_fault(type);
      if (tap_ != nullptr) {
        tap_message(from, to, *message, sim_.now(), /*faulted=*/true);
      }
      return;
    }
    const Duration delay =
        latency_->latency(from, to, rng_) + v.extra_delay;
    if (v.duplicate) {
      if (auto copy = message->clone()) {
        ++duplicated_;
        schedule_delivery(from, to, type, delay + v.duplicate_lag,
                          std::move(copy));
      }
    }
    if (tap_ != nullptr) {
      // One tap per logical send: an injected duplicate is the same message
      // on the wire twice, and the trace records the primary delivery.
      tap_message(from, to, *message, sim_.now() + delay, /*faulted=*/false);
    }
    schedule_delivery(from, to, type, delay, std::move(message));
    return;
  }

  const Duration delay = latency_->latency(from, to, rng_);
  if (tap_ != nullptr) {
    tap_message(from, to, *message, sim_.now() + delay, /*faulted=*/false);
  }
  schedule_delivery(from, to, type, delay, std::move(message));
}

}  // namespace aria::sim
