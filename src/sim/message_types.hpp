// Interned message-type identifiers.
//
// Every Network::send meters the message in a TrafficLedger. Keying that
// accounting by the type *name* made the flood path allocate a std::string
// and walk a std::map per message; instead, each wire type registers its
// name once and gets a dense MessageTypeId that indexes a flat counter
// array. Names survive only for report formatting (name()) and for cold
// string-keyed queries in tests and figure benches (find()).
//
// The registry is process-wide (message types are code, not data) and
// guarded by a mutex; the hot path never takes it — interning happens once
// per type, and ledger recording is a plain array index.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace aria::sim {

/// Dense identifier for a wire message type; value-stable for the lifetime
/// of the process.
class MessageTypeId {
 public:
  constexpr MessageTypeId() = default;

  constexpr bool valid() const { return value_ != kInvalid; }
  constexpr std::size_t index() const { return value_; }

  /// Rebuilds an id from a dense index (ledger iteration); the caller must
  /// have obtained the index from a valid id.
  static constexpr MessageTypeId from_index(std::size_t index) {
    return MessageTypeId{static_cast<std::uint16_t>(index)};
  }

  friend constexpr bool operator==(MessageTypeId, MessageTypeId) = default;

 private:
  friend class MessageTypeRegistry;
  constexpr explicit MessageTypeId(std::uint16_t v) : value_{v} {}
  static constexpr std::uint16_t kInvalid = 0xFFFF;
  std::uint16_t value_{kInvalid};
};

class MessageTypeRegistry {
 public:
  /// Returns the id for `name`, registering it on first use.
  static MessageTypeId intern(std::string_view name);

  /// Id for an already-registered name; nullopt if never interned.
  static std::optional<MessageTypeId> find(std::string_view name);

  /// The name `id` was registered under. `id` must be valid.
  static const std::string& name(MessageTypeId id);

  /// Number of registered types (upper bound for dense per-type arrays).
  static std::size_t count();
};

}  // namespace aria::sim
