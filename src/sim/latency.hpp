// Network latency models.
//
// The paper's simulator "reproduces realistic round-trip delays"; we model
// one-way latency as base propagation + a geographic component + per-message
// jitter. Node positions are derived from a stateless hash of (seed, node),
// so latencies are stable for a node pair, symmetric, and new nodes joining
// an expanding network need no registration step.
#pragma once

#include <cstdint>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"

namespace aria::sim {

/// Interface: one-way delivery latency for a message from `a` to `b`.
/// `rng` supplies per-message jitter; implementations must be deterministic
/// given (a, b, rng state).
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  virtual Duration latency(NodeId a, NodeId b, Rng& rng) = 0;

  /// A lower bound on latency() over every node pair and every RNG state —
  /// the conservative lookahead of the sharded PDES executor (docs/pdes.md):
  /// a message sent at t is guaranteed not to arrive before t +
  /// min_latency(), so shards may safely advance min_latency() past the
  /// global minimum next-event time. The default (zero) is always sound but
  /// gives an executor no lookahead; models should override with their real
  /// floor.
  virtual Duration min_latency() const { return Duration::zero(); }
};

/// Constant latency — for tests and microbenchmarks.
class FixedLatencyModel final : public LatencyModel {
 public:
  explicit FixedLatencyModel(Duration d) : d_{d} {}
  Duration latency(NodeId, NodeId, Rng&) override { return d_; }
  Duration min_latency() const override { return d_; }

 private:
  Duration d_;
};

/// Geographic model: nodes live on a unit square; one-way latency is
///   base + distance * span + jitter,
/// with jitter uniform in [0, jitter_fraction * (base + distance * span)].
/// Defaults give one-way delays of roughly 5–90 ms, i.e. wide-area RTTs of
/// 10–180 ms.
class GeoLatencyModel final : public LatencyModel {
 public:
  struct Params {
    std::uint64_t seed{0x9E3779B9};
    Duration base{Duration::millis(5)};
    Duration span{Duration::millis(60)};  // latency across the full diagonal
    double jitter_fraction{0.2};
  };

  GeoLatencyModel() : GeoLatencyModel(Params{}) {}
  explicit GeoLatencyModel(Params params) : params_{params} {}

  Duration latency(NodeId a, NodeId b, Rng& rng) override;

  /// Distance and jitter are both >= 0, so `base` is the exact floor
  /// (attained by co-located nodes with a zero jitter draw).
  Duration min_latency() const override { return params_.base; }

  /// Deterministic position of a node on the unit square.
  void position(NodeId n, double& x, double& y) const;

 private:
  Params params_;
};

}  // namespace aria::sim
