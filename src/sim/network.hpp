// Point-to-point message transport over the simulator.
//
// The network knows nothing about the overlay topology: any node may send to
// any address it has learned (the paper's overlay "enables communication
// between any pair of nodes"). Topology constraints — who forwards to whom —
// live in the protocol layer. Every send is metered in a TrafficLedger;
// messages to unregistered or down nodes are dropped and counted.
//
// An optional FaultPlane (see sim/fault.hpp) can be attached to inject
// loss, duplication and latency spikes per message; without one — or with
// one whose master switch is off — the send path is exactly the historic
// fault-free path, down to the RNG draws.
#pragma once

#include <cassert>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "sim/fault.hpp"
#include "sim/latency.hpp"
#include "sim/message_types.hpp"
#include "sim/simulator.hpp"
#include "sim/traffic.hpp"

namespace aria::sim {

/// Base class for everything that travels on the wire. `wire_size` feeds the
/// traffic ledger; `type_id` keys the per-type accounting (an interned
/// MessageTypeId — implementations register their name once, typically via
/// a function-local static, so the send path never builds a string).
class Message {
 public:
  virtual ~Message() = default;
  virtual std::size_t wire_size() const = 0;
  virtual MessageTypeId type_id() const = 0;

  /// Registered name of this type (report formatting only).
  const std::string& type_name() const {
    return MessageTypeRegistry::name(type_id());
  }

  /// Deep copy, used only by fault-plane duplication. The default makes a
  /// type non-clonable (never duplicated); copyable message types override
  /// with a one-line copy.
  virtual std::unique_ptr<Message> clone() const { return nullptr; }

  /// Remaining hop budget for flooded message types (REQUEST/INFORM);
  /// kNoHops for point-to-point messages. Lets a MessageTap record hop
  /// counts without downcasting per concrete type.
  static constexpr std::uint32_t kNoHops = UINT32_MAX;
  virtual std::uint32_t flood_hops_left() const { return kNoHops; }
};

/// Observer of sends, for the tracing plane (src/trace). Attached like the
/// FaultPlane — a non-owning pointer the network never dereferences unless
/// set — so the sim layer needs no dependency on the trace library and an
/// unattached tap leaves the send path exactly as it was.
class MessageTap {
 public:
  virtual ~MessageTap() = default;

  /// One sampled send. `deliver` is the scheduled delivery instant (the
  /// latency draw happens at send time, so it is known here); for messages
  /// the fault plane dropped, `faulted` is true and `deliver == sent`.
  /// Must not send messages or mutate simulation state.
  virtual void on_message(NodeId from, NodeId to, const Message& message,
                          TimePoint sent, TimePoint deliver, bool faulted) = 0;
};

struct Envelope {
  NodeId from;
  NodeId to;
  std::unique_ptr<Message> message;
};

/// Cross-shard routing hook (sharded PDES executor, sim/pdes,
/// docs/pdes.md). When attached, a send whose destination is_remote() is
/// handed to forward() — stamped with its already-drawn delivery instant —
/// instead of being scheduled on the local simulator; the destination
/// shard's Network later injects it via deliver_remote(). Everything
/// sender-side (metering, fault verdict, latency draw, tap) has already
/// happened by the time forward() runs, so the split is invisible to both
/// endpoints.
class RemoteRoute {
 public:
  virtual ~RemoteRoute() = default;

  /// Does `to` live on another shard's network?
  virtual bool is_remote(NodeId to) const = 0;

  /// Hands off one message for delivery at `deliver_at` on the owning
  /// shard. Called at the sender's send instant, which the conservative
  /// protocol guarantees precedes `deliver_at` by at least the lookahead.
  /// `key` is the sender-side delivery ordering key (see
  /// Simulator::schedule_at_keyed); the receiving shard must schedule the
  /// delivery with it unchanged.
  virtual void forward(NodeId from, NodeId to, TimePoint deliver_at,
                       std::uint64_t key,
                       std::unique_ptr<Message> message) = 0;
};

class Network {
 public:
  using Handler = std::function<void(Envelope)>;

  Network(Simulator& sim, std::unique_ptr<LatencyModel> latency, Rng rng)
      : sim_{sim}, latency_{std::move(latency)}, base_rng_{rng} {
    assert(latency_);
  }

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Attaches a node; replaces any previous handler for the same id.
  void attach(NodeId node, Handler handler) {
    assert(node.valid() && handler);
    nodes_[node] = NodeState{std::move(handler), /*up=*/true};
  }

  void detach(NodeId node) { nodes_.erase(node); }

  /// Simulates a crash/recovery: down nodes silently drop incoming traffic.
  void set_up(NodeId node, bool up) {
    auto it = nodes_.find(node);
    if (it != nodes_.end()) it->second.up = up;
  }

  bool is_attached(NodeId node) const { return nodes_.contains(node); }
  bool is_up(NodeId node) const {
    auto it = nodes_.find(node);
    return it != nodes_.end() && it->second.up;
  }

  /// Sends `message` from `from` to `to`; delivery happens after the
  /// latency-model delay. The send is metered immediately (the bytes hit the
  /// wire even if the destination is down at delivery time).
  void send(NodeId from, NodeId to, std::unique_ptr<Message> message);

  /// Attaches a fault plane (non-owning; must outlive the network). Null or
  /// an inactive plane leaves the send path byte-identical to fault-free.
  void set_fault_plane(FaultPlane* plane) { faults_ = plane; }
  FaultPlane* fault_plane() const { return faults_; }

  /// The latency model driving delivery delays. The sharded executor reads
  /// min_latency() off it to derive the conservative lookahead.
  const LatencyModel& latency_model() const { return *latency_; }

  /// Folds another network's meters into this one: message counters, the
  /// region split, and the per-type traffic ledger. Used after a sharded
  /// run to merge the shard networks' accounting into the engine network so
  /// RunResult harvesting reads one place in both execution modes.
  void absorb_meters(const Network& other) {
    traffic_.merge(other.traffic_);
    sent_ += other.sent_;
    delivered_ += other.delivered_;
    dropped_ += other.dropped_;
    faulted_ += other.faulted_;
    duplicated_ += other.duplicated_;
    intra_region_messages_ += other.intra_region_messages_;
    cross_region_messages_ += other.cross_region_messages_;
    intra_region_bytes_ += other.intra_region_bytes_;
    cross_region_bytes_ += other.cross_region_bytes_;
  }

  /// Attaches the cross-shard route (non-owning; must outlive the network).
  /// Null (the default) keeps every delivery local — the plain path.
  void set_remote_route(RemoteRoute* route) { remote_ = route; }

  /// Recipient side of the remote route: accepts a message forwarded by a
  /// peer shard and schedules it at the stamped instant — under the
  /// sender-stamped ordering key — after which it runs the exact local
  /// delivery path (up-check, drop accounting, handler). Must be called
  /// before the local clock reaches `deliver_at` — the conservative window
  /// protocol guarantees this.
  void deliver_remote(NodeId from, NodeId to, TimePoint deliver_at,
                      std::uint64_t key, std::unique_ptr<Message> message);

  /// Attaches a message tap (non-owning; must outlive the network); the tap
  /// sees every `sample_every`-th send, counted deterministically — no RNG
  /// draws, so attaching a tap never perturbs the simulation. Null detaches.
  void set_tap(MessageTap* tap, std::uint64_t sample_every = 1) {
    tap_ = tap;
    tap_every_ = sample_every == 0 ? 1 : sample_every;
    tap_counter_ = 0;
  }
  MessageTap* tap() const { return tap_; }

  /// Enables the intra/cross-region traffic split: with `regions` > 1 every
  /// send is classified by the sender's and receiver's region (id mod
  /// regions — the same stateless partition overlay::region_of uses; the
  /// modulo is inlined here so the sim layer needs no overlay dependency).
  /// 0 (the default) disables the split entirely — not even the modulo runs,
  /// keeping non-hierarchical sends on the exact historic path.
  void set_region_count(std::size_t regions) { region_count_ = regions; }

  std::uint64_t intra_region_messages() const { return intra_region_messages_; }
  std::uint64_t cross_region_messages() const { return cross_region_messages_; }
  std::uint64_t intra_region_bytes() const { return intra_region_bytes_; }
  std::uint64_t cross_region_bytes() const { return cross_region_bytes_; }

  TrafficLedger& traffic() { return traffic_; }
  const TrafficLedger& traffic() const { return traffic_; }

  std::uint64_t sent_messages() const { return sent_; }
  std::uint64_t delivered_messages() const { return delivered_; }
  /// Organic failures only: destination unknown or down at delivery time.
  std::uint64_t dropped_messages() const { return dropped_; }
  /// Fault-plane injections: random loss + partition blocking.
  std::uint64_t faulted_messages() const { return faulted_; }
  /// Extra deliveries injected by fault-plane duplication.
  std::uint64_t duplicated_messages() const { return duplicated_; }

 private:
  struct NodeState {
    Handler handler;
    bool up{true};
  };

  void schedule_delivery(NodeId from, NodeId to, MessageTypeId type,
                         Duration delay, std::unique_ptr<Message> message);
  void schedule_delivery_at(NodeId from, NodeId to, MessageTypeId type,
                            TimePoint deliver_at, std::uint64_t key,
                            std::unique_ptr<Message> message);

  /// Same-instant delivery ordering key: (sender, per-sender delivery
  /// count), packed so keys from different senders never collide and a
  /// sender's deliveries keep their send order. The counter advances once
  /// per scheduled delivery on the *sender's* network, so the key is a pure
  /// function of the sender's own send history — identical under sequential
  /// and sharded execution (docs/pdes.md "Determinism contract"). The +1
  /// keeps every delivery key above 0, the key timers and engine events
  /// schedule with.
  std::uint64_t next_delivery_key(NodeId from) {
    return ((static_cast<std::uint64_t>(from.value()) + 1) << 32) |
           (delivery_seq_[from]++ & 0xFFFFFFFFull);
  }

  /// Latency jitter is drawn from a per-sender stream (base_rng_ forked on
  /// the sender id, cached lazily) rather than one shared stream. This is a
  /// pillar of the PDES determinism contract (docs/pdes.md): the draw
  /// sequence a sender sees is then a function of that sender's own send
  /// order only, which is identical under sequential and sharded execution —
  /// a shared stream would depend on the global interleaving of all senders.
  Rng& jitter_rng(NodeId from) {
    auto it = sender_rng_.find(from);
    if (it == sender_rng_.end()) {
      it = sender_rng_.emplace(from, base_rng_.fork(from.value())).first;
    }
    return it->second;
  }

  /// Sampling gate + forward to the tap; called only when tap_ != nullptr.
  void tap_message(NodeId from, NodeId to, const Message& message,
                   TimePoint deliver, bool faulted) {
    if (tap_counter_++ % tap_every_ != 0) return;
    tap_->on_message(from, to, message, sim_.now(), deliver, faulted);
  }

  Simulator& sim_;
  std::unique_ptr<LatencyModel> latency_;
  Rng base_rng_;
  std::unordered_map<NodeId, Rng> sender_rng_;
  std::unordered_map<NodeId, std::uint64_t> delivery_seq_;
  TrafficLedger traffic_;
  FaultPlane* faults_{nullptr};
  RemoteRoute* remote_{nullptr};
  MessageTap* tap_{nullptr};
  std::uint64_t tap_every_{1};
  std::uint64_t tap_counter_{0};
  std::unordered_map<NodeId, NodeState> nodes_;
  std::size_t region_count_{0};
  std::uint64_t intra_region_messages_{0};
  std::uint64_t cross_region_messages_{0};
  std::uint64_t intra_region_bytes_{0};
  std::uint64_t cross_region_bytes_{0};
  std::uint64_t sent_{0};
  std::uint64_t delivered_{0};
  std::uint64_t dropped_{0};
  std::uint64_t faulted_{0};
  std::uint64_t duplicated_{0};
};

}  // namespace aria::sim
