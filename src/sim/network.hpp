// Point-to-point message transport over the simulator.
//
// The network knows nothing about the overlay topology: any node may send to
// any address it has learned (the paper's overlay "enables communication
// between any pair of nodes"). Topology constraints — who forwards to whom —
// live in the protocol layer. Every send is metered in a TrafficLedger;
// messages to unregistered or down nodes are dropped and counted.
//
// An optional FaultPlane (see sim/fault.hpp) can be attached to inject
// loss, duplication and latency spikes per message; without one — or with
// one whose master switch is off — the send path is exactly the historic
// fault-free path, down to the RNG draws.
#pragma once

#include <cassert>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "sim/fault.hpp"
#include "sim/latency.hpp"
#include "sim/message_types.hpp"
#include "sim/simulator.hpp"
#include "sim/traffic.hpp"

namespace aria::sim {

/// Base class for everything that travels on the wire. `wire_size` feeds the
/// traffic ledger; `type_id` keys the per-type accounting (an interned
/// MessageTypeId — implementations register their name once, typically via
/// a function-local static, so the send path never builds a string).
class Message {
 public:
  virtual ~Message() = default;
  virtual std::size_t wire_size() const = 0;
  virtual MessageTypeId type_id() const = 0;

  /// Registered name of this type (report formatting only).
  const std::string& type_name() const {
    return MessageTypeRegistry::name(type_id());
  }

  /// Deep copy, used only by fault-plane duplication. The default makes a
  /// type non-clonable (never duplicated); copyable message types override
  /// with a one-line copy.
  virtual std::unique_ptr<Message> clone() const { return nullptr; }
};

struct Envelope {
  NodeId from;
  NodeId to;
  std::unique_ptr<Message> message;
};

class Network {
 public:
  using Handler = std::function<void(Envelope)>;

  Network(Simulator& sim, std::unique_ptr<LatencyModel> latency, Rng rng)
      : sim_{sim}, latency_{std::move(latency)}, rng_{rng} {
    assert(latency_);
  }

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Attaches a node; replaces any previous handler for the same id.
  void attach(NodeId node, Handler handler) {
    assert(node.valid() && handler);
    nodes_[node] = NodeState{std::move(handler), /*up=*/true};
  }

  void detach(NodeId node) { nodes_.erase(node); }

  /// Simulates a crash/recovery: down nodes silently drop incoming traffic.
  void set_up(NodeId node, bool up) {
    auto it = nodes_.find(node);
    if (it != nodes_.end()) it->second.up = up;
  }

  bool is_attached(NodeId node) const { return nodes_.contains(node); }
  bool is_up(NodeId node) const {
    auto it = nodes_.find(node);
    return it != nodes_.end() && it->second.up;
  }

  /// Sends `message` from `from` to `to`; delivery happens after the
  /// latency-model delay. The send is metered immediately (the bytes hit the
  /// wire even if the destination is down at delivery time).
  void send(NodeId from, NodeId to, std::unique_ptr<Message> message);

  /// Attaches a fault plane (non-owning; must outlive the network). Null or
  /// an inactive plane leaves the send path byte-identical to fault-free.
  void set_fault_plane(FaultPlane* plane) { faults_ = plane; }
  FaultPlane* fault_plane() const { return faults_; }

  TrafficLedger& traffic() { return traffic_; }
  const TrafficLedger& traffic() const { return traffic_; }

  std::uint64_t sent_messages() const { return sent_; }
  std::uint64_t delivered_messages() const { return delivered_; }
  /// Organic failures only: destination unknown or down at delivery time.
  std::uint64_t dropped_messages() const { return dropped_; }
  /// Fault-plane injections: random loss + partition blocking.
  std::uint64_t faulted_messages() const { return faulted_; }
  /// Extra deliveries injected by fault-plane duplication.
  std::uint64_t duplicated_messages() const { return duplicated_; }

 private:
  struct NodeState {
    Handler handler;
    bool up{true};
  };

  void schedule_delivery(NodeId from, NodeId to, MessageTypeId type,
                         Duration delay, std::unique_ptr<Message> message);

  Simulator& sim_;
  std::unique_ptr<LatencyModel> latency_;
  Rng rng_;
  TrafficLedger traffic_;
  FaultPlane* faults_{nullptr};
  std::unordered_map<NodeId, NodeState> nodes_;
  std::uint64_t sent_{0};
  std::uint64_t delivered_{0};
  std::uint64_t dropped_{0};
  std::uint64_t faulted_{0};
  std::uint64_t duplicated_{0};
};

}  // namespace aria::sim
