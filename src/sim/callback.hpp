// Move-only callable wrapper with small-buffer optimization.
//
// The event kernel stores one callback per scheduled event. std::function
// forces copyability (so move-only captures like std::unique_ptr need a
// shared_ptr shim) and its type-erasure layout is opaque. UniqueCallback is
// the minimal alternative the hot path wants: move-only, so an Envelope's
// unique_ptr can be captured directly, and with a 48-byte inline buffer
// sized to hold every closure the simulation schedules (delivery lambdas,
// timer ticks, protocol timeouts) without touching the heap.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace aria::sim {

class UniqueCallback {
 public:
  /// Closures up to this size (and max_align_t alignment) are stored inline.
  static constexpr std::size_t kInlineBytes = 48;

  UniqueCallback() = default;

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, UniqueCallback> &&
             std::is_invocable_r_v<void, std::decay_t<F>&>)
  UniqueCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_.buf)) Fn(std::forward<F>(f));
      invoke_ = [](UniqueCallback& self) {
        (*std::launder(reinterpret_cast<Fn*>(self.storage_.buf)))();
      };
      relocate_ = [](UniqueCallback& self, UniqueCallback* dst) noexcept {
        Fn* fn = std::launder(reinterpret_cast<Fn*>(self.storage_.buf));
        if (dst != nullptr) {
          ::new (static_cast<void*>(dst->storage_.buf)) Fn(std::move(*fn));
        }
        fn->~Fn();
      };
    } else {
      storage_.heap = new Fn(std::forward<F>(f));
      invoke_ = [](UniqueCallback& self) {
        (*static_cast<Fn*>(self.storage_.heap))();
      };
      relocate_ = [](UniqueCallback& self, UniqueCallback* dst) noexcept {
        if (dst != nullptr) {
          dst->storage_.heap = self.storage_.heap;
        } else {
          delete static_cast<Fn*>(self.storage_.heap);
        }
        self.storage_.heap = nullptr;
      };
    }
  }

  UniqueCallback(UniqueCallback&& other) noexcept { adopt(other); }

  UniqueCallback& operator=(UniqueCallback&& other) noexcept {
    if (this != &other) {
      reset();
      adopt(other);
    }
    return *this;
  }

  UniqueCallback(const UniqueCallback&) = delete;
  UniqueCallback& operator=(const UniqueCallback&) = delete;

  ~UniqueCallback() { reset(); }

  explicit operator bool() const { return invoke_ != nullptr; }

  /// Invokes the callable; the wrapper stays valid (periodic events call the
  /// same closure every tick).
  void operator()() { invoke_(*this); }

  void reset() {
    if (relocate_ != nullptr) relocate_(*this, nullptr);
    invoke_ = nullptr;
    relocate_ = nullptr;
  }

 private:
  using Invoke = void (*)(UniqueCallback&);
  /// Moves the callable into `dst` (or destroys it when dst == nullptr).
  using Relocate = void (*)(UniqueCallback&, UniqueCallback*) noexcept;

  void adopt(UniqueCallback& other) noexcept {
    invoke_ = other.invoke_;
    relocate_ = other.relocate_;
    if (relocate_ != nullptr) relocate_(other, this);
    other.invoke_ = nullptr;
    other.relocate_ = nullptr;
  }

  union Storage {
    alignas(std::max_align_t) unsigned char buf[kInlineBytes];
    void* heap;
  };

  Storage storage_;
  Invoke invoke_{nullptr};
  Relocate relocate_{nullptr};
};

}  // namespace aria::sim
