#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace aria::sim {

namespace {
// 4-ary beats binary here: the heap holds 32-byte PODs, so one cache line
// covers a parent's whole child group and the shallower tree wins on sift
// depth.
constexpr std::size_t kArity = 4;
}  // namespace

// ---------------------------------------------------------------------------
// Slab
// ---------------------------------------------------------------------------

std::uint32_t Simulator::alloc_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::free_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn.reset();
  s.periodic = false;
  s.in_heap = false;
  ++s.generation;  // invalidates every outstanding handle and heap entry
  free_slots_.push_back(slot);
}

void Simulator::cancel(std::uint32_t slot, std::uint32_t generation) {
  if (slot >= slots_.size()) return;
  Slot& s = slots_[slot];
  if (s.generation != generation) return;  // already fired or cancelled
  const bool orphans_heap_entry = s.in_heap;
  // A periodic event cancelled from inside its own callback has no heap
  // entry (it was popped for dispatch); freeing the slot here is what stops
  // the re-arm.
  free_slot(slot);
  if (orphans_heap_entry) {
    ++cancelled_pending_;
    maybe_compact();
  }
}

// ---------------------------------------------------------------------------
// 4-ary heap over (at, key, seq)
// ---------------------------------------------------------------------------

void Simulator::heap_push(HeapEntry entry) {
  heap_.push_back(entry);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!earlier(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void Simulator::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first_child = i * kArity + 1;
    if (first_child >= n) return;
    std::size_t best = first_child;
    const std::size_t last_child = std::min(first_child + kArity, n);
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], heap_[i])) return;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

void Simulator::heap_pop_front() {
  assert(!heap_.empty());
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void Simulator::maybe_compact() {
  if (cancelled_pending_ < kCompactMinDead ||
      cancelled_pending_ * 2 < heap_.size()) {
    return;
  }
  std::erase_if(heap_, [this](const HeapEntry& e) { return !slot_live(e); });
  // Rebuild: sift down every internal node, deepest first.
  if (heap_.size() > 1) {
    for (std::size_t i = (heap_.size() - 2) / kArity + 1; i-- > 0;) {
      sift_down(i);
    }
  }
  cancelled_pending_ = 0;
  ++compactions_;
}

// ---------------------------------------------------------------------------
// Scheduling
// ---------------------------------------------------------------------------

EventHandle Simulator::schedule_at(TimePoint at, Callback fn) {
  return schedule_at_keyed(at, 0, std::move(fn));
}

EventHandle Simulator::schedule_at_keyed(TimePoint at, std::uint64_t key,
                                         Callback fn) {
  assert(fn);
  if (at < now_) at = now_;  // never schedule into the past
  const std::uint32_t slot = alloc_slot();
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.in_heap = true;
  const std::uint32_t generation = s.generation;
  heap_push(HeapEntry{at, key, next_seq_++, slot, generation});
  return EventHandle{this, slot, generation};
}

EventHandle Simulator::schedule_after(Duration delay, Callback fn) {
  if (delay.is_negative()) delay = Duration::zero();
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Simulator::schedule_periodic(Duration phase, Duration period,
                                         Callback fn) {
  assert(period > Duration::zero());
  if (phase.is_negative()) phase = Duration::zero();
  const std::uint32_t slot = alloc_slot();
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.periodic = true;
  s.period = period;
  s.in_heap = true;
  const std::uint32_t generation = s.generation;
  heap_push(HeapEntry{now_ + phase, 0, next_seq_++, slot, generation});
  return EventHandle{this, slot, generation};
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

std::optional<TimePoint> Simulator::peek() {
  while (!heap_.empty()) {
    if (slot_live(heap_.front())) return heap_.front().at;
    heap_pop_front();
    --cancelled_pending_;
  }
  return std::nullopt;
}

bool Simulator::step() {
  for (;;) {
    if (heap_.empty()) return false;
    const HeapEntry top = heap_.front();
    heap_pop_front();
    if (!slot_live(top)) {  // cancelled: lazy skip
      --cancelled_pending_;
      continue;
    }
    slots_[top.slot].in_heap = false;
    now_ = top.at;
    ++fired_;
    if (slots_[top.slot].periodic) {
      // The callback runs outside its slot: it may cancel its own handle
      // (which frees the slot) or schedule events that grow the slab.
      Callback fn = std::move(slots_[top.slot].fn);
      fn();
      Slot& s = slots_[top.slot];  // re-acquire: the slab may have grown
      if (s.generation == top.generation) {
        s.fn = std::move(fn);
        s.in_heap = true;
        heap_push(HeapEntry{now_ + s.period, 0, next_seq_++, top.slot,
                            top.generation});
      }
    } else {
      // Free before invoking: one-shot slots recycle even when the callback
      // schedules new events (the generation bump keeps handles inert).
      Callback fn = std::move(slots_[top.slot].fn);
      free_slot(top.slot);
      fn();
    }
    return true;
  }
}

std::uint64_t Simulator::run() {
  stop_requested_ = false;
  std::uint64_t n = 0;
  while (!stop_requested_ && step()) ++n;
  return n;
}

std::uint64_t Simulator::run_until(TimePoint deadline) {
  stop_requested_ = false;
  std::uint64_t n = 0;
  while (!stop_requested_) {
    const std::optional<TimePoint> next = peek();
    if (!next || *next > deadline) break;  // no pop + push-back round trip
    step();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

std::uint64_t Simulator::run_until_before(TimePoint bound) {
  stop_requested_ = false;
  std::uint64_t n = 0;
  while (!stop_requested_) {
    const std::optional<TimePoint> next = peek();
    if (!next || *next >= bound) break;
    step();
    ++n;
  }
  return n;
}

void Simulator::advance_to(TimePoint at) {
  if (at <= now_) return;
  assert(!peek() || *peek() >= at);
  now_ = at;
}

}  // namespace aria::sim
