#include "sim/simulator.hpp"

#include <cassert>
#include <utility>

namespace aria::sim {

EventHandle Simulator::schedule_at(TimePoint at, Callback fn) {
  assert(fn);
  if (at < now_) at = now_;  // never schedule into the past
  auto cancelled = std::make_shared<bool>(false);
  EventHandle handle{cancelled};
  queue_.push(Entry{at, next_seq_++, std::move(fn), std::move(cancelled)});
  return handle;
}

EventHandle Simulator::schedule_after(Duration delay, Callback fn) {
  if (delay.is_negative()) delay = Duration::zero();
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Simulator::schedule_periodic(Duration phase, Duration period,
                                         Callback fn) {
  assert(period > Duration::zero());
  // The shared flag spans all repetitions, so cancelling the returned handle
  // stops the whole series.
  auto cancelled = std::make_shared<bool>(false);
  EventHandle handle{cancelled};

  auto tick = std::make_shared<std::function<void()>>();
  *tick = [this, period, fn = std::move(fn), cancelled, tick]() {
    fn();
    if (*cancelled) return;
    queue_.push(Entry{now_ + period, next_seq_++,
                      [tick] { (*tick)(); }, cancelled});
  };
  if (phase.is_negative()) phase = Duration::zero();
  queue_.push(Entry{now_ + phase, next_seq_++, [tick] { (*tick)(); }, cancelled});
  return handle;
}

bool Simulator::pop_next(Entry& out) {
  while (!queue_.empty()) {
    // priority_queue::top is const; the Entry is copied cheaply except for
    // the callback, so move it out via const_cast — safe because we pop
    // immediately and never touch the moved-from top again.
    Entry& top = const_cast<Entry&>(queue_.top());
    if (*top.cancelled) {
      queue_.pop();
      continue;
    }
    out = std::move(top);
    queue_.pop();
    return true;
  }
  return false;
}

bool Simulator::step() {
  Entry e;
  if (!pop_next(e)) return false;
  now_ = e.at;
  ++fired_;
  // Note: the cancelled flag is NOT set here — periodic events share one
  // flag across repetitions. One-shot handles expire naturally when the
  // Entry (the last shared_ptr owner) is destroyed after fn() returns.
  e.fn();
  return true;
}

std::uint64_t Simulator::run() {
  stop_requested_ = false;
  std::uint64_t n = 0;
  while (!stop_requested_ && step()) ++n;
  return n;
}

std::uint64_t Simulator::run_until(TimePoint deadline) {
  stop_requested_ = false;
  std::uint64_t n = 0;
  Entry e;
  while (!stop_requested_) {
    // Peek: do not advance past the deadline.
    if (!pop_next(e)) break;
    if (e.at > deadline) {
      // Push back; it stays pending for a later run.
      queue_.push(std::move(e));
      break;
    }
    now_ = e.at;
    ++fired_;
    e.fn();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

std::size_t Simulator::pending_events() const { return queue_.size(); }

}  // namespace aria::sim
