// Online invariant auditor (docs/audit.md).
//
// The AuditCollector is an observer-seam decorator plus a network
// MessageTap, exactly like trace::TraceCollector: it wraps the run's
// existing observer chain and forwards every callback unchanged, so
// attaching the auditor never alters what the tracker — and therefore
// every golden metric — sees. While forwarding it checks protocol
// invariants *online* (duplicate completions, delegations without a
// matching offer, malformed region digests, recovery-budget overruns) and
// records any violation; finish() runs the end-of-run checks that need the
// horizon (unresolved cross-region delegations).
//
// A disabled audit plane constructs nothing: no collector, no decorated
// observer, no tap — zero cost and byte-identical output.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "core/observer.hpp"
#include "sim/network.hpp"

namespace aria::audit {

struct AuditConfig {
  bool enabled{false};
  /// Violations stored verbatim; the count keeps going past this cap so a
  /// pathological run cannot blow up memory on violation records.
  std::size_t max_recorded{64};
  /// A cross-region delegation still unresolved this close to the horizon
  /// is in-flight at shutdown, not stranded — no violation.
  Duration delegation_grace{Duration::minutes(10)};
};

/// Ground truth the engine hands the auditor at construction; everything
/// the digest-conservation checks compare wire claims against.
struct AuditContext {
  /// Upper bound on grid size (initial nodes plus any expansion target).
  std::size_t node_count{0};
  /// Resolved region count R; 0 when the hierarchy plane is off (digest
  /// checks are then skipped — no REGION_DIGEST can legitimately appear).
  std::uint32_t region_count{0};
  /// AriaConfig::failsafe_max_recoveries (0 = failsafe off; budget check
  /// skipped).
  std::size_t failsafe_max_recoveries{0};
  /// DefenseParams::hedge_budget when the defense plane is on; caps the
  /// hedged ASSIGNs any one job may carry on the wire. 0 = hedging off, so
  /// any hedge-flagged delegation is itself a violation.
  std::size_t hedge_budget{0};
  /// DefenseParams::reputation_alpha when the defense plane is on; one
  /// reputation update may move a score by at most this much. 0 = the
  /// reputation checks are skipped (defense off).
  double reputation_alpha{0.0};
  /// DefenseParams::initial_reputation — the pre-first-observation score
  /// the movement bound measures the first update against.
  double reputation_initial{1.0};
  /// Designated-adversary predicate (FaultPlane::adversary_role). Digest
  /// violations whose originator is an *expected* adversary are
  /// re-attributed to an informational counter instead of failing the run —
  /// the injection working as configured is not a protocol bug, while the
  /// same lie from an honest node still is.
  std::function<bool(NodeId)> expected_adversary{};
};

/// One invariant violation. `kind` is a stable machine-readable tag (the
/// sweep reports aggregate on it); `detail` is for humans.
struct Violation {
  std::string kind;
  std::string detail;
  TimePoint at{};
};

class AuditCollector final : public proto::ProtocolObserver,
                             public sim::MessageTap {
 public:
  /// `next` (may be null) receives every observer callback unchanged,
  /// before the invariant checks run.
  AuditCollector(const AuditConfig& config, AuditContext ctx,
                 proto::ProtocolObserver* next = nullptr);

  /// The auditor replaces any previous tap (it must see *every* message,
  /// sample_every == 1); `tap` gets the stream the displaced tap would
  /// have seen, re-sampled with the same counter arithmetic the Network
  /// uses so e.g. trace output stays byte-identical with auditing on.
  void set_forward_tap(sim::MessageTap* tap, std::uint64_t sample_every);

  /// End-of-run checks (unresolved delegations). Call once, at the horizon.
  void finish(TimePoint horizon);

  /// Total violations observed (not capped by max_recorded).
  std::uint64_t violation_count() const { return violation_count_; }
  /// The first max_recorded violations, in detection order.
  const std::vector<Violation>& violations() const { return violations_; }
  /// Violation totals per kind, name-sorted (stable report order).
  const std::map<std::string, std::uint64_t>& by_kind() const {
    return by_kind_;
  }
  /// Digest violations re-attributed to designated adversaries (the
  /// injection, not a protocol bug). Informational — not in
  /// violation_count().
  std::uint64_t expected_adversary_digests() const {
    return expected_adversary_digests_;
  }

  // --- proto::ProtocolObserver ------------------------------------------
  void on_submitted(const grid::JobSpec& job, NodeId initiator,
                    TimePoint at) override;
  void on_request_retry(const JobId& id, std::size_t attempt,
                        TimePoint at) override;
  void on_unschedulable(const JobId& id, TimePoint at) override;
  void on_bid_sent(const JobId& id, NodeId bidder, NodeId to, double cost,
                   TimePoint at) override;
  void on_bid_received(const JobId& id, NodeId collector, NodeId bidder,
                       double cost, TimePoint at) override;
  void on_delegated(const JobId& id, NodeId from, NodeId to, TimePoint at,
                    bool reschedule) override;
  void on_assigned(const grid::JobSpec& job, NodeId node, TimePoint at,
                   bool reschedule) override;
  void on_started(const JobId& id, NodeId node, TimePoint at) override;
  void on_completed(const JobId& id, NodeId node, TimePoint at,
                    Duration art) override;
  void on_recovery(const JobId& id, std::size_t attempt,
                   TimePoint at) override;
  void on_abandoned(const JobId& id, TimePoint at) override;
  void on_shed(const grid::JobSpec& job, NodeId node, TimePoint at) override;
  void on_rejected(const JobId& id, NodeId node, TimePoint at) override;
  void on_region_delegated(const JobId& id, NodeId aggregator,
                           std::uint32_t from_region, std::uint32_t to_region,
                           TimePoint at) override;
  void on_digest_clamped(NodeId owner, NodeId from, std::uint32_t region,
                         std::uint64_t epoch, TimePoint at) override;
  void on_reputation(NodeId owner, NodeId subject, double score,
                     TimePoint at) override;

  // --- sim::MessageTap ---------------------------------------------------
  void on_message(NodeId from, NodeId to, const sim::Message& message,
                  TimePoint sent, TimePoint deliver, bool faulted) override;

 private:
  /// Per-job invariant state, keyed by JobId.
  struct JobAudit {
    bool terminal{false};       // completed / unschedulable / abandoned
    std::size_t completions{0};
    std::size_t recoveries{0};  // recovery events seen (watchdog + ACK paths)
    std::size_t hedges{0};      // distinct hedged delegations on the wire
    /// Hedge assign_ids already counted (ACK retransmissions reuse the id,
    /// so retries never double-bill the budget).
    std::vector<Uuid> hedge_ids;
    /// Every (collector, bidder) offer pair seen; a delegation from → to
    /// must match one (ASSIGN-without-ACCEPT check).
    std::vector<std::pair<NodeId, NodeId>> offers;
    /// Outstanding cross-region delegation, cleared by any later event for
    /// the job (offer, retry, recovery, terminal state).
    std::optional<TimePoint> pending_delegation{};
    TimePoint last_event{};
  };

  JobAudit& job(const JobId& id) { return jobs_[id]; }
  /// Any observer event for `id`: bumps last_event and resolves an
  /// outstanding cross-region delegation.
  JobAudit& touch(const JobId& id, TimePoint at);
  void violate(std::string kind, std::string detail, TimePoint at);
  bool offer_known(const JobAudit& j, NodeId collector, NodeId bidder) const;

  AuditConfig config_;
  AuditContext ctx_;
  proto::ProtocolObserver* next_;

  sim::MessageTap* fwd_tap_{nullptr};
  std::uint64_t fwd_every_{1};
  /// Mirrors sim::Network's tap counter arithmetic: the forwarded stream
  /// must equal what the displaced tap would have received directly.
  std::uint64_t fwd_counter_{0};

  std::unordered_map<JobId, JobAudit> jobs_;
  /// Last digest epoch seen per aggregator (monotonicity check; duplicated
  /// deliveries repeat an epoch, so the check is non-strict).
  std::unordered_map<NodeId, std::uint64_t> digest_epochs_;
  /// (originator, region, epoch) keys of digests that failed a conservation
  /// check on the wire. The tap fires at send, the defense clamp at
  /// delivery, so every *justified* on_digest_clamped finds its key here —
  /// a clamp without one rejected an honest digest.
  std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint64_t>>
      bad_digests_;
  /// Last reputation score per (owner, subject) pair, packed owner<<32 |
  /// subject; the per-update movement bound is checked against it.
  std::unordered_map<std::uint64_t, double> rep_scores_;
  std::uint64_t expected_adversary_digests_{0};

  std::uint64_t violation_count_{0};
  std::vector<Violation> violations_;
  std::map<std::string, std::uint64_t> by_kind_;
  bool finished_{false};
};

}  // namespace aria::audit
