#include "audit/auditor.hpp"

#include <algorithm>

#include "core/messages.hpp"

namespace aria::audit {

namespace {

/// Population of region `r` under the arithmetic partition n % R (the
/// overlay's region_of): node_count / R rounded up for the low regions.
std::size_t region_population(std::size_t node_count, std::uint32_t regions,
                              std::uint32_t r) {
  if (regions == 0) return 0;
  return node_count / regions + (r < node_count % regions ? 1 : 0);
}

}  // namespace

AuditCollector::AuditCollector(const AuditConfig& config, AuditContext ctx,
                               proto::ProtocolObserver* next)
    : config_{config}, ctx_{ctx}, next_{next} {}

void AuditCollector::set_forward_tap(sim::MessageTap* tap,
                                     std::uint64_t sample_every) {
  fwd_tap_ = tap;
  fwd_every_ = sample_every == 0 ? 1 : sample_every;
  fwd_counter_ = 0;
}

void AuditCollector::violate(std::string kind, std::string detail,
                             TimePoint at) {
  ++violation_count_;
  ++by_kind_[kind];
  if (violations_.size() < config_.max_recorded) {
    violations_.push_back(
        Violation{std::move(kind), std::move(detail), at});
  }
}

AuditCollector::JobAudit& AuditCollector::touch(const JobId& id,
                                                TimePoint at) {
  JobAudit& j = jobs_[id];
  j.last_event = at;
  j.pending_delegation.reset();  // the escalation produced *some* signal
  return j;
}

bool AuditCollector::offer_known(const JobAudit& j, NodeId collector,
                                 NodeId bidder) const {
  return std::find(j.offers.begin(), j.offers.end(),
                   std::make_pair(collector, bidder)) != j.offers.end();
}

// --- observer forwarding + online checks -----------------------------------

void AuditCollector::on_submitted(const grid::JobSpec& job, NodeId initiator,
                                  TimePoint at) {
  if (next_) next_->on_submitted(job, initiator, at);
  touch(job.id, at);
}

void AuditCollector::on_request_retry(const JobId& id, std::size_t attempt,
                                      TimePoint at) {
  if (next_) next_->on_request_retry(id, attempt, at);
  touch(id, at);
}

void AuditCollector::on_unschedulable(const JobId& id, TimePoint at) {
  if (next_) next_->on_unschedulable(id, at);
  touch(id, at).terminal = true;
}

void AuditCollector::on_bid_sent(const JobId& id, NodeId bidder, NodeId to,
                                 double cost, TimePoint at) {
  if (next_) next_->on_bid_sent(id, bidder, to, cost, at);
  touch(id, at);
}

void AuditCollector::on_bid_received(const JobId& id, NodeId collector,
                                     NodeId bidder, double cost,
                                     TimePoint at) {
  if (next_) next_->on_bid_received(id, collector, bidder, cost, at);
  JobAudit& j = touch(id, at);
  if (!offer_known(j, collector, bidder)) {
    j.offers.emplace_back(collector, bidder);
  }
}

void AuditCollector::on_delegated(const JobId& id, NodeId from, NodeId to,
                                  TimePoint at, bool reschedule) {
  if (next_) next_->on_delegated(id, from, to, at, reschedule);
  JobAudit& j = touch(id, at);
  // No ASSIGN without a matching ACCEPT: the delegator must have collected
  // an offer from the chosen assignee in some earlier round. Crashes wipe a
  // node's round state but not the audit record, so the check is a strict
  // superset of what any live delegator could legitimately know.
  if (!offer_known(j, from, to)) {
    violate("assign-without-accept",
            "job " + id.to_string() + ": " + from.to_string() +
                " delegated to " + to.to_string() +
                " which never offered to it",
            at);
  }
}

void AuditCollector::on_assigned(const grid::JobSpec& job, NodeId node,
                                 TimePoint at, bool reschedule) {
  if (next_) next_->on_assigned(job, node, at, reschedule);
  touch(job.id, at);
}

void AuditCollector::on_started(const JobId& id, NodeId node, TimePoint at) {
  if (next_) next_->on_started(id, node, at);
  touch(id, at);
}

void AuditCollector::on_completed(const JobId& id, NodeId node, TimePoint at,
                                  Duration art) {
  if (next_) next_->on_completed(id, node, at, art);
  JobAudit& j = touch(id, at);
  // Exactly-once modulo recovery: each failsafe recovery (watchdog re-flood
  // or ASSIGN_ACK rediscovery) licenses at most one extra execution, and
  // the watchdog may fire *before* the original run finishes — so the
  // orderings are free but the budget is not: completions <= 1 + recoveries
  // always. A completion past that budget is a protocol bug.
  if (j.completions > 0 && j.completions > j.recoveries) {
    violate("duplicate-completion",
            "job " + id.to_string() + " completed again on " +
                node.to_string() + " (" +
                std::to_string(j.completions + 1) + " completions, " +
                std::to_string(j.recoveries) + " recoveries)",
            at);
  }
  ++j.completions;
  j.terminal = true;
}

void AuditCollector::on_recovery(const JobId& id, std::size_t attempt,
                                 TimePoint at) {
  if (next_) next_->on_recovery(id, attempt, at);
  JobAudit& j = touch(id, at);
  ++j.recoveries;
  // Budget: watchdog recovery attempts are 1-based and abandon past
  // failsafe_max_recoveries, so a larger attempt number must never appear.
  if (ctx_.failsafe_max_recoveries > 0 &&
      attempt > ctx_.failsafe_max_recoveries) {
    violate("recovery-budget-exceeded",
            "job " + id.to_string() + " recovery attempt " +
                std::to_string(attempt) + " > budget " +
                std::to_string(ctx_.failsafe_max_recoveries),
            at);
  }
}

void AuditCollector::on_abandoned(const JobId& id, TimePoint at) {
  if (next_) next_->on_abandoned(id, at);
  touch(id, at).terminal = true;
}

void AuditCollector::on_shed(const grid::JobSpec& job, NodeId node,
                             TimePoint at) {
  if (next_) next_->on_shed(job, node, at);
  touch(job.id, at);
}

void AuditCollector::on_rejected(const JobId& id, NodeId node, TimePoint at) {
  if (next_) next_->on_rejected(id, node, at);
  touch(id, at);
}

void AuditCollector::on_region_delegated(const JobId& id, NodeId aggregator,
                                         std::uint32_t from_region,
                                         std::uint32_t to_region,
                                         TimePoint at) {
  if (next_) next_->on_region_delegated(id, aggregator, from_region,
                                        to_region, at);
  JobAudit& j = touch(id, at);
  j.pending_delegation = at;  // must produce some later event for the job
  if (ctx_.region_count > 0 &&
      (from_region >= ctx_.region_count || to_region >= ctx_.region_count)) {
    violate("delegation-bad-region",
            "job " + id.to_string() + ": delegation " +
                std::to_string(from_region) + " -> " +
                std::to_string(to_region) + " outside R=" +
                std::to_string(ctx_.region_count),
            at);
  }
}

// --- wire tap ---------------------------------------------------------------

void AuditCollector::on_message(NodeId from, NodeId to,
                                const sim::Message& message, TimePoint sent,
                                TimePoint deliver, bool faulted) {
  // Digest conservation against ground truth: a REGION_DIGEST may summarize
  // fewer members than the region holds (staleness ages reporters out) but
  // never more, idle capacity can never exceed the member count, backlogs
  // are non-negative, and epochs never run backwards per aggregator (the
  // fault plane may *duplicate* a digest, so equality is legitimate).
  if (const auto* rd = dynamic_cast<const proto::RegionDigestMsg*>(&message)) {
    const overlay::RegionDigest& d = rd->digest;
    if (ctx_.region_count > 0 && d.region >= ctx_.region_count) {
      violate("digest-bad-region",
              from.to_string() + " digests region " +
                  std::to_string(d.region) + " outside R=" +
                  std::to_string(ctx_.region_count),
              sent);
    } else if (ctx_.region_count > 0 &&
               d.members >
                   region_population(ctx_.node_count, ctx_.region_count,
                                     d.region)) {
      violate("digest-overcount",
              from.to_string() + " claims " + std::to_string(d.members) +
                  " members in region " + std::to_string(d.region) +
                  " (population " +
                  std::to_string(region_population(
                      ctx_.node_count, ctx_.region_count, d.region)) +
                  ")",
              sent);
    }
    if (d.idle > d.members) {
      violate("digest-idle-overcount",
              from.to_string() + ": idle " + std::to_string(d.idle) + " > " +
                  std::to_string(d.members) + " members",
              sent);
    }
    if (d.backlog_seconds < 0.0) {
      violate("digest-negative-backlog",
              from.to_string() + ": backlog " +
                  std::to_string(d.backlog_seconds) + "s",
              sent);
    }
    const auto it = digest_epochs_.find(rd->from);
    if (it != digest_epochs_.end() && d.epoch < it->second) {
      violate("digest-epoch-regression",
              rd->from.to_string() + ": epoch " + std::to_string(d.epoch) +
                  " after " + std::to_string(it->second),
              sent);
    } else {
      digest_epochs_[rd->from] = d.epoch;
    }
  }
  // Re-sample for the displaced tap with the Network's own arithmetic, so
  // e.g. the trace plane records exactly the messages it would have seen
  // had the auditor not been in between.
  if (fwd_tap_ != nullptr && fwd_counter_++ % fwd_every_ == 0) {
    fwd_tap_->on_message(from, to, message, sent, deliver, faulted);
  }
}

// --- end-of-run checks ------------------------------------------------------

void AuditCollector::finish(TimePoint horizon) {
  if (finished_) return;
  finished_ = true;
  // Every cross-region delegation must resolve: after an aggregator
  // forwarded a job, *something* must happen to that job — an offer, a
  // retry, a recovery, a terminal state. A job whose last trace is the
  // delegation itself fell into a void (unless the run ended right away, or
  // the job did terminate through a path the delegation raced with).
  for (const auto& [id, j] : jobs_) {
    if (!j.pending_delegation || j.terminal) continue;
    if (*j.pending_delegation + config_.delegation_grace > horizon) continue;
    violate("unresolved-delegation",
            "job " + id.to_string() +
                ": nothing happened after its cross-region delegation",
            *j.pending_delegation);
  }
}

}  // namespace aria::audit
