#include "audit/auditor.hpp"

#include <algorithm>
#include <cmath>

#include "core/messages.hpp"

namespace aria::audit {

namespace {

/// Population of region `r` under the arithmetic partition n % R (the
/// overlay's region_of): node_count / R rounded up for the low regions.
std::size_t region_population(std::size_t node_count, std::uint32_t regions,
                              std::uint32_t r) {
  if (regions == 0) return 0;
  return node_count / regions + (r < node_count % regions ? 1 : 0);
}

}  // namespace

AuditCollector::AuditCollector(const AuditConfig& config, AuditContext ctx,
                               proto::ProtocolObserver* next)
    : config_{config}, ctx_{ctx}, next_{next} {}

void AuditCollector::set_forward_tap(sim::MessageTap* tap,
                                     std::uint64_t sample_every) {
  fwd_tap_ = tap;
  fwd_every_ = sample_every == 0 ? 1 : sample_every;
  fwd_counter_ = 0;
}

void AuditCollector::violate(std::string kind, std::string detail,
                             TimePoint at) {
  ++violation_count_;
  ++by_kind_[kind];
  if (violations_.size() < config_.max_recorded) {
    violations_.push_back(
        Violation{std::move(kind), std::move(detail), at});
  }
}

AuditCollector::JobAudit& AuditCollector::touch(const JobId& id,
                                                TimePoint at) {
  JobAudit& j = jobs_[id];
  j.last_event = at;
  j.pending_delegation.reset();  // the escalation produced *some* signal
  return j;
}

bool AuditCollector::offer_known(const JobAudit& j, NodeId collector,
                                 NodeId bidder) const {
  return std::find(j.offers.begin(), j.offers.end(),
                   std::make_pair(collector, bidder)) != j.offers.end();
}

// --- observer forwarding + online checks -----------------------------------

void AuditCollector::on_submitted(const grid::JobSpec& job, NodeId initiator,
                                  TimePoint at) {
  if (next_) next_->on_submitted(job, initiator, at);
  touch(job.id, at);
}

void AuditCollector::on_request_retry(const JobId& id, std::size_t attempt,
                                      TimePoint at) {
  if (next_) next_->on_request_retry(id, attempt, at);
  touch(id, at);
}

void AuditCollector::on_unschedulable(const JobId& id, TimePoint at) {
  if (next_) next_->on_unschedulable(id, at);
  touch(id, at).terminal = true;
}

void AuditCollector::on_bid_sent(const JobId& id, NodeId bidder, NodeId to,
                                 double cost, TimePoint at) {
  if (next_) next_->on_bid_sent(id, bidder, to, cost, at);
  touch(id, at);
}

void AuditCollector::on_bid_received(const JobId& id, NodeId collector,
                                     NodeId bidder, double cost,
                                     TimePoint at) {
  if (next_) next_->on_bid_received(id, collector, bidder, cost, at);
  JobAudit& j = touch(id, at);
  if (!offer_known(j, collector, bidder)) {
    j.offers.emplace_back(collector, bidder);
  }
}

void AuditCollector::on_delegated(const JobId& id, NodeId from, NodeId to,
                                  TimePoint at, bool reschedule) {
  if (next_) next_->on_delegated(id, from, to, at, reschedule);
  JobAudit& j = touch(id, at);
  // No ASSIGN without a matching ACCEPT: the delegator must have collected
  // an offer from the chosen assignee in some earlier round. Crashes wipe a
  // node's round state but not the audit record, so the check is a strict
  // superset of what any live delegator could legitimately know.
  if (!offer_known(j, from, to)) {
    violate("assign-without-accept",
            "job " + id.to_string() + ": " + from.to_string() +
                " delegated to " + to.to_string() +
                " which never offered to it",
            at);
  }
}

void AuditCollector::on_assigned(const grid::JobSpec& job, NodeId node,
                                 TimePoint at, bool reschedule) {
  if (next_) next_->on_assigned(job, node, at, reschedule);
  touch(job.id, at);
}

void AuditCollector::on_started(const JobId& id, NodeId node, TimePoint at) {
  if (next_) next_->on_started(id, node, at);
  touch(id, at);
}

void AuditCollector::on_completed(const JobId& id, NodeId node, TimePoint at,
                                  Duration art) {
  if (next_) next_->on_completed(id, node, at, art);
  JobAudit& j = touch(id, at);
  // Exactly-once modulo recovery: each failsafe recovery (watchdog re-flood
  // or ASSIGN_ACK rediscovery) licenses at most one extra execution, each
  // hedged re-dispatch (the revoked straggler may still finish) one more,
  // and the watchdog may fire *before* the original run finishes — so the
  // orderings are free but the budget is not: completions <= 1 + recoveries
  // + hedges always. A completion past that budget is a protocol bug.
  if (j.completions > 0 && j.completions > j.recoveries + j.hedges) {
    violate("duplicate-completion",
            "job " + id.to_string() + " completed again on " +
                node.to_string() + " (" +
                std::to_string(j.completions + 1) + " completions, " +
                std::to_string(j.recoveries) + " recoveries, " +
                std::to_string(j.hedges) + " hedges)",
            at);
  }
  ++j.completions;
  j.terminal = true;
}

void AuditCollector::on_recovery(const JobId& id, std::size_t attempt,
                                 TimePoint at) {
  if (next_) next_->on_recovery(id, attempt, at);
  JobAudit& j = touch(id, at);
  ++j.recoveries;
  // Budget: watchdog recovery attempts are 1-based and abandon past
  // failsafe_max_recoveries, so a larger attempt number must never appear.
  if (ctx_.failsafe_max_recoveries > 0 &&
      attempt > ctx_.failsafe_max_recoveries) {
    violate("recovery-budget-exceeded",
            "job " + id.to_string() + " recovery attempt " +
                std::to_string(attempt) + " > budget " +
                std::to_string(ctx_.failsafe_max_recoveries),
            at);
  }
}

void AuditCollector::on_abandoned(const JobId& id, TimePoint at) {
  if (next_) next_->on_abandoned(id, at);
  touch(id, at).terminal = true;
}

void AuditCollector::on_shed(const grid::JobSpec& job, NodeId node,
                             TimePoint at) {
  if (next_) next_->on_shed(job, node, at);
  touch(job.id, at);
}

void AuditCollector::on_rejected(const JobId& id, NodeId node, TimePoint at) {
  if (next_) next_->on_rejected(id, node, at);
  touch(id, at);
}

void AuditCollector::on_region_delegated(const JobId& id, NodeId aggregator,
                                         std::uint32_t from_region,
                                         std::uint32_t to_region,
                                         TimePoint at) {
  if (next_) next_->on_region_delegated(id, aggregator, from_region,
                                        to_region, at);
  JobAudit& j = touch(id, at);
  j.pending_delegation = at;  // must produce some later event for the job
  if (ctx_.region_count > 0 &&
      (from_region >= ctx_.region_count || to_region >= ctx_.region_count)) {
    violate("delegation-bad-region",
            "job " + id.to_string() + ": delegation " +
                std::to_string(from_region) + " -> " +
                std::to_string(to_region) + " outside R=" +
                std::to_string(ctx_.region_count),
            at);
  }
}

void AuditCollector::on_digest_clamped(NodeId owner, NodeId from,
                                       std::uint32_t region,
                                       std::uint64_t epoch, TimePoint at) {
  if (next_) next_->on_digest_clamped(owner, from, region, epoch, at);
  // A clamp must be *justified*: the rejected digest's (originator, region,
  // epoch) must have failed a conservation check when it crossed the tap
  // (send precedes delivery, so the key is always recorded first). A clamp
  // with no matching lie threw away an honest aggregator's digest — the
  // defense harming the protocol it guards.
  if (bad_digests_.find({static_cast<std::uint32_t>(from.value()), region,
                         epoch}) == bad_digests_.end()) {
    violate("clamp-without-cause",
            owner.to_string() + " clamped a conserving digest from " +
                from.to_string() + " (region " + std::to_string(region) +
                ", epoch " + std::to_string(epoch) + ")",
            at);
  }
}

void AuditCollector::on_reputation(NodeId owner, NodeId subject, double score,
                                   TimePoint at) {
  if (next_) next_->on_reputation(owner, subject, score, at);
  if (ctx_.reputation_alpha <= 0.0) return;  // defense off: stream must be
                                             // empty anyway, nothing to bound
  constexpr double kEps = 1e-9;
  if (score < -kEps || score > 1.0 + kEps) {
    violate("reputation-out-of-range",
            owner.to_string() + " scored " + subject.to_string() + " at " +
                std::to_string(score),
            at);
  }
  // EWMA movement bound: one observation moves a score by at most
  // alpha * |outcome - score| <= alpha. A larger jump means the ledger is
  // folding something other than single clamped observations.
  const std::uint64_t key =
      (static_cast<std::uint64_t>(owner.value()) << 32) |
      static_cast<std::uint64_t>(subject.value());
  const auto it = rep_scores_.find(key);
  const double prev =
      it == rep_scores_.end() ? ctx_.reputation_initial : it->second;
  if (std::abs(score - prev) > ctx_.reputation_alpha + kEps) {
    violate("reputation-jump",
            owner.to_string() + " moved " + subject.to_string() + " from " +
                std::to_string(prev) + " to " + std::to_string(score) +
                " (bound " + std::to_string(ctx_.reputation_alpha) + ")",
            at);
  }
  rep_scores_[key] = score;
}

// --- wire tap ---------------------------------------------------------------

void AuditCollector::on_message(NodeId from, NodeId to,
                                const sim::Message& message, TimePoint sent,
                                TimePoint deliver, bool faulted) {
  // Digest conservation against ground truth: a REGION_DIGEST may summarize
  // fewer members than the region holds (staleness ages reporters out) but
  // never more, idle capacity can never exceed the member count, backlogs
  // are non-negative, and epochs never run backwards per aggregator (the
  // fault plane may *duplicate* a digest, so equality is legitimate).
  // Conservation failures from *designated* adversaries (the poison
  // injection doing its job) are re-attributed to an informational counter;
  // either way the (originator, region, epoch) key is remembered so the
  // defense clamp's rejections can be matched against real lies.
  if (const auto* rd = dynamic_cast<const proto::RegionDigestMsg*>(&message)) {
    const overlay::RegionDigest& d = rd->digest;
    bool bad = false;
    const bool expected =
        ctx_.expected_adversary && ctx_.expected_adversary(rd->from);
    const auto flag = [&](std::string kind, std::string detail) {
      bad = true;
      if (expected) {
        ++expected_adversary_digests_;
      } else {
        violate(std::move(kind), std::move(detail), sent);
      }
    };
    if (ctx_.region_count > 0 && d.region >= ctx_.region_count) {
      flag("digest-bad-region",
           from.to_string() + " digests region " + std::to_string(d.region) +
               " outside R=" + std::to_string(ctx_.region_count));
    } else if (ctx_.region_count > 0 &&
               d.members >
                   region_population(ctx_.node_count, ctx_.region_count,
                                     d.region)) {
      flag("digest-overcount",
           from.to_string() + " claims " + std::to_string(d.members) +
               " members in region " + std::to_string(d.region) +
               " (population " +
               std::to_string(region_population(
                   ctx_.node_count, ctx_.region_count, d.region)) +
               ")");
    }
    if (d.idle > d.members) {
      flag("digest-idle-overcount",
           from.to_string() + ": idle " + std::to_string(d.idle) + " > " +
               std::to_string(d.members) + " members");
    }
    if (d.backlog_seconds < 0.0) {
      flag("digest-negative-backlog",
           from.to_string() + ": backlog " +
               std::to_string(d.backlog_seconds) + "s");
    }
    if (bad) {
      bad_digests_.insert({static_cast<std::uint32_t>(rd->from.value()),
                           d.region, d.epoch});
    }
    const auto it = digest_epochs_.find(rd->from);
    if (it != digest_epochs_.end() && d.epoch < it->second) {
      violate("digest-epoch-regression",
              rd->from.to_string() + ": epoch " + std::to_string(d.epoch) +
                  " after " + std::to_string(it->second),
              sent);
    } else {
      digest_epochs_[rd->from] = d.epoch;
    }
  }
  // Hedge metering: every hedged delegation carries the flag on the wire,
  // and ACK retransmissions reuse the assign_id — so distinct ids per job
  // count dispatch decisions, compared against the per-job budget. A nil id
  // (hedging without acknowledged delegation) cannot be deduplicated, so
  // each send counts; the engine always arms assign_ack with the defenses.
  if (const auto* as = dynamic_cast<const proto::AssignMsg*>(&message)) {
    if (as->hedge) {
      JobAudit& j = job(as->job.id);
      bool fresh = as->assign_id.is_nil();
      if (!fresh && std::find(j.hedge_ids.begin(), j.hedge_ids.end(),
                              as->assign_id) == j.hedge_ids.end()) {
        j.hedge_ids.push_back(as->assign_id);
        fresh = true;
      }
      if (fresh) {
        ++j.hedges;
        if (j.hedges > ctx_.hedge_budget) {
          violate("hedge-budget-exceeded",
                  "job " + as->job.id.to_string() + ": hedge " +
                      std::to_string(j.hedges) + " from " + from.to_string() +
                      " exceeds budget " + std::to_string(ctx_.hedge_budget),
                  sent);
        }
      }
    }
  }
  // Re-sample for the displaced tap with the Network's own arithmetic, so
  // e.g. the trace plane records exactly the messages it would have seen
  // had the auditor not been in between.
  if (fwd_tap_ != nullptr && fwd_counter_++ % fwd_every_ == 0) {
    fwd_tap_->on_message(from, to, message, sent, deliver, faulted);
  }
}

// --- end-of-run checks ------------------------------------------------------

void AuditCollector::finish(TimePoint horizon) {
  if (finished_) return;
  finished_ = true;
  // Every cross-region delegation must resolve: after an aggregator
  // forwarded a job, *something* must happen to that job — an offer, a
  // retry, a recovery, a terminal state. A job whose last trace is the
  // delegation itself fell into a void (unless the run ended right away, or
  // the job did terminate through a path the delegation raced with).
  for (const auto& [id, j] : jobs_) {
    if (!j.pending_delegation || j.terminal) continue;
    if (*j.pending_delegation + config_.delegation_grace > horizon) continue;
    violate("unresolved-delegation",
            "job " + id.to_string() +
                ": nothing happened after its cross-region delegation",
            *j.pending_delegation);
  }
}

}  // namespace aria::audit
