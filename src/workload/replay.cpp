#include "workload/replay.hpp"

#include <algorithm>

namespace aria::workload {

void RecordingObserver::on_submitted(const grid::JobSpec& job,
                                     NodeId initiator, TimePoint at) {
  record(at, Submitted{job, initiator});
}

void RecordingObserver::on_request_retry(const JobId& id, std::size_t attempt,
                                         TimePoint at) {
  record(at, RequestRetry{id, attempt});
}

void RecordingObserver::on_unschedulable(const JobId& id, TimePoint at) {
  record(at, Unschedulable{id});
}

void RecordingObserver::on_bid_sent(const JobId& id, NodeId bidder, NodeId to,
                                    double cost, TimePoint at) {
  record(at, BidSent{id, bidder, to, cost});
}

void RecordingObserver::on_bid_received(const JobId& id, NodeId collector,
                                        NodeId bidder, double cost,
                                        TimePoint at) {
  record(at, BidReceived{id, collector, bidder, cost});
}

void RecordingObserver::on_delegated(const JobId& id, NodeId from, NodeId to,
                                     TimePoint at, bool reschedule) {
  record(at, Delegated{id, from, to, reschedule});
}

void RecordingObserver::on_assigned(const grid::JobSpec& job, NodeId node,
                                    TimePoint at, bool reschedule) {
  record(at, Assigned{job, node, reschedule});
}

void RecordingObserver::on_started(const JobId& id, NodeId node,
                                   TimePoint at) {
  record(at, Started{id, node});
}

void RecordingObserver::on_completed(const JobId& id, NodeId node,
                                     TimePoint at, Duration art) {
  record(at, Completed{id, node, art});
}

void RecordingObserver::on_recovery(const JobId& id, std::size_t attempt,
                                    TimePoint at) {
  record(at, Recovery{id, attempt});
}

void RecordingObserver::on_abandoned(const JobId& id, TimePoint at) {
  record(at, Abandoned{id});
}

void RecordingObserver::on_shed(const grid::JobSpec& job, NodeId node,
                                TimePoint at) {
  record(at, Shed{job, node});
}

void RecordingObserver::on_rejected(const JobId& id, NodeId node,
                                    TimePoint at) {
  record(at, Rejected{id, node});
}

void RecordingObserver::on_region_delegated(const JobId& id, NodeId aggregator,
                                            std::uint32_t from_region,
                                            std::uint32_t to_region,
                                            TimePoint at) {
  record(at, RegionDelegated{id, aggregator, from_region, to_region});
}

void RecordingObserver::on_digest_clamped(NodeId owner, NodeId from,
                                          std::uint32_t region,
                                          std::uint64_t epoch, TimePoint at) {
  record(at, DigestClamped{owner, from, region, epoch});
}

void RecordingObserver::on_reputation(NodeId owner, NodeId subject,
                                      double score, TimePoint at) {
  record(at, Reputation{owner, subject, score});
}

void RecordingObserver::replay(
    const std::vector<const RecordingObserver*>& shards,
    proto::ProtocolObserver& target) {
  struct Ref {
    TimePoint at;
    std::uint64_t engine_seq;
    std::size_t shard;
    std::size_t index;
  };
  std::vector<Ref> order;
  std::size_t total = 0;
  for (const RecordingObserver* o : shards) total += o->entries_.size();
  order.reserve(total);
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const auto& entries = shards[s]->entries_;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      order.push_back(Ref{entries[i].at, entries[i].engine_seq, s, i});
    }
  }
  std::sort(order.begin(), order.end(), [](const Ref& a, const Ref& b) {
    if (a.at != b.at) return a.at < b.at;
    // Engine-phase entries (finite seq) precede window entries and carry
    // an exact global order; window ties fall back to (shard, local index).
    if (a.engine_seq != b.engine_seq) return a.engine_seq < b.engine_seq;
    if (a.shard != b.shard) return a.shard < b.shard;
    return a.index < b.index;
  });

  for (const Ref& ref : order) {
    const Entry& e = shards[ref.shard]->entries_[ref.index];
    const TimePoint at = e.at;
    std::visit(
        [&](const auto& p) {
          using P = std::decay_t<decltype(p)>;
          if constexpr (std::is_same_v<P, Submitted>) {
            target.on_submitted(p.job, p.initiator, at);
          } else if constexpr (std::is_same_v<P, RequestRetry>) {
            target.on_request_retry(p.id, p.attempt, at);
          } else if constexpr (std::is_same_v<P, Unschedulable>) {
            target.on_unschedulable(p.id, at);
          } else if constexpr (std::is_same_v<P, BidSent>) {
            target.on_bid_sent(p.id, p.bidder, p.to, p.cost, at);
          } else if constexpr (std::is_same_v<P, BidReceived>) {
            target.on_bid_received(p.id, p.collector, p.bidder, p.cost, at);
          } else if constexpr (std::is_same_v<P, Delegated>) {
            target.on_delegated(p.id, p.from, p.to, at, p.resched);
          } else if constexpr (std::is_same_v<P, Assigned>) {
            target.on_assigned(p.job, p.node, at, p.resched);
          } else if constexpr (std::is_same_v<P, Started>) {
            target.on_started(p.id, p.node, at);
          } else if constexpr (std::is_same_v<P, Completed>) {
            target.on_completed(p.id, p.node, at, p.art);
          } else if constexpr (std::is_same_v<P, Recovery>) {
            target.on_recovery(p.id, p.attempt, at);
          } else if constexpr (std::is_same_v<P, Abandoned>) {
            target.on_abandoned(p.id, at);
          } else if constexpr (std::is_same_v<P, Shed>) {
            target.on_shed(p.job, p.node, at);
          } else if constexpr (std::is_same_v<P, Rejected>) {
            target.on_rejected(p.id, p.node, at);
          } else if constexpr (std::is_same_v<P, RegionDelegated>) {
            target.on_region_delegated(p.id, p.aggregator, p.from_region,
                                       p.to_region, at);
          } else if constexpr (std::is_same_v<P, DigestClamped>) {
            target.on_digest_clamped(p.owner, p.from, p.region, p.epoch, at);
          } else {
            static_assert(std::is_same_v<P, Reputation>);
            target.on_reputation(p.owner, p.subject, p.score, at);
          }
        },
        e.payload);
  }
}

}  // namespace aria::workload
