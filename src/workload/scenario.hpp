// Scenario definitions (paper Table II) and the registry of all 26.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "audit/auditor.hpp"
#include "common/time.hpp"
#include "core/config.hpp"
#include "grid/job.hpp"
#include "sched/scheduler.hpp"
#include "sim/fault.hpp"
#include "trace/record.hpp"
#include "workload/jobgen.hpp"

namespace aria::workload {

struct ScenarioConfig {
  std::string name;
  std::string description;

  // --- grid -------------------------------------------------------------
  std::size_t node_count{500};
  double bootstrap_avg_degree{4.0};
  /// Overlay construction/maintenance family. The paper evaluates on
  /// BLATANT-S; the alternatives implement its future work of comparing
  /// meta-scheduling across overlay types.
  enum class OverlayFamily { kBlatant, kRandomRegular, kSmallWorld };
  OverlayFamily overlay_family{OverlayFamily::kBlatant};
  /// Small-world rewiring probability (kSmallWorld only).
  double small_world_beta{0.1};

  /// Virtual organizations (paper §III-B's example execution constraint).
  /// With vo_count > 1, nodes are tagged "vo0".."vo<n-1>" round-robin and
  /// `vo_job_fraction` of the jobs is pinned to a random organization.
  std::size_t vo_count{1};
  double vo_job_fraction{0.0};
  /// Local schedulers are drawn uniformly from this set per node.
  std::vector<sched::SchedulerKind> scheduler_mix{
      sched::SchedulerKind::kFcfs, sched::SchedulerKind::kSjf};

  // --- protocol -----------------------------------------------------------
  proto::AriaConfig aria{};

  // --- workload -----------------------------------------------------------
  std::size_t job_count{1000};
  Duration submission_start{Duration::minutes(20)};
  Duration submission_interval{Duration::seconds(10)};
  JobGenParams jobs{};
  /// Request storm: compresses arrivals inside a window (docs/overload.md).
  /// Requires no RNG — the deterministic arrival schedule just changes — so
  /// storms compose with every scenario without perturbing its seed.
  std::optional<StormParams> storm{};
  grid::ErtErrorModel ert_error{};
  /// Regenerate requirements until >= 1 node in the built grid matches, so
  /// all 1000 jobs are schedulable (the paper's completion counts reach
  /// 1000; see DESIGN.md).
  bool feasible_jobs_only{true};

  // --- expanding network (Expanding / iExpanding) --------------------------
  struct Expansion {
    Duration start{Duration::minutes(83)};           // 1h23m
    Duration mean_interval{Duration::seconds(50)};
    std::size_t target_node_count{700};
    std::size_t join_contacts{2};
  };
  std::optional<Expansion> expansion{};

  // --- fault injection ------------------------------------------------------
  /// All-off by default; Table II scenarios never enable faults, so the
  /// baseline figures stay untouched. See docs/faults.md.
  sim::FaultConfig faults{};

  // --- tracing --------------------------------------------------------------
  /// Off by default: no collector is constructed and no tap attached, so
  /// default output stays byte-identical. See docs/tracing.md.
  trace::TraceConfig trace{};

  // --- invariant auditing ---------------------------------------------------
  /// Off by default, same zero-cost contract as tracing: no collector, no
  /// decorated observer, no tap. See docs/audit.md.
  audit::AuditConfig audit{};

  // --- simulation ----------------------------------------------------------
  Duration horizon{Duration::hours(41) + Duration::minutes(40)};
  Duration metrics_sample_period{Duration::seconds(60)};
  Duration maintenance_period{Duration::minutes(5)};

  // --- sharded execution (docs/pdes.md) -------------------------------------
  /// Number of PDES shards the node plane is split across. 1 (the default)
  /// is the plain single-threaded kernel; N > 1 runs one simulation on N
  /// worker threads under the conservative barrier-window executor, with a
  /// byte-for-byte determinism contract against the sequential run.
  std::size_t shards{1};
  /// Record the canonical send journal (works in both execution modes).
  /// Costs memory proportional to message count; used by the equivalence
  /// verifier to name the first divergent event on mismatch.
  bool pdes_journal{false};

  bool deadline_scenario() const { return jobs.deadline_slack_mean.has_value(); }
  TimePoint submission_end() const {
    return TimePoint::origin() + submission_start +
           submission_interval * static_cast<std::int64_t>(job_count - 1);
  }
};

/// All 26 scenarios of Table II, in the paper's order.
const std::vector<ScenarioConfig>& all_scenarios();

/// Lookup by Table II name (e.g. "iMixed"); throws std::out_of_range on
/// unknown names.
const ScenarioConfig& scenario_by_name(const std::string& name);

}  // namespace aria::workload
