#include "workload/jobgen.hpp"

#include "common/logging.hpp"
#include "grid/profile_gen.hpp"

namespace aria::workload {

namespace {
constexpr int kMaxFeasibilityTries = 200;
}

std::vector<Duration> arrival_offsets(std::size_t job_count, Duration interval,
                                      const std::optional<StormParams>& storm) {
  std::vector<Duration> offsets;
  offsets.reserve(job_count);
  if (!storm || storm->intensity <= 1.0 || storm->duration.is_zero() ||
      storm->duration.is_negative()) {
    for (std::size_t i = 0; i < job_count; ++i) {
      offsets.push_back(interval * static_cast<std::int64_t>(i));
    }
    return offsets;
  }
  const Duration storm_end = storm->start + storm->duration;
  const Duration storm_gap = interval.scaled(1.0 / storm->intensity);
  Duration at = Duration::zero();
  for (std::size_t i = 0; i < job_count; ++i) {
    offsets.push_back(at);
    at += (at >= storm->start && at < storm_end) ? storm_gap : interval;
  }
  return offsets;
}

Duration JobGenerator::draw_ert() {
  const double s = rng_.truncated_normal(
      params_.ert_mean.to_seconds(), params_.ert_stddev.to_seconds(),
      params_.ert_min.to_seconds(), params_.ert_max.to_seconds());
  return Duration::seconds_f(s);
}

Duration JobGenerator::draw_deadline_slack() {
  // Same truncated-normal shape as the ERT, linearly rescaled so its mean
  // equals the configured slack mean.
  const Duration mean = *params_.deadline_slack_mean;
  const double scale = mean.to_seconds() / params_.ert_mean.to_seconds();
  const double s = rng_.truncated_normal(
      params_.ert_mean.to_seconds(), params_.ert_stddev.to_seconds(),
      params_.ert_min.to_seconds(), params_.ert_max.to_seconds());
  return Duration::seconds_f(s * scale);
}

grid::JobSpec JobGenerator::next(
    TimePoint now,
    const std::function<bool(const grid::JobRequirements&)>& feasible) {
  grid::JobSpec spec;
  spec.id = JobId::generate(rng_);
  spec.requirements = grid::random_job_requirements(rng_);
  if (feasible) {
    int tries = 0;
    while (!feasible(spec.requirements) && ++tries < kMaxFeasibilityTries) {
      spec.requirements = grid::random_job_requirements(rng_);
    }
    if (tries >= kMaxFeasibilityTries) {
      ARIA_WARN << "job generator: no feasible requirements after "
                << kMaxFeasibilityTries << " tries; keeping the last draw";
    }
  }
  spec.ert = draw_ert();
  if (params_.deadline_slack_mean) {
    spec.deadline = now + spec.ert + draw_deadline_slack();
  }
  return spec;
}

}  // namespace aria::workload
