// Workload trace files (paper future work: "full-scale evaluation with
// real grid workload traces").
//
// Line format (whitespace-separated, '#' starts a comment):
//   <submit_offset_s> <ert_minutes> <arch> <os> <min_mem_gb> <min_disk_gb>
//   [deadline_slack_min]
//
// Architectures/OS use the paper's names (AMD64, POWER, IA-64, SPARC,
// MIPS, NEC / LINUX, SOLARIS, UNIX, WINDOWS, BSD).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "grid/job.hpp"

namespace aria::workload {

struct TraceJob {
  Duration submit_offset{};
  Duration ert{};
  grid::JobRequirements requirements{};
  std::optional<Duration> deadline_slack{};
};

struct TraceParseResult {
  std::vector<TraceJob> jobs;
  std::size_t malformed_lines{0};
};

std::optional<grid::Architecture> parse_architecture(const std::string& s);
std::optional<grid::OperatingSystem> parse_operating_system(
    const std::string& s);

/// Parses a trace stream; malformed lines are skipped and counted.
TraceParseResult parse_trace(std::istream& in);

/// Writes `jobs` in the trace format (round-trips through parse_trace).
void write_trace(std::ostream& out, const std::vector<TraceJob>& jobs,
                 const std::string& header_comment = {});

/// Materializes a trace entry into a submittable JobSpec. `rng` supplies
/// the UUID; `submitted_at` is the absolute submission instant (used to
/// place the deadline).
grid::JobSpec to_job_spec(const TraceJob& t, TimePoint submitted_at,
                          Rng& rng);

}  // namespace aria::workload
