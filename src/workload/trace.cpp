#include "workload/trace.hpp"

#include <istream>
#include <ostream>
#include <sstream>

namespace aria::workload {

std::optional<grid::Architecture> parse_architecture(const std::string& s) {
  using grid::Architecture;
  if (s == "AMD64") return Architecture::kAmd64;
  if (s == "POWER") return Architecture::kPower;
  if (s == "IA-64") return Architecture::kIa64;
  if (s == "SPARC") return Architecture::kSparc;
  if (s == "MIPS") return Architecture::kMips;
  if (s == "NEC") return Architecture::kNec;
  return std::nullopt;
}

std::optional<grid::OperatingSystem> parse_operating_system(
    const std::string& s) {
  using grid::OperatingSystem;
  if (s == "LINUX") return OperatingSystem::kLinux;
  if (s == "SOLARIS") return OperatingSystem::kSolaris;
  if (s == "UNIX") return OperatingSystem::kUnix;
  if (s == "WINDOWS") return OperatingSystem::kWindows;
  if (s == "BSD") return OperatingSystem::kBsd;
  return std::nullopt;
}

TraceParseResult parse_trace(std::istream& in) {
  TraceParseResult result;
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    std::istringstream fields{line};
    double offset_s = 0.0, ert_min = 0.0;
    std::string arch, os;
    int mem = 0, disk = 0;
    if (!(fields >> offset_s >> ert_min >> arch >> os >> mem >> disk)) {
      ++result.malformed_lines;
      continue;
    }
    const auto a = parse_architecture(arch);
    const auto o = parse_operating_system(os);
    if (!a || !o || ert_min <= 0.0 || offset_s < 0.0 || mem <= 0 || disk <= 0) {
      ++result.malformed_lines;
      continue;
    }
    TraceJob t;
    t.submit_offset = Duration::seconds_f(offset_s);
    t.ert = Duration::seconds_f(ert_min * 60.0);
    t.requirements.arch = *a;
    t.requirements.os = *o;
    t.requirements.min_memory_gb = mem;
    t.requirements.min_disk_gb = disk;
    double slack_min = 0.0;
    if (fields >> slack_min && slack_min > 0.0) {
      t.deadline_slack = Duration::seconds_f(slack_min * 60.0);
    }
    result.jobs.push_back(t);
  }
  return result;
}

void write_trace(std::ostream& out, const std::vector<TraceJob>& jobs,
                 const std::string& header_comment) {
  if (!header_comment.empty()) out << "# " << header_comment << "\n";
  out << "# offset_s ert_min arch os mem_gb disk_gb [deadline_slack_min]\n";
  for (const TraceJob& t : jobs) {
    out << t.submit_offset.to_seconds() << " " << t.ert.to_minutes() << " "
        << grid::to_string(t.requirements.arch) << " "
        << grid::to_string(t.requirements.os) << " "
        << t.requirements.min_memory_gb << " " << t.requirements.min_disk_gb;
    if (t.deadline_slack) out << " " << t.deadline_slack->to_minutes();
    out << "\n";
  }
}

grid::JobSpec to_job_spec(const TraceJob& t, TimePoint submitted_at,
                          Rng& rng) {
  grid::JobSpec j;
  j.id = JobId::generate(rng);
  j.requirements = t.requirements;
  j.ert = t.ert;
  if (t.deadline_slack) {
    j.deadline = submitted_at + t.ert + *t.deadline_slack;
  }
  return j;
}

}  // namespace aria::workload
