// Per-shard observer recording + deterministic replay (docs/pdes.md
// "Determinism contract").
//
// The JobTracker is shared mutable state the shard workers must not touch:
// its counters are unsynchronized, and — more subtly — its records map
// iterates in *insertion* order wherever RunResult sums floats over it, so
// even a perfectly locked tracker fed in thread-completion order would
// drift the derived metrics. Instead every shard gets a RecordingObserver
// that appends callback argument tuples to a private log, and after the run
// the logs are merged in canonical order and replayed into the real
// tracker on one thread.
//
// Canonical merge order: (timestamp, engine-phase entries first in their
// global serial order, then window entries by (shard, local index)).
// Engine-phase callbacks (submissions, churn side effects) run serially at
// executor barriers and carry a global sequence number, so their relative
// order is exact; window entries from one shard keep their local causal
// order, and cross-shard entries at the same microsecond are the accepted
// tie hazard the journal reporter exists for.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "common/uuid.hpp"
#include "core/observer.hpp"
#include "grid/job.hpp"
#include "sim/pdes/executor.hpp"

namespace aria::workload {

class RecordingObserver final : public proto::ProtocolObserver {
 public:
  /// `stamp` is the executor's engine-phase stamp; entries recorded while
  /// it is raised get a global serial number. Must outlive the observer.
  explicit RecordingObserver(sim::pdes::EngineStamp* stamp) : stamp_{stamp} {}

  // --- the 16 ProtocolObserver callbacks, recorded verbatim --------------
  void on_submitted(const grid::JobSpec& job, NodeId initiator,
                    TimePoint at) override;
  void on_request_retry(const JobId& id, std::size_t attempt,
                        TimePoint at) override;
  void on_unschedulable(const JobId& id, TimePoint at) override;
  void on_bid_sent(const JobId& id, NodeId bidder, NodeId to,
                   double cost, TimePoint at) override;
  void on_bid_received(const JobId& id, NodeId collector, NodeId bidder,
                       double cost, TimePoint at) override;
  void on_delegated(const JobId& id, NodeId from, NodeId to,
                    TimePoint at, bool reschedule) override;
  void on_assigned(const grid::JobSpec& job, NodeId node, TimePoint at,
                   bool reschedule) override;
  void on_started(const JobId& id, NodeId node, TimePoint at) override;
  void on_completed(const JobId& id, NodeId node, TimePoint at,
                    Duration art) override;
  void on_recovery(const JobId& id, std::size_t attempt,
                   TimePoint at) override;
  void on_abandoned(const JobId& id, TimePoint at) override;
  void on_shed(const grid::JobSpec& job, NodeId node, TimePoint at) override;
  void on_rejected(const JobId& id, NodeId node, TimePoint at) override;
  void on_region_delegated(const JobId& id, NodeId aggregator,
                           std::uint32_t from_region, std::uint32_t to_region,
                           TimePoint at) override;
  void on_digest_clamped(NodeId owner, NodeId from, std::uint32_t region,
                         std::uint64_t epoch, TimePoint at) override;
  void on_reputation(NodeId owner, NodeId subject, double score,
                     TimePoint at) override;

  std::size_t size() const { return entries_.size(); }

  /// Merges the observers' logs in canonical order and replays every
  /// callback into `target` on the calling thread.
  static void replay(const std::vector<const RecordingObserver*>& shards,
                     proto::ProtocolObserver& target);

 private:
  struct Submitted { grid::JobSpec job; NodeId initiator; };
  struct RequestRetry { JobId id; std::size_t attempt; };
  struct Unschedulable { JobId id; };
  struct BidSent { JobId id; NodeId bidder; NodeId to; double cost; };
  struct BidReceived {
    JobId id; NodeId collector; NodeId bidder; double cost;
  };
  struct Delegated { JobId id; NodeId from; NodeId to; bool resched; };
  struct Assigned { grid::JobSpec job; NodeId node; bool resched; };
  struct Started { JobId id; NodeId node; };
  struct Completed { JobId id; NodeId node; Duration art; };
  struct Recovery { JobId id; std::size_t attempt; };
  struct Abandoned { JobId id; };
  struct Shed { grid::JobSpec job; NodeId node; };
  struct Rejected { JobId id; NodeId node; };
  struct RegionDelegated {
    JobId id; NodeId aggregator;
    std::uint32_t from_region; std::uint32_t to_region;
  };
  struct DigestClamped {
    NodeId owner; NodeId from; std::uint32_t region; std::uint64_t epoch;
  };
  struct Reputation { NodeId owner; NodeId subject; double score; };

  using Payload =
      std::variant<Submitted, RequestRetry, Unschedulable, BidSent,
                   BidReceived, Delegated, Assigned, Started, Completed,
                   Recovery, Abandoned, Shed, Rejected, RegionDelegated,
                   DigestClamped, Reputation>;

  static constexpr std::uint64_t kWindowEntry = UINT64_MAX;

  struct Entry {
    TimePoint at{};
    /// Global serial number for engine-phase entries; kWindowEntry for
    /// entries recorded inside a parallel window.
    std::uint64_t engine_seq{kWindowEntry};
    Payload payload;
  };

  void record(TimePoint at, Payload payload) {
    const std::uint64_t seq =
        stamp_ != nullptr && stamp_->active ? stamp_->next++ : kWindowEntry;
    entries_.push_back(Entry{at, seq, std::move(payload)});
  }

  sim::pdes::EngineStamp* stamp_;
  std::vector<Entry> entries_;
};

}  // namespace aria::workload
