// The simulation engine: builds a grid from a ScenarioConfig, runs it, and
// extracts the metrics the paper's figures are made of.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "audit/auditor.hpp"
#include "common/arena.hpp"
#include "common/rng.hpp"
#include "core/centralized.hpp"
#include "core/config.hpp"
#include "core/node.hpp"
#include "core/tracker.hpp"
#include "metrics/timeseries.hpp"
#include "overlay/blatant.hpp"
#include "overlay/flooding.hpp"
#include "overlay/topology.hpp"
#include "sim/fault.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "sim/traffic.hpp"
#include "trace/collector.hpp"
#include "workload/jobgen.hpp"
#include "workload/scenario.hpp"

namespace aria::sim::pdes {
class EventJournal;
struct JournalEntry;
}  // namespace aria::sim::pdes

namespace aria::workload {

/// All sharded-execution state (shard simulators, networks, channels,
/// recorders); defined in engine_pdes.cpp, null unless config.shards > 1.
struct PdesFabric;

/// Everything measured in one simulated run.
struct RunResult {
  std::string scenario_name;
  std::uint64_t seed{0};

  proto::JobTracker tracker;
  sim::TrafficLedger traffic;
  metrics::Series idle_series;        // idle-node count over time
  metrics::Series node_count_series;  // grid size over time (expansion)

  // --- fault plane (zero / false on fault-free runs) --------------------
  bool faults_enabled{false};
  sim::FaultPlane::Counters faults{};
  std::uint64_t faulted_messages{0};     // injected loss + partition drops
  std::uint64_t duplicated_messages{0};  // extra deliveries injected
  /// Submissions that found no alive node to accept them (whole-grid
  /// outage); these jobs never reach the tracker, so stranded() adds them.
  std::uint64_t submissions_dropped{0};
  /// Failsafe recovery floods answered by an executor replaying the
  /// completion receipt (the original NOTIFY never landed); each one is an
  /// avoided duplicate execution.
  std::uint64_t completion_replays{0};

  // --- self-healing overlay plane (all zero when healing is off) --------
  bool healing_enabled{false};
  std::uint64_t neighbor_evictions{0};   // links dropped after missed probes
  std::uint64_t false_suspicions{0};     // suspected peers that answered
  std::uint64_t repair_links{0};         // links re-established via LINK_ACK
  std::uint64_t rejoin_requests{0};      // LINK_REQs sent by restarted nodes
  std::uint64_t probe_rounds{0};         // summed over nodes
  /// Metric samples at which the live-node subgraph was disconnected.
  std::uint64_t live_disconnected_samples{0};
  /// Longest consecutive disconnected streak, in minutes (an upper bound on
  /// the worst time-to-heal, quantized to the sampling period).
  double max_heal_minutes{0.0};
  bool live_subgraph_connected_at_end{true};

  // --- overload plane (all zero when overload is off) -------------------
  bool overload_enabled{false};
  std::uint64_t jobs_shed{0};            // bounded-queue evictions
  std::uint64_t sheds_rescheduled{0};    // shed jobs taken by INFORM offers
  std::uint64_t sheds_failsafe{0};       // shed bursts that re-flooded
  std::uint64_t assign_rejects{0};       // ASSIGNs answered with REJECT
  std::uint64_t reject_rediscoveries{0}; // REJECTed delegations re-floated
  std::uint64_t bids_suppressed{0};      // ACCEPTs withheld while saturated
  std::uint64_t peak_queue_depth{0};     // max over nodes and time
  metrics::Series queue_depth_series;    // max queue depth across nodes
  metrics::Series shed_series;           // cumulative sheds over time
  metrics::Series reject_series;         // cumulative REJECTs over time

  // --- hierarchy plane (all zero when hierarchy is off) -----------------
  bool hierarchy_enabled{false};
  /// Resolved region count R (the engine writes auto-sizing back).
  std::size_t region_count{0};
  std::uint64_t region_queries{0};        // empty rounds escalated cross-region
  std::uint64_t region_queries_served{0}; // queries aggregators answered
  std::uint64_t region_forwards{0};       // REGION_FWDs to remote aggregators
  std::uint64_t region_floods{0};         // remote floods run for initiators
  std::uint64_t wide_floods{0};           // scope-widened REQUEST floods
  std::uint64_t load_reports{0};          // member REGION_LOADs sent
  std::uint64_t digests_sent{0};          // REGION_DIGEST broadcasts
  std::uint64_t digests_received{0};      // remote digests folded into tables
  // Chaos-hardening telemetry (docs/hierarchy.md "Failure modes"):
  std::uint64_t region_pulls{0};          // cold-restart REGION_PULL floods
  std::uint64_t region_handoffs{0};       // queries bounced to the next rank
  std::uint64_t early_wide_escalations{0};  // silence-forced wide floods
  /// Wire split by the sender/receiver region partition (see
  /// sim::Network::set_region_count).
  std::uint64_t intra_region_messages{0};
  std::uint64_t cross_region_messages{0};
  std::uint64_t intra_region_bytes{0};
  std::uint64_t cross_region_bytes{0};

  // --- adversary plane (all zero when no adversaries designated) --------
  bool adversaries_enabled{false};
  /// Nodes the stateless designation hash marked as adversaries (over the
  /// final grid, expansion joiners included).
  std::size_t adversary_count{0};
  std::uint64_t adv_underbids{0};         // ACCEPT bids quoted below true cost
  std::uint64_t adv_informs_deflated{0};  // INFORM/shed ads at deflated cost
  std::uint64_t adv_assigns_swallowed{0}; // ASSIGNs black-holed
  std::uint64_t adv_digests_poisoned{0};  // REGION_DIGESTs inflated

  // --- defense plane (all zero when defenses are off) -------------------
  bool defense_enabled{false};
  std::uint64_t offers_distrusted{0};     // ACCEPTs dropped below suspicion
  std::uint64_t stragglers_detected{0};   // quoted-ETTC deadline expiries
  std::uint64_t revokes_sent{0};          // REVOKE notifies (incl. retries)
  std::uint64_t revoke_acks_sent{0};      // assignee-side surrendered jobs
  std::uint64_t hedges_dispatched{0};     // duplicate ASSIGNs to runner-ups
  std::uint64_t digests_clamped{0};       // digests rejected by sanity clamp
  std::uint64_t reputation_evictions{0};  // overlay evictions on distrust

  // --- audit plane (all empty when auditing is off) ---------------------
  bool audit_enabled{false};
  /// Total invariant violations detected (docs/audit.md). Must be 0 on
  /// every run — aria_sim exits nonzero otherwise.
  std::uint64_t audit_violations{0};
  /// The first AuditConfig::max_recorded violations, in detection order.
  std::vector<audit::Violation> violations{};
  /// Violation totals per kind, name-sorted (feeds sweep reports).
  std::map<std::string, std::uint64_t> audit_by_kind{};

  // --- tracing plane (null when tracing is off) -------------------------
  bool trace_enabled{false};
  /// The collected stream (job lifecycle + sampled messages); feed to
  /// trace::export_jsonl / export_chrome / critical_paths.
  std::shared_ptr<const trace::TraceBuffer> trace{};

  // --- sharded execution (docs/pdes.md; defaults when shards == 1) ------
  /// Shard count the run executed with (1 = plain sequential kernel).
  std::size_t shards{1};
  std::uint64_t pdes_windows{0};         // parallel shard windows
  std::uint64_t pdes_engine_phases{0};   // serial engine rendezvous
  std::uint64_t pdes_engine_events{0};   // events fired in engine phases
  std::uint64_t pdes_shard_events{0};    // events fired inside windows
  std::uint64_t pdes_messages_forwarded{0};  // cross-shard channel hops
  std::uint64_t pdes_channel_overflows{0};   // ring spills (cap sizing hint)

  std::size_t final_node_count{0};
  std::size_t overlay_links{0};
  double overlay_avg_degree{0.0};
  double overlay_avg_path_length{0.0};
  std::uint64_t events_fired{0};
  double wall_seconds{0.0};

  // --- derived job metrics (over completed jobs) -----------------------
  std::size_t completed() const { return tracker.completed_count(); }
  double mean_completion_minutes() const;
  double mean_waiting_minutes() const;
  double mean_execution_minutes() const;

  // --- deadline metrics (deadline scenarios) ----------------------------
  std::size_t deadline_jobs() const;
  std::size_t missed_deadlines() const;
  /// Mean slack (deadline - completion) over jobs that met their deadline,
  /// in minutes ("average lateness" in the paper's Fig. 4 terminology).
  double mean_met_slack_minutes() const;
  /// Mean overrun past the deadline over jobs that missed, in minutes.
  double mean_missed_time_minutes() const;

  /// Cumulative completed-jobs curve (Fig. 1), bucketed.
  metrics::Series completed_series(Duration bucket,
                                   TimePoint horizon) const;

  /// Total bytes per message type / per node, in MiB.
  double traffic_mib(const std::string& type) const;
  double traffic_mib_total() const;
  /// Healing-plane control traffic (PING + PONG + LINK_REQ + LINK_ACK).
  double probe_traffic_mib() const;
  /// Hierarchy-plane control traffic (REGION_LOAD + REGION_DIGEST +
  /// REGION_QUERY + REGION_FWD).
  double region_traffic_mib() const;

  /// Load-balance over executed-job counts per node (paper abstract:
  /// "improving the overall performance in terms of ... load-balancing").
  metrics::LoadBalance execution_balance() const;
  /// Load-balance over busy seconds (sum of actual running times) per node.
  metrics::LoadBalance busy_time_balance() const;

  /// Submitted jobs with no terminal state (completed / unschedulable /
  /// abandoned) plus submissions dropped before reaching any node. Must be
  /// 0 even under faults — the no-stranded-jobs guarantee the failsafe
  /// provides.
  std::size_t stranded() const {
    return tracker.stranded_count() +
           static_cast<std::size_t>(submissions_dropped);
  }
};

/// One grid simulation. Construct, optionally inspect/customize after
/// build(), then run(). A GridSimulation is single-use.
class GridSimulation {
 public:
  GridSimulation(ScenarioConfig config, std::uint64_t seed);
  ~GridSimulation();
  GridSimulation(const GridSimulation&) = delete;
  GridSimulation& operator=(const GridSimulation&) = delete;

  /// Constructs overlay, nodes and schedules the workload. Idempotent.
  void build();

  /// build() + run to the horizon + collect results.
  RunResult run();

  // --- component access (valid after build()) ---------------------------
  sim::Simulator& simulator() { return sim_; }
  sim::Network& network() { return *net_; }
  overlay::Topology& topology() { return topo_; }
  proto::JobTracker& tracker() { return tracker_; }
  const ScenarioConfig& config() const { return config_; }

  std::size_t node_count() const { return nodes_.size(); }
  proto::AriaNode* node(NodeId id);
  std::vector<proto::AriaNode*> all_nodes();

  /// Nodes that are neither executing nor holding queued jobs. O(1): nodes
  /// maintain a shared gauge on every queue/executor transition (one gauge
  /// per shard in sharded mode — summed here, only ever read from the
  /// serial engine phase).
  std::size_t idle_count() const {
    return idle_nodes_ + (fabric_ ? pdes_idle_sum() : 0);
  }

  /// O(N) recount of idle_count(); debug cross-check for tests.
  std::size_t idle_count_scan() const;

  /// The canonical send journal, merged and canonically sorted — empty
  /// unless config.pdes_journal was set. Works in both execution modes;
  /// feed sequential + sharded journals to sim::pdes::first_divergence to
  /// name the first divergent event (docs/pdes.md "Divergence triage").
  std::vector<sim::pdes::JournalEntry> journal_entries() const;

 private:
  void build_overlay();
  void build_nodes();
  void spawn_node();  // one node: profile + scheduler + protocol engine
  void schedule_workload();
  void schedule_expansion();
  void expansion_step(const ScenarioConfig::Expansion& plan, Rng join_rng);
  void schedule_maintenance();
  void schedule_sampling();
  void sample_live_connectivity();
  void sample_overload();
  void schedule_churn();
  void schedule_targeted_churn();
  void churn_crash(NodeId id, sim::FaultConfig::Churn plan, Rng rng,
                   bool targeted = false);
  void churn_restart(NodeId id, sim::FaultConfig::Churn plan, Rng rng,
                     bool targeted = false);
  void submit_one(std::size_t index);

  // --- sharded execution (engine_pdes.cpp) -------------------------------
  /// Rejects plane combinations the sharded executor cannot run (throws
  /// std::invalid_argument), then constructs fabric_ when shards > 1.
  void build_shard_fabric();
  /// Redirects a node's context at its shard's simulator/network/relay/
  /// recorder/idle gauge; no-op semantics when fabric_ is null.
  void fill_shard_context(proto::NodeContext& ctx, NodeId id);
  /// Runs the conservative executor to the horizon, replays the recorded
  /// observer logs into tracker_, folds shard meters into net_/faults_, and
  /// returns the number of events fired on the shard simulators.
  std::uint64_t run_sharded();
  std::size_t pdes_idle_sum() const;
  void fill_pdes_result(RunResult& r) const;

  ScenarioConfig config_;
  std::uint64_t seed_;
  Rng rng_;

  // Order matters: node_arena_ must be destroyed before net_/sim_ (node
  // dtors detach from the network and cancel simulator events).
  sim::Simulator sim_;
  overlay::Topology topo_;
  /// Null on fault-free runs; must outlive net_ (which holds a raw pointer).
  std::unique_ptr<sim::FaultPlane> faults_;
  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<overlay::FloodRelay> relay_;
  std::unique_ptr<overlay::BlatantMaintainer> maintainer_;
  grid::ErtErrorModel ert_error_;
  proto::JobTracker tracker_;
  /// Null unless config_.trace.enabled; decorates tracker_ as the nodes'
  /// observer and taps net_ for sampled wire messages.
  std::unique_ptr<trace::TraceCollector> tracer_;
  /// Null unless config_.audit.enabled; outermost observer decorator
  /// (auditor -> tracer -> tracker) and the network tap (sample_every 1,
  /// re-sampling forwards to the tracer). See docs/audit.md.
  std::unique_ptr<audit::AuditCollector> auditor_;
  std::unique_ptr<JobGenerator> jobgen_;
  /// Sequential-mode send journal (config_.pdes_journal, shards == 1);
  /// sharded runs keep per-shard journals inside fabric_ instead.
  std::unique_ptr<sim::pdes::EventJournal> journal_;
  /// Sharded-execution state (null when shards == 1). Declared before the
  /// node arena: node destructors detach from their shard network and
  /// cancel events on their shard simulator.
  std::unique_ptr<PdesFabric> fabric_;
  Rng submit_rng_{0};
  // Declared before the arena: nodes decrement the gauge in their destructor.
  std::size_t idle_nodes_{0};
  /// Arena-backed node storage (common/arena.hpp): one placement-new per
  /// node into contiguous slabs with stable addresses — AriaNode pins its
  /// own address inside scheduled lambdas, and at 10k+ nodes the slabs
  /// avoid a heap allocation and a pointer chase per node. nodes_ is the
  /// id-indexed view over the arena.
  SlabArena<proto::AriaNode> node_arena_;
  std::vector<proto::AriaNode*> nodes_;

  metrics::Series idle_series_;
  metrics::Series node_count_series_;
  // Overload-plane sampling (only fed when the plane is on).
  metrics::Series queue_depth_series_;
  metrics::Series shed_series_;
  metrics::Series reject_series_;
  std::uint64_t submissions_dropped_{0};
  // Healing-plane sampling state (live-subgraph connectivity over time).
  std::uint64_t live_disconnected_samples_{0};
  std::uint64_t disconnect_streak_{0};
  std::uint64_t max_disconnect_streak_{0};
  bool built_{false};
};

/// Convenience: run `scenario` once with `seed`.
RunResult run_scenario(const ScenarioConfig& scenario, std::uint64_t seed);

/// Canonical textual digest of every deterministic field of a RunResult —
/// per-job lifecycle lines sorted by job id, per-type traffic, plane
/// counters, series checksums; floats rendered as hexfloat so equality is
/// bit-equality. Excludes wall_seconds and the pdes_* telemetry (which
/// legitimately differ between execution modes). Byte-equal fingerprints
/// define the sharded determinism contract (docs/pdes.md).
std::string run_fingerprint(const RunResult& r);

struct PdesEquivalence {
  bool identical{false};
  /// On divergence: the first mismatching journal event (or fingerprint
  /// line); on success, a one-line summary of what was compared.
  std::string detail;
};

/// Runs `scenario` at `seed` twice — sequential oracle, then with `shards`
/// shards — with send journals enabled, and compares the full result
/// fingerprints plus the canonical event journals (docs/pdes.md
/// "Divergence triage").
PdesEquivalence verify_sharded_equivalence(ScenarioConfig scenario,
                                           std::size_t shards,
                                           std::uint64_t seed);

}  // namespace aria::workload
