// Sharded-execution side of GridSimulation (docs/pdes.md).
//
// Everything shards-specific lives here: the PdesFabric (per-shard
// simulators, networks, fault planes, relays, channels, recorders), the
// context redirection that puts each node on its shard, and the run path
// that drives the conservative ShardExecutor and then folds the per-shard
// state back into the engine-side objects so RunResult harvesting is
// identical in both execution modes.
#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "sim/latency.hpp"
#include "sim/pdes/channel.hpp"
#include "sim/pdes/executor.hpp"
#include "sim/pdes/journal.hpp"
#include "sim/pdes/shard_map.hpp"
#include "workload/engine.hpp"
#include "workload/replay.hpp"

namespace aria::workload {

struct PdesFabric {
  sim::pdes::ShardMap map;
  sim::pdes::EngineStamp stamp;
  // Declaration order is destruction-critical: networks reference their
  // simulator and fault plane, routes reference the channel matrix — each
  // must be destroyed before what it points at.
  std::vector<std::unique_ptr<sim::Simulator>> sims;
  std::vector<std::unique_ptr<sim::FaultPlane>> faults;
  std::unique_ptr<sim::pdes::ChannelMatrix> channels;
  std::vector<std::unique_ptr<sim::pdes::ShardRoute>> routes;
  std::vector<std::unique_ptr<sim::Network>> nets;
  std::vector<std::unique_ptr<overlay::FloodRelay>> relays;
  std::vector<std::unique_ptr<RecordingObserver>> recorders;
  std::vector<std::unique_ptr<sim::pdes::EventJournal>> journals;
  /// Per-shard idle gauges (sized once, addresses stable); summed by
  /// GridSimulation::idle_count() from the serial engine phase only.
  std::vector<std::size_t> idle;
  sim::pdes::ShardExecutor::Stats stats;
};

// Constructor and destructor live here — not in engine.cpp — so
// unique_ptr<PdesFabric> / unique_ptr<EventJournal> can sit behind
// incomplete types in the header (both need the complete type for member
// destruction).
GridSimulation::GridSimulation(ScenarioConfig config, std::uint64_t seed)
    : config_{std::move(config)},
      seed_{seed},
      rng_{seed},
      ert_error_{config_.ert_error},
      submit_rng_{0},
      idle_series_{"idle"},
      node_count_series_{"nodes"},
      queue_depth_series_{"queue-depth"},
      shed_series_{"sheds"},
      reject_series_{"rejects"} {}

GridSimulation::~GridSimulation() = default;

void GridSimulation::build_shard_fabric() {
  if (config_.shards == 0) {
    throw std::invalid_argument("shards must be >= 1");
  }
  if (config_.pdes_journal && (config_.trace.enabled || config_.audit.enabled)) {
    throw std::invalid_argument(
        "pdes_journal takes the network tap slot and cannot be combined "
        "with tracing or auditing");
  }
  if (config_.shards == 1) {
    if (config_.pdes_journal) {
      journal_ = std::make_unique<sim::pdes::EventJournal>();
      net_->set_tap(journal_.get(), 1);
    }
    return;
  }
  // Planes the executor cannot host (docs/pdes.md "Gated planes"): healing
  // mutates the shared topology from node code inside windows, tracing and
  // auditing funnel every shard's messages into one collector, and
  // expansion adds nodes (and topology links) mid-run.
  if (config_.aria.healing.enabled) {
    throw std::invalid_argument("shards > 1 is incompatible with the healing "
                                "plane (docs/pdes.md)");
  }
  if (config_.trace.enabled || config_.audit.enabled) {
    throw std::invalid_argument("shards > 1 is incompatible with tracing and "
                                "auditing (docs/pdes.md)");
  }
  if (config_.expansion) {
    throw std::invalid_argument("shards > 1 is incompatible with network "
                                "expansion (docs/pdes.md)");
  }

  fabric_ = std::make_unique<PdesFabric>();
  PdesFabric& f = *fabric_;
  const std::size_t n = config_.shards;
  f.map.shards = n;
  f.map.region_count =
      config_.aria.hierarchy.enabled ? config_.aria.hierarchy.region_count : 0;
  f.channels = std::make_unique<sim::pdes::ChannelMatrix>(n);
  f.idle.assign(n, 0);
  f.sims.reserve(n);
  f.nets.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    f.sims.push_back(std::make_unique<sim::Simulator>());
    // Mirror the engine network's construction exactly — same latency
    // params, same base RNG fork. Per-sender streams are forked from the
    // base without mutating it, so a sender draws the same jitter sequence
    // whichever shard network it lives on (docs/pdes.md "Determinism
    // contract").
    auto net = std::make_unique<sim::Network>(
        *f.sims.back(),
        std::make_unique<sim::GeoLatencyModel>(
            sim::GeoLatencyModel::Params{.seed = seed_ ^ 0xA51C17ULL}),
        rng_.fork(1));
    if (config_.aria.hierarchy.enabled) {
      net->set_region_count(config_.aria.hierarchy.region_count);
    }
    if (faults_) {
      // Per-shard verdict planes built from the engine plane's already
      // run-mixed config: verdict streams are per-sender forks of the same
      // seed, so they too are shard-placement-invariant. Message-fault
      // counters accumulate here and are absorbed after the run; the
      // engine plane alone counts churn crashes/restarts.
      f.faults.push_back(
          std::make_unique<sim::FaultPlane>(faults_->config()));
      net->set_fault_plane(f.faults.back().get());
    }
    f.routes.push_back(
        std::make_unique<sim::pdes::ShardRoute>(f.map, i, *f.channels));
    net->set_remote_route(f.routes.back().get());
    if (config_.pdes_journal) {
      f.journals.push_back(std::make_unique<sim::pdes::EventJournal>());
      net->set_tap(f.journals.back().get(), 1);
    }
    f.nets.push_back(std::move(net));
    // Per-shard relays with the same fork as the sequential relay_: pick
    // streams are per-node forks, and dedup state is per-node, so each
    // node consulting its own shard's relay sees sequential behaviour.
    f.relays.push_back(
        std::make_unique<overlay::FloodRelay>(topo_, rng_.fork(2)));
    f.relays.back()->set_ttl(config_.aria.flood_gc_delay);
    f.recorders.push_back(std::make_unique<RecordingObserver>(&f.stamp));
  }
}

void GridSimulation::fill_shard_context(proto::NodeContext& ctx, NodeId id) {
  PdesFabric& f = *fabric_;
  const std::size_t s = f.map.shard_of(id);
  ctx.sim = f.sims[s].get();
  ctx.net = f.nets[s].get();
  ctx.relay = f.relays[s].get();
  ctx.observer = f.recorders[s].get();
  ctx.idle_gauge = &f.idle[s];
}

std::size_t GridSimulation::pdes_idle_sum() const {
  std::size_t total = 0;
  for (const std::size_t g : fabric_->idle) total += g;
  return total;
}

std::uint64_t GridSimulation::run_sharded() {
  PdesFabric& f = *fabric_;
  sim::pdes::ShardExecutor::Config cfg;
  cfg.lookahead = net_->latency_model().min_latency();
  cfg.horizon = TimePoint::origin() + config_.horizon;
  cfg.stamp = &f.stamp;
  std::vector<sim::Simulator*> sims;
  std::vector<sim::Network*> nets;
  sims.reserve(f.sims.size());
  nets.reserve(f.nets.size());
  for (const auto& s : f.sims) sims.push_back(s.get());
  for (const auto& n : f.nets) nets.push_back(n.get());
  sim::pdes::ShardExecutor exec{std::move(sims), sim_, *f.channels,
                                std::move(nets), cfg};
  f.stats = exec.run();

  // Replay the per-shard observer logs into the real tracker in canonical
  // order, on this thread — the tracker never sees concurrent callbacks.
  std::vector<const RecordingObserver*> recorders;
  recorders.reserve(f.recorders.size());
  for (const auto& r : f.recorders) recorders.push_back(r.get());
  RecordingObserver::replay(recorders, tracker_);

  // Fold shard meters into the engine-side objects so harvesting below
  // reads one place in both execution modes.
  for (const auto& n : f.nets) net_->absorb_meters(*n);
  if (faults_) {
    for (const auto& p : f.faults) faults_->absorb_counters(p->counters());
  }
  return f.stats.shard_events;
}

void GridSimulation::fill_pdes_result(RunResult& r) const {
  r.shards = config_.shards;
  if (!fabric_) return;
  r.pdes_windows = fabric_->stats.windows;
  r.pdes_engine_phases = fabric_->stats.engine_phases;
  r.pdes_engine_events = fabric_->stats.engine_events;
  r.pdes_shard_events = fabric_->stats.shard_events;
  r.pdes_messages_forwarded = fabric_->stats.messages_forwarded;
  r.pdes_channel_overflows = fabric_->channels->total_overflows();
}

namespace {

// Hexfloat rendering: two doubles fingerprint equal iff they are
// bit-identical, which is the contract (no tolerance comparisons).
std::string fp_double(double v) {
  std::ostringstream os;
  os << std::hexfloat << v;
  return os.str();
}

std::string fp_opt_time(const std::optional<TimePoint>& t) {
  return t ? std::to_string(t->count_micros()) : std::string{"-"};
}

void fp_series(std::ostream& os, const metrics::Series& s) {
  double sum = 0.0;
  for (const auto& p : s.points()) sum += p.value;
  os << "series " << s.label() << " n=" << s.size() << " sum=" << fp_double(sum)
     << " last=" << fp_double(s.points().empty() ? 0.0 : s.points().back().value)
     << "\n";
}

// Returns the first line present in one digest but not the other (both are
// line-oriented); used when fingerprints differ but the wire journals agree
// (i.e. the divergence is in replay/harvest, not in event execution).
std::string first_fingerprint_delta(const std::string& a, const std::string& b) {
  std::istringstream sa{a};
  std::istringstream sb{b};
  std::string la;
  std::string lb;
  std::size_t line = 1;
  while (true) {
    const bool ga = static_cast<bool>(std::getline(sa, la));
    const bool gb = static_cast<bool>(std::getline(sb, lb));
    if (!ga && !gb) return "(digests equal?)";
    if (ga != gb) {
      return "line " + std::to_string(line) + ": " +
             (ga ? "sequential has extra '" + la + "'"
                 : "sharded has extra '" + lb + "'");
    }
    if (la != lb) {
      return "line " + std::to_string(line) + ": sequential '" + la +
             "' vs sharded '" + lb + "'";
    }
    ++line;
  }
}

}  // namespace

std::string run_fingerprint(const RunResult& r) {
  std::ostringstream os;
  os << "scenario " << r.scenario_name << " seed " << r.seed << "\n";
  os << "events_fired " << r.events_fired << "\n";
  os << "final_node_count " << r.final_node_count << "\n";
  os << "overlay " << r.overlay_links << " " << fp_double(r.overlay_avg_degree)
     << " " << fp_double(r.overlay_avg_path_length) << "\n";

  // Jobs: records() is an unordered_map, so sort by job id for a canonical
  // order. Every lifecycle field participates.
  std::vector<const proto::JobRecord*> jobs;
  jobs.reserve(r.tracker.records().size());
  for (const auto& [id, rec] : r.tracker.records()) jobs.push_back(&rec);
  std::sort(jobs.begin(), jobs.end(),
            [](const proto::JobRecord* a, const proto::JobRecord* b) {
              return a->spec.id.to_string() < b->spec.id.to_string();
            });
  os << "jobs " << jobs.size() << "\n";
  for (const proto::JobRecord* j : jobs) {
    os << "job " << j->spec.id.to_string() << " ert "
       << j->spec.ert.count_micros() << " deadline ";
    if (j->spec.deadline) {
      os << j->spec.deadline->count_micros();
    } else {
      os << "-";
    }
    os << " init " << j->initiator.value() << " sub "
       << j->submitted.count_micros() << " asg [";
    for (const auto& [node, at] : j->assignments) {
      os << node.value() << "@" << at.count_micros() << ",";
    }
    os << "] start " << fp_opt_time(j->started) << " exec "
       << j->executor.value() << " done " << fp_opt_time(j->completed)
       << " art " << j->art.count_micros() << " retries " << j->retries
       << " recov " << j->recoveries << " sheds " << j->sheds << " rejects "
       << j->rejects << " unsched " << j->unschedulable << " abandoned "
       << j->abandoned << " execs " << j->executions << "\n";
  }
  os << "lifecycle_violations " << r.tracker.violations().size() << "\n";
  for (const std::string& v : r.tracker.violations()) {
    os << "violation " << v << "\n";
  }

  // Traffic: by_type() is already name-sorted.
  const auto total = r.traffic.total();
  os << "traffic_total " << total.messages << " " << total.bytes << "\n";
  for (const auto& [name, e] : r.traffic.by_type()) {
    os << "traffic " << name << " " << e.messages << " " << e.bytes << "\n";
  }

  fp_series(os, r.idle_series);
  fp_series(os, r.node_count_series);
  fp_series(os, r.queue_depth_series);
  fp_series(os, r.shed_series);
  fp_series(os, r.reject_series);

  os << "faults " << r.faults_enabled << " " << r.faults.lost << " "
     << r.faults.duplicated << " " << r.faults.delayed << " "
     << r.faults.partition_drops << " " << r.faults.crashes << " "
     << r.faults.restarts << " " << r.faults.targeted_crashes << "\n";
  os << "faulted_messages " << r.faulted_messages << " duplicated "
     << r.duplicated_messages << " submissions_dropped "
     << r.submissions_dropped << " completion_replays " << r.completion_replays
     << "\n";

  os << "healing " << r.healing_enabled << " " << r.neighbor_evictions << " "
     << r.false_suspicions << " " << r.repair_links << " "
     << r.rejoin_requests << " " << r.probe_rounds << " "
     << r.live_disconnected_samples << " " << fp_double(r.max_heal_minutes)
     << " " << r.live_subgraph_connected_at_end << "\n";

  os << "overload " << r.overload_enabled << " " << r.jobs_shed << " "
     << r.sheds_rescheduled << " " << r.sheds_failsafe << " "
     << r.assign_rejects << " " << r.reject_rediscoveries << " "
     << r.bids_suppressed << " " << r.peak_queue_depth << "\n";

  os << "hierarchy " << r.hierarchy_enabled << " " << r.region_count << " "
     << r.region_queries << " " << r.region_queries_served << " "
     << r.region_forwards << " " << r.region_floods << " " << r.wide_floods
     << " " << r.load_reports << " " << r.digests_sent << " "
     << r.digests_received << " " << r.region_pulls << " "
     << r.region_handoffs << " " << r.early_wide_escalations << "\n";
  os << "region_wire " << r.intra_region_messages << " "
     << r.cross_region_messages << " " << r.intra_region_bytes << " "
     << r.cross_region_bytes << "\n";

  os << "adversaries " << r.adversaries_enabled << " " << r.adversary_count
     << " " << r.adv_underbids << " " << r.adv_informs_deflated << " "
     << r.adv_assigns_swallowed << " " << r.adv_digests_poisoned << "\n";

  os << "defenses " << r.defense_enabled << " " << r.offers_distrusted << " "
     << r.stragglers_detected << " " << r.revokes_sent << " "
     << r.revoke_acks_sent << " " << r.hedges_dispatched << " "
     << r.digests_clamped << " " << r.reputation_evictions << "\n";
  return os.str();
}

PdesEquivalence verify_sharded_equivalence(ScenarioConfig scenario,
                                           std::size_t shards,
                                           std::uint64_t seed) {
  if (shards < 2) {
    throw std::invalid_argument(
        "verify_sharded_equivalence needs shards >= 2 (the sequential run is "
        "the oracle)");
  }
  scenario.pdes_journal = true;

  scenario.shards = 1;
  GridSimulation sequential{scenario, seed};
  const RunResult seq_result = sequential.run();
  const auto seq_journal = sequential.journal_entries();
  const std::string seq_fp = run_fingerprint(seq_result);

  scenario.shards = shards;
  GridSimulation sharded{scenario, seed};
  const RunResult shard_result = sharded.run();
  const auto shard_journal = sharded.journal_entries();
  const std::string shard_fp = run_fingerprint(shard_result);

  PdesEquivalence eq;
  const auto div = sim::pdes::first_divergence(seq_journal, shard_journal);
  if (seq_fp == shard_fp && !div) {
    eq.identical = true;
    std::ostringstream os;
    os << "identical: " << seq_journal.size() << " journaled sends, "
       << seq_result.tracker.records().size() << " jobs, "
       << seq_result.events_fired << " events (sharded run: "
       << shard_result.pdes_windows << " windows, "
       << shard_result.pdes_engine_phases << " engine phases, "
       << shard_result.pdes_messages_forwarded << " cross-shard messages)";
    eq.detail = os.str();
    return eq;
  }
  eq.identical = false;
  if (div) {
    eq.detail = "journal divergence — " + div->description;
  } else {
    // Every wire event matched; the replay/harvest path disagreed.
    eq.detail = "journals identical but result fingerprints differ — " +
                first_fingerprint_delta(seq_fp, shard_fp);
  }
  return eq;
}

std::vector<sim::pdes::JournalEntry> GridSimulation::journal_entries() const {
  std::vector<const sim::pdes::EventJournal*> journals;
  if (fabric_) {
    journals.reserve(fabric_->journals.size());
    for (const auto& j : fabric_->journals) journals.push_back(j.get());
  } else if (journal_) {
    journals.push_back(journal_.get());
  }
  return sim::pdes::merge_journals(journals);
}

}  // namespace aria::workload
