#include "workload/aggregate.hpp"

#include "common/parallel.hpp"

namespace aria::workload {

std::vector<RunResult> run_scenario_repeated(const ScenarioConfig& scenario,
                                             std::size_t runs,
                                             std::uint64_t base_seed,
                                             bool parallel) {
  // Results are keyed by seed index, so the output never depends on worker
  // scheduling; the pool is bounded by the hardware thread count (the old
  // std::async version launched every run at once).
  std::vector<RunResult> results(runs);
  parallel_for_index(runs, parallel ? 0 : 1, [&](std::size_t i) {
    results[i] = run_scenario(scenario, base_seed + i);
  });
  return results;
}

ScenarioSummary summarize(const ScenarioConfig& scenario,
                          const std::vector<RunResult>& results,
                          Duration curve_bucket) {
  ScenarioSummary s;
  s.name = scenario.name;
  s.runs = results.size();

  std::vector<metrics::Series> idles, node_counts, curves;
  const TimePoint horizon = TimePoint::origin() + scenario.horizon;
  for (const RunResult& r : results) {
    s.completion_minutes.add(r.mean_completion_minutes());
    s.waiting_minutes.add(r.mean_waiting_minutes());
    s.execution_minutes.add(r.mean_execution_minutes());
    s.completed_jobs.add(static_cast<double>(r.completed()));
    s.reschedules.add(static_cast<double>(r.tracker.total_reschedules()));
    s.missed_deadlines.add(static_cast<double>(r.missed_deadlines()));
    s.met_slack_minutes.add(r.mean_met_slack_minutes());
    s.missed_time_minutes.add(r.mean_missed_time_minutes());
    s.overlay_avg_path_length.add(r.overlay_avg_path_length);
    s.overlay_avg_degree.add(r.overlay_avg_degree);
    s.traffic.merge(r.traffic);
    idles.push_back(r.idle_series);
    node_counts.push_back(r.node_count_series);
    curves.push_back(r.completed_series(curve_bucket, horizon));
  }
  s.idle_series = metrics::average(idles);
  s.idle_series.set_label(scenario.name);
  s.node_count_series = metrics::average(node_counts);
  s.node_count_series.set_label(scenario.name);
  s.completed_curve = metrics::average(curves);
  s.completed_curve.set_label(scenario.name);
  if (scenario.aria.overload.enabled && !results.empty()) {
    std::vector<metrics::Series> depths, sheds, rejects;
    for (const RunResult& r : results) {
      depths.push_back(r.queue_depth_series);
      sheds.push_back(r.shed_series);
      rejects.push_back(r.reject_series);
    }
    s.queue_depth_series = metrics::average(depths);
    s.queue_depth_series.set_label(scenario.name);
    s.shed_series = metrics::average(sheds);
    s.shed_series.set_label(scenario.name);
    s.reject_series = metrics::average(rejects);
    s.reject_series.set_label(scenario.name);
  }
  return s;
}

ScenarioSummary run_and_summarize(const ScenarioConfig& scenario,
                                  std::size_t runs, std::uint64_t base_seed,
                                  Duration curve_bucket) {
  return summarize(scenario, run_scenario_repeated(scenario, runs, base_seed),
                   curve_bucket);
}

}  // namespace aria::workload
