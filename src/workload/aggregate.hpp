// Multi-run execution and aggregation (the paper repeats every scenario 10
// times and reports averages).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "metrics/timeseries.hpp"
#include "sim/traffic.hpp"
#include "workload/engine.hpp"

namespace aria::workload {

/// Aggregated view over N runs of one scenario.
struct ScenarioSummary {
  std::string name;
  std::size_t runs{0};

  RunningStats completion_minutes;  // one sample per run (run mean)
  RunningStats waiting_minutes;
  RunningStats execution_minutes;
  RunningStats completed_jobs;
  RunningStats reschedules;
  RunningStats missed_deadlines;
  RunningStats met_slack_minutes;
  RunningStats missed_time_minutes;
  RunningStats overlay_avg_path_length;
  RunningStats overlay_avg_degree;

  metrics::Series idle_series;       // averaged across runs
  metrics::Series node_count_series; // averaged across runs
  metrics::Series completed_curve;   // averaged across runs
  /// Overload-plane series, averaged across runs; empty when the plane was
  /// off for the scenario.
  metrics::Series queue_depth_series;
  metrics::Series shed_series;
  metrics::Series reject_series;

  /// Sum over runs; divide by `runs` for a per-run mean.
  sim::TrafficLedger traffic;

  double traffic_mib_mean(const std::string& type) const {
    if (runs == 0) return 0.0;
    return static_cast<double>(traffic.of(type).bytes) /
           (1024.0 * 1024.0 * static_cast<double>(runs));
  }
  double traffic_mib_mean_total() const {
    if (runs == 0) return 0.0;
    return static_cast<double>(traffic.total().bytes) /
           (1024.0 * 1024.0 * static_cast<double>(runs));
  }
};

/// Runs `scenario` `runs` times with seeds base_seed, base_seed+1, ...
/// Runs execute in parallel worker threads (each simulation is fully
/// isolated and deterministic for its seed).
std::vector<RunResult> run_scenario_repeated(const ScenarioConfig& scenario,
                                             std::size_t runs,
                                             std::uint64_t base_seed,
                                             bool parallel = true);

/// Collapses runs into a summary. `curve_bucket` sets the sampling grid of
/// the averaged completed-jobs curve.
ScenarioSummary summarize(const ScenarioConfig& scenario,
                          const std::vector<RunResult>& results,
                          Duration curve_bucket = Duration::minutes(30));

/// run_scenario_repeated + summarize in one call.
ScenarioSummary run_and_summarize(const ScenarioConfig& scenario,
                                  std::size_t runs, std::uint64_t base_seed,
                                  Duration curve_bucket = Duration::minutes(30));

}  // namespace aria::workload
