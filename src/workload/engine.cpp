#include "workload/engine.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "common/logging.hpp"
#include "grid/profile_gen.hpp"
#include "overlay/bootstrap.hpp"
#include "overlay/region.hpp"
#include "sched/policies.hpp"
#include "sim/latency.hpp"

namespace aria::workload {

// ---------------------------------------------------------------------------
// RunResult derived metrics
// ---------------------------------------------------------------------------

namespace {
template <typename Fn>
double mean_over_completed(const proto::JobTracker& tracker, Fn fn) {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& [id, r] : tracker.records()) {
    if (!r.done()) continue;
    sum += fn(r);
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}
}  // namespace

double RunResult::mean_completion_minutes() const {
  return mean_over_completed(tracker, [](const proto::JobRecord& r) {
    return r.completion_time().to_minutes();
  });
}

double RunResult::mean_waiting_minutes() const {
  return mean_over_completed(tracker, [](const proto::JobRecord& r) {
    return r.waiting_time().to_minutes();
  });
}

double RunResult::mean_execution_minutes() const {
  return mean_over_completed(tracker, [](const proto::JobRecord& r) {
    return r.execution_time().to_minutes();
  });
}

std::size_t RunResult::deadline_jobs() const {
  std::size_t n = 0;
  for (const auto& [id, r] : tracker.records()) {
    if (r.has_deadline()) ++n;
  }
  return n;
}

std::size_t RunResult::missed_deadlines() const {
  std::size_t n = 0;
  for (const auto& [id, r] : tracker.records()) {
    if (r.missed_deadline()) ++n;
    // A deadline job that never completed within the horizon is a miss too.
    if (r.has_deadline() && !r.done()) ++n;
  }
  return n;
}

double RunResult::mean_met_slack_minutes() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& [id, r] : tracker.records()) {
    if (!r.done() || !r.has_deadline() || r.missed_deadline()) continue;
    sum += r.deadline_slack().to_minutes();
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double RunResult::mean_missed_time_minutes() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& [id, r] : tracker.records()) {
    if (!r.done() || !r.missed_deadline()) continue;
    sum += -r.deadline_slack().to_minutes();
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

metrics::Series RunResult::completed_series(Duration bucket,
                                            TimePoint horizon) const {
  std::vector<TimePoint> completions;
  completions.reserve(tracker.records().size());
  for (const auto& [id, r] : tracker.records()) {
    if (r.done()) completions.push_back(*r.completed);
  }
  return metrics::cumulative_count(completions, bucket, horizon,
                                   scenario_name);
}

double RunResult::traffic_mib(const std::string& type) const {
  return static_cast<double>(traffic.of(type).bytes) / (1024.0 * 1024.0);
}

double RunResult::traffic_mib_total() const {
  return static_cast<double>(traffic.total().bytes) / (1024.0 * 1024.0);
}

double RunResult::probe_traffic_mib() const {
  return traffic_mib(proto::kPingType) + traffic_mib(proto::kPongType) +
         traffic_mib(proto::kLinkReqType) + traffic_mib(proto::kLinkAckType);
}

double RunResult::region_traffic_mib() const {
  return traffic_mib(proto::kRegionLoadType) +
         traffic_mib(proto::kRegionDigestType) +
         traffic_mib(proto::kRegionQueryType) +
         traffic_mib(proto::kRegionFwdType);
}

metrics::LoadBalance RunResult::execution_balance() const {
  std::vector<double> per_node(final_node_count, 0.0);
  for (const auto& [id, r] : tracker.records()) {
    if (r.done() && r.executor.index() < per_node.size()) {
      per_node[r.executor.index()] += 1.0;
    }
  }
  return metrics::load_balance(per_node);
}

metrics::LoadBalance RunResult::busy_time_balance() const {
  std::vector<double> per_node(final_node_count, 0.0);
  for (const auto& [id, r] : tracker.records()) {
    if (r.done() && r.executor.index() < per_node.size()) {
      per_node[r.executor.index()] += r.art.to_seconds();
    }
  }
  return metrics::load_balance(per_node);
}

// ---------------------------------------------------------------------------
// GridSimulation
// ---------------------------------------------------------------------------

proto::AriaNode* GridSimulation::node(NodeId id) {
  const std::size_t i = id.index();
  return i < nodes_.size() ? nodes_[i] : nullptr;
}

std::vector<proto::AriaNode*> GridSimulation::all_nodes() { return nodes_; }

std::size_t GridSimulation::idle_count_scan() const {
  std::size_t n = 0;
  for (const auto& node : nodes_) {
    if (node->idle()) ++n;
  }
  return n;
}

void GridSimulation::build() {
  if (built_) return;
  built_ = true;

  // Resolve the region partition up front: nodes read region_count through
  // their shared config pointer, so auto-sizing must be written back before
  // the first node is constructed. Expansion joiners keep the partition
  // resolved against the initial grid (region_of is id mod R — a fixed R
  // keeps every already-built digest table and flood scope valid).
  if (config_.aria.hierarchy.enabled) {
    auto& h = config_.aria.hierarchy;
    h.region_count = overlay::resolve_region_count(
        h.region_count, config_.node_count, h.target_region_size,
        h.agg_standby);
  }

  net_ = std::make_unique<sim::Network>(
      sim_,
      std::make_unique<sim::GeoLatencyModel>(
          sim::GeoLatencyModel::Params{.seed = seed_ ^ 0xA51C17ULL}),
      rng_.fork(1));
  if (config_.aria.hierarchy.enabled) {
    net_->set_region_count(config_.aria.hierarchy.region_count);
  }
  if (config_.faults.enabled) {
    // Mix the per-run seed into the fault stream: repeated runs of the same
    // scenario see different fault schedules, while any (run seed, fault
    // seed) pair replays exactly. The stream stays disjoint from the main
    // RNG tree, so enabling the plane with all rates at zero perturbs
    // nothing.
    sim::FaultConfig fc = config_.faults;
    fc.seed = fc.seed ^ (seed_ * 0x9E3779B97F4A7C15ULL);
    // The adversary designation hash gets its own seed: by default it is
    // derived from the (already run-mixed) fault seed so repeated runs cast
    // different nodes, while an explicit --adversary-seed pins the cast
    // across scenarios for A/B comparisons.
    if (fc.adversary && fc.adversary->seed == 0) {
      fc.adversary->seed = fc.seed ^ 0xADC0DEULL;
    }
    // Region-targeted faults (region partitions, role-targeted churn) need
    // the resolved R; with the hierarchy off there are no regions or roles
    // to aim at and both modes stay inert.
    fc.region_count = config_.aria.hierarchy.enabled
                          ? static_cast<std::uint32_t>(
                                config_.aria.hierarchy.region_count)
                          : 0u;
    faults_ = std::make_unique<sim::FaultPlane>(fc);
    net_->set_fault_plane(faults_.get());
  }
  if (config_.trace.enabled) {
    // Decorator: the collector forwards every callback to the tracker
    // unchanged, and its sampling counter draws no RNG — tracing perturbs
    // neither the metrics nor the event stream (docs/tracing.md).
    tracer_ = std::make_unique<trace::TraceCollector>(config_.trace, &tracker_);
    net_->set_tap(tracer_.get(), config_.trace.message_sample_every);
  }
  if (config_.audit.enabled) {
    // Outermost decorator: auditor -> (tracer ->) tracker. The auditor
    // needs every wire message (invariants cannot be sampled), so it takes
    // the tap slot at sample_every 1 and re-samples for the tracer with the
    // Network's own counter arithmetic — trace output stays byte-identical
    // whether or not the auditor sits in between (docs/audit.md).
    audit::AuditContext actx;
    actx.node_count = config_.expansion
                          ? std::max(config_.node_count,
                                     config_.expansion->target_node_count)
                          : config_.node_count;
    actx.region_count = config_.aria.hierarchy.enabled
                            ? static_cast<std::uint32_t>(
                                  config_.aria.hierarchy.region_count)
                            : 0u;
    actx.failsafe_max_recoveries =
        config_.aria.failsafe ? config_.aria.failsafe_max_recoveries : 0;
    if (config_.aria.defense.enabled) {
      actx.hedge_budget = config_.aria.defense.hedge_budget;
      actx.reputation_alpha = config_.aria.defense.reputation_alpha;
      actx.reputation_initial = config_.aria.defense.initial_reputation;
    }
    if (faults_ && faults_->config().adversary) {
      // The fault plane outlives the auditor (declared first in the
      // engine), so capturing it by pointer is safe; the predicate lets the
      // auditor tell an injected lie from a protocol bug.
      const sim::FaultPlane* fp = faults_.get();
      actx.expected_adversary = [fp](NodeId id) {
        return fp->adversary_role(id).has_value();
      };
    }
    auditor_ = std::make_unique<audit::AuditCollector>(
        config_.audit, actx,
        tracer_ ? static_cast<proto::ProtocolObserver*>(tracer_.get())
                : &tracker_);
    net_->set_tap(auditor_.get(), 1);
    if (tracer_) {
      auditor_->set_forward_tap(tracer_.get(),
                                config_.trace.message_sample_every);
    }
  }
  relay_ = std::make_unique<overlay::FloodRelay>(topo_, rng_.fork(2));
  // Entries a late duplicate re-creates after the protocol's explicit
  // forget() would otherwise live forever; the TTL sweep reclaims them on
  // the same schedule the protocol already uses.
  relay_->set_ttl(config_.aria.flood_gc_delay);
  submit_rng_ = rng_.fork(3);
  jobgen_ = std::make_unique<JobGenerator>(config_.jobs, rng_.fork(4));
  // Sharded execution (docs/pdes.md): validates the plane combination,
  // then stands up the per-shard simulators/networks/relays the node
  // contexts below are redirected at. Null fabric when shards == 1.
  build_shard_fabric();

  build_overlay();
  build_nodes();
  schedule_workload();
  schedule_expansion();
  schedule_maintenance();
  schedule_sampling();
  schedule_churn();
  schedule_targeted_churn();
}

void GridSimulation::build_overlay() {
  Rng boot_rng = rng_.fork(5);
  if (config_.aria.hierarchy.enabled) {
    // Region-structured bootstrap replaces the overlay family: floods are
    // region-scoped, so the graph must keep every region internally
    // connected. No BlatantMaintainer either — its ants rewire by random
    // walk and would erode region locality faster than any digest refresh.
    const auto& h = config_.aria.hierarchy;
    topo_ = overlay::bootstrap_hierarchical(config_.node_count, h.region_count,
                                            h.intra_degree, h.cross_links,
                                            boot_rng);
    return;
  }
  using Family = ScenarioConfig::OverlayFamily;
  switch (config_.overlay_family) {
    case Family::kBlatant:
      topo_ = overlay::bootstrap_random(config_.node_count,
                                        config_.bootstrap_avg_degree, boot_rng);
      maintainer_ = std::make_unique<overlay::BlatantMaintainer>(
          topo_, overlay::BlatantParams{}, rng_.fork(6));
      // Churn-aware ants: crashed machines neither emit ants nor appear on
      // walks. Null-safe (converge() below runs before any node exists) and
      // draw-preserving, so fault-free topologies are unchanged.
      maintainer_->set_liveness([this](NodeId id) {
        const proto::AriaNode* n =
            id.index() < nodes_.size() ? nodes_[id.index()] : nullptr;
        return n == nullptr || !n->crashed();
      });
      // Let the ants reshape the bootstrap graph before traffic starts.
      maintainer_->converge(/*max_rounds=*/40, /*quiet_rounds=*/3);
      break;
    case Family::kRandomRegular:
      topo_ = overlay::bootstrap_regular(
          config_.node_count,
          static_cast<std::size_t>(config_.bootstrap_avg_degree), boot_rng);
      break;
    case Family::kSmallWorld:
      topo_ = overlay::bootstrap_small_world(
          config_.node_count,
          static_cast<std::size_t>(config_.bootstrap_avg_degree),
          config_.small_world_beta, boot_rng);
      break;
  }
}

void GridSimulation::spawn_node() {
  const NodeId id{static_cast<std::uint32_t>(nodes_.size())};
  Rng profile_rng = rng_.fork(100 + id.value());
  grid::NodeProfile profile = grid::random_node_profile(profile_rng);

  const auto& mix = config_.scheduler_mix;
  assert(!mix.empty());
  const auto kind = mix[static_cast<std::size_t>(profile_rng.uniform_int(
      0, static_cast<std::int64_t>(mix.size()) - 1))];

  proto::NodeContext ctx;
  ctx.sim = &sim_;
  ctx.net = net_.get();
  ctx.topo = &topo_;
  ctx.relay = relay_.get();
  ctx.config = &config_.aria;
  ctx.ert_error = &ert_error_;
  ctx.observer =
      auditor_
          ? static_cast<proto::ProtocolObserver*>(auditor_.get())
          : (tracer_ ? static_cast<proto::ProtocolObserver*>(tracer_.get())
                     : &tracker_);
  ctx.idle_gauge = &idle_nodes_;
  if (config_.aria.healing.enabled) ctx.healing_topo = &topo_;
  // Adversary-plane wiring: nodes ask the fault plane for their role at
  // construction (a stateless hash — expansion joiners hash consistently),
  // and the digest sanity clamp needs the final grid size to bound
  // per-region member counts. Null/zero on honest runs, and the node ctor
  // draws no RNG from either, so fault-free streams are untouched.
  ctx.faults = faults_.get();
  ctx.grid_size = config_.expansion
                      ? std::max(config_.node_count,
                                 config_.expansion->target_node_count)
                      : config_.node_count;
  if (fabric_) fill_shard_context(ctx, id);

  std::string vo;
  if (config_.vo_count > 1) {
    vo = "vo" + std::to_string(id.value() % config_.vo_count);
  }
  proto::AriaNode* node =
      node_arena_.emplace(ctx, id, profile, sched::make_scheduler(kind),
                          profile_rng.fork(7), std::move(vo));
  node->start();
  nodes_.push_back(node);
}

void GridSimulation::build_nodes() {
  nodes_.reserve(config_.node_count);
  for (std::size_t i = 0; i < config_.node_count; ++i) spawn_node();
}

void GridSimulation::submit_one(std::size_t index) {
  (void)index;
  // Feasibility: at least one currently alive node must match.
  auto feasible = [this](const grid::JobRequirements& req) {
    for (const auto& n : nodes_) {
      if (grid::satisfies(n->profile(), req, n->virtual_org())) return true;
    }
    return false;
  };
  // VO-constrained jobs pick their organization before the feasibility
  // check so requirement draws respect the constraint.
  std::string pinned_vo;
  if (config_.vo_count > 1 && submit_rng_.bernoulli(config_.vo_job_fraction)) {
    pinned_vo = "vo" + std::to_string(submit_rng_.uniform_int(
                           0, static_cast<std::int64_t>(config_.vo_count) - 1));
  }
  auto feasible_in_vo = [&](const grid::JobRequirements& req) {
    grid::JobRequirements pinned = req;
    pinned.virtual_org = pinned_vo;
    return feasible(pinned);
  };
  grid::JobSpec job = jobgen_->next(
      sim_.now(),
      config_.feasible_jobs_only
          ? std::function<bool(const grid::JobRequirements&)>{feasible_in_vo}
          : std::function<bool(const grid::JobRequirements&)>{});
  job.requirements.virtual_org = pinned_vo;
  auto pick = static_cast<std::size_t>(submit_rng_.uniform_int(
      0, static_cast<std::int64_t>(nodes_.size()) - 1));
  // Users cannot hand a job to a machine that is down: probe forward to the
  // next alive node. On fault-free runs this is a single bool test per
  // submission — no extra RNG draws, so the fault-free stream is untouched.
  for (std::size_t probes = 0; nodes_[pick]->crashed(); ++probes) {
    if (probes >= nodes_.size()) {
      ARIA_WARN << "no alive node to submit job " << job.id.to_string()
                << "; dropping submission";
      ++submissions_dropped_;
      return;
    }
    pick = (pick + 1) % nodes_.size();
  }
  nodes_[pick]->submit(std::move(job));
}

void GridSimulation::schedule_workload() {
  // Storm-free runs keep the exact historical uniform schedule; with a
  // storm, arrival_offsets() compresses the window deterministically (no
  // RNG draws either way).
  const std::vector<Duration> offsets = arrival_offsets(
      config_.job_count, config_.submission_interval, config_.storm);
  for (std::size_t i = 0; i < config_.job_count; ++i) {
    const TimePoint at =
        TimePoint::origin() + config_.submission_start + offsets[i];
    sim_.schedule_at(at, [this, i] { submit_one(i); });
  }
}

void GridSimulation::schedule_expansion() {
  if (!config_.expansion) return;
  const auto plan = *config_.expansion;
  Rng join_rng = rng_.fork(8);
  sim_.schedule_at(TimePoint::origin() + plan.start,
                   [this, plan, join_rng] { expansion_step(plan, join_rng); });
}

// Recursive event chain: add one node, then schedule the next join with a
// jittered interval until the target size is reached. The RNG travels by
// value from step to step so the jitter stream stays one sequence.
void GridSimulation::expansion_step(const ScenarioConfig::Expansion& plan,
                                    Rng join_rng) {
  if (nodes_.size() >= plan.target_node_count) return;
  const NodeId id{static_cast<std::uint32_t>(nodes_.size())};
  if (config_.aria.hierarchy.enabled) {
    overlay::join_node_in_region(topo_, id, plan.join_contacts,
                                 config_.aria.hierarchy.region_count, join_rng);
  } else {
    overlay::join_node(topo_, id, plan.join_contacts, join_rng);
  }
  spawn_node();
  const Duration gap = join_rng.uniform_duration(
      plan.mean_interval / 2, plan.mean_interval + plan.mean_interval / 2);
  sim_.schedule_after(
      gap, [this, plan, join_rng] { expansion_step(plan, join_rng); });
}

// Churn: each selected node flips between up and down forever, on spans
// jittered uniformly in [mean/2, 3*mean/2]. Selection and every span come
// from the plane's dedicated churn stream (one private fork per node), so
// the schedule is a pure function of the fault seed — message faults, the
// workload, and the overlay never shift it. Only the initial grid churns;
// expansion joiners are treated as stable.
void GridSimulation::schedule_churn() {
  if (!faults_ || !faults_->config().churn) return;
  const sim::FaultConfig::Churn plan = *faults_->config().churn;
  Rng pick_rng = faults_->churn_rng();
  for (std::size_t i = 0; i < config_.node_count; ++i) {
    const bool churns = pick_rng.bernoulli(plan.node_fraction);
    Rng node_rng = pick_rng.fork(1 + i);
    if (!churns) continue;
    const NodeId id{static_cast<std::uint32_t>(i)};
    const Duration first_up =
        plan.start +
        node_rng.uniform_duration(plan.mean_uptime / 2,
                                  plan.mean_uptime + plan.mean_uptime / 2);
    sim_.schedule_at(TimePoint::origin() + first_up,
                     [this, id, plan, node_rng] {
                       churn_crash(id, plan, node_rng);
                     });
  }
}

// Targeted churn: the adversarial variant of schedule_churn. Victims are
// not sampled — they are *designated* (the aggregator candidates of the
// configured ranks/regions, a pure function of the fault config via
// FaultPlane::churn_target) — and every timing draw comes from a stream
// disjoint from the untargeted plan's, so composing both plans never
// shifts either schedule.
void GridSimulation::schedule_targeted_churn() {
  if (!faults_ || !faults_->config().targeted_churn) return;
  const auto& tc = *faults_->config().targeted_churn;
  if (tc.ranks == 0 || faults_->config().region_count == 0) return;  // inert
  sim::FaultConfig::Churn plan;
  plan.mean_uptime = tc.mean_uptime;
  plan.mean_downtime = tc.mean_downtime;
  plan.start = tc.start;
  Rng stream = faults_->targeted_rng();
  for (std::size_t i = 0; i < config_.node_count; ++i) {
    const NodeId id{static_cast<std::uint32_t>(i)};
    if (!faults_->churn_target(id)) continue;
    Rng node_rng = stream.fork(1 + i);
    const Duration first_up =
        plan.start +
        node_rng.uniform_duration(plan.mean_uptime / 2,
                                  plan.mean_uptime + plan.mean_uptime / 2);
    sim_.schedule_at(TimePoint::origin() + first_up,
                     [this, id, plan, node_rng] {
                       churn_crash(id, plan, node_rng, /*targeted=*/true);
                     });
  }
}

void GridSimulation::churn_crash(NodeId id, sim::FaultConfig::Churn plan,
                                 Rng rng, bool targeted) {
  proto::AriaNode* n = node(id);
  if (n == nullptr || n->crashed()) return;
  n->crash();
  if (targeted) {
    faults_->count_targeted_crash();
  } else {
    faults_->count_crash();
  }
  const Duration down = rng.uniform_duration(
      plan.mean_downtime / 2, plan.mean_downtime + plan.mean_downtime / 2);
  sim_.schedule_after(down, [this, id, plan, rng, targeted] {
    churn_restart(id, plan, rng, targeted);
  });
}

void GridSimulation::churn_restart(NodeId id, sim::FaultConfig::Churn plan,
                                   Rng rng, bool targeted) {
  proto::AriaNode* n = node(id);
  if (n == nullptr || !n->crashed()) return;
  n->restart();
  faults_->count_restart();
  const Duration up = rng.uniform_duration(
      plan.mean_uptime / 2, plan.mean_uptime + plan.mean_uptime / 2);
  sim_.schedule_after(up, [this, id, plan, rng, targeted] {
    churn_crash(id, plan, rng, targeted);
  });
}

void GridSimulation::schedule_maintenance() {
  if (!maintainer_) return;  // static overlay families have no ants
  sim_.schedule_periodic(config_.maintenance_period, config_.maintenance_period,
                         [this] { maintainer_->tick(); });
}

void GridSimulation::schedule_sampling() {
  sim_.schedule_periodic(Duration::zero(), config_.metrics_sample_period,
                         [this] {
                           idle_series_.add(sim_.now(),
                                            static_cast<double>(idle_count()));
                           node_count_series_.add(
                               sim_.now(), static_cast<double>(nodes_.size()));
                           if (config_.aria.healing.enabled) {
                             sample_live_connectivity();
                           }
                           if (config_.aria.overload.enabled) {
                             sample_overload();
                           }
                         });
}

// Piggybacks on the metrics sampler (no extra events): is the subgraph of
// currently-alive nodes connected? Consecutive disconnected samples bound
// the worst observed time-to-heal.
void GridSimulation::sample_live_connectivity() {
  const bool ok = topo_.connected_among([this](NodeId id) {
    const proto::AriaNode* n =
        id.index() < nodes_.size() ? nodes_[id.index()] : nullptr;
    return n != nullptr && !n->crashed();
  });
  if (ok) {
    disconnect_streak_ = 0;
    return;
  }
  ++live_disconnected_samples_;
  ++disconnect_streak_;
  max_disconnect_streak_ =
      std::max(max_disconnect_streak_, disconnect_streak_);
}

// Piggybacks on the metrics sampler: the deepest local queue plus the
// cumulative shed/REJECT counts across all nodes, one point per period.
void GridSimulation::sample_overload() {
  std::uint64_t deepest = 0;
  std::uint64_t sheds = 0;
  std::uint64_t rejects = 0;
  for (const auto& n : nodes_) {
    deepest = std::max<std::uint64_t>(deepest, n->queue_length());
    sheds += n->counters().jobs_shed;
    rejects += n->counters().rejects_sent;
  }
  queue_depth_series_.add(sim_.now(), static_cast<double>(deepest));
  shed_series_.add(sim_.now(), static_cast<double>(sheds));
  reject_series_.add(sim_.now(), static_cast<double>(rejects));
}

RunResult GridSimulation::run() {
  build();
  const auto wall_start = std::chrono::steady_clock::now();
  std::uint64_t shard_events = 0;
  if (fabric_) {
    shard_events = run_sharded();
  } else {
    sim_.run_until(TimePoint::origin() + config_.horizon);
  }
  const auto wall_end = std::chrono::steady_clock::now();

  RunResult r;
  r.scenario_name = config_.name;
  r.seed = seed_;
  r.tracker = tracker_;
  r.traffic = net_->traffic();
  r.idle_series = idle_series_;
  r.node_count_series = node_count_series_;
  if (faults_) {
    r.faults_enabled = true;
    r.faults = faults_->counters();
    r.faulted_messages = net_->faulted_messages();
    r.duplicated_messages = net_->duplicated_messages();
  }
  r.submissions_dropped = submissions_dropped_;
  if (config_.aria.failsafe) {
    for (const auto& n : nodes_) {
      r.completion_replays += n->counters().completion_replays;
    }
  }
  if (config_.aria.healing.enabled) {
    r.healing_enabled = true;
    for (const auto& n : nodes_) {
      const auto& s = n->neighbor_view().stats();
      r.neighbor_evictions += s.evictions;
      r.false_suspicions += s.false_suspicions;
      r.repair_links += s.repair_links;
      r.rejoin_requests += s.rejoin_requests;
      r.probe_rounds += s.probe_rounds;
    }
    r.live_disconnected_samples = live_disconnected_samples_;
    r.max_heal_minutes =
        static_cast<double>(max_disconnect_streak_) *
        config_.metrics_sample_period.to_minutes();
    r.live_subgraph_connected_at_end = topo_.connected_among([this](NodeId id) {
      const proto::AriaNode* n =
          id.index() < nodes_.size() ? nodes_[id.index()] : nullptr;
      return n != nullptr && !n->crashed();
    });
  }
  if (config_.aria.overload.enabled) {
    r.overload_enabled = true;
    for (const auto& n : nodes_) {
      const auto& c = n->counters();
      r.jobs_shed += c.jobs_shed;
      r.sheds_rescheduled += c.sheds_rescheduled;
      r.sheds_failsafe += c.sheds_failsafe;
      r.assign_rejects += c.rejects_sent;
      r.reject_rediscoveries += c.reject_rediscoveries;
      r.bids_suppressed += c.bids_suppressed;
      r.peak_queue_depth =
          std::max<std::uint64_t>(r.peak_queue_depth, c.peak_queue_depth);
    }
    r.queue_depth_series = queue_depth_series_;
    r.shed_series = shed_series_;
    r.reject_series = reject_series_;
  }
  if (faults_ && faults_->config().adversary &&
      faults_->config().adversary->fraction > 0.0 &&
      !faults_->config().adversary->roles.empty()) {
    r.adversaries_enabled = true;
    for (const auto& n : nodes_) {
      if (n->adversary_role()) ++r.adversary_count;
      const auto& c = n->counters();
      r.adv_underbids += c.adv_underbids;
      r.adv_informs_deflated += c.adv_informs_deflated;
      r.adv_assigns_swallowed += c.adv_assigns_swallowed;
      r.adv_digests_poisoned += c.adv_digests_poisoned;
    }
  }
  if (config_.aria.defense.enabled) {
    r.defense_enabled = true;
    for (const auto& n : nodes_) {
      const auto& c = n->counters();
      r.offers_distrusted += c.offers_distrusted;
      r.stragglers_detected += c.stragglers_detected;
      r.revokes_sent += c.revokes_sent;
      r.revoke_acks_sent += c.revoke_acks_sent;
      r.hedges_dispatched += c.hedges_dispatched;
      r.digests_clamped += c.digests_clamped;
      r.reputation_evictions += c.reputation_evictions;
    }
  }
  if (config_.aria.hierarchy.enabled) {
    r.hierarchy_enabled = true;
    r.region_count = config_.aria.hierarchy.region_count;
    for (const auto& n : nodes_) {
      const auto& c = n->counters();
      r.region_queries += c.region_queries_sent;
      r.region_queries_served += c.region_queries_served;
      r.region_forwards += c.region_forwards;
      r.region_floods += c.region_floods;
      r.wide_floods += c.wide_floods;
      r.load_reports += c.load_reports_sent;
      r.digests_sent += c.digests_sent;
      r.digests_received += c.digests_received;
      r.region_pulls += c.region_pulls_sent;
      r.region_handoffs += c.region_handoffs;
      r.early_wide_escalations += c.early_wide_escalations;
    }
    r.intra_region_messages = net_->intra_region_messages();
    r.cross_region_messages = net_->cross_region_messages();
    r.intra_region_bytes = net_->intra_region_bytes();
    r.cross_region_bytes = net_->cross_region_bytes();
  }
  if (tracer_) {
    r.trace_enabled = true;
    r.trace = tracer_->buffer();
  }
  if (auditor_) {
    auditor_->finish(TimePoint::origin() + config_.horizon);
    r.audit_enabled = true;
    r.audit_violations = auditor_->violation_count();
    r.violations = auditor_->violations();
    r.audit_by_kind = auditor_->by_kind();
    if (r.audit_violations != 0) {
      ARIA_ERROR << config_.name << " (seed " << seed_ << "): "
                 << r.audit_violations << " audit violations; first: "
                 << r.violations.front().kind << " — "
                 << r.violations.front().detail;
    }
  }
  fill_pdes_result(r);
  r.final_node_count = nodes_.size();
  r.overlay_links = topo_.link_count();
  r.overlay_avg_degree = topo_.average_degree();
  r.overlay_avg_path_length = topo_.average_path_length();
  // In sharded mode events split across the engine and shard simulators;
  // the sum reproduces the sequential count exactly.
  r.events_fired = sim_.fired_events() + shard_events;
  r.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  if (!r.tracker.violations().empty()) {
    ARIA_ERROR << config_.name << " (seed " << seed_ << "): "
               << r.tracker.violations().size() << " lifecycle violations; "
               << "first: " << r.tracker.violations().front();
  }
  return r;
}

RunResult run_scenario(const ScenarioConfig& scenario, std::uint64_t seed) {
  GridSimulation sim{scenario, seed};
  return sim.run();
}

}  // namespace aria::workload
