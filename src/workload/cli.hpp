// Command-line options for the `aria_sim` scenario runner. Parsing lives in
// the library so it is unit-testable; the tool itself is a thin main().
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "workload/scenario.hpp"

namespace aria::workload {

struct CliOptions {
  bool show_help{false};
  bool list_scenarios{false};
  std::string scenario{"iMixed"};
  std::size_t runs{1};
  std::uint64_t seed{1};
  /// Overrides applied on top of the named scenario (0 / empty = keep).
  std::size_t nodes{0};
  std::size_t jobs{0};
  /// Base submission interval override in seconds (0 = keep).
  double interval_s{0.0};
  /// Simulation horizon override in minutes (0 = keep).
  double horizon_min{0.0};
  /// Expansion override as (target node count, mean join interval). Applied
  /// on top of the scenario's expansion plan; on non-expanding scenarios it
  /// arms a default plan first.
  std::optional<std::pair<std::size_t, Duration>> expand{};
  std::optional<bool> rescheduling{};
  bool failsafe{false};
  /// Self-healing overlay plane (PING/PONG liveness, eviction, repair).
  bool healing{false};
  /// Overload plane (bounded queues, admission REJECT, shed-and-forward).
  bool overload{false};
  /// Hierarchical discovery plane (super-peer regions, docs/hierarchy.md).
  bool hierarchy{false};
  /// Region count override (0 = auto-size to the target region size).
  /// Setting it implies --hierarchy.
  std::size_t regions{0};
  /// Queue bound override: jobs per unit of performance index (0 = keep the
  /// default). Setting it implies --overload.
  double queue_cap{0.0};
  /// Request storm as (start, duration, intensity): minutes into the
  /// submission phase, window length in minutes, arrival-rate multiplier.
  /// Implies --overload.
  std::optional<StormParams> storm{};
  /// "blatant" (default), "random", or "smallworld".
  std::string overlay{};
  /// PDES shard count (docs/pdes.md): 1 = plain sequential kernel, N > 1 =
  /// region-parallel execution under the conservative executor.
  std::size_t shards{1};
  /// Run each seed twice — sequential oracle then sharded — with send
  /// journals on, and compare: exit nonzero naming the first divergent
  /// event on mismatch. Requires --shards > 1.
  bool pdes_verify{false};
  /// Directory to drop CSV series into (empty = no CSV output).
  std::string csv_dir{};
  bool quiet{false};

  // --- tracing (any output path turns the tracing plane on) ---------------
  /// Chrome trace_event JSON output path (Perfetto / chrome://tracing).
  std::string trace_path{};
  /// JSONL event-log output path (machine-diffable, byte-stable per seed).
  std::string trace_jsonl_path{};
  /// Record every Nth wire message (default 16; 1 = every message).
  std::uint64_t trace_sample{16};

  bool tracing() const { return !trace_path.empty() || !trace_jsonl_path.empty(); }

  // --- fault injection (any flag set turns the fault plane on) -----------
  double loss{0.0};       // per-message loss probability
  double duplicate{0.0};  // per-message duplication probability
  double spike{0.0};      // per-message latency-spike probability
  bool churn{false};      // node crash/restart schedules
  /// Partition windows as "START,DURATION" in minutes (repeatable flag).
  std::vector<std::pair<double, double>> partitions;
  /// Fault stream seed; 0 = derive from the run seed.
  std::uint64_t fault_seed{0};

  // --- targeted faults (docs/faults.md "Targeted faults") -----------------
  /// Role-targeted churn: crash/restart cycles aimed at the aggregator
  /// candidates of ranks [0, N), optionally restricted to listed regions
  /// ("N@r1,r2,..."). 0 = flag present but inert. Implies --hierarchy and
  /// the failsafe.
  std::uint32_t target_churn_ranks{0};
  std::vector<std::uint32_t> target_churn_regions;
  /// Region-aligned partitions as (region, start min, duration min):
  /// severs the whole region — members and aggregators — from the rest of
  /// the grid. Zero-duration windows are inert. Implies --hierarchy.
  struct RegionPartitionOpt {
    std::size_t region{0};
    double start_min{0.0};
    double duration_min{0.0};
  };
  std::vector<RegionPartitionOpt> region_partitions;
  /// Message-class loss/dup multipliers ("TYPE:LOSS_MULT,DUP_MULT"). A
  /// modifier, not a fault source: it never arms the plane by itself, and
  /// 1,1 entries are draw-for-draw inert.
  std::vector<sim::FaultConfig::MessageBias> msg_fault_bias;

  // --- adversarial nodes (docs/adversary.md) ------------------------------
  /// Fraction of nodes designated as adversaries (0 = plane off). Implies
  /// the fault plane, acknowledged delegation and the failsafe.
  double adversaries{0.0};
  /// How hard adversaries lie (cost divisor / digest multiplier). 0 = keep
  /// the FaultConfig default.
  double lie_factor{0.0};
  /// Roles the designation hash draws from; empty = all four.
  std::vector<sim::FaultConfig::Adversary::Role> adversary_roles;
  /// Designation seed; 0 = derive from the fault stream (the engine mixes
  /// the run seed in), so an explicit seed pins the cast across scenarios.
  std::uint64_t adversary_seed{0};
  /// Defense plane: reputation-weighted bidding, suspicion filtering,
  /// straggler revoke + hedged re-dispatch, digest clamping.
  bool defenses{false};

  // --- invariant auditing (docs/audit.md) ---------------------------------
  /// Online invariant auditor; metrics stay byte-identical, violations make
  /// aria_sim exit nonzero.
  bool audit{false};

  bool any_region_partitions() const {
    for (const auto& rp : region_partitions) {
      if (rp.duration_min > 0.0) return true;
    }
    return false;
  }

  bool any_faults() const {
    return loss > 0.0 || duplicate > 0.0 || spike > 0.0 || churn ||
           !partitions.empty() || target_churn_ranks > 0 ||
           any_region_partitions() || adversaries > 0.0;
  }
};

/// Parses argv (excluding argv[0]). On error returns the message; on
/// success fills `out`.
std::optional<std::string> parse_cli(const std::vector<std::string>& args,
                                     CliOptions& out);

/// Usage text for --help.
std::string cli_usage();

/// Applies the option overrides to the named scenario. Throws
/// std::out_of_range for unknown scenario names.
ScenarioConfig resolve_scenario(const CliOptions& options);

}  // namespace aria::workload
