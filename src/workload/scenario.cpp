#include "workload/scenario.hpp"

#include <stdexcept>

namespace aria::workload {

namespace {

using sched::SchedulerKind;

ScenarioConfig base(std::string name, std::string description) {
  ScenarioConfig c;
  c.name = std::move(name);
  c.description = std::move(description);
  c.aria.dynamic_rescheduling = false;
  return c;
}

ScenarioConfig fcfs_scenario() {
  auto c = base("FCFS", "all nodes FCFS, no rescheduling");
  c.scheduler_mix = {SchedulerKind::kFcfs};
  return c;
}

ScenarioConfig sjf_scenario() {
  auto c = base("SJF", "all nodes SJF, no rescheduling");
  c.scheduler_mix = {SchedulerKind::kSjf};
  return c;
}

ScenarioConfig mixed_scenario() {
  auto c = base("Mixed", "FCFS/SJF one-to-one, no rescheduling");
  c.scheduler_mix = {SchedulerKind::kFcfs, SchedulerKind::kSjf};
  return c;
}

ScenarioConfig deadline_scenario(std::string name, Duration slack_mean) {
  auto c = base(std::move(name), "all nodes EDF, deadline jobs");
  c.scheduler_mix = {SchedulerKind::kEdf};
  c.jobs.deadline_slack_mean = slack_mean;
  return c;
}

ScenarioConfig low_load() {
  auto c = mixed_scenario();
  c.name = "LowLoad";
  c.description = "Mixed at half the submission rate (1 job / 20 s)";
  c.submission_interval = Duration::seconds(20);
  return c;
}

ScenarioConfig high_load() {
  auto c = mixed_scenario();
  c.name = "HighLoad";
  c.description = "Mixed at double the submission rate (1 job / 5 s)";
  c.submission_interval = Duration::seconds(5);
  return c;
}

ScenarioConfig expanding() {
  auto c = mixed_scenario();
  c.name = "Expanding";
  c.description = "Mixed with the overlay growing 500 -> 700 nodes";
  c.expansion = ScenarioConfig::Expansion{};
  return c;
}

ScenarioConfig accuracy(std::string name, grid::ErtErrorMode mode,
                        double epsilon, std::string what) {
  auto c = mixed_scenario();
  c.name = std::move(name);
  c.description = "Mixed with ERT accuracy: " + what;
  c.ert_error.mode = mode;
  c.ert_error.epsilon = epsilon;
  return c;
}

std::vector<ScenarioConfig> build_all() {
  std::vector<ScenarioConfig> v;

  // Plain scenarios (no dynamic rescheduling), Table II order.
  v.push_back(fcfs_scenario());
  v.push_back(sjf_scenario());
  v.push_back(mixed_scenario());
  v.push_back(deadline_scenario("Deadline", Duration::minutes(450)));  // 7h30m
  v.push_back(low_load());
  v.push_back(high_load());
  v.push_back(deadline_scenario("DeadlineH", Duration::minutes(150)));  // 2h30m
  v.push_back(expanding());
  v.push_back(accuracy("Precise", grid::ErtErrorMode::kExact, 0.0,
                       "ART == ERTp exactly"));
  v.push_back(accuracy("Accuracy25", grid::ErtErrorMode::kSymmetric, 0.25,
                       "relative error +-25%"));
  v.push_back(accuracy("AccuracyBad", grid::ErtErrorMode::kOptimistic, 0.1,
                       "ERT always below the actual running time"));

  // i-scenarios: identical setups with dynamic rescheduling enabled.
  auto enable = [&v](const std::string& plain, const std::string& named) {
    for (const ScenarioConfig& c : v) {
      if (c.name == plain) {
        ScenarioConfig i = c;
        i.name = named;
        i.description = "Like " + plain + " but with dynamic rescheduling.";
        i.aria.dynamic_rescheduling = true;
        return i;
      }
    }
    throw std::logic_error("missing base scenario " + plain);
  };
  v.push_back(enable("FCFS", "iFCFS"));
  v.push_back(enable("SJF", "iSJF"));
  v.push_back(enable("Mixed", "iMixed"));
  v.push_back(enable("Deadline", "iDeadline"));
  v.push_back(enable("LowLoad", "iLowLoad"));
  v.push_back(enable("HighLoad", "iHighLoad"));
  v.push_back(enable("DeadlineH", "iDeadlineH"));
  v.push_back(enable("Expanding", "iExpanding"));

  // Rescheduling-policy sensitivity (all variants of iMixed).
  {
    auto c = enable("Mixed", "iInform1");
    c.description = "iMixed advertising 1 job per 5 minutes";
    c.aria.inform_jobs_per_period = 1;
    v.push_back(c);
  }
  {
    auto c = enable("Mixed", "iInform4");
    c.description = "iMixed advertising up to 4 jobs per 5 minutes";
    c.aria.inform_jobs_per_period = 4;
    v.push_back(c);
  }
  {
    auto c = enable("Mixed", "iInform15m");
    c.description = "iMixed requiring a 15-minute improvement to reschedule";
    c.aria.reschedule_threshold = Duration::minutes(15);
    v.push_back(c);
  }
  {
    auto c = enable("Mixed", "iInform30m");
    c.description = "iMixed requiring a 30-minute improvement to reschedule";
    c.aria.reschedule_threshold = Duration::minutes(30);
    v.push_back(c);
  }

  // ERT-accuracy sensitivity with rescheduling.
  v.push_back(enable("Precise", "iPrecise"));
  v.push_back(enable("Accuracy25", "iAccuracy25"));
  v.push_back(enable("AccuracyBad", "iAccuracyBad"));

  return v;
}

}  // namespace

const std::vector<ScenarioConfig>& all_scenarios() {
  static const std::vector<ScenarioConfig> scenarios = build_all();
  return scenarios;
}

const ScenarioConfig& scenario_by_name(const std::string& name) {
  for (const ScenarioConfig& c : all_scenarios()) {
    if (c.name == name) return c;
  }
  throw std::out_of_range("unknown scenario: " + name);
}

}  // namespace aria::workload
