// Random job generation (paper §IV-D).
//
// Requirements are drawn from the node-profile distributions; the ERT is
// normal N(2h30m, 1h15m) clamped to [1h, 4h]. In deadline scenarios the
// deadline is submission time + ERT + a random slack interval with the same
// distribution *shape*, rescaled so its mean matches the scenario's slack
// (7h30m for Deadline, 2h30m for DeadlineH).
#pragma once

#include <functional>
#include <optional>

#include "common/rng.hpp"
#include "grid/job.hpp"

namespace aria::workload {

struct JobGenParams {
  Duration ert_mean{Duration::minutes(150)};     // 2h30m
  Duration ert_stddev{Duration::minutes(75)};    // 1h15m
  Duration ert_min{Duration::hours(1)};
  Duration ert_max{Duration::hours(4)};
  /// Mean of the extra slack added on top of ERT for the deadline; nullopt
  /// disables deadlines.
  std::optional<Duration> deadline_slack_mean{};
};

class JobGenerator {
 public:
  JobGenerator(JobGenParams params, Rng rng) : params_{params}, rng_{rng} {}

  /// Generates a job submitted at `now`. If `feasible` is set, requirement
  /// draws are repeated (up to a bounded number of tries) until the
  /// predicate accepts them — the engine uses this to keep the workload
  /// schedulable on the actual grid.
  grid::JobSpec next(
      TimePoint now,
      const std::function<bool(const grid::JobRequirements&)>& feasible = {});

  Duration draw_ert();
  Duration draw_deadline_slack();

 private:
  JobGenParams params_;
  Rng rng_;
};

}  // namespace aria::workload
