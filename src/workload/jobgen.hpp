// Random job generation (paper §IV-D).
//
// Requirements are drawn from the node-profile distributions; the ERT is
// normal N(2h30m, 1h15m) clamped to [1h, 4h]. In deadline scenarios the
// deadline is submission time + ERT + a random slack interval with the same
// distribution *shape*, rescaled so its mean matches the scenario's slack
// (7h30m for Deadline, 2h30m for DeadlineH).
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "grid/job.hpp"

namespace aria::workload {

/// Request-storm arrival shape (overload plane, docs/overload.md). Inside
/// the storm window jobs arrive `intensity` times faster than the base
/// submission interval; outside it the base cadence applies. Purely
/// deterministic — arrival instants are a function of the parameters alone,
/// so storms never perturb the RNG stream.
struct StormParams {
  /// Storm window start, relative to the submission phase start.
  Duration start{Duration::minutes(30)};
  Duration duration{Duration::minutes(30)};
  /// Arrival-rate multiplier inside the window (e.g. 5.0 = 5x faster).
  double intensity{5.0};
};

/// Arrival offsets (relative to the submission phase start) for `job_count`
/// jobs at `interval` base cadence, compressed by `storm` when present.
/// Without a storm this is exactly the uniform schedule i * interval.
std::vector<Duration> arrival_offsets(std::size_t job_count, Duration interval,
                                      const std::optional<StormParams>& storm);

struct JobGenParams {
  Duration ert_mean{Duration::minutes(150)};     // 2h30m
  Duration ert_stddev{Duration::minutes(75)};    // 1h15m
  Duration ert_min{Duration::hours(1)};
  Duration ert_max{Duration::hours(4)};
  /// Mean of the extra slack added on top of ERT for the deadline; nullopt
  /// disables deadlines.
  std::optional<Duration> deadline_slack_mean{};
};

class JobGenerator {
 public:
  JobGenerator(JobGenParams params, Rng rng) : params_{params}, rng_{rng} {}

  /// Generates a job submitted at `now`. If `feasible` is set, requirement
  /// draws are repeated (up to a bounded number of tries) until the
  /// predicate accepts them — the engine uses this to keep the workload
  /// schedulable on the actual grid.
  grid::JobSpec next(
      TimePoint now,
      const std::function<bool(const grid::JobRequirements&)>& feasible = {});

  Duration draw_ert();
  Duration draw_deadline_slack();

 private:
  JobGenParams params_;
  Rng rng_;
};

}  // namespace aria::workload
