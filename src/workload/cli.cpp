#include "workload/cli.hpp"

#include <cstdlib>

namespace aria::workload {

namespace {

bool parse_size(const std::string& text, std::size_t& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  out = static_cast<std::size_t>(v);
  return true;
}

bool parse_probability(const std::string& text, double& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  if (v < 0.0 || v > 1.0) return false;
  out = v;
  return true;
}

/// "START,DURATION" in minutes, both positive.
bool parse_partition(const std::string& text, std::pair<double, double>& out) {
  const auto comma = text.find(',');
  if (comma == std::string::npos) return false;
  const std::string head = text.substr(0, comma);
  const std::string rest = text.substr(comma + 1);
  char* end = nullptr;
  const double start = std::strtod(head.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  const double duration = std::strtod(rest.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  if (start < 0.0 || duration <= 0.0) return false;
  out = {start, duration};
  return true;
}

/// "START,DURATION,INTENSITY": minutes, minutes, rate multiplier > 1.
bool parse_storm(const std::string& text, StormParams& out) {
  const auto c1 = text.find(',');
  if (c1 == std::string::npos) return false;
  const auto c2 = text.find(',', c1 + 1);
  if (c2 == std::string::npos) return false;
  char* end = nullptr;
  const std::string head = text.substr(0, c1);
  const std::string mid = text.substr(c1 + 1, c2 - c1 - 1);
  const std::string tail = text.substr(c2 + 1);
  const double start = std::strtod(head.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  const double duration = std::strtod(mid.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  const double intensity = std::strtod(tail.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  if (start < 0.0 || duration <= 0.0 || intensity <= 1.0) return false;
  out.start = Duration::seconds_f(start * 60.0);
  out.duration = Duration::seconds_f(duration * 60.0);
  out.intensity = intensity;
  return true;
}

/// "RANKS" or "RANKS@R1,R2,...": candidate ranks to target, optionally
/// restricted to the listed regions. RANKS may be 0 (inert).
bool parse_target_churn(const std::string& text, std::uint32_t& ranks,
                        std::vector<std::uint32_t>& regions) {
  const auto at = text.find('@');
  std::size_t n = 0;
  if (!parse_size(text.substr(0, at), n)) return false;
  ranks = static_cast<std::uint32_t>(n);
  if (at == std::string::npos) return true;
  std::string rest = text.substr(at + 1);
  if (rest.empty()) return false;
  while (!rest.empty()) {
    const auto comma = rest.find(',');
    const std::string head = rest.substr(0, comma);
    std::size_t r = 0;
    if (!parse_size(head, r)) return false;
    regions.push_back(static_cast<std::uint32_t>(r));
    if (comma == std::string::npos) break;
    rest = rest.substr(comma + 1);
  }
  return !regions.empty();
}

/// "REGION,START,DURATION": region index, then minutes. A zero duration is
/// accepted and inert (the flags-present-but-zeroed determinism contract).
bool parse_region_partition(const std::string& text,
                            CliOptions::RegionPartitionOpt& out) {
  const auto c1 = text.find(',');
  if (c1 == std::string::npos) return false;
  const auto c2 = text.find(',', c1 + 1);
  if (c2 == std::string::npos) return false;
  std::size_t region = 0;
  if (!parse_size(text.substr(0, c1), region)) return false;
  char* end = nullptr;
  const std::string mid = text.substr(c1 + 1, c2 - c1 - 1);
  const std::string tail = text.substr(c2 + 1);
  const double start = std::strtod(mid.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  const double duration = std::strtod(tail.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  if (start < 0.0 || duration < 0.0) return false;
  out = {region, start, duration};
  return true;
}

/// "TYPE:LOSS_MULT,DUP_MULT": interned-message-type loss/dup multipliers,
/// both >= 0 (1 = neutral, 0 = immune, >1 = starved).
bool parse_msg_bias(const std::string& text, sim::FaultConfig::MessageBias& out) {
  const auto colon = text.find(':');
  if (colon == std::string::npos || colon == 0) return false;
  const std::string rest = text.substr(colon + 1);
  const auto comma = rest.find(',');
  if (comma == std::string::npos) return false;
  char* end = nullptr;
  const std::string head = rest.substr(0, comma);
  const std::string tail = rest.substr(comma + 1);
  const double loss_mult = std::strtod(head.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  const double dup_mult = std::strtod(tail.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  if (loss_mult < 0.0 || dup_mult < 0.0) return false;
  out.type = text.substr(0, colon);
  out.loss_mult = loss_mult;
  out.dup_mult = dup_mult;
  return true;
}

/// Comma-separated adversary role list. On failure returns an error message
/// naming the offending token and its position — a role list is a little
/// source file, and "parse error" without a location is useless at 2am.
std::optional<std::string> parse_adversary_roles(
    const std::string& text,
    std::vector<sim::FaultConfig::Adversary::Role>& out) {
  using Role = sim::FaultConfig::Adversary::Role;
  std::string rest = text;
  std::size_t entry = 1;
  while (true) {
    const auto comma = rest.find(',');
    const std::string token = rest.substr(0, comma);
    if (token == "underbid") {
      out.push_back(Role::kUnderbid);
    } else if (token == "blackhole") {
      out.push_back(Role::kBlackhole);
    } else if (token == "freeride") {
      out.push_back(Role::kFreeride);
    } else if (token == "poison") {
      out.push_back(Role::kPoison);
    } else {
      return "--adversary-roles: bad role \"" + token + "\" at entry " +
             std::to_string(entry) +
             " (want underbid|blackhole|freeride|poison)";
    }
    if (comma == std::string::npos) return std::nullopt;
    rest = rest.substr(comma + 1);
    ++entry;
  }
}

}  // namespace

std::optional<std::string> parse_cli(const std::vector<std::string>& args,
                                     CliOptions& out) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&](const char* flag) -> std::optional<std::string> {
      if (i + 1 >= args.size()) return std::nullopt;
      ++i;
      (void)flag;
      return args[i];
    };

    if (a == "-h" || a == "--help") {
      out.show_help = true;
    } else if (a == "--list") {
      out.list_scenarios = true;
    } else if (a == "--quiet") {
      out.quiet = true;
    } else if (a == "--resched") {
      out.rescheduling = true;
    } else if (a == "--no-resched") {
      out.rescheduling = false;
    } else if (a == "--failsafe") {
      out.failsafe = true;
    } else if (a == "--healing") {
      out.healing = true;
    } else if (a == "--overload") {
      out.overload = true;
    } else if (a == "--hierarchy") {
      out.hierarchy = true;
    } else if (a == "--regions") {
      const auto v = next("--regions");
      std::size_t n = 0;
      if (!v || !parse_size(*v, n) || n == 0) {
        return "--regions requires a positive integer";
      }
      out.regions = n;
      out.hierarchy = true;
    } else if (a == "--queue-cap") {
      const auto v = next("--queue-cap");
      char* end = nullptr;
      const double cap = v ? std::strtod(v->c_str(), &end) : 0.0;
      if (!v || end == nullptr || *end != '\0' || cap <= 0.0) {
        return "--queue-cap requires a positive number (jobs per perf unit)";
      }
      out.queue_cap = cap;
      out.overload = true;
    } else if (a == "--storm") {
      const auto v = next("--storm");
      StormParams storm;
      if (!v || !parse_storm(*v, storm)) {
        return "--storm requires START,DURATION,INTENSITY "
               "(minutes, minutes, multiplier > 1)";
      }
      out.storm = storm;
      out.overload = true;
    } else if (a == "--shards") {
      const auto v = next("--shards");
      std::size_t n = 0;
      if (!v || !parse_size(*v, n) || n == 0) {
        return "--shards requires a positive integer";
      }
      out.shards = n;
    } else if (a == "--pdes-verify") {
      out.pdes_verify = true;
    } else if (a == "--overlay") {
      const auto v = next("--overlay");
      if (!v || (*v != "blatant" && *v != "random" && *v != "smallworld")) {
        return "--overlay requires blatant|random|smallworld";
      }
      out.overlay = *v;
    } else if (a == "--scenario") {
      const auto v = next("--scenario");
      if (!v) return "--scenario requires a name";
      out.scenario = *v;
    } else if (a == "--csv") {
      const auto v = next("--csv");
      if (!v) return "--csv requires a directory";
      out.csv_dir = *v;
    } else if (a == "--trace") {
      const auto v = next("--trace");
      if (!v) return "--trace requires an output path";
      out.trace_path = *v;
    } else if (a == "--trace-jsonl") {
      const auto v = next("--trace-jsonl");
      if (!v) return "--trace-jsonl requires an output path";
      out.trace_jsonl_path = *v;
    } else if (a == "--trace-sample") {
      const auto v = next("--trace-sample");
      std::size_t n = 0;
      if (!v || !parse_size(*v, n) || n == 0) {
        return "--trace-sample requires a positive integer";
      }
      out.trace_sample = n;
    } else if (a == "--runs") {
      const auto v = next("--runs");
      std::size_t n = 0;
      if (!v || !parse_size(*v, n) || n == 0) {
        return "--runs requires a positive integer";
      }
      out.runs = n;
    } else if (a == "--seed") {
      const auto v = next("--seed");
      std::size_t n = 0;
      if (!v || !parse_size(*v, n)) return "--seed requires an integer";
      out.seed = n;
    } else if (a == "--nodes") {
      const auto v = next("--nodes");
      std::size_t n = 0;
      if (!v || !parse_size(*v, n) || n == 0) {
        return "--nodes requires a positive integer";
      }
      out.nodes = n;
    } else if (a == "--jobs") {
      const auto v = next("--jobs");
      std::size_t n = 0;
      if (!v || !parse_size(*v, n) || n == 0) {
        return "--jobs requires a positive integer";
      }
      out.jobs = n;
    } else if (a == "--interval") {
      const auto v = next("--interval");
      char* end = nullptr;
      const double secs = v ? std::strtod(v->c_str(), &end) : 0.0;
      if (!v || end == nullptr || *end != '\0' || secs <= 0.0) {
        return "--interval requires a positive number of seconds";
      }
      out.interval_s = secs;
    } else if (a == "--horizon") {
      const auto v = next("--horizon");
      char* end = nullptr;
      const double mins = v ? std::strtod(v->c_str(), &end) : 0.0;
      if (!v || end == nullptr || *end != '\0' || mins <= 0.0) {
        return "--horizon requires a positive number of minutes";
      }
      out.horizon_min = mins;
    } else if (a == "--expand") {
      const auto v = next("--expand");
      std::pair<double, double> parsed;
      if (!v || !parse_partition(*v, parsed) || parsed.first < 1.0) {
        return "--expand requires TARGET,MEAN_SECONDS (target node count, "
               "mean join interval)";
      }
      out.expand = {static_cast<std::size_t>(parsed.first),
                    Duration::seconds_f(parsed.second)};
    } else if (a == "--loss") {
      const auto v = next("--loss");
      if (!v || !parse_probability(*v, out.loss)) {
        return "--loss requires a probability in [0,1]";
      }
    } else if (a == "--dup") {
      const auto v = next("--dup");
      if (!v || !parse_probability(*v, out.duplicate)) {
        return "--dup requires a probability in [0,1]";
      }
    } else if (a == "--spike") {
      const auto v = next("--spike");
      if (!v || !parse_probability(*v, out.spike)) {
        return "--spike requires a probability in [0,1]";
      }
    } else if (a == "--churn") {
      out.churn = true;
    } else if (a == "--partition") {
      const auto v = next("--partition");
      std::pair<double, double> window;
      if (!v || !parse_partition(*v, window)) {
        return "--partition requires START,DURATION in minutes";
      }
      out.partitions.push_back(window);
    } else if (a == "--fault-seed") {
      const auto v = next("--fault-seed");
      std::size_t n = 0;
      if (!v || !parse_size(*v, n)) return "--fault-seed requires an integer";
      out.fault_seed = n;
    } else if (a == "--target-churn") {
      const auto v = next("--target-churn");
      if (!v ||
          !parse_target_churn(*v, out.target_churn_ranks,
                              out.target_churn_regions)) {
        return "--target-churn requires RANKS or RANKS@R1,R2,... "
               "(candidate ranks, optional region list)";
      }
    } else if (a == "--region-partition") {
      const auto v = next("--region-partition");
      CliOptions::RegionPartitionOpt rp;
      if (!v || !parse_region_partition(*v, rp)) {
        return "--region-partition requires REGION,START,DURATION "
               "(region index, minutes, minutes)";
      }
      out.region_partitions.push_back(rp);
    } else if (a == "--msg-fault-bias") {
      const auto v = next("--msg-fault-bias");
      sim::FaultConfig::MessageBias bias;
      if (!v || !parse_msg_bias(*v, bias)) {
        return "--msg-fault-bias requires TYPE:LOSS_MULT,DUP_MULT "
               "(e.g. REGION_DIGEST:25,1)";
      }
      out.msg_fault_bias.push_back(bias);
    } else if (a == "--adversaries") {
      const auto v = next("--adversaries");
      if (!v || !parse_probability(*v, out.adversaries)) {
        return "--adversaries requires a node fraction in [0,1]";
      }
    } else if (a == "--lie-factor") {
      const auto v = next("--lie-factor");
      char* end = nullptr;
      const double f = v ? std::strtod(v->c_str(), &end) : 0.0;
      if (!v || end == nullptr || *end != '\0' || f < 1.0) {
        return "--lie-factor requires a factor >= 1";
      }
      out.lie_factor = f;
    } else if (a == "--adversary-roles") {
      const auto v = next("--adversary-roles");
      if (!v) {
        return "--adversary-roles requires a comma-separated list "
               "(underbid|blackhole|freeride|poison)";
      }
      if (auto err = parse_adversary_roles(*v, out.adversary_roles)) {
        return err;
      }
    } else if (a == "--adversary-seed") {
      const auto v = next("--adversary-seed");
      std::size_t n = 0;
      if (!v || !parse_size(*v, n)) {
        return "--adversary-seed requires an integer";
      }
      out.adversary_seed = n;
    } else if (a == "--defenses") {
      out.defenses = true;
    } else if (a == "--audit") {
      out.audit = true;
    } else {
      return "unknown option: " + a;
    }
  }
  return std::nullopt;
}

std::string cli_usage() {
  return R"(aria_sim — run ARiA evaluation scenarios (ICDCS 2010 reproduction)

usage: aria_sim [options]
  --list              list the 26 Table-II scenarios and exit
  --scenario NAME     scenario to run (default: iMixed)
  --runs N            repetitions with seeds seed..seed+N-1 (default: 1)
  --seed S            base seed (default: 1)
  --nodes N           override the grid size
  --jobs N            override the job count
  --interval SECS     override the base submission interval
  --horizon MIN       override the simulated horizon (minutes)
  --expand T,MEAN_S   override the expansion plan: grow to T nodes, one
                      join every MEAN_S seconds on average (arms a default
                      plan on non-expanding scenarios)
  --resched           force dynamic rescheduling on
  --no-resched        force dynamic rescheduling off
  --failsafe          enable initiator-side crash recovery (NOTIFY traffic)
  --healing           enable the self-healing overlay plane: PING/PONG
                      liveness probes, dead-neighbor eviction, churn-aware
                      link repair (docs/overlay.md)
  --overlay KIND      overlay family: blatant (default) | random | smallworld
  --overload          enable the overload plane: bounded queues, admission
                      control with REJECT answers, bid suppression and
                      shed-and-forward rescheduling (docs/overload.md)
  --queue-cap F       queued jobs allowed per unit of performance index
                      (default 6; implies --overload)
  --storm S,D,I       request storm: starting S minutes into the submission
                      phase, for D minutes, jobs arrive I× faster
                      (implies --overload)
  --hierarchy         enable the hierarchical discovery plane: super-peer
                      regions, region-scoped floods, cross-region delegation
                      through load-digest aggregators (docs/hierarchy.md)
  --regions N         partition the overlay into N regions (implies
                      --hierarchy; default: auto-size to ~128 nodes/region)
  --csv DIR           write idle/completed series as CSV into DIR
  --quiet             print only the summary block
  -h, --help          this text

sharded execution (docs/pdes.md; incompatible with --healing, --expand,
tracing and --audit — the runner rejects those combinations):
  --shards N          split the simulation over N worker threads by overlay
                      region, under a conservative barrier-window executor;
                      same-seed results are byte-identical to --shards 1
  --pdes-verify       run each seed twice — sequential oracle, then sharded
                      (--shards N) — with send journals on, compare every
                      metric and the canonical event journals, and exit
                      nonzero naming the first divergent event on mismatch

tracing (docs/tracing.md; either output path enables the tracing plane and
a per-job critical-path summary — metrics stay byte-identical either way):
  --trace PATH        write a Chrome trace_event JSON file for the first
                      run; load it at ui.perfetto.dev or chrome://tracing
  --trace-jsonl PATH  write the raw event stream as JSON Lines (one object
                      per record; byte-identical across same-seed runs)
  --trace-sample N    record every Nth wire message (default: 16)

fault injection (see docs/faults.md; any of these enables the fault plane,
acknowledged delegation, and — with --churn — the failsafe):
  --loss P            drop each message with probability P
  --dup P             deliver each message twice with probability P
  --spike P           add a latency spike with probability P
  --churn             crash/restart a fraction of the nodes on a schedule
  --partition S,D     split the grid for D minutes starting at minute S
                      (repeatable for multiple windows)
  --fault-seed S      fault schedule seed (default: derived from --seed)

targeted faults (docs/faults.md "Targeted faults"; these aim at the
hierarchy's weak points instead of sampling uniformly):
  --target-churn N[@R1,R2,...]
                      churn aimed at aggregator candidates of ranks 0..N-1,
                      optionally only in the listed regions (implies
                      --hierarchy and the failsafe; 0 is inert)
  --region-partition R,S,D
                      sever region R — members and aggregators — from the
                      rest of the grid for D minutes starting at minute S
                      (repeatable; implies --hierarchy; D=0 is inert)
  --msg-fault-bias TYPE:L,D
                      multiply the --loss rate by L and the --dup rate by D
                      for messages of TYPE only (repeatable; e.g.
                      REGION_DIGEST:25,1 starves digests; a modifier — it
                      never enables the fault plane by itself)

adversarial nodes (docs/adversary.md; --adversaries arms the fault plane,
acknowledged delegation and the failsafe):
  --adversaries F     designate fraction F of the nodes as adversaries via a
                      stateless hash (expansion joiners included); each gets
                      one role from the --adversary-roles pool
  --adversary-roles L comma-separated role pool (default: all four):
                      underbid (quote costs /LIE), blackhole (ACK ASSIGNs,
                      never run), freeride (advertise deflated INFORM
                      costs), poison (inflate REGION_DIGEST idle claims)
  --lie-factor X      how hard adversaries lie (default: 4)
  --adversary-seed S  designation seed (default: derived from the fault
                      stream; set it to pin the same cast across scenarios)
  --defenses          enable the defense plane: promise-vs-delivery
                      reputation with credibility-discounted bid ranking,
                      suspicion-based offer filtering and overlay eviction,
                      straggler revoke + hedged re-dispatch, digest sanity
                      clamping (implies the failsafe and acknowledged
                      delegation; docs/adversary.md)

auditing (docs/audit.md):
  --audit             run the online invariant auditor: exactly-once
                      completion, offers-before-delegation, digest
                      conservation, resolved cross-region delegations,
                      recovery budgets. Metrics stay byte-identical;
                      violations print and make aria_sim exit nonzero
)";
}

ScenarioConfig resolve_scenario(const CliOptions& options) {
  ScenarioConfig cfg = scenario_by_name(options.scenario);
  if (options.nodes != 0) cfg.node_count = options.nodes;
  if (options.jobs != 0) cfg.job_count = options.jobs;
  if (options.interval_s > 0.0) {
    cfg.submission_interval = Duration::seconds_f(options.interval_s);
  }
  if (options.horizon_min > 0.0) {
    cfg.horizon = Duration::seconds_f(options.horizon_min * 60.0);
  }
  if (options.expand) {
    if (!cfg.expansion) cfg.expansion = ScenarioConfig::Expansion{};
    cfg.expansion->target_node_count = options.expand->first;
    cfg.expansion->mean_interval = options.expand->second;
  }
  if (options.rescheduling) {
    cfg.aria.dynamic_rescheduling = *options.rescheduling;
  }
  if (options.failsafe) cfg.aria.failsafe = true;
  if (options.healing) cfg.aria.healing.enabled = true;
  if (options.overload) {
    cfg.aria.overload.enabled = true;
    // Saturated nodes refuse ASSIGNs; the delegator must hear the REJECT
    // reliably enough to re-discover, so acknowledged delegation rides
    // along (the same hardening the fault plane requires).
    cfg.aria.assign_ack = true;
    if (options.queue_cap > 0.0) {
      cfg.aria.overload.capacity_per_perf = options.queue_cap;
    }
  }
  if (options.storm) cfg.storm = options.storm;
  if (options.hierarchy) {
    cfg.aria.hierarchy.enabled = true;
    if (options.regions != 0) cfg.aria.hierarchy.region_count = options.regions;
  }
  if (options.tracing()) {
    cfg.trace.enabled = true;
    cfg.trace.message_sample_every = options.trace_sample;
  }
  cfg.shards = options.shards;
  if (options.overlay == "random") {
    cfg.overlay_family = ScenarioConfig::OverlayFamily::kRandomRegular;
  } else if (options.overlay == "smallworld") {
    cfg.overlay_family = ScenarioConfig::OverlayFamily::kSmallWorld;
  }
  if (options.any_faults()) {
    cfg.faults.enabled = true;
    cfg.faults.seed = options.fault_seed != 0 ? options.fault_seed
                                              : options.seed ^ 0xFA017D15ULL;
    cfg.faults.loss = options.loss;
    cfg.faults.duplicate = options.duplicate;
    cfg.faults.spike = options.spike;
    if (options.churn) {
      cfg.faults.churn = sim::FaultConfig::Churn{};
      // Crashed assignees lose their queues; without the failsafe those
      // jobs would be stranded forever.
      cfg.aria.failsafe = true;
    }
    for (const auto& [start, duration] : options.partitions) {
      cfg.faults.partitions.push_back(sim::FaultConfig::Partition{
          Duration::seconds_f(start * 60.0),
          Duration::seconds_f(duration * 60.0), 0.5});
    }
    if (options.target_churn_ranks > 0) {
      // Role-targeted churn only makes sense against the hierarchy, and it
      // crashes exactly the nodes holding other people's jobs — the
      // failsafe rides along for the same reason it does with --churn.
      sim::FaultConfig::TargetedChurn tc;
      tc.ranks = options.target_churn_ranks;
      tc.regions = options.target_churn_regions;
      cfg.faults.targeted_churn = tc;
      cfg.aria.hierarchy.enabled = true;
      cfg.aria.failsafe = true;
    }
    for (const auto& rp : options.region_partitions) {
      if (rp.duration_min <= 0.0) continue;  // inert zeroed window
      cfg.faults.region_partitions.push_back(sim::FaultConfig::RegionPartition{
          static_cast<std::uint32_t>(rp.region),
          Duration::seconds_f(rp.start_min * 60.0),
          Duration::seconds_f(rp.duration_min * 60.0)});
      cfg.aria.hierarchy.enabled = true;
    }
    // Message-class bias modifies the loss/dup sources above; attaching it
    // only when the plane is armed keeps a bias-only invocation inert.
    cfg.faults.message_bias = options.msg_fault_bias;
    if (options.adversaries > 0.0) {
      sim::FaultConfig::Adversary adv;
      adv.fraction = options.adversaries;
      if (options.lie_factor > 0.0) adv.lie_factor = options.lie_factor;
      if (!options.adversary_roles.empty()) {
        adv.roles = options.adversary_roles;
      } else {
        using Role = sim::FaultConfig::Adversary::Role;
        adv.roles = {Role::kUnderbid, Role::kBlackhole, Role::kFreeride,
                     Role::kPoison};
      }
      adv.seed = options.adversary_seed;
      cfg.faults.adversary = adv;
      // Black holes ACK and swallow; only the initiator's watchdog gets
      // those jobs back.
      cfg.aria.failsafe = true;
    }
    // A lossy wire can eat an ASSIGN outright; acknowledged delegation is
    // the matching protocol hardening.
    cfg.aria.assign_ack = true;
  }
  if (options.defenses) {
    // The defenses ride the same machinery the fault flags arm: straggler
    // revoke/hedge needs the failsafe's watchdog table and per-attempt
    // assign ids, and reputation observations come off NOTIFY + ACK paths.
    cfg.aria.defense.enabled = true;
    cfg.aria.failsafe = true;
    cfg.aria.assign_ack = true;
  }
  if (options.any_faults() && cfg.aria.hierarchy.enabled) {
    // Chaos hardening rides along whenever faults run against the
    // hierarchy, mirroring how fault flags imply assign_ack: sustained
    // silence (a fully dead candidate list) escalates to a wide flood
    // early, on a clamped backoff. Fault-free --hierarchy runs keep the
    // knobs at 0 and stay byte-identical to the unhardened plane.
    if (cfg.aria.hierarchy.escalate_silent_rounds == 0) {
      cfg.aria.hierarchy.escalate_silent_rounds = 2;
      cfg.aria.hierarchy.silent_backoff_factor_cap = 2;
    }
  }
  if (options.audit) cfg.audit.enabled = true;
  return cfg;
}

}  // namespace aria::workload
