// Sampled time series and multi-run averaging.
//
// Every series is a list of (t, value) points with t in simulated hours.
// Runs of the same scenario sample on identical deterministic grids, so
// averaging across runs is element-wise.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace aria::metrics {

struct Point {
  double t_hours{0.0};
  double value{0.0};
};

class Series {
 public:
  Series() = default;
  explicit Series(std::string label) : label_{std::move(label)} {}

  void add(TimePoint t, double value) {
    points_.push_back({t.to_hours(), value});
  }
  void add(double t_hours, double value) { points_.push_back({t_hours, value}); }

  const std::vector<Point>& points() const { return points_; }
  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const std::string& label() const { return label_; }
  void set_label(std::string label) { label_ = std::move(label); }

  /// Value at the last sample <= t_hours (0 before the first sample).
  double value_at(double t_hours) const;

  /// Largest sampled value (0 on an empty series).
  double max_value() const;

  /// Keeps roughly every n-th point (plus the last); for compact printing.
  Series downsampled(std::size_t every_nth) const;

 private:
  std::string label_;
  std::vector<Point> points_;
};

/// Element-wise mean of several runs of the same series. All inputs must
/// share the sample grid of the shortest one (extra tail points ignored).
Series average(const std::vector<Series>& runs);

/// Builds a cumulative step series from raw event instants (e.g. completion
/// times -> "completed jobs vs time", Fig. 1), sampled every `bucket`.
Series cumulative_count(const std::vector<TimePoint>& events, Duration bucket,
                        TimePoint horizon, std::string label = {});

/// Load-balance metrics over a per-node work distribution (e.g. executed
/// jobs or busy seconds per node).
struct LoadBalance {
  double mean{0.0};
  double stddev{0.0};
  /// Coefficient of variation: stddev / mean (0 = perfectly even).
  double cv{0.0};
  /// Gini coefficient in [0, 1): 0 = perfectly even, ->1 = one node does
  /// everything.
  double gini{0.0};
  double max{0.0};
};

LoadBalance load_balance(const std::vector<double>& per_node_work);

}  // namespace aria::metrics
