#include "metrics/report.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace aria::metrics {

Table::Table(std::vector<std::string> header) : header_{std::move(header)} {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) {
        out << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    out << "\n";
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

void print_series_matrix(std::ostream& out, const std::vector<Series>& series,
                         std::size_t max_rows) {
  if (series.empty()) return;
  const Series& grid = series.front();
  std::size_t stride = 1;
  if (max_rows > 0 && grid.size() > max_rows) {
    stride = (grid.size() + max_rows - 1) / max_rows;
  }
  std::vector<std::string> header{"t[h]"};
  for (const Series& s : series) header.push_back(s.label());
  Table table{header};
  for (std::size_t i = 0; i < grid.size(); i += stride) {
    const double t = grid.points()[i].t_hours;
    std::vector<std::string> row{Table::num(t, 2)};
    for (const Series& s : series) row.push_back(Table::num(s.value_at(t), 1));
    table.add_row(std::move(row));
  }
  table.print(out);
}

void write_series_csv(std::ostream& out, const std::vector<Series>& series) {
  if (series.empty()) return;
  out << "t_hours";
  for (const Series& s : series) out << "," << s.label();
  out << "\n";
  const Series& grid = series.front();
  for (const Point& p : grid.points()) {
    out << p.t_hours;
    for (const Series& s : series) out << "," << s.value_at(p.t_hours);
    out << "\n";
  }
}

}  // namespace aria::metrics
