#include "metrics/timeseries.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace aria::metrics {

double Series::value_at(double t_hours) const {
  double v = 0.0;
  for (const Point& p : points_) {
    if (p.t_hours > t_hours) break;
    v = p.value;
  }
  return v;
}

double Series::max_value() const {
  double v = 0.0;
  for (const Point& p : points_) v = std::max(v, p.value);
  return v;
}

Series Series::downsampled(std::size_t every_nth) const {
  if (every_nth <= 1 || points_.size() <= 2) return *this;
  Series out{label_};
  for (std::size_t i = 0; i < points_.size(); i += every_nth) {
    out.points_.push_back(points_[i]);
  }
  if (out.points_.back().t_hours != points_.back().t_hours) {
    out.points_.push_back(points_.back());
  }
  return out;
}

Series average(const std::vector<Series>& runs) {
  Series out;
  if (runs.empty()) return out;
  out.set_label(runs.front().label());
  std::size_t n = runs.front().size();
  for (const Series& s : runs) n = std::min(n, s.size());
  for (std::size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (const Series& s : runs) sum += s.points()[i].value;
    out.add(runs.front().points()[i].t_hours,
            sum / static_cast<double>(runs.size()));
  }
  return out;
}

LoadBalance load_balance(const std::vector<double>& per_node_work) {
  LoadBalance lb;
  if (per_node_work.empty()) return lb;
  const auto n = static_cast<double>(per_node_work.size());
  double sum = 0.0;
  for (double w : per_node_work) {
    sum += w;
    lb.max = std::max(lb.max, w);
  }
  lb.mean = sum / n;
  double var = 0.0;
  for (double w : per_node_work) var += (w - lb.mean) * (w - lb.mean);
  var /= n;
  lb.stddev = std::sqrt(var);
  lb.cv = lb.mean > 0.0 ? lb.stddev / lb.mean : 0.0;

  // Gini via the sorted formula: G = (2*sum_i i*x_i) / (n*sum x) - (n+1)/n,
  // with i being 1-based ranks of ascending values.
  if (sum > 0.0) {
    std::vector<double> sorted = per_node_work;
    std::sort(sorted.begin(), sorted.end());
    double weighted = 0.0;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      weighted += static_cast<double>(i + 1) * sorted[i];
    }
    lb.gini = 2.0 * weighted / (n * sum) - (n + 1.0) / n;
    if (lb.gini < 0.0) lb.gini = 0.0;
  }
  return lb;
}

Series cumulative_count(const std::vector<TimePoint>& events, Duration bucket,
                        TimePoint horizon, std::string label) {
  assert(bucket > Duration::zero());
  std::vector<TimePoint> sorted = events;
  std::sort(sorted.begin(), sorted.end());
  Series out{std::move(label)};
  std::size_t i = 0;
  for (TimePoint t = TimePoint::origin(); t <= horizon; t += bucket) {
    while (i < sorted.size() && sorted[i] <= t) ++i;
    out.add(t, static_cast<double>(i));
  }
  return out;
}

}  // namespace aria::metrics
