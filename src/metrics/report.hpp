// Console reporting: fixed-width tables and series matrices in the style of
// the paper's figures, plus CSV export for external plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "metrics/timeseries.hpp"

namespace aria::metrics {

/// A simple left-aligned fixed-width text table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Convenience: formats doubles with `precision` decimals.
  static std::string num(double v, int precision = 1);

  void print(std::ostream& out) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints several series (sharing a time grid) side by side:
///   t_hours  <label1>  <label2> ...
/// Series are aligned on the first one's grid via value_at().
void print_series_matrix(std::ostream& out, const std::vector<Series>& series,
                         std::size_t max_rows = 60);

/// Writes the same matrix as CSV ("t_hours,label1,label2,...").
void write_series_csv(std::ostream& out, const std::vector<Series>& series);

}  // namespace aria::metrics
