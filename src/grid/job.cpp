#include "grid/job.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace aria::grid {

Duration ErtErrorModel::actual_running_time(Duration ert, double perf_index,
                                            Rng& rng) const {
  const Duration ertp = ert.scaled(1.0 / perf_index);
  Duration drift = Duration::zero();
  switch (mode) {
    case ErtErrorMode::kExact:
      break;
    case ErtErrorMode::kSymmetric:
      drift = ert.scaled(rng.uniform(-1.0, 1.0) * epsilon);
      break;
    case ErtErrorMode::kOptimistic: {
      const double m = std::abs(rng.uniform(-1.0, 1.0));
      drift = ert.scaled(m * epsilon);
      break;
    }
  }
  return std::max(ertp + drift, Duration::seconds(1));
}

std::string JobSpec::to_string() const {
  std::ostringstream out;
  out << "job{" << id.to_string().substr(0, 8) << " " << requirements.to_string()
      << " ert=" << ert.to_string();
  if (deadline) out << " deadline=" << deadline->to_string();
  out << "}";
  return out.str();
}

}  // namespace aria::grid
