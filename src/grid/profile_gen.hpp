// Random node-profile and job-requirement generation with the paper's exact
// probability tables (§IV-B: TOP500 snapshot for architectures and operating
// systems, uniform {1,2,4,8,16} GB for memory/disk, perf index U[1,2]).
#pragma once

#include "common/rng.hpp"
#include "grid/resources.hpp"

namespace aria::grid {

/// Architecture shares: AMD64 87.2%, POWER 11%, IA-64 1.2%, SPARC 0.2%,
/// MIPS 0.2%, NEC 0.2%.
Architecture random_architecture(Rng& rng);

/// OS shares: LINUX 88.6%, SOLARIS 5.8%, UNIX 4.4%, WINDOWS 1%, BSD 0.2%.
OperatingSystem random_os(Rng& rng);

/// One of {1, 2, 4, 8, 16} GB, uniformly.
int random_capacity_gb(Rng& rng);

NodeProfile random_node_profile(Rng& rng);

/// Job requirements are drawn from the same distributions as node profiles
/// (paper §IV-D).
JobRequirements random_job_requirements(Rng& rng);

}  // namespace aria::grid
