#include "grid/resources.hpp"

#include <sstream>

namespace aria::grid {

std::string to_string(Architecture a) {
  switch (a) {
    case Architecture::kAmd64: return "AMD64";
    case Architecture::kPower: return "POWER";
    case Architecture::kIa64: return "IA-64";
    case Architecture::kSparc: return "SPARC";
    case Architecture::kMips: return "MIPS";
    case Architecture::kNec: return "NEC";
  }
  return "?";
}

std::string to_string(OperatingSystem os) {
  switch (os) {
    case OperatingSystem::kLinux: return "LINUX";
    case OperatingSystem::kSolaris: return "SOLARIS";
    case OperatingSystem::kUnix: return "UNIX";
    case OperatingSystem::kWindows: return "WINDOWS";
    case OperatingSystem::kBsd: return "BSD";
  }
  return "?";
}

std::string NodeProfile::to_string() const {
  std::ostringstream out;
  out << grid::to_string(arch) << "/" << grid::to_string(os) << " mem="
      << memory_gb << "G disk=" << disk_gb << "G p=" << performance_index;
  return out.str();
}

std::string JobRequirements::to_string() const {
  std::ostringstream out;
  out << grid::to_string(arch) << "/" << grid::to_string(os) << " mem>="
      << min_memory_gb << "G disk>=" << min_disk_gb << "G";
  if (!virtual_org.empty()) out << " vo=" << virtual_org;
  return out.str();
}

bool satisfies(const NodeProfile& profile, const JobRequirements& req,
               const std::string& node_vo) {
  if (profile.arch != req.arch) return false;
  if (profile.os != req.os) return false;
  if (profile.memory_gb < req.min_memory_gb) return false;
  if (profile.disk_gb < req.min_disk_gb) return false;
  if (!req.virtual_org.empty() && req.virtual_org != node_vo) return false;
  return true;
}

}  // namespace aria::grid
