// Job model (paper §III-B, §IV-D).
//
// A job carries a grid-wide UUID, its resource requirements, and an
// Estimated Running Time (ERT) expressed against the baseline machine.
// On a node with performance index p the estimate becomes ERTp = ERT / p.
// The Actual Running Time (ART) — unknown until execution completes — is
// ERTp plus a drift term controlled by the scenario's error model:
//   symmetric:   drift = U[-1,1] * ERT * epsilon     (baseline, ±10%)
//   optimistic:  drift = |U[-1,1] * ERT * epsilon|   (ERT always too low)
//   exact:       drift = 0                            (Precise scenarios)
#pragma once

#include <optional>
#include <string>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "common/uuid.hpp"
#include "grid/resources.hpp"

namespace aria::grid {

/// How simulated reality deviates from the ERT.
enum class ErtErrorMode {
  kExact,       // ART == ERTp
  kSymmetric,   // drift uniform in ±ERT*epsilon
  kOptimistic,  // drift uniform in [0, ERT*epsilon]: estimates always low
};

struct ErtErrorModel {
  ErtErrorMode mode{ErtErrorMode::kSymmetric};
  double epsilon{0.1};

  /// Draws the Actual Running Time for a job of estimate `ert` on a node of
  /// performance index `perf_index`. Result is clamped to at least 1s so a
  /// pessimal drift can never produce a non-positive runtime.
  Duration actual_running_time(Duration ert, double perf_index, Rng& rng) const;
};

/// Immutable description of a submitted job; travels inside REQUEST,
/// INFORM, and ASSIGN messages ("Job Profile" in Table I).
struct JobSpec {
  JobId id{};
  JobRequirements requirements{};
  Duration ert{};
  /// Absolute completion deadline; only set in deadline scenarios.
  std::optional<TimePoint> deadline{};
  /// Advance reservation (local-scheduling extension, paper future work):
  /// execution must not begin before this instant. The job may be queued
  /// and rescheduled freely; only its start is gated.
  std::optional<TimePoint> earliest_start{};
  /// User priority (higher runs earlier); only the kPriority local-scheduler
  /// extension reads it.
  int priority{0};

  /// ERTp on a node of performance index p (paper §IV-B).
  Duration ert_on(double perf_index) const {
    return ert.scaled(1.0 / perf_index);
  }

  bool has_deadline() const { return deadline.has_value(); }

  std::string to_string() const;
};

}  // namespace aria::grid
