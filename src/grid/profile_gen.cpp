#include "grid/profile_gen.hpp"

#include <array>
#include <vector>

namespace aria::grid {

namespace {
const std::vector<double> kArchWeights{87.2, 11.0, 1.2, 0.2, 0.2, 0.2};
const std::vector<double> kOsWeights{88.6, 5.8, 4.4, 1.0, 0.2};
constexpr std::array<int, 5> kCapacities{1, 2, 4, 8, 16};
}  // namespace

Architecture random_architecture(Rng& rng) {
  return static_cast<Architecture>(rng.weighted_index(kArchWeights));
}

OperatingSystem random_os(Rng& rng) {
  return static_cast<OperatingSystem>(rng.weighted_index(kOsWeights));
}

int random_capacity_gb(Rng& rng) {
  return kCapacities[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(kCapacities.size()) - 1))];
}

NodeProfile random_node_profile(Rng& rng) {
  NodeProfile p;
  p.arch = random_architecture(rng);
  p.os = random_os(rng);
  p.memory_gb = random_capacity_gb(rng);
  p.disk_gb = random_capacity_gb(rng);
  p.performance_index = rng.uniform(1.0, 2.0);
  return p;
}

JobRequirements random_job_requirements(Rng& rng) {
  JobRequirements r;
  r.arch = random_architecture(rng);
  r.os = random_os(rng);
  r.min_memory_gb = random_capacity_gb(rng);
  r.min_disk_gb = random_capacity_gb(rng);
  return r;
}

}  // namespace aria::grid
