// Hardware/software resource model (paper §IV-B).
//
// A node profile describes a machine (architecture, memory, disk, OS) plus
// its performance index p in [1, 2], which relates its speed to the
// grid-wide baseline used for Estimated Running Times. Job requirements are
// the same fields from the demand side; `satisfies` is the matching logic a
// node applies to REQUEST/INFORM messages.
#pragma once

#include <cstdint>
#include <string>

namespace aria::grid {

enum class Architecture : std::uint8_t {
  kAmd64,
  kPower,
  kIa64,
  kSparc,
  kMips,
  kNec,
};

enum class OperatingSystem : std::uint8_t {
  kLinux,
  kSolaris,
  kUnix,
  kWindows,
  kBsd,
};

std::string to_string(Architecture a);
std::string to_string(OperatingSystem os);

/// What a machine offers.
struct NodeProfile {
  Architecture arch{Architecture::kAmd64};
  OperatingSystem os{OperatingSystem::kLinux};
  int memory_gb{1};
  int disk_gb{1};
  /// Speed relative to the ERT baseline machine; in [1, 2] per the paper,
  /// so every node is at least as fast as the baseline.
  double performance_index{1.0};

  std::string to_string() const;
};

/// What a job demands. Architecture and OS must match exactly; memory and
/// disk are minimums. `virtual_org` is the paper's example of an additional
/// execution constraint ("prevent execution of a job outside the boundaries
/// of a virtual organization"): empty means unconstrained, otherwise the
/// node's VO tag must match.
struct JobRequirements {
  Architecture arch{Architecture::kAmd64};
  OperatingSystem os{OperatingSystem::kLinux};
  int min_memory_gb{1};
  int min_disk_gb{1};
  std::string virtual_org{};

  std::string to_string() const;
};

/// Matching logic: can a machine with `profile` (tagged `node_vo`) run a job
/// with `req`?
bool satisfies(const NodeProfile& profile, const JobRequirements& req,
               const std::string& node_vo = {});

}  // namespace aria::grid
