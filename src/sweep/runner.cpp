#include "sweep/runner.hpp"

#include <mutex>

#include "common/parallel.hpp"

namespace aria::sweep {

std::vector<workload::RunResult> run_all(const std::vector<RunSpec>& specs,
                                         const RunnerOptions& options) {
  std::vector<workload::RunResult> results(specs.size());
  std::mutex progress_mu;
  std::size_t done = 0;
  parallel_for_index(specs.size(), options.workers, [&](std::size_t i) {
    results[i] = workload::run_scenario(specs[i].config, specs[i].seed);
    if (options.progress) {
      const std::lock_guard<std::mutex> lock{progress_mu};
      options.progress(++done, specs.size(), specs[i]);
    }
  });
  return results;
}

}  // namespace aria::sweep
