// Declarative run matrices for the parallel sweep engine.
//
// A SweepMatrix is a list of rows, each naming a Table-II scenario plus the
// same knob overrides `aria_sim` takes on its command line, fanned out over
// N seeds. `expand()` resolves every row into concrete (ScenarioConfig,
// seed) run specs in a deterministic order — row-major, seeds ascending —
// which is the order every merged report is keyed by, independent of how
// the runs are later scheduled across workers. See docs/sweep.md.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "workload/cli.hpp"
#include "workload/scenario.hpp"

namespace aria::sweep {

/// One matrix row: a scenario + overrides, repeated over `options.runs`
/// seeds starting at `options.seed`.
struct MatrixEntry {
  /// Report key; defaults to the scenario name. Rows must have distinct
  /// labels so merged per-row aggregates never silently pool two
  /// configurations.
  std::string label;
  workload::CliOptions options;
};

/// One concrete simulation to run: fully resolved config + seed.
struct RunSpec {
  std::string label;
  workload::ScenarioConfig config;
  std::uint64_t seed{0};
  std::size_t entry_index{0};  // row in the matrix
  std::size_t rep_index{0};    // seed index within the row
};

class SweepMatrix {
 public:
  /// Appends a row. Throws std::invalid_argument on a duplicate label or an
  /// option that is meaningless inside a matrix (help/list/quiet/csv/trace).
  void add(MatrixEntry entry);

  const std::vector<MatrixEntry>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }
  std::size_t run_count() const;

  /// Rows × seeds, row-major with ascending seeds. Resolves scenario names;
  /// throws std::invalid_argument for an empty matrix or an unknown
  /// scenario.
  std::vector<RunSpec> expand() const;

  /// Parses the matrix file format: one row per line, each line the same
  /// flags `aria_sim` accepts (e.g. `--scenario iMixed --runs 10`) plus
  /// `--label NAME` to name the row. `#` starts a comment; blank lines are
  /// skipped. `source` names the stream in error messages.
  static SweepMatrix parse(std::istream& in, const std::string& source = "<matrix>");
  static SweepMatrix parse_file(const std::string& path);

  /// Built-in presets (docs/sweep.md):
  ///   "table2"        all 26 Table-II scenarios at paper scale
  ///   "table2-smoke"  all 26, downsized (100 nodes / 150 jobs / 30 h)
  ///   "quick"         4 representative scenarios, tiny (40 nodes / 60 jobs)
  ///   "scale2k"       flat vs --hierarchy head-to-head at 2 000 nodes
  ///   "scale10k-hier" 10 000 nodes, --hierarchy, churn + 1% loss cocktail
  ///   "pdes-shards"   one 2k-node run at --shards 1/2/4/8 (docs/pdes.md)
  /// Throws std::invalid_argument for unknown names.
  static SweepMatrix preset(const std::string& name, std::size_t seeds,
                            std::uint64_t base_seed);

  static const std::vector<std::string>& preset_names();

 private:
  std::vector<MatrixEntry> entries_;
};

}  // namespace aria::sweep
