#include "sweep/report.hpp"

#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace aria::sweep {

namespace {

constexpr double kMiB = 1024.0 * 1024.0;

// Same fixed rendering as the trace exporters: a pure function of the
// double's bits, so reports serialize identically everywhere.
std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

void write_stats(std::ostream& out, const char* key, const RunningStats& s) {
  out << '"' << key << "\":{\"mean\":" << fmt(s.mean())
      << ",\"stddev\":" << fmt(s.stddev()) << ",\"min\":" << fmt(s.min())
      << ",\"max\":" << fmt(s.max()) << '}';
}

void write_traffic(std::ostream& out, const sim::TrafficLedger& ledger,
                   std::size_t runs) {
  const auto total = ledger.total();
  out << "{\"messages\":" << total.messages << ",\"bytes\":" << total.bytes
      << ",\"mib_per_run\":"
      << fmt(runs ? static_cast<double>(total.bytes) /
                        (kMiB * static_cast<double>(runs))
                  : 0.0)
      << ",\"by_type\":{";
  bool first = true;
  for (const auto& [type, entry] : ledger.by_type()) {
    if (!first) out << ',';
    first = false;
    out << '"' << type << "\":{\"messages\":" << entry.messages
        << ",\"bytes\":" << entry.bytes << '}';
  }
  out << "}}";
}

void write_audit_by_kind(std::ostream& out,
                         const std::map<std::string, std::uint64_t>& by_kind) {
  out << '{';
  bool first = true;
  for (const auto& [kind, count] : by_kind) {  // std::map => name-sorted
    if (!first) out << ',';
    first = false;
    out << '"' << kind << "\":" << count;
  }
  out << '}';
}

}  // namespace

SweepReport SweepReport::build(
    const std::vector<RunSpec>& specs,
    const std::vector<workload::RunResult>& results) {
  if (specs.size() != results.size()) {
    throw std::invalid_argument("sweep report: spec/result count mismatch");
  }
  SweepReport report;
  report.total_runs = results.size();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const RunSpec& spec = specs[i];
    const workload::RunResult& r = results[i];

    RunRow run;
    run.label = spec.label;
    run.scenario = spec.config.name;
    run.seed = spec.seed;
    run.completed = r.completed();
    run.completion_minutes = r.mean_completion_minutes();
    run.waiting_minutes = r.mean_waiting_minutes();
    run.execution_minutes = r.mean_execution_minutes();
    run.reschedules = r.tracker.total_reschedules();
    run.missed_deadlines = r.missed_deadlines();
    run.stranded = r.stranded();
    run.violations = r.tracker.violations().size();
    const auto traffic = r.traffic.total();
    run.traffic_messages = traffic.messages;
    run.traffic_bytes = traffic.bytes;
    run.events_fired = r.events_fired;
    run.final_nodes = r.final_node_count;
    run.digests_sent = r.digests_sent;
    run.region_queries_served = r.region_queries_served;
    run.region_forwards = r.region_forwards;
    run.region_handoffs = r.region_handoffs;
    run.region_pulls = r.region_pulls;
    run.wide_floods = r.wide_floods;
    run.early_wide_escalations = r.early_wide_escalations;
    run.adv_assigns_swallowed = r.adv_assigns_swallowed;
    run.hedges_dispatched = r.hedges_dispatched;
    run.digests_clamped = r.digests_clamped;
    run.audit_violations = r.audit_violations;
    report.runs.push_back(std::move(run));

    if (spec.rep_index != 0 &&
        (report.rows.empty() || report.rows.back().label != spec.label)) {
      throw std::invalid_argument(
          "sweep report: specs are not in expand() order (row-major, seeds "
          "ascending)");
    }
    if (spec.rep_index == 0) {
      RowSummary row;
      row.label = spec.label;
      row.scenario = spec.config.name;
      row.nodes = spec.config.node_count;
      row.jobs = spec.config.job_count;
      row.base_seed = spec.seed;
      report.rows.push_back(std::move(row));
    }
    RowSummary& row = report.rows.back();
    ++row.runs;
    row.completed.add(static_cast<double>(r.completed()));
    row.completion_minutes.add(r.mean_completion_minutes());
    row.waiting_minutes.add(r.mean_waiting_minutes());
    row.execution_minutes.add(r.mean_execution_minutes());
    row.reschedules.add(static_cast<double>(r.tracker.total_reschedules()));
    row.missed_deadlines.add(static_cast<double>(r.missed_deadlines()));
    row.traffic_mib.add(static_cast<double>(traffic.bytes) / kMiB);
    row.stranded += r.stranded();
    row.violations += r.tracker.violations().size();
    row.traffic.merge(r.traffic);
    row.digests_sent += r.digests_sent;
    row.region_queries_served += r.region_queries_served;
    row.region_forwards += r.region_forwards;
    row.region_handoffs += r.region_handoffs;
    row.region_pulls += r.region_pulls;
    row.wide_floods += r.wide_floods;
    row.early_wide_escalations += r.early_wide_escalations;
    row.adv_assigns_swallowed += r.adv_assigns_swallowed;
    row.hedges_dispatched += r.hedges_dispatched;
    row.digests_clamped += r.digests_clamped;
    row.audit_violations += r.audit_violations;
    for (const auto& [kind, count] : r.audit_by_kind) {
      row.audit_by_kind[kind] += count;
      report.audit_by_kind[kind] += count;
    }

    report.total_stranded += r.stranded();
    report.total_violations += r.tracker.violations().size();
    report.total_audit_violations += r.audit_violations;
    report.traffic.merge(r.traffic);
  }
  return report;
}

void SweepReport::write_json(std::ostream& out) const {
  out << "{\"schema\":\"aria-sweep-report-v1\",\"rows\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const RowSummary& row = rows[i];
    if (i != 0) out << ',';
    out << "{\"label\":\"" << row.label << "\",\"scenario\":\""
        << row.scenario << "\",\"nodes\":" << row.nodes
        << ",\"jobs\":" << row.jobs << ",\"base_seed\":" << row.base_seed
        << ",\"runs\":" << row.runs << ',';
    write_stats(out, "completed", row.completed);
    out << ',';
    write_stats(out, "completion_minutes", row.completion_minutes);
    out << ',';
    write_stats(out, "waiting_minutes", row.waiting_minutes);
    out << ',';
    write_stats(out, "execution_minutes", row.execution_minutes);
    out << ',';
    write_stats(out, "reschedules", row.reschedules);
    out << ',';
    write_stats(out, "missed_deadlines", row.missed_deadlines);
    out << ',';
    write_stats(out, "traffic_mib", row.traffic_mib);
    out << ",\"stranded\":" << row.stranded
        << ",\"violations\":" << row.violations
        << ",\"hierarchy\":{\"digests_sent\":" << row.digests_sent
        << ",\"region_queries_served\":" << row.region_queries_served
        << ",\"region_forwards\":" << row.region_forwards
        << ",\"region_handoffs\":" << row.region_handoffs
        << ",\"region_pulls\":" << row.region_pulls
        << ",\"wide_floods\":" << row.wide_floods
        << ",\"early_wide_escalations\":" << row.early_wide_escalations
        << "},\"adversary\":{\"assigns_swallowed\":"
        << row.adv_assigns_swallowed
        << ",\"hedges_dispatched\":" << row.hedges_dispatched
        << ",\"digests_clamped\":" << row.digests_clamped
        << "},\"audit\":{\"violations\":" << row.audit_violations
        << ",\"by_kind\":";
    write_audit_by_kind(out, row.audit_by_kind);
    out << "},\"traffic\":";
    write_traffic(out, row.traffic, row.runs);
    out << '}';
  }
  out << "],\"totals\":{\"runs\":" << total_runs
      << ",\"stranded\":" << total_stranded
      << ",\"violations\":" << total_violations
      << ",\"audit_violations\":" << total_audit_violations
      << ",\"audit_by_kind\":";
  write_audit_by_kind(out, audit_by_kind);
  out << ",\"traffic\":";
  write_traffic(out, traffic, total_runs);
  out << "}}\n";
}

void SweepReport::write_summary_csv(std::ostream& out) const {
  out << "label,scenario,runs,nodes,jobs,base_seed,"
         "completed_mean,completed_stddev,"
         "completion_min_mean,completion_min_stddev,"
         "waiting_min_mean,execution_min_mean,"
         "reschedules_mean,missed_deadlines_mean,"
         "stranded,violations,traffic_mib_mean,"
         "digests_sent,region_queries_served,region_forwards,"
         "region_handoffs,region_pulls,wide_floods,"
         "early_wide_escalations,adv_assigns_swallowed,hedges_dispatched,"
         "digests_clamped,audit_violations\n";
  for (const RowSummary& row : rows) {
    out << row.label << ',' << row.scenario << ',' << row.runs << ','
        << row.nodes << ',' << row.jobs << ',' << row.base_seed << ','
        << fmt(row.completed.mean()) << ',' << fmt(row.completed.stddev())
        << ',' << fmt(row.completion_minutes.mean()) << ','
        << fmt(row.completion_minutes.stddev()) << ','
        << fmt(row.waiting_minutes.mean()) << ','
        << fmt(row.execution_minutes.mean()) << ','
        << fmt(row.reschedules.mean()) << ','
        << fmt(row.missed_deadlines.mean()) << ',' << row.stranded << ','
        << row.violations << ',' << fmt(row.traffic_mib.mean()) << ','
        << row.digests_sent << ',' << row.region_queries_served << ','
        << row.region_forwards << ',' << row.region_handoffs << ','
        << row.region_pulls << ',' << row.wide_floods << ','
        << row.early_wide_escalations << ',' << row.adv_assigns_swallowed
        << ',' << row.hedges_dispatched << ',' << row.digests_clamped << ','
        << row.audit_violations << '\n';
  }
}

void SweepReport::write_runs_csv(std::ostream& out) const {
  out << "label,scenario,seed,completed,completion_minutes,waiting_minutes,"
         "execution_minutes,reschedules,missed_deadlines,stranded,"
         "violations,traffic_messages,traffic_bytes,events_fired,"
         "final_nodes,digests_sent,region_queries_served,region_forwards,"
         "region_handoffs,region_pulls,wide_floods,early_wide_escalations,"
         "adv_assigns_swallowed,hedges_dispatched,digests_clamped,"
         "audit_violations\n";
  for (const RunRow& run : runs) {
    out << run.label << ',' << run.scenario << ',' << run.seed << ','
        << run.completed << ',' << fmt(run.completion_minutes) << ','
        << fmt(run.waiting_minutes) << ',' << fmt(run.execution_minutes)
        << ',' << run.reschedules << ',' << run.missed_deadlines << ','
        << run.stranded << ',' << run.violations << ','
        << run.traffic_messages << ',' << run.traffic_bytes << ','
        << run.events_fired << ',' << run.final_nodes << ','
        << run.digests_sent << ',' << run.region_queries_served << ','
        << run.region_forwards << ',' << run.region_handoffs << ','
        << run.region_pulls << ',' << run.wide_floods << ','
        << run.early_wide_escalations << ',' << run.adv_assigns_swallowed
        << ',' << run.hedges_dispatched << ',' << run.digests_clamped << ','
        << run.audit_violations << '\n';
  }
}

}  // namespace aria::sweep
