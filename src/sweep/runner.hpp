// Multi-worker execution of a sweep matrix.
//
// Each RunSpec becomes one isolated GridSimulation on a bounded worker
// pool. Simulations share no mutable state — the only process-wide
// structures they touch (the message-type intern registry and the log
// sink) are internally synchronized — so runs are embarrassingly parallel
// and every run is bit-identical to the same (config, seed) executed
// serially. Results come back indexed like the input specs (the matrix's
// deterministic row-major order), never by completion order, which is what
// makes the merged reports byte-identical for any worker count.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "sweep/matrix.hpp"
#include "workload/engine.hpp"

namespace aria::sweep {

struct RunnerOptions {
  /// Maximum simulations in flight; 0 = one per hardware thread.
  std::size_t workers{0};
  /// Invoked after each run completes, serialized by an internal mutex:
  /// (runs completed so far, total runs, the spec that just finished).
  std::function<void(std::size_t, std::size_t, const RunSpec&)> progress{};
};

/// Runs every spec and returns results[i] for specs[i]. Blocks until the
/// whole matrix has executed; propagates the first (lowest-index) failure
/// after all workers drained.
std::vector<workload::RunResult> run_all(const std::vector<RunSpec>& specs,
                                         const RunnerOptions& options = {});

}  // namespace aria::sweep
