// Deterministic merged reports over a sweep's RunResults.
//
// build() folds results in matrix order (row-major, seeds ascending — the
// order expand() produced, independent of which worker finished what when),
// so every emitted byte is a pure function of (matrix, seeds). The JSON and
// CSV writers render doubles with the same fixed "%.9g" the trace exporters
// use; nondeterministic measurements (wall-clock) are deliberately excluded
// — timing lives in BENCH_sweep_scaling.json, not in the report files. See
// docs/sweep.md for the determinism contract.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "sim/traffic.hpp"
#include "sweep/matrix.hpp"
#include "workload/engine.hpp"

namespace aria::sweep {

/// One executed run, flattened to the scalar metrics the reports carry.
struct RunRow {
  std::string label;
  std::string scenario;
  std::uint64_t seed{0};
  std::size_t completed{0};
  double completion_minutes{0.0};
  double waiting_minutes{0.0};
  double execution_minutes{0.0};
  std::uint64_t reschedules{0};
  std::size_t missed_deadlines{0};
  std::size_t stranded{0};
  std::size_t violations{0};
  std::uint64_t traffic_messages{0};
  std::uint64_t traffic_bytes{0};
  std::uint64_t events_fired{0};
  std::size_t final_nodes{0};
  // Hierarchy/overlay health (all zero when the hierarchy is off).
  std::uint64_t digests_sent{0};
  std::uint64_t region_queries_served{0};
  std::uint64_t region_forwards{0};
  std::uint64_t region_handoffs{0};  // cold-aggregator failovers taken
  std::uint64_t region_pulls{0};
  std::uint64_t wide_floods{0};
  std::uint64_t early_wide_escalations{0};
  // Adversary/defense planes (zero on honest / undefended runs).
  std::uint64_t adv_assigns_swallowed{0};
  std::uint64_t hedges_dispatched{0};
  std::uint64_t digests_clamped{0};
  // Invariant auditor (zero when --audit is off; see docs/audit.md).
  std::uint64_t audit_violations{0};
};

/// Welford aggregate over one matrix row (every seed of one label).
struct RowSummary {
  std::string label;
  std::string scenario;
  std::size_t nodes{0};
  std::size_t jobs{0};
  std::uint64_t base_seed{0};
  std::size_t runs{0};

  RunningStats completed;
  RunningStats completion_minutes;
  RunningStats waiting_minutes;
  RunningStats execution_minutes;
  RunningStats reschedules;
  RunningStats missed_deadlines;
  RunningStats traffic_mib;

  std::uint64_t stranded{0};    // summed over the row's runs
  std::uint64_t violations{0};  // summed lifecycle violations
  sim::TrafficLedger traffic;   // summed; divide by runs for per-run means

  // Hierarchy/overlay health, summed over the row's runs.
  std::uint64_t digests_sent{0};
  std::uint64_t region_queries_served{0};
  std::uint64_t region_forwards{0};
  std::uint64_t region_handoffs{0};
  std::uint64_t region_pulls{0};
  std::uint64_t wide_floods{0};
  std::uint64_t early_wide_escalations{0};
  // Adversary/defense planes, summed over the row's runs.
  std::uint64_t adv_assigns_swallowed{0};
  std::uint64_t hedges_dispatched{0};
  std::uint64_t digests_clamped{0};
  // Auditor violations, summed plus per-kind (std::map => name-sorted).
  std::uint64_t audit_violations{0};
  std::map<std::string, std::uint64_t> audit_by_kind;
};

struct SweepReport {
  std::vector<RowSummary> rows;  // matrix row order
  std::vector<RunRow> runs;      // matrix order: row-major, seeds ascending

  std::size_t total_runs{0};
  std::uint64_t total_stranded{0};
  std::uint64_t total_violations{0};
  std::uint64_t total_audit_violations{0};
  std::map<std::string, std::uint64_t> audit_by_kind;  // name-sorted
  sim::TrafficLedger traffic;  // summed over every run

  /// Folds results (indexed like specs, the expand() order) into the
  /// report. Never reorders: two calls with the same inputs produce
  /// identical reports regardless of how the results were computed.
  static SweepReport build(const std::vector<RunSpec>& specs,
                           const std::vector<workload::RunResult>& results);

  /// summary.json: per-row stats + traffic tables + totals.
  void write_json(std::ostream& out) const;
  /// summary.csv: one line per matrix row.
  void write_summary_csv(std::ostream& out) const;
  /// runs.csv: one line per run — the serial-golden anchor (`--workers 1`
  /// rows equal the metrics of plain run_scenario calls).
  void write_runs_csv(std::ostream& out) const;
};

}  // namespace aria::sweep
