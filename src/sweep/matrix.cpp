#include "sweep/matrix.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace aria::sweep {

namespace {

/// Options that configure the aria_sim process rather than a simulation run
/// have no meaning inside a matrix row.
std::string reject_process_options(const workload::CliOptions& o) {
  if (o.show_help) return "--help";
  if (o.list_scenarios) return "--list";
  if (o.quiet) return "--quiet";
  if (!o.csv_dir.empty()) return "--csv";
  if (!o.trace_path.empty()) return "--trace";
  if (!o.trace_jsonl_path.empty()) return "--trace-jsonl";
  if (o.pdes_verify) return "--pdes-verify";
  return {};
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in{line};
  std::string t;
  while (in >> t) tokens.push_back(t);
  return tokens;
}

}  // namespace

void SweepMatrix::add(MatrixEntry entry) {
  if (entry.label.empty()) entry.label = entry.options.scenario;
  if (const std::string bad = reject_process_options(entry.options);
      !bad.empty()) {
    throw std::invalid_argument("matrix row '" + entry.label + "': " + bad +
                                " is not valid inside a sweep matrix");
  }
  for (const MatrixEntry& existing : entries_) {
    if (existing.label == entry.label) {
      throw std::invalid_argument(
          "duplicate matrix label '" + entry.label +
          "': rows repeating a scenario need distinct --label names");
    }
  }
  entries_.push_back(std::move(entry));
}

std::size_t SweepMatrix::run_count() const {
  std::size_t n = 0;
  for (const MatrixEntry& e : entries_) n += e.options.runs;
  return n;
}

std::vector<RunSpec> SweepMatrix::expand() const {
  if (entries_.empty()) {
    throw std::invalid_argument("empty sweep matrix: no rows to run");
  }
  std::vector<RunSpec> specs;
  specs.reserve(run_count());
  for (std::size_t row = 0; row < entries_.size(); ++row) {
    const MatrixEntry& e = entries_[row];
    workload::ScenarioConfig config;
    try {
      config = workload::resolve_scenario(e.options);
    } catch (const std::out_of_range&) {
      throw std::invalid_argument("matrix row '" + e.label +
                                  "': unknown scenario '" +
                                  e.options.scenario + "'");
    }
    for (std::size_t rep = 0; rep < e.options.runs; ++rep) {
      specs.push_back(RunSpec{e.label, config, e.options.seed + rep, row, rep});
    }
  }
  return specs;
}

SweepMatrix SweepMatrix::parse(std::istream& in, const std::string& source) {
  SweepMatrix matrix;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) continue;

    const std::string where =
        source + ":" + std::to_string(line_no) + ": ";
    MatrixEntry entry;
    // --label is a matrix-level flag; strip it before the aria_sim parser.
    std::vector<std::string> args;
    args.reserve(tokens.size());
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      if (tokens[i] == "--label") {
        if (i + 1 >= tokens.size()) {
          throw std::invalid_argument(where + "--label requires a name");
        }
        entry.label = tokens[++i];
      } else {
        args.push_back(tokens[i]);
      }
    }
    if (const auto error = workload::parse_cli(args, entry.options)) {
      throw std::invalid_argument(where + *error);
    }
    try {
      matrix.add(std::move(entry));
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument(where + e.what());
    }
  }
  return matrix;
}

SweepMatrix SweepMatrix::parse_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) {
    throw std::invalid_argument("cannot open matrix file: " + path);
  }
  return parse(in, path);
}

SweepMatrix SweepMatrix::preset(const std::string& name, std::size_t seeds,
                                std::uint64_t base_seed) {
  if (seeds == 0) seeds = 1;
  SweepMatrix matrix;
  auto row = [&](const std::string& scenario) {
    MatrixEntry e;
    e.options.scenario = scenario;
    e.options.runs = seeds;
    e.options.seed = base_seed;
    return e;
  };

  if (name == "table2") {
    for (const auto& s : workload::all_scenarios()) matrix.add(row(s.name));
    return matrix;
  }
  if (name == "table2-smoke") {
    // The downsizing bench_table2_scenarios has always used for its smoke
    // sweep: 100 nodes, 150 jobs, doubled arrival rate, 30 h horizon,
    // expansion shrunk to 140 nodes joining every 30 s.
    for (const auto& s : workload::all_scenarios()) {
      MatrixEntry e = row(s.name);
      e.options.nodes = 100;
      e.options.jobs = 150;
      e.options.interval_s = s.submission_interval.to_seconds() / 2.0;
      e.options.horizon_min = 30.0 * 60.0;
      if (s.expansion) e.options.expand = {140, Duration::seconds(30)};
      matrix.add(std::move(e));
    }
    return matrix;
  }
  if (name == "quick") {
    // One plain + one rescheduling + one high-load + one deadline scenario,
    // tiny: the cheapest matrix that still exercises distinct planes.
    for (const char* scenario : {"FCFS", "iMixed", "iHighLoad", "iDeadline"}) {
      MatrixEntry e = row(scenario);
      e.options.nodes = 40;
      e.options.jobs = 60;
      e.options.horizon_min = 20.0 * 60.0;
      matrix.add(std::move(e));
    }
    return matrix;
  }
  if (name == "scale2k") {
    // Flat vs hierarchical ARiA head-to-head at 2 000 nodes: same scenario,
    // same workload, same seeds — only the discovery plane differs. The
    // merged report's traffic columns are the Fig.-10-style comparison
    // docs/hierarchy.md quotes.
    for (const bool hier : {false, true}) {
      MatrixEntry e = row("iMixed");
      e.label = hier ? "scale2k-hier" : "scale2k-flat";
      e.options.nodes = 2000;
      e.options.jobs = 400;
      e.options.horizon_min = 16.0 * 60.0;
      e.options.hierarchy = hier;
      matrix.add(std::move(e));
    }
    return matrix;
  }
  if (name == "chaos-hier") {
    // Chaos certification for the hierarchy at 2 000 nodes (same grid and
    // workload as scale2k-hier): a fault-free control, then aggregator-
    // targeted churn, a region-aligned partition, digest starvation via
    // message-class bias, and the full cocktail. Every row runs the
    // invariant auditor; the acceptance bar is zero stranded jobs and zero
    // violations on every row (docs/audit.md, docs/faults.md).
    auto base = [&](const char* label) {
      MatrixEntry e = row("iMixed");
      e.label = label;
      e.options.nodes = 2000;
      e.options.jobs = 400;
      e.options.horizon_min = 16.0 * 60.0;
      e.options.hierarchy = true;
      e.options.audit = true;
      return e;
    };
    matrix.add(base("chaos-control"));
    {
      MatrixEntry e = base("chaos-target-churn");
      e.options.target_churn_ranks = 2;
      matrix.add(std::move(e));
    }
    {
      MatrixEntry e = base("chaos-region-partition");
      e.options.region_partitions.push_back({3, 120.0, 90.0});
      e.options.failsafe = true;  // severed initiators need recovery
      matrix.add(std::move(e));
    }
    {
      MatrixEntry e = base("chaos-digest-starve");
      e.options.loss = 0.02;
      e.options.msg_fault_bias.push_back({"REGION_DIGEST", 25.0, 1.0});
      e.options.msg_fault_bias.push_back({"REGION_LOAD", 25.0, 1.0});
      matrix.add(std::move(e));
    }
    {
      MatrixEntry e = base("chaos-cocktail");
      e.options.target_churn_ranks = 2;
      e.options.region_partitions.push_back({3, 120.0, 90.0});
      e.options.loss = 0.02;
      e.options.msg_fault_bias.push_back({"REGION_DIGEST", 25.0, 1.0});
      e.options.msg_fault_bias.push_back({"REGION_LOAD", 25.0, 1.0});
      matrix.add(std::move(e));
    }
    return matrix;
  }
  if (name == "adversary") {
    // Adversarial certification at 2 000 nodes (same grid and workload as
    // chaos-hier): an honest control, each misbehavior role alone, the
    // four-role cocktail, and the cocktail with the defense plane armed.
    // Every row runs the invariant auditor; the acceptance bar is zero
    // stranded jobs and zero violations on every row, with the defended
    // cocktail recovering the honest profile (docs/adversary.md).
    auto base = [&](const char* label) {
      MatrixEntry e = row("iMixed");
      e.label = label;
      e.options.nodes = 2000;
      e.options.jobs = 400;
      e.options.horizon_min = 16.0 * 60.0;
      e.options.hierarchy = true;
      e.options.audit = true;
      return e;
    };
    matrix.add(base("adv-control"));
    using Role = sim::FaultConfig::Adversary::Role;
    const std::pair<const char*, Role> roles[] = {
        {"adv-underbid", Role::kUnderbid},
        {"adv-blackhole", Role::kBlackhole},
        {"adv-freeride", Role::kFreeride},
        {"adv-poison", Role::kPoison},
    };
    for (const auto& [label, role] : roles) {
      MatrixEntry e = base(label);
      e.options.adversaries = 0.1;
      e.options.adversary_roles = {role};
      matrix.add(std::move(e));
    }
    {
      MatrixEntry e = base("adv-cocktail");
      e.options.adversaries = 0.1;
      matrix.add(std::move(e));
    }
    {
      MatrixEntry e = base("adv-cocktail-defended");
      e.options.adversaries = 0.1;
      e.options.defenses = true;
      matrix.add(std::move(e));
    }
    return matrix;
  }
  if (name == "pdes-shards") {
    // One 2 000-node hierarchical simulation at four shard counts
    // (docs/pdes.md): by the determinism contract every row must report
    // byte-identical metrics — the merged report doubles as an equivalence
    // check — while wall-clock varies with the shard count. Pair with
    // tools/bench_all.sh's pdes_shard_scaling bench for the timing curve.
    for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                     std::size_t{4}, std::size_t{8}}) {
      MatrixEntry e = row("iMixed");
      e.label = "pdes-shards" + std::to_string(shards);
      e.options.nodes = 2000;
      e.options.jobs = 400;
      e.options.horizon_min = 16.0 * 60.0;
      e.options.hierarchy = true;
      e.options.shards = shards;
      matrix.add(std::move(e));
    }
    return matrix;
  }
  if (name == "scale10k-hier") {
    // 10 000 nodes under the fault cocktail — hierarchy only (flat flooding
    // at this scale is global-fanout-bound and takes hours of wall clock).
    // Churn implies the failsafe, so the zero-stranded-jobs guarantee is
    // what this preset certifies.
    MatrixEntry e = row("iMixed");
    e.label = "scale10k-hier";
    e.options.nodes = 10000;
    e.options.jobs = 1000;
    e.options.horizon_min = 24.0 * 60.0;
    e.options.hierarchy = true;
    e.options.churn = true;
    e.options.loss = 0.01;
    matrix.add(std::move(e));
    return matrix;
  }
  throw std::invalid_argument("unknown sweep preset: " + name);
}

const std::vector<std::string>& SweepMatrix::preset_names() {
  static const std::vector<std::string> names{
      "table2", "table2-smoke", "quick", "scale2k", "scale10k-hier",
      "chaos-hier", "adversary", "pdes-shards"};
  return names;
}

}  // namespace aria::sweep
