// Undirected overlay topology.
//
// In a deployment every node stores only its own neighbor set; the
// simulation keeps the union of those sets in one structure — the two views
// are equivalent because protocol code only ever reads `neighbors(self)`.
//
// Storage is structure-of-arrays, indexed by the dense NodeId value: one
// flat presence bitmap plus one neighbor vector per id slot. Compared to
// the former unordered_map<NodeId, vector> this removes a hash probe from
// every neighbors() call (the hottest overlay read — every flood hop makes
// one) and lets the BFS helpers use flat distance arrays instead of hash
// maps, which is what keeps 10k+-node overlays (docs/hierarchy.md)
// tractable. Results are unchanged: the map's iteration order never leaked
// into any output (nodes() sorted, connectivity/path metrics are
// order-independent) and per-slot neighbor order is append order, exactly
// as before.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/ids.hpp"

namespace aria::overlay {

class Topology {
 public:
  /// Adds an isolated node; no-op if present.
  void add_node(NodeId n);

  /// Removes a node and all incident links; no-op if absent.
  void remove_node(NodeId n);

  bool has_node(NodeId n) const {
    return n.valid() && n.index() < present_.size() && present_[n.index()];
  }

  /// Adds an undirected link; inserts missing endpoints. Returns false if
  /// the link already existed or a == b.
  bool add_link(NodeId a, NodeId b);

  /// Removes an undirected link; returns false if it did not exist.
  bool remove_link(NodeId a, NodeId b);

  bool has_link(NodeId a, NodeId b) const;

  /// Neighbor list of `n` (empty for unknown nodes). The reference is
  /// invalidated by any mutation.
  const std::vector<NodeId>& neighbors(NodeId n) const {
    return has_node(n) ? adj_[n.index()] : kEmpty;
  }

  std::size_t degree(NodeId n) const { return neighbors(n).size(); }
  std::size_t node_count() const { return node_count_; }
  std::size_t link_count() const { return links_; }
  double average_degree() const;

  /// All nodes in ascending id order.
  std::vector<NodeId> nodes() const;

  /// BFS hop distance; nullopt if unreachable or either node is unknown.
  std::optional<std::size_t> distance(NodeId a, NodeId b) const;

  /// BFS distance with one link (x, y) treated as absent — used by the
  /// maintenance layer to test whether a link is safely removable.
  std::optional<std::size_t> distance_without_link(NodeId a, NodeId b, NodeId x,
                                                   NodeId y) const;

  /// True when every node can reach every other (vacuously true when empty).
  bool connected() const;

  /// Connectivity of the subgraph induced by nodes where `alive` is true:
  /// every alive node can reach every other through alive nodes only
  /// (vacuously true for fewer than two alive nodes). Used by the healing
  /// plane's metrics and tests to ask whether the *live* grid reconverged
  /// after churn.
  bool connected_among(const std::function<bool(NodeId)>& alive) const;

  /// Exact mean shortest-path length over all reachable ordered pairs;
  /// 0 for fewer than two nodes.
  double average_path_length() const;

  /// Longest shortest path over reachable pairs.
  std::size_t diameter() const;

 private:
  static constexpr std::uint32_t kUnvisited = UINT32_MAX;

  std::optional<std::size_t> bfs(NodeId a, NodeId b, NodeId skip_x,
                                 NodeId skip_y) const;
  /// Single-source BFS into a reusable flat distance array (kUnvisited =
  /// unreached); returns the visit queue (every reached node, BFS order).
  void bfs_all(NodeId src, std::vector<std::uint32_t>& dist,
               std::vector<NodeId>& queue) const;

  std::vector<std::vector<NodeId>> adj_;  // slot per id value
  std::vector<std::uint8_t> present_;     // slot occupancy
  std::size_t node_count_{0};
  std::size_t links_{0};
  static const std::vector<NodeId> kEmpty;
};

}  // namespace aria::overlay
