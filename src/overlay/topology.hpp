// Undirected overlay topology.
//
// In a deployment every node stores only its own neighbor set; the
// simulation keeps the union of those sets in one structure — the two views
// are equivalent because protocol code only ever reads `neighbors(self)`.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"

namespace aria::overlay {

class Topology {
 public:
  /// Adds an isolated node; no-op if present.
  void add_node(NodeId n);

  /// Removes a node and all incident links; no-op if absent.
  void remove_node(NodeId n);

  bool has_node(NodeId n) const { return adj_.contains(n); }

  /// Adds an undirected link; inserts missing endpoints. Returns false if
  /// the link already existed or a == b.
  bool add_link(NodeId a, NodeId b);

  /// Removes an undirected link; returns false if it did not exist.
  bool remove_link(NodeId a, NodeId b);

  bool has_link(NodeId a, NodeId b) const;

  /// Neighbor list of `n` (empty for unknown nodes). The reference is
  /// invalidated by any mutation.
  const std::vector<NodeId>& neighbors(NodeId n) const;

  std::size_t degree(NodeId n) const { return neighbors(n).size(); }
  std::size_t node_count() const { return adj_.size(); }
  std::size_t link_count() const { return links_; }
  double average_degree() const;

  std::vector<NodeId> nodes() const;

  /// BFS hop distance; nullopt if unreachable or either node is unknown.
  std::optional<std::size_t> distance(NodeId a, NodeId b) const;

  /// BFS distance with one link (x, y) treated as absent — used by the
  /// maintenance layer to test whether a link is safely removable.
  std::optional<std::size_t> distance_without_link(NodeId a, NodeId b, NodeId x,
                                                   NodeId y) const;

  /// True when every node can reach every other (vacuously true when empty).
  bool connected() const;

  /// Connectivity of the subgraph induced by nodes where `alive` is true:
  /// every alive node can reach every other through alive nodes only
  /// (vacuously true for fewer than two alive nodes). Used by the healing
  /// plane's metrics and tests to ask whether the *live* grid reconverged
  /// after churn.
  bool connected_among(const std::function<bool(NodeId)>& alive) const;

  /// Exact mean shortest-path length over all reachable ordered pairs;
  /// 0 for fewer than two nodes.
  double average_path_length() const;

  /// Longest shortest path over reachable pairs.
  std::size_t diameter() const;

 private:
  std::optional<std::size_t> bfs(NodeId a, NodeId b, NodeId skip_x,
                                 NodeId skip_y) const;

  std::unordered_map<NodeId, std::vector<NodeId>> adj_;
  std::size_t links_{0};
  static const std::vector<NodeId> kEmpty;
};

}  // namespace aria::overlay
