// Selective-flooding support (paper §III-B/D and [28]).
//
// REQUEST and INFORM messages travel by bounded flooding: every hop picks at
// most `fanout` random neighbors (excluding where the message came from) and
// each node relays a given flood instance at most once. FloodRelay provides
// the two pieces of per-node state/logic that implement this: duplicate
// suppression keyed by flood id, and randomized target selection.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/uuid.hpp"
#include "overlay/topology.hpp"

namespace aria::overlay {

class FloodRelay {
 public:
  FloodRelay(const Topology& topo, Rng rng) : topo_{&topo}, rng_{rng} {}

  /// Records that `node` has seen flood `id`. Returns true the first time
  /// (i.e., the node should process/relay), false on duplicates.
  bool mark_seen(NodeId node, const Uuid& id);

  bool has_seen(NodeId node, const Uuid& id) const;

  /// Picks up to `fanout` distinct random neighbors of `node`, never
  /// `exclude_a`/`exclude_b` (typically the previous hop and the flood
  /// originator).
  std::vector<NodeId> pick_targets(NodeId node, std::size_t fanout,
                                   NodeId exclude_a = kInvalidNode,
                                   NodeId exclude_b = kInvalidNode);

  /// Drops dedup state for a finished flood (the protocol schedules this
  /// once a flood can no longer be in flight, bounding memory).
  void forget(const Uuid& id) { seen_.erase(id); }

  std::size_t tracked_floods() const { return seen_.size(); }

 private:
  const Topology* topo_;
  Rng rng_;
  std::unordered_map<Uuid, std::unordered_set<NodeId>> seen_;
};

}  // namespace aria::overlay
