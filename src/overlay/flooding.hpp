// Selective-flooding support (paper §III-B/D and [28]).
//
// REQUEST and INFORM messages travel by bounded flooding: every hop picks at
// most `fanout` random neighbors (excluding where the message came from) and
// each node relays a given flood instance at most once. FloodRelay provides
// the two pieces of per-node state/logic that implement this: duplicate
// suppression keyed by flood id, and randomized target selection.
//
// Dedup state is bounded two ways: the protocol explicitly forget()s a flood
// once it can no longer be in flight, and a TTL sweep (set_ttl) reclaims any
// entry a late duplicate re-created after that forget — without the sweep
// such stragglers accumulated forever. The sweep is keyed purely on sim time
// passed into mark_seen, so it draws no randomness and stays deterministic.
#pragma once

#include <cstddef>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "common/uuid.hpp"
#include "overlay/topology.hpp"

namespace aria::overlay {

class FloodRelay {
 public:
  FloodRelay(const Topology& topo, Rng rng) : topo_{&topo}, rng_{rng} {}

  /// Records that `node` has seen flood `id` at sim time `now`. Returns true
  /// the first time (i.e., the node should process/relay), false on
  /// duplicates. Also sweeps entries whose TTL expired before `now`.
  bool mark_seen(NodeId node, const Uuid& id,
                 TimePoint now = TimePoint::origin());

  bool has_seen(NodeId node, const Uuid& id) const;

  /// Picks up to `fanout` distinct random neighbors of `node`, never
  /// `exclude_a`/`exclude_b` (typically the previous hop and the flood
  /// originator).
  std::vector<NodeId> pick_targets(NodeId node, std::size_t fanout,
                                   NodeId exclude_a = kInvalidNode,
                                   NodeId exclude_b = kInvalidNode);

  /// Region-scoped variant (hierarchical plane, docs/hierarchy.md): same
  /// contract, but only neighbors in `region` under an R-way mod partition
  /// are candidates — a flood relayed through this picker can never leak
  /// across a region boundary. Draws from the same per-node stream as
  /// pick_targets; with the hierarchy plane off this is never called, so
  /// flat runs see identical draw sequences.
  std::vector<NodeId> pick_targets_in_region(NodeId node, std::size_t fanout,
                                             std::size_t region_count,
                                             std::uint32_t region,
                                             NodeId exclude_a = kInvalidNode,
                                             NodeId exclude_b = kInvalidNode);

  /// Drops dedup state for a finished flood (the protocol schedules this
  /// once a flood can no longer be in flight, bounding memory).
  void forget(const Uuid& id) { seen_.erase(id); }

  /// Enables the TTL sweep: entries untouched by forget() are reclaimed once
  /// `ttl` has passed since they were first seen. Zero disables (default).
  void set_ttl(Duration ttl) { ttl_ = ttl; }

  std::size_t tracked_floods() const { return seen_.size(); }

 private:
  struct Entry {
    std::unordered_set<NodeId> nodes;
    TimePoint first_seen{TimePoint::origin()};
  };

  void sweep(TimePoint now);

  /// Target picks draw from a per-relaying-node stream (rng_ forked on the
  /// node id, cached lazily) — the PDES determinism-contract rule
  /// (docs/pdes.md): each node's pick sequence must depend only on its own
  /// relay order, which is identical under sequential and sharded execution.
  Rng& pick_rng(NodeId node) {
    auto it = node_rng_.find(node);
    if (it == node_rng_.end()) {
      it = node_rng_.emplace(node, rng_.fork(node.value())).first;
    }
    return it->second;
  }

  const Topology* topo_;
  Rng rng_;
  std::unordered_map<NodeId, Rng> node_rng_;
  Duration ttl_{Duration::zero()};
  std::unordered_map<Uuid, Entry> seen_;
  // (first_seen, id) in insertion order; a stale record whose first_seen no
  // longer matches the live entry (the flood was forgotten and re-created)
  // is skipped — the re-creation enqueued its own record.
  std::deque<std::pair<TimePoint, Uuid>> expiry_;
};

}  // namespace aria::overlay
