#include "overlay/blatant.hpp"

#include <cassert>

namespace aria::overlay {

BlatantMaintainer::BlatantMaintainer(Topology& topo, BlatantParams params,
                                     Rng rng)
    : topo_{topo}, params_{params}, rng_{rng} {
  assert(params_.beta <= params_.alpha);
}

NodeId BlatantMaintainer::random_walk(NodeId origin) const {
  NodeId prev = kInvalidNode;
  NodeId cur = origin;
  for (std::size_t step = 0; step < params_.walk_length; ++step) {
    const auto& ns = topo_.neighbors(cur);
    if (ns.empty()) break;
    // Avoid immediate backtracking when another option exists; never step
    // onto a crashed node (an ant is a message, and dead machines receive
    // none). A dead pick burns the attempt without becoming `next`, so the
    // walk can no longer land on an invalid/dead hop when every draw fails.
    NodeId next = kInvalidNode;
    for (int attempt = 0; attempt < 4; ++attempt) {
      const auto pick = ns[static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(ns.size()) - 1))];
      if (!alive(pick)) continue;
      next = pick;
      if (pick != prev || ns.size() == 1) break;
    }
    if (!next.valid()) {
      // All draws hit dead neighbors: fall back to a deterministic scan so
      // the ant keeps moving whenever any live hop exists at all.
      for (NodeId n : ns) {
        if (!alive(n)) continue;
        next = n;
        if (n != prev) break;  // prefer progress over backtracking
      }
      if (!next.valid()) break;  // stranded: every neighbor is dead
    }
    prev = cur;
    cur = next;
  }
  assert(cur == kInvalidNode || topo_.has_node(cur));
  return cur;
}

void BlatantMaintainer::discovery_ant(NodeId origin) {
  ++stats_.discovery_ants;
  const NodeId target = random_walk(origin);
  if (target == origin || !target.valid()) return;
  if (topo_.has_link(origin, target)) return;
  const auto d = topo_.distance(origin, target);
  if (d && *d > params_.alpha) {
    topo_.add_link(origin, target);
    ++stats_.links_added;
  }
}

void BlatantMaintainer::pruning_ant(NodeId origin) {
  ++stats_.pruning_ants;
  const auto& ns = topo_.neighbors(origin);
  if (ns.size() <= params_.min_degree) return;
  const NodeId victim = ns[static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(ns.size()) - 1))];
  // Both endpoints must stay above the degree floor...
  if (topo_.degree(victim) <= params_.min_degree) return;
  // ...and an alternative path of length <= beta must exist, which both
  // preserves connectivity and keeps the alpha bound intact.
  const auto detour =
      topo_.distance_without_link(origin, victim, origin, victim);
  if (detour && *detour <= params_.beta) {
    topo_.remove_link(origin, victim);
    ++stats_.links_removed;
  }
}

void BlatantMaintainer::tick() {
  // Snapshot the node set: ants may mutate the topology while iterating.
  const auto nodes = topo_.nodes();
  for (NodeId n : nodes) {
    // Draw first, gate second: crashed origins emit no ants, but the
    // Bernoulli stream stays identical to the all-alive run, so enabling
    // the liveness oracle cannot perturb fault-free topologies.
    if (rng_.bernoulli(params_.discovery_rate) && alive(n)) discovery_ant(n);
    if (rng_.bernoulli(params_.pruning_rate) && alive(n)) pruning_ant(n);
  }
}

void BlatantMaintainer::converge(std::size_t max_rounds,
                                 std::size_t quiet_rounds) {
  std::size_t quiet = 0;
  for (std::size_t round = 0; round < max_rounds && quiet < quiet_rounds;
       ++round) {
    const auto added = stats_.links_added;
    const auto removed = stats_.links_removed;
    tick();
    const bool changed =
        stats_.links_added != added || stats_.links_removed != removed;
    quiet = changed ? 0 : quiet + 1;
  }
}

}  // namespace aria::overlay
