#include "overlay/bootstrap.hpp"

#include <algorithm>
#include <cassert>

#include "overlay/region.hpp"

namespace aria::overlay {

Topology bootstrap_random(std::size_t count, double target_avg_degree, Rng& rng,
                          std::uint32_t first_id) {
  Topology topo;
  if (count == 0) return topo;
  for (std::size_t i = 0; i < count; ++i) {
    topo.add_node(NodeId{first_id + static_cast<std::uint32_t>(i)});
  }
  if (count == 1) return topo;

  // Ring for guaranteed connectivity (average degree 2).
  for (std::size_t i = 0; i < count; ++i) {
    const NodeId a{first_id + static_cast<std::uint32_t>(i)};
    const NodeId b{first_id + static_cast<std::uint32_t>((i + 1) % count)};
    topo.add_link(a, b);
  }

  // Random chords up to the requested average degree.
  const auto target_links =
      static_cast<std::size_t>(target_avg_degree * static_cast<double>(count) / 2.0);
  std::size_t guard = 0;
  while (topo.link_count() < target_links && guard < 50 * count) {
    const auto i = static_cast<std::uint32_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(count) - 1));
    const auto j = static_cast<std::uint32_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(count) - 1));
    topo.add_link(NodeId{first_id + i}, NodeId{first_id + j});
    ++guard;
  }
  return topo;
}

Topology bootstrap_regular(std::size_t count, std::size_t k, Rng& rng,
                           std::uint32_t first_id) {
  Topology topo;
  for (std::size_t i = 0; i < count; ++i) {
    topo.add_node(NodeId{first_id + static_cast<std::uint32_t>(i)});
  }
  if (count < 2) return topo;

  // Random stub matching: k stubs per node, shuffled and paired.
  std::vector<NodeId> stubs;
  stubs.reserve(count * k);
  for (std::size_t i = 0; i < count; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      stubs.push_back(NodeId{first_id + static_cast<std::uint32_t>(i)});
    }
  }
  rng.shuffle(stubs);
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    topo.add_link(stubs[i], stubs[i + 1]);  // self/duplicate pairs ignored
  }

  // Patch connectivity: walk the id ring and link consecutive nodes that
  // ended up in different components.
  for (std::size_t i = 0; i + 1 < count; ++i) {
    const NodeId a{first_id + static_cast<std::uint32_t>(i)};
    const NodeId b{first_id + static_cast<std::uint32_t>(i + 1)};
    if (!topo.distance(a, b)) topo.add_link(a, b);
  }
  return topo;
}

Topology bootstrap_small_world(std::size_t count, std::size_t k, double beta,
                               Rng& rng, std::uint32_t first_id) {
  Topology topo;
  for (std::size_t i = 0; i < count; ++i) {
    topo.add_node(NodeId{first_id + static_cast<std::uint32_t>(i)});
  }
  if (count < 2) return topo;

  const std::size_t half = std::max<std::size_t>(1, k / 2);
  // Ring lattice.
  for (std::size_t i = 0; i < count; ++i) {
    for (std::size_t j = 1; j <= half; ++j) {
      topo.add_link(NodeId{first_id + static_cast<std::uint32_t>(i)},
                    NodeId{first_id +
                           static_cast<std::uint32_t>((i + j) % count)});
    }
  }
  // Rewire each lattice link with probability beta (keep one endpoint).
  for (std::size_t i = 0; i < count; ++i) {
    const NodeId a{first_id + static_cast<std::uint32_t>(i)};
    for (std::size_t j = 1; j <= half; ++j) {
      const NodeId b{first_id + static_cast<std::uint32_t>((i + j) % count)};
      if (!rng.bernoulli(beta)) continue;
      const NodeId c{first_id + static_cast<std::uint32_t>(rng.uniform_int(
                         0, static_cast<std::int64_t>(count) - 1))};
      if (c == a || topo.has_link(a, c)) continue;
      // Never disconnect: only rewire if (a, b) is not a bridge.
      if (!topo.remove_link(a, b)) continue;
      if (!topo.distance(a, b)) {
        topo.add_link(a, b);  // was a bridge; undo
        continue;
      }
      topo.add_link(a, c);
    }
  }
  return topo;
}

Topology bootstrap_hierarchical(std::size_t count, std::size_t region_count,
                                double intra_degree,
                                std::size_t cross_links_per_region, Rng& rng) {
  Topology topo;
  if (count == 0) return topo;
  const std::size_t regions = std::max<std::size_t>(1, region_count);
  for (std::size_t i = 0; i < count; ++i) {
    topo.add_node(NodeId{static_cast<std::uint32_t>(i)});
  }

  // Per-region connected subgraphs: member ring plus random chords up to the
  // requested intra-region average degree.
  std::vector<std::vector<NodeId>> members(regions);
  for (std::size_t i = 0; i < count; ++i) {
    const NodeId n{static_cast<std::uint32_t>(i)};
    members[region_of(n, regions)].push_back(n);
  }
  for (const auto& m : members) {
    if (m.size() < 2) continue;
    for (std::size_t i = 0; i < m.size(); ++i) {
      topo.add_link(m[i], m[(i + 1) % m.size()]);
    }
    const auto target_links = static_cast<std::size_t>(
        intra_degree * static_cast<double>(m.size()) / 2.0);
    std::size_t added = m.size();  // the ring
    std::size_t guard = 0;
    while (added < target_links && guard < 50 * m.size()) {
      const auto i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(m.size()) - 1));
      const auto j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(m.size()) - 1));
      if (topo.add_link(m[i], m[j])) ++added;
      ++guard;
    }
  }

  // Region ring: one member of region r to one of region r+1, so the whole
  // overlay stays connected no matter how the random cross links fall.
  if (regions > 1) {
    for (std::size_t r = 0; r < regions; ++r) {
      const auto& a = members[r];
      const auto& b = members[(r + 1) % regions];
      if (a.empty() || b.empty()) continue;
      const NodeId from = a[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(a.size()) - 1))];
      const NodeId to = b[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(b.size()) - 1))];
      topo.add_link(from, to);
    }
    // Extra random cross links (resilience; region-scoped floods never use
    // them, but flat protocol traffic and healing repair do).
    for (std::size_t r = 0; r < regions; ++r) {
      for (std::size_t c = 0; c < cross_links_per_region; ++c) {
        const auto& a = members[r];
        if (a.empty()) continue;
        const auto other = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(regions) - 1));
        const auto& b = members[other];
        if (other == r || b.empty()) continue;
        topo.add_link(
            a[static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(a.size()) - 1))],
            b[static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(b.size()) - 1))]);
      }
    }
  }
  return topo;
}

void join_node_in_region(Topology& topo, NodeId node, std::size_t contacts,
                         std::size_t region_count, Rng& rng) {
  assert(!topo.has_node(node));
  const std::uint32_t region = region_of(node, region_count);
  std::vector<NodeId> existing;
  for (NodeId n : topo.nodes()) {
    if (region_of(n, region_count) == region) existing.push_back(n);
  }
  if (existing.empty()) existing = topo.nodes();  // empty region: link anywhere
  topo.add_node(node);
  if (existing.empty()) return;
  const auto picks = rng.sample(existing, contacts == 0 ? 1 : contacts);
  for (NodeId c : picks) topo.add_link(node, c);
}

void join_node(Topology& topo, NodeId node, std::size_t contacts, Rng& rng) {
  assert(!topo.has_node(node));
  const std::vector<NodeId> existing = topo.nodes();
  topo.add_node(node);
  if (existing.empty()) return;
  const auto picks = rng.sample(existing, contacts == 0 ? 1 : contacts);
  for (NodeId c : picks) topo.add_link(node, c);
}

}  // namespace aria::overlay
