#include "overlay/region.hpp"

#include <algorithm>

namespace aria::overlay {

std::vector<NodeId> aggregator_candidates(std::uint32_t region,
                                          std::size_t region_count,
                                          std::size_t standby) {
  std::vector<NodeId> out;
  out.reserve(standby);
  for (std::size_t k = 0; k < standby; ++k) {
    out.push_back(aggregator_candidate(region, region_count, k));
  }
  return out;
}

std::size_t resolve_region_count(std::size_t requested, std::size_t node_count,
                                 std::size_t target_region_size,
                                 std::size_t standby) {
  if (node_count == 0) return 1;
  std::size_t r = requested;
  if (r == 0) {
    r = node_count / std::max<std::size_t>(1, target_region_size);
  }
  // Every region must seat its full candidate list among the initial ids.
  const std::size_t max_r = node_count / std::max<std::size_t>(1, standby);
  r = std::min(r, max_r);
  return std::max<std::size_t>(1, r);
}

RegionDigest aggregate_loads(std::uint32_t region, std::uint64_t epoch,
                             const std::vector<MemberLoad>& loads) {
  RegionDigest d;
  d.region = region;
  d.epoch = epoch;
  for (const MemberLoad& m : loads) {
    ++d.members;
    if (m.idle) ++d.idle;
    d.backlog_seconds += m.backlog_seconds;
    d.queue_len += m.queue_len;
  }
  return d;
}

}  // namespace aria::overlay
