// BLATANT-S-style self-organized overlay maintenance.
//
// The paper relies on a separate publication ([28], Brocco & Hirsbrunner,
// GridPeer 2009) for its overlay: ant-like agents wander the topology,
// adding logical links when the sampled path length exceeds a bound (alpha)
// and pruning links that an alternative path of length <= beta can replace.
// The source of BLATANT-S is unavailable, so this is a faithful
// reimplementation of that mechanism's observable behaviour: bounded
// average path length, near-minimal link count, preserved connectivity, and
// seamless integration of joining nodes. ARiA only depends on these
// properties (paper §IV-A).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>

#include "common/rng.hpp"
#include "overlay/topology.hpp"

namespace aria::overlay {

struct BlatantParams {
  /// Maximum acceptable hop distance between sampled node pairs; a
  /// discovery ant finding a longer path creates a shortcut link.
  std::size_t alpha{9};
  /// A link is redundant — and prunable — if its endpoints stay within
  /// `beta` hops without it. Must be <= alpha to keep the bound.
  std::size_t beta{5};
  /// Random-walk length of discovery ants.
  std::size_t walk_length{12};
  /// Pruning never drops a node's degree below this. 4 reproduces the
  /// paper's reported average node degree (§IV-A).
  std::size_t min_degree{4};
  /// Fraction of nodes emitting a discovery ant per tick.
  double discovery_rate{0.25};
  /// Fraction of nodes emitting a pruning ant per tick.
  double pruning_rate{0.25};
};

class BlatantMaintainer {
 public:
  struct Stats {
    std::uint64_t discovery_ants{0};
    std::uint64_t pruning_ants{0};
    std::uint64_t links_added{0};
    std::uint64_t links_removed{0};
  };

  BlatantMaintainer(Topology& topo, BlatantParams params, Rng rng);

  /// Installs a liveness oracle for churn-aware maintenance: crashed nodes
  /// emit no ants and random walks do not step onto them (an ant is a
  /// message exchange, and dead machines exchange nothing). Unset, every
  /// node counts as alive. The per-node Bernoulli draws are made before the
  /// oracle is consulted, so installing it leaves fault-free runs
  /// bit-identical.
  void set_liveness(std::function<bool(NodeId)> alive) {
    liveness_ = std::move(alive);
  }

  /// One maintenance round: every node emits ants with the configured
  /// probabilities.
  void tick();

  /// Convenience: ticks until the topology stabilizes (no link churn for
  /// `quiet_rounds` consecutive ticks) or `max_rounds` elapse.
  void converge(std::size_t max_rounds = 200, std::size_t quiet_rounds = 5);

  /// A single discovery ant from `origin`: random walk, then shortcut
  /// creation if the walked pair is further apart than alpha.
  void discovery_ant(NodeId origin);

  /// A single pruning ant at `origin`: drops one redundant incident link if
  /// degrees and the beta-detour test allow it.
  void pruning_ant(NodeId origin);

  const Stats& stats() const { return stats_; }
  const BlatantParams& params() const { return params_; }

 private:
  NodeId random_walk(NodeId origin) const;
  bool alive(NodeId n) const { return !liveness_ || liveness_(n); }

  Topology& topo_;
  BlatantParams params_;
  mutable Rng rng_;
  Stats stats_;
  std::function<bool(NodeId)> liveness_;
};

}  // namespace aria::overlay
