// Per-node overlay liveness state (the self-healing plane's local view).
//
// The paper's overlay keeps working while nodes come and go because every
// node maintains only *local* knowledge about its neighbors. NeighborView is
// that knowledge: for each overlay neighbor a small state machine
//
//   live --(suspect_after missed probes)--> suspected
//   suspected --(evict_after missed probes)--> evicted
//   suspected --(PONG arrives)--> live            [counted: false suspicion]
//   evicted --(link re-established)--> live
//
// driven entirely by PING/PONG probes travelling over the simulated network
// (so loss, spikes, partitions and crashes all distort it exactly as they
// would in a deployment). A bounded cache of candidate contacts — learned
// from the live-neighbor samples piggybacked on PONG and LINK_ACK messages —
// feeds the repair path when eviction pushes the live degree below the
// floor.
//
// Determinism contract: all containers iterate in NodeId order and nothing
// here draws randomness, so probe rounds are bit-reproducible. See
// docs/overlay.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"

namespace aria::overlay {

/// Knobs of the self-healing plane. Everything is off unless `enabled`; the
/// defaults detect a crashed neighbor after evict_after * probe_period
/// (2 minutes) while tolerating suspect_after lost probe exchanges.
struct HealingParams {
  bool enabled{false};
  /// One probe round every period; each round pings every tracked neighbor.
  Duration probe_period{Duration::seconds(30)};
  /// Consecutive unanswered probes before a neighbor is suspected.
  std::size_t suspect_after{2};
  /// Consecutive unanswered probes before a neighbor is evicted from the
  /// flood/gossip target set (and its link dropped). Must be > suspect_after.
  std::size_t evict_after{4};
  /// Eviction below this live degree triggers repair from cached contacts
  /// (mirrors BlatantParams::min_degree, the paper's average degree).
  std::size_t degree_floor{4};
  /// Live-neighbor sample carried on each PONG / LINK_ACK.
  std::size_t gossip_contacts{4};
  /// Bound on the learned-contact cache.
  std::size_t contact_cache{16};
  /// LINK_REQ attempts issued per probe round while below the floor.
  std::size_t repair_attempts{2};
};

enum class PeerState : std::uint8_t { kLive, kSuspected, kEvicted };

class NeighborView {
 public:
  /// Overlay-health counters, aggregated across nodes by the engine.
  struct Stats {
    std::uint64_t evictions{0};
    std::uint64_t false_suspicions{0};  // suspected peer answered after all
    std::uint64_t repair_links{0};      // links confirmed via LINK_ACK
    std::uint64_t rejoin_requests{0};   // LINK_REQs sent while rejoining
    std::uint64_t probe_rounds{0};
  };

  /// What one recorded miss did to a peer.
  enum class Transition { kNone, kSuspected, kEvicted };

  // --- membership -------------------------------------------------------
  /// Starts tracking `peer` as live (revives suspected/evicted entries and
  /// clears their miss history). Idempotent for already-live peers.
  void track(NodeId peer);

  /// Forgets `peer` entirely (link no longer exists).
  void untrack(NodeId peer);

  bool tracked(NodeId peer) const;
  PeerState state(NodeId peer) const;  // kEvicted for unknown peers

  /// Every tracked peer regardless of state, in NodeId order (the probe
  /// loop's iteration set).
  std::vector<NodeId> tracked_peers() const;

  /// Tracked peers that still belong in the flood/gossip target set (live +
  /// suspected; suspected peers keep receiving traffic until evicted), in
  /// NodeId order.
  std::vector<NodeId> targets() const;

  /// Live (unsuspected) tracked peers, in NodeId order.
  std::vector<NodeId> live_neighbors() const;
  std::size_t live_degree() const;
  std::size_t tracked_count() const { return peers_.size(); }

  // --- probe bookkeeping ------------------------------------------------
  /// Records that a probe with `seq` is outstanding for `peer`.
  void probe_sent(NodeId peer, std::uint32_t seq);

  /// True when `peer` has an unanswered probe outstanding.
  bool outstanding(NodeId peer) const;

  /// A probe round passed without an answer: bumps the miss counter and
  /// applies the suspect/evict thresholds. Returns what changed. On
  /// kEvicted the peer is *kept* (state kEvicted) so callers can observe
  /// it; they normally untrack() it right after dropping the link.
  Transition record_miss(NodeId peer, const HealingParams& params);

  /// A PONG for probe `seq` arrived; stale sequence numbers are ignored.
  /// Clears the miss counter; a suspected peer returns to live and counts
  /// as a false suspicion.
  void pong_received(NodeId peer, std::uint32_t seq);

  // --- contact cache ----------------------------------------------------
  /// Remembers `contact` as a repair candidate (FIFO, bounded, deduped;
  /// tracked peers and `self` are never cached).
  void learn_contact(NodeId contact, NodeId self, std::size_t cache_bound);

  /// Pops the oldest cached contact not currently tracked; kInvalidNode
  /// when the cache is exhausted.
  NodeId take_contact();

  const std::vector<NodeId>& contacts() const { return contacts_; }

  /// Drops volatile state (a crash wipes the view; the node's remembered
  /// bootstrap contacts live elsewhere, modelling stable storage).
  void clear();

  Stats& stats() { return stats_; }
  const Stats& stats() const { return stats_; }

 private:
  struct Peer {
    PeerState state{PeerState::kLive};
    std::size_t missed{0};
    bool outstanding{false};
    std::uint32_t probe_seq{0};
  };

  std::map<NodeId, Peer> peers_;   // ordered: deterministic probe order
  std::vector<NodeId> contacts_;   // FIFO insertion order, bounded
  Stats stats_;
};

}  // namespace aria::overlay
