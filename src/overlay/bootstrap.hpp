// Initial topology construction and node join.
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "overlay/topology.hpp"

namespace aria::overlay {

/// Builds a connected random topology over nodes n0..n0+count-1: a ring
/// (guarantees connectivity) plus random chords until `target_avg_degree`
/// is reached. This seeds the BLATANT-S maintenance loop, which then
/// reshapes it toward the bounded-path-length / minimal-links profile.
Topology bootstrap_random(std::size_t count, double target_avg_degree, Rng& rng,
                          std::uint32_t first_id = 0);

/// Joins `node` to an existing topology by linking it to `contacts` random
/// alive nodes (grid node arrival in the Expanding scenarios).
void join_node(Topology& topo, NodeId node, std::size_t contacts, Rng& rng);

// --- alternative overlay families (paper future work: "different types of
// peer-to-peer overlay networks") -------------------------------------------

/// k-regular-ish random graph: every node gets k link stubs paired randomly
/// (self-loops/duplicates dropped, connectivity patched via a ring sweep).
/// Approximates an unstructured Gnutella-style overlay.
Topology bootstrap_regular(std::size_t count, std::size_t k, Rng& rng,
                           std::uint32_t first_id = 0);

/// Watts–Strogatz small world: a ring lattice where each node links to its
/// `k/2` nearest neighbors per side, then every link is rewired to a random
/// endpoint with probability `beta`.
Topology bootstrap_small_world(std::size_t count, std::size_t k, double beta,
                               Rng& rng, std::uint32_t first_id = 0);

}  // namespace aria::overlay
