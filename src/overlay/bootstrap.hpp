// Initial topology construction and node join.
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "overlay/topology.hpp"

namespace aria::overlay {

/// Builds a connected random topology over nodes n0..n0+count-1: a ring
/// (guarantees connectivity) plus random chords until `target_avg_degree`
/// is reached. This seeds the BLATANT-S maintenance loop, which then
/// reshapes it toward the bounded-path-length / minimal-links profile.
Topology bootstrap_random(std::size_t count, double target_avg_degree, Rng& rng,
                          std::uint32_t first_id = 0);

/// Joins `node` to an existing topology by linking it to `contacts` random
/// alive nodes (grid node arrival in the Expanding scenarios).
void join_node(Topology& topo, NodeId node, std::size_t contacts, Rng& rng);

// --- alternative overlay families (paper future work: "different types of
// peer-to-peer overlay networks") -------------------------------------------

/// k-regular-ish random graph: every node gets k link stubs paired randomly
/// (self-loops/duplicates dropped, connectivity patched via a ring sweep).
/// Approximates an unstructured Gnutella-style overlay.
Topology bootstrap_regular(std::size_t count, std::size_t k, Rng& rng,
                           std::uint32_t first_id = 0);

/// Watts–Strogatz small world: a ring lattice where each node links to its
/// `k/2` nearest neighbors per side, then every link is rewired to a random
/// endpoint with probability `beta`.
Topology bootstrap_small_world(std::size_t count, std::size_t k, double beta,
                               Rng& rng, std::uint32_t first_id = 0);

// --- hierarchical discovery plane (docs/hierarchy.md) -----------------------

/// Region-aware overlay over nodes 0..count-1 partitioned mod `region_count`:
/// each region's members form their own connected random subgraph (ring +
/// chords up to `intra_degree`), one member of region r links to one member
/// of region r+1 (the region ring, guaranteeing global connectivity), and
/// `cross_links_per_region` extra random cross-region links per region give
/// region-local floods an escape hatch if an entire candidate set dies.
Topology bootstrap_hierarchical(std::size_t count, std::size_t region_count,
                                double intra_degree,
                                std::size_t cross_links_per_region, Rng& rng);

/// Joins `node` to an existing hierarchical topology: contacts are sampled
/// from the node's own region only, so region-scoped flooding keeps reaching
/// late arrivals (falls back to any node while the region has no members).
void join_node_in_region(Topology& topo, NodeId node, std::size_t contacts,
                         std::size_t region_count, Rng& rng);

}  // namespace aria::overlay
