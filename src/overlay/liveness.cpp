#include "overlay/liveness.hpp"

#include <algorithm>
#include <cassert>

namespace aria::overlay {

void NeighborView::track(NodeId peer) {
  assert(peer.valid());
  Peer& p = peers_[peer];
  p.state = PeerState::kLive;
  p.missed = 0;
  p.outstanding = false;
  // A revived peer is a neighbor again; it no longer belongs in the
  // candidate cache.
  contacts_.erase(std::remove(contacts_.begin(), contacts_.end(), peer),
                  contacts_.end());
}

void NeighborView::untrack(NodeId peer) { peers_.erase(peer); }

bool NeighborView::tracked(NodeId peer) const { return peers_.contains(peer); }

PeerState NeighborView::state(NodeId peer) const {
  const auto it = peers_.find(peer);
  return it == peers_.end() ? PeerState::kEvicted : it->second.state;
}

std::vector<NodeId> NeighborView::tracked_peers() const {
  std::vector<NodeId> out;
  out.reserve(peers_.size());
  for (const auto& [id, _] : peers_) out.push_back(id);
  return out;
}

std::vector<NodeId> NeighborView::targets() const {
  std::vector<NodeId> out;
  out.reserve(peers_.size());
  for (const auto& [id, p] : peers_) {
    if (p.state != PeerState::kEvicted) out.push_back(id);
  }
  return out;
}

std::vector<NodeId> NeighborView::live_neighbors() const {
  std::vector<NodeId> out;
  out.reserve(peers_.size());
  for (const auto& [id, p] : peers_) {
    if (p.state == PeerState::kLive) out.push_back(id);
  }
  return out;
}

std::size_t NeighborView::live_degree() const {
  std::size_t n = 0;
  for (const auto& [id, p] : peers_) {
    if (p.state == PeerState::kLive) ++n;
  }
  return n;
}

void NeighborView::probe_sent(NodeId peer, std::uint32_t seq) {
  const auto it = peers_.find(peer);
  if (it == peers_.end()) return;
  it->second.outstanding = true;
  it->second.probe_seq = seq;
}

bool NeighborView::outstanding(NodeId peer) const {
  const auto it = peers_.find(peer);
  return it != peers_.end() && it->second.outstanding;
}

NeighborView::Transition NeighborView::record_miss(
    NodeId peer, const HealingParams& params) {
  const auto it = peers_.find(peer);
  if (it == peers_.end()) return Transition::kNone;
  Peer& p = it->second;
  p.outstanding = false;
  ++p.missed;
  if (p.missed >= params.evict_after) {
    p.state = PeerState::kEvicted;
    ++stats_.evictions;
    return Transition::kEvicted;
  }
  if (p.missed >= params.suspect_after && p.state == PeerState::kLive) {
    p.state = PeerState::kSuspected;
    return Transition::kSuspected;
  }
  return Transition::kNone;
}

void NeighborView::pong_received(NodeId peer, std::uint32_t seq) {
  const auto it = peers_.find(peer);
  if (it == peers_.end()) return;
  Peer& p = it->second;
  // A straggler from an older round says nothing about the current probe.
  if (!p.outstanding || p.probe_seq != seq) return;
  p.outstanding = false;
  p.missed = 0;
  if (p.state == PeerState::kSuspected) {
    ++stats_.false_suspicions;
    p.state = PeerState::kLive;
  }
}

void NeighborView::learn_contact(NodeId contact, NodeId self,
                                 std::size_t cache_bound) {
  if (!contact.valid() || contact == self) return;
  if (peers_.contains(contact)) return;
  if (std::find(contacts_.begin(), contacts_.end(), contact) !=
      contacts_.end()) {
    return;
  }
  contacts_.push_back(contact);
  if (contacts_.size() > cache_bound) {
    contacts_.erase(contacts_.begin());  // FIFO: oldest knowledge goes first
  }
}

NodeId NeighborView::take_contact() {
  while (!contacts_.empty()) {
    const NodeId c = contacts_.front();
    contacts_.erase(contacts_.begin());
    if (!peers_.contains(c)) return c;
  }
  return kInvalidNode;
}

void NeighborView::clear() {
  peers_.clear();
  contacts_.clear();
}

}  // namespace aria::overlay
