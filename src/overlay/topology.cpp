#include "overlay/topology.hpp"

#include <algorithm>

namespace aria::overlay {

const std::vector<NodeId> Topology::kEmpty{};

void Topology::add_node(NodeId n) {
  if (!n.valid() || has_node(n)) return;
  if (n.index() >= present_.size()) {
    present_.resize(n.index() + 1, 0);
    adj_.resize(n.index() + 1);
  }
  present_[n.index()] = 1;
  ++node_count_;
}

void Topology::remove_node(NodeId n) {
  if (!has_node(n)) return;
  for (NodeId m : adj_[n.index()]) {
    auto& back = adj_[m.index()];
    back.erase(std::remove(back.begin(), back.end(), n), back.end());
    --links_;
  }
  adj_[n.index()].clear();
  adj_[n.index()].shrink_to_fit();
  present_[n.index()] = 0;
  --node_count_;
}

bool Topology::add_link(NodeId a, NodeId b) {
  if (a == b || !a.valid() || !b.valid()) return false;
  add_node(a);
  add_node(b);
  auto& na = adj_[a.index()];
  if (std::find(na.begin(), na.end(), b) != na.end()) return false;
  na.push_back(b);
  adj_[b.index()].push_back(a);
  ++links_;
  return true;
}

bool Topology::remove_link(NodeId a, NodeId b) {
  if (!has_node(a) || !has_node(b)) return false;
  auto& na = adj_[a.index()];
  auto pa = std::find(na.begin(), na.end(), b);
  if (pa == na.end()) return false;
  na.erase(pa);
  auto& nb = adj_[b.index()];
  nb.erase(std::remove(nb.begin(), nb.end(), a), nb.end());
  --links_;
  return true;
}

bool Topology::has_link(NodeId a, NodeId b) const {
  if (!has_node(a)) return false;
  const auto& na = adj_[a.index()];
  return std::find(na.begin(), na.end(), b) != na.end();
}

double Topology::average_degree() const {
  if (node_count_ == 0) return 0.0;
  return 2.0 * static_cast<double>(links_) / static_cast<double>(node_count_);
}

std::vector<NodeId> Topology::nodes() const {
  std::vector<NodeId> out;
  out.reserve(node_count_);
  for (std::size_t i = 0; i < present_.size(); ++i) {
    if (present_[i]) out.push_back(NodeId{static_cast<std::uint32_t>(i)});
  }
  return out;
}

std::optional<std::size_t> Topology::bfs(NodeId a, NodeId b, NodeId skip_x,
                                         NodeId skip_y) const {
  if (!has_node(a) || !has_node(b)) return std::nullopt;
  if (a == b) return 0;
  std::vector<std::uint32_t> dist(present_.size(), kUnvisited);
  dist[a.index()] = 0;
  std::vector<NodeId> queue{a};
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId u = queue[head];
    const std::uint32_t du = dist[u.index()];
    for (NodeId v : adj_[u.index()]) {
      if ((u == skip_x && v == skip_y) || (u == skip_y && v == skip_x)) continue;
      if (dist[v.index()] != kUnvisited) continue;
      if (v == b) return du + 1;
      dist[v.index()] = du + 1;
      queue.push_back(v);
    }
  }
  return std::nullopt;
}

void Topology::bfs_all(NodeId src, std::vector<std::uint32_t>& dist,
                       std::vector<NodeId>& queue) const {
  dist.assign(present_.size(), kUnvisited);
  queue.clear();
  dist[src.index()] = 0;
  queue.push_back(src);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId u = queue[head];
    const std::uint32_t du = dist[u.index()];
    for (NodeId v : adj_[u.index()]) {
      if (dist[v.index()] != kUnvisited) continue;
      dist[v.index()] = du + 1;
      queue.push_back(v);
    }
  }
}

std::optional<std::size_t> Topology::distance(NodeId a, NodeId b) const {
  return bfs(a, b, kInvalidNode, kInvalidNode);
}

std::optional<std::size_t> Topology::distance_without_link(NodeId a, NodeId b,
                                                           NodeId x,
                                                           NodeId y) const {
  return bfs(a, b, x, y);
}

bool Topology::connected() const {
  if (node_count_ <= 1) return true;
  NodeId start = kInvalidNode;
  for (std::size_t i = 0; i < present_.size(); ++i) {
    if (present_[i]) {
      start = NodeId{static_cast<std::uint32_t>(i)};
      break;
    }
  }
  std::vector<std::uint32_t> dist;
  std::vector<NodeId> queue;
  bfs_all(start, dist, queue);
  return queue.size() == node_count_;
}

bool Topology::connected_among(
    const std::function<bool(NodeId)>& alive) const {
  std::size_t alive_count = 0;
  NodeId start = kInvalidNode;
  for (std::size_t i = 0; i < present_.size(); ++i) {
    if (!present_[i]) continue;
    const NodeId n{static_cast<std::uint32_t>(i)};
    if (!alive(n)) continue;
    ++alive_count;
    if (!start.valid()) start = n;
  }
  if (alive_count <= 1) return true;
  std::vector<std::uint32_t> dist(present_.size(), kUnvisited);
  dist[start.index()] = 0;
  std::vector<NodeId> queue{start};
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId u = queue[head];
    for (NodeId v : adj_[u.index()]) {
      if (!alive(v)) continue;
      if (dist[v.index()] != kUnvisited) continue;
      dist[v.index()] = dist[u.index()] + 1;
      queue.push_back(v);
    }
  }
  return queue.size() == alive_count;
}

double Topology::average_path_length() const {
  if (node_count_ < 2) return 0.0;
  std::uint64_t total = 0;
  std::uint64_t pairs = 0;
  std::vector<std::uint32_t> dist;
  std::vector<NodeId> queue;
  for (std::size_t i = 0; i < present_.size(); ++i) {
    if (!present_[i]) continue;
    bfs_all(NodeId{static_cast<std::uint32_t>(i)}, dist, queue);
    for (NodeId v : queue) {
      total += dist[v.index()];
    }
    pairs += queue.size() - 1;  // exclude the source itself
  }
  if (pairs == 0) return 0.0;
  return static_cast<double>(total) / static_cast<double>(pairs);
}

std::size_t Topology::diameter() const {
  std::size_t best = 0;
  std::vector<std::uint32_t> dist;
  std::vector<NodeId> queue;
  for (std::size_t i = 0; i < present_.size(); ++i) {
    if (!present_[i]) continue;
    bfs_all(NodeId{static_cast<std::uint32_t>(i)}, dist, queue);
    if (!queue.empty()) {
      best = std::max<std::size_t>(best, dist[queue.back().index()]);
    }
  }
  return best;
}

}  // namespace aria::overlay
