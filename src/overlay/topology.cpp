#include "overlay/topology.hpp"

#include <algorithm>
#include <deque>
#include <unordered_set>

namespace aria::overlay {

const std::vector<NodeId> Topology::kEmpty{};

void Topology::add_node(NodeId n) { adj_.try_emplace(n); }

void Topology::remove_node(NodeId n) {
  auto it = adj_.find(n);
  if (it == adj_.end()) return;
  for (NodeId m : it->second) {
    auto& back = adj_[m];
    back.erase(std::remove(back.begin(), back.end(), n), back.end());
    --links_;
  }
  adj_.erase(it);
}

bool Topology::add_link(NodeId a, NodeId b) {
  if (a == b) return false;
  add_node(a);
  add_node(b);
  auto& na = adj_[a];
  if (std::find(na.begin(), na.end(), b) != na.end()) return false;
  na.push_back(b);
  adj_[b].push_back(a);
  ++links_;
  return true;
}

bool Topology::remove_link(NodeId a, NodeId b) {
  auto ia = adj_.find(a);
  auto ib = adj_.find(b);
  if (ia == adj_.end() || ib == adj_.end()) return false;
  auto pa = std::find(ia->second.begin(), ia->second.end(), b);
  if (pa == ia->second.end()) return false;
  ia->second.erase(pa);
  auto& nb = ib->second;
  nb.erase(std::remove(nb.begin(), nb.end(), a), nb.end());
  --links_;
  return true;
}

bool Topology::has_link(NodeId a, NodeId b) const {
  auto it = adj_.find(a);
  if (it == adj_.end()) return false;
  return std::find(it->second.begin(), it->second.end(), b) != it->second.end();
}

const std::vector<NodeId>& Topology::neighbors(NodeId n) const {
  auto it = adj_.find(n);
  return it == adj_.end() ? kEmpty : it->second;
}

double Topology::average_degree() const {
  if (adj_.empty()) return 0.0;
  return 2.0 * static_cast<double>(links_) / static_cast<double>(adj_.size());
}

std::vector<NodeId> Topology::nodes() const {
  std::vector<NodeId> out;
  out.reserve(adj_.size());
  for (const auto& [n, _] : adj_) out.push_back(n);
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<std::size_t> Topology::bfs(NodeId a, NodeId b, NodeId skip_x,
                                         NodeId skip_y) const {
  if (!adj_.contains(a) || !adj_.contains(b)) return std::nullopt;
  if (a == b) return 0;
  std::unordered_map<NodeId, std::size_t> dist;
  dist.emplace(a, 0);
  std::deque<NodeId> frontier{a};
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    const std::size_t du = dist[u];
    for (NodeId v : neighbors(u)) {
      if ((u == skip_x && v == skip_y) || (u == skip_y && v == skip_x)) continue;
      if (dist.contains(v)) continue;
      if (v == b) return du + 1;
      dist.emplace(v, du + 1);
      frontier.push_back(v);
    }
  }
  return std::nullopt;
}

std::optional<std::size_t> Topology::distance(NodeId a, NodeId b) const {
  return bfs(a, b, kInvalidNode, kInvalidNode);
}

std::optional<std::size_t> Topology::distance_without_link(NodeId a, NodeId b,
                                                           NodeId x,
                                                           NodeId y) const {
  return bfs(a, b, x, y);
}

bool Topology::connected() const {
  if (adj_.size() <= 1) return true;
  const NodeId start = adj_.begin()->first;
  std::unordered_set<NodeId> seen{start};
  std::deque<NodeId> frontier{start};
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (NodeId v : neighbors(u)) {
      if (seen.insert(v).second) frontier.push_back(v);
    }
  }
  return seen.size() == adj_.size();
}

bool Topology::connected_among(
    const std::function<bool(NodeId)>& alive) const {
  std::size_t alive_count = 0;
  NodeId start = kInvalidNode;
  for (const auto& [n, _] : adj_) {
    if (!alive(n)) continue;
    ++alive_count;
    if (!start.valid()) start = n;
  }
  if (alive_count <= 1) return true;
  std::unordered_set<NodeId> seen{start};
  std::deque<NodeId> frontier{start};
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (NodeId v : neighbors(u)) {
      if (!alive(v)) continue;
      if (seen.insert(v).second) frontier.push_back(v);
    }
  }
  return seen.size() == alive_count;
}

double Topology::average_path_length() const {
  if (adj_.size() < 2) return 0.0;
  std::uint64_t total = 0;
  std::uint64_t pairs = 0;
  for (const auto& [src, _] : adj_) {
    // Single-source BFS accumulating all distances.
    std::unordered_map<NodeId, std::size_t> dist;
    dist.emplace(src, 0);
    std::deque<NodeId> frontier{src};
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop_front();
      const std::size_t du = dist[u];
      for (NodeId v : neighbors(u)) {
        if (dist.contains(v)) continue;
        dist.emplace(v, du + 1);
        frontier.push_back(v);
        total += du + 1;
        ++pairs;
      }
    }
  }
  if (pairs == 0) return 0.0;
  return static_cast<double>(total) / static_cast<double>(pairs);
}

std::size_t Topology::diameter() const {
  std::size_t best = 0;
  for (const auto& [src, _] : adj_) {
    std::unordered_map<NodeId, std::size_t> dist;
    dist.emplace(src, 0);
    std::deque<NodeId> frontier{src};
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop_front();
      const std::size_t du = dist[u];
      best = std::max(best, du);
      for (NodeId v : neighbors(u)) {
        if (dist.contains(v)) continue;
        dist.emplace(v, du + 1);
        frontier.push_back(v);
      }
    }
  }
  return best;
}

}  // namespace aria::overlay
