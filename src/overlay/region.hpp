// Region model for the hierarchical discovery plane (docs/hierarchy.md).
//
// The overlay is partitioned into `region_count` regions by a stateless
// function of the node id: region(n) = n mod R. Every node can compute any
// node's region — and the aggregator candidates of any region — from the
// (R, standby) pair in its config alone, with no membership protocol, no
// state to gossip and nothing to disagree about. Newly joined nodes land in
// a region by construction.
//
// Aggregator super-peers are *designated*, not voted on: the `standby`
// lowest ids of a region (r, r+R, r+2R, ...) are its candidate list, rank 0
// the primary. Election-by-designation makes failover a pure function of
// the retry attempt number (callers rotate through ranks), so an aggregator
// crash needs no liveness tracking — the next attempt simply addresses the
// next rank, and region-local flooding remains as the fallback of last
// resort (see AriaNode::decide_assignment).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"

namespace aria::overlay {

/// Region of node `n` under an R-way partition (R >= 1).
constexpr std::uint32_t region_of(NodeId n, std::size_t region_count) {
  return region_count <= 1
             ? 0u
             : n.value() % static_cast<std::uint32_t>(region_count);
}

/// k-th aggregator candidate of `region` (rank 0 = primary). With the mod-R
/// partition the k-th lowest id of region r is simply r + k*R.
constexpr NodeId aggregator_candidate(std::uint32_t region,
                                      std::size_t region_count,
                                      std::size_t rank) {
  return NodeId{region + static_cast<std::uint32_t>(rank * region_count)};
}

/// The full candidate list of `region` (standby entries, rank order).
std::vector<NodeId> aggregator_candidates(std::uint32_t region,
                                          std::size_t region_count,
                                          std::size_t standby);

/// Is `n` an aggregator candidate of its own region?
constexpr bool is_aggregator_candidate(NodeId n, std::size_t region_count,
                                       std::size_t standby) {
  return n.value() < region_count * standby;
}

/// Resolves the region count for `node_count` nodes: an explicit `requested`
/// wins; 0 means auto-size to ~`target_region_size` nodes per region. Either
/// way the result is clamped so every region can seat its full candidate
/// list (R * standby <= node_count) and at least one region exists.
std::size_t resolve_region_count(std::size_t requested, std::size_t node_count,
                                 std::size_t target_region_size,
                                 std::size_t standby);

/// One member's load report, as carried by REGION_LOAD (the digest input).
struct MemberLoad {
  bool idle{false};
  double backlog_seconds{0.0};
  std::uint32_t queue_len{0};
};

/// Summarized per-region load, as carried by REGION_DIGEST. `members` counts
/// the reports aggregated in (a liveness proxy: crashed members stop
/// reporting and age out of the table).
struct RegionDigest {
  std::uint32_t region{0};
  std::uint64_t epoch{0};
  std::uint32_t members{0};
  std::uint32_t idle{0};
  double backlog_seconds{0.0};
  std::uint32_t queue_len{0};
};

/// Folds member reports into a digest. Pure: totals are exactly the sums of
/// the inputs (the conservation property region_test.cpp pins).
RegionDigest aggregate_loads(std::uint32_t region, std::uint64_t epoch,
                             const std::vector<MemberLoad>& loads);

}  // namespace aria::overlay
