#include "overlay/flooding.hpp"

#include "overlay/region.hpp"

namespace aria::overlay {

bool FloodRelay::mark_seen(NodeId node, const Uuid& id, TimePoint now) {
  if (!ttl_.is_zero()) sweep(now);
  auto [it, inserted] = seen_.try_emplace(id);
  if (inserted) {
    it->second.first_seen = now;
    if (!ttl_.is_zero()) expiry_.emplace_back(now, id);
  }
  return it->second.nodes.insert(node).second;
}

bool FloodRelay::has_seen(NodeId node, const Uuid& id) const {
  auto it = seen_.find(id);
  return it != seen_.end() && it->second.nodes.contains(node);
}

void FloodRelay::sweep(TimePoint now) {
  while (!expiry_.empty() && expiry_.front().first + ttl_ <= now) {
    const auto& [stamp, id] = expiry_.front();
    auto it = seen_.find(id);
    // Only reclaim the entry this record described; if the flood was
    // forgotten and later re-created, first_seen differs and the newer
    // record owns it.
    if (it != seen_.end() && it->second.first_seen == stamp) seen_.erase(it);
    expiry_.pop_front();
  }
}

std::vector<NodeId> FloodRelay::pick_targets(NodeId node, std::size_t fanout,
                                             NodeId exclude_a,
                                             NodeId exclude_b) {
  std::vector<NodeId> candidates;
  for (NodeId n : topo_->neighbors(node)) {
    if (n == exclude_a || n == exclude_b) continue;
    candidates.push_back(n);
  }
  if (candidates.size() <= fanout) return candidates;
  return pick_rng(node).sample(candidates, fanout);
}

std::vector<NodeId> FloodRelay::pick_targets_in_region(
    NodeId node, std::size_t fanout, std::size_t region_count,
    std::uint32_t region, NodeId exclude_a, NodeId exclude_b) {
  std::vector<NodeId> candidates;
  for (NodeId n : topo_->neighbors(node)) {
    if (n == exclude_a || n == exclude_b) continue;
    if (region_of(n, region_count) != region) continue;
    candidates.push_back(n);
  }
  if (candidates.size() <= fanout) return candidates;
  return pick_rng(node).sample(candidates, fanout);
}

}  // namespace aria::overlay
