#include "overlay/flooding.hpp"

namespace aria::overlay {

bool FloodRelay::mark_seen(NodeId node, const Uuid& id) {
  return seen_[id].insert(node).second;
}

bool FloodRelay::has_seen(NodeId node, const Uuid& id) const {
  auto it = seen_.find(id);
  return it != seen_.end() && it->second.contains(node);
}

std::vector<NodeId> FloodRelay::pick_targets(NodeId node, std::size_t fanout,
                                             NodeId exclude_a,
                                             NodeId exclude_b) {
  std::vector<NodeId> candidates;
  for (NodeId n : topo_->neighbors(node)) {
    if (n == exclude_a || n == exclude_b) continue;
    candidates.push_back(n);
  }
  if (candidates.size() <= fanout) return candidates;
  return rng_.sample(candidates, fanout);
}

}  // namespace aria::overlay
