#include "common/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace aria {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng Rng::fork(std::uint64_t tag) {
  // Mix the parent state with the tag through splitmix so child streams with
  // different tags decorrelate even for small tags.
  std::uint64_t x = s_[0] ^ rotl(s_[2], 17) ^ (tag * 0x9e3779b97f4a7c15ULL);
  splitmix64(x);
  return Rng{splitmix64(x)};
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> uniform in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Debiased modulo (Lemire-style rejection).
  const std::uint64_t threshold = (0 - range) % range;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return lo + static_cast<std::int64_t>(r % range);
  }
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::normal(double mean, double stddev) {
  // Box–Muller; draw u1 in (0,1] to avoid log(0).
  const double u1 = 1.0 - next_double();
  const double u2 = next_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::truncated_normal(double mean, double stddev, double lo, double hi) {
  assert(lo <= hi);
  // Paper semantics: bounded ERT "to avoid extreme cases" — clamping, not
  // rejection, keeps the bulk of the distribution identical while pinning
  // the tails at the bounds.
  const double v = normal(mean, stddev);
  if (v < lo) return lo;
  if (v > hi) return hi;
  return v;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double r = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // numeric edge: r consumed by rounding
}

Duration Rng::uniform_duration(Duration lo, Duration hi) {
  return Duration::micros(uniform_int(lo.count_micros(), hi.count_micros()));
}

}  // namespace aria
