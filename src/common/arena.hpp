// SlabArena: chunked, stable-address object storage.
//
// The workload engine owns one protocol object per grid node. At 10k–100k
// nodes a vector<unique_ptr<T>> pays one allocation per node and scatters
// the objects across the heap; a plain vector<T> would keep them contiguous
// but reallocation moves them, and AriaNode pins its own address inside
// scheduled lambdas. SlabArena is the middle ground: objects are constructed
// in fixed-size slabs (contiguous runs of ChunkSize), addresses never move,
// and the only per-object cost is placement-new. Iteration walks slabs in
// construction order, so visiting every node is a linear scan over a few
// large blocks instead of a pointer chase.
//
// Destruction runs in reverse construction order (last object first), which
// mirrors the stack-like teardown a vector<unique_ptr> would give and keeps
// "later objects may reference earlier ones" lifetimes sound.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace aria {

template <typename T, std::size_t ChunkSize = 256>
class SlabArena {
 public:
  SlabArena() = default;
  SlabArena(const SlabArena&) = delete;
  SlabArena& operator=(const SlabArena&) = delete;
  ~SlabArena() { clear(); }

  /// Constructs a new T in place and returns its stable address.
  template <typename... Args>
  T* emplace(Args&&... args) {
    if (size_ == slabs_.size() * ChunkSize) {
      slabs_.push_back(std::make_unique<Slab>());
    }
    T* slot = slabs_[size_ / ChunkSize]->at(size_ % ChunkSize);
    T* obj = new (slot) T(std::forward<Args>(args)...);
    ++size_;
    return obj;
  }

  /// Destroys every object, newest first, and releases the slabs.
  void clear() {
    while (size_ > 0) {
      --size_;
      slabs_[size_ / ChunkSize]->at(size_ % ChunkSize)->~T();
    }
    slabs_.clear();
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// i-th constructed object (construction order is stable).
  T& operator[](std::size_t i) { return *slabs_[i / ChunkSize]->at(i % ChunkSize); }
  const T& operator[](std::size_t i) const {
    return *slabs_[i / ChunkSize]->at(i % ChunkSize);
  }

  template <typename Fn>
  void for_each(Fn&& fn) {
    for (std::size_t i = 0; i < size_; ++i) fn((*this)[i]);
  }

 private:
  struct Slab {
    alignas(T) unsigned char bytes[ChunkSize * sizeof(T)];
    T* at(std::size_t i) {
      return std::launder(reinterpret_cast<T*>(bytes + i * sizeof(T)));
    }
  };

  std::vector<std::unique_ptr<Slab>> slabs_;
  std::size_t size_{0};
};

}  // namespace aria
