// Bounded single-producer/single-consumer channel with a lock-free ring
// and a mutex-guarded overflow lane.
//
// Built for the sharded PDES executor (sim/pdes, docs/pdes.md): during a
// parallel window exactly one worker thread pushes cross-shard messages
// into each channel, and the coordinator drains them at the next barrier,
// when every producer is quiescent. The common case is therefore the
// wait-free ring; the overflow deque only exists so that a burst larger
// than the ring never blocks a producer (the consumer runs *only* at
// barriers, so waiting for space would deadlock the window) and never
// drops a message (which would break determinism).
//
// FIFO contract: drain() yields items in push order, provided pushes and
// the drain do not overlap in time — which the barrier protocol
// guarantees. Overlapping push/drain is memory-safe (the ring is SPSC
// lock-free, the overflow lane is locked) but the ring/overflow
// interleaving is then unspecified. Once one push overflows, every later
// push follows it into the overflow lane until the next drain, so order is
// preserved across the spill.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace aria {

template <typename T>
class SpscChannel {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2) so the ring
  /// index reduces to a mask.
  explicit SpscChannel(std::size_t capacity = 1024) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    ring_.resize(cap);
    mask_ = cap - 1;
  }

  SpscChannel(const SpscChannel&) = delete;
  SpscChannel& operator=(const SpscChannel&) = delete;

  /// Producer side. Never blocks, never fails: a full ring spills to the
  /// overflow lane instead.
  void push(T v) {
    if (!overflowed_.load(std::memory_order_relaxed) && try_push(v)) return;
    const std::lock_guard<std::mutex> lock{mu_};
    overflow_.push_back(std::move(v));
    overflowed_.store(true, std::memory_order_relaxed);
    ++overflow_count_;
  }

  /// Consumer side: pops everything currently in the channel, in FIFO
  /// order (see the class contract), invoking `fn(T&&)` per item. Returns
  /// the number of items drained.
  template <typename Fn>
  std::size_t drain(Fn&& fn) {
    std::size_t n = 0;
    std::size_t h = head_.load(std::memory_order_relaxed);
    const std::size_t t = tail_.load(std::memory_order_acquire);
    while (h != t) {
      fn(std::move(ring_[h & mask_]));
      ++h;
      ++n;
    }
    head_.store(h, std::memory_order_release);
    const std::lock_guard<std::mutex> lock{mu_};
    while (!overflow_.empty()) {
      fn(std::move(overflow_.front()));
      overflow_.pop_front();
      ++n;
    }
    overflowed_.store(false, std::memory_order_relaxed);
    return n;
  }

  bool empty() const {
    if (head_.load(std::memory_order_acquire) !=
        tail_.load(std::memory_order_acquire)) {
      return false;
    }
    const std::lock_guard<std::mutex> lock{mu_};
    return overflow_.empty();
  }

  std::size_t ring_capacity() const { return ring_.size(); }

  /// Items that missed the ring and took the slow lane — telemetry for
  /// sizing the ring (docs/pdes.md "Channel protocol").
  std::uint64_t overflow_count() const { return overflow_count_; }

 private:
  bool try_push(T& v) {
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    if (t - head_.load(std::memory_order_acquire) == ring_.size()) {
      return false;
    }
    ring_[t & mask_] = std::move(v);
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  std::vector<T> ring_;
  std::size_t mask_{0};
  std::atomic<std::size_t> head_{0};
  std::atomic<std::size_t> tail_{0};
  std::atomic<bool> overflowed_{false};
  mutable std::mutex mu_;
  std::deque<T> overflow_;
  std::uint64_t overflow_count_{0};  // consumer/producer-quiescent reads only
};

}  // namespace aria
