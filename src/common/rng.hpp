// Deterministic pseudo-random generation.
//
// A single seeded Rng drives every stochastic choice in a simulation run, so
// a (scenario, seed) pair is fully reproducible. The core generator is
// xoshiro256** (public domain, Blackman & Vigna) seeded through splitmix64;
// distribution helpers avoid std::<distribution> classes because their
// output is not specified portably across standard libraries.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"

namespace aria {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Derives an independent child stream; children with distinct tags do not
  /// overlap with the parent or each other in practice.
  Rng fork(std::uint64_t tag);

  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double normal(double mean, double stddev);

  /// Normal clamped to [lo, hi] (the paper's bounded ERT distribution).
  double truncated_normal(double mean, double stddev, double lo, double hi);

  /// Index drawn according to non-negative weights; requires a positive sum.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Uniform duration in [lo, hi].
  Duration uniform_duration(Duration lo, Duration hi);

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Draws k distinct elements from v uniformly (k >= v.size() returns all,
  /// in randomized order).
  template <typename T>
  std::vector<T> sample(const std::vector<T>& v, std::size_t k) {
    std::vector<T> pool = v;
    shuffle(pool);
    if (k < pool.size()) pool.resize(k);
    return pool;
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace aria
