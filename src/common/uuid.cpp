#include "common/uuid.hpp"

#include <cctype>
#include <cstdio>

#include "common/rng.hpp"

namespace aria {

Uuid Uuid::generate(Rng& rng) {
  std::uint64_t hi = rng.next_u64();
  std::uint64_t lo = rng.next_u64();
  // Version 4, variant 10xx (RFC 4122 §4.4).
  hi = (hi & ~0xF000ULL) | 0x4000ULL;
  lo = (lo & ~(0xC0ULL << 56)) | (0x80ULL << 56);
  if (hi == 0 && lo == 0) hi = 1;  // never collide with the nil uuid
  return Uuid{hi, lo};
}

std::string Uuid::to_string() const {
  char buf[37];
  std::snprintf(buf, sizeof(buf), "%08x-%04x-%04x-%04x-%012llx",
                static_cast<unsigned>(hi_ >> 32),
                static_cast<unsigned>((hi_ >> 16) & 0xFFFF),
                static_cast<unsigned>(hi_ & 0xFFFF),
                static_cast<unsigned>(lo_ >> 48),
                static_cast<unsigned long long>(lo_ & 0xFFFFFFFFFFFFULL));
  return buf;
}

std::optional<Uuid> Uuid::parse(const std::string& text) {
  if (text.size() != 36) return std::nullopt;
  static constexpr int kDashPositions[] = {8, 13, 18, 23};
  for (int p : kDashPositions) {
    if (text[static_cast<std::size_t>(p)] != '-') return std::nullopt;
  }
  std::uint64_t hi = 0, lo = 0;
  int nibbles = 0;
  for (char c : text) {
    if (c == '-') continue;
    int v;
    if (c >= '0' && c <= '9') v = c - '0';
    else if (c >= 'a' && c <= 'f') v = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') v = c - 'A' + 10;
    else return std::nullopt;
    if (nibbles < 16) hi = (hi << 4) | static_cast<std::uint64_t>(v);
    else lo = (lo << 4) | static_cast<std::uint64_t>(v);
    ++nibbles;
  }
  if (nibbles != 32) return std::nullopt;
  return Uuid{hi, lo};
}

}  // namespace aria
