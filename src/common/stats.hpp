// Small statistics helpers used by the metrics layer and the benches.
#pragma once

#include <cstddef>
#include <vector>

namespace aria {

/// Streaming accumulator (Welford) for mean / variance / extrema.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

  /// Pools another accumulator into this one (parallel-run aggregation).
  void merge(const RunningStats& other);

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
};

/// Percentile over a copy of the samples; q in [0,1], linear interpolation.
double percentile(std::vector<double> samples, double q);

}  // namespace aria
