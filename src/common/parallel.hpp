// Bounded fork-join parallelism for independent work items.
//
// parallel_for_index runs fn(0) .. fn(n-1) on at most `workers` threads.
// Items are claimed from a shared atomic counter, so completion order is
// arbitrary — callers that need deterministic output must key results by
// index, never by completion order (the sweep runner writes results[i] from
// fn(i) and merges after the join). Exceptions are captured per index and
// the lowest-index one is rethrown after every worker has joined, so error
// behavior does not depend on scheduling either.
#pragma once

#include <cstddef>
#include <functional>

namespace aria {

/// Worker count used when a caller passes 0: the hardware concurrency, with
/// a floor of 1 (hardware_concurrency() may report 0).
std::size_t default_worker_count();

/// Runs fn(i) for every i in [0, n) on min(workers, n) threads (workers == 0
/// means default_worker_count()). With one worker or one item, runs inline
/// on the calling thread — no threads are spawned, which keeps the serial
/// path exactly serial. Blocks until all items finished; rethrows the
/// lowest-index captured exception, if any.
void parallel_for_index(std::size_t n, std::size_t workers,
                        const std::function<void(std::size_t)>& fn);

}  // namespace aria
