#include "common/parallel.hpp"

#include <atomic>
#include <exception>
#include <thread>
#include <vector>

namespace aria {

std::size_t default_worker_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void parallel_for_index(std::size_t n, std::size_t workers,
                        const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers == 0) workers = default_worker_count();
  if (workers > n) workers = n;

  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::vector<std::exception_ptr> errors(n);
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();

  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace aria
