#include "common/time.hpp"

#include <cmath>
#include <cstdio>

namespace aria {

namespace {

std::string render(std::int64_t us) {
  const bool neg = us < 0;
  if (neg) us = -us;
  const std::int64_t total_seconds = us / 1'000'000;
  const std::int64_t h = total_seconds / 3600;
  const std::int64_t m = (total_seconds % 3600) / 60;
  const double s = static_cast<double>(us % 60'000'000) / 1e6;

  char buf[64];
  if (h > 0) {
    std::snprintf(buf, sizeof(buf), "%s%lldh%02lldm", neg ? "-" : "",
                  static_cast<long long>(h), static_cast<long long>(m));
  } else if (m > 0) {
    std::snprintf(buf, sizeof(buf), "%s%lldm%02llds", neg ? "-" : "",
                  static_cast<long long>(m), static_cast<long long>(s));
  } else {
    std::snprintf(buf, sizeof(buf), "%s%.3gs", neg ? "-" : "", s);
  }
  return buf;
}

}  // namespace

std::string Duration::to_string() const { return render(us_); }
std::string TimePoint::to_string() const { return render(us_); }

}  // namespace aria
