// Simulated-time types.
//
// The simulator measures time in integer microseconds so that event ordering
// is exact and runs are bit-reproducible across platforms (no floating-point
// accumulation). `Duration` is a signed span; `TimePoint` is an absolute
// instant on the simulation clock (t = 0 is the start of a run).
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace aria {

/// A signed span of simulated time with microsecond resolution.
class Duration {
 public:
  constexpr Duration() = default;

  /// Named constructors; fractional inputs are truncated toward zero
  /// at microsecond granularity.
  static constexpr Duration micros(std::int64_t us) { return Duration{us}; }
  static constexpr Duration millis(std::int64_t ms) { return Duration{ms * 1'000}; }
  static constexpr Duration seconds(std::int64_t s) { return Duration{s * 1'000'000}; }
  static constexpr Duration minutes(std::int64_t m) { return seconds(m * 60); }
  static constexpr Duration hours(std::int64_t h) { return seconds(h * 3600); }
  static constexpr Duration seconds_f(double s) {
    return Duration{static_cast<std::int64_t>(s * 1e6)};
  }

  static constexpr Duration zero() { return Duration{0}; }
  static constexpr Duration max() { return Duration{INT64_MAX}; }

  constexpr std::int64_t count_micros() const { return us_; }
  constexpr double to_seconds() const { return static_cast<double>(us_) / 1e6; }
  constexpr double to_minutes() const { return to_seconds() / 60.0; }
  constexpr double to_hours() const { return to_seconds() / 3600.0; }

  constexpr bool is_zero() const { return us_ == 0; }
  constexpr bool is_negative() const { return us_ < 0; }

  constexpr Duration operator+(Duration o) const { return Duration{us_ + o.us_}; }
  constexpr Duration operator-(Duration o) const { return Duration{us_ - o.us_}; }
  constexpr Duration operator-() const { return Duration{-us_}; }
  constexpr Duration operator*(std::int64_t k) const { return Duration{us_ * k}; }
  constexpr Duration operator/(std::int64_t k) const { return Duration{us_ / k}; }
  constexpr double operator/(Duration o) const {
    return static_cast<double>(us_) / static_cast<double>(o.us_);
  }
  constexpr Duration& operator+=(Duration o) { us_ += o.us_; return *this; }
  constexpr Duration& operator-=(Duration o) { us_ -= o.us_; return *this; }
  constexpr auto operator<=>(const Duration&) const = default;

  /// Scale by a real factor (used by the performance-index model);
  /// truncates to microseconds.
  constexpr Duration scaled(double factor) const {
    return Duration{static_cast<std::int64_t>(static_cast<double>(us_) * factor)};
  }

  /// Human-readable rendering, e.g. "2h30m", "45m", "12.5s".
  std::string to_string() const;

 private:
  constexpr explicit Duration(std::int64_t us) : us_{us} {}
  std::int64_t us_{0};
};

/// An absolute instant on the simulation clock.
class TimePoint {
 public:
  constexpr TimePoint() = default;
  static constexpr TimePoint from_micros(std::int64_t us) { return TimePoint{us}; }
  static constexpr TimePoint origin() { return TimePoint{0}; }
  static constexpr TimePoint max() { return TimePoint{INT64_MAX}; }

  constexpr std::int64_t count_micros() const { return us_; }
  constexpr double to_seconds() const { return static_cast<double>(us_) / 1e6; }
  constexpr double to_hours() const { return to_seconds() / 3600.0; }

  constexpr TimePoint operator+(Duration d) const { return TimePoint{us_ + d.count_micros()}; }
  constexpr TimePoint operator-(Duration d) const { return TimePoint{us_ - d.count_micros()}; }
  constexpr Duration operator-(TimePoint o) const { return Duration::micros(us_ - o.us_); }
  constexpr TimePoint& operator+=(Duration d) { us_ += d.count_micros(); return *this; }
  constexpr auto operator<=>(const TimePoint&) const = default;

  std::string to_string() const;

 private:
  constexpr explicit TimePoint(std::int64_t us) : us_{us} {}
  std::int64_t us_{0};
};

namespace literals {
constexpr Duration operator""_us(unsigned long long v) { return Duration::micros(static_cast<std::int64_t>(v)); }
constexpr Duration operator""_ms(unsigned long long v) { return Duration::millis(static_cast<std::int64_t>(v)); }
constexpr Duration operator""_s(unsigned long long v) { return Duration::seconds(static_cast<std::int64_t>(v)); }
constexpr Duration operator""_min(unsigned long long v) { return Duration::minutes(static_cast<std::int64_t>(v)); }
constexpr Duration operator""_h(unsigned long long v) { return Duration::hours(static_cast<std::int64_t>(v)); }
}  // namespace literals

}  // namespace aria
