#include "common/logging.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <mutex>

namespace aria {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_write_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel Log::level() { return g_level.load(std::memory_order_relaxed); }

void Log::set_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void Log::set_level_from_string(const std::string& name) {
  std::string low;
  low.reserve(name.size());
  for (char c : name) low.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (low == "trace") set_level(LogLevel::kTrace);
  else if (low == "debug") set_level(LogLevel::kDebug);
  else if (low == "info") set_level(LogLevel::kInfo);
  else if (low == "warn") set_level(LogLevel::kWarn);
  else if (low == "error") set_level(LogLevel::kError);
  else if (low == "off") set_level(LogLevel::kOff);
}

void Log::write(LogLevel level, const std::string& message) {
  const std::lock_guard<std::mutex> lock{g_write_mutex};
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace aria
