// Minimal leveled logger.
//
// Simulations are hot loops, so the macros check the level before the
// message is formatted. Output goes to stderr; the default level is WARN so
// library users see problems but benches stay quiet.
#pragma once

#include <sstream>
#include <string>

namespace aria {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Log {
 public:
  static LogLevel level();
  static void set_level(LogLevel level);

  /// Parses "trace"/"debug"/"info"/"warn"/"error"/"off" (case-insensitive);
  /// unknown names leave the level unchanged.
  static void set_level_from_string(const std::string& name);

  static void write(LogLevel level, const std::string& message);
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_{level} {}
  ~LogLine() { Log::write(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace aria

#define ARIA_LOG(lvl)                         \
  if (::aria::Log::level() > (lvl)) {         \
  } else                                      \
    ::aria::detail::LogLine { lvl }

#define ARIA_TRACE ARIA_LOG(::aria::LogLevel::kTrace)
#define ARIA_DEBUG ARIA_LOG(::aria::LogLevel::kDebug)
#define ARIA_INFO ARIA_LOG(::aria::LogLevel::kInfo)
#define ARIA_WARN ARIA_LOG(::aria::LogLevel::kWarn)
#define ARIA_ERROR ARIA_LOG(::aria::LogLevel::kError)
