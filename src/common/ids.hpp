// Strong identifier types.
//
// NodeId identifies a grid node (also its overlay address); it is a dense
// index assigned by the simulation engine so it can double as a vector
// index. Invalid ids are represented by kInvalidNode.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

namespace aria {

/// Identifier/address of a grid node on the overlay.
class NodeId {
 public:
  constexpr NodeId() = default;
  constexpr explicit NodeId(std::uint32_t v) : v_{v} {}

  constexpr std::uint32_t value() const { return v_; }
  constexpr std::size_t index() const { return v_; }
  constexpr bool valid() const { return v_ != UINT32_MAX; }

  constexpr auto operator<=>(const NodeId&) const = default;

  // snprintf instead of "n" + std::to_string: the concatenation pattern
  // trips GCC 12's -Wrestrict false positive (PR105329) under -O2 -Werror.
  std::string to_string() const {
    char buf[16];
    return {buf, static_cast<std::size_t>(
                     std::snprintf(buf, sizeof buf, "n%u", v_))};
  }

 private:
  std::uint32_t v_{UINT32_MAX};
};

inline constexpr NodeId kInvalidNode{};

}  // namespace aria

template <>
struct std::hash<aria::NodeId> {
  std::size_t operator()(const aria::NodeId& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
