// RFC-4122 style version-4 UUIDs, generated from the simulation RNG so runs
// stay deterministic. Used to track jobs univocally across the grid
// (paper §III-B).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

namespace aria {

class Rng;

class Uuid {
 public:
  /// The nil UUID (all zero); never produced by generate().
  constexpr Uuid() = default;

  /// Draws a version-4 UUID from `rng`.
  static Uuid generate(Rng& rng);

  /// Parses the canonical 8-4-4-4-12 hex form; nullopt on malformed input.
  static std::optional<Uuid> parse(const std::string& text);

  constexpr bool is_nil() const { return hi_ == 0 && lo_ == 0; }
  constexpr std::uint64_t hi() const { return hi_; }
  constexpr std::uint64_t lo() const { return lo_; }

  constexpr auto operator<=>(const Uuid&) const = default;

  /// Canonical lowercase 8-4-4-4-12 rendering.
  std::string to_string() const;

 private:
  constexpr Uuid(std::uint64_t hi, std::uint64_t lo) : hi_{hi}, lo_{lo} {}
  std::uint64_t hi_{0};
  std::uint64_t lo_{0};
};

/// Jobs are identified by UUIDs across the whole grid.
using JobId = Uuid;

}  // namespace aria

template <>
struct std::hash<aria::Uuid> {
  std::size_t operator()(const aria::Uuid& u) const noexcept {
    // hi/lo are already uniformly random for generated uuids.
    return static_cast<std::size_t>(u.hi() ^ (u.lo() * 0x9e3779b97f4a7c15ULL));
  }
};
