#include "metrics/timeseries.hpp"

#include <gtest/gtest.h>

namespace aria::metrics {
namespace {

using namespace aria::literals;

TEST(Series, AddAndInspect) {
  Series s{"demo"};
  EXPECT_TRUE(s.empty());
  s.add(TimePoint::origin() + 1_h, 5.0);
  s.add(TimePoint::origin() + 2_h, 7.0);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.label(), "demo");
  EXPECT_DOUBLE_EQ(s.points()[0].t_hours, 1.0);
  EXPECT_DOUBLE_EQ(s.points()[1].value, 7.0);
}

TEST(Series, ValueAtStepSemantics) {
  Series s;
  s.add(1.0, 10.0);
  s.add(2.0, 20.0);
  s.add(3.0, 30.0);
  EXPECT_DOUBLE_EQ(s.value_at(0.5), 0.0);   // before first sample
  EXPECT_DOUBLE_EQ(s.value_at(1.0), 10.0);  // exact hit
  EXPECT_DOUBLE_EQ(s.value_at(1.7), 10.0);  // holds last sample
  EXPECT_DOUBLE_EQ(s.value_at(2.5), 20.0);
  EXPECT_DOUBLE_EQ(s.value_at(99.0), 30.0);
}

TEST(Series, DownsampledKeepsEndpoints) {
  Series s;
  for (int i = 0; i <= 100; ++i) s.add(static_cast<double>(i), i * 2.0);
  const Series d = s.downsampled(10);
  EXPECT_LT(d.size(), s.size());
  EXPECT_DOUBLE_EQ(d.points().front().t_hours, 0.0);
  EXPECT_DOUBLE_EQ(d.points().back().t_hours, 100.0);
}

TEST(Series, DownsampledNoopForSmallSeries) {
  Series s;
  s.add(1.0, 1.0);
  s.add(2.0, 2.0);
  EXPECT_EQ(s.downsampled(10).size(), 2u);
  EXPECT_EQ(s.downsampled(1).size(), 2u);
}

TEST(Average, ElementwiseMean) {
  Series a, b;
  for (int i = 0; i < 5; ++i) {
    a.add(static_cast<double>(i), 10.0);
    b.add(static_cast<double>(i), 20.0);
  }
  const Series avg = average({a, b});
  ASSERT_EQ(avg.size(), 5u);
  for (const Point& p : avg.points()) EXPECT_DOUBLE_EQ(p.value, 15.0);
}

TEST(Average, TruncatesToShortestRun) {
  Series a, b;
  for (int i = 0; i < 5; ++i) a.add(static_cast<double>(i), 1.0);
  for (int i = 0; i < 3; ++i) b.add(static_cast<double>(i), 3.0);
  const Series avg = average({a, b});
  EXPECT_EQ(avg.size(), 3u);
  EXPECT_DOUBLE_EQ(avg.points()[0].value, 2.0);
}

TEST(Average, EmptyInput) {
  EXPECT_TRUE(average({}).empty());
}

TEST(Average, KeepsFirstLabel) {
  Series a{"run"};
  a.add(0.0, 1.0);
  EXPECT_EQ(average({a, a}).label(), "run");
}

TEST(CumulativeCount, StepsUpAtEventTimes) {
  const TimePoint t0 = TimePoint::origin();
  const std::vector<TimePoint> events{t0 + 90_min, t0 + 30_min, t0 + 90_min};
  const Series s = cumulative_count(events, 1_h, t0 + 3_h, "done");
  // Samples at 0h, 1h, 2h, 3h.
  ASSERT_EQ(s.size(), 4u);
  EXPECT_DOUBLE_EQ(s.points()[0].value, 0.0);
  EXPECT_DOUBLE_EQ(s.points()[1].value, 1.0);  // the 30m event
  EXPECT_DOUBLE_EQ(s.points()[2].value, 3.0);  // + two at 90m
  EXPECT_DOUBLE_EQ(s.points()[3].value, 3.0);
  EXPECT_EQ(s.label(), "done");
}

TEST(CumulativeCount, EmptyEvents) {
  const Series s =
      cumulative_count({}, 1_h, TimePoint::origin() + 2_h, "none");
  ASSERT_EQ(s.size(), 3u);
  for (const Point& p : s.points()) EXPECT_DOUBLE_EQ(p.value, 0.0);
}

TEST(CumulativeCount, EventAtExactBucketBoundaryCounts) {
  const TimePoint t0 = TimePoint::origin();
  const Series s = cumulative_count({t0 + 1_h}, 1_h, t0 + 1_h);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.points()[1].value, 1.0);
}

}  // namespace
}  // namespace aria::metrics
