#include <gtest/gtest.h>

#include "metrics/timeseries.hpp"

namespace aria::metrics {
namespace {

TEST(LoadBalanceMetric, EmptyIsZeroed) {
  const LoadBalance lb = load_balance({});
  EXPECT_DOUBLE_EQ(lb.mean, 0.0);
  EXPECT_DOUBLE_EQ(lb.gini, 0.0);
  EXPECT_DOUBLE_EQ(lb.cv, 0.0);
}

TEST(LoadBalanceMetric, PerfectlyEven) {
  const LoadBalance lb = load_balance({5.0, 5.0, 5.0, 5.0});
  EXPECT_DOUBLE_EQ(lb.mean, 5.0);
  EXPECT_DOUBLE_EQ(lb.stddev, 0.0);
  EXPECT_DOUBLE_EQ(lb.cv, 0.0);
  EXPECT_NEAR(lb.gini, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(lb.max, 5.0);
}

TEST(LoadBalanceMetric, MaximallyUneven) {
  // One node does everything: Gini -> (n-1)/n.
  const LoadBalance lb = load_balance({0.0, 0.0, 0.0, 12.0});
  EXPECT_DOUBLE_EQ(lb.mean, 3.0);
  EXPECT_DOUBLE_EQ(lb.max, 12.0);
  EXPECT_NEAR(lb.gini, 0.75, 1e-12);
  EXPECT_GT(lb.cv, 1.0);
}

TEST(LoadBalanceMetric, KnownGiniValue) {
  // {1, 2, 3, 4}: sorted weighted sum = 1*1+2*2+3*3+4*4 = 30,
  // G = 2*30/(4*10) - 5/4 = 1.5 - 1.25 = 0.25.
  const LoadBalance lb = load_balance({4.0, 1.0, 3.0, 2.0});
  EXPECT_NEAR(lb.gini, 0.25, 1e-12);
}

TEST(LoadBalanceMetric, AllZeroWorkIsEven) {
  const LoadBalance lb = load_balance({0.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(lb.gini, 0.0);
  EXPECT_DOUBLE_EQ(lb.cv, 0.0);
}

TEST(LoadBalanceMetric, MoreEvenMeansLowerGini) {
  const LoadBalance uneven = load_balance({10.0, 0.0, 0.0, 0.0, 0.0});
  const LoadBalance mild = load_balance({4.0, 3.0, 1.0, 1.0, 1.0});
  const LoadBalance even = load_balance({2.0, 2.0, 2.0, 2.0, 2.0});
  EXPECT_GT(uneven.gini, mild.gini);
  EXPECT_GT(mild.gini, even.gini);
}

}  // namespace
}  // namespace aria::metrics
