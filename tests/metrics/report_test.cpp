#include "metrics/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace aria::metrics {
namespace {

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.0, 0), "3");
  EXPECT_EQ(Table::num(-1.55, 1), "-1.6");
}

TEST(Table, PrintsAlignedColumns) {
  Table t{{"name", "value"}};
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22222"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(s.find("---"), std::string::npos);
  // Columns align: "value" starts at the same offset in header and rows.
  const auto header_pos = s.find("value");
  const auto line_start = s.rfind('\n', s.find("alpha"));
  const auto alpha_line_value_pos = s.find('1', line_start) - line_start - 1;
  EXPECT_EQ(header_pos, alpha_line_value_pos);
}

TEST(Table, ShortRowsArePadded) {
  Table t{{"a", "b", "c"}};
  t.add_row({"only"});
  std::ostringstream out;
  t.print(out);  // must not crash, row padded to 3 columns
  EXPECT_NE(out.str().find("only"), std::string::npos);
}

TEST(SeriesMatrix, PrintsAllLabels) {
  Series a{"one"}, b{"two"};
  for (int i = 0; i < 10; ++i) {
    a.add(static_cast<double>(i), i * 1.0);
    b.add(static_cast<double>(i), i * 2.0);
  }
  std::ostringstream out;
  print_series_matrix(out, {a, b});
  const std::string s = out.str();
  EXPECT_NE(s.find("t[h]"), std::string::npos);
  EXPECT_NE(s.find("one"), std::string::npos);
  EXPECT_NE(s.find("two"), std::string::npos);
}

TEST(SeriesMatrix, RespectsMaxRows) {
  Series a{"x"};
  for (int i = 0; i < 1000; ++i) a.add(static_cast<double>(i), 1.0);
  std::ostringstream out;
  print_series_matrix(out, {a}, 10);
  int lines = 0;
  for (char c : out.str()) {
    if (c == '\n') ++lines;
  }
  EXPECT_LE(lines, 15);  // header + separator + ~10 rows
}

TEST(SeriesMatrix, EmptyInputPrintsNothing) {
  std::ostringstream out;
  print_series_matrix(out, {});
  EXPECT_TRUE(out.str().empty());
}

TEST(Csv, HeaderAndRows) {
  Series a{"alpha"}, b{"beta"};
  a.add(0.0, 1.0);
  a.add(1.0, 2.0);
  b.add(0.0, 3.0);
  b.add(1.0, 4.0);
  std::ostringstream out;
  write_series_csv(out, {a, b});
  const std::string s = out.str();
  EXPECT_NE(s.find("t_hours,alpha,beta"), std::string::npos);
  EXPECT_NE(s.find("0,1,3"), std::string::npos);
  EXPECT_NE(s.find("1,2,4"), std::string::npos);
}

TEST(Csv, EmptyInput) {
  std::ostringstream out;
  write_series_csv(out, {});
  EXPECT_TRUE(out.str().empty());
}

}  // namespace
}  // namespace aria::metrics
