// Overload plane protocol tests (docs/overload.md): bounded-queue shedding
// with shed-and-forward, admission REJECT with initiator re-discovery, the
// failsafe re-flood fallback for sheds nobody takes, and the cost-aware
// bid-suppression hysteresis.
#include <gtest/gtest.h>

#include "tests/core/test_grid.hpp"

namespace aria::proto {
namespace {

using aria::test::TestGrid;
using namespace aria::literals;
using sched::SchedulerKind;

// ---------------------------------------------------------------------------
// Shed-and-forward
// ---------------------------------------------------------------------------

TEST(Overload, ShedJobMovesToIdleNeighborViaInform) {
  TestGrid g;
  g.config.overload.enabled = true;
  g.config.overload.capacity_per_perf = 1.0;  // queue bound = 1
  auto& full = g.add_node(SchedulerKind::kFcfs, 1.0);
  auto& spare = g.add_node(SchedulerKind::kFcfs, 1.0);
  g.connect_all();

  // Fill node 0: one executing, one queued (at the bound).
  auto j1 = g.make_job(2_h);
  auto j2 = g.make_job(2_h);
  g.tracker.on_submitted(j1, NodeId{0}, g.sim.now());
  g.tracker.on_submitted(j2, NodeId{0}, g.sim.now());
  full.deliver_assignment(j1, NodeId{0});
  full.deliver_assignment(j2, NodeId{0});
  ASSERT_TRUE(full.executing());
  ASSERT_EQ(full.queue_length(), 1u);

  // A third delegation overflows the bound; FCFS sheds the newest arrival,
  // which the immediate INFORM burst hands to the idle neighbor.
  auto j3 = g.make_job(1_h);
  const JobId shed_id = j3.id;
  g.tracker.on_submitted(j3, NodeId{0}, g.sim.now());
  full.deliver_assignment(j3, NodeId{0});
  EXPECT_EQ(full.queue_length(), 1u);
  EXPECT_TRUE(full.shedding(shed_id));
  EXPECT_EQ(full.counters().jobs_shed, 1u);

  g.run_for(5_s);
  EXPECT_FALSE(full.shedding(shed_id));
  EXPECT_EQ(full.counters().sheds_rescheduled, 1u);
  EXPECT_EQ(full.counters().sheds_failsafe, 0u);
  EXPECT_TRUE(spare.holds(shed_id));

  const JobRecord* rec = g.tracker.find(shed_id);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->sheds, 1u);
  ASSERT_EQ(rec->assignments.size(), 2u);
  EXPECT_EQ(rec->assignments[1].first, NodeId{1});
  EXPECT_EQ(g.tracker.total_sheds(), 1u);
  EXPECT_EQ(g.tracker.total_reschedules(), 1u);

  g.run_for(6_h);
  EXPECT_EQ(g.tracker.completed_count(), 3u);
  EXPECT_TRUE(g.tracker.violations().empty());
}

TEST(Overload, ShedWithNoTakerFallsBackToDiscovery) {
  TestGrid g;
  g.config.overload.enabled = true;
  g.config.overload.capacity_per_perf = 1.0;
  g.config.overload.shed_offer_timeout = 10_s;
  g.config.retry.max_attempts = 0;  // keep re-flooding until the queue drains
  auto& lonely = g.add_node(SchedulerKind::kFcfs, 1.0);  // no neighbors

  auto j1 = g.make_job(1_h);
  auto j2 = g.make_job(1_h);
  auto j3 = g.make_job(1_h);
  const JobId shed_id = j3.id;
  for (const auto& j : {j1, j2, j3}) {
    g.tracker.on_submitted(j, NodeId{0}, g.sim.now());
  }
  lonely.deliver_assignment(j1, NodeId{0});
  lonely.deliver_assignment(j2, NodeId{0});
  lonely.deliver_assignment(j3, NodeId{0});
  EXPECT_TRUE(lonely.shedding(shed_id));

  // Nobody answers the INFORM burst; after shed_offer_timeout the job falls
  // back to a discovery round (which also finds no taker while the queue is
  // full, so it backs off and retries).
  g.run_for(15_s);
  EXPECT_FALSE(lonely.shedding(shed_id));
  EXPECT_EQ(lonely.counters().sheds_failsafe, 1u);
  EXPECT_EQ(lonely.counters().sheds_rescheduled, 0u);
  EXPECT_GE(lonely.counters().bids_suppressed, 1u);

  // Once the queue drains below the bound the retry self-bid wins and the
  // shed job still completes — shed-and-forward never drops work.
  g.run_for(6_h);
  EXPECT_EQ(g.tracker.completed_count(), 3u);
  EXPECT_EQ(g.tracker.stranded_count(), 0u);
  EXPECT_TRUE(g.tracker.violations().empty());
}

// ---------------------------------------------------------------------------
// Admission control: REJECT + re-discovery
// ---------------------------------------------------------------------------

TEST(Overload, SaturatedAssigneeRejectsAndInitiatorRediscovers) {
  TestGrid g;
  g.config.overload.enabled = true;
  g.config.overload.capacity_per_perf = 100.0;  // length bound out of play
  g.config.overload.admission_backlog = 3_h;
  g.config.initiator_self_candidate = false;
  g.config.dynamic_rescheduling = false;
  g.add_node(SchedulerKind::kFcfs, 1.0);                 // initiator
  auto& fast = g.add_node(SchedulerKind::kFcfs, 1.0);    // wins round 1
  auto& backup = g.add_node(SchedulerKind::kFcfs, 0.5);  // wins round 2
  g.connect_all();

  auto job = g.make_job(1_h);
  const JobId id = job.id;
  g.node(0).submit(std::move(job));

  // Node 1 bids while idle. Before the initiator's accept window closes,
  // two directly-delivered 4h jobs push its backlog over the watermark.
  g.run_for(500_ms);
  auto big1 = g.make_job(4_h);
  auto big2 = g.make_job(4_h);
  g.tracker.on_submitted(big1, NodeId{1}, g.sim.now());
  g.tracker.on_submitted(big2, NodeId{1}, g.sim.now());
  fast.deliver_assignment(big1, NodeId{1});
  fast.deliver_assignment(big2, NodeId{1});
  ASSERT_GE(fast.backlog_duration(), 3_h);

  // The ASSIGN lands on a saturated node: explicit REJECT, immediate
  // re-flood by the delegator, and the job settles on node 2.
  g.run_for(10_s);
  EXPECT_EQ(fast.counters().rejects_sent, 1u);
  EXPECT_EQ(g.node(0).counters().reject_rediscoveries, 1u);
  EXPECT_FALSE(fast.holds(id));
  EXPECT_TRUE(backup.holds(id));

  const JobRecord* rec = g.tracker.find(id);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->rejects, 1u);
  ASSERT_EQ(rec->assignments.size(), 1u);
  EXPECT_EQ(rec->assignments[0].first, NodeId{2});
  EXPECT_EQ(g.tracker.total_rejects(), 1u);

  g.run_for(8_h);
  EXPECT_EQ(g.tracker.completed_count(), 3u);
  EXPECT_EQ(g.tracker.rejected_incomplete_count(), 0u);
  EXPECT_TRUE(g.tracker.violations().empty());
}

TEST(Overload, RejectWithAssignAckCancelsRetransmissions) {
  // With acknowledged delegation the REJECT must also stop the delegator's
  // ASSIGN retransmission loop — otherwise the refused attempt would be
  // retried until the ACK budget runs out and a *second* discovery round
  // would race the first.
  TestGrid g;
  g.config.overload.enabled = true;
  g.config.overload.capacity_per_perf = 100.0;
  g.config.overload.admission_backlog = 3_h;
  g.config.assign_ack = true;
  g.config.initiator_self_candidate = false;
  g.config.dynamic_rescheduling = false;
  g.add_node(SchedulerKind::kFcfs, 1.0);
  auto& fast = g.add_node(SchedulerKind::kFcfs, 1.0);
  auto& backup = g.add_node(SchedulerKind::kFcfs, 0.5);
  g.connect_all();

  auto job = g.make_job(1_h);
  const JobId id = job.id;
  g.node(0).submit(std::move(job));
  g.run_for(500_ms);
  auto big1 = g.make_job(4_h);
  auto big2 = g.make_job(4_h);
  g.tracker.on_submitted(big1, NodeId{1}, g.sim.now());
  g.tracker.on_submitted(big2, NodeId{1}, g.sim.now());
  fast.deliver_assignment(big1, NodeId{1});
  fast.deliver_assignment(big2, NodeId{1});

  g.run_for(10_s);
  EXPECT_EQ(fast.counters().rejects_sent, 1u);
  EXPECT_TRUE(backup.holds(id));
  EXPECT_EQ(g.node(0).counters().assign_retries, 0u);
  EXPECT_EQ(g.node(0).counters().assign_rediscoveries, 0u);

  g.run_for(10_h);
  EXPECT_EQ(g.tracker.completed_count(), 3u);
  EXPECT_TRUE(g.tracker.violations().empty());
}

// ---------------------------------------------------------------------------
// Bid suppression hysteresis
// ---------------------------------------------------------------------------

TEST(Overload, SaturatedNodeStopsBiddingAndResumesAfterDraining) {
  TestGrid g;
  g.config.overload.enabled = true;
  g.config.overload.capacity_per_perf = 100.0;
  g.config.overload.admission_backlog = 2_h;  // stop at 1.5h, resume at 1h
  g.config.retry.max_attempts = 0;
  g.config.initiator_self_candidate = false;
  g.config.dynamic_rescheduling = false;
  g.add_node(SchedulerKind::kFcfs, 1.0);               // initiator
  auto& worker = g.add_node(SchedulerKind::kFcfs, 1.0);  // the only candidate
  g.connect_all();

  // 2h of running work: backlog over the 1.5h stop threshold.
  auto busywork = g.make_job(2_h);
  g.tracker.on_submitted(busywork, NodeId{1}, g.sim.now());
  worker.deliver_assignment(busywork, NodeId{1});

  auto job = g.make_job(30_min);
  const JobId id = job.id;
  g.node(0).submit(std::move(job));

  // While saturated the worker withholds its bid; the initiator keeps
  // retrying on backoff.
  g.run_for(5_min);
  EXPECT_GE(worker.counters().bids_suppressed, 1u);
  EXPECT_TRUE(worker.bids_suppressed());
  EXPECT_FALSE(worker.holds(id));
  EXPECT_EQ(g.tracker.completed_count(), 0u);

  // Once the backlog drains below the resume threshold (1h left of the
  // running job) the next retry's bid goes through.
  g.run_for(2_h);
  EXPECT_FALSE(worker.bids_suppressed());
  EXPECT_EQ(g.tracker.completed_count(), 1u);
  g.run_for(2_h);
  EXPECT_EQ(g.tracker.completed_count(), 2u);
  EXPECT_TRUE(g.tracker.violations().empty());
}

TEST(Overload, PlaneOffLeavesQueuesUnbounded) {
  TestGrid g;  // overload.enabled stays false
  g.config.overload.capacity_per_perf = 1.0;  // inert while the plane is off
  auto& n = g.add_node(SchedulerKind::kFcfs, 1.0);
  for (int i = 0; i < 5; ++i) {
    auto j = g.make_job(1_h);
    g.tracker.on_submitted(j, NodeId{0}, g.sim.now());
    n.deliver_assignment(j, NodeId{0});
  }
  EXPECT_EQ(n.queue_length(), 4u);  // one executing, four queued, no sheds
  EXPECT_EQ(n.counters().jobs_shed, 0u);
  EXPECT_EQ(n.counters().rejects_sent, 0u);
  EXPECT_EQ(n.counters().bids_suppressed, 0u);
}

}  // namespace
}  // namespace aria::proto
