// Protocol edge cases beyond the happy paths.
#include <gtest/gtest.h>

#include "tests/core/test_grid.hpp"

namespace aria::proto {
namespace {

using aria::test::TestGrid;
using namespace aria::literals;
using sched::SchedulerKind;

TEST(ProtocolEdge, IsolatedInitiatorRunsJobItself) {
  TestGrid g;
  auto& lone = g.add_node(SchedulerKind::kFcfs, 1.0);
  auto job = g.make_job(1_h);
  const JobId id = job.id;
  lone.submit(std::move(job));
  g.run_for(2_h);
  ASSERT_TRUE(g.tracker.find(id)->done());
  EXPECT_EQ(g.tracker.find(id)->executor, lone.id());
}

TEST(ProtocolEdge, IsolatedNonMatchingInitiatorGivesUp) {
  TestGrid g;
  g.config.retry.max_attempts = 2;
  grid::NodeProfile sparc = TestGrid::universal_profile();
  sparc.arch = grid::Architecture::kSparc;
  auto& lone = g.add_node(SchedulerKind::kFcfs, 1.0, sparc);
  auto job = g.make_job(1_h);
  const JobId id = job.id;
  lone.submit(std::move(job));
  g.run_for(10_min);
  EXPECT_TRUE(g.tracker.find(id)->unschedulable);
}

TEST(ProtocolEdge, FanoutLargerThanNeighborhoodIsSafe) {
  TestGrid g;
  g.config.request_fanout = 100;
  g.config.inform_fanout = 100;
  for (int i = 0; i < 4; ++i) g.add_node(SchedulerKind::kFcfs, 1.0);
  g.connect_all();
  auto job = g.make_job(1_h);
  const JobId id = job.id;
  g.node(0).submit(std::move(job));
  g.run_for(2_h);
  EXPECT_TRUE(g.tracker.find(id)->done());
  EXPECT_TRUE(g.tracker.violations().empty());
}

TEST(ProtocolEdge, ZeroHopRequestReachesNobodyButSelf) {
  TestGrid g;
  g.config.request_hops = 1;  // initiator -> direct neighbors only
  g.config.initiator_self_candidate = true;
  g.add_node(SchedulerKind::kFcfs, 1.0);
  g.add_node(SchedulerKind::kFcfs, 3.0);
  g.add_node(SchedulerKind::kFcfs, 5.0);  // two hops away
  g.connect_line();
  auto job = g.make_job(1_h);
  const JobId id = job.id;
  g.node(0).submit(std::move(job));
  g.run_for(5_s);
  // Node 2 (best) is out of reach: the 1-hop flood stops at node 1.
  const NodeId executor = g.tracker.find(id)->assignments[0].first;
  EXPECT_TRUE(executor == NodeId{0} || executor == NodeId{1});
}

TEST(ProtocolEdge, DeadlineFamilyRescheduling) {
  // EDF-to-EDF rescheduling via NAL costs: a job at risk on a loaded node
  // moves to an empty one.
  TestGrid g;
  g.config.reschedule_threshold = 1_s;
  g.config.inform_period = 60_s;
  auto& busy = g.add_node(SchedulerKind::kEdf, 1.0);
  g.add_node(SchedulerKind::kEdf, 1.0);
  g.topo.remove_link(NodeId{0}, NodeId{1});

  auto j1 = g.make_job(2_h, /*deadline_in=*/3_h);
  auto j2 = g.make_job(2_h, /*deadline_in=*/4_h);  // would finish at 4h: tight
  const JobId id = j2.id;
  busy.submit(std::move(j1));
  busy.submit(std::move(j2));
  g.run_for(5_s);
  ASSERT_EQ(busy.queue_length(), 1u);

  g.topo.add_link(NodeId{0}, NodeId{1});
  g.run_for(5_h);

  const JobRecord* rec = g.tracker.find(id);
  ASSERT_TRUE(rec->done());
  EXPECT_GE(rec->reschedule_count(), 1u);
  EXPECT_FALSE(rec->missed_deadline());
  EXPECT_TRUE(g.tracker.violations().empty());
}

TEST(ProtocolEdge, ReVerificationRejectsStaleOffer) {
  // Between INFORM and ACCEPT the holder's queue drains, making the local
  // cost better than the remote offer: the job must stay.
  TestGrid g{/*latency=*/5_min};  // huge latency so state changes in flight
  g.config.accept_timeout = 15_min;
  g.config.inform_period = 30_min;
  g.config.reschedule_threshold = 1_s;
  auto& holder = g.add_node(SchedulerKind::kFcfs, 1.0);
  g.add_node(SchedulerKind::kFcfs, 1.0);
  g.topo.remove_link(NodeId{0}, NodeId{1});

  // Short running job + queued job: advertised cost includes the remainder.
  auto j1 = g.make_job(1_h);
  auto j2 = g.make_job(2_h);
  const JobId id = j2.id;
  holder.submit(std::move(j1));
  holder.submit(std::move(j2));
  g.run_for(20_min);  // j1 executing, j2 queued
  g.topo.add_link(NodeId{0}, NodeId{1});
  g.run_for(10_h);

  // Whatever happened, lifecycle must be clean and j2 completed.
  const JobRecord* rec = g.tracker.find(id);
  ASSERT_TRUE(rec->done());
  EXPECT_TRUE(g.tracker.violations().empty());
}

TEST(ProtocolEdge, ManyJobsOneSubmissionInstant) {
  TestGrid g;
  for (int i = 0; i < 5; ++i) g.add_node(SchedulerKind::kFcfs, 1.0 + 0.2 * i);
  g.connect_all();
  std::vector<JobId> ids;
  for (int i = 0; i < 20; ++i) {
    auto job = g.make_job(1_h);
    ids.push_back(job.id);
    g.node(static_cast<std::size_t>(i % 5)).submit(std::move(job));
  }
  g.run_for(24_h);
  for (const JobId& id : ids) {
    EXPECT_TRUE(g.tracker.find(id)->done());
  }
  EXPECT_TRUE(g.tracker.violations().empty());
  // Work spread across all nodes rather than piling on the fastest.
  std::size_t executors_used = 0;
  std::vector<std::size_t> counts(5, 0);
  for (const JobId& id : ids) {
    ++counts[g.tracker.find(id)->executor.index()];
  }
  for (std::size_t c : counts) {
    if (c > 0) ++executors_used;
  }
  EXPECT_GE(executors_used, 4u);
}

TEST(ProtocolEdge, StopDetachesInformTimer) {
  TestGrid g;
  g.config.inform_period = 30_s;
  auto& node = g.add_node(SchedulerKind::kFcfs, 1.0);
  g.add_node(SchedulerKind::kFcfs, 1.0);
  g.topo.add_link(NodeId{0}, NodeId{1});
  // Queue something so informs would fire.
  auto j1 = g.make_job(4_h);
  auto j2 = g.make_job(4_h);
  node.submit(std::move(j1));
  node.submit(std::move(j2));
  g.run_for(5_s);
  node.stop();
  const auto informs_before = g.net().traffic().of(kInformType).messages;
  g.run_for(10_min);
  EXPECT_EQ(g.net().traffic().of(kInformType).messages, informs_before);
}

TEST(ProtocolEdge, QuoteMatchesWhatAcceptWouldCarry) {
  TestGrid g;
  auto& node = g.add_node(SchedulerKind::kFcfs, 1.6);
  auto job = g.make_job(2_h);
  // quote() is the public wrapper around the ACCEPT cost computation.
  const double q = node.quote(job);
  EXPECT_DOUBLE_EQ(q, (2_h).scaled(1.0 / 1.6).to_seconds());
}

TEST(ProtocolEdge, CannotBidOnMismatchedFamilyEvenIfProfileFits) {
  TestGrid g;
  auto& batch = g.add_node(SchedulerKind::kFcfs, 1.0);
  auto& deadline = g.add_node(SchedulerKind::kEdf, 1.0);
  const auto plain = g.make_job(1_h);
  const auto timed = g.make_job(1_h, /*deadline_in=*/5_h);
  EXPECT_TRUE(batch.can_bid(plain));
  EXPECT_FALSE(batch.can_bid(timed));
  EXPECT_FALSE(deadline.can_bid(plain));
  EXPECT_TRUE(deadline.can_bid(timed));
}

}  // namespace
}  // namespace aria::proto
