// Shared fixture: a hand-built micro-grid for protocol-level tests.
// Every component is real (simulator, network, overlay, schedulers); only
// the scale is small and fully controlled.
#pragma once

#include <memory>
#include <vector>

#include "core/config.hpp"
#include "core/node.hpp"
#include "core/tracker.hpp"
#include "grid/profile_gen.hpp"
#include "overlay/flooding.hpp"
#include "overlay/topology.hpp"
#include "sched/policies.hpp"
#include "sim/latency.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace aria::test {

using namespace aria::literals;

class TestGrid {
 public:
  explicit TestGrid(Duration latency = 10_ms, std::uint64_t seed = 1234)
      : rng_{seed} {
    net_ = std::make_unique<sim::Network>(
        sim, std::make_unique<sim::FixedLatencyModel>(latency), rng_.fork(1));
    relay_ = std::make_unique<overlay::FloodRelay>(topo, rng_.fork(2));
    // Defaults tuned for small fast tests.
    config.accept_timeout = 1_s;
    config.retry.backoff = 2_s;
    config.inform_period = 60_s;
    config.reschedule_threshold = 1_s;
    config.flood_gc_delay = 30_s;
  }

  ~TestGrid() {
    nodes.clear();  // nodes detach from net_ before it is destroyed
  }

  /// Adds a node with the given scheduler and performance index. Profile
  /// defaults to a machine that matches every default job.
  proto::AriaNode& add_node(sched::SchedulerKind kind, double perf = 1.0,
                            grid::NodeProfile profile = universal_profile(),
                            std::string vo = {}) {
    profile.performance_index = perf;
    proto::NodeContext ctx;
    ctx.sim = &sim;
    ctx.net = net_.get();
    ctx.topo = &topo;
    ctx.relay = relay_.get();
    ctx.config = &config;
    ctx.ert_error = &ert_error;
    ctx.observer = &tracker;
    const NodeId id{static_cast<std::uint32_t>(nodes.size())};
    topo.add_node(id);
    nodes.push_back(std::make_unique<proto::AriaNode>(
        ctx, id, profile, sched::make_scheduler(kind),
        rng_.fork(100 + id.value()), std::move(vo)));
    nodes.back()->start();
    return *nodes.back();
  }

  /// Fully connects the overlay (every pair linked).
  void connect_all() {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      for (std::size_t j = i + 1; j < nodes.size(); ++j) {
        topo.add_link(NodeId{static_cast<std::uint32_t>(i)},
                      NodeId{static_cast<std::uint32_t>(j)});
      }
    }
  }

  /// Connects the overlay as a path 0-1-2-...-n.
  void connect_line() {
    for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
      topo.add_link(NodeId{static_cast<std::uint32_t>(i)},
                    NodeId{static_cast<std::uint32_t>(i + 1)});
    }
  }

  static grid::NodeProfile universal_profile() {
    grid::NodeProfile p;
    p.arch = grid::Architecture::kAmd64;
    p.os = grid::OperatingSystem::kLinux;
    p.memory_gb = 16;
    p.disk_gb = 16;
    p.performance_index = 1.0;
    return p;
  }

  grid::JobSpec make_job(Duration ert,
                         std::optional<Duration> deadline_in = {}) {
    grid::JobSpec j;
    j.id = JobId::generate(rng_);
    j.requirements.arch = grid::Architecture::kAmd64;
    j.requirements.os = grid::OperatingSystem::kLinux;
    j.requirements.min_memory_gb = 1;
    j.requirements.min_disk_gb = 1;
    j.ert = ert;
    if (deadline_in) j.deadline = sim.now() + *deadline_in;
    return j;
  }

  void run_for(Duration d) { sim.run_until(sim.now() + d); }

  proto::AriaNode& node(std::size_t i) { return *nodes[i]; }
  sim::Network& net() { return *net_; }
  overlay::FloodRelay& relay() { return *relay_; }

  sim::Simulator sim;
  overlay::Topology topo;
  proto::AriaConfig config;
  grid::ErtErrorModel ert_error{grid::ErtErrorMode::kExact, 0.0};
  proto::JobTracker tracker;
  std::vector<std::unique_ptr<proto::AriaNode>> nodes;

 private:
  Rng rng_;
  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<overlay::FloodRelay> relay_;
};

}  // namespace aria::test
