// Table I: message types, fields, and metered wire sizes.
#include "core/messages.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace aria::proto {
namespace {

using namespace aria::literals;

grid::JobSpec sample_job(Rng& rng) {
  grid::JobSpec j;
  j.id = JobId::generate(rng);
  j.ert = 2_h;
  return j;
}

TEST(Messages, RequestCarriesTableOneFields) {
  Rng rng{1};
  const auto job = sample_job(rng);
  const FloodMeta meta{Uuid::generate(rng), 8, NodeId{3}};
  RequestMsg m{NodeId{3}, job, meta};
  EXPECT_EQ(m.initiator, NodeId{3});        // initiator's address
  EXPECT_EQ(m.job.id, job.id);              // job UUID
  EXPECT_EQ(m.job.ert, job.ert);            // job profile
  EXPECT_EQ(m.type_name(), "REQUEST");
  EXPECT_EQ(m.wire_size(), 1024u);
}

TEST(Messages, AcceptCarriesTableOneFields) {
  Rng rng{2};
  const auto id = JobId::generate(rng);
  AcceptMsg m{NodeId{7}, id, 123.5};
  EXPECT_EQ(m.node, NodeId{7});  // node's address
  EXPECT_EQ(m.job_id, id);       // job UUID
  EXPECT_DOUBLE_EQ(m.cost, 123.5);
  EXPECT_EQ(m.type_name(), "ACCEPT");
  EXPECT_EQ(m.wire_size(), 128u);
}

TEST(Messages, InformCarriesTableOneFields) {
  Rng rng{3};
  const auto job = sample_job(rng);
  const FloodMeta meta{Uuid::generate(rng), 7, NodeId{9}};
  InformMsg m{NodeId{9}, job, -55.0, meta};
  EXPECT_EQ(m.assignee, NodeId{9});  // assignee's address
  EXPECT_EQ(m.job.id, job.id);       // job UUID + profile
  EXPECT_DOUBLE_EQ(m.cost, -55.0);   // cost
  EXPECT_EQ(m.type_name(), "INFORM");
  EXPECT_EQ(m.wire_size(), 1024u);
}

TEST(Messages, AssignCarriesTableOneFields) {
  Rng rng{4};
  const auto job = sample_job(rng);
  AssignMsg m{NodeId{2}, job};
  EXPECT_EQ(m.initiator, NodeId{2});  // initiator's address
  EXPECT_EQ(m.job.id, job.id);        // job UUID + profile
  EXPECT_FALSE(m.reschedule);
  EXPECT_EQ(m.type_name(), "ASSIGN");
  EXPECT_EQ(m.wire_size(), 1024u);
}

TEST(Messages, AssignRescheduleFlag) {
  Rng rng{5};
  AssignMsg m{NodeId{2}, sample_job(rng), /*reschedule=*/true};
  EXPECT_TRUE(m.reschedule);
  EXPECT_EQ(m.wire_size(), 1024u);  // flag does not change the metered size
}

TEST(Messages, NotifyIsCompact) {
  Rng rng{6};
  NotifyMsg m{NotifyMsg::Kind::kRescheduled, JobId::generate(rng), NodeId{4}};
  EXPECT_EQ(m.kind, NotifyMsg::Kind::kRescheduled);
  EXPECT_EQ(m.current_assignee, NodeId{4});
  EXPECT_EQ(m.type_name(), "NOTIFY");
  EXPECT_EQ(m.wire_size(), 128u);
}

TEST(Messages, PaperSizeRatios) {
  // §V-E: REQUEST/INFORM/ASSIGN = 1 KiB, ACCEPT = 128 bytes.
  EXPECT_EQ(kRequestWireBytes, kInformWireBytes);
  EXPECT_EQ(kRequestWireBytes, kAssignWireBytes);
  EXPECT_EQ(kRequestWireBytes / kAcceptWireBytes, 8u);
}

TEST(Messages, PolymorphicDispatchThroughBasePointer) {
  Rng rng{7};
  std::unique_ptr<sim::Message> m =
      std::make_unique<AcceptMsg>(NodeId{1}, JobId::generate(rng), 1.0);
  EXPECT_EQ(m->type_name(), "ACCEPT");
  EXPECT_NE(dynamic_cast<AcceptMsg*>(m.get()), nullptr);
  EXPECT_EQ(dynamic_cast<RequestMsg*>(m.get()), nullptr);
}

TEST(Messages, FloodMetaDefaults) {
  FloodMeta meta{};
  EXPECT_TRUE(meta.flood_id.is_nil());
  EXPECT_EQ(meta.hops_left, 0u);
  EXPECT_FALSE(meta.origin.valid());
}

}  // namespace
}  // namespace aria::proto
