// Failsafe extension (paper §III-D's crash-recovery hook) and advance
// reservations (paper future work).
#include <gtest/gtest.h>

#include "tests/core/test_grid.hpp"

namespace aria::proto {
namespace {

using aria::test::TestGrid;
using namespace aria::literals;
using sched::SchedulerKind;

class FailsafeTest : public ::testing::Test {
 protected:
  FailsafeTest() {
    g.config.failsafe = true;
    g.config.failsafe_factor = 1.0;
    g.config.failsafe_margin = 10_min;
    g.config.inform_period = 60_s;
  }
  TestGrid g;
};

TEST_F(FailsafeTest, HappyPathLeavesNothingWatched) {
  auto& initiator = g.add_node(SchedulerKind::kFcfs, 1.0);
  g.add_node(SchedulerKind::kFcfs, 2.0);
  g.connect_all();

  auto job = g.make_job(1_h);
  initiator.submit(std::move(job));
  g.run_for(2_h);

  EXPECT_EQ(g.tracker.completed_count(), 1u);
  EXPECT_EQ(initiator.watched_jobs(), 0u);  // completion notify cleaned up
  EXPECT_EQ(initiator.counters().recoveries, 0u);
  EXPECT_TRUE(g.tracker.violations().empty());
}

TEST_F(FailsafeTest, NotifyTrafficFlowsWhenRemote) {
  grid::NodeProfile sparc = TestGrid::universal_profile();
  sparc.arch = grid::Architecture::kSparc;
  auto& initiator = g.add_node(SchedulerKind::kFcfs, 1.0, sparc);
  g.add_node(SchedulerKind::kFcfs, 1.0);
  g.connect_all();

  auto job = g.make_job(1_h);
  initiator.submit(std::move(job));
  g.run_for(2_h);

  EXPECT_EQ(g.tracker.completed_count(), 1u);
  // At least queued + started + completed notifications crossed the wire.
  EXPECT_GE(g.net().traffic().of(kNotifyType).messages, 3u);
}

TEST_F(FailsafeTest, RecoversJobLostToSwallowedAssign) {
  // The winner crashes while the ASSIGN is in flight: without failsafe the
  // job is gone (see failure_test.cpp); with it, the watchdog re-floods.
  g.config.initiator_self_candidate = false;
  auto& initiator = g.add_node(SchedulerKind::kFcfs, 1.0);
  auto& winner = g.add_node(SchedulerKind::kFcfs, 5.0);
  auto& backup = g.add_node(SchedulerKind::kFcfs, 1.0);
  g.connect_all();

  auto job = g.make_job(1_h);
  const JobId id = job.id;
  initiator.submit(std::move(job));
  g.run_for(1_s + 5_ms);            // decision fired, ASSIGN in flight
  g.net().set_up(winner.id(), false);  // crash
  // Watchdog = inform_period * 1.0 + 10m margin + timeout -> fires ~11m in.
  g.run_for(4_h);

  const JobRecord* rec = g.tracker.find(id);
  ASSERT_NE(rec, nullptr);
  EXPECT_GE(rec->recoveries, 1u);
  ASSERT_TRUE(rec->done());
  EXPECT_EQ(rec->executor, backup.id());
  EXPECT_EQ(initiator.watched_jobs(), 0u);
  EXPECT_TRUE(g.tracker.violations().empty());
}

TEST_F(FailsafeTest, RecoversJobWhoseExecutorDied) {
  // The executor process dies mid-run (stop() cancels its completion).
  auto& initiator = g.add_node(SchedulerKind::kFcfs, 1.0);
  auto& executor = g.add_node(SchedulerKind::kFcfs, 5.0);
  auto& backup = g.add_node(SchedulerKind::kFcfs, 1.0);
  g.connect_all();

  auto job = g.make_job(1_h);
  const JobId id = job.id;
  initiator.submit(std::move(job));
  g.run_for(10_s);
  ASSERT_TRUE(executor.executing());
  executor.stop();
  g.topo.remove_node(executor.id());
  g.run_for(6_h);

  const JobRecord* rec = g.tracker.find(id);
  ASSERT_TRUE(rec->done());
  // Re-ran on any surviving node (initiator may win its own recovery).
  EXPECT_NE(rec->executor, executor.id());
  EXPECT_TRUE(rec->executor == backup.id() || rec->executor == initiator.id());
  EXPECT_GE(rec->recoveries, 1u);
  EXPECT_EQ(rec->executions, 2u);  // at-least-once: ran on two nodes
  EXPECT_TRUE(g.tracker.violations().empty());
}

TEST_F(FailsafeTest, HeartbeatsPreventFalseRecoveryOfLongQueuedJobs) {
  // One slow node holds several jobs; the later ones wait far longer than
  // the watchdog deadline. Heartbeats must keep resetting the timer.
  auto& node = g.add_node(SchedulerKind::kFcfs, 1.0);
  for (int i = 0; i < 4; ++i) {
    auto job = g.make_job(1_h);  // watchdog ~11m, total queue ~4h
    node.submit(std::move(job));
  }
  g.run_for(6_h);

  EXPECT_EQ(g.tracker.completed_count(), 4u);
  EXPECT_EQ(node.counters().recoveries, 0u);
  EXPECT_EQ(g.tracker.total_recoveries(), 0u);
  EXPECT_TRUE(g.tracker.violations().empty());
}

TEST_F(FailsafeTest, WatchdogSurvivesReschedules) {
  auto& busy = g.add_node(SchedulerKind::kFcfs, 1.0);
  g.add_node(SchedulerKind::kFcfs, 1.0);
  g.topo.remove_link(NodeId{0}, NodeId{1});
  auto j1 = g.make_job(2_h);
  auto j2 = g.make_job(2_h);
  const JobId id = j2.id;
  busy.submit(std::move(j1));
  busy.submit(std::move(j2));
  g.run_for(5_s);
  g.topo.add_link(NodeId{0}, NodeId{1});
  g.run_for(8_h);

  const JobRecord* rec = g.tracker.find(id);
  ASSERT_TRUE(rec->done());
  EXPECT_GE(rec->reschedule_count(), 1u);  // it moved
  EXPECT_EQ(rec->recoveries, 0u);          // but was never falsely recovered
  EXPECT_EQ(busy.watched_jobs(), 0u);
  EXPECT_TRUE(g.tracker.violations().empty());
}

TEST_F(FailsafeTest, GivesUpAfterMaxRecoveries) {
  // The only executor keeps swallowing the job (crashed network-wise but
  // still bidding is impossible — so make every recovery land nowhere by
  // crashing the sole remote candidate permanently).
  g.config.failsafe_max_recoveries = 2;
  g.config.initiator_self_candidate = false;
  g.config.retry.max_attempts = 1;
  grid::NodeProfile sparc = TestGrid::universal_profile();
  sparc.arch = grid::Architecture::kSparc;
  auto& initiator = g.add_node(SchedulerKind::kFcfs, 1.0, sparc);
  auto& winner = g.add_node(SchedulerKind::kFcfs, 1.0);
  g.connect_all();

  auto job = g.make_job(1_h);
  const JobId id = job.id;
  initiator.submit(std::move(job));
  g.run_for(1_s + 5_ms);
  g.net().set_up(winner.id(), false);  // ASSIGN swallowed; ACCEPTs keep
                                       // working? No: node is fully down.
  g.run_for(48_h);

  // Watchdog fired, recovered at most max_recoveries times, then stopped.
  const JobRecord* rec = g.tracker.find(id);
  EXPECT_LE(rec->recoveries, 2u);
  EXPECT_EQ(initiator.watched_jobs(), 0u);  // gave up cleanly
  EXPECT_FALSE(rec->done());
}

TEST_F(FailsafeTest, DisabledMeansNoWatchingAndNoNotifyTraffic) {
  g.config.failsafe = false;
  auto& initiator = g.add_node(SchedulerKind::kFcfs, 1.0);
  g.add_node(SchedulerKind::kFcfs, 2.0);
  g.connect_all();
  auto job = g.make_job(1_h);
  initiator.submit(std::move(job));
  g.run_for(2_h);
  EXPECT_EQ(initiator.watched_jobs(), 0u);
  EXPECT_EQ(g.net().traffic().of(kNotifyType).messages, 0u);
}

// ---------------------------------------------------------------------------
// Advance reservations
// ---------------------------------------------------------------------------

TEST(Reservation, ExecutionWaitsForEarliestStart) {
  TestGrid g;
  auto& node = g.add_node(SchedulerKind::kFcfs, 1.0);
  auto job = g.make_job(1_h);
  job.earliest_start = g.sim.now() + 2_h;
  const JobId id = job.id;
  node.submit(std::move(job));

  g.run_for(1_h);
  EXPECT_FALSE(node.executing());  // reservation not open yet
  EXPECT_EQ(node.queue_length(), 1u);

  g.run_for(4_h);
  const JobRecord* rec = g.tracker.find(id);
  ASSERT_TRUE(rec->done());
  EXPECT_EQ(*rec->started, TimePoint::origin() + 2_h);
  EXPECT_TRUE(g.tracker.violations().empty());
}

TEST(Reservation, OpenReservationRunsImmediately) {
  TestGrid g;
  auto& node = g.add_node(SchedulerKind::kFcfs, 1.0);
  auto job = g.make_job(1_h);
  job.earliest_start = g.sim.now();  // already open
  node.submit(std::move(job));
  g.run_for(10_s);
  EXPECT_TRUE(node.executing());
}

TEST(Reservation, HeadReservationBlocksQueue) {
  // No backfilling: a closed reservation at the head gates later jobs too.
  TestGrid g;
  auto& node = g.add_node(SchedulerKind::kFcfs, 1.0);
  auto reserved = g.make_job(1_h);
  reserved.earliest_start = g.sim.now() + 3_h;
  const JobId reserved_id = reserved.id;
  node.submit(std::move(reserved));
  g.run_for(10_s);
  auto plain = g.make_job(1_h);
  const JobId plain_id = plain.id;
  node.submit(std::move(plain));

  g.run_for(10_h);
  const JobRecord* r1 = g.tracker.find(reserved_id);
  const JobRecord* r2 = g.tracker.find(plain_id);
  ASSERT_TRUE(r1->done() && r2->done());
  EXPECT_EQ(*r1->started, TimePoint::origin() + 3_h);
  EXPECT_GT(*r2->started, *r1->started);  // FCFS order preserved
  EXPECT_TRUE(g.tracker.violations().empty());
}

TEST(Reservation, SjfShortJobSlipsAheadBeforeReservationReachesHead) {
  // Under SJF the reservation only blocks once it IS the head; a shorter
  // job enqueued later sorts before it and runs first.
  TestGrid g;
  auto& node = g.add_node(SchedulerKind::kSjf, 1.0);
  auto reserved = g.make_job(2_h);
  reserved.earliest_start = g.sim.now() + 5_h;
  node.submit(std::move(reserved));
  g.run_for(10_s);
  auto quick = g.make_job(1_h);
  const JobId quick_id = quick.id;
  node.submit(std::move(quick));
  g.run_for(3_h);
  EXPECT_TRUE(g.tracker.find(quick_id)->done());
}

TEST_F(FailsafeTest, CompletionReceiptsExpireAfterTheTtl) {
  // The executor's durable receipt answers recovery floods with a replay;
  // the TTL sweep (riding the inform tick) bounds how long it is held.
  g.config.completion_receipt_ttl = 1_h;
  auto& initiator = g.add_node(SchedulerKind::kFcfs, 1.0);
  auto& worker = g.add_node(SchedulerKind::kFcfs, 2.0);
  g.connect_all();

  initiator.submit(g.make_job(1_h));
  g.run_for(45_min);  // done well inside the TTL: the receipt is live
  EXPECT_EQ(g.tracker.completed_count(), 1u);
  EXPECT_EQ(initiator.completion_receipts() + worker.completion_receipts(),
            1u);

  g.run_for(2_h);  // now long past the TTL: the periodic sweep dropped it
  EXPECT_EQ(initiator.completion_receipts() + worker.completion_receipts(),
            0u);
}

TEST_F(FailsafeTest, ZeroTtlKeepsReceiptsForever) {
  // Zero = the pre-TTL behavior: receipts are never swept.
  g.config.completion_receipt_ttl = Duration::zero();
  auto& initiator = g.add_node(SchedulerKind::kFcfs, 1.0);
  auto& worker = g.add_node(SchedulerKind::kFcfs, 2.0);
  g.connect_all();

  initiator.submit(g.make_job(1_h));
  g.run_for(12_h);
  EXPECT_EQ(g.tracker.completed_count(), 1u);
  EXPECT_EQ(initiator.completion_receipts() + worker.completion_receipts(),
            1u);
}

TEST(Reservation, RescheduledJobKeepsItsReservation) {
  TestGrid g;
  g.config.reschedule_threshold = 1_s;
  g.config.inform_period = 60_s;
  auto& busy = g.add_node(SchedulerKind::kFcfs, 1.0);
  g.add_node(SchedulerKind::kFcfs, 1.0);
  g.topo.remove_link(NodeId{0}, NodeId{1});

  auto filler = g.make_job(2_h);
  busy.submit(std::move(filler));
  auto reserved = g.make_job(1_h);
  reserved.earliest_start = g.sim.now() + 30_min;
  const JobId id = reserved.id;
  busy.submit(std::move(reserved));
  g.run_for(5_s);
  g.topo.add_link(NodeId{0}, NodeId{1});
  g.run_for(8_h);

  const JobRecord* rec = g.tracker.find(id);
  ASSERT_TRUE(rec->done());
  EXPECT_GE(*rec->started, TimePoint::origin() + 30_min);
  EXPECT_TRUE(g.tracker.violations().empty());
}

}  // namespace
}  // namespace aria::proto
