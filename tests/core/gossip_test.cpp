#include "core/gossip.hpp"

#include <gtest/gtest.h>

#include "core/tracker.hpp"
#include "grid/profile_gen.hpp"
#include "overlay/bootstrap.hpp"
#include "sched/policies.hpp"
#include "sim/latency.hpp"

namespace aria::proto {
namespace {

using namespace aria::literals;
using sched::SchedulerKind;

/// Gossip-grid fixture, mirroring TestGrid.
class GossipGrid {
 public:
  explicit GossipGrid(std::uint64_t seed = 99) : rng_{seed} {
    net_ = std::make_unique<sim::Network>(
        sim, std::make_unique<sim::FixedLatencyModel>(10_ms), rng_.fork(1));
    config.gossip_period = 30_s;
    config.retry.backoff = 10_s;
  }
  ~GossipGrid() { nodes.clear(); }

  GossipNode& add_node(double perf = 1.0,
                       grid::NodeProfile profile = universal()) {
    profile.performance_index = perf;
    GossipNode::Context ctx;
    ctx.sim = &sim;
    ctx.net = net_.get();
    ctx.topo = &topo;
    ctx.config = &config;
    ctx.ert_error = &ert_error;
    ctx.observer = &tracker;
    const NodeId id{static_cast<std::uint32_t>(nodes.size())};
    topo.add_node(id);
    nodes.push_back(std::make_unique<GossipNode>(
        ctx, id, profile, sched::make_scheduler(SchedulerKind::kFcfs),
        rng_.fork(100 + id.value())));
    nodes.back()->start();
    return *nodes.back();
  }

  static grid::NodeProfile universal() {
    grid::NodeProfile p;
    p.arch = grid::Architecture::kAmd64;
    p.os = grid::OperatingSystem::kLinux;
    p.memory_gb = 16;
    p.disk_gb = 16;
    return p;
  }

  grid::JobSpec make_job(Duration ert) {
    grid::JobSpec j;
    j.id = JobId::generate(rng_);
    j.requirements.arch = grid::Architecture::kAmd64;
    j.requirements.os = grid::OperatingSystem::kLinux;
    j.requirements.min_memory_gb = 1;
    j.requirements.min_disk_gb = 1;
    j.ert = ert;
    return j;
  }

  void connect_all() {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      for (std::size_t j = i + 1; j < nodes.size(); ++j) {
        topo.add_link(NodeId{static_cast<std::uint32_t>(i)},
                      NodeId{static_cast<std::uint32_t>(j)});
      }
    }
  }

  void run_for(Duration d) { sim.run_until(sim.now() + d); }

  sim::Simulator sim;
  overlay::Topology topo;
  GossipConfig config;
  grid::ErtErrorModel ert_error{grid::ErtErrorMode::kExact, 0.0};
  JobTracker tracker;
  std::vector<std::unique_ptr<GossipNode>> nodes;
  sim::Network& net() { return *net_; }

 private:
  Rng rng_;
  std::unique_ptr<sim::Network> net_;
};

TEST(Gossip, SelfAssignWithoutCache) {
  GossipGrid g;
  auto& lone = g.add_node(1.0);
  auto job = g.make_job(1_h);
  const JobId id = job.id;
  lone.submit(std::move(job));
  g.run_for(2_h);
  ASSERT_TRUE(g.tracker.find(id)->done());
  EXPECT_EQ(g.tracker.find(id)->executor, lone.id());
  EXPECT_TRUE(g.tracker.violations().empty());
}

TEST(Gossip, CacheFillsFromNeighbors) {
  GossipGrid g;
  auto& a = g.add_node(1.0);
  auto& b = g.add_node(1.5);
  auto& c = g.add_node(2.0);
  g.connect_all();
  g.run_for(5_min);  // several gossip rounds
  EXPECT_GE(a.cache_size(), 2u);
  EXPECT_GE(b.cache_size(), 2u);
  EXPECT_GE(c.cache_size(), 2u);
}

TEST(Gossip, PrefersFasterKnownNode) {
  GossipGrid g;
  auto& slow = g.add_node(1.0);
  auto& fast = g.add_node(2.0);
  g.connect_all();
  g.run_for(5_min);  // learn each other

  auto job = g.make_job(2_h);
  const JobId id = job.id;
  slow.submit(std::move(job));
  g.run_for(10_s);
  EXPECT_TRUE(fast.executing());
  EXPECT_EQ(g.tracker.find(id)->assignments[0].first, fast.id());
}

TEST(Gossip, StaleSummariesAreIgnored) {
  GossipGrid g;
  g.config.max_summary_age = 1_min;
  auto& a = g.add_node(1.0);
  auto& b = g.add_node(5.0);
  g.connect_all();
  g.run_for(5_min);  // a knows b
  ASSERT_GE(a.cache_size(), 1u);

  // b vanishes; its summaries age out. New work stays local.
  b.stop();
  g.topo.remove_node(b.id());
  g.run_for(10_min);
  auto job = g.make_job(1_h);
  const JobId id = job.id;
  a.submit(std::move(job));
  g.run_for(10_s);
  EXPECT_EQ(g.tracker.find(id)->assignments[0].first, a.id());
}

TEST(Gossip, RetriesUntilCandidateAppears) {
  GossipGrid g;
  grid::NodeProfile sparc = GossipGrid::universal();
  sparc.arch = grid::Architecture::kSparc;
  auto& initiator = g.add_node(1.0, sparc);
  auto job = g.make_job(1_h);  // AMD64: initiator cannot run it
  const JobId id = job.id;
  initiator.submit(std::move(job));
  g.run_for(1_min);
  EXPECT_TRUE(g.tracker.find(id)->assignments.empty());
  EXPECT_GT(g.tracker.find(id)->retries, 0u);

  // A matching node joins and gossips; a later retry finds it.
  auto& helper = g.add_node(1.0);
  g.topo.add_link(initiator.id(), helper.id());
  g.run_for(10_min);
  ASSERT_FALSE(g.tracker.find(id)->assignments.empty());
  EXPECT_EQ(g.tracker.find(id)->assignments[0].first, helper.id());
}

TEST(Gossip, GivesUpAfterMaxAttempts) {
  GossipGrid g;
  g.config.retry.max_attempts = 3;
  grid::NodeProfile sparc = GossipGrid::universal();
  sparc.arch = grid::Architecture::kSparc;
  auto& lone = g.add_node(1.0, sparc);
  auto job = g.make_job(1_h);
  const JobId id = job.id;
  lone.submit(std::move(job));
  g.run_for(10_min);
  EXPECT_TRUE(g.tracker.find(id)->unschedulable);
}

TEST(Gossip, TrafficIsMeteredAsGossip) {
  GossipGrid g;
  g.add_node(1.0);
  g.add_node(1.0);
  g.connect_all();
  g.run_for(5_min);
  const auto gossip = g.net().traffic().of("GOSSIP");
  EXPECT_GT(gossip.messages, 0u);
  EXPECT_GT(gossip.bytes, gossip.messages * 64);  // payload > header
}

TEST(Gossip, ManyJobsCompleteCleanly) {
  GossipGrid g;
  for (int i = 0; i < 6; ++i) g.add_node(1.0 + 0.2 * i);
  g.connect_all();
  g.run_for(5_min);  // warm caches
  for (int i = 0; i < 30; ++i) {
    auto job = g.make_job(1_h);
    g.nodes[static_cast<std::size_t>(i % 6)]->submit(std::move(job));
  }
  g.run_for(24_h);
  EXPECT_EQ(g.tracker.completed_count(), 30u);
  EXPECT_TRUE(g.tracker.violations().empty());
}

TEST(Gossip, StaleBacklogCausesHerdingUnlikeAria) {
  // The known weakness of state-dissemination: summaries lag reality, so a
  // burst submitted within one gossip period herds onto whoever advertised
  // the emptiest queue. This documents the behavioural difference the
  // ablation bench measures at scale.
  GossipGrid g;
  g.config.gossip_period = 5_min;  // slow dissemination
  auto& a = g.add_node(1.0);
  auto& fast = g.add_node(2.0);
  g.add_node(1.0);
  g.connect_all();
  g.run_for(20_min);  // caches warm but will now go stale

  for (int i = 0; i < 6; ++i) {
    auto job = g.make_job(2_h);
    a.submit(std::move(job));
  }
  g.run_for(30_s);
  // All six landed on the fast node (its cached backlog never updated).
  EXPECT_TRUE(fast.executing());
  EXPECT_GE(fast.queue_length(), 4u);
}

}  // namespace
}  // namespace aria::proto
