// Discovery-retry policy regression pins (docs/protocol.md §1): the shared
// DiscoveryRetryPolicy drives both ARiA's REQUEST re-floods (exponential
// backoff, capped factor) and the gossip baseline (fixed interval). These
// tests pin the exact retry instants so refactors cannot silently change
// the discovery cadence.
#include <gtest/gtest.h>

#include "core/gossip.hpp"
#include "tests/core/test_grid.hpp"

namespace aria::test {
namespace {

TEST(DiscoveryRetryPolicy, WaitDoublesUpToFactorCap) {
  proto::DiscoveryRetryPolicy p;  // defaults: 10s base, cap 8x, 25 attempts
  EXPECT_EQ(p.wait_after(1), 10_s);
  EXPECT_EQ(p.wait_after(2), 20_s);
  EXPECT_EQ(p.wait_after(3), 40_s);
  EXPECT_EQ(p.wait_after(4), 80_s);
  EXPECT_EQ(p.wait_after(5), 80_s);   // capped at 8x
  EXPECT_EQ(p.wait_after(25), 80_s);  // stays capped
}

TEST(DiscoveryRetryPolicy, HugeAttemptDoesNotOverflow) {
  proto::DiscoveryRetryPolicy p;
  // 1 << (attempt - 1) would be UB for attempt > 64; the policy must clamp.
  EXPECT_EQ(p.wait_after(100), 80_s);
  EXPECT_EQ(p.wait_after(1000), 80_s);
}

TEST(DiscoveryRetryPolicy, ZeroMaxAttemptsRetriesForever) {
  proto::DiscoveryRetryPolicy p;
  p.max_attempts = 0;
  EXPECT_FALSE(p.exhausted(1));
  EXPECT_FALSE(p.exhausted(1000000));
  p.max_attempts = 3;
  EXPECT_FALSE(p.exhausted(2));
  EXPECT_TRUE(p.exhausted(3));
  EXPECT_TRUE(p.exhausted(4));
}

TEST(DiscoveryRetryPolicy, GossipDefaultIsFixedInterval) {
  // The gossip baseline keeps its historical cadence: 30s flat (factor cap
  // 1 disables the exponential growth), 40 attempts.
  const proto::GossipConfig cfg;
  EXPECT_EQ(cfg.retry.wait_after(1), 30_s);
  EXPECT_EQ(cfg.retry.wait_after(7), 30_s);
  EXPECT_FALSE(cfg.retry.exhausted(39));
  EXPECT_TRUE(cfg.retry.exhausted(40));
}

/// A job nobody can take: the initiator is amd64, the job demands sparc.
grid::JobSpec impossible_job(TestGrid& g) {
  grid::JobSpec job = g.make_job(1_h);
  job.requirements.arch = grid::Architecture::kSparc;
  return job;
}

TEST(RequestRetry, BackoffDoublingPinnedInstants) {
  // accept_timeout 1s, base backoff 2s (TestGrid defaults), cap 8x.
  // Decisions: t=1 (attempt 1 empty), re-flood t=3, decide t=4, re-flood
  // t=8, decide t=9, re-flood t=17, decide t=18, ... — the gap between
  // consecutive decisions is backoff*2^(k-1) + accept_timeout.
  TestGrid g;
  g.config.retry.max_attempts = 0;  // never give up; observe the cadence
  g.add_node(sched::SchedulerKind::kFcfs);

  grid::JobSpec job = impossible_job(g);
  const JobId id = job.id;
  g.node(0).submit(std::move(job));

  auto retries = [&] { return g.tracker.find(id)->retries; };
  g.run_for(1_s + 100_ms);   // decision 1 at t=1
  EXPECT_EQ(retries(), 1u);
  g.run_for(3_s);            // t=4.1: decision 2 at t=4
  EXPECT_EQ(retries(), 2u);
  g.run_for(5_s);            // t=9.1: decision 3 at t=9
  EXPECT_EQ(retries(), 3u);
  g.run_for(8_s);            // t=17.1: decision 4 lands at t=18 — not yet
  EXPECT_EQ(retries(), 3u);
  g.run_for(1_s);            // t=18.1
  EXPECT_EQ(retries(), 4u);
  // From attempt 4 on the factor caps at 8: decisions 16+1=17s apart.
  g.run_for(17_s);           // t=35.1: decision 5 at t=35
  EXPECT_EQ(retries(), 5u);
  g.run_for(17_s);           // t=52.1: decision 6 at t=52
  EXPECT_EQ(retries(), 6u);
  EXPECT_EQ(g.tracker.unschedulable_count(), 0u);
}

TEST(RequestRetry, MaxAttemptsCapsAtUnschedulable) {
  TestGrid g;
  g.config.retry.max_attempts = 4;
  g.add_node(sched::SchedulerKind::kFcfs);

  grid::JobSpec job = impossible_job(g);
  const JobId id = job.id;
  g.node(0).submit(std::move(job));

  // Attempts decide empty at t=1, 4, 9; the 4th attempt decides at t=18 and
  // is exhausted (4 >= max_attempts) => unschedulable exactly there.
  g.run_for(17_s);
  EXPECT_EQ(g.tracker.unschedulable_count(), 0u);
  g.run_for(1_s + 100_ms);
  EXPECT_EQ(g.tracker.unschedulable_count(), 1u);
  EXPECT_EQ(g.tracker.find(id)->retries, 3u);
  EXPECT_TRUE(g.tracker.find(id)->unschedulable);
  // Terminal: no further retries ever fire.
  g.run_for(10_min);
  EXPECT_EQ(g.tracker.find(id)->retries, 3u);
}

}  // namespace
}  // namespace aria::test
