#include "core/tracker.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace aria::proto {
namespace {

using namespace aria::literals;

grid::JobSpec make_job(Rng& rng, std::optional<TimePoint> deadline = {}) {
  grid::JobSpec j;
  j.id = JobId::generate(rng);
  j.ert = 1_h;
  j.deadline = deadline;
  return j;
}

const TimePoint t0 = TimePoint::origin();

TEST(JobTracker, HappyPathLifecycle) {
  Rng rng{1};
  JobTracker t;
  const auto job = make_job(rng);
  t.on_submitted(job, NodeId{0}, t0);
  t.on_assigned(job, NodeId{1}, t0 + 1_s, false);
  t.on_started(job.id, NodeId{1}, t0 + 10_min);
  t.on_completed(job.id, NodeId{1}, t0 + 70_min, 1_h);

  EXPECT_TRUE(t.violations().empty());
  EXPECT_EQ(t.submitted_count(), 1u);
  EXPECT_EQ(t.completed_count(), 1u);
  const JobRecord* r = t.find(job.id);
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->done());
  EXPECT_EQ(r->waiting_time(), 10_min);
  EXPECT_EQ(r->execution_time(), 1_h);
  EXPECT_EQ(r->completion_time(), 70_min);
  EXPECT_EQ(r->reschedule_count(), 0u);
  EXPECT_EQ(r->initiator, NodeId{0});
  EXPECT_EQ(r->executor, NodeId{1});
}

TEST(JobTracker, RescheduleChainRecorded) {
  Rng rng{2};
  JobTracker t;
  const auto job = make_job(rng);
  t.on_submitted(job, NodeId{0}, t0);
  t.on_assigned(job, NodeId{1}, t0 + 1_s, false);
  t.on_assigned(job, NodeId{2}, t0 + 5_min, true);
  t.on_assigned(job, NodeId{3}, t0 + 10_min, true);
  t.on_started(job.id, NodeId{3}, t0 + 15_min);
  t.on_completed(job.id, NodeId{3}, t0 + 75_min, 1_h);

  EXPECT_TRUE(t.violations().empty());
  const JobRecord* r = t.find(job.id);
  EXPECT_EQ(r->reschedule_count(), 2u);
  EXPECT_EQ(t.total_reschedules(), 2u);
  ASSERT_EQ(r->assignments.size(), 3u);
  EXPECT_EQ(r->assignments[2].first, NodeId{3});
}

TEST(JobTracker, DeadlineMetAndMissed) {
  Rng rng{3};
  JobTracker t;
  const auto met = make_job(rng, t0 + 3_h);
  t.on_submitted(met, NodeId{0}, t0);
  t.on_assigned(met, NodeId{1}, t0, false);
  t.on_started(met.id, NodeId{1}, t0);
  t.on_completed(met.id, NodeId{1}, t0 + 2_h, 2_h);

  const auto missed = make_job(rng, t0 + 1_h);
  t.on_submitted(missed, NodeId{0}, t0);
  t.on_assigned(missed, NodeId{1}, t0, false);
  t.on_started(missed.id, NodeId{1}, t0);
  t.on_completed(missed.id, NodeId{1}, t0 + 90_min, 90_min);

  EXPECT_FALSE(t.find(met.id)->missed_deadline());
  EXPECT_EQ(t.find(met.id)->deadline_slack(), 1_h);
  EXPECT_TRUE(t.find(missed.id)->missed_deadline());
  EXPECT_EQ(t.find(missed.id)->deadline_slack(), -(30_min));
}

TEST(JobTracker, RetriesAndUnschedulable) {
  Rng rng{4};
  JobTracker t;
  const auto job = make_job(rng);
  t.on_submitted(job, NodeId{0}, t0);
  t.on_request_retry(job.id, 2, t0 + 5_s);
  t.on_request_retry(job.id, 3, t0 + 15_s);
  t.on_unschedulable(job.id, t0 + 30_s);
  EXPECT_TRUE(t.violations().empty());
  EXPECT_EQ(t.find(job.id)->retries, 2u);
  EXPECT_TRUE(t.find(job.id)->unschedulable);
  EXPECT_EQ(t.unschedulable_count(), 1u);
}

TEST(JobTracker, ViolationDoubleSubmit) {
  Rng rng{5};
  JobTracker t;
  const auto job = make_job(rng);
  t.on_submitted(job, NodeId{0}, t0);
  t.on_submitted(job, NodeId{1}, t0 + 1_s);
  ASSERT_EQ(t.violations().size(), 1u);
  EXPECT_NE(t.violations()[0].find("submitted twice"), std::string::npos);
}

TEST(JobTracker, ViolationEventsForUnknownJob) {
  Rng rng{6};
  JobTracker t;
  const auto id = JobId::generate(rng);
  t.on_started(id, NodeId{1}, t0);
  t.on_completed(id, NodeId{1}, t0, 1_h);
  t.on_unschedulable(id, t0);
  EXPECT_EQ(t.violations().size(), 3u);
}

TEST(JobTracker, ViolationDoubleStart) {
  Rng rng{7};
  JobTracker t;
  const auto job = make_job(rng);
  t.on_submitted(job, NodeId{0}, t0);
  t.on_assigned(job, NodeId{1}, t0, false);
  t.on_started(job.id, NodeId{1}, t0);
  t.on_started(job.id, NodeId{1}, t0 + 1_s);
  ASSERT_EQ(t.violations().size(), 1u);
  EXPECT_NE(t.violations()[0].find("started twice"), std::string::npos);
}

TEST(JobTracker, ViolationStartOnWrongNode) {
  Rng rng{8};
  JobTracker t;
  const auto job = make_job(rng);
  t.on_submitted(job, NodeId{0}, t0);
  t.on_assigned(job, NodeId{1}, t0, false);
  t.on_started(job.id, NodeId{2}, t0);
  ASSERT_EQ(t.violations().size(), 1u);
  EXPECT_NE(t.violations()[0].find("not assigned"), std::string::npos);
}

TEST(JobTracker, ViolationAssignAfterStart) {
  Rng rng{9};
  JobTracker t;
  const auto job = make_job(rng);
  t.on_submitted(job, NodeId{0}, t0);
  t.on_assigned(job, NodeId{1}, t0, false);
  t.on_started(job.id, NodeId{1}, t0);
  t.on_assigned(job, NodeId{2}, t0 + 1_s, true);
  ASSERT_GE(t.violations().size(), 1u);
  EXPECT_NE(t.violations()[0].find("after execution started"),
            std::string::npos);
}

TEST(JobTracker, ViolationCompleteWithoutStart) {
  Rng rng{10};
  JobTracker t;
  const auto job = make_job(rng);
  t.on_submitted(job, NodeId{0}, t0);
  t.on_assigned(job, NodeId{1}, t0, false);
  t.on_completed(job.id, NodeId{1}, t0 + 1_h, 1_h);
  ASSERT_EQ(t.violations().size(), 1u);
  EXPECT_NE(t.violations()[0].find("without starting"), std::string::npos);
  EXPECT_EQ(t.completed_count(), 0u);
}

TEST(JobTracker, ViolationDoubleComplete) {
  Rng rng{11};
  JobTracker t;
  const auto job = make_job(rng);
  t.on_submitted(job, NodeId{0}, t0);
  t.on_assigned(job, NodeId{1}, t0, false);
  t.on_started(job.id, NodeId{1}, t0);
  t.on_completed(job.id, NodeId{1}, t0 + 1_h, 1_h);
  t.on_completed(job.id, NodeId{1}, t0 + 2_h, 1_h);
  ASSERT_EQ(t.violations().size(), 1u);
  EXPECT_NE(t.violations()[0].find("completed twice"), std::string::npos);
  EXPECT_EQ(t.completed_count(), 1u);
}

TEST(JobTracker, ViolationInconsistentRescheduleFlag) {
  Rng rng{12};
  JobTracker t;
  const auto job = make_job(rng);
  t.on_submitted(job, NodeId{0}, t0);
  t.on_assigned(job, NodeId{1}, t0, /*reschedule=*/true);  // first assignment
  ASSERT_EQ(t.violations().size(), 1u);
  EXPECT_NE(t.violations()[0].find("inconsistent"), std::string::npos);
}

TEST(JobTracker, ViolationCompleteOnDifferentNode) {
  Rng rng{13};
  JobTracker t;
  const auto job = make_job(rng);
  t.on_submitted(job, NodeId{0}, t0);
  t.on_assigned(job, NodeId{1}, t0, false);
  t.on_started(job.id, NodeId{1}, t0);
  t.on_completed(job.id, NodeId{9}, t0 + 1_h, 1_h);
  ASSERT_EQ(t.violations().size(), 1u);
  EXPECT_NE(t.violations()[0].find("different node"), std::string::npos);
}

TEST(JobTracker, FindUnknownReturnsNull) {
  Rng rng{14};
  JobTracker t;
  EXPECT_EQ(t.find(JobId::generate(rng)), nullptr);
}

}  // namespace
}  // namespace aria::proto
