// Submission-phase protocol tests: REQUEST flooding, ACCEPT collection,
// ASSIGN delegation, retries, matching rules (paper §III-B/C).
#include <gtest/gtest.h>

#include "tests/core/test_grid.hpp"

namespace aria::proto {
namespace {

using aria::test::TestGrid;
using namespace aria::literals;
using sched::SchedulerKind;

TEST(Protocol, JobGoesToCheapestNode) {
  TestGrid g;
  g.add_node(SchedulerKind::kFcfs, 1.0);
  g.add_node(SchedulerKind::kFcfs, 2.0);  // fastest -> lowest ETTC
  g.add_node(SchedulerKind::kFcfs, 1.5);
  g.connect_all();

  auto job = g.make_job(2_h);
  const JobId id = job.id;
  g.node(0).submit(std::move(job));
  g.run_for(5_s);

  const JobRecord* rec = g.tracker.find(id);
  ASSERT_NE(rec, nullptr);
  ASSERT_EQ(rec->assignments.size(), 1u);
  EXPECT_EQ(rec->assignments[0].first, NodeId{1});
  EXPECT_TRUE(g.node(1).executing());
}

TEST(Protocol, CompletesWithExactArt) {
  TestGrid g;
  g.add_node(SchedulerKind::kFcfs, 1.0);
  g.add_node(SchedulerKind::kFcfs, 2.0);
  g.connect_all();

  auto job = g.make_job(2_h);
  const JobId id = job.id;
  g.node(0).submit(std::move(job));
  g.run_for(2_h);

  const JobRecord* rec = g.tracker.find(id);
  ASSERT_NE(rec, nullptr);
  ASSERT_TRUE(rec->done());
  // perf 2.0 and exact error model: ART = 1h.
  EXPECT_EQ(rec->art, 1_h);
  EXPECT_EQ(rec->execution_time(), 1_h);
  EXPECT_EQ(rec->executor, NodeId{1});
  EXPECT_TRUE(g.tracker.violations().empty());
}

TEST(Protocol, InitiatorCanWinItsOwnJob) {
  TestGrid g;
  auto& fast = g.add_node(SchedulerKind::kFcfs, 2.0);
  g.add_node(SchedulerKind::kFcfs, 1.0);
  g.connect_all();

  auto job = g.make_job(1_h);
  const JobId id = job.id;
  fast.submit(std::move(job));
  g.run_for(5_s);

  const JobRecord* rec = g.tracker.find(id);
  ASSERT_EQ(rec->assignments.size(), 1u);
  EXPECT_EQ(rec->assignments[0].first, NodeId{0});
  // Self-assignment must not generate ASSIGN traffic.
  EXPECT_EQ(g.net().traffic().of(kAssignType).messages, 0u);
}

TEST(Protocol, SelfCandidacyCanBeDisabled) {
  TestGrid g;
  g.config.initiator_self_candidate = false;
  auto& fast = g.add_node(SchedulerKind::kFcfs, 2.0);
  g.add_node(SchedulerKind::kFcfs, 1.0);
  g.connect_all();

  auto job = g.make_job(1_h);
  const JobId id = job.id;
  fast.submit(std::move(job));
  g.run_for(5_s);

  // The slower remote node wins because the initiator does not bid.
  EXPECT_EQ(g.tracker.find(id)->assignments[0].first, NodeId{1});
}

TEST(Protocol, NonMatchingNodesForwardInsteadOfBidding) {
  TestGrid g;
  grid::NodeProfile sparc = TestGrid::universal_profile();
  sparc.arch = grid::Architecture::kSparc;
  g.add_node(SchedulerKind::kFcfs, 1.0, sparc);  // initiator cannot run it
  g.add_node(SchedulerKind::kFcfs, 1.0, sparc);  // relay hop, cannot run it
  g.add_node(SchedulerKind::kFcfs, 1.0);         // the only match
  g.connect_line();  // 0 - 1 - 2: node 2 reachable only through node 1

  auto job = g.make_job(1_h);
  const JobId id = job.id;
  g.node(0).submit(std::move(job));
  g.run_for(5_s);

  const JobRecord* rec = g.tracker.find(id);
  ASSERT_NE(rec, nullptr);
  ASSERT_EQ(rec->assignments.size(), 1u);
  EXPECT_EQ(rec->assignments[0].first, NodeId{2});
  EXPECT_GT(g.node(1).counters().requests_forwarded, 0u);
}

TEST(Protocol, MatchingNodeDoesNotForwardByDefault) {
  // Paper-literal rule: a satisfied REQUEST stops at the bidder.
  TestGrid g;
  g.add_node(SchedulerKind::kFcfs, 1.0);  // initiator
  g.add_node(SchedulerKind::kFcfs, 1.0);  // matches -> absorbs the flood
  g.add_node(SchedulerKind::kFcfs, 2.0);  // behind node 1, never sees it
  g.connect_line();

  auto job = g.make_job(1_h);
  const JobId id = job.id;
  g.node(0).submit(std::move(job));
  g.run_for(5_s);

  EXPECT_EQ(g.node(1).counters().requests_forwarded, 0u);
  // Node 2 would be the better (faster) choice, but the flood stopped.
  EXPECT_NE(g.tracker.find(id)->assignments[0].first, NodeId{2});
}

TEST(Protocol, ForwardOnMatchReachesBetterNodes) {
  TestGrid g;
  g.config.forward_on_match = true;
  g.add_node(SchedulerKind::kFcfs, 1.0);
  g.add_node(SchedulerKind::kFcfs, 1.0);
  g.add_node(SchedulerKind::kFcfs, 2.0);
  g.connect_line();

  auto job = g.make_job(1_h);
  const JobId id = job.id;
  g.node(0).submit(std::move(job));
  g.run_for(5_s);

  EXPECT_EQ(g.tracker.find(id)->assignments[0].first, NodeId{2});
}

TEST(Protocol, HopLimitBoundsFloodReach) {
  TestGrid g;
  g.config.request_hops = 2;  // initiator -> n1 -> n2, no further
  g.config.initiator_self_candidate = false;
  grid::NodeProfile sparc = TestGrid::universal_profile();
  sparc.arch = grid::Architecture::kSparc;
  g.add_node(SchedulerKind::kFcfs, 1.0, sparc);
  g.add_node(SchedulerKind::kFcfs, 1.0, sparc);
  g.add_node(SchedulerKind::kFcfs, 1.0, sparc);
  g.add_node(SchedulerKind::kFcfs, 1.0);  // 3 hops away: unreachable
  g.connect_line();
  g.config.retry.max_attempts = 1;

  auto job = g.make_job(1_h);
  const JobId id = job.id;
  g.node(0).submit(std::move(job));
  g.run_for(30_s);

  const JobRecord* rec = g.tracker.find(id);
  EXPECT_TRUE(rec->assignments.empty());
  EXPECT_TRUE(rec->unschedulable);
}

TEST(Protocol, RetriesUntilMatchAppears) {
  TestGrid g;
  g.config.retry.max_attempts = 0;  // retry forever
  grid::NodeProfile sparc = TestGrid::universal_profile();
  sparc.arch = grid::Architecture::kSparc;
  g.add_node(SchedulerKind::kFcfs, 1.0, sparc);
  g.add_node(SchedulerKind::kFcfs, 1.0, sparc);
  g.connect_all();

  auto job = g.make_job(1_h);
  const JobId id = job.id;
  g.node(0).submit(std::move(job));
  g.run_for(10_s);  // first attempt + at least one retry
  EXPECT_GT(g.tracker.find(id)->retries, 0u);
  EXPECT_TRUE(g.tracker.find(id)->assignments.empty());

  // A matching node joins the overlay; the next retry finds it.
  auto& late_joiner = g.add_node(SchedulerKind::kFcfs, 1.0);
  g.topo.add_link(NodeId{0}, late_joiner.id());
  g.run_for(60_s);

  const JobRecord* rec = g.tracker.find(id);
  ASSERT_EQ(rec->assignments.size(), 1u);
  EXPECT_EQ(rec->assignments[0].first, late_joiner.id());
  EXPECT_TRUE(g.tracker.violations().empty());
}

TEST(Protocol, UnschedulableAfterMaxAttempts) {
  TestGrid g;
  g.config.retry.max_attempts = 3;
  grid::NodeProfile sparc = TestGrid::universal_profile();
  sparc.arch = grid::Architecture::kSparc;
  g.add_node(SchedulerKind::kFcfs, 1.0, sparc);
  g.add_node(SchedulerKind::kFcfs, 1.0, sparc);
  g.connect_all();

  auto job = g.make_job(1_h);
  const JobId id = job.id;
  g.node(0).submit(std::move(job));
  g.run_for(5_min);

  const JobRecord* rec = g.tracker.find(id);
  EXPECT_TRUE(rec->unschedulable);
  EXPECT_EQ(rec->retries, 2u);  // attempts 2 and 3
  EXPECT_EQ(g.tracker.unschedulable_count(), 1u);
}

TEST(Protocol, QueueBuildsUpFcfs) {
  TestGrid g;
  g.add_node(SchedulerKind::kFcfs, 1.0);
  auto job1 = g.make_job(2_h);
  auto job2 = g.make_job(1_h);
  auto job3 = g.make_job(1_h);
  g.node(0).submit(std::move(job1));
  g.node(0).submit(std::move(job2));
  g.node(0).submit(std::move(job3));
  g.run_for(5_s);

  EXPECT_TRUE(g.node(0).executing());
  EXPECT_EQ(g.node(0).queue_length(), 2u);
  g.run_for(4_h);
  EXPECT_EQ(g.tracker.completed_count(), 3u);
  EXPECT_TRUE(g.tracker.violations().empty());
}

TEST(Protocol, VirtualOrgConstraintRestrictsPlacement) {
  TestGrid g;
  g.add_node(SchedulerKind::kFcfs, 1.0, TestGrid::universal_profile(), "vo-a");
  g.add_node(SchedulerKind::kFcfs, 3.0, TestGrid::universal_profile(), "vo-b");
  g.connect_all();

  auto job = g.make_job(1_h);
  job.requirements.virtual_org = "vo-a";
  const JobId id = job.id;
  g.node(1).submit(std::move(job));  // submitted to the wrong VO's node
  g.run_for(5_s);

  const JobRecord* rec = g.tracker.find(id);
  ASSERT_EQ(rec->assignments.size(), 1u);
  EXPECT_EQ(rec->assignments[0].first, NodeId{0});
}

TEST(Protocol, DeadlineJobsOnlyMatchDeadlineSchedulers) {
  TestGrid g;
  g.add_node(SchedulerKind::kFcfs, 3.0);  // fast, but batch
  g.add_node(SchedulerKind::kEdf, 1.0);
  g.connect_all();

  auto job = g.make_job(1_h, /*deadline_in=*/10_h);
  const JobId id = job.id;
  g.node(0).submit(std::move(job));
  g.run_for(5_s);

  const JobRecord* rec = g.tracker.find(id);
  ASSERT_EQ(rec->assignments.size(), 1u);
  EXPECT_EQ(rec->assignments[0].first, NodeId{1});
}

TEST(Protocol, BatchJobsNeverLandOnDeadlineSchedulers) {
  TestGrid g;
  g.add_node(SchedulerKind::kEdf, 3.0);
  g.add_node(SchedulerKind::kFcfs, 1.0);
  g.connect_all();

  auto job = g.make_job(1_h);
  const JobId id = job.id;
  g.node(0).submit(std::move(job));
  g.run_for(5_s);

  EXPECT_EQ(g.tracker.find(id)->assignments[0].first, NodeId{1});
}

TEST(Protocol, AcceptTrafficIsCompact) {
  TestGrid g;
  g.add_node(SchedulerKind::kFcfs, 1.0);
  g.add_node(SchedulerKind::kFcfs, 1.0);
  g.connect_all();
  auto job = g.make_job(1_h);
  g.node(0).submit(std::move(job));
  g.run_for(5_s);

  const auto accept = g.net().traffic().of(kAcceptType);
  ASSERT_GE(accept.messages, 1u);
  EXPECT_EQ(accept.bytes, accept.messages * kAcceptWireBytes);
  const auto request = g.net().traffic().of(kRequestType);
  ASSERT_GE(request.messages, 1u);
  EXPECT_EQ(request.bytes, request.messages * kRequestWireBytes);
}

TEST(Protocol, DuplicateFloodDeliveriesAreIgnored) {
  TestGrid g;
  g.config.request_fanout = 10;
  for (int i = 0; i < 6; ++i) g.add_node(SchedulerKind::kFcfs, 1.0);
  g.connect_all();
  auto job = g.make_job(1_h);
  const JobId id = job.id;
  g.node(0).submit(std::move(job));
  g.run_for(5_s);

  // Every node bids at most once despite receiving the flood from several
  // neighbors in a clique.
  const auto accepts = g.net().traffic().of(kAcceptType).messages;
  EXPECT_LE(accepts, 5u);
  ASSERT_EQ(g.tracker.find(id)->assignments.size(), 1u);
  EXPECT_TRUE(g.tracker.violations().empty());
}

TEST(Protocol, ExecutionOrderRespectsLocalPolicy) {
  TestGrid g;
  g.add_node(SchedulerKind::kSjf, 1.0);
  auto long_job = g.make_job(4_h);
  auto short_job = g.make_job(1_h);
  const JobId long_id = long_job.id;
  const JobId short_id = short_job.id;
  g.node(0).submit(std::move(long_job));
  g.run_for(1_min);  // long job starts executing (no preemption)
  g.node(0).submit(std::move(short_job));
  auto mid_job = g.make_job(2_h);
  const JobId mid_id = mid_job.id;
  g.node(0).submit(std::move(mid_job));
  g.run_for(10_h);

  const auto* l = g.tracker.find(long_id);
  const auto* s = g.tracker.find(short_id);
  const auto* m = g.tracker.find(mid_id);
  ASSERT_TRUE(l->done() && s->done() && m->done());
  EXPECT_LT(*l->completed, *s->completed);  // ran first, no preemption
  EXPECT_LT(*s->completed, *m->completed);  // SJF picked the shorter one
}

}  // namespace
}  // namespace aria::proto
