// Dynamic-rescheduling phase tests: INFORM floods, ACCEPT validation,
// reassignment, thresholds (paper §III-D).
#include <gtest/gtest.h>

#include "tests/core/test_grid.hpp"

namespace aria::proto {
namespace {

using aria::test::TestGrid;
using namespace aria::literals;
using sched::SchedulerKind;

// Builds the canonical rescheduling situation: node 0 is busy and holds a
// queued job; node 1 joins the flood reach and could run it immediately.
class RescheduleTest : public ::testing::Test {
 protected:
  RescheduleTest() : g{10_ms} {
    g.config.dynamic_rescheduling = true;
    g.config.inform_period = 60_s;
    g.config.reschedule_threshold = 1_s;
  }
  TestGrid g;
};

TEST_F(RescheduleTest, QueuedJobMovesToIdleNode) {
  auto& busy = g.add_node(SchedulerKind::kFcfs, 1.0);
  g.add_node(SchedulerKind::kFcfs, 1.0);
  g.connect_all();

  // Two jobs pile on node 0 (only node initially known to quote).
  // Disable node 1 temporarily by... simpler: submit both to node 0 with
  // node 1 disconnected, then link it.
  g.topo.remove_link(NodeId{0}, NodeId{1});
  auto j1 = g.make_job(2_h);
  auto j2 = g.make_job(2_h);
  const JobId queued_id = j2.id;
  busy.submit(std::move(j1));
  busy.submit(std::move(j2));
  g.run_for(5_s);
  ASSERT_TRUE(busy.executing());
  ASSERT_EQ(busy.queue_length(), 1u);

  // Node 1 becomes reachable; the next INFORM round should migrate the
  // queued job there.
  g.topo.add_link(NodeId{0}, NodeId{1});
  g.run_for(3_min);

  const JobRecord* rec = g.tracker.find(queued_id);
  ASSERT_NE(rec, nullptr);
  ASSERT_EQ(rec->assignments.size(), 2u);
  EXPECT_EQ(rec->assignments[1].first, NodeId{1});
  EXPECT_TRUE(g.node(1).executing());
  EXPECT_EQ(busy.queue_length(), 0u);
  EXPECT_EQ(g.tracker.total_reschedules(), 1u);
  EXPECT_EQ(busy.counters().reschedules_out, 1u);
  EXPECT_EQ(g.node(1).counters().reschedules_in, 1u);
}

TEST_F(RescheduleTest, BothJobsEventuallyCompleteFaster) {
  auto& busy = g.add_node(SchedulerKind::kFcfs, 1.0);
  g.add_node(SchedulerKind::kFcfs, 1.0);
  g.topo.add_node(NodeId{0});
  g.topo.remove_link(NodeId{0}, NodeId{1});
  auto j1 = g.make_job(2_h);
  auto j2 = g.make_job(2_h);
  busy.submit(std::move(j1));
  busy.submit(std::move(j2));
  g.run_for(5_s);
  g.topo.add_link(NodeId{0}, NodeId{1});
  g.run_for(4_h);
  EXPECT_EQ(g.tracker.completed_count(), 2u);
  EXPECT_TRUE(g.tracker.violations().empty());
  // With migration, both finish within ~2h of submission instead of 4h.
  for (const auto& [id, rec] : g.tracker.records()) {
    EXPECT_LT(rec.completion_time(), 2_h + 10_min);
  }
}

TEST_F(RescheduleTest, NoReschedulingWhenDisabled) {
  g.config.dynamic_rescheduling = false;
  auto& busy = g.add_node(SchedulerKind::kFcfs, 1.0);
  g.add_node(SchedulerKind::kFcfs, 1.0);
  g.topo.remove_link(NodeId{0}, NodeId{1});
  auto j1 = g.make_job(2_h);
  auto j2 = g.make_job(2_h);
  busy.submit(std::move(j1));
  busy.submit(std::move(j2));
  g.run_for(5_s);
  g.topo.add_link(NodeId{0}, NodeId{1});
  g.run_for(5_h);

  EXPECT_EQ(g.tracker.total_reschedules(), 0u);
  EXPECT_EQ(g.net().traffic().of(kInformType).messages, 0u);
  EXPECT_EQ(g.tracker.completed_count(), 2u);
}

TEST_F(RescheduleTest, ThresholdBlocksMarginalImprovements) {
  // Moving the queued job to the idle equal-speed node would save ~2h;
  // a 3h threshold must suppress that.
  g.config.reschedule_threshold = 3_h;
  auto& busy = g.add_node(SchedulerKind::kFcfs, 1.0);
  g.add_node(SchedulerKind::kFcfs, 1.0);
  g.topo.remove_link(NodeId{0}, NodeId{1});
  auto j1 = g.make_job(2_h);
  auto j2 = g.make_job(2_h);
  busy.submit(std::move(j1));
  busy.submit(std::move(j2));
  g.run_for(5_s);
  g.topo.add_link(NodeId{0}, NodeId{1});
  g.run_for(5_h);

  EXPECT_EQ(g.tracker.total_reschedules(), 0u);
  EXPECT_EQ(g.tracker.completed_count(), 2u);
}

TEST_F(RescheduleTest, RunningJobsAreNeverAdvertisedOrMoved) {
  auto& busy = g.add_node(SchedulerKind::kFcfs, 1.0);
  g.add_node(SchedulerKind::kFcfs, 4.0);  // much faster node appears
  g.topo.remove_link(NodeId{0}, NodeId{1});
  auto j1 = g.make_job(3_h);
  const JobId running_id = j1.id;
  busy.submit(std::move(j1));
  g.run_for(5_s);
  ASSERT_TRUE(busy.executing());
  g.topo.add_link(NodeId{0}, NodeId{1});
  g.run_for(3_h);

  const JobRecord* rec = g.tracker.find(running_id);
  ASSERT_TRUE(rec->done());
  EXPECT_EQ(rec->assignments.size(), 1u);  // no migration of running work
  EXPECT_EQ(rec->executor, NodeId{0});
}

TEST_F(RescheduleTest, InformJobsPerPeriodCapsAdvertisements) {
  // With a huge threshold nothing ever moves, so the queue stays full and
  // every period advertises exactly `inform_jobs_per_period` jobs.
  g.config.inform_jobs_per_period = 1;
  g.config.reschedule_threshold = 100_h;
  auto& busy = g.add_node(SchedulerKind::kFcfs, 1.0);
  for (int i = 0; i < 4; ++i) {
    auto j = g.make_job(8_h);
    busy.submit(std::move(j));
  }
  g.add_node(SchedulerKind::kFcfs, 1.0);
  g.topo.add_link(NodeId{0}, NodeId{1});
  g.run_for(10_min);
  ASSERT_EQ(busy.queue_length(), 3u);

  // <= 10 inform periods elapsed; cap 1 job each.
  const auto floods_cap1 = busy.counters().informs_initiated;
  EXPECT_GE(floods_cap1, 5u);
  EXPECT_LE(floods_cap1, 11u);
}

TEST_F(RescheduleTest, InformJobsPerPeriodScalesWithCap) {
  g.config.inform_jobs_per_period = 3;
  g.config.reschedule_threshold = 100_h;
  auto& busy = g.add_node(SchedulerKind::kFcfs, 1.0);
  for (int i = 0; i < 4; ++i) {
    auto j = g.make_job(8_h);
    busy.submit(std::move(j));
  }
  g.add_node(SchedulerKind::kFcfs, 1.0);
  g.topo.add_link(NodeId{0}, NodeId{1});
  g.run_for(10_min);
  ASSERT_EQ(busy.queue_length(), 3u);

  const auto floods_cap3 = busy.counters().informs_initiated;
  EXPECT_GE(floods_cap3, 15u);  // ~3 per period
  EXPECT_LE(floods_cap3, 33u);
}

TEST_F(RescheduleTest, StaleAcceptAfterStartIsIgnored) {
  // Node 0 advertises a queued job, but it starts executing before the
  // ACCEPT arrives: the reassignment must not happen.
  g.config.reschedule_threshold = 1_s;
  auto& busy = g.add_node(SchedulerKind::kFcfs, 1.0);
  auto& other = g.add_node(SchedulerKind::kFcfs, 1.0);
  g.connect_all();
  g.topo.remove_link(NodeId{0}, NodeId{1});

  auto j1 = g.make_job(30_s);  // short: completes quickly
  auto j2 = g.make_job(2_h);
  const JobId id2 = j2.id;
  busy.submit(std::move(j1));
  busy.submit(std::move(j2));
  g.run_for(5_s);
  ASSERT_EQ(busy.queue_length(), 1u);

  // Depending on INFORM timer phase, j2 either starts on node 0 (after j1
  // finishes in ~30s) or migrates to node 1 first. Either way it must start
  // exactly once, on its final assignee, and any ACCEPT arriving after the
  // start must be ignored.
  g.topo.add_link(NodeId{0}, NodeId{1});
  g.run_for(2_min);
  ASSERT_TRUE(busy.executing() || other.executing());

  const JobRecord* rec = g.tracker.find(id2);
  ASSERT_NE(rec, nullptr);
  EXPECT_TRUE(g.tracker.violations().empty());
  ASSERT_TRUE(rec->started.has_value());
  EXPECT_EQ(rec->executor, rec->assignments.back().first);
  // Run to completion: still exactly one execution.
  g.run_for(4_h);
  EXPECT_TRUE(rec->done());
  EXPECT_TRUE(g.tracker.violations().empty());
}

TEST_F(RescheduleTest, InformTrafficMetered) {
  auto& busy = g.add_node(SchedulerKind::kFcfs, 1.0);
  g.add_node(SchedulerKind::kFcfs, 1.0);
  g.connect_all();
  g.topo.remove_link(NodeId{0}, NodeId{1});
  auto j1 = g.make_job(2_h);
  auto j2 = g.make_job(2_h);
  busy.submit(std::move(j1));
  busy.submit(std::move(j2));
  g.run_for(5_s);
  g.topo.add_link(NodeId{0}, NodeId{1});
  g.run_for(3_min);

  const auto inform = g.net().traffic().of(kInformType);
  EXPECT_GE(inform.messages, 1u);
  EXPECT_EQ(inform.bytes, inform.messages * kInformWireBytes);
}

TEST_F(RescheduleTest, NotifyInitiatorWhenEnabled) {
  g.config.notify_initiator = true;
  auto& initiator = g.add_node(SchedulerKind::kFcfs, 1.0);
  // Make the initiator non-matching so it never holds the job itself.
  grid::NodeProfile sparc = TestGrid::universal_profile();
  sparc.arch = grid::Architecture::kSparc;
  g.nodes.clear();
  g.topo = overlay::Topology{};
  auto& init2 = g.add_node(SchedulerKind::kFcfs, 1.0, sparc);
  auto& holder = g.add_node(SchedulerKind::kFcfs, 1.0);
  g.add_node(SchedulerKind::kFcfs, 1.0);
  g.connect_all();
  g.topo.remove_link(NodeId{1}, NodeId{2});
  g.topo.remove_link(NodeId{0}, NodeId{2});

  auto j1 = g.make_job(2_h);
  auto j2 = g.make_job(2_h);
  init2.submit(std::move(j1));
  init2.submit(std::move(j2));
  g.run_for(5_s);
  ASSERT_EQ(holder.queue_length(), 1u);

  g.topo.add_link(NodeId{1}, NodeId{2});
  g.topo.add_link(NodeId{0}, NodeId{2});
  g.run_for(3_min);

  EXPECT_GE(g.tracker.total_reschedules(), 1u);
  EXPECT_GE(g.net().traffic().of(kNotifyType).messages, 1u);
  (void)initiator;
}

TEST_F(RescheduleTest, PingPongIsBoundedByThreshold) {
  // Two identical idle-ish nodes: once the job sits on either, the other
  // can never offer a threshold-beating improvement, so it moves at most
  // once.
  auto& a = g.add_node(SchedulerKind::kFcfs, 1.0);
  g.add_node(SchedulerKind::kFcfs, 1.0);
  g.topo.remove_link(NodeId{0}, NodeId{1});
  auto j1 = g.make_job(2_h);
  auto j2 = g.make_job(2_h);
  const JobId id = j2.id;
  a.submit(std::move(j1));
  a.submit(std::move(j2));
  g.run_for(5_s);
  g.topo.add_link(NodeId{0}, NodeId{1});
  g.run_for(2_h);

  const JobRecord* rec = g.tracker.find(id);
  EXPECT_LE(rec->reschedule_count(), 1u);
  EXPECT_TRUE(g.tracker.violations().empty());
}

}  // namespace
}  // namespace aria::proto
