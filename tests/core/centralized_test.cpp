#include "core/centralized.hpp"

#include <gtest/gtest.h>

#include "tests/core/test_grid.hpp"

namespace aria::proto {
namespace {

using aria::test::TestGrid;
using namespace aria::literals;
using sched::SchedulerKind;

TEST(Centralized, AssignsToCheapestImmediately) {
  TestGrid g;
  g.add_node(SchedulerKind::kFcfs, 1.0);
  g.add_node(SchedulerKind::kFcfs, 2.0);
  g.add_node(SchedulerKind::kFcfs, 1.5);
  CentralizedMetaScheduler meta{g.sim, {&g.node(0), &g.node(1), &g.node(2)},
                                &g.tracker};

  auto job = g.make_job(2_h);
  const JobId id = job.id;
  EXPECT_TRUE(meta.submit(job, NodeId{0}));
  // Assignment is instantaneous: no protocol round trips, no traffic.
  EXPECT_TRUE(g.node(1).executing());
  EXPECT_EQ(g.net().traffic().total().messages, 0u);
  EXPECT_EQ(g.tracker.find(id)->assignments[0].first, NodeId{1});
}

TEST(Centralized, ReportsUnschedulable) {
  TestGrid g;
  grid::NodeProfile sparc = TestGrid::universal_profile();
  sparc.arch = grid::Architecture::kSparc;
  g.add_node(SchedulerKind::kFcfs, 1.0, sparc);
  CentralizedMetaScheduler meta{g.sim, {&g.node(0)}, &g.tracker};

  auto job = g.make_job(1_h);
  const JobId id = job.id;
  EXPECT_FALSE(meta.submit(job, NodeId{0}));
  EXPECT_TRUE(g.tracker.find(id)->unschedulable);
}

TEST(Centralized, LoadBalancesAcrossEqualNodes) {
  TestGrid g;
  for (int i = 0; i < 4; ++i) g.add_node(SchedulerKind::kFcfs, 1.0);
  CentralizedMetaScheduler meta{
      g.sim, {&g.node(0), &g.node(1), &g.node(2), &g.node(3)}, &g.tracker};

  for (int i = 0; i < 4; ++i) {
    auto job = g.make_job(2_h);
    ASSERT_TRUE(meta.submit(job, NodeId{0}));
  }
  // Four equal jobs over four equal nodes: one each.
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(g.node(static_cast<std::size_t>(i)).executing());
    EXPECT_EQ(g.node(static_cast<std::size_t>(i)).queue_length(), 0u);
  }
}

TEST(Centralized, RebalanceMovesWaitingJobs) {
  TestGrid g;
  auto& a = g.add_node(SchedulerKind::kFcfs, 1.0);
  CentralizedMetaScheduler meta{g.sim, {&a}, &g.tracker};
  auto j1 = g.make_job(2_h);
  auto j2 = g.make_job(2_h);
  const JobId id2 = j2.id;
  meta.submit(j1, NodeId{0});
  meta.submit(j2, NodeId{0});
  ASSERT_EQ(a.queue_length(), 1u);

  // A new idle node appears; a rebalance sweep must migrate the queued job.
  auto& b = g.add_node(SchedulerKind::kFcfs, 1.0);
  CentralizedMetaScheduler meta2{g.sim, {&a, &b}, &g.tracker};
  EXPECT_EQ(meta2.rebalance(60.0), 1u);
  EXPECT_EQ(a.queue_length(), 0u);
  EXPECT_TRUE(b.executing());
  EXPECT_EQ(g.tracker.find(id2)->assignments.back().first, b.id());
}

TEST(Centralized, RebalanceRespectsThreshold) {
  TestGrid g;
  auto& a = g.add_node(SchedulerKind::kFcfs, 1.0);
  // Pile two jobs on the only managed node, then introduce an alternative.
  CentralizedMetaScheduler initial{g.sim, {&a}, &g.tracker};
  auto j1 = g.make_job(2_h);
  auto j2 = g.make_job(2_h);
  initial.submit(j1, NodeId{0});
  initial.submit(j2, NodeId{0});
  ASSERT_EQ(a.queue_length(), 1u);

  auto& b = g.add_node(SchedulerKind::kFcfs, 1.0);
  CentralizedMetaScheduler meta{g.sim, {&a, &b}, &g.tracker};
  // j2 waits ~2h on a; moving to b saves ~2h. A 3h threshold blocks it.
  EXPECT_EQ(meta.rebalance(3.0 * 3600.0), 0u);
  EXPECT_EQ(a.queue_length(), 1u);
  // A small threshold lets it through.
  EXPECT_EQ(meta.rebalance(60.0), 1u);
  EXPECT_TRUE(b.executing());
}

TEST(Centralized, RebalanceNoopWhenBalanced) {
  TestGrid g;
  auto& a = g.add_node(SchedulerKind::kFcfs, 1.0);
  auto& b = g.add_node(SchedulerKind::kFcfs, 1.0);
  CentralizedMetaScheduler meta{g.sim, {&a, &b}, &g.tracker};
  auto j1 = g.make_job(2_h);
  auto j2 = g.make_job(2_h);
  meta.submit(j1, NodeId{0});
  meta.submit(j2, NodeId{0});
  ASSERT_TRUE(a.executing());
  ASSERT_TRUE(b.executing());
  EXPECT_EQ(meta.rebalance(1.0), 0u);
}

TEST(Centralized, EndToEndCompletion) {
  TestGrid g;
  for (int i = 0; i < 3; ++i) g.add_node(SchedulerKind::kFcfs, 1.0 + i * 0.3);
  CentralizedMetaScheduler meta{g.sim, {&g.node(0), &g.node(1), &g.node(2)},
                                &g.tracker};
  for (int i = 0; i < 9; ++i) {
    auto job = g.make_job(1_h);
    meta.submit(job, NodeId{0});
  }
  g.run_for(10_h);
  EXPECT_EQ(g.tracker.completed_count(), 9u);
  EXPECT_TRUE(g.tracker.violations().empty());
}

}  // namespace
}  // namespace aria::proto
