// Online invariant auditor (docs/audit.md). Two layers: unit tests drive an
// AuditCollector directly with synthetic lifecycle events and wire messages
// to pin every violation kind, and integration tests run real scenarios to
// pin the two ends of the contract — a clean run (even under the full fault
// cocktail) audits clean, and attaching the auditor never perturbs a run's
// metrics or wire traffic.
#include "audit/auditor.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/messages.hpp"
#include "workload/engine.hpp"
#include "workload/scenario.hpp"

namespace aria::audit {
namespace {

using namespace aria::literals;

TimePoint at(std::int64_t minutes) {
  return TimePoint::origin() + Duration::minutes(minutes);
}

JobId job_id(std::uint64_t salt) {
  Rng rng{salt};
  return JobId::generate(rng);
}

grid::JobSpec spec(const JobId& id) {
  grid::JobSpec s;
  s.id = id;
  s.ert = 10_min;
  return s;
}

AuditCollector make_collector(AuditContext ctx = {}) {
  return AuditCollector{AuditConfig{}, ctx};
}

// ---------------------------------------------------------------------------
// Unit: lifecycle checks
// ---------------------------------------------------------------------------

TEST(Audit, CleanLifecycleAuditsClean) {
  AuditCollector a = make_collector();
  const JobId id = job_id(1);
  a.on_submitted(spec(id), NodeId{0}, at(0));
  a.on_bid_received(id, NodeId{0}, NodeId{7}, 3.0, at(1));
  a.on_delegated(id, NodeId{0}, NodeId{7}, at(2), false);
  a.on_assigned(spec(id), NodeId{7}, at(2), false);
  a.on_started(id, NodeId{7}, at(3));
  a.on_completed(id, NodeId{7}, at(13), 10_min);
  a.finish(at(1000));
  EXPECT_EQ(a.violation_count(), 0u);
  EXPECT_TRUE(a.violations().empty());
  EXPECT_TRUE(a.by_kind().empty());
}

TEST(Audit, DelegationWithoutOfferIsFlagged) {
  AuditCollector a = make_collector();
  const JobId id = job_id(2);
  a.on_submitted(spec(id), NodeId{0}, at(0));
  // Node 9 never bid, yet the initiator hands the job to it.
  a.on_delegated(id, NodeId{0}, NodeId{9}, at(1), false);
  ASSERT_EQ(a.violation_count(), 1u);
  EXPECT_EQ(a.violations()[0].kind, "assign-without-accept");
  EXPECT_EQ(a.by_kind().at("assign-without-accept"), 1u);
}

TEST(Audit, DuplicateCompletionWithoutRecoveryIsFlagged) {
  AuditCollector a = make_collector();
  const JobId id = job_id(3);
  a.on_completed(id, NodeId{4}, at(10), 10_min);
  a.on_completed(id, NodeId{5}, at(12), 10_min);
  ASSERT_EQ(a.violation_count(), 1u);
  EXPECT_EQ(a.violations()[0].kind, "duplicate-completion");
}

TEST(Audit, RecoveryExplainsASecondCompletion) {
  // The failsafe's at-least-once contract: a watchdog re-flood between the
  // two completions makes the duplicate legitimate.
  AuditCollector a = make_collector();
  const JobId id = job_id(4);
  a.on_completed(id, NodeId{4}, at(10), 10_min);
  a.on_recovery(id, 1, at(11));
  a.on_completed(id, NodeId{5}, at(20), 10_min);
  EXPECT_EQ(a.violation_count(), 0u);
}

TEST(Audit, RecoveryBudgetOverrunIsFlagged) {
  AuditContext ctx;
  ctx.failsafe_max_recoveries = 3;
  AuditCollector a = make_collector(ctx);
  const JobId id = job_id(5);
  a.on_recovery(id, 3, at(10));  // at the budget: fine
  EXPECT_EQ(a.violation_count(), 0u);
  a.on_recovery(id, 4, at(20));  // past it: the watchdog should have abandoned
  ASSERT_EQ(a.violation_count(), 1u);
  EXPECT_EQ(a.violations()[0].kind, "recovery-budget-exceeded");

  // Budget 0 = failsafe off = check skipped entirely.
  AuditCollector off = make_collector();
  off.on_recovery(id, 99, at(10));
  EXPECT_EQ(off.violation_count(), 0u);
}

TEST(Audit, UnresolvedDelegationSurfacesAtFinish) {
  AuditContext ctx;
  ctx.region_count = 4;
  AuditCollector a = make_collector(ctx);
  const JobId id = job_id(6);
  a.on_region_delegated(id, NodeId{1}, 0, 2, at(10));
  a.finish(at(1000));  // nothing ever happened to the job afterwards
  ASSERT_EQ(a.violation_count(), 1u);
  EXPECT_EQ(a.violations()[0].kind, "unresolved-delegation");
}

TEST(Audit, LaterEventResolvesADelegation) {
  AuditContext ctx;
  ctx.region_count = 4;
  AuditCollector a = make_collector(ctx);
  const JobId id = job_id(7);
  a.on_region_delegated(id, NodeId{1}, 0, 2, at(10));
  a.on_bid_received(id, NodeId{0}, NodeId{42}, 2.0, at(15));
  a.finish(at(1000));
  EXPECT_EQ(a.violation_count(), 0u);
}

TEST(Audit, DelegationNearHorizonGetsGrace) {
  AuditContext ctx;
  ctx.region_count = 4;
  AuditCollector a = make_collector(ctx);
  const JobId id = job_id(8);
  a.on_region_delegated(id, NodeId{1}, 0, 2, at(995));
  a.finish(at(1000));  // inside delegation_grace: in flight, not stranded
  EXPECT_EQ(a.violation_count(), 0u);
}

TEST(Audit, DelegationOutsideRegionRangeIsFlagged) {
  AuditContext ctx;
  ctx.region_count = 4;
  AuditCollector a = make_collector(ctx);
  a.on_region_delegated(job_id(9), NodeId{1}, 0, 7, at(10));
  ASSERT_GE(a.violation_count(), 1u);
  EXPECT_EQ(a.violations()[0].kind, "delegation-bad-region");
}

// ---------------------------------------------------------------------------
// Unit: digest conservation on the wire tap
// ---------------------------------------------------------------------------

void tap_digest(AuditCollector& a, NodeId from, overlay::RegionDigest d,
                std::int64_t minute = 10) {
  const proto::RegionDigestMsg msg{from, d};
  a.on_message(from, NodeId{99}, msg, at(minute), at(minute), false);
}

TEST(Audit, WellFormedDigestPasses) {
  AuditContext ctx;
  ctx.node_count = 100;
  ctx.region_count = 4;
  AuditCollector a = make_collector(ctx);
  tap_digest(a, NodeId{1}, {/*region=*/1, /*epoch=*/3, /*members=*/25,
                            /*idle=*/10, /*backlog_seconds=*/12.5,
                            /*queue_len=*/4});
  EXPECT_EQ(a.violation_count(), 0u);
}

TEST(Audit, DigestClaimingMoreMembersThanThePopulationIsFlagged) {
  AuditContext ctx;
  ctx.node_count = 100;   // region 1 of R=4 holds exactly 25 nodes
  ctx.region_count = 4;
  AuditCollector a = make_collector(ctx);
  tap_digest(a, NodeId{1}, {1, 3, /*members=*/26, 0, 0.0, 0});
  ASSERT_EQ(a.violation_count(), 1u);
  EXPECT_EQ(a.violations()[0].kind, "digest-overcount");
}

TEST(Audit, DigestMalformationsAreFlagged) {
  AuditContext ctx;
  ctx.node_count = 100;
  ctx.region_count = 4;
  AuditCollector a = make_collector(ctx);
  tap_digest(a, NodeId{1}, {/*region=*/9, 1, 5, 0, 0.0, 0});   // bad region
  tap_digest(a, NodeId{2}, {2, 1, 5, /*idle=*/6, 0.0, 0});     // idle > members
  tap_digest(a, NodeId{3}, {3, 1, 5, 0, /*backlog=*/-1.0, 0}); // negative
  EXPECT_EQ(a.by_kind().at("digest-bad-region"), 1u);
  EXPECT_EQ(a.by_kind().at("digest-idle-overcount"), 1u);
  EXPECT_EQ(a.by_kind().at("digest-negative-backlog"), 1u);
}

TEST(Audit, DigestEpochMayRepeatButNeverRegress) {
  // The fault plane duplicates messages, so an equal epoch is legitimate;
  // only a strictly smaller one means the aggregator ran backwards.
  AuditContext ctx;
  ctx.node_count = 100;
  ctx.region_count = 4;
  AuditCollector a = make_collector(ctx);
  tap_digest(a, NodeId{1}, {1, /*epoch=*/5, 5, 0, 0.0, 0});
  tap_digest(a, NodeId{1}, {1, /*epoch=*/5, 5, 0, 0.0, 0});  // duplicate: fine
  EXPECT_EQ(a.violation_count(), 0u);
  tap_digest(a, NodeId{1}, {1, /*epoch=*/4, 5, 0, 0.0, 0});  // regression
  ASSERT_EQ(a.violation_count(), 1u);
  EXPECT_EQ(a.violations()[0].kind, "digest-epoch-regression");
}

// ---------------------------------------------------------------------------
// Unit: adversary-plane checks (docs/adversary.md)
// ---------------------------------------------------------------------------

TEST(Audit, DesignatedPoisonerDigestsAreReattributedNotViolations) {
  // With an expected-adversary predicate, a poisoned digest from a
  // designated liar is the injection working as configured: it lands in the
  // informational counter, not the violation total. Honest senders still
  // get flagged.
  AuditContext ctx;
  ctx.node_count = 100;
  ctx.region_count = 4;
  ctx.expected_adversary = [](NodeId n) { return n == NodeId{1}; };
  AuditCollector a = make_collector(ctx);
  tap_digest(a, NodeId{1}, {1, 3, /*members=*/80, 0, 0.0, 0});  // designated
  EXPECT_EQ(a.violation_count(), 0u);
  EXPECT_EQ(a.expected_adversary_digests(), 1u);
  tap_digest(a, NodeId{2}, {2, 3, /*members=*/80, 0, 0.0, 0});  // honest!
  ASSERT_EQ(a.violation_count(), 1u);
  EXPECT_EQ(a.violations()[0].kind, "digest-overcount");
}

TEST(Audit, ClampWithoutAPoisonedDigestIsFlagged) {
  // A defender may only clamp digests the wire actually saw misbehave;
  // clamping a clean one would silently blind the hierarchy.
  AuditContext ctx;
  ctx.node_count = 100;
  ctx.region_count = 4;
  AuditCollector a = make_collector(ctx);
  a.on_digest_clamped(NodeId{9}, NodeId{1}, /*region=*/1, /*epoch=*/3, at(10));
  ASSERT_EQ(a.violation_count(), 1u);
  EXPECT_EQ(a.violations()[0].kind, "clamp-without-cause");
}

TEST(Audit, ClampOfAPoisonedDigestIsLegitimate) {
  AuditContext ctx;
  ctx.node_count = 100;
  ctx.region_count = 4;
  ctx.expected_adversary = [](NodeId n) { return n == NodeId{1}; };
  AuditCollector a = make_collector(ctx);
  tap_digest(a, NodeId{1}, {1, 3, /*members=*/80, 0, 0.0, 0});
  // The send tap recorded the bad (from, region, epoch); the receiver's
  // clamp of exactly that digest is cause-backed.
  a.on_digest_clamped(NodeId{9}, NodeId{1}, 1, 3, at(11));
  EXPECT_EQ(a.violation_count(), 0u);
}

TEST(Audit, ReputationMovesAreBoundedByAlpha) {
  AuditContext ctx;
  ctx.reputation_alpha = 0.3;
  AuditCollector a = make_collector(ctx);
  // Never-observed peers start at reputation_initial (1.0): one EWMA step
  // can move the score by at most alpha.
  a.on_reputation(NodeId{0}, NodeId{7}, 0.79, at(1));  // |1.0 - 0.79| <= 0.3
  EXPECT_EQ(a.violation_count(), 0u);
  a.on_reputation(NodeId{0}, NodeId{7}, 0.20, at(2));  // 0.59 jump: flagged
  ASSERT_EQ(a.violation_count(), 1u);
  EXPECT_EQ(a.violations()[0].kind, "reputation-jump");
}

TEST(Audit, ReputationOutsideTheUnitIntervalIsFlagged) {
  AuditContext ctx;
  ctx.reputation_alpha = 0.3;
  AuditCollector a = make_collector(ctx);
  a.on_reputation(NodeId{0}, NodeId{7}, 1.25, at(1));  // step is legal, range not
  ASSERT_EQ(a.violation_count(), 1u);
  EXPECT_EQ(a.violations()[0].kind, "reputation-out-of-range");

  // Alpha 0 = defense plane off = reputation checks skipped entirely.
  AuditCollector off = make_collector();
  off.on_reputation(NodeId{0}, NodeId{7}, 42.0, at(1));
  EXPECT_EQ(off.violation_count(), 0u);
}

TEST(Audit, HedgeBudgetIsMeteredOnTheWire) {
  AuditContext ctx;
  ctx.hedge_budget = 1;
  AuditCollector a = make_collector(ctx);
  Rng rng{99};
  const JobId id = job_id(30);
  const proto::AssignMsg first{NodeId{0}, spec(id), false,
                               Uuid::generate(rng), /*hedge=*/true};
  a.on_message(NodeId{0}, NodeId{5}, first, at(1), at(1), false);
  // Retransmission of the same attempt reuses the assign id: still 1 hedge.
  a.on_message(NodeId{0}, NodeId{5}, first, at(2), at(2), false);
  EXPECT_EQ(a.violation_count(), 0u);
  // A second distinct hedged attempt blows the budget of 1.
  const proto::AssignMsg second{NodeId{0}, spec(id), false,
                                Uuid::generate(rng), /*hedge=*/true};
  a.on_message(NodeId{0}, NodeId{6}, second, at(3), at(3), false);
  ASSERT_EQ(a.violation_count(), 1u);
  EXPECT_EQ(a.violations()[0].kind, "hedge-budget-exceeded");
}

TEST(Audit, AHedgeExplainsASecondCompletion) {
  // Revoke-before-grant cannot always stop a racing straggler from
  // finishing after the hedge landed; completions up to
  // 1 + recoveries + hedges are accounted for, one more is not.
  AuditContext ctx;
  ctx.hedge_budget = 1;
  AuditCollector a = make_collector(ctx);
  Rng rng{7};
  const JobId id = job_id(31);
  const proto::AssignMsg hedge{NodeId{0}, spec(id), false,
                               Uuid::generate(rng), /*hedge=*/true};
  a.on_message(NodeId{0}, NodeId{5}, hedge, at(1), at(1), false);
  a.on_completed(id, NodeId{5}, at(10), 10_min);
  a.on_completed(id, NodeId{6}, at(11), 10_min);  // the hedge pair: fine
  EXPECT_EQ(a.violation_count(), 0u);
  a.on_completed(id, NodeId{7}, at(12), 10_min);  // a third is not
  ASSERT_EQ(a.violation_count(), 1u);
  EXPECT_EQ(a.violations()[0].kind, "duplicate-completion");
}

// ---------------------------------------------------------------------------
// Unit: decorator + recording cap
// ---------------------------------------------------------------------------

TEST(Audit, DefaultRecordingCapSurvivesAViolationFlood) {
  // The shipped default (max_recorded 64): flood well past it and the
  // stored records plateau while the count and by-kind totals keep going.
  AuditCollector a = make_collector();
  for (int i = 0; i < 100; ++i) {
    const JobId id = job_id(1000 + i);
    a.on_completed(id, NodeId{1}, at(10), 10_min);
    a.on_completed(id, NodeId{2}, at(11), 10_min);  // one duplicate each
  }
  EXPECT_EQ(a.violation_count(), 100u);
  EXPECT_EQ(a.violations().size(), AuditConfig{}.max_recorded);
  EXPECT_EQ(a.by_kind().at("duplicate-completion"), 100u);
}

TEST(Audit, ForwardsEveryCallbackToTheWrappedObserver) {
  struct Recorder : proto::ProtocolObserver {
    std::vector<std::string> calls;
    void on_submitted(const grid::JobSpec&, NodeId, TimePoint) override {
      calls.push_back("submitted");
    }
    void on_delegated(const JobId&, NodeId, NodeId, TimePoint,
                      bool) override {
      calls.push_back("delegated");
    }
    void on_completed(const JobId&, NodeId, TimePoint, Duration) override {
      calls.push_back("completed");
    }
  } rec;
  AuditCollector a{AuditConfig{}, AuditContext{}, &rec};
  const JobId id = job_id(10);
  a.on_submitted(spec(id), NodeId{0}, at(0));
  a.on_delegated(id, NodeId{0}, NodeId{1}, at(1), false);
  a.on_completed(id, NodeId{1}, at(5), 4_min);
  EXPECT_EQ(rec.calls,
            (std::vector<std::string>{"submitted", "delegated", "completed"}));
}

TEST(Audit, RecordingCapBoundsMemoryNotTheCount) {
  AuditConfig cfg;
  cfg.max_recorded = 2;
  AuditCollector a{cfg, AuditContext{}};
  for (int i = 0; i < 5; ++i) {
    a.on_completed(job_id(20), NodeId{1}, at(i + 1), 1_min);  // same job id
  }
  EXPECT_EQ(a.violation_count(), 4u);   // every duplicate counted...
  EXPECT_EQ(a.violations().size(), 2u); // ...but only the first two stored
}

TEST(Audit, ForwardTapResamplesLikeTheNetwork) {
  struct CountingTap : sim::MessageTap {
    std::size_t seen{0};
    void on_message(NodeId, NodeId, const sim::Message&, TimePoint, TimePoint,
                    bool) override {
      ++seen;
    }
  } tap;
  AuditCollector a = make_collector();
  a.set_forward_tap(&tap, 4);
  const proto::RegionDigestMsg msg{NodeId{1}, overlay::RegionDigest{}};
  for (int i = 0; i < 10; ++i) {
    a.on_message(NodeId{1}, NodeId{2}, msg, at(1), at(1), false);
  }
  // Network's arithmetic (counter++ % every == 0): messages 0, 4, 8.
  EXPECT_EQ(tap.seen, 3u);
}

// ---------------------------------------------------------------------------
// Integration: real runs
// ---------------------------------------------------------------------------

workload::ScenarioConfig small_grid() {
  workload::ScenarioConfig cfg = workload::scenario_by_name("iMixed");
  cfg.node_count = 60;
  cfg.job_count = 80;
  return cfg;
}

TEST(Audit, EnabledAuditorIsMetricInertAndCleanOnAHealthyRun) {
  const workload::RunResult base = workload::run_scenario(small_grid(), 31);

  workload::ScenarioConfig cfg = small_grid();
  cfg.audit.enabled = true;
  const workload::RunResult r = workload::run_scenario(cfg, 31);

  ASSERT_TRUE(r.audit_enabled);
  EXPECT_EQ(r.audit_violations, 0u);
  EXPECT_TRUE(r.violations.empty());
  // The auditor observes; it must never perturb.
  EXPECT_EQ(r.completed(), base.completed());
  EXPECT_EQ(r.events_fired, base.events_fired);
  EXPECT_EQ(r.traffic.total().messages, base.traffic.total().messages);
  EXPECT_EQ(r.traffic.total().bytes, base.traffic.total().bytes);
}

TEST(Audit, CleanUnderHierarchyFaultCocktail) {
  // The point of the auditor: under churn + loss + duplication with the
  // hierarchy on, the protocol must still satisfy every invariant.
  workload::ScenarioConfig cfg = small_grid();
  cfg.aria.hierarchy.enabled = true;
  cfg.aria.hierarchy.region_count = 4;
  cfg.aria.failsafe = true;
  cfg.aria.assign_ack = true;  // the CLI arms this with any message fault
  cfg.faults.enabled = true;
  cfg.faults.seed = 0xAD17;
  cfg.faults.loss = 0.02;
  cfg.faults.duplicate = 0.02;
  cfg.faults.churn = sim::FaultConfig::Churn{};
  cfg.audit.enabled = true;

  const workload::RunResult r = workload::run_scenario(cfg, 37);
  ASSERT_TRUE(r.audit_enabled);
  EXPECT_EQ(r.stranded(), 0u);
  EXPECT_EQ(r.audit_violations, 0u)
      << (r.violations.empty()
              ? std::string{}
              : r.violations[0].kind + ": " + r.violations[0].detail);
}

}  // namespace
}  // namespace aria::audit
