// Online invariant auditor (docs/audit.md). Two layers: unit tests drive an
// AuditCollector directly with synthetic lifecycle events and wire messages
// to pin every violation kind, and integration tests run real scenarios to
// pin the two ends of the contract — a clean run (even under the full fault
// cocktail) audits clean, and attaching the auditor never perturbs a run's
// metrics or wire traffic.
#include "audit/auditor.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/messages.hpp"
#include "workload/engine.hpp"
#include "workload/scenario.hpp"

namespace aria::audit {
namespace {

using namespace aria::literals;

TimePoint at(std::int64_t minutes) {
  return TimePoint::origin() + Duration::minutes(minutes);
}

JobId job_id(std::uint64_t salt) {
  Rng rng{salt};
  return JobId::generate(rng);
}

grid::JobSpec spec(const JobId& id) {
  grid::JobSpec s;
  s.id = id;
  s.ert = 10_min;
  return s;
}

AuditCollector make_collector(AuditContext ctx = {}) {
  return AuditCollector{AuditConfig{}, ctx};
}

// ---------------------------------------------------------------------------
// Unit: lifecycle checks
// ---------------------------------------------------------------------------

TEST(Audit, CleanLifecycleAuditsClean) {
  AuditCollector a = make_collector();
  const JobId id = job_id(1);
  a.on_submitted(spec(id), NodeId{0}, at(0));
  a.on_bid_received(id, NodeId{0}, NodeId{7}, 3.0, at(1));
  a.on_delegated(id, NodeId{0}, NodeId{7}, at(2), false);
  a.on_assigned(spec(id), NodeId{7}, at(2), false);
  a.on_started(id, NodeId{7}, at(3));
  a.on_completed(id, NodeId{7}, at(13), 10_min);
  a.finish(at(1000));
  EXPECT_EQ(a.violation_count(), 0u);
  EXPECT_TRUE(a.violations().empty());
  EXPECT_TRUE(a.by_kind().empty());
}

TEST(Audit, DelegationWithoutOfferIsFlagged) {
  AuditCollector a = make_collector();
  const JobId id = job_id(2);
  a.on_submitted(spec(id), NodeId{0}, at(0));
  // Node 9 never bid, yet the initiator hands the job to it.
  a.on_delegated(id, NodeId{0}, NodeId{9}, at(1), false);
  ASSERT_EQ(a.violation_count(), 1u);
  EXPECT_EQ(a.violations()[0].kind, "assign-without-accept");
  EXPECT_EQ(a.by_kind().at("assign-without-accept"), 1u);
}

TEST(Audit, DuplicateCompletionWithoutRecoveryIsFlagged) {
  AuditCollector a = make_collector();
  const JobId id = job_id(3);
  a.on_completed(id, NodeId{4}, at(10), 10_min);
  a.on_completed(id, NodeId{5}, at(12), 10_min);
  ASSERT_EQ(a.violation_count(), 1u);
  EXPECT_EQ(a.violations()[0].kind, "duplicate-completion");
}

TEST(Audit, RecoveryExplainsASecondCompletion) {
  // The failsafe's at-least-once contract: a watchdog re-flood between the
  // two completions makes the duplicate legitimate.
  AuditCollector a = make_collector();
  const JobId id = job_id(4);
  a.on_completed(id, NodeId{4}, at(10), 10_min);
  a.on_recovery(id, 1, at(11));
  a.on_completed(id, NodeId{5}, at(20), 10_min);
  EXPECT_EQ(a.violation_count(), 0u);
}

TEST(Audit, RecoveryBudgetOverrunIsFlagged) {
  AuditContext ctx;
  ctx.failsafe_max_recoveries = 3;
  AuditCollector a = make_collector(ctx);
  const JobId id = job_id(5);
  a.on_recovery(id, 3, at(10));  // at the budget: fine
  EXPECT_EQ(a.violation_count(), 0u);
  a.on_recovery(id, 4, at(20));  // past it: the watchdog should have abandoned
  ASSERT_EQ(a.violation_count(), 1u);
  EXPECT_EQ(a.violations()[0].kind, "recovery-budget-exceeded");

  // Budget 0 = failsafe off = check skipped entirely.
  AuditCollector off = make_collector();
  off.on_recovery(id, 99, at(10));
  EXPECT_EQ(off.violation_count(), 0u);
}

TEST(Audit, UnresolvedDelegationSurfacesAtFinish) {
  AuditContext ctx;
  ctx.region_count = 4;
  AuditCollector a = make_collector(ctx);
  const JobId id = job_id(6);
  a.on_region_delegated(id, NodeId{1}, 0, 2, at(10));
  a.finish(at(1000));  // nothing ever happened to the job afterwards
  ASSERT_EQ(a.violation_count(), 1u);
  EXPECT_EQ(a.violations()[0].kind, "unresolved-delegation");
}

TEST(Audit, LaterEventResolvesADelegation) {
  AuditContext ctx;
  ctx.region_count = 4;
  AuditCollector a = make_collector(ctx);
  const JobId id = job_id(7);
  a.on_region_delegated(id, NodeId{1}, 0, 2, at(10));
  a.on_bid_received(id, NodeId{0}, NodeId{42}, 2.0, at(15));
  a.finish(at(1000));
  EXPECT_EQ(a.violation_count(), 0u);
}

TEST(Audit, DelegationNearHorizonGetsGrace) {
  AuditContext ctx;
  ctx.region_count = 4;
  AuditCollector a = make_collector(ctx);
  const JobId id = job_id(8);
  a.on_region_delegated(id, NodeId{1}, 0, 2, at(995));
  a.finish(at(1000));  // inside delegation_grace: in flight, not stranded
  EXPECT_EQ(a.violation_count(), 0u);
}

TEST(Audit, DelegationOutsideRegionRangeIsFlagged) {
  AuditContext ctx;
  ctx.region_count = 4;
  AuditCollector a = make_collector(ctx);
  a.on_region_delegated(job_id(9), NodeId{1}, 0, 7, at(10));
  ASSERT_GE(a.violation_count(), 1u);
  EXPECT_EQ(a.violations()[0].kind, "delegation-bad-region");
}

// ---------------------------------------------------------------------------
// Unit: digest conservation on the wire tap
// ---------------------------------------------------------------------------

void tap_digest(AuditCollector& a, NodeId from, overlay::RegionDigest d,
                std::int64_t minute = 10) {
  const proto::RegionDigestMsg msg{from, d};
  a.on_message(from, NodeId{99}, msg, at(minute), at(minute), false);
}

TEST(Audit, WellFormedDigestPasses) {
  AuditContext ctx;
  ctx.node_count = 100;
  ctx.region_count = 4;
  AuditCollector a = make_collector(ctx);
  tap_digest(a, NodeId{1}, {/*region=*/1, /*epoch=*/3, /*members=*/25,
                            /*idle=*/10, /*backlog_seconds=*/12.5,
                            /*queue_len=*/4});
  EXPECT_EQ(a.violation_count(), 0u);
}

TEST(Audit, DigestClaimingMoreMembersThanThePopulationIsFlagged) {
  AuditContext ctx;
  ctx.node_count = 100;   // region 1 of R=4 holds exactly 25 nodes
  ctx.region_count = 4;
  AuditCollector a = make_collector(ctx);
  tap_digest(a, NodeId{1}, {1, 3, /*members=*/26, 0, 0.0, 0});
  ASSERT_EQ(a.violation_count(), 1u);
  EXPECT_EQ(a.violations()[0].kind, "digest-overcount");
}

TEST(Audit, DigestMalformationsAreFlagged) {
  AuditContext ctx;
  ctx.node_count = 100;
  ctx.region_count = 4;
  AuditCollector a = make_collector(ctx);
  tap_digest(a, NodeId{1}, {/*region=*/9, 1, 5, 0, 0.0, 0});   // bad region
  tap_digest(a, NodeId{2}, {2, 1, 5, /*idle=*/6, 0.0, 0});     // idle > members
  tap_digest(a, NodeId{3}, {3, 1, 5, 0, /*backlog=*/-1.0, 0}); // negative
  EXPECT_EQ(a.by_kind().at("digest-bad-region"), 1u);
  EXPECT_EQ(a.by_kind().at("digest-idle-overcount"), 1u);
  EXPECT_EQ(a.by_kind().at("digest-negative-backlog"), 1u);
}

TEST(Audit, DigestEpochMayRepeatButNeverRegress) {
  // The fault plane duplicates messages, so an equal epoch is legitimate;
  // only a strictly smaller one means the aggregator ran backwards.
  AuditContext ctx;
  ctx.node_count = 100;
  ctx.region_count = 4;
  AuditCollector a = make_collector(ctx);
  tap_digest(a, NodeId{1}, {1, /*epoch=*/5, 5, 0, 0.0, 0});
  tap_digest(a, NodeId{1}, {1, /*epoch=*/5, 5, 0, 0.0, 0});  // duplicate: fine
  EXPECT_EQ(a.violation_count(), 0u);
  tap_digest(a, NodeId{1}, {1, /*epoch=*/4, 5, 0, 0.0, 0});  // regression
  ASSERT_EQ(a.violation_count(), 1u);
  EXPECT_EQ(a.violations()[0].kind, "digest-epoch-regression");
}

// ---------------------------------------------------------------------------
// Unit: decorator + recording cap
// ---------------------------------------------------------------------------

TEST(Audit, ForwardsEveryCallbackToTheWrappedObserver) {
  struct Recorder : proto::ProtocolObserver {
    std::vector<std::string> calls;
    void on_submitted(const grid::JobSpec&, NodeId, TimePoint) override {
      calls.push_back("submitted");
    }
    void on_delegated(const JobId&, NodeId, NodeId, TimePoint,
                      bool) override {
      calls.push_back("delegated");
    }
    void on_completed(const JobId&, NodeId, TimePoint, Duration) override {
      calls.push_back("completed");
    }
  } rec;
  AuditCollector a{AuditConfig{}, AuditContext{}, &rec};
  const JobId id = job_id(10);
  a.on_submitted(spec(id), NodeId{0}, at(0));
  a.on_delegated(id, NodeId{0}, NodeId{1}, at(1), false);
  a.on_completed(id, NodeId{1}, at(5), 4_min);
  EXPECT_EQ(rec.calls,
            (std::vector<std::string>{"submitted", "delegated", "completed"}));
}

TEST(Audit, RecordingCapBoundsMemoryNotTheCount) {
  AuditConfig cfg;
  cfg.max_recorded = 2;
  AuditCollector a{cfg, AuditContext{}};
  for (int i = 0; i < 5; ++i) {
    a.on_completed(job_id(20), NodeId{1}, at(i + 1), 1_min);  // same job id
  }
  EXPECT_EQ(a.violation_count(), 4u);   // every duplicate counted...
  EXPECT_EQ(a.violations().size(), 2u); // ...but only the first two stored
}

TEST(Audit, ForwardTapResamplesLikeTheNetwork) {
  struct CountingTap : sim::MessageTap {
    std::size_t seen{0};
    void on_message(NodeId, NodeId, const sim::Message&, TimePoint, TimePoint,
                    bool) override {
      ++seen;
    }
  } tap;
  AuditCollector a = make_collector();
  a.set_forward_tap(&tap, 4);
  const proto::RegionDigestMsg msg{NodeId{1}, overlay::RegionDigest{}};
  for (int i = 0; i < 10; ++i) {
    a.on_message(NodeId{1}, NodeId{2}, msg, at(1), at(1), false);
  }
  // Network's arithmetic (counter++ % every == 0): messages 0, 4, 8.
  EXPECT_EQ(tap.seen, 3u);
}

// ---------------------------------------------------------------------------
// Integration: real runs
// ---------------------------------------------------------------------------

workload::ScenarioConfig small_grid() {
  workload::ScenarioConfig cfg = workload::scenario_by_name("iMixed");
  cfg.node_count = 60;
  cfg.job_count = 80;
  return cfg;
}

TEST(Audit, EnabledAuditorIsMetricInertAndCleanOnAHealthyRun) {
  const workload::RunResult base = workload::run_scenario(small_grid(), 31);

  workload::ScenarioConfig cfg = small_grid();
  cfg.audit.enabled = true;
  const workload::RunResult r = workload::run_scenario(cfg, 31);

  ASSERT_TRUE(r.audit_enabled);
  EXPECT_EQ(r.audit_violations, 0u);
  EXPECT_TRUE(r.violations.empty());
  // The auditor observes; it must never perturb.
  EXPECT_EQ(r.completed(), base.completed());
  EXPECT_EQ(r.events_fired, base.events_fired);
  EXPECT_EQ(r.traffic.total().messages, base.traffic.total().messages);
  EXPECT_EQ(r.traffic.total().bytes, base.traffic.total().bytes);
}

TEST(Audit, CleanUnderHierarchyFaultCocktail) {
  // The point of the auditor: under churn + loss + duplication with the
  // hierarchy on, the protocol must still satisfy every invariant.
  workload::ScenarioConfig cfg = small_grid();
  cfg.aria.hierarchy.enabled = true;
  cfg.aria.hierarchy.region_count = 4;
  cfg.aria.failsafe = true;
  cfg.aria.assign_ack = true;  // the CLI arms this with any message fault
  cfg.faults.enabled = true;
  cfg.faults.seed = 0xAD17;
  cfg.faults.loss = 0.02;
  cfg.faults.duplicate = 0.02;
  cfg.faults.churn = sim::FaultConfig::Churn{};
  cfg.audit.enabled = true;

  const workload::RunResult r = workload::run_scenario(cfg, 37);
  ASSERT_TRUE(r.audit_enabled);
  EXPECT_EQ(r.stranded(), 0u);
  EXPECT_EQ(r.audit_violations, 0u)
      << (r.violations.empty()
              ? std::string{}
              : r.violations[0].kind + ": " + r.violations[0].detail);
}

}  // namespace
}  // namespace aria::audit
