#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace aria {
namespace {

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(7.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 7.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 7.5);
  EXPECT_DOUBLE_EQ(s.max(), 7.5);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance (n-1): sum of squared deviations = 32, n-1 = 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesPooledComputation) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(i) * 10.0;
    a.add(v);
    all.add(v);
  }
  for (int i = 50; i < 120; ++i) {
    const double v = std::cos(i) * 3.0 + 1.0;
    b.add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  RunningStats a_copy = a;
  a.merge(b);  // empty rhs: no change
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a_copy);  // empty lhs: adopt rhs
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
}

TEST(Percentile, MedianAndExtremes) {
  std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
}

TEST(Percentile, LinearInterpolation) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 0.75), 7.5);
}

TEST(Percentile, ClampsQuantile) {
  std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 2.0), 3.0);
}

}  // namespace
}  // namespace aria
