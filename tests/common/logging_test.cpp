#include "common/logging.hpp"

#include <gtest/gtest.h>

namespace aria {
namespace {

/// RAII guard restoring the global log level after each test.
class LevelGuard {
 public:
  LevelGuard() : saved_{Log::level()} {}
  ~LevelGuard() { Log::set_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Logging, SetAndGetLevel) {
  LevelGuard guard;
  Log::set_level(LogLevel::kDebug);
  EXPECT_EQ(Log::level(), LogLevel::kDebug);
  Log::set_level(LogLevel::kError);
  EXPECT_EQ(Log::level(), LogLevel::kError);
}

TEST(Logging, SetLevelFromString) {
  LevelGuard guard;
  Log::set_level_from_string("trace");
  EXPECT_EQ(Log::level(), LogLevel::kTrace);
  Log::set_level_from_string("DEBUG");  // case-insensitive
  EXPECT_EQ(Log::level(), LogLevel::kDebug);
  Log::set_level_from_string("Info");
  EXPECT_EQ(Log::level(), LogLevel::kInfo);
  Log::set_level_from_string("warn");
  EXPECT_EQ(Log::level(), LogLevel::kWarn);
  Log::set_level_from_string("error");
  EXPECT_EQ(Log::level(), LogLevel::kError);
  Log::set_level_from_string("off");
  EXPECT_EQ(Log::level(), LogLevel::kOff);
}

TEST(Logging, UnknownLevelNameIsIgnored) {
  LevelGuard guard;
  Log::set_level(LogLevel::kWarn);
  Log::set_level_from_string("verbose");
  EXPECT_EQ(Log::level(), LogLevel::kWarn);
  Log::set_level_from_string("");
  EXPECT_EQ(Log::level(), LogLevel::kWarn);
}

TEST(Logging, MacroSkipsFormattingBelowLevel) {
  LevelGuard guard;
  Log::set_level(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return "payload";
  };
  ARIA_DEBUG << expensive();  // below threshold: not evaluated
  EXPECT_EQ(evaluations, 0);
  Log::set_level(LogLevel::kOff);
  ARIA_ERROR << expensive();  // off: nothing evaluated
  EXPECT_EQ(evaluations, 0);
}

TEST(Logging, MacroEvaluatesAtOrAboveLevel) {
  LevelGuard guard;
  Log::set_level(LogLevel::kError);
  int evaluations = 0;
  auto counted = [&] {
    ++evaluations;
    return "";
  };
  ARIA_ERROR << counted();
  EXPECT_EQ(evaluations, 1);
}

TEST(Logging, OrderingOfLevels) {
  EXPECT_LT(LogLevel::kTrace, LogLevel::kDebug);
  EXPECT_LT(LogLevel::kDebug, LogLevel::kInfo);
  EXPECT_LT(LogLevel::kInfo, LogLevel::kWarn);
  EXPECT_LT(LogLevel::kWarn, LogLevel::kError);
  EXPECT_LT(LogLevel::kError, LogLevel::kOff);
}

}  // namespace
}  // namespace aria
