#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/stats.hpp"

namespace aria {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a{123}, b{123};
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng r{0};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(r.next_u64());
  EXPECT_GT(seen.size(), 90u);  // not stuck in a tiny cycle
}

TEST(Rng, ForkDecorrelates) {
  Rng parent{42};
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (c1.next_u64() == c2.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIsDeterministic) {
  Rng p1{42}, p2{42};
  Rng c1 = p1.fork(7), c2 = p2.fork(7);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(c1.next_u64(), c2.next_u64());
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r{5};
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(Rng, UniformIntRespectsBoundsInclusive) {
  Rng r{9};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng r{11};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntIsRoughlyUniform) {
  Rng r{13};
  std::vector<int> counts(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[static_cast<std::size_t>(r.uniform_int(0, 9))];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 10, kDraws / 10 * 0.1);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng r{17};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
    EXPECT_FALSE(r.bernoulli(-0.5));
    EXPECT_TRUE(r.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng r{19};
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (r.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Rng, NormalMatchesMoments) {
  Rng r{23};
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(r.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, TruncatedNormalStaysInBounds) {
  Rng r{29};
  for (int i = 0; i < 10000; ++i) {
    const double v = r.truncated_normal(150.0, 75.0, 60.0, 240.0);
    ASSERT_GE(v, 60.0);
    ASSERT_LE(v, 240.0);
  }
}

TEST(Rng, TruncatedNormalClampsMassAtBounds) {
  // With a wide stddev a visible fraction of draws must sit exactly on the
  // bounds (clamping, not rejection — the paper bounds "extreme cases").
  Rng r{31};
  int at_bounds = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = r.truncated_normal(0.0, 10.0, -5.0, 5.0);
    if (v == -5.0 || v == 5.0) ++at_bounds;
  }
  EXPECT_GT(at_bounds, 1000);
}

TEST(Rng, WeightedIndexFrequencies) {
  Rng r{37};
  std::vector<double> weights{70.0, 20.0, 10.0};
  std::vector<int> counts(3, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[r.weighted_index(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(kDraws), 0.7, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kDraws), 0.2, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(kDraws), 0.1, 0.01);
}

TEST(Rng, WeightedIndexSkipsZeroWeights) {
  Rng r{41};
  std::vector<double> weights{0.0, 1.0, 0.0};
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(r.weighted_index(weights), 1u);
}

TEST(Rng, UniformDurationWithinBounds) {
  Rng r{43};
  const Duration lo = Duration::seconds(10);
  const Duration hi = Duration::seconds(20);
  for (int i = 0; i < 1000; ++i) {
    const Duration d = r.uniform_duration(lo, hi);
    ASSERT_GE(d, lo);
    ASSERT_LE(d, hi);
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng r{47};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  r.shuffle(shuffled);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), shuffled.begin()));
}

TEST(Rng, SampleDrawsDistinctElements) {
  Rng r{53};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const auto s = r.sample(v, 4);
  EXPECT_EQ(s.size(), 4u);
  std::set<int> unique(s.begin(), s.end());
  EXPECT_EQ(unique.size(), 4u);
  for (int x : s) EXPECT_TRUE(std::find(v.begin(), v.end(), x) != v.end());
}

TEST(Rng, SampleMoreThanAvailableReturnsAll) {
  Rng r{59};
  std::vector<int> v{1, 2, 3};
  const auto s = r.sample(v, 10);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), s.begin()));
}

}  // namespace
}  // namespace aria
