#include "common/time.hpp"

#include <gtest/gtest.h>

namespace aria {
namespace {

using namespace aria::literals;

TEST(Duration, NamedConstructorsAgree) {
  EXPECT_EQ(Duration::seconds(1).count_micros(), 1'000'000);
  EXPECT_EQ(Duration::millis(1500).count_micros(), 1'500'000);
  EXPECT_EQ(Duration::minutes(2), Duration::seconds(120));
  EXPECT_EQ(Duration::hours(1), Duration::minutes(60));
  EXPECT_EQ(Duration::seconds_f(0.5), Duration::millis(500));
}

TEST(Duration, Literals) {
  EXPECT_EQ(5_s, Duration::seconds(5));
  EXPECT_EQ(3_min, Duration::minutes(3));
  EXPECT_EQ(2_h, Duration::hours(2));
  EXPECT_EQ(250_ms, Duration::millis(250));
  EXPECT_EQ(10_us, Duration::micros(10));
}

TEST(Duration, Arithmetic) {
  EXPECT_EQ(1_h + 30_min, 90_min);
  EXPECT_EQ(1_h - 90_min, -(30_min));
  EXPECT_EQ((10_s) * 6, 1_min);
  EXPECT_EQ((1_min) / 60, 1_s);
  EXPECT_DOUBLE_EQ((90_min) / (1_h), 1.5);
}

TEST(Duration, CompoundAssignment) {
  Duration d = 1_h;
  d += 30_min;
  EXPECT_EQ(d, 90_min);
  d -= 1_h;
  EXPECT_EQ(d, 30_min);
}

TEST(Duration, Comparisons) {
  EXPECT_LT(59_s, 1_min);
  EXPECT_GT(2_h, 119_min);
  EXPECT_LE(1_h, 60_min);
  EXPECT_TRUE((0_s).is_zero());
  EXPECT_TRUE((0_s - 1_s).is_negative());
  EXPECT_FALSE((1_s).is_negative());
}

TEST(Duration, Conversions) {
  EXPECT_DOUBLE_EQ((90_min).to_hours(), 1.5);
  EXPECT_DOUBLE_EQ((30_s).to_minutes(), 0.5);
  EXPECT_DOUBLE_EQ((1500_ms).to_seconds(), 1.5);
}

TEST(Duration, ScaledTruncatesToMicros) {
  EXPECT_EQ((10_s).scaled(0.5), 5_s);
  EXPECT_EQ((3_us).scaled(0.5), 1_us);  // 1.5us truncates
  EXPECT_EQ((1_h).scaled(1.0 / 3.0), Duration::micros(1'200'000'000));
}

TEST(Duration, ToStringForms) {
  EXPECT_EQ((Duration::hours(2) + Duration::minutes(30)).to_string(), "2h30m");
  EXPECT_EQ((45_min).to_string(), "45m00s");
  EXPECT_EQ((12_s + 500_ms).to_string(), "12.5s");
  EXPECT_EQ((-(90_min)).to_string(), "-1h30m");
}

TEST(TimePoint, OriginAndArithmetic) {
  const TimePoint t0 = TimePoint::origin();
  const TimePoint t1 = t0 + 1_h;
  EXPECT_EQ(t1 - t0, 1_h);
  EXPECT_EQ(t1 - 30_min, t0 + 30_min);
  EXPECT_LT(t0, t1);
  EXPECT_EQ((t0 + 2_h).to_hours(), 2.0);
}

TEST(TimePoint, CompoundAdd) {
  TimePoint t = TimePoint::origin();
  t += 90_min;
  EXPECT_EQ(t - TimePoint::origin(), 90_min);
}

TEST(TimePoint, MaxIsLargerThanAnyRealisticTime) {
  EXPECT_GT(TimePoint::max(), TimePoint::origin() + Duration::hours(1'000'000));
}

}  // namespace
}  // namespace aria
