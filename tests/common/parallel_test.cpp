#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace aria {
namespace {

TEST(Parallel, DefaultWorkerCountIsPositive) {
  EXPECT_GE(default_worker_count(), 1u);
}

TEST(Parallel, VisitsEveryIndexExactlyOnce) {
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    std::vector<std::atomic<int>> visits(100);
    parallel_for_index(visits.size(), workers,
                       [&](std::size_t i) { visits[i].fetch_add(1); });
    for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
  }
}

TEST(Parallel, ZeroItemsIsANoop) {
  bool called = false;
  parallel_for_index(0, 4, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Parallel, MoreWorkersThanItems) {
  std::vector<std::atomic<int>> visits(3);
  parallel_for_index(visits.size(), 64,
                     [&](std::size_t i) { visits[i].fetch_add(1); });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(Parallel, ResultsKeyedByIndexAreDeterministic) {
  std::vector<std::size_t> out(50);
  parallel_for_index(out.size(), 8, [&](std::size_t i) { out[i] = i * i; });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(Parallel, RethrowsLowestIndexException) {
  // Both index 3 and index 7 throw; the lowest index wins no matter which
  // worker hit its error first.
  try {
    parallel_for_index(10, 4, [](std::size_t i) {
      if (i == 3) throw std::runtime_error("three");
      if (i == 7) throw std::runtime_error("seven");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "three");
  }
}

TEST(Parallel, RemainingItemsStillRunAfterAThrow) {
  std::atomic<int> ran{0};
  EXPECT_THROW(parallel_for_index(20, 4,
                                  [&](std::size_t i) {
                                    ran.fetch_add(1);
                                    if (i == 0) throw std::runtime_error("x");
                                  }),
               std::runtime_error);
  EXPECT_EQ(ran.load(), 20);
}

}  // namespace
}  // namespace aria
