#include "common/uuid.hpp"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/rng.hpp"

namespace aria {
namespace {

TEST(Uuid, NilByDefault) {
  Uuid u;
  EXPECT_TRUE(u.is_nil());
  EXPECT_EQ(u.to_string(), "00000000-0000-0000-0000-000000000000");
}

TEST(Uuid, GenerateIsNeverNil) {
  Rng rng{1};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(Uuid::generate(rng).is_nil());
  }
}

TEST(Uuid, GenerateSetsVersion4AndVariantBits) {
  Rng rng{2};
  for (int i = 0; i < 100; ++i) {
    const Uuid u = Uuid::generate(rng);
    EXPECT_EQ((u.hi() >> 12) & 0xF, 0x4u) << u.to_string();
    EXPECT_EQ((u.lo() >> 62) & 0x3, 0x2u) << u.to_string();
  }
}

TEST(Uuid, CanonicalFormat) {
  Rng rng{3};
  const std::string s = Uuid::generate(rng).to_string();
  ASSERT_EQ(s.size(), 36u);
  EXPECT_EQ(s[8], '-');
  EXPECT_EQ(s[13], '-');
  EXPECT_EQ(s[18], '-');
  EXPECT_EQ(s[23], '-');
  EXPECT_EQ(s[14], '4');  // version nibble
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i == 8 || i == 13 || i == 18 || i == 23) continue;
    EXPECT_TRUE((s[i] >= '0' && s[i] <= '9') || (s[i] >= 'a' && s[i] <= 'f'))
        << "position " << i << " in " << s;
  }
}

TEST(Uuid, RoundTripParse) {
  Rng rng{4};
  for (int i = 0; i < 100; ++i) {
    const Uuid u = Uuid::generate(rng);
    const auto parsed = Uuid::parse(u.to_string());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, u);
  }
}

TEST(Uuid, ParseAcceptsUppercase) {
  const auto u = Uuid::parse("DEADBEEF-1234-4ABC-9DEF-000102030405");
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(u->to_string(), "deadbeef-1234-4abc-9def-000102030405");
}

TEST(Uuid, ParseRejectsMalformed) {
  EXPECT_FALSE(Uuid::parse("").has_value());
  EXPECT_FALSE(Uuid::parse("not-a-uuid").has_value());
  EXPECT_FALSE(Uuid::parse("deadbeef-1234-4abc-9def-00010203040").has_value());
  EXPECT_FALSE(Uuid::parse("deadbeef-1234-4abc-9def-0001020304055").has_value());
  EXPECT_FALSE(Uuid::parse("deadbeef_1234_4abc_9def_000102030405").has_value());
  EXPECT_FALSE(Uuid::parse("deadbeef-1234-4abc-9dex-000102030405").has_value());
  // Dash in the wrong position.
  EXPECT_FALSE(Uuid::parse("deadbeef1-234-4abc-9def-000102030405").has_value());
}

TEST(Uuid, NoCollisionsInLargeSample) {
  Rng rng{5};
  std::unordered_set<Uuid> seen;
  for (int i = 0; i < 100000; ++i) {
    ASSERT_TRUE(seen.insert(Uuid::generate(rng)).second);
  }
}

TEST(Uuid, OrderingIsTotal) {
  Rng rng{6};
  std::set<Uuid> ordered;
  for (int i = 0; i < 1000; ++i) ordered.insert(Uuid::generate(rng));
  EXPECT_EQ(ordered.size(), 1000u);
}

TEST(Uuid, HashSpreads) {
  Rng rng{7};
  std::set<std::size_t> hashes;
  for (int i = 0; i < 1000; ++i) {
    hashes.insert(std::hash<Uuid>{}(Uuid::generate(rng)));
  }
  EXPECT_GT(hashes.size(), 995u);
}

}  // namespace
}  // namespace aria
