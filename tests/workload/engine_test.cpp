#include "workload/engine.hpp"

#include <gtest/gtest.h>

#include "workload/scenario.hpp"

namespace aria::workload {
namespace {

using namespace aria::literals;

/// A downsized iMixed for fast tests.
ScenarioConfig small_scenario(const std::string& base = "iMixed") {
  ScenarioConfig c = scenario_by_name(base);
  c.node_count = 40;
  c.job_count = 25;
  c.submission_start = 1_min;
  c.submission_interval = 20_s;
  c.horizon = 24_h;
  return c;
}

TEST(Engine, BuildConstructsGrid) {
  GridSimulation sim{small_scenario(), 1};
  sim.build();
  EXPECT_EQ(sim.node_count(), 40u);
  EXPECT_TRUE(sim.topology().connected());
  EXPECT_EQ(sim.idle_count(), 40u);  // nothing submitted yet
  ASSERT_NE(sim.node(NodeId{0}), nullptr);
  EXPECT_EQ(sim.node(NodeId{99}), nullptr);
}

TEST(Engine, AllJobsCompleteWithNoViolations) {
  GridSimulation sim{small_scenario(), 2};
  const RunResult r = sim.run();
  EXPECT_EQ(r.completed(), 25u);
  EXPECT_EQ(r.tracker.unschedulable_count(), 0u);
  EXPECT_TRUE(r.tracker.violations().empty());
}

TEST(Engine, DeterministicForSeed) {
  const RunResult a = run_scenario(small_scenario(), 7);
  const RunResult b = run_scenario(small_scenario(), 7);
  EXPECT_EQ(a.events_fired, b.events_fired);
  EXPECT_DOUBLE_EQ(a.mean_completion_minutes(), b.mean_completion_minutes());
  EXPECT_EQ(a.traffic.total().messages, b.traffic.total().messages);
  EXPECT_EQ(a.tracker.total_reschedules(), b.tracker.total_reschedules());
}

TEST(Engine, DifferentSeedsDiffer) {
  const RunResult a = run_scenario(small_scenario(), 1);
  const RunResult b = run_scenario(small_scenario(), 2);
  // Statistically certain to differ in traffic volume.
  EXPECT_NE(a.traffic.total().messages, b.traffic.total().messages);
}

TEST(Engine, MetricsSeriesAreSampled) {
  ScenarioConfig c = small_scenario();
  c.metrics_sample_period = 60_s;
  const RunResult r = run_scenario(c, 3);
  // 24h at 1/min -> ~1441 samples.
  EXPECT_GT(r.idle_series.size(), 1400u);
  EXPECT_GT(r.node_count_series.size(), 1400u);
  // All nodes idle at the very start and the very end.
  EXPECT_DOUBLE_EQ(r.idle_series.points().front().value, 40.0);
  EXPECT_DOUBLE_EQ(r.idle_series.points().back().value, 40.0);
  // Some nodes busy in between.
  double min_idle = 1e9;
  for (const auto& p : r.idle_series.points()) min_idle = std::min(min_idle, p.value);
  EXPECT_LT(min_idle, 40.0);
}

TEST(Engine, CompletedSeriesReachesJobCount) {
  const RunResult r = run_scenario(small_scenario(), 4);
  const auto curve =
      r.completed_series(30_min, TimePoint::origin() + 24_h);
  EXPECT_DOUBLE_EQ(curve.points().back().value, 25.0);
  // Monotone non-decreasing.
  double prev = -1.0;
  for (const auto& p : curve.points()) {
    EXPECT_GE(p.value, prev);
    prev = p.value;
  }
}

TEST(Engine, ReschedulingTogglesWithScenario) {
  ScenarioConfig plain = small_scenario("Mixed");
  ScenarioConfig dynamic = small_scenario("iMixed");
  const RunResult rp = run_scenario(plain, 5);
  const RunResult rd = run_scenario(dynamic, 5);
  EXPECT_EQ(rp.tracker.total_reschedules(), 0u);
  EXPECT_EQ(rp.traffic.of("INFORM").messages, 0u);
  EXPECT_GT(rd.traffic.of("INFORM").messages, 0u);
}

TEST(Engine, DeadlineScenarioProducesDeadlineJobs) {
  ScenarioConfig c = small_scenario("iDeadline");
  c.node_count = 40;
  c.job_count = 25;
  const RunResult r = run_scenario(c, 6);
  EXPECT_EQ(r.deadline_jobs(), 25u);
  EXPECT_EQ(r.completed(), 25u);
  EXPECT_TRUE(r.tracker.violations().empty());
}

TEST(Engine, ExpandingScenarioGrowsGrid) {
  ScenarioConfig c = small_scenario("iExpanding");
  c.node_count = 30;
  c.job_count = 20;
  c.expansion->start = 10_min;
  c.expansion->mean_interval = 2_min;
  c.expansion->target_node_count = 45;
  c.horizon = 24_h;
  GridSimulation sim{c, 8};
  const RunResult r = sim.run();
  EXPECT_EQ(r.final_node_count, 45u);
  EXPECT_TRUE(sim.topology().connected());
  EXPECT_EQ(r.completed(), 20u);
  // The node-count series records the growth.
  EXPECT_DOUBLE_EQ(r.node_count_series.points().front().value, 30.0);
  EXPECT_DOUBLE_EQ(r.node_count_series.points().back().value, 45.0);
}

TEST(Engine, OverlayStatsReported) {
  const RunResult r = run_scenario(small_scenario(), 9);
  EXPECT_GT(r.overlay_links, 0u);
  EXPECT_GT(r.overlay_avg_degree, 2.0);
  EXPECT_GT(r.overlay_avg_path_length, 1.0);
  EXPECT_LE(r.overlay_avg_path_length, 9.0);
}

TEST(Engine, WaitPlusExecEqualsCompletion) {
  const RunResult r = run_scenario(small_scenario(), 10);
  EXPECT_NEAR(r.mean_waiting_minutes() + r.mean_execution_minutes(),
              r.mean_completion_minutes(), 0.01);
}

TEST(Engine, VirtualOrganizationsConstrainPlacement) {
  ScenarioConfig c = small_scenario();
  c.node_count = 60;
  c.job_count = 60;
  c.vo_count = 3;
  c.vo_job_fraction = 0.5;
  GridSimulation sim{c, 41};
  const RunResult r = sim.run();
  EXPECT_EQ(r.completed(), c.job_count);
  EXPECT_TRUE(r.tracker.violations().empty());

  std::size_t constrained = 0;
  for (const auto& [id, rec] : r.tracker.records()) {
    const auto& vo = rec.spec.requirements.virtual_org;
    if (vo.empty()) continue;
    ++constrained;
    // Every assignment in the chain respected the VO boundary.
    for (const auto& [node, at] : rec.assignments) {
      EXPECT_EQ(sim.node(node)->virtual_org(), vo)
          << id.to_string() << " placed outside its organization";
    }
  }
  // ~half the jobs should be constrained (binomial, generous bounds).
  EXPECT_GT(constrained, 15u);
  EXPECT_LT(constrained, 45u);
}

TEST(Engine, SingleVoBehavesLikeUntagged) {
  ScenarioConfig c = small_scenario();
  c.vo_count = 1;
  c.vo_job_fraction = 1.0;  // ignored when vo_count == 1
  const RunResult r = run_scenario(c, 42);
  EXPECT_EQ(r.completed(), c.job_count);
  for (const auto& [id, rec] : r.tracker.records()) {
    EXPECT_TRUE(rec.spec.requirements.virtual_org.empty());
  }
}

TEST(Engine, AlternativeOverlayFamiliesWork) {
  for (auto family : {ScenarioConfig::OverlayFamily::kRandomRegular,
                      ScenarioConfig::OverlayFamily::kSmallWorld}) {
    ScenarioConfig c = small_scenario();
    c.overlay_family = family;
    GridSimulation sim{c, 31};
    const RunResult r = sim.run();
    EXPECT_EQ(r.completed(), c.job_count)
        << "family " << static_cast<int>(family);
    EXPECT_TRUE(r.tracker.violations().empty());
    EXPECT_TRUE(sim.topology().connected());
  }
}

TEST(Engine, FailsafeEnabledFullRunIsQuiet) {
  // With failsafe on but no crashes, jobs complete normally, nothing is
  // falsely recovered, and watchers are all cleaned up.
  ScenarioConfig c = small_scenario();
  c.aria.failsafe = true;
  GridSimulation sim{c, 21};
  const RunResult r = sim.run();
  EXPECT_EQ(r.completed(), c.job_count);
  EXPECT_EQ(r.tracker.total_recoveries(), 0u);
  EXPECT_TRUE(r.tracker.violations().empty());
  for (proto::AriaNode* n : sim.all_nodes()) {
    EXPECT_EQ(n->watched_jobs(), 0u);
  }
  // NOTIFY traffic exists but stays a small fraction of the total.
  EXPECT_GT(r.traffic.of("NOTIFY").messages, 0u);
  EXPECT_LT(r.traffic.of("NOTIFY").bytes, r.traffic.total().bytes / 10);
}

TEST(Engine, ZeroJobScenarioIdlesToHorizon) {
  ScenarioConfig c = small_scenario();
  c.job_count = 0;
  c.horizon = 2_h;
  GridSimulation sim{c, 22};
  const RunResult r = sim.run();
  EXPECT_EQ(r.completed(), 0u);
  EXPECT_EQ(r.traffic.total().messages, 0u);
  EXPECT_DOUBLE_EQ(r.idle_series.points().back().value, 40.0);
}

TEST(Engine, SingleNodeGridRunsEverythingLocally) {
  ScenarioConfig c = small_scenario();
  c.node_count = 1;
  c.job_count = 10;
  c.horizon = 48_h;
  GridSimulation sim{c, 23};
  const RunResult r = sim.run();
  EXPECT_EQ(r.completed(), 10u);
  EXPECT_TRUE(r.tracker.violations().empty());
  for (const auto& [id, rec] : r.tracker.records()) {
    EXPECT_EQ(rec.executor, NodeId{0});
  }
}

TEST(Engine, IdleGaugeMatchesScanThroughoutRun) {
  // idle_count() is an O(1) gauge updated on node state transitions; the
  // O(N) scan stays as the ground truth. Step the run in slices and verify
  // the two agree at every boundary, busy phase included.
  GridSimulation sim{small_scenario(), 12};
  sim.build();
  EXPECT_EQ(sim.idle_count(), sim.idle_count_scan());
  const TimePoint horizon = TimePoint::origin() + 24_h;
  for (TimePoint t = TimePoint::origin() + 10_min; t < horizon; t += 10_min) {
    sim.simulator().run_until(t);
    ASSERT_EQ(sim.idle_count(), sim.idle_count_scan())
        << "gauge desync at " << sim.simulator().now().to_string();
  }
  sim.simulator().run_until(horizon);
  EXPECT_EQ(sim.idle_count(), sim.idle_count_scan());
  EXPECT_EQ(sim.idle_count(), 40u);  // all work drained by the horizon
}

TEST(Engine, IdleGaugeMatchesScanWhileGridExpands) {
  // Node arrivals must register with the gauge too.
  ScenarioConfig c = small_scenario("iExpanding");
  c.node_count = 30;
  c.job_count = 20;
  c.expansion->start = 10_min;
  c.expansion->mean_interval = 2_min;
  c.expansion->target_node_count = 45;
  GridSimulation sim{c, 13};
  sim.build();
  const TimePoint horizon = TimePoint::origin() + 24_h;
  for (TimePoint t = TimePoint::origin() + 15_min; t < horizon; t += 15_min) {
    sim.simulator().run_until(t);
    ASSERT_EQ(sim.idle_count(), sim.idle_count_scan())
        << "gauge desync at " << sim.simulator().now().to_string();
  }
  sim.simulator().run_until(horizon);
  EXPECT_EQ(sim.node_count(), 45u);
  EXPECT_EQ(sim.idle_count(), sim.idle_count_scan());
}

TEST(Engine, TrafficAccountingConsistent) {
  const RunResult r = run_scenario(small_scenario(), 11);
  const auto req = r.traffic.of("REQUEST");
  EXPECT_EQ(req.bytes, req.messages * 1024);
  const auto acc = r.traffic.of("ACCEPT");
  EXPECT_EQ(acc.bytes, acc.messages * 128);
  EXPECT_GT(r.traffic_mib_total(), 0.0);
  EXPECT_NEAR(r.traffic_mib("REQUEST") + r.traffic_mib("ACCEPT") +
                  r.traffic_mib("INFORM") + r.traffic_mib("ASSIGN"),
              r.traffic_mib_total(), 1e-9);
}

}  // namespace
}  // namespace aria::workload
