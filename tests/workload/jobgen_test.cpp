#include "workload/jobgen.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/stats.hpp"

namespace aria::workload {
namespace {

using namespace aria::literals;

TEST(JobGen, ErtWithinPaperBounds) {
  JobGenerator gen{JobGenParams{}, Rng{1}};
  for (int i = 0; i < 10000; ++i) {
    const Duration ert = gen.draw_ert();
    ASSERT_GE(ert, 1_h);
    ASSERT_LE(ert, 4_h);
  }
}

TEST(JobGen, ErtMeanMatchesDistribution) {
  JobGenerator gen{JobGenParams{}, Rng{2}};
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(gen.draw_ert().to_minutes());
  // Clamping to [60, 240] keeps the mean at ~150 by symmetry.
  EXPECT_NEAR(stats.mean(), 150.0, 3.0);
  EXPECT_GT(stats.stddev(), 30.0);
}

TEST(JobGen, JobsGetUniqueIds) {
  JobGenerator gen{JobGenParams{}, Rng{3}};
  std::unordered_set<JobId> ids;
  for (int i = 0; i < 1000; ++i) {
    const auto j = gen.next(TimePoint::origin());
    ASSERT_FALSE(j.id.is_nil());
    ASSERT_TRUE(ids.insert(j.id).second);
  }
}

TEST(JobGen, NoDeadlineByDefault) {
  JobGenerator gen{JobGenParams{}, Rng{4}};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(gen.next(TimePoint::origin()).has_deadline());
  }
}

TEST(JobGen, DeadlineIsSubmitPlusErtPlusSlack) {
  JobGenParams params;
  params.deadline_slack_mean = Duration::minutes(450);  // 7h30m
  JobGenerator gen{params, Rng{5}};
  const TimePoint now = TimePoint::origin() + 3_h;
  RunningStats slack_minutes;
  for (int i = 0; i < 5000; ++i) {
    const auto j = gen.next(now);
    ASSERT_TRUE(j.has_deadline());
    const Duration slack = *j.deadline - (now + j.ert);
    ASSERT_GT(slack, 0_s);
    slack_minutes.add(slack.to_minutes());
  }
  EXPECT_NEAR(slack_minutes.mean(), 450.0, 10.0);
}

TEST(JobGen, TighterSlackForDeadlineH) {
  JobGenParams params;
  params.deadline_slack_mean = Duration::minutes(150);  // 2h30m
  JobGenerator gen{params, Rng{6}};
  RunningStats slack_minutes;
  for (int i = 0; i < 5000; ++i) {
    const auto j = gen.next(TimePoint::origin());
    slack_minutes.add((*j.deadline - (TimePoint::origin() + j.ert)).to_minutes());
  }
  EXPECT_NEAR(slack_minutes.mean(), 150.0, 5.0);
}

TEST(JobGen, FeasibilityPredicateIsHonored) {
  JobGenerator gen{JobGenParams{}, Rng{7}};
  // Only AMD64/LINUX jobs pass.
  auto feasible = [](const grid::JobRequirements& r) {
    return r.arch == grid::Architecture::kAmd64 &&
           r.os == grid::OperatingSystem::kLinux;
  };
  for (int i = 0; i < 500; ++i) {
    const auto j = gen.next(TimePoint::origin(), feasible);
    EXPECT_EQ(j.requirements.arch, grid::Architecture::kAmd64);
    EXPECT_EQ(j.requirements.os, grid::OperatingSystem::kLinux);
  }
}

TEST(JobGen, ImpossiblePredicateFallsBackGracefully) {
  JobGenerator gen{JobGenParams{}, Rng{8}};
  const auto j = gen.next(TimePoint::origin(),
                          [](const grid::JobRequirements&) { return false; });
  // Still produces a job (with a warning) rather than looping forever.
  EXPECT_FALSE(j.id.is_nil());
}

TEST(JobGen, DeterministicForSeed) {
  JobGenerator a{JobGenParams{}, Rng{9}};
  JobGenerator b{JobGenParams{}, Rng{9}};
  for (int i = 0; i < 100; ++i) {
    const auto ja = a.next(TimePoint::origin());
    const auto jb = b.next(TimePoint::origin());
    EXPECT_EQ(ja.id, jb.id);
    EXPECT_EQ(ja.ert, jb.ert);
    EXPECT_EQ(ja.requirements.arch, jb.requirements.arch);
  }
}

TEST(ArrivalOffsets, UniformWithoutStorm) {
  const auto offsets = arrival_offsets(5, 10_s, std::nullopt);
  ASSERT_EQ(offsets.size(), 5u);
  for (std::size_t i = 0; i < offsets.size(); ++i) {
    EXPECT_EQ(offsets[i], 10_s * static_cast<std::int64_t>(i));
  }
}

TEST(ArrivalOffsets, ZeroJobsIsEmpty) {
  EXPECT_TRUE(arrival_offsets(0, 10_s, std::nullopt).empty());
  EXPECT_TRUE(arrival_offsets(0, 10_s, StormParams{}).empty());
}

TEST(ArrivalOffsets, IntensityAtOrBelowOneIsUniform) {
  StormParams storm;
  storm.intensity = 1.0;
  EXPECT_EQ(arrival_offsets(20, 10_s, storm),
            arrival_offsets(20, 10_s, std::nullopt));
  storm.intensity = 0.5;  // never stretches arrivals, only compresses
  EXPECT_EQ(arrival_offsets(20, 10_s, storm),
            arrival_offsets(20, 10_s, std::nullopt));
}

TEST(ArrivalOffsets, ZeroOrNegativeDurationIsUniform) {
  StormParams storm;
  storm.intensity = 5.0;
  storm.duration = Duration::zero();
  EXPECT_EQ(arrival_offsets(20, 10_s, storm),
            arrival_offsets(20, 10_s, std::nullopt));
  storm.duration = -1_min;
  EXPECT_EQ(arrival_offsets(20, 10_s, storm),
            arrival_offsets(20, 10_s, std::nullopt));
}

TEST(ArrivalOffsets, StormCompressesOnlyTheWindow) {
  StormParams storm;
  storm.start = 1_min;
  storm.duration = 1_min;
  storm.intensity = 4.0;
  const auto offsets = arrival_offsets(40, 10_s, storm);
  ASSERT_EQ(offsets.size(), 40u);
  // Before the window: base cadence (offsets 0,10,...,60s inclusive —
  // the gap *after* an arrival at t in [start, end) is the compressed one).
  for (std::size_t i = 0; i + 1 < offsets.size(); ++i) {
    const Duration gap = offsets[i + 1] - offsets[i];
    const bool inside =
        offsets[i] >= storm.start && offsets[i] < storm.start + storm.duration;
    EXPECT_EQ(gap, inside ? Duration::seconds_f(2.5) : 10_s)
        << "arrival " << i << " at " << offsets[i].to_string();
  }
  // The schedule is strictly monotone either way.
  for (std::size_t i = 0; i + 1 < offsets.size(); ++i) {
    EXPECT_LT(offsets[i], offsets[i + 1]);
  }
}

TEST(ArrivalOffsets, StormIsPureFunctionOfParameters) {
  StormParams storm;
  storm.start = 30_s;
  storm.duration = 2_min;
  storm.intensity = 6.0;
  EXPECT_EQ(arrival_offsets(100, 10_s, storm),
            arrival_offsets(100, 10_s, storm));
}

}  // namespace
}  // namespace aria::workload
