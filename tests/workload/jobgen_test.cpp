#include "workload/jobgen.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/stats.hpp"

namespace aria::workload {
namespace {

using namespace aria::literals;

TEST(JobGen, ErtWithinPaperBounds) {
  JobGenerator gen{JobGenParams{}, Rng{1}};
  for (int i = 0; i < 10000; ++i) {
    const Duration ert = gen.draw_ert();
    ASSERT_GE(ert, 1_h);
    ASSERT_LE(ert, 4_h);
  }
}

TEST(JobGen, ErtMeanMatchesDistribution) {
  JobGenerator gen{JobGenParams{}, Rng{2}};
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(gen.draw_ert().to_minutes());
  // Clamping to [60, 240] keeps the mean at ~150 by symmetry.
  EXPECT_NEAR(stats.mean(), 150.0, 3.0);
  EXPECT_GT(stats.stddev(), 30.0);
}

TEST(JobGen, JobsGetUniqueIds) {
  JobGenerator gen{JobGenParams{}, Rng{3}};
  std::unordered_set<JobId> ids;
  for (int i = 0; i < 1000; ++i) {
    const auto j = gen.next(TimePoint::origin());
    ASSERT_FALSE(j.id.is_nil());
    ASSERT_TRUE(ids.insert(j.id).second);
  }
}

TEST(JobGen, NoDeadlineByDefault) {
  JobGenerator gen{JobGenParams{}, Rng{4}};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(gen.next(TimePoint::origin()).has_deadline());
  }
}

TEST(JobGen, DeadlineIsSubmitPlusErtPlusSlack) {
  JobGenParams params;
  params.deadline_slack_mean = Duration::minutes(450);  // 7h30m
  JobGenerator gen{params, Rng{5}};
  const TimePoint now = TimePoint::origin() + 3_h;
  RunningStats slack_minutes;
  for (int i = 0; i < 5000; ++i) {
    const auto j = gen.next(now);
    ASSERT_TRUE(j.has_deadline());
    const Duration slack = *j.deadline - (now + j.ert);
    ASSERT_GT(slack, 0_s);
    slack_minutes.add(slack.to_minutes());
  }
  EXPECT_NEAR(slack_minutes.mean(), 450.0, 10.0);
}

TEST(JobGen, TighterSlackForDeadlineH) {
  JobGenParams params;
  params.deadline_slack_mean = Duration::minutes(150);  // 2h30m
  JobGenerator gen{params, Rng{6}};
  RunningStats slack_minutes;
  for (int i = 0; i < 5000; ++i) {
    const auto j = gen.next(TimePoint::origin());
    slack_minutes.add((*j.deadline - (TimePoint::origin() + j.ert)).to_minutes());
  }
  EXPECT_NEAR(slack_minutes.mean(), 150.0, 5.0);
}

TEST(JobGen, FeasibilityPredicateIsHonored) {
  JobGenerator gen{JobGenParams{}, Rng{7}};
  // Only AMD64/LINUX jobs pass.
  auto feasible = [](const grid::JobRequirements& r) {
    return r.arch == grid::Architecture::kAmd64 &&
           r.os == grid::OperatingSystem::kLinux;
  };
  for (int i = 0; i < 500; ++i) {
    const auto j = gen.next(TimePoint::origin(), feasible);
    EXPECT_EQ(j.requirements.arch, grid::Architecture::kAmd64);
    EXPECT_EQ(j.requirements.os, grid::OperatingSystem::kLinux);
  }
}

TEST(JobGen, ImpossiblePredicateFallsBackGracefully) {
  JobGenerator gen{JobGenParams{}, Rng{8}};
  const auto j = gen.next(TimePoint::origin(),
                          [](const grid::JobRequirements&) { return false; });
  // Still produces a job (with a warning) rather than looping forever.
  EXPECT_FALSE(j.id.is_nil());
}

TEST(JobGen, DeterministicForSeed) {
  JobGenerator a{JobGenParams{}, Rng{9}};
  JobGenerator b{JobGenParams{}, Rng{9}};
  for (int i = 0; i < 100; ++i) {
    const auto ja = a.next(TimePoint::origin());
    const auto jb = b.next(TimePoint::origin());
    EXPECT_EQ(ja.id, jb.id);
    EXPECT_EQ(ja.ert, jb.ert);
    EXPECT_EQ(ja.requirements.arch, jb.requirements.arch);
  }
}

}  // namespace
}  // namespace aria::workload
