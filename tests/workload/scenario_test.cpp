// Table II: the scenario registry must contain exactly the paper's 26
// scenarios with the documented parameter variations.
#include "workload/scenario.hpp"

#include <gtest/gtest.h>

#include <set>

namespace aria::workload {
namespace {

using namespace aria::literals;
using sched::SchedulerKind;

TEST(Scenarios, ExactlyTwentySixUniqueNames) {
  const auto& all = all_scenarios();
  EXPECT_EQ(all.size(), 26u);
  std::set<std::string> names;
  for (const auto& s : all) names.insert(s.name);
  EXPECT_EQ(names.size(), 26u);
}

TEST(Scenarios, TableTwoNamesPresent) {
  const char* expected[] = {
      "FCFS",      "SJF",        "Mixed",      "Deadline",   "LowLoad",
      "HighLoad",  "DeadlineH",  "Expanding",  "Precise",    "Accuracy25",
      "AccuracyBad", "iFCFS",    "iSJF",       "iMixed",     "iDeadline",
      "iLowLoad",  "iHighLoad",  "iDeadlineH", "iExpanding", "iInform1",
      "iInform4",  "iInform15m", "iInform30m", "iPrecise",   "iAccuracy25",
      "iAccuracyBad"};
  for (const char* name : expected) {
    EXPECT_NO_THROW(scenario_by_name(name)) << name;
  }
}

TEST(Scenarios, UnknownNameThrows) {
  EXPECT_THROW(scenario_by_name("NoSuchScenario"), std::out_of_range);
}

TEST(Scenarios, IPrefixMeansDynamicRescheduling) {
  for (const auto& s : all_scenarios()) {
    const bool is_i = s.name[0] == 'i';
    EXPECT_EQ(s.aria.dynamic_rescheduling, is_i) << s.name;
  }
}

TEST(Scenarios, BaselineGridParameters) {
  for (const auto& s : all_scenarios()) {
    if (s.expansion) continue;
    EXPECT_EQ(s.node_count, 500u) << s.name;
    EXPECT_EQ(s.job_count, 1000u) << s.name;
    EXPECT_EQ(s.submission_start, 20_min) << s.name;
    EXPECT_EQ(s.horizon, Duration::hours(41) + 40_min) << s.name;
  }
}

TEST(Scenarios, SchedulerMixes) {
  EXPECT_EQ(scenario_by_name("FCFS").scheduler_mix,
            (std::vector<SchedulerKind>{SchedulerKind::kFcfs}));
  EXPECT_EQ(scenario_by_name("SJF").scheduler_mix,
            (std::vector<SchedulerKind>{SchedulerKind::kSjf}));
  EXPECT_EQ(scenario_by_name("Mixed").scheduler_mix,
            (std::vector<SchedulerKind>{SchedulerKind::kFcfs,
                                        SchedulerKind::kSjf}));
  EXPECT_EQ(scenario_by_name("Deadline").scheduler_mix,
            (std::vector<SchedulerKind>{SchedulerKind::kEdf}));
}

TEST(Scenarios, SubmissionRates) {
  EXPECT_EQ(scenario_by_name("Mixed").submission_interval, 10_s);
  EXPECT_EQ(scenario_by_name("LowLoad").submission_interval, 20_s);
  EXPECT_EQ(scenario_by_name("HighLoad").submission_interval, 5_s);
  EXPECT_EQ(scenario_by_name("iLowLoad").submission_interval, 20_s);
  EXPECT_EQ(scenario_by_name("iHighLoad").submission_interval, 5_s);
}

TEST(Scenarios, SubmissionWindowsMatchPaper) {
  // Mixed: 20m + 999*10s ~ 3h07m; LowLoad ~ 5h53m; HighLoad ~ 1h43m.
  EXPECT_NEAR(scenario_by_name("Mixed").submission_end().to_hours(), 3.11, 0.05);
  EXPECT_NEAR(scenario_by_name("LowLoad").submission_end().to_hours(), 5.88,
              0.07);
  EXPECT_NEAR(scenario_by_name("HighLoad").submission_end().to_hours(), 1.72,
              0.05);
}

TEST(Scenarios, DeadlineSlacks) {
  EXPECT_EQ(*scenario_by_name("Deadline").jobs.deadline_slack_mean, 450_min);
  EXPECT_EQ(*scenario_by_name("DeadlineH").jobs.deadline_slack_mean, 150_min);
  EXPECT_EQ(*scenario_by_name("iDeadline").jobs.deadline_slack_mean, 450_min);
  EXPECT_FALSE(scenario_by_name("Mixed").jobs.deadline_slack_mean.has_value());
  EXPECT_TRUE(scenario_by_name("Deadline").deadline_scenario());
}

TEST(Scenarios, InformPolicyVariants) {
  EXPECT_EQ(scenario_by_name("iMixed").aria.inform_jobs_per_period, 2u);
  EXPECT_EQ(scenario_by_name("iInform1").aria.inform_jobs_per_period, 1u);
  EXPECT_EQ(scenario_by_name("iInform4").aria.inform_jobs_per_period, 4u);
  EXPECT_EQ(scenario_by_name("iMixed").aria.reschedule_threshold, 3_min);
  EXPECT_EQ(scenario_by_name("iInform15m").aria.reschedule_threshold, 15_min);
  EXPECT_EQ(scenario_by_name("iInform30m").aria.reschedule_threshold, 30_min);
}

TEST(Scenarios, ErtAccuracyVariants) {
  EXPECT_EQ(scenario_by_name("Mixed").ert_error.mode,
            grid::ErtErrorMode::kSymmetric);
  EXPECT_DOUBLE_EQ(scenario_by_name("Mixed").ert_error.epsilon, 0.1);
  EXPECT_EQ(scenario_by_name("Precise").ert_error.mode,
            grid::ErtErrorMode::kExact);
  EXPECT_DOUBLE_EQ(scenario_by_name("Accuracy25").ert_error.epsilon, 0.25);
  EXPECT_EQ(scenario_by_name("AccuracyBad").ert_error.mode,
            grid::ErtErrorMode::kOptimistic);
  EXPECT_EQ(scenario_by_name("iAccuracyBad").ert_error.mode,
            grid::ErtErrorMode::kOptimistic);
}

TEST(Scenarios, ExpansionVariants) {
  const auto& exp = scenario_by_name("Expanding");
  ASSERT_TRUE(exp.expansion.has_value());
  EXPECT_EQ(exp.expansion->target_node_count, 700u);
  EXPECT_EQ(exp.expansion->start, 83_min);
  EXPECT_EQ(exp.expansion->mean_interval, 50_s);
  EXPECT_TRUE(scenario_by_name("iExpanding").expansion.has_value());
  EXPECT_FALSE(scenario_by_name("Mixed").expansion.has_value());
}

TEST(Scenarios, BaselineAriaParametersMatchPaper) {
  const auto& aria = scenario_by_name("iMixed").aria;
  EXPECT_EQ(aria.request_hops, 9u);
  EXPECT_EQ(aria.request_fanout, 4u);
  EXPECT_EQ(aria.inform_hops, 8u);
  EXPECT_EQ(aria.inform_fanout, 2u);
  EXPECT_EQ(aria.inform_period, 5_min);
}

TEST(Scenarios, IVariantsShareBaseParameters) {
  const auto pairs = {std::pair{"FCFS", "iFCFS"}, {"Mixed", "iMixed"},
                      {"HighLoad", "iHighLoad"}, {"Precise", "iPrecise"}};
  for (const auto& [plain, i] : pairs) {
    const auto& a = scenario_by_name(plain);
    const auto& b = scenario_by_name(i);
    EXPECT_EQ(a.scheduler_mix, b.scheduler_mix) << i;
    EXPECT_EQ(a.submission_interval, b.submission_interval) << i;
    EXPECT_EQ(a.ert_error.mode, b.ert_error.mode) << i;
    EXPECT_DOUBLE_EQ(a.ert_error.epsilon, b.ert_error.epsilon) << i;
  }
}

}  // namespace
}  // namespace aria::workload
