#include "workload/cli.hpp"

#include <gtest/gtest.h>

namespace aria::workload {
namespace {

using namespace aria::literals;

TEST(Cli, DefaultsWhenNoArgs) {
  CliOptions o;
  EXPECT_FALSE(parse_cli({}, o).has_value());
  EXPECT_FALSE(o.show_help);
  EXPECT_FALSE(o.list_scenarios);
  EXPECT_EQ(o.scenario, "iMixed");
  EXPECT_EQ(o.runs, 1u);
  EXPECT_EQ(o.seed, 1u);
  EXPECT_EQ(o.nodes, 0u);
  EXPECT_FALSE(o.rescheduling.has_value());
}

TEST(Cli, ParsesAllOptions) {
  CliOptions o;
  const auto err = parse_cli({"--scenario", "HighLoad", "--runs", "5",
                              "--seed", "42", "--nodes", "200", "--jobs",
                              "400", "--resched", "--csv", "/tmp/out",
                              "--quiet"},
                             o);
  EXPECT_FALSE(err.has_value()) << *err;
  EXPECT_EQ(o.scenario, "HighLoad");
  EXPECT_EQ(o.runs, 5u);
  EXPECT_EQ(o.seed, 42u);
  EXPECT_EQ(o.nodes, 200u);
  EXPECT_EQ(o.jobs, 400u);
  ASSERT_TRUE(o.rescheduling.has_value());
  EXPECT_TRUE(*o.rescheduling);
  EXPECT_EQ(o.csv_dir, "/tmp/out");
  EXPECT_TRUE(o.quiet);
}

TEST(Cli, HelpAndList) {
  CliOptions o;
  EXPECT_FALSE(parse_cli({"--help"}, o).has_value());
  EXPECT_TRUE(o.show_help);
  CliOptions o2;
  EXPECT_FALSE(parse_cli({"-h"}, o2).has_value());
  EXPECT_TRUE(o2.show_help);
  CliOptions o3;
  EXPECT_FALSE(parse_cli({"--list"}, o3).has_value());
  EXPECT_TRUE(o3.list_scenarios);
}

TEST(Cli, NoResched) {
  CliOptions o;
  EXPECT_FALSE(parse_cli({"--no-resched"}, o).has_value());
  ASSERT_TRUE(o.rescheduling.has_value());
  EXPECT_FALSE(*o.rescheduling);
}

TEST(Cli, FailsafeAndOverlayFlags) {
  CliOptions o;
  EXPECT_FALSE(parse_cli({"--failsafe", "--overlay", "smallworld"}, o)
                   .has_value());
  EXPECT_TRUE(o.failsafe);
  EXPECT_EQ(o.overlay, "smallworld");
  const ScenarioConfig cfg = resolve_scenario(o);
  EXPECT_TRUE(cfg.aria.failsafe);
  EXPECT_EQ(cfg.overlay_family, ScenarioConfig::OverlayFamily::kSmallWorld);

  CliOptions o2;
  EXPECT_FALSE(parse_cli({"--overlay", "random"}, o2).has_value());
  EXPECT_EQ(resolve_scenario(o2).overlay_family,
            ScenarioConfig::OverlayFamily::kRandomRegular);

  CliOptions bad;
  EXPECT_TRUE(parse_cli({"--overlay", "torus"}, bad).has_value());
  EXPECT_TRUE(parse_cli({"--overlay"}, bad).has_value());
}

TEST(Cli, ParsesFaultFlags) {
  CliOptions o;
  const auto err = parse_cli({"--loss", "0.05", "--dup", "0.02", "--spike",
                              "0.1", "--churn", "--partition", "120,30",
                              "--partition", "300,15", "--fault-seed", "99"},
                             o);
  EXPECT_FALSE(err.has_value()) << *err;
  EXPECT_DOUBLE_EQ(o.loss, 0.05);
  EXPECT_DOUBLE_EQ(o.duplicate, 0.02);
  EXPECT_DOUBLE_EQ(o.spike, 0.1);
  EXPECT_TRUE(o.churn);
  ASSERT_EQ(o.partitions.size(), 2u);
  EXPECT_DOUBLE_EQ(o.partitions[0].first, 120.0);
  EXPECT_DOUBLE_EQ(o.partitions[0].second, 30.0);
  EXPECT_EQ(o.fault_seed, 99u);
  EXPECT_TRUE(o.any_faults());
}

TEST(Cli, RejectsBadFaultValues) {
  CliOptions o;
  EXPECT_TRUE(parse_cli({"--loss", "1.5"}, o).has_value());
  EXPECT_TRUE(parse_cli({"--loss", "-0.1"}, o).has_value());
  EXPECT_TRUE(parse_cli({"--dup", "nope"}, o).has_value());
  EXPECT_TRUE(parse_cli({"--partition", "120"}, o).has_value());
  EXPECT_TRUE(parse_cli({"--partition", "x,30"}, o).has_value());
  for (const char* flag : {"--loss", "--dup", "--spike", "--partition",
                           "--fault-seed"}) {
    CliOptions o2;
    EXPECT_TRUE(parse_cli({flag}, o2).has_value()) << flag;
  }
}

TEST(Cli, FaultFlagsArmThePlaneAndTheHardenings) {
  CliOptions o;
  ASSERT_FALSE(parse_cli({"--loss", "0.05", "--churn", "--partition",
                          "120,30", "--seed", "7"},
                         o)
                   .has_value());
  const ScenarioConfig cfg = resolve_scenario(o);
  EXPECT_TRUE(cfg.faults.enabled);
  EXPECT_DOUBLE_EQ(cfg.faults.loss, 0.05);
  ASSERT_TRUE(cfg.faults.churn.has_value());
  ASSERT_EQ(cfg.faults.partitions.size(), 1u);
  EXPECT_EQ(cfg.faults.partitions[0].start, 120_min);
  EXPECT_EQ(cfg.faults.partitions[0].duration, 30_min);
  // Loss implies acknowledged delegation; churn implies the failsafe.
  EXPECT_TRUE(cfg.aria.assign_ack);
  EXPECT_TRUE(cfg.aria.failsafe);
  // Fault seed derives from --seed when not given explicitly.
  EXPECT_NE(cfg.faults.seed, 0u);

  CliOptions o2 = o;
  o2.fault_seed = 123;
  EXPECT_EQ(resolve_scenario(o2).faults.seed, 123u);
}

TEST(Cli, ParsesTargetedFaultFlags) {
  CliOptions o;
  const auto err = parse_cli(
      {"--target-churn", "2@1,3", "--region-partition", "3,120,90",
       "--msg-fault-bias", "REGION_DIGEST:25,1", "--audit"},
      o);
  EXPECT_FALSE(err.has_value()) << *err;
  EXPECT_EQ(o.target_churn_ranks, 2u);
  EXPECT_EQ(o.target_churn_regions, (std::vector<std::uint32_t>{1, 3}));
  ASSERT_EQ(o.region_partitions.size(), 1u);
  EXPECT_EQ(o.region_partitions[0].region, 3u);
  EXPECT_DOUBLE_EQ(o.region_partitions[0].start_min, 120.0);
  EXPECT_DOUBLE_EQ(o.region_partitions[0].duration_min, 90.0);
  ASSERT_EQ(o.msg_fault_bias.size(), 1u);
  EXPECT_EQ(o.msg_fault_bias[0].type, "REGION_DIGEST");
  EXPECT_DOUBLE_EQ(o.msg_fault_bias[0].loss_mult, 25.0);
  EXPECT_DOUBLE_EQ(o.msg_fault_bias[0].dup_mult, 1.0);
  EXPECT_TRUE(o.audit);
  EXPECT_TRUE(o.any_faults());
}

TEST(Cli, RejectsBadTargetedFaultValues) {
  CliOptions o;
  EXPECT_TRUE(parse_cli({"--target-churn", "x"}, o).has_value());
  EXPECT_TRUE(parse_cli({"--target-churn", "2@"}, o).has_value());
  EXPECT_TRUE(parse_cli({"--region-partition", "3,120"}, o).has_value());
  EXPECT_TRUE(parse_cli({"--region-partition", "3,120,-5"}, o).has_value());
  EXPECT_TRUE(parse_cli({"--msg-fault-bias", "REGION_DIGEST"}, o).has_value());
  EXPECT_TRUE(
      parse_cli({"--msg-fault-bias", "REGION_DIGEST:25"}, o).has_value());
  EXPECT_TRUE(
      parse_cli({"--msg-fault-bias", "REGION_DIGEST:-1,1"}, o).has_value());
  for (const char* flag :
       {"--target-churn", "--region-partition", "--msg-fault-bias"}) {
    CliOptions o2;
    EXPECT_TRUE(parse_cli({flag}, o2).has_value()) << flag;
  }
}

TEST(Cli, TargetedFlagsArmThePlaneAndImplyTheirPlanes) {
  CliOptions o;
  ASSERT_FALSE(parse_cli({"--target-churn", "2", "--region-partition",
                          "3,120,90", "--msg-fault-bias", "REGION_LOAD:25,1"},
                         o)
                   .has_value());
  const ScenarioConfig cfg = resolve_scenario(o);
  EXPECT_TRUE(cfg.faults.enabled);
  ASSERT_TRUE(cfg.faults.targeted_churn.has_value());
  EXPECT_EQ(cfg.faults.targeted_churn->ranks, 2u);
  ASSERT_EQ(cfg.faults.region_partitions.size(), 1u);
  EXPECT_EQ(cfg.faults.region_partitions[0].region, 3u);
  EXPECT_EQ(cfg.faults.region_partitions[0].start, 120_min);
  EXPECT_EQ(cfg.faults.region_partitions[0].duration, 90_min);
  ASSERT_EQ(cfg.faults.message_bias.size(), 1u);
  EXPECT_EQ(cfg.faults.message_bias[0].type, "REGION_LOAD");
  // Targeting the hierarchy's interior implies the hierarchy (and churn
  // implies the failsafe); faults on a hierarchy run arm the silence
  // hardenings.
  EXPECT_TRUE(cfg.aria.hierarchy.enabled);
  EXPECT_TRUE(cfg.aria.failsafe);
  EXPECT_EQ(cfg.aria.hierarchy.escalate_silent_rounds, 2u);
  EXPECT_EQ(cfg.aria.hierarchy.silent_backoff_factor_cap, 2u);
}

TEST(Cli, ZeroedTargetedKnobsStayInert) {
  // Every new flag present but zeroed: the fault plane must stay off and
  // the resolved scenario must equal the flagless one (the byte-for-byte
  // run-level pin lives in TargetedFault.ZeroedCliKnobsReproduceTheGolden).
  CliOptions o;
  ASSERT_FALSE(parse_cli({"--target-churn", "0", "--region-partition",
                          "1,60,0", "--msg-fault-bias", "REGION_DIGEST:1,1"},
                         o)
                   .has_value());
  EXPECT_FALSE(o.any_faults());
  const ScenarioConfig cfg = resolve_scenario(o);
  EXPECT_FALSE(cfg.faults.enabled);
  EXPECT_FALSE(cfg.faults.targeted_churn.has_value());
  EXPECT_TRUE(cfg.faults.region_partitions.empty());
  EXPECT_FALSE(cfg.aria.hierarchy.enabled);
  EXPECT_EQ(cfg.aria.hierarchy.escalate_silent_rounds, 0u);
  EXPECT_FALSE(cfg.audit.enabled);
}

TEST(Cli, AuditFlagArmsTheAuditorOnly) {
  CliOptions o;
  ASSERT_FALSE(parse_cli({"--audit"}, o).has_value());
  EXPECT_FALSE(o.any_faults());
  const ScenarioConfig cfg = resolve_scenario(o);
  EXPECT_TRUE(cfg.audit.enabled);
  EXPECT_FALSE(cfg.faults.enabled);
  EXPECT_FALSE(cfg.aria.hierarchy.enabled);
}

TEST(Cli, NoFaultFlagsLeaveThePlaneOff) {
  CliOptions o;
  ASSERT_FALSE(parse_cli({"--scenario", "iMixed"}, o).has_value());
  EXPECT_FALSE(o.any_faults());
  const ScenarioConfig cfg = resolve_scenario(o);
  EXPECT_FALSE(cfg.faults.enabled);
  EXPECT_FALSE(cfg.aria.assign_ack);
}

TEST(Cli, RejectsUnknownOption) {
  CliOptions o;
  const auto err = parse_cli({"--frobnicate"}, o);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("unknown option"), std::string::npos);
}

TEST(Cli, RejectsMissingValues) {
  for (const char* flag : {"--scenario", "--runs", "--seed", "--nodes",
                           "--jobs", "--csv"}) {
    CliOptions o;
    EXPECT_TRUE(parse_cli({flag}, o).has_value()) << flag;
  }
}

TEST(Cli, RejectsBadNumbers) {
  CliOptions o;
  EXPECT_TRUE(parse_cli({"--runs", "zero"}, o).has_value());
  EXPECT_TRUE(parse_cli({"--runs", "0"}, o).has_value());
  EXPECT_TRUE(parse_cli({"--nodes", "12x"}, o).has_value());
  EXPECT_TRUE(parse_cli({"--jobs", "0"}, o).has_value());
}

TEST(Cli, UsageMentionsEveryFlag) {
  const std::string usage = cli_usage();
  for (const char* flag : {"--list", "--scenario", "--runs", "--seed",
                           "--nodes", "--jobs", "--interval", "--horizon",
                           "--expand", "--resched", "--no-resched",
                           "--failsafe", "--overlay", "--csv", "--quiet",
                           "--loss", "--dup", "--spike", "--churn",
                           "--partition", "--fault-seed", "--target-churn",
                           "--region-partition", "--msg-fault-bias",
                           "--audit"}) {
    EXPECT_NE(usage.find(flag), std::string::npos) << flag;
  }
}

TEST(Cli, ParsesWorkloadOverrides) {
  CliOptions o;
  const auto err = parse_cli(
      {"--interval", "5.5", "--horizon", "1800", "--expand", "140,30"}, o);
  EXPECT_FALSE(err.has_value()) << *err;
  EXPECT_DOUBLE_EQ(o.interval_s, 5.5);
  EXPECT_DOUBLE_EQ(o.horizon_min, 1800.0);
  ASSERT_TRUE(o.expand.has_value());
  EXPECT_EQ(o.expand->first, 140u);
  EXPECT_EQ(o.expand->second, 30_s);
}

TEST(Cli, RejectsBadWorkloadOverrides) {
  CliOptions o;
  EXPECT_TRUE(parse_cli({"--interval", "0"}, o).has_value());
  EXPECT_TRUE(parse_cli({"--interval", "-1"}, o).has_value());
  EXPECT_TRUE(parse_cli({"--interval", "5x"}, o).has_value());
  EXPECT_TRUE(parse_cli({"--horizon", "0"}, o).has_value());
  EXPECT_TRUE(parse_cli({"--horizon"}, o).has_value());
  EXPECT_TRUE(parse_cli({"--expand", "140"}, o).has_value());
  EXPECT_TRUE(parse_cli({"--expand", "0,30"}, o).has_value());
}

TEST(Cli, ResolveAppliesWorkloadOverrides) {
  CliOptions o;
  o.scenario = "iMixed";  // no expansion plan of its own
  o.interval_s = 5.0;
  o.horizon_min = 30.0 * 60.0;
  o.expand = {140, 30_s};
  const ScenarioConfig cfg = resolve_scenario(o);
  EXPECT_EQ(cfg.submission_interval, 5_s);
  EXPECT_EQ(cfg.horizon, 30_h);
  ASSERT_TRUE(cfg.expansion.has_value());
  EXPECT_EQ(cfg.expansion->target_node_count, 140u);
  EXPECT_EQ(cfg.expansion->mean_interval, 30_s);
}

TEST(Cli, ResolveExpandKeepsExistingPlanFields) {
  CliOptions o;
  o.scenario = "Expanding";
  o.expand = {600, 40_s};
  const ScenarioConfig cfg = resolve_scenario(o);
  ASSERT_TRUE(cfg.expansion.has_value());
  EXPECT_EQ(cfg.expansion->target_node_count, 600u);
  EXPECT_EQ(cfg.expansion->mean_interval, 40_s);
  // Scenario-defined start / contacts survive the override.
  EXPECT_EQ(cfg.expansion->start,
            scenario_by_name("Expanding").expansion->start);
}

TEST(Cli, ResolveAppliesOverrides) {
  CliOptions o;
  o.scenario = "Mixed";
  o.nodes = 77;
  o.jobs = 88;
  o.rescheduling = true;
  const ScenarioConfig cfg = resolve_scenario(o);
  EXPECT_EQ(cfg.name, "Mixed");
  EXPECT_EQ(cfg.node_count, 77u);
  EXPECT_EQ(cfg.job_count, 88u);
  EXPECT_TRUE(cfg.aria.dynamic_rescheduling);
}

TEST(Cli, ResolveKeepsScenarioDefaults) {
  CliOptions o;
  o.scenario = "iMixed";
  const ScenarioConfig cfg = resolve_scenario(o);
  EXPECT_EQ(cfg.node_count, 500u);
  EXPECT_EQ(cfg.job_count, 1000u);
  EXPECT_TRUE(cfg.aria.dynamic_rescheduling);
}

TEST(Cli, ResolveThrowsForUnknownScenario) {
  CliOptions o;
  o.scenario = "Nope";
  EXPECT_THROW(resolve_scenario(o), std::out_of_range);
}

TEST(Cli, ParsesAdversaryFlags) {
  CliOptions o;
  const auto err = parse_cli(
      {"--adversaries", "0.1", "--lie-factor", "8", "--adversary-roles",
       "underbid,poison", "--adversary-seed", "42", "--defenses"},
      o);
  EXPECT_FALSE(err.has_value()) << *err;
  EXPECT_DOUBLE_EQ(o.adversaries, 0.1);
  EXPECT_DOUBLE_EQ(o.lie_factor, 8.0);
  ASSERT_EQ(o.adversary_roles.size(), 2u);
  EXPECT_EQ(o.adversary_roles[0], sim::FaultConfig::Adversary::Role::kUnderbid);
  EXPECT_EQ(o.adversary_roles[1], sim::FaultConfig::Adversary::Role::kPoison);
  EXPECT_EQ(o.adversary_seed, 42u);
  EXPECT_TRUE(o.defenses);
  EXPECT_TRUE(o.any_faults());  // adversaries arm the fault plane
}

TEST(Cli, BadAdversaryRoleNamesTheOffendingToken) {
  CliOptions o;
  const auto err =
      parse_cli({"--adversary-roles", "underbid,blackhol,poison"}, o);
  ASSERT_TRUE(err.has_value());
  // The diagnostic pinpoints which entry of the list is broken.
  EXPECT_NE(err->find("blackhol"), std::string::npos) << *err;
  EXPECT_NE(err->find("entry 2"), std::string::npos) << *err;
}

TEST(Cli, RejectsBadAdversaryFlags) {
  CliOptions o;
  EXPECT_TRUE(parse_cli({"--adversaries", "1.5"}, o).has_value());
  EXPECT_TRUE(parse_cli({"--adversaries", "-0.1"}, o).has_value());
  EXPECT_TRUE(parse_cli({"--lie-factor", "0.5"}, o).has_value());  // < 1 dilutes
  EXPECT_TRUE(parse_cli({"--adversary-roles", ""}, o).has_value());
  EXPECT_TRUE(parse_cli({"--adversary-roles"}, o).has_value());
}

TEST(Cli, ResolveArmsTheAdversaryPlan) {
  CliOptions o;
  o.scenario = "iMixed";
  o.adversaries = 0.1;
  o.lie_factor = 6.0;
  o.adversary_seed = 9;
  const ScenarioConfig cfg = resolve_scenario(o);
  EXPECT_TRUE(cfg.faults.enabled);
  ASSERT_TRUE(cfg.faults.adversary.has_value());
  EXPECT_DOUBLE_EQ(cfg.faults.adversary->fraction, 0.1);
  EXPECT_DOUBLE_EQ(cfg.faults.adversary->lie_factor, 6.0);
  EXPECT_EQ(cfg.faults.adversary->seed, 9u);
  // No explicit role list = the full cocktail.
  EXPECT_EQ(cfg.faults.adversary->roles.size(), 4u);
  // A lying grid needs the crash-recovery machinery armed.
  EXPECT_TRUE(cfg.aria.failsafe);
}

TEST(Cli, ResolveArmsTheDefensePlane) {
  CliOptions o;
  o.scenario = "iMixed";
  o.defenses = true;
  const ScenarioConfig cfg = resolve_scenario(o);
  EXPECT_TRUE(cfg.aria.defense.enabled);
  // Revoke-then-hedge rides the failsafe watchdog and acknowledged
  // delegation; --defenses arms both.
  EXPECT_TRUE(cfg.aria.failsafe);
  EXPECT_TRUE(cfg.aria.assign_ack);
  // Defenses alone do not arm fault injection.
  EXPECT_FALSE(cfg.faults.enabled);
}

}  // namespace
}  // namespace aria::workload
