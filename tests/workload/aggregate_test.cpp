#include "workload/aggregate.hpp"

#include <gtest/gtest.h>

namespace aria::workload {
namespace {

using namespace aria::literals;

ScenarioConfig tiny(const std::string& base = "iMixed") {
  ScenarioConfig c = scenario_by_name(base);
  c.node_count = 30;
  c.job_count = 15;
  c.submission_start = 1_min;
  c.submission_interval = 20_s;
  c.horizon = 16_h;
  return c;
}

TEST(Aggregate, RepeatedRunsUseDistinctSeeds) {
  const auto runs = run_scenario_repeated(tiny(), 3, 100, /*parallel=*/false);
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0].seed, 100u);
  EXPECT_EQ(runs[1].seed, 101u);
  EXPECT_EQ(runs[2].seed, 102u);
}

TEST(Aggregate, ParallelMatchesSequential) {
  const auto seq = run_scenario_repeated(tiny(), 3, 50, /*parallel=*/false);
  const auto par = run_scenario_repeated(tiny(), 3, 50, /*parallel=*/true);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].seed, par[i].seed);
    EXPECT_EQ(seq[i].events_fired, par[i].events_fired);
    EXPECT_DOUBLE_EQ(seq[i].mean_completion_minutes(),
                     par[i].mean_completion_minutes());
  }
}

TEST(Aggregate, SummaryStatistics) {
  const auto cfg = tiny();
  const auto runs = run_scenario_repeated(cfg, 3, 7, true);
  const ScenarioSummary s = summarize(cfg, runs);
  EXPECT_EQ(s.name, "iMixed");
  EXPECT_EQ(s.runs, 3u);
  EXPECT_EQ(s.completion_minutes.count(), 3u);
  EXPECT_GT(s.completion_minutes.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.completed_jobs.mean(), 15.0);
  EXPECT_GT(s.overlay_avg_path_length.mean(), 1.0);
}

TEST(Aggregate, SummaryAveragesSeries) {
  const auto cfg = tiny();
  const auto runs = run_scenario_repeated(cfg, 2, 11, true);
  const ScenarioSummary s = summarize(cfg, runs);
  ASSERT_FALSE(s.idle_series.empty());
  EXPECT_EQ(s.idle_series.label(), "iMixed");
  // First idle sample: all 30 nodes idle in every run.
  EXPECT_DOUBLE_EQ(s.idle_series.points().front().value, 30.0);
  ASSERT_FALSE(s.completed_curve.empty());
  EXPECT_DOUBLE_EQ(s.completed_curve.points().back().value, 15.0);
}

TEST(Aggregate, TrafficSumsAcrossRuns) {
  const auto cfg = tiny();
  const auto runs = run_scenario_repeated(cfg, 2, 13, true);
  const ScenarioSummary s = summarize(cfg, runs);
  const auto total0 = runs[0].traffic.total().bytes;
  const auto total1 = runs[1].traffic.total().bytes;
  EXPECT_EQ(s.traffic.total().bytes, total0 + total1);
  EXPECT_NEAR(s.traffic_mib_mean_total(),
              static_cast<double>(total0 + total1) / 2.0 / 1048576.0, 1e-9);
}

TEST(Aggregate, RunAndSummarizeConvenience) {
  const ScenarioSummary s = run_and_summarize(tiny(), 2, 17);
  EXPECT_EQ(s.runs, 2u);
  EXPECT_DOUBLE_EQ(s.completed_jobs.mean(), 15.0);
}

}  // namespace
}  // namespace aria::workload
