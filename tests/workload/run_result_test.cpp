// Unit tests of RunResult's derived metrics over a hand-constructed
// tracker (no simulation): the formulas behind every figure.
#include <gtest/gtest.h>

#include "workload/engine.hpp"

namespace aria::workload {
namespace {

using namespace aria::literals;

const TimePoint t0 = TimePoint::origin();

grid::JobSpec job(Rng& rng, std::optional<TimePoint> deadline = {}) {
  grid::JobSpec j;
  j.id = JobId::generate(rng);
  j.ert = 1_h;
  j.deadline = deadline;
  return j;
}

void complete_job(proto::JobTracker& t, const grid::JobSpec& j, NodeId node,
                  TimePoint submitted, Duration wait, Duration exec) {
  t.on_submitted(j, NodeId{0}, submitted);
  t.on_assigned(j, node, submitted, false);
  t.on_started(j.id, node, submitted + wait);
  t.on_completed(j.id, node, submitted + wait + exec, exec);
}

TEST(RunResultMetrics, MeansOverCompletedJobs) {
  Rng rng{1};
  RunResult r;
  r.final_node_count = 4;
  complete_job(r.tracker, job(rng), NodeId{1}, t0, 10_min, 60_min);
  complete_job(r.tracker, job(rng), NodeId{2}, t0 + 1_h, 30_min, 90_min);
  // An incomplete job must not pollute the means.
  const auto pending = job(rng);
  r.tracker.on_submitted(pending, NodeId{0}, t0);

  EXPECT_DOUBLE_EQ(r.mean_waiting_minutes(), 20.0);
  EXPECT_DOUBLE_EQ(r.mean_execution_minutes(), 75.0);
  EXPECT_DOUBLE_EQ(r.mean_completion_minutes(), 95.0);
  EXPECT_EQ(r.completed(), 2u);
}

TEST(RunResultMetrics, EmptyTrackerIsZero) {
  RunResult r;
  EXPECT_DOUBLE_EQ(r.mean_completion_minutes(), 0.0);
  EXPECT_EQ(r.completed(), 0u);
  EXPECT_EQ(r.missed_deadlines(), 0u);
  EXPECT_DOUBLE_EQ(r.mean_met_slack_minutes(), 0.0);
  EXPECT_DOUBLE_EQ(r.mean_missed_time_minutes(), 0.0);
}

TEST(RunResultMetrics, DeadlineAccounting) {
  Rng rng{2};
  RunResult r;
  r.final_node_count = 4;
  // Met with 1h slack: deadline t0+3h, completes at 10m + 110m = t0+2h.
  complete_job(r.tracker, job(rng, t0 + 3_h), NodeId{1}, t0, 10_min, 110_min);
  // Missed by 30m: deadline t0+1h, completes at t0+1h30m.
  complete_job(r.tracker, job(rng, t0 + 1_h), NodeId{2}, t0, 30_min, 1_h);
  // Deadline job never completed: counted as missed too.
  const auto stuck = job(rng, t0 + 2_h);
  r.tracker.on_submitted(stuck, NodeId{0}, t0);

  EXPECT_EQ(r.deadline_jobs(), 3u);
  EXPECT_EQ(r.missed_deadlines(), 2u);
  EXPECT_DOUBLE_EQ(r.mean_met_slack_minutes(), 60.0);
  EXPECT_DOUBLE_EQ(r.mean_missed_time_minutes(), 30.0);
}

TEST(RunResultMetrics, CompletedSeriesBuckets) {
  Rng rng{3};
  RunResult r;
  r.scenario_name = "x";
  complete_job(r.tracker, job(rng), NodeId{1}, t0, 0_s, 30_min);
  complete_job(r.tracker, job(rng), NodeId{1}, t0, 0_s, 90_min);
  const auto curve = r.completed_series(1_h, t0 + 3_h);
  ASSERT_EQ(curve.size(), 4u);  // 0,1,2,3 h
  EXPECT_DOUBLE_EQ(curve.points()[0].value, 0.0);
  EXPECT_DOUBLE_EQ(curve.points()[1].value, 1.0);
  EXPECT_DOUBLE_EQ(curve.points()[2].value, 2.0);
  EXPECT_EQ(curve.label(), "x");
}

TEST(RunResultMetrics, BalanceDistributions) {
  Rng rng{4};
  RunResult r;
  r.final_node_count = 3;
  // Node 1 executes two jobs, node 2 one, node 0 none.
  complete_job(r.tracker, job(rng), NodeId{1}, t0, 0_s, 1_h);
  complete_job(r.tracker, job(rng), NodeId{1}, t0, 0_s, 1_h);
  complete_job(r.tracker, job(rng), NodeId{2}, t0, 0_s, 2_h);
  const auto exec = r.execution_balance();
  EXPECT_DOUBLE_EQ(exec.mean, 1.0);
  EXPECT_DOUBLE_EQ(exec.max, 2.0);
  const auto busy = r.busy_time_balance();
  EXPECT_DOUBLE_EQ(busy.max, 2.0 * 3600.0);
  EXPECT_GT(busy.gini, 0.0);
}

TEST(RunResultMetrics, TrafficHelpers) {
  RunResult r;
  r.traffic.record("REQUEST", 1024 * 1024);
  r.traffic.record("ACCEPT", 512 * 1024);
  EXPECT_DOUBLE_EQ(r.traffic_mib("REQUEST"), 1.0);
  EXPECT_DOUBLE_EQ(r.traffic_mib("ACCEPT"), 0.5);
  EXPECT_DOUBLE_EQ(r.traffic_mib("INFORM"), 0.0);
  EXPECT_DOUBLE_EQ(r.traffic_mib_total(), 1.5);
}

}  // namespace
}  // namespace aria::workload
