#include "workload/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"

namespace aria::workload {
namespace {

using namespace aria::literals;

TEST(Trace, ParsesWellFormedLines) {
  std::istringstream in{
      "0 60 AMD64 LINUX 2 4\n"
      "15.5 90 POWER SOLARIS 8 1 120\n"};
  const TraceParseResult r = parse_trace(in);
  EXPECT_EQ(r.malformed_lines, 0u);
  ASSERT_EQ(r.jobs.size(), 2u);

  EXPECT_EQ(r.jobs[0].submit_offset, 0_s);
  EXPECT_EQ(r.jobs[0].ert, 1_h);
  EXPECT_EQ(r.jobs[0].requirements.arch, grid::Architecture::kAmd64);
  EXPECT_EQ(r.jobs[0].requirements.os, grid::OperatingSystem::kLinux);
  EXPECT_EQ(r.jobs[0].requirements.min_memory_gb, 2);
  EXPECT_EQ(r.jobs[0].requirements.min_disk_gb, 4);
  EXPECT_FALSE(r.jobs[0].deadline_slack.has_value());

  EXPECT_EQ(r.jobs[1].submit_offset, Duration::millis(15500));
  EXPECT_EQ(r.jobs[1].requirements.arch, grid::Architecture::kPower);
  ASSERT_TRUE(r.jobs[1].deadline_slack.has_value());
  EXPECT_EQ(*r.jobs[1].deadline_slack, 2_h);
}

TEST(Trace, SkipsCommentsAndBlanks) {
  std::istringstream in{
      "# full-line comment\n"
      "\n"
      "   \t \n"
      "0 60 AMD64 LINUX 1 1   # trailing comment\n"};
  const TraceParseResult r = parse_trace(in);
  EXPECT_EQ(r.malformed_lines, 0u);
  EXPECT_EQ(r.jobs.size(), 1u);
}

TEST(Trace, CountsMalformedLines) {
  std::istringstream in{
      "garbage\n"
      "0 60 VAX LINUX 1 1\n"        // unknown arch
      "0 60 AMD64 TEMPLEOS 1 1\n"   // unknown os
      "-5 60 AMD64 LINUX 1 1\n"     // negative offset
      "0 -60 AMD64 LINUX 1 1\n"     // non-positive ert
      "0 60 AMD64 LINUX 0 1\n"      // zero memory
      "0 60 AMD64 LINUX 1 1\n"};    // the only valid line
  const TraceParseResult r = parse_trace(in);
  EXPECT_EQ(r.malformed_lines, 6u);
  EXPECT_EQ(r.jobs.size(), 1u);
}

TEST(Trace, RoundTripsThroughWrite) {
  std::vector<TraceJob> jobs;
  for (int i = 0; i < 10; ++i) {
    TraceJob t;
    t.submit_offset = Duration::seconds(i * 30);
    t.ert = Duration::minutes(60 + i * 10);
    t.requirements.arch =
        i % 2 == 0 ? grid::Architecture::kAmd64 : grid::Architecture::kSparc;
    t.requirements.os = grid::OperatingSystem::kBsd;
    t.requirements.min_memory_gb = 1 << (i % 5);
    t.requirements.min_disk_gb = 2;
    if (i % 3 == 0) t.deadline_slack = Duration::minutes(100 + i);
    jobs.push_back(t);
  }
  std::ostringstream out;
  write_trace(out, jobs, "round trip");
  std::istringstream in{out.str()};
  const TraceParseResult r = parse_trace(in);
  EXPECT_EQ(r.malformed_lines, 0u);
  ASSERT_EQ(r.jobs.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(r.jobs[i].submit_offset, jobs[i].submit_offset) << i;
    EXPECT_EQ(r.jobs[i].ert, jobs[i].ert) << i;
    EXPECT_EQ(r.jobs[i].requirements.arch, jobs[i].requirements.arch) << i;
    EXPECT_EQ(r.jobs[i].requirements.min_memory_gb,
              jobs[i].requirements.min_memory_gb)
        << i;
    EXPECT_EQ(r.jobs[i].deadline_slack.has_value(),
              jobs[i].deadline_slack.has_value())
        << i;
    if (jobs[i].deadline_slack) {
      EXPECT_EQ(*r.jobs[i].deadline_slack, *jobs[i].deadline_slack) << i;
    }
  }
}

TEST(Trace, ArchAndOsParsersCoverPaperNames) {
  EXPECT_EQ(parse_architecture("AMD64"), grid::Architecture::kAmd64);
  EXPECT_EQ(parse_architecture("POWER"), grid::Architecture::kPower);
  EXPECT_EQ(parse_architecture("IA-64"), grid::Architecture::kIa64);
  EXPECT_EQ(parse_architecture("SPARC"), grid::Architecture::kSparc);
  EXPECT_EQ(parse_architecture("MIPS"), grid::Architecture::kMips);
  EXPECT_EQ(parse_architecture("NEC"), grid::Architecture::kNec);
  EXPECT_FALSE(parse_architecture("amd64").has_value());

  EXPECT_EQ(parse_operating_system("LINUX"), grid::OperatingSystem::kLinux);
  EXPECT_EQ(parse_operating_system("SOLARIS"),
            grid::OperatingSystem::kSolaris);
  EXPECT_EQ(parse_operating_system("UNIX"), grid::OperatingSystem::kUnix);
  EXPECT_EQ(parse_operating_system("WINDOWS"),
            grid::OperatingSystem::kWindows);
  EXPECT_EQ(parse_operating_system("BSD"), grid::OperatingSystem::kBsd);
  EXPECT_FALSE(parse_operating_system("Linux").has_value());
}

TEST(Trace, ToJobSpecMaterializesDeadline) {
  Rng rng{1};
  TraceJob t;
  t.ert = 1_h;
  t.deadline_slack = 2_h;
  const TimePoint at = TimePoint::origin() + 5_h;
  const grid::JobSpec j = to_job_spec(t, at, rng);
  EXPECT_FALSE(j.id.is_nil());
  ASSERT_TRUE(j.deadline.has_value());
  EXPECT_EQ(*j.deadline, at + 3_h);  // submit + ert + slack

  TraceJob plain;
  plain.ert = 1_h;
  const grid::JobSpec p = to_job_spec(plain, at, rng);
  EXPECT_FALSE(p.deadline.has_value());
  EXPECT_NE(p.id, j.id);
}

}  // namespace
}  // namespace aria::workload
