// TraceCollector unit tests: decorator forwarding (next observer sees every
// callback, before the record lands) and callback → record field mapping.
#include "trace/collector.hpp"

#include <gtest/gtest.h>

#include <cstddef>

#include "common/rng.hpp"
#include "grid/job.hpp"

namespace aria::trace {
namespace {

using namespace aria::literals;

/// Counts every callback so tests can assert nothing is swallowed.
struct CountingObserver final : proto::ProtocolObserver {
  std::size_t calls{0};
  void on_submitted(const grid::JobSpec&, NodeId, TimePoint) override { ++calls; }
  void on_request_retry(const JobId&, std::size_t, TimePoint) override { ++calls; }
  void on_unschedulable(const JobId&, TimePoint) override { ++calls; }
  void on_bid_sent(const JobId&, NodeId, NodeId, double, TimePoint) override { ++calls; }
  void on_bid_received(const JobId&, NodeId, NodeId, double, TimePoint) override { ++calls; }
  void on_delegated(const JobId&, NodeId, NodeId, TimePoint, bool) override { ++calls; }
  void on_assigned(const grid::JobSpec&, NodeId, TimePoint, bool) override { ++calls; }
  void on_started(const JobId&, NodeId, TimePoint) override { ++calls; }
  void on_completed(const JobId&, NodeId, TimePoint, Duration) override { ++calls; }
  void on_recovery(const JobId&, std::size_t, TimePoint) override { ++calls; }
  void on_abandoned(const JobId&, TimePoint) override { ++calls; }
  void on_shed(const grid::JobSpec&, NodeId, TimePoint) override { ++calls; }
  void on_rejected(const JobId&, NodeId, TimePoint) override { ++calls; }
};

struct Fixture {
  Rng rng{42};
  JobId id{JobId::generate(rng)};
  grid::JobSpec job{};
  CountingObserver next;
  TraceCollector collector{TraceConfig{.enabled = true}, &next};
  Fixture() { job.id = id; }
};

TEST(TraceCollector, ForwardsEveryCallbackToNext) {
  Fixture f;
  const TimePoint t = TimePoint::origin() + 1_min;
  f.collector.on_submitted(f.job, NodeId{1}, t);
  f.collector.on_request_retry(f.id, 2, t);
  f.collector.on_unschedulable(f.id, t);
  f.collector.on_bid_sent(f.id, NodeId{2}, NodeId{1}, 10.0, t);
  f.collector.on_bid_received(f.id, NodeId{1}, NodeId{2}, 10.0, t);
  f.collector.on_delegated(f.id, NodeId{1}, NodeId{2}, t, false);
  f.collector.on_assigned(f.job, NodeId{2}, t, false);
  f.collector.on_started(f.id, NodeId{2}, t);
  f.collector.on_completed(f.id, NodeId{2}, t, 30_s);
  f.collector.on_recovery(f.id, 1, t);
  f.collector.on_abandoned(f.id, t);
  f.collector.on_shed(f.job, NodeId{2}, t);
  f.collector.on_rejected(f.id, NodeId{2}, t);
  EXPECT_EQ(f.next.calls, 13u);
  EXPECT_EQ(f.collector.buffer()->job_events().size(), 13u);
}

TEST(TraceCollector, NullNextIsAllowed) {
  Fixture f;
  TraceCollector solo{TraceConfig{.enabled = true}};
  solo.on_submitted(f.job, NodeId{1}, TimePoint::origin());
  EXPECT_EQ(solo.buffer()->job_events().size(), 1u);
}

TEST(TraceCollector, RecordsCarryCallbackFields) {
  Fixture f;
  const TimePoint t = TimePoint::origin() + 5_min;
  f.collector.on_bid_sent(f.id, NodeId{3}, NodeId{7}, 123.5, t);
  f.collector.on_delegated(f.id, NodeId{7}, NodeId{3}, t, /*reschedule=*/true);
  f.collector.on_completed(f.id, NodeId{3}, t, 90_s);

  const auto& ev = f.collector.buffer()->job_events();
  ASSERT_EQ(ev.size(), 3u);

  EXPECT_EQ(ev[0].kind, TraceEventKind::kBidSent);
  EXPECT_EQ(ev[0].job, f.id);
  EXPECT_EQ(ev[0].node, NodeId{3});
  EXPECT_EQ(ev[0].peer, NodeId{7});
  EXPECT_DOUBLE_EQ(ev[0].value, 123.5);
  EXPECT_EQ(ev[0].at, t);

  EXPECT_EQ(ev[1].kind, TraceEventKind::kDelegated);
  EXPECT_EQ(ev[1].node, NodeId{7});
  EXPECT_EQ(ev[1].peer, NodeId{3});
  EXPECT_TRUE(ev[1].reschedule());

  EXPECT_EQ(ev[2].kind, TraceEventKind::kCompleted);
  EXPECT_DOUBLE_EQ(ev[2].value, 90.0);  // ART in seconds
}

TEST(TraceCollector, AttemptNumbersSurviveInA) {
  Fixture f;
  f.collector.on_request_retry(f.id, 3, TimePoint::origin());
  f.collector.on_recovery(f.id, 5, TimePoint::origin());
  const auto& ev = f.collector.buffer()->job_events();
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_EQ(ev[0].a, 3u);
  EXPECT_EQ(ev[1].a, 5u);
}

/// Minimal wire message for tap tests.
struct FakeMsg final : sim::Message {
  std::size_t wire_size() const override { return 77; }
  sim::MessageTypeId type_id() const override {
    static const sim::MessageTypeId id =
        sim::MessageTypeRegistry::intern("FAKE");
    return id;
  }
  std::uint32_t flood_hops_left() const override { return 4; }
};

TEST(TraceCollector, MessageTapRecordsWireFields) {
  Fixture f;
  const TimePoint sent = TimePoint::origin() + 1_s;
  const TimePoint deliver = sent + 40_ms;
  f.collector.on_message(NodeId{1}, NodeId{2}, FakeMsg{}, sent, deliver,
                         /*faulted=*/false);
  f.collector.on_message(NodeId{2}, NodeId{1}, FakeMsg{}, sent, sent,
                         /*faulted=*/true);

  const auto& ev = f.collector.buffer()->message_events();
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_EQ(ev[0].kind, TraceEventKind::kMsg);
  EXPECT_EQ(ev[0].node, NodeId{1});
  EXPECT_EQ(ev[0].peer, NodeId{2});
  EXPECT_EQ(ev[0].at, sent);
  EXPECT_EQ(ev[0].end, deliver);
  EXPECT_DOUBLE_EQ(ev[0].value, 77.0);
  EXPECT_EQ(ev[0].b, 4u);
  EXPECT_FALSE(ev[0].fault_dropped());
  EXPECT_TRUE(ev[1].fault_dropped());
  EXPECT_TRUE(f.collector.buffer()->job_events().empty());
}

}  // namespace
}  // namespace aria::trace
