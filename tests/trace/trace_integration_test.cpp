// Tracing plane end to end: the guarantees docs/tracing.md promises.
// Tracing never perturbs a run (identical metrics, events and traffic with
// the plane on or off), same-seed traces are byte-identical, and lifecycle
// transitions appear in the trace exactly once per triggering event.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "trace/critical_path.hpp"
#include "trace/export.hpp"
#include "workload/engine.hpp"
#include "workload/scenario.hpp"

namespace aria::trace {
namespace {

using namespace aria::literals;

workload::ScenarioConfig small_grid() {
  workload::ScenarioConfig cfg = workload::scenario_by_name("iMixed");
  cfg.node_count = 20;
  cfg.job_count = 40;
  return cfg;
}

workload::ScenarioConfig traced(workload::ScenarioConfig cfg,
                                std::uint64_t sample_every = 4) {
  cfg.trace.enabled = true;
  cfg.trace.message_sample_every = sample_every;
  return cfg;
}

/// Mirror of `aria_sim --storm ... --overload`: bounded queues + admission
/// control against a 6x arrival burst — the run that exercises kShed and
/// kRejected.
workload::ScenarioConfig storm_scenario() {
  workload::ScenarioConfig cfg = small_grid();
  cfg.job_count = 60;
  cfg.aria.overload.enabled = true;
  cfg.aria.overload.capacity_per_perf = 2.0;
  cfg.aria.overload.admission_backlog = 2_h;
  cfg.aria.assign_ack = true;
  cfg.storm = workload::StormParams{Duration::zero(), Duration::minutes(10),
                                    6.0};
  return cfg;
}

/// Mirror of `aria_sim --churn`: crash/restart schedules with the failsafe —
/// the run that exercises kRecovery.
workload::ScenarioConfig churn_scenario() {
  workload::ScenarioConfig cfg = small_grid();
  cfg.faults.enabled = true;
  cfg.faults.seed = 99;
  cfg.faults.churn = sim::FaultConfig::Churn{};
  cfg.aria.failsafe = true;
  cfg.aria.assign_ack = true;
  return cfg;
}

std::size_t kind_count(const TraceBuffer& buf, TraceEventKind kind) {
  const auto& ev = buf.job_events();
  return static_cast<std::size_t>(
      std::count_if(ev.begin(), ev.end(), [kind](const TraceRecord& r) {
        return r.kind == kind;
      }));
}

// ---------------------------------------------------------------------------
// Non-perturbation: tracing on == tracing off, metric for metric
// ---------------------------------------------------------------------------

TEST(TraceIntegration, TracingDoesNotPerturbTheRun) {
  const workload::RunResult off = workload::run_scenario(small_grid(), 23);
  const workload::RunResult on =
      workload::run_scenario(traced(small_grid(), /*sample_every=*/1), 23);

  ASSERT_TRUE(on.trace_enabled);
  ASSERT_FALSE(off.trace_enabled);
  EXPECT_EQ(off.trace, nullptr);
  EXPECT_EQ(on.events_fired, off.events_fired);
  EXPECT_EQ(on.completed(), off.completed());
  EXPECT_EQ(on.traffic.total().messages, off.traffic.total().messages);
  EXPECT_EQ(on.traffic.total().bytes, off.traffic.total().bytes);
  EXPECT_DOUBLE_EQ(on.mean_completion_minutes(), off.mean_completion_minutes());
  EXPECT_EQ(on.tracker.total_reschedules(), off.tracker.total_reschedules());
}

TEST(TraceIntegration, TracingDoesNotPerturbFaultRuns) {
  const workload::RunResult off = workload::run_scenario(churn_scenario(), 5);
  const workload::RunResult on =
      workload::run_scenario(traced(churn_scenario()), 5);
  EXPECT_EQ(on.events_fired, off.events_fired);
  EXPECT_EQ(on.faults.crashes, off.faults.crashes);
  EXPECT_EQ(on.traffic.total().messages, off.traffic.total().messages);
  EXPECT_EQ(on.tracker.total_recoveries(), off.tracker.total_recoveries());
}

// ---------------------------------------------------------------------------
// Determinism: same seed, byte-identical exports
// ---------------------------------------------------------------------------

TEST(TraceIntegration, SameSeedProducesIdenticalJsonl) {
  const workload::RunResult a =
      workload::run_scenario(traced(small_grid()), 31);
  const workload::RunResult b =
      workload::run_scenario(traced(small_grid()), 31);
  ASSERT_NE(a.trace, nullptr);
  ASSERT_NE(b.trace, nullptr);
  std::ostringstream ja, jb, ca, cb;
  export_jsonl(*a.trace, ja);
  export_jsonl(*b.trace, jb);
  EXPECT_GT(ja.str().size(), 0u);
  EXPECT_EQ(ja.str(), jb.str());
  export_chrome(*a.trace, ca);
  export_chrome(*b.trace, cb);
  EXPECT_EQ(ca.str(), cb.str());
}

TEST(TraceIntegration, DifferentSeedsProduceDifferentTraces) {
  const workload::RunResult a =
      workload::run_scenario(traced(small_grid()), 1);
  const workload::RunResult b =
      workload::run_scenario(traced(small_grid()), 2);
  std::ostringstream ja, jb;
  export_jsonl(*a.trace, ja);
  export_jsonl(*b.trace, jb);
  EXPECT_NE(ja.str(), jb.str());
}

// ---------------------------------------------------------------------------
// Exactly-once: one record per triggering protocol event
// ---------------------------------------------------------------------------

TEST(TraceIntegration, LifecycleRecordsMatchTrackerCounts) {
  const workload::RunResult r =
      workload::run_scenario(traced(small_grid()), 13);
  ASSERT_NE(r.trace, nullptr);
  const TraceBuffer& buf = *r.trace;
  ASSERT_EQ(buf.dropped_job_events(), 0u);
  EXPECT_EQ(kind_count(buf, TraceEventKind::kSubmitted), 40u);
  EXPECT_EQ(kind_count(buf, TraceEventKind::kCompleted),
            r.tracker.completed_count());
  // Every completion was preceded by exactly one start in this fault-free
  // run, and every job got at least one bid into an offer set.
  EXPECT_EQ(kind_count(buf, TraceEventKind::kStarted),
            kind_count(buf, TraceEventKind::kCompleted));
  EXPECT_GE(kind_count(buf, TraceEventKind::kBidReceived), 40u);
}

TEST(TraceIntegration, ShedAndRejectRecordsAppearExactlyOncePerEvent) {
  const workload::RunResult r =
      workload::run_scenario(traced(storm_scenario()), 21);
  ASSERT_NE(r.trace, nullptr);
  const TraceBuffer& buf = *r.trace;
  ASSERT_EQ(buf.dropped_job_events(), 0u);
  // The storm must actually trip the plane for this test to mean anything.
  ASSERT_GT(r.tracker.total_sheds() + r.tracker.total_rejects(), 0u);
  EXPECT_EQ(kind_count(buf, TraceEventKind::kShed), r.tracker.total_sheds());
  EXPECT_EQ(kind_count(buf, TraceEventKind::kRejected),
            r.tracker.total_rejects());
}

TEST(TraceIntegration, RecoveryRecordsAppearExactlyOncePerEvent) {
  const workload::RunResult r =
      workload::run_scenario(traced(churn_scenario()), 5);
  ASSERT_NE(r.trace, nullptr);
  const TraceBuffer& buf = *r.trace;
  ASSERT_EQ(buf.dropped_job_events(), 0u);
  ASSERT_GT(r.tracker.total_recoveries(), 0u);
  EXPECT_EQ(kind_count(buf, TraceEventKind::kRecovery),
            r.tracker.total_recoveries());
  EXPECT_EQ(kind_count(buf, TraceEventKind::kAbandoned),
            r.tracker.abandoned_count());
}

// ---------------------------------------------------------------------------
// Downstream views over a real run
// ---------------------------------------------------------------------------

TEST(TraceIntegration, CriticalPathsCoverEveryJob) {
  const workload::RunResult r =
      workload::run_scenario(traced(small_grid()), 23);
  const auto paths = critical_paths(*r.trace);
  EXPECT_EQ(paths.size(), 40u);
  const auto agg = aggregate(paths);
  EXPECT_EQ(agg.completed, r.tracker.completed_count());
  EXPECT_EQ(agg.bids.count(), 40u);
  EXPECT_GT(agg.makespan_s.mean(), 0.0);
}

TEST(TraceIntegration, ChromeExportIsBalancedOnARealRun) {
  const workload::RunResult r =
      workload::run_scenario(traced(churn_scenario()), 5);
  std::ostringstream out;
  export_chrome(*r.trace, out);
  const std::string t = out.str();
  auto count_of = [&](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t pos = t.find(needle); pos != std::string::npos;
         pos = t.find(needle, pos + needle.size())) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count_of("\"ph\":\"B\""), count_of("\"ph\":\"E\""));
  EXPECT_EQ(count_of("\"ph\":\"b\""), count_of("\"ph\":\"e\""));
  // Flow starts may outnumber ends under churn: a bid or ASSIGN the fault
  // plane ate leaves its arrow dangling — which is exactly what happened on
  // the wire. Ends can never outnumber starts.
  EXPECT_GE(count_of("\"ph\":\"s\""), count_of("\"ph\":\"f\""));
  EXPECT_GT(count_of("\"ph\":\"f\""), 0u);
  EXPECT_GT(count_of("\"ph\":\"B\""), 0u);
}

// ---------------------------------------------------------------------------
// Message sampling
// ---------------------------------------------------------------------------

TEST(TraceIntegration, SamplingThinsTheMessageStreamOnly) {
  const workload::RunResult every =
      workload::run_scenario(traced(small_grid(), 1), 23);
  const workload::RunResult sampled =
      workload::run_scenario(traced(small_grid(), 16), 23);
  // Same protocol stream either way...
  EXPECT_EQ(every.trace->job_events().size(),
            sampled.trace->job_events().size());
  // ...but ~16x fewer message records (exact 1-in-16 of the send count).
  EXPECT_GT(every.trace->message_events().size(),
            sampled.trace->message_events().size() * 10);
  const std::uint64_t sends = every.traffic.total().messages;
  EXPECT_EQ(sampled.trace->message_events().size(), (sends + 15) / 16);
}

}  // namespace
}  // namespace aria::trace
