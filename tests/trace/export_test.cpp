// Exporter tests over a synthetic stream: JSONL shape and the Chrome
// trace_event invariants (balanced spans, closed async tracks, flow pairing).
#include "trace/export.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sim/message_types.hpp"

namespace aria::trace {
namespace {

using namespace aria::literals;

std::size_t count_of(const std::string& hay, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in{text};
  for (std::string line; std::getline(in, line);) out.push_back(line);
  return out;
}

struct Script {
  TraceBuffer buf{TraceConfig{.enabled = true}};
  Rng rng{11};
  JobId id{JobId::generate(rng)};

  void add(TraceEventKind kind, Duration at, NodeId node = NodeId{},
           NodeId peer = NodeId{}, double value = 0.0) {
    TraceRecord r;
    r.kind = kind;
    r.job = kind == TraceEventKind::kMsg ? JobId{} : id;
    r.at = TimePoint::origin() + at;
    r.node = node;
    r.peer = peer;
    r.value = value;
    if (kind == TraceEventKind::kMsg) {
      r.end = r.at + 40_ms;
      r.a = static_cast<std::uint32_t>(
          sim::MessageTypeRegistry::intern("REQUEST").index());
      r.b = TraceRecord::kNoHops;
    }
    buf.record(r);
  }

  /// submit → remote bid → delegation → execution, plus one wire message.
  void full_lifecycle() {
    add(TraceEventKind::kSubmitted, 0_s, NodeId{0});
    add(TraceEventKind::kMsg, 0_s, NodeId{0}, NodeId{1}, 1024.0);
    add(TraceEventKind::kBidSent, 1_s, NodeId{1}, NodeId{0}, 9.5);
    add(TraceEventKind::kBidReceived, 2_s, NodeId{0}, NodeId{1}, 9.5);
    add(TraceEventKind::kDelegated, 3_s, NodeId{0}, NodeId{1});
    add(TraceEventKind::kAssigned, 4_s, NodeId{1});
    add(TraceEventKind::kStarted, 5_s, NodeId{1});
    add(TraceEventKind::kCompleted, 65_s, NodeId{1}, NodeId{}, 60.0);
  }
};

TEST(ExportJsonl, OneLinePerRecordInSeqOrder) {
  Script s;
  s.full_lifecycle();
  std::ostringstream out;
  export_jsonl(s.buf, out);
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 8u);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(lines[i].rfind("{\"seq\":" + std::to_string(i) + ",", 0), 0u)
        << lines[i];
    EXPECT_EQ(lines[i].back(), '}');
  }
  // Message records interleave with lifecycle records (global seq merge).
  EXPECT_NE(lines[1].find("\"kind\":\"msg\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"type\":\"REQUEST\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"bytes\":1024"), std::string::npos);
  // Costs ride on bid records.
  EXPECT_NE(lines[2].find("\"cost\":9.5"), std::string::npos);
  EXPECT_NE(lines[7].find("\"art_s\":60"), std::string::npos);
}

TEST(ExportChrome, BalancedSpansAndFlows) {
  Script s;
  s.full_lifecycle();
  std::ostringstream out;
  export_chrome(s.buf, out);
  const std::string t = out.str();

  EXPECT_EQ(t.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);
  // Exactly one matched execution pair.
  EXPECT_EQ(count_of(t, "\"ph\":\"B\""), 1u);
  EXPECT_EQ(count_of(t, "\"ph\":\"E\""), 1u);
  // One async job span, opened and closed.
  EXPECT_EQ(count_of(t, "\"ph\":\"b\""), 1u);
  EXPECT_EQ(count_of(t, "\"ph\":\"e\""), 1u);
  // One bid flow + one delegation flow, each with both ends.
  EXPECT_EQ(count_of(t, "\"ph\":\"s\""), 2u);
  EXPECT_EQ(count_of(t, "\"ph\":\"f\""), 2u);
  EXPECT_EQ(count_of(t, "\"cat\":\"bid\""), 2u);
  EXPECT_EQ(count_of(t, "\"cat\":\"delegation\""), 2u);
  // Thread metadata for both nodes.
  EXPECT_NE(t.find("\"name\":\"n0\""), std::string::npos);
  EXPECT_NE(t.find("\"name\":\"n1\""), std::string::npos);
  // Message records are not rendered.
  EXPECT_EQ(t.find("REQUEST"), std::string::npos);
}

TEST(ExportChrome, InterruptedExecutionEmitsNoOrphanSpan) {
  Script s;
  s.add(TraceEventKind::kSubmitted, 0_s, NodeId{0});
  s.add(TraceEventKind::kStarted, 1_s, NodeId{1});
  // Node crashes; the job is recovered and completes elsewhere.
  s.add(TraceEventKind::kRecovery, 10_s);
  s.add(TraceEventKind::kStarted, 20_s, NodeId{2});
  s.add(TraceEventKind::kCompleted, 30_s, NodeId{2}, NodeId{}, 10.0);
  std::ostringstream out;
  export_chrome(s.buf, out);
  const std::string t = out.str();
  // Only the matched pair on node 2 renders; node 1's interrupted start
  // would otherwise leave an unbalanced B.
  EXPECT_EQ(count_of(t, "\"ph\":\"B\""), 1u);
  EXPECT_EQ(count_of(t, "\"ph\":\"E\""), 1u);
  EXPECT_NE(t.find("\"tid\":2,\"ts\":20000000"), std::string::npos);
}

TEST(ExportChrome, OpenJobsAreClosedAtHorizon) {
  Script s;
  s.add(TraceEventKind::kSubmitted, 0_s, NodeId{0});
  s.add(TraceEventKind::kAssigned, 30_s, NodeId{1});  // never finishes
  std::ostringstream out;
  export_chrome(s.buf, out);
  const std::string t = out.str();
  EXPECT_EQ(count_of(t, "\"ph\":\"b\""), 1u);
  EXPECT_EQ(count_of(t, "\"ph\":\"e\""), 1u);
  EXPECT_NE(t.find("open_at_horizon"), std::string::npos);
}

TEST(ExportChrome, SelfBidDrawsNoFlowArrow) {
  Script s;
  s.add(TraceEventKind::kSubmitted, 0_s, NodeId{0});
  // The initiator's own quote: received without a matching bid_sent.
  s.add(TraceEventKind::kBidReceived, 1_s, NodeId{0}, NodeId{0}, 3.0);
  s.add(TraceEventKind::kCompleted, 10_s, NodeId{0}, NodeId{}, 9.0);
  std::ostringstream out;
  export_chrome(s.buf, out);
  const std::string t = out.str();
  EXPECT_EQ(count_of(t, "\"ph\":\"s\""), 0u);
  EXPECT_EQ(count_of(t, "\"ph\":\"f\""), 0u);
}

}  // namespace
}  // namespace aria::trace
