// critical_paths(): reducing a synthetic record stream to per-job latency
// summaries, including delegation pairing and reschedule-aware queue wait.
#include "trace/critical_path.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace aria::trace {
namespace {

using namespace aria::literals;

struct Builder {
  TraceBuffer buf{TraceConfig{.enabled = true}};
  void add(TraceEventKind kind, const JobId& job, Duration at,
           NodeId node = NodeId{}, NodeId peer = NodeId{},
           std::uint8_t flags = 0) {
    TraceRecord r;
    r.kind = kind;
    r.job = job;
    r.at = TimePoint::origin() + at;
    r.node = node;
    r.peer = peer;
    r.flags = flags;
    buf.record(r);
  }
};

TEST(CriticalPath, SingleDelegatedJob) {
  Rng rng{7};
  const JobId id = JobId::generate(rng);
  Builder b;
  b.add(TraceEventKind::kSubmitted, id, 0_s, NodeId{0});
  b.add(TraceEventKind::kBidReceived, id, 2_s, NodeId{0}, NodeId{0});
  b.add(TraceEventKind::kBidReceived, id, 3_s, NodeId{0}, NodeId{1});
  b.add(TraceEventKind::kDelegated, id, 4_s, NodeId{0}, NodeId{1});
  b.add(TraceEventKind::kAssigned, id, 5_s, NodeId{1});
  b.add(TraceEventKind::kStarted, id, 65_s, NodeId{1});
  b.add(TraceEventKind::kCompleted, id, 365_s, NodeId{1});

  const auto paths = critical_paths(b.buf);
  ASSERT_EQ(paths.size(), 1u);
  const auto& p = paths[0];
  EXPECT_EQ(p.job, id);
  EXPECT_EQ(p.initiator, NodeId{0});
  EXPECT_EQ(p.time_to_first_bid, 2_s);
  EXPECT_EQ(p.bids, 2u);
  EXPECT_EQ(p.delegations, 1u);
  EXPECT_EQ(p.delegation_latency(), 1_s);
  EXPECT_EQ(p.queue_wait, 60_s);
  EXPECT_EQ(p.execution, 300_s);
  EXPECT_EQ(p.reschedules, 0u);
  EXPECT_TRUE(p.completed);
  EXPECT_TRUE(p.terminal());
  EXPECT_EQ(p.finished - p.submitted, 365_s);
}

TEST(CriticalPath, LocalPlacementHasNoDelegationLatency) {
  Rng rng{8};
  const JobId id = JobId::generate(rng);
  Builder b;
  b.add(TraceEventKind::kSubmitted, id, 0_s, NodeId{0});
  b.add(TraceEventKind::kBidReceived, id, 1_s, NodeId{0}, NodeId{0});
  // Self-placement: delegator == target, delivered with zero wire hops.
  b.add(TraceEventKind::kDelegated, id, 2_s, NodeId{0}, NodeId{0});
  b.add(TraceEventKind::kAssigned, id, 2_s, NodeId{0});
  b.add(TraceEventKind::kStarted, id, 2_s, NodeId{0});
  b.add(TraceEventKind::kCompleted, id, 10_s, NodeId{0});

  const auto paths = critical_paths(b.buf);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].delegations, 0u);
  EXPECT_EQ(paths[0].delegation_latency(), Duration::zero());
  EXPECT_EQ(paths[0].queue_wait, Duration::zero());
}

TEST(CriticalPath, RescheduleRestartsQueueWait) {
  Rng rng{9};
  const JobId id = JobId::generate(rng);
  Builder b;
  b.add(TraceEventKind::kSubmitted, id, 0_s, NodeId{0});
  b.add(TraceEventKind::kAssigned, id, 10_s, NodeId{1});
  // 50s later the job moves to a better node and starts there quickly.
  b.add(TraceEventKind::kDelegated, id, 60_s, NodeId{1}, NodeId{2});
  b.add(TraceEventKind::kAssigned, id, 61_s, NodeId{2}, NodeId{},
        TraceRecord::kReschedule);
  b.add(TraceEventKind::kStarted, id, 66_s, NodeId{2});
  b.add(TraceEventKind::kCompleted, id, 100_s, NodeId{2});

  const auto paths = critical_paths(b.buf);
  ASSERT_EQ(paths.size(), 1u);
  const auto& p = paths[0];
  EXPECT_EQ(p.reschedules, 1u);
  // Queue wait counts only the residence ended by execution, not the wait
  // the reschedule cut short.
  EXPECT_EQ(p.queue_wait, 5_s);
  EXPECT_EQ(p.delegations, 1u);
  EXPECT_EQ(p.delegation_latency(), 1_s);
}

TEST(CriticalPath, CountsRetriesShedsRejectsAndTerminalKinds) {
  Rng rng{10};
  const JobId unsched = JobId::generate(rng);
  const JobId abandoned = JobId::generate(rng);
  const JobId open = JobId::generate(rng);
  Builder b;
  b.add(TraceEventKind::kSubmitted, unsched, 0_s, NodeId{0});
  b.add(TraceEventKind::kRetry, unsched, 10_s);
  b.add(TraceEventKind::kRetry, unsched, 30_s);
  b.add(TraceEventKind::kUnschedulable, unsched, 60_s);

  b.add(TraceEventKind::kSubmitted, abandoned, 5_s, NodeId{1});
  b.add(TraceEventKind::kShed, abandoned, 20_s, NodeId{2});
  b.add(TraceEventKind::kRejected, abandoned, 25_s, NodeId{3});
  b.add(TraceEventKind::kRecovery, abandoned, 40_s);
  b.add(TraceEventKind::kAbandoned, abandoned, 90_s);

  b.add(TraceEventKind::kSubmitted, open, 8_s, NodeId{4});

  const auto paths = critical_paths(b.buf);
  ASSERT_EQ(paths.size(), 3u);
  // First-submission order.
  EXPECT_EQ(paths[0].job, unsched);
  EXPECT_EQ(paths[1].job, abandoned);
  EXPECT_EQ(paths[2].job, open);

  EXPECT_EQ(paths[0].retries, 2u);
  EXPECT_TRUE(paths[0].unschedulable);
  EXPECT_EQ(paths[1].sheds, 1u);
  EXPECT_EQ(paths[1].rejects, 1u);
  EXPECT_EQ(paths[1].recoveries, 1u);
  EXPECT_TRUE(paths[1].abandoned);
  EXPECT_FALSE(paths[2].terminal());

  const auto agg = aggregate(paths);
  EXPECT_EQ(agg.jobs, 3u);
  EXPECT_EQ(agg.completed, 0u);
  EXPECT_EQ(agg.unschedulable, 1u);
  EXPECT_EQ(agg.abandoned, 1u);
  EXPECT_EQ(agg.open, 1u);
  EXPECT_EQ(agg.makespan_s.count(), 2u);  // only terminal jobs
  EXPECT_EQ(agg.queue_wait_s.count(), 0u);  // nothing started
}

}  // namespace
}  // namespace aria::trace
