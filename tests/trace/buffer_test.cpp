// TraceBuffer unit tests: sequence assignment, two-ring routing, drop-newest
// overflow, and the seq-merge that reconstructs exact collection order.
#include "trace/sink.hpp"

#include <gtest/gtest.h>

namespace aria::trace {
namespace {

TraceRecord job_record(TraceEventKind kind = TraceEventKind::kSubmitted) {
  TraceRecord r;
  r.kind = kind;
  return r;
}

TraceRecord msg_record() {
  TraceRecord r;
  r.kind = TraceEventKind::kMsg;
  return r;
}

TEST(TraceBuffer, AssignsGlobalSequenceAcrossBothStreams) {
  TraceBuffer buf{TraceConfig{.enabled = true}};
  buf.record(job_record());
  buf.record(msg_record());
  buf.record(job_record(TraceEventKind::kCompleted));
  ASSERT_EQ(buf.job_events().size(), 2u);
  ASSERT_EQ(buf.message_events().size(), 1u);
  EXPECT_EQ(buf.job_events()[0].seq, 0u);
  EXPECT_EQ(buf.message_events()[0].seq, 1u);
  EXPECT_EQ(buf.job_events()[1].seq, 2u);
  EXPECT_EQ(buf.total_recorded(), 3u);
}

TEST(TraceBuffer, MergedReconstructsCollectionOrder) {
  TraceBuffer buf{TraceConfig{.enabled = true}};
  buf.record(msg_record());
  buf.record(job_record());
  buf.record(msg_record());
  buf.record(job_record());
  const auto merged = buf.merged();
  ASSERT_EQ(merged.size(), 4u);
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].seq, i);
  }
  EXPECT_EQ(merged[0].kind, TraceEventKind::kMsg);
  EXPECT_EQ(merged[1].kind, TraceEventKind::kSubmitted);
}

TEST(TraceBuffer, DropsNewestAtCapacityAndCounts) {
  TraceConfig cfg;
  cfg.enabled = true;
  cfg.job_ring_capacity = 2;
  cfg.message_ring_capacity = 1;
  TraceBuffer buf{cfg};
  for (int i = 0; i < 5; ++i) buf.record(job_record());
  for (int i = 0; i < 3; ++i) buf.record(msg_record());
  EXPECT_EQ(buf.job_events().size(), 2u);
  EXPECT_EQ(buf.message_events().size(), 1u);
  EXPECT_EQ(buf.dropped_job_events(), 3u);
  EXPECT_EQ(buf.dropped_message_events(), 2u);
  // The *first* records survive (drop-newest keeps early history coherent).
  EXPECT_EQ(buf.job_events()[0].seq, 0u);
  EXPECT_EQ(buf.job_events()[1].seq, 1u);
  // Dropped records still consume sequence numbers (they were collected).
  EXPECT_EQ(buf.total_recorded(), 8u);
}

TEST(TraceBuffer, MessageFloodCannotEvictJobEvents) {
  TraceConfig cfg;
  cfg.enabled = true;
  cfg.job_ring_capacity = 4;
  cfg.message_ring_capacity = 2;
  TraceBuffer buf{cfg};
  for (int i = 0; i < 1000; ++i) buf.record(msg_record());
  buf.record(job_record());
  EXPECT_EQ(buf.job_events().size(), 1u);
  EXPECT_EQ(buf.dropped_job_events(), 0u);
  EXPECT_EQ(buf.message_events().size(), 2u);
}

TEST(TraceRecord, FlagAccessors) {
  TraceRecord r;
  EXPECT_FALSE(r.reschedule());
  EXPECT_FALSE(r.fault_dropped());
  r.flags |= TraceRecord::kReschedule;
  EXPECT_TRUE(r.reschedule());
  r.flags |= TraceRecord::kFaultDropped;
  EXPECT_TRUE(r.fault_dropped());
}

TEST(TraceRecord, KindNamesAreStableAndDistinct) {
  for (std::size_t i = 0; i < kTraceEventKinds; ++i) {
    const auto kind = static_cast<TraceEventKind>(i);
    ASSERT_NE(std::string{kind_name(kind)}, "unknown");
    for (std::size_t j = i + 1; j < kTraceEventKinds; ++j) {
      EXPECT_NE(std::string{kind_name(kind)},
                std::string{kind_name(static_cast<TraceEventKind>(j))});
    }
  }
}

}  // namespace
}  // namespace aria::trace
