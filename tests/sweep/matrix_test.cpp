#include "sweep/matrix.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace aria::sweep {
namespace {

workload::CliOptions options(const std::string& scenario, std::size_t runs = 1,
                             std::uint64_t seed = 1) {
  workload::CliOptions o;
  o.scenario = scenario;
  o.runs = runs;
  o.seed = seed;
  return o;
}

TEST(SweepMatrix, ExpandIsRowMajorWithAscendingSeeds) {
  SweepMatrix m;
  m.add({"a", options("FCFS", 3, 10)});
  m.add({"b", options("iMixed", 2, 7)});
  EXPECT_EQ(m.run_count(), 5u);

  const auto specs = m.expand();
  ASSERT_EQ(specs.size(), 5u);
  const char* labels[] = {"a", "a", "a", "b", "b"};
  const std::uint64_t seeds[] = {10, 11, 12, 7, 8};
  const std::size_t entries[] = {0, 0, 0, 1, 1};
  const std::size_t reps[] = {0, 1, 2, 0, 1};
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(specs[i].label, labels[i]) << i;
    EXPECT_EQ(specs[i].seed, seeds[i]) << i;
    EXPECT_EQ(specs[i].entry_index, entries[i]) << i;
    EXPECT_EQ(specs[i].rep_index, reps[i]) << i;
  }
  EXPECT_EQ(specs[0].config.name, "FCFS");
  EXPECT_EQ(specs[3].config.name, "iMixed");
}

TEST(SweepMatrix, EmptyMatrixThrowsWithClearMessage) {
  SweepMatrix m;
  EXPECT_TRUE(m.empty());
  try {
    m.expand();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("empty sweep matrix"),
              std::string::npos);
  }
}

TEST(SweepMatrix, SingleSeedSingleRow) {
  SweepMatrix m;
  m.add({"", options("FCFS", 1, 42)});
  const auto specs = m.expand();
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].label, "FCFS");  // label defaults to the scenario
  EXPECT_EQ(specs[0].seed, 42u);
  EXPECT_EQ(specs[0].rep_index, 0u);
}

TEST(SweepMatrix, DuplicateLabelsRejected) {
  SweepMatrix m;
  m.add({"", options("FCFS")});
  try {
    m.add({"", options("FCFS", 5, 9)});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("duplicate matrix label 'FCFS'"), std::string::npos);
    EXPECT_NE(what.find("--label"), std::string::npos);  // names the fix
  }
}

TEST(SweepMatrix, SameScenarioTwiceWithDistinctLabelsOk) {
  SweepMatrix m;
  m.add({"fcfs-a", options("FCFS", 1, 1)});
  m.add({"fcfs-b", options("FCFS", 1, 100)});
  const auto specs = m.expand();
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].config.name, specs[1].config.name);
  EXPECT_NE(specs[0].seed, specs[1].seed);
}

TEST(SweepMatrix, UnknownScenarioNamesTheRow) {
  SweepMatrix m;
  m.add({"bad-row", options("NoSuchScenario")});
  try {
    m.expand();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bad-row"), std::string::npos);
    EXPECT_NE(what.find("NoSuchScenario"), std::string::npos);
  }
}

TEST(SweepMatrix, RejectsProcessOnlyOptions) {
  SweepMatrix m;
  workload::CliOptions o = options("FCFS");
  o.quiet = true;
  EXPECT_THROW(m.add({"q", o}), std::invalid_argument);
  o = options("FCFS");
  o.csv_dir = "out";
  EXPECT_THROW(m.add({"c", o}), std::invalid_argument);
  o = options("FCFS");
  o.trace_path = "t.json";
  EXPECT_THROW(m.add({"t", o}), std::invalid_argument);
}

TEST(SweepMatrix, ParsesRowsCommentsAndLabels) {
  std::istringstream in{
      "# full-scale rows\n"
      "--scenario FCFS --runs 2 --seed 5\n"
      "\n"
      "--label tiny --scenario FCFS --nodes 40 --jobs 60  # downsized\n"};
  const SweepMatrix m = SweepMatrix::parse(in, "test.matrix");
  ASSERT_EQ(m.entries().size(), 2u);
  EXPECT_EQ(m.entries()[0].label, "FCFS");
  EXPECT_EQ(m.entries()[0].options.runs, 2u);
  EXPECT_EQ(m.entries()[0].options.seed, 5u);
  EXPECT_EQ(m.entries()[1].label, "tiny");
  EXPECT_EQ(m.entries()[1].options.nodes, 40u);
  EXPECT_EQ(m.entries()[1].options.jobs, 60u);
}

TEST(SweepMatrix, ParseErrorsCarrySourceAndLine) {
  std::istringstream bad_flag{"--scenario FCFS\n--bogus 1\n"};
  try {
    SweepMatrix::parse(bad_flag, "m.txt");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("m.txt:2:"), std::string::npos);
  }

  std::istringstream dup{"--scenario FCFS\n--scenario FCFS\n"};
  try {
    SweepMatrix::parse(dup, "m.txt");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("m.txt:2:"), std::string::npos);
    EXPECT_NE(what.find("duplicate matrix label"), std::string::npos);
  }

  std::istringstream trailing_label{"--scenario FCFS --label\n"};
  EXPECT_THROW(SweepMatrix::parse(trailing_label, "m.txt"),
               std::invalid_argument);
}

TEST(SweepMatrix, ParseFileMissingPathThrows) {
  EXPECT_THROW(SweepMatrix::parse_file("/nonexistent/matrix.txt"),
               std::invalid_argument);
}

TEST(SweepMatrix, PresetsExist) {
  for (const auto& name : SweepMatrix::preset_names()) {
    const SweepMatrix m = SweepMatrix::preset(name, 2, 1);
    EXPECT_FALSE(m.empty()) << name;
    EXPECT_EQ(m.run_count(), m.entries().size() * 2) << name;
  }
  EXPECT_THROW(SweepMatrix::preset("nope", 1, 1), std::invalid_argument);
}

TEST(SweepMatrix, Table2PresetCoversAllScenarios) {
  const SweepMatrix m = SweepMatrix::preset("table2", 10, 1);
  EXPECT_EQ(m.entries().size(), workload::all_scenarios().size());
  EXPECT_EQ(m.run_count(), workload::all_scenarios().size() * 10);
}

TEST(SweepMatrix, SmokePresetAppliesTheBenchDownsizing) {
  const SweepMatrix m = SweepMatrix::preset("table2-smoke", 1, 3);
  const auto specs = m.expand();
  ASSERT_EQ(specs.size(), workload::all_scenarios().size());
  for (const auto& spec : specs) {
    EXPECT_EQ(spec.config.node_count, 100u);
    EXPECT_EQ(spec.config.job_count, 150u);
    EXPECT_EQ(spec.config.horizon, Duration::hours(30));
    EXPECT_EQ(spec.seed, 3u);
    const auto& full = workload::scenario_by_name(spec.config.name);
    EXPECT_EQ(spec.config.submission_interval, full.submission_interval / 2);
    if (full.expansion) {
      ASSERT_TRUE(spec.config.expansion.has_value());
      EXPECT_EQ(spec.config.expansion->target_node_count, 140u);
      EXPECT_EQ(spec.config.expansion->mean_interval, Duration::seconds(30));
    }
  }
}

TEST(SweepMatrix, ZeroSeedsClampToOne) {
  const SweepMatrix m = SweepMatrix::preset("quick", 0, 1);
  EXPECT_EQ(m.run_count(), m.entries().size());
}

}  // namespace
}  // namespace aria::sweep
