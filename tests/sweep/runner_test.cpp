#include "sweep/runner.hpp"

#include <gtest/gtest.h>

#include <mutex>
#include <set>
#include <sstream>
#include <thread>

#include "sweep/report.hpp"
#include "workload/scenario.hpp"

namespace aria::sweep {
namespace {

using namespace aria::literals;

/// A tiny two-row matrix (one static, one rescheduling scenario) that still
/// finishes in well under a second per run.
SweepMatrix tiny_matrix(std::size_t seeds = 2) {
  SweepMatrix m;
  for (const char* scenario : {"FCFS", "iMixed"}) {
    workload::CliOptions o;
    o.scenario = scenario;
    o.runs = seeds;
    o.seed = 1;
    o.nodes = 40;
    o.jobs = 25;
    o.interval_s = 20.0;
    o.horizon_min = 24.0 * 60.0;
    m.add({"", o});
  }
  return m;
}

std::string report_bytes(const std::vector<RunSpec>& specs,
                         const std::vector<workload::RunResult>& results) {
  const auto report = SweepReport::build(specs, results);
  std::ostringstream json, summary, runs;
  report.write_json(json);
  report.write_summary_csv(summary);
  report.write_runs_csv(runs);
  return json.str() + summary.str() + runs.str();
}

TEST(SweepRunner, ResultsKeyedByMatrixOrder) {
  const auto specs = tiny_matrix().expand();
  RunnerOptions options;
  options.workers = 4;
  const auto results = run_all(specs, options);
  ASSERT_EQ(results.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(results[i].scenario_name, specs[i].config.name) << i;
    EXPECT_EQ(results[i].seed, specs[i].seed) << i;
  }
}

// The acceptance pin: the merged report bytes are identical for 1 worker
// and many workers, and the 1-worker per-run results equal plain serial
// run_scenario calls (the pre-sweep goldens).
TEST(SweepRunner, MergedReportsByteIdenticalAcrossWorkerCounts) {
  const auto specs = tiny_matrix().expand();

  RunnerOptions serial;
  serial.workers = 1;
  const auto serial_results = run_all(specs, serial);

  RunnerOptions fanout;
  fanout.workers = 8;
  const auto fanout_results = run_all(specs, fanout);

  EXPECT_EQ(report_bytes(specs, serial_results),
            report_bytes(specs, fanout_results));
}

TEST(SweepRunner, OneWorkerMatchesSerialRunScenario) {
  const auto specs = tiny_matrix(1).expand();
  RunnerOptions options;
  options.workers = 1;
  const auto results = run_all(specs, options);
  ASSERT_EQ(results.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto golden = workload::run_scenario(specs[i].config, specs[i].seed);
    EXPECT_EQ(results[i].completed(), golden.completed());
    EXPECT_EQ(results[i].events_fired, golden.events_fired);
    EXPECT_EQ(results[i].traffic.total().messages,
              golden.traffic.total().messages);
    EXPECT_EQ(results[i].traffic.total().bytes, golden.traffic.total().bytes);
    EXPECT_DOUBLE_EQ(results[i].mean_completion_minutes(),
                     golden.mean_completion_minutes());
    EXPECT_EQ(results[i].tracker.total_reschedules(),
              golden.tracker.total_reschedules());
  }
}

TEST(SweepRunner, ProgressReportsEveryRunOnce) {
  const auto specs = tiny_matrix().expand();
  std::mutex mu;
  std::set<std::pair<std::string, std::uint64_t>> seen;
  std::size_t last_done = 0;
  RunnerOptions options;
  options.workers = 4;
  options.progress = [&](std::size_t done, std::size_t total,
                         const RunSpec& spec) {
    // The runner already serializes progress calls; the extra lock keeps
    // the test's own bookkeeping race-free under TSan.
    const std::lock_guard<std::mutex> lock{mu};
    EXPECT_EQ(total, specs.size());
    EXPECT_EQ(done, last_done + 1);
    last_done = done;
    EXPECT_TRUE(seen.emplace(spec.label, spec.seed).second);
  };
  run_all(specs, options);
  EXPECT_EQ(last_done, specs.size());
  EXPECT_EQ(seen.size(), specs.size());
}

TEST(SweepRunner, EmptySpecListIsEmptyResult) {
  EXPECT_TRUE(run_all({}, RunnerOptions{}).empty());
}

// Two full GridSimulations on two OS threads — the thread-safety contract
// the sweep engine rests on (mutex-guarded message-type interning, atomic
// log level, per-sim RNG streams). Runs under TSan in CI.
TEST(ConcurrentSims, TwoSimsOnTwoThreadsMatchSerialRuns) {
  auto config = [](const char* name) {
    workload::ScenarioConfig c = workload::scenario_by_name(name);
    c.node_count = 40;
    c.job_count = 25;
    c.submission_interval = 20_s;
    c.horizon = 24_h;
    return c;
  };
  const auto fcfs = config("FCFS");
  const auto mixed = config("iMixed");

  workload::RunResult a, b;
  {
    std::thread ta{[&] { a = workload::run_scenario(fcfs, 7); }};
    std::thread tb{[&] { b = workload::run_scenario(mixed, 9); }};
    ta.join();
    tb.join();
  }

  const auto a_serial = workload::run_scenario(fcfs, 7);
  const auto b_serial = workload::run_scenario(mixed, 9);
  EXPECT_EQ(a.completed(), a_serial.completed());
  EXPECT_EQ(a.events_fired, a_serial.events_fired);
  EXPECT_EQ(a.traffic.total().bytes, a_serial.traffic.total().bytes);
  EXPECT_EQ(b.completed(), b_serial.completed());
  EXPECT_EQ(b.events_fired, b_serial.events_fired);
  EXPECT_EQ(b.traffic.total().bytes, b_serial.traffic.total().bytes);
  EXPECT_TRUE(a.tracker.violations().empty());
  EXPECT_TRUE(b.tracker.violations().empty());
}

}  // namespace
}  // namespace aria::sweep
