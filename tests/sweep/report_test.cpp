#include "sweep/report.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "sweep/runner.hpp"

namespace aria::sweep {
namespace {

struct TinySweep {
  std::vector<RunSpec> specs;
  std::vector<workload::RunResult> results;
};

/// One small two-row sweep (FCFS x 2 seeds, iMixed x 1 seed), executed once
/// and shared by every test in this file.
const TinySweep& tiny_sweep() {
  static const TinySweep data = [] {
    workload::CliOptions fcfs;
    fcfs.scenario = "FCFS";
    fcfs.runs = 2;
    fcfs.seed = 5;
    fcfs.nodes = 40;
    fcfs.jobs = 25;
    fcfs.interval_s = 20.0;
    fcfs.horizon_min = 24.0 * 60.0;
    workload::CliOptions mixed = fcfs;
    mixed.scenario = "iMixed";
    mixed.runs = 1;
    mixed.seed = 11;

    SweepMatrix m;
    m.add({"", fcfs});
    m.add({"", mixed});

    TinySweep t;
    t.specs = m.expand();
    RunnerOptions options;
    options.workers = 1;
    t.results = run_all(t.specs, options);
    return t;
  }();
  return data;
}

std::size_t line_count(const std::string& s) {
  return static_cast<std::size_t>(std::count(s.begin(), s.end(), '\n'));
}

TEST(SweepReport, BuildGroupsRunsIntoMatrixRows) {
  const auto& [specs, results] = tiny_sweep();
  const SweepReport report = SweepReport::build(specs, results);

  ASSERT_EQ(report.rows.size(), 2u);
  EXPECT_EQ(report.rows[0].label, "FCFS");
  EXPECT_EQ(report.rows[0].runs, 2u);
  EXPECT_EQ(report.rows[0].base_seed, 5u);
  EXPECT_EQ(report.rows[0].nodes, 40u);
  EXPECT_EQ(report.rows[0].jobs, 25u);
  EXPECT_EQ(report.rows[1].label, "iMixed");
  EXPECT_EQ(report.rows[1].runs, 1u);
  EXPECT_EQ(report.rows[1].base_seed, 11u);

  ASSERT_EQ(report.runs.size(), 3u);
  EXPECT_EQ(report.total_runs, 3u);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(report.runs[i].label, specs[i].label) << i;
    EXPECT_EQ(report.runs[i].seed, specs[i].seed) << i;
    EXPECT_EQ(report.runs[i].completed, results[i].completed()) << i;
    EXPECT_EQ(report.runs[i].traffic_bytes, results[i].traffic.total().bytes)
        << i;
  }
}

TEST(SweepReport, RowStatsMatchWelfordOverTheRowsRuns) {
  const auto& [specs, results] = tiny_sweep();
  const SweepReport report = SweepReport::build(specs, results);

  // Recompute the FCFS row's aggregates by hand, adding in the same matrix
  // order build() uses, so the floating-point results are bit-identical.
  RunningStats completed, completion, traffic_mib;
  std::uint64_t bytes = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].label != "FCFS") continue;
    completed.add(static_cast<double>(results[i].completed()));
    completion.add(results[i].mean_completion_minutes());
    traffic_mib.add(static_cast<double>(results[i].traffic.total().bytes) /
                    (1024.0 * 1024.0));
    bytes += results[i].traffic.total().bytes;
  }
  const RowSummary& row = report.rows[0];
  EXPECT_EQ(row.completed.mean(), completed.mean());
  EXPECT_EQ(row.completed.stddev(), completed.stddev());
  EXPECT_EQ(row.completed.min(), completed.min());
  EXPECT_EQ(row.completed.max(), completed.max());
  EXPECT_EQ(row.completion_minutes.mean(), completion.mean());
  EXPECT_EQ(row.completion_minutes.stddev(), completion.stddev());
  EXPECT_EQ(row.traffic_mib.mean(), traffic_mib.mean());
  EXPECT_EQ(row.traffic.total().bytes, bytes);
}

TEST(SweepReport, TotalsSumEveryRun) {
  const auto& [specs, results] = tiny_sweep();
  const SweepReport report = SweepReport::build(specs, results);

  std::uint64_t messages = 0, bytes = 0, stranded = 0, violations = 0;
  for (const auto& r : results) {
    messages += r.traffic.total().messages;
    bytes += r.traffic.total().bytes;
    stranded += r.stranded();
    violations += r.tracker.violations().size();
  }
  EXPECT_EQ(report.traffic.total().messages, messages);
  EXPECT_EQ(report.traffic.total().bytes, bytes);
  EXPECT_EQ(report.total_stranded, stranded);
  EXPECT_EQ(report.total_violations, violations);
}

TEST(SweepReport, WritersAreByteStableAcrossCalls) {
  const auto& [specs, results] = tiny_sweep();
  const SweepReport report = SweepReport::build(specs, results);
  const SweepReport again = SweepReport::build(specs, results);

  const auto render = [](const SweepReport& r) {
    std::ostringstream json, summary, runs;
    r.write_json(json);
    r.write_summary_csv(summary);
    r.write_runs_csv(runs);
    return json.str() + '\0' + summary.str() + '\0' + runs.str();
  };
  const std::string first = render(report);
  EXPECT_EQ(first, render(report));  // same object, repeated render
  EXPECT_EQ(first, render(again));   // rebuilt from the same inputs
}

TEST(SweepReport, JsonCarriesSchemaAndSortedTrafficTypes) {
  const auto& [specs, results] = tiny_sweep();
  const SweepReport report = SweepReport::build(specs, results);
  std::ostringstream out;
  report.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"schema\":\"aria-sweep-report-v1\""),
            std::string::npos);
  EXPECT_EQ(json.back(), '\n');

  // by_type() snapshots are name-sorted, so the merged ledger's key order
  // cannot depend on which run interned a message type first.
  const auto types = report.traffic.by_type();
  EXPECT_FALSE(types.empty());
  EXPECT_TRUE(std::is_sorted(
      types.begin(), types.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));
}

TEST(SweepReport, CsvShapes) {
  const auto& [specs, results] = tiny_sweep();
  const SweepReport report = SweepReport::build(specs, results);

  std::ostringstream summary, runs;
  report.write_summary_csv(summary);
  report.write_runs_csv(runs);
  EXPECT_EQ(line_count(summary.str()), report.rows.size() + 1);
  EXPECT_EQ(line_count(runs.str()), report.total_runs + 1);
  EXPECT_EQ(summary.str().rfind("label,scenario,runs,", 0), 0u);
  EXPECT_EQ(runs.str().rfind("label,scenario,seed,", 0), 0u);
}

TEST(SweepReport, SpecResultCountMismatchThrows) {
  const auto& [specs, results] = tiny_sweep();
  try {
    SweepReport::build(specs, {});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("count mismatch"), std::string::npos);
  }
  (void)results;
}

TEST(SweepReport, OutOfOrderSpecsThrow) {
  auto specs = tiny_sweep().specs;
  auto results = tiny_sweep().results;
  // Completion order is not matrix order: merging must refuse rather than
  // silently mis-group.
  std::reverse(specs.begin(), specs.end());
  std::reverse(results.begin(), results.end());
  try {
    SweepReport::build(specs, results);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("expand() order"), std::string::npos);
  }
}

}  // namespace
}  // namespace aria::sweep
