// Hierarchy plane end to end (docs/hierarchy.md). The contract mirrors the
// other planes': with the plane off the run is byte-for-byte the historical
// one no matter how the knobs are set; with it on, region-scoped floods plus
// digest-guided cross-region delegation still leave every job terminal —
// alone, with VO constraints forcing cross-region discovery, and composed
// with the churn/loss fault cocktail — while staying exactly replayable.
#include <gtest/gtest.h>

#include "workload/engine.hpp"
#include "workload/scenario.hpp"

namespace aria::proto {
namespace {

using namespace aria::literals;

workload::ScenarioConfig small_grid() {
  workload::ScenarioConfig cfg = workload::scenario_by_name("iMixed");
  cfg.node_count = 60;
  cfg.job_count = 80;
  return cfg;
}

// Mirror of what `aria_sim --hierarchy --regions 4` resolves to.
workload::ScenarioConfig hier_scenario() {
  workload::ScenarioConfig cfg = small_grid();
  cfg.aria.hierarchy.enabled = true;
  cfg.aria.hierarchy.region_count = 4;
  return cfg;
}

// ---------------------------------------------------------------------------
// Flag-off contract
// ---------------------------------------------------------------------------

TEST(HierarchyIntegration, InertKnobsPreserveDeterminism) {
  // Every hierarchy knob is set to an aggressive value, but the plane stays
  // disabled: the run must be indistinguishable from the stock scenario —
  // same events, same wire traffic, zero REGION_* state.
  const workload::RunResult base = workload::run_scenario(small_grid(), 17);

  workload::ScenarioConfig knobs = small_grid();
  knobs.aria.hierarchy.region_count = 16;
  knobs.aria.hierarchy.target_region_size = 2;
  knobs.aria.hierarchy.agg_standby = 5;
  knobs.aria.hierarchy.load_report_period = 1_min;
  knobs.aria.hierarchy.digest_period = 1_min;
  knobs.aria.hierarchy.delegate_cost_threshold = 1_s;
  knobs.aria.hierarchy.wide_flood_every = 1;
  const workload::RunResult r = workload::run_scenario(knobs, 17);

  EXPECT_FALSE(r.hierarchy_enabled);
  EXPECT_EQ(r.region_queries, 0u);
  EXPECT_EQ(r.region_floods, 0u);
  EXPECT_EQ(r.wide_floods, 0u);
  EXPECT_EQ(r.load_reports, 0u);
  EXPECT_EQ(r.digests_sent, 0u);

  EXPECT_EQ(r.completed(), base.completed());
  EXPECT_EQ(r.events_fired, base.events_fired);
  EXPECT_EQ(r.traffic.total().messages, base.traffic.total().messages);
  EXPECT_EQ(r.traffic.total().bytes, base.traffic.total().bytes);
}

// ---------------------------------------------------------------------------
// Plane on: digest machinery runs, every job lands
// ---------------------------------------------------------------------------

TEST(HierarchyIntegration, RegionPlaneRunsAndStrandsNothing) {
  const workload::RunResult r = workload::run_scenario(hier_scenario(), 21);

  ASSERT_TRUE(r.hierarchy_enabled);
  EXPECT_EQ(r.region_count, 4u);
  // The periodic machinery must actually run...
  EXPECT_GT(r.load_reports, 0u);
  EXPECT_GT(r.digests_sent, 0u);
  EXPECT_GT(r.digests_received, 0u);
  // ...and region-scoped discovery must still leave every job terminal.
  EXPECT_EQ(r.stranded(), 0u);
  EXPECT_TRUE(r.tracker.violations().empty());
  EXPECT_GT(r.completed(), 0u);
}

TEST(HierarchyIntegration, VoConstraintsForceCrossRegionDelegation) {
  // Pin most jobs to one of several virtual organizations: a submitter's
  // own region then rarely satisfies its jobs, so rounds come back empty
  // or poor and must delegate through the aggregators. This exercises the
  // REGION_QUERY -> REGION_FWD -> remote flood path, not just the timers.
  workload::ScenarioConfig cfg = hier_scenario();
  cfg.vo_count = 6;
  cfg.vo_job_fraction = 0.9;
  const workload::RunResult r = workload::run_scenario(cfg, 23);

  ASSERT_TRUE(r.hierarchy_enabled);
  EXPECT_GT(r.region_queries, 0u);
  EXPECT_GT(r.region_queries_served, 0u);
  EXPECT_GT(r.region_forwards, 0u);
  EXPECT_GT(r.region_floods, 0u);
  EXPECT_EQ(r.stranded(), 0u);
  EXPECT_TRUE(r.tracker.violations().empty());
}

TEST(HierarchyIntegration, RunIsReproducible) {
  workload::ScenarioConfig cfg = hier_scenario();
  cfg.vo_count = 4;
  cfg.vo_job_fraction = 0.5;
  const workload::RunResult a = workload::run_scenario(cfg, 29);
  const workload::RunResult b = workload::run_scenario(cfg, 29);

  EXPECT_EQ(a.completed(), b.completed());
  EXPECT_EQ(a.events_fired, b.events_fired);
  EXPECT_EQ(a.region_queries, b.region_queries);
  EXPECT_EQ(a.region_floods, b.region_floods);
  EXPECT_EQ(a.wide_floods, b.wide_floods);
  EXPECT_EQ(a.digests_sent, b.digests_sent);
  EXPECT_EQ(a.traffic.total().messages, b.traffic.total().messages);
  EXPECT_EQ(a.traffic.total().bytes, b.traffic.total().bytes);
}

// ---------------------------------------------------------------------------
// Cocktail: hierarchy + churn + loss (aggregators crash too)
// ---------------------------------------------------------------------------

TEST(HierarchyIntegration, CocktailWithChurnAndLossStrandsNothing) {
  // Churn crashes nodes without regard for their role, so aggregator
  // candidates die mid-run. Failover is attempt-rotation plus the
  // region-local retry loop — no job may strand on a dead super-peer.
  workload::ScenarioConfig cfg = hier_scenario();
  cfg.faults.enabled = true;
  cfg.faults.seed = 0xBEEF;
  cfg.faults.loss = 0.02;
  cfg.faults.churn = sim::FaultConfig::Churn{};
  cfg.aria.failsafe = true;

  const workload::RunResult a = workload::run_scenario(cfg, 13);
  const workload::RunResult b = workload::run_scenario(cfg, 13);

  ASSERT_TRUE(a.hierarchy_enabled);
  ASSERT_TRUE(a.faults_enabled);
  EXPECT_GT(a.faults.crashes, 0u);
  EXPECT_EQ(a.stranded(), 0u);
  EXPECT_TRUE(a.tracker.violations().empty());

  EXPECT_EQ(a.completed(), b.completed());
  EXPECT_EQ(a.events_fired, b.events_fired);
  EXPECT_EQ(a.region_queries, b.region_queries);
  EXPECT_EQ(a.traffic.total().messages, b.traffic.total().messages);
  EXPECT_EQ(a.traffic.total().bytes, b.traffic.total().bytes);
}

}  // namespace
}  // namespace aria::proto
