// Configuration fuzzing: protocol invariants must survive arbitrary (valid)
// parameter combinations — flood shapes, timers, thresholds, latencies,
// feature flags. Each case draws a random configuration from a seeded RNG
// and runs a small grid to completion.
#include <gtest/gtest.h>

#include "workload/engine.hpp"
#include "workload/scenario.hpp"

namespace aria::workload {
namespace {

using namespace aria::literals;

ScenarioConfig random_config(std::uint64_t seed) {
  Rng rng{seed};
  ScenarioConfig c = scenario_by_name("iMixed");
  c.node_count = static_cast<std::size_t>(rng.uniform_int(10, 80));
  c.job_count = static_cast<std::size_t>(rng.uniform_int(10, 60));
  c.submission_start = Duration::seconds(rng.uniform_int(10, 300));
  c.submission_interval = Duration::seconds(rng.uniform_int(2, 40));
  c.horizon = 40_h;

  c.aria.request_hops = static_cast<std::size_t>(rng.uniform_int(2, 12));
  c.aria.request_fanout = static_cast<std::size_t>(rng.uniform_int(1, 8));
  c.aria.inform_hops = static_cast<std::size_t>(rng.uniform_int(1, 10));
  c.aria.inform_fanout = static_cast<std::size_t>(rng.uniform_int(1, 6));
  c.aria.inform_period = Duration::seconds(rng.uniform_int(30, 600));
  c.aria.inform_jobs_per_period =
      static_cast<std::size_t>(rng.uniform_int(1, 6));
  c.aria.reschedule_threshold = Duration::seconds(rng.uniform_int(1, 1800));
  c.aria.accept_timeout = Duration::seconds(rng.uniform_int(1, 10));
  c.aria.retry.backoff = Duration::seconds(rng.uniform_int(5, 60));
  c.aria.dynamic_rescheduling = rng.bernoulli(0.7);
  c.aria.forward_on_match = rng.bernoulli(0.3);
  c.aria.initiator_self_candidate = rng.bernoulli(0.8);
  c.aria.failsafe = rng.bernoulli(0.3);
  c.aria.retry.max_attempts = 0;  // retry until placed

  const int mix = static_cast<int>(rng.uniform_int(0, 3));
  if (mix == 0) {
    c.scheduler_mix = {sched::SchedulerKind::kFcfs};
  } else if (mix == 1) {
    c.scheduler_mix = {sched::SchedulerKind::kSjf};
  } else if (mix == 2) {
    c.scheduler_mix = {sched::SchedulerKind::kFcfs,
                       sched::SchedulerKind::kSjf,
                       sched::SchedulerKind::kPriority,
                       sched::SchedulerKind::kFairSjf};
  } else {
    c.scheduler_mix = {sched::SchedulerKind::kEdf};
    c.jobs.deadline_slack_mean = Duration::minutes(rng.uniform_int(60, 600));
  }

  const int err = static_cast<int>(rng.uniform_int(0, 2));
  c.ert_error.mode = err == 0   ? grid::ErtErrorMode::kExact
                     : err == 1 ? grid::ErtErrorMode::kSymmetric
                                : grid::ErtErrorMode::kOptimistic;
  c.ert_error.epsilon = rng.uniform(0.0, 0.4);

  const int fam = static_cast<int>(rng.uniform_int(0, 2));
  c.overlay_family = fam == 0 ? ScenarioConfig::OverlayFamily::kBlatant
                     : fam == 1
                         ? ScenarioConfig::OverlayFamily::kRandomRegular
                         : ScenarioConfig::OverlayFamily::kSmallWorld;
  return c;
}

class ConfigFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConfigFuzz, InvariantsHoldUnderRandomConfigs) {
  const ScenarioConfig cfg = random_config(GetParam());
  GridSimulation sim{cfg, GetParam() * 31 + 7};
  const RunResult r = sim.run();

  // Unconditional invariant: the lifecycle is never violated, whatever the
  // configuration.
  EXPECT_TRUE(r.tracker.violations().empty())
      << "seed " << GetParam() << ": " << r.tracker.violations().front();

  // Completion is only guaranteed when the REQUEST flood can cover the
  // overlay: a hop budget below the topology's diameter leaves permanent
  // coverage holes (jobs whose only matching nodes sit beyond the radius
  // retry forever). This is faithful protocol behaviour and exactly why
  // the paper pairs 9 flood hops with a 9-bounded-APL overlay (§IV-E).
  const bool coverage_guaranteed =
      cfg.aria.request_hops >= 9 && cfg.aria.request_fanout >= 2;
  if (coverage_guaranteed) {
    EXPECT_EQ(r.completed(), cfg.job_count) << "seed " << GetParam();
    for (proto::AriaNode* node : sim.all_nodes()) {
      EXPECT_FALSE(node->executing());
      EXPECT_EQ(node->queue_length(), 0u);
    }
  } else {
    EXPECT_GT(r.completed(), 0u) << "seed " << GetParam();
  }

  for (const auto& [id, rec] : r.tracker.records()) {
    if (!rec.done()) continue;
    const proto::AriaNode* executor = sim.node(rec.executor);
    ASSERT_NE(executor, nullptr);
    EXPECT_TRUE(grid::satisfies(executor->profile(), rec.spec.requirements,
                                executor->virtual_org()));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomConfigs, ConfigFuzz,
                         ::testing::Range(std::uint64_t{1}, std::uint64_t{13}),
                         [](const auto& info) {
                           return "cfg" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace aria::workload
