// Self-healing overlay plane end to end: PING/PONG liveness probing,
// dead-neighbor eviction, contact-gossip repair and restarted-node rejoin
// against the fault plane. These are the guarantees docs/overlay.md
// promises: the live-node subgraph reconverges to connected under churn,
// lossy links do not unravel the overlay, and with zero faults the plane
// takes no corrective action and stays perfectly replayable.
#include <gtest/gtest.h>

#include "workload/engine.hpp"
#include "workload/scenario.hpp"

namespace aria::proto {
namespace {

using namespace aria::literals;

workload::ScenarioConfig healing_scenario() {
  workload::ScenarioConfig cfg = workload::scenario_by_name("iMixed");
  cfg.node_count = 25;
  cfg.job_count = 60;
  return cfg;
}

// Mirror of what `aria_sim --churn --healing` resolves to: churn implies
// the failsafe (crashed queues) and acknowledged delegation (lossy wire).
workload::ScenarioConfig churn_scenario(std::uint64_t seed) {
  workload::ScenarioConfig cfg = healing_scenario();
  cfg.faults.enabled = true;
  cfg.faults.seed = seed ^ 0xFA017D15ULL;
  cfg.faults.churn = sim::FaultConfig::Churn{};
  cfg.aria.failsafe = true;
  cfg.aria.assign_ack = true;
  cfg.aria.healing.enabled = true;
  return cfg;
}

// ---------------------------------------------------------------------------
// Churn: eviction, repair, rejoin, reconvergence
// ---------------------------------------------------------------------------

TEST(Healing, ChurnEvictsRepairsAndReconverges) {
  const workload::RunResult r = workload::run_scenario(churn_scenario(3), 3);

  ASSERT_TRUE(r.healing_enabled);
  EXPECT_GT(r.faults.crashes, 0u);
  // Dead neighbors were detected and cut out of the flood target sets...
  EXPECT_GT(r.neighbor_evictions, 0u);
  // ...and the survivors rebuilt their degree from gossiped contacts.
  EXPECT_GT(r.repair_links, 0u);
  // Restarted nodes re-entered through their remembered contacts.
  EXPECT_GT(r.rejoin_requests, 0u);
  EXPECT_GT(r.probe_rounds, 0u);
  // The headline guarantee: the live-node subgraph reconverged, and any
  // disconnection window was bounded by a handful of probe periods.
  EXPECT_TRUE(r.live_subgraph_connected_at_end);
  EXPECT_LE(r.max_heal_minutes, 60.0);
  EXPECT_EQ(r.stranded(), 0u);
  EXPECT_TRUE(r.tracker.violations().empty());
}

TEST(Healing, StrictlyReducesReschedulesUnderChurn) {
  // Same workload, same fault schedule; the only difference is the healing
  // plane. Since executors replay completion receipts the failsafe alone
  // already pulls every recoverable job through, so completion ends at
  // parity — healing's measurable win is wasted work: eviction keeps
  // floods and assignments away from dead neighbors, so strictly fewer
  // jobs bounce through a reschedule.
  workload::ScenarioConfig off = churn_scenario(3);
  off.aria.healing.enabled = false;
  const workload::RunResult a = workload::run_scenario(off, 3);
  const workload::RunResult b = workload::run_scenario(churn_scenario(3), 3);

  EXPECT_FALSE(a.healing_enabled);
  EXPECT_TRUE(b.healing_enabled);
  EXPECT_GE(b.completed(), a.completed());
  EXPECT_LT(b.tracker.total_reschedules(), a.tracker.total_reschedules());
  EXPECT_EQ(b.stranded(), 0u);
  EXPECT_TRUE(b.tracker.violations().empty());
}

TEST(Healing, ChurnRunIsReproducible) {
  const workload::RunResult a = workload::run_scenario(churn_scenario(7), 7);
  const workload::RunResult b = workload::run_scenario(churn_scenario(7), 7);
  EXPECT_EQ(a.completed(), b.completed());
  EXPECT_EQ(a.events_fired, b.events_fired);
  EXPECT_EQ(a.neighbor_evictions, b.neighbor_evictions);
  EXPECT_EQ(a.repair_links, b.repair_links);
  EXPECT_EQ(a.rejoin_requests, b.rejoin_requests);
  EXPECT_EQ(a.traffic.total().messages, b.traffic.total().messages);
  EXPECT_EQ(a.traffic.total().bytes, b.traffic.total().bytes);
}

// ---------------------------------------------------------------------------
// Loss: suspicion without unraveling
// ---------------------------------------------------------------------------

TEST(Healing, LossyWireCausesOnlyFalseSuspicions) {
  // Nobody ever crashes; every suspicion the prober raises is false and a
  // later PONG must clear it. The grace period (suspected peers still get
  // traffic) plus the two-miss threshold keep the overlay intact.
  workload::ScenarioConfig cfg = healing_scenario();
  cfg.faults.enabled = true;
  cfg.faults.seed = 0xCAFE;
  cfg.faults.loss = 0.05;
  cfg.aria.assign_ack = true;
  cfg.aria.healing.enabled = true;

  const workload::RunResult r = workload::run_scenario(cfg, 11);

  EXPECT_EQ(r.faults.crashes, 0u);
  EXPECT_GT(r.false_suspicions, 0u);
  // All nodes stayed alive the whole run, so the live subgraph is the whole
  // overlay — it must never have been sampled disconnected.
  EXPECT_EQ(r.live_disconnected_samples, 0u);
  EXPECT_TRUE(r.live_subgraph_connected_at_end);
  EXPECT_EQ(r.stranded(), 0u);
  EXPECT_TRUE(r.tracker.violations().empty());
}

// ---------------------------------------------------------------------------
// Quiet plane: healing enabled, zero faults
// ---------------------------------------------------------------------------

TEST(Healing, QuietPlaneTakesNoActionAndReplaysExactly) {
  // With no faults every probe is answered, so the plane must be pure
  // observation: no suspicion ever matures, no link is evicted, and the run
  // is bit-reproducible (probe traffic included). The one sanctioned move
  // is the degree-floor top-up: bootstrap nodes that start below the floor
  // pull in a few repair links on the first probe tick — a standing
  // invariant, not a fault response — and then the plane goes quiet.
  workload::ScenarioConfig cfg = healing_scenario();
  cfg.aria.healing.enabled = true;

  const workload::RunResult a = workload::run_scenario(cfg, 5);
  const workload::RunResult b = workload::run_scenario(cfg, 5);

  ASSERT_TRUE(a.healing_enabled);
  EXPECT_EQ(a.neighbor_evictions, 0u);
  EXPECT_EQ(a.false_suspicions, 0u);
  EXPECT_LT(a.repair_links, cfg.node_count);  // floor top-up only, one-time
  EXPECT_EQ(a.repair_links, b.repair_links);
  EXPECT_EQ(a.rejoin_requests, 0u);
  EXPECT_GT(a.probe_rounds, 0u);
  EXPECT_GT(a.probe_traffic_mib(), 0.0);
  EXPECT_EQ(a.live_disconnected_samples, 0u);
  EXPECT_TRUE(a.live_subgraph_connected_at_end);
  EXPECT_EQ(a.stranded(), 0u);

  EXPECT_EQ(a.completed(), b.completed());
  EXPECT_EQ(a.events_fired, b.events_fired);
  EXPECT_EQ(a.traffic.total().messages, b.traffic.total().messages);
  EXPECT_EQ(a.traffic.total().bytes, b.traffic.total().bytes);
}

TEST(Healing, DisabledPlaneSendsNoProbeTraffic) {
  // The flag-off contract behind the golden determinism constants: a run
  // without --healing carries zero healing state and zero probe bytes.
  const workload::RunResult r =
      workload::run_scenario(healing_scenario(), 5);
  EXPECT_FALSE(r.healing_enabled);
  EXPECT_EQ(r.probe_rounds, 0u);
  EXPECT_EQ(r.probe_traffic_mib(), 0.0);
  EXPECT_EQ(r.neighbor_evictions, 0u);
  EXPECT_EQ(r.rejoin_requests, 0u);
}

}  // namespace
}  // namespace aria::proto
