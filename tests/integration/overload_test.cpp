// Overload plane end to end: request storms against bounded queues and
// admission control. These are the guarantees docs/overload.md promises:
// with the plane off the run is byte-for-byte the historical one no matter
// how the knobs are set, and with it on a >=5x storm degrades to shedding
// and rescheduling — never to stranded jobs — while staying exactly
// replayable, alone and composed with the fault plane.
#include <gtest/gtest.h>

#include "workload/engine.hpp"
#include "workload/scenario.hpp"

namespace aria::proto {
namespace {

using namespace aria::literals;

workload::ScenarioConfig small_grid() {
  workload::ScenarioConfig cfg = workload::scenario_by_name("iMixed");
  cfg.node_count = 20;
  cfg.job_count = 60;
  return cfg;
}

// Mirror of what `aria_sim --overload --storm` resolves to: overload
// implies acknowledged delegation (REJECT rides the ASSIGN exchange).
workload::ScenarioConfig storm_scenario() {
  workload::ScenarioConfig cfg = small_grid();
  cfg.aria.overload.enabled = true;
  cfg.aria.overload.capacity_per_perf = 2.0;
  cfg.aria.overload.admission_backlog = 2_h;
  cfg.aria.assign_ack = true;
  cfg.storm = workload::StormParams{/*start=*/Duration::zero(),
                                    /*duration=*/Duration::minutes(10),
                                    /*intensity=*/6.0};
  return cfg;
}

// ---------------------------------------------------------------------------
// Flag-off contract
// ---------------------------------------------------------------------------

TEST(OverloadIntegration, InertKnobsPreserveDeterminism) {
  // Every overload knob is set to an aggressive value, but the plane stays
  // disabled: the run must be indistinguishable from the stock scenario —
  // same events, same wire traffic, same completions, zero overload state.
  const workload::RunResult base = workload::run_scenario(small_grid(), 17);

  workload::ScenarioConfig knobs = small_grid();
  knobs.aria.overload.capacity_per_perf = 1.0;
  knobs.aria.overload.admission_backlog = 1_min;
  knobs.aria.overload.bid_stop = 0.1;
  knobs.aria.overload.bid_resume = 0.05;
  const workload::RunResult r = workload::run_scenario(knobs, 17);

  EXPECT_FALSE(r.overload_enabled);
  EXPECT_EQ(r.jobs_shed, 0u);
  EXPECT_EQ(r.assign_rejects, 0u);
  EXPECT_EQ(r.bids_suppressed, 0u);
  EXPECT_EQ(r.queue_depth_series.size(), 0u);

  EXPECT_EQ(r.completed(), base.completed());
  EXPECT_EQ(r.events_fired, base.events_fired);
  EXPECT_EQ(r.traffic.total().messages, base.traffic.total().messages);
  EXPECT_EQ(r.traffic.total().bytes, base.traffic.total().bytes);
}

// ---------------------------------------------------------------------------
// Storm acceptance: overload activity, zero stranded, determinism
// ---------------------------------------------------------------------------

TEST(OverloadIntegration, StormShedsAndRejectsButStrandsNothing) {
  const workload::RunResult r = workload::run_scenario(storm_scenario(), 21);

  ASSERT_TRUE(r.overload_enabled);
  // The 6x burst against a 2-deep bound must actually trip the plane...
  EXPECT_GT(r.bids_suppressed, 0u);
  EXPECT_GT(r.peak_queue_depth, 0u);
  EXPECT_GT(r.queue_depth_series.size(), 0u);
  // ...and every shed or rejected job must land somewhere terminal: the
  // overload guarantee is "degrade to rescheduling, never to stranding".
  EXPECT_EQ(r.stranded(), 0u);
  EXPECT_EQ(r.completed() + r.tracker.unschedulable_count() +
                r.tracker.abandoned_count(),
            storm_scenario().job_count);
  EXPECT_TRUE(r.tracker.violations().empty());
}

TEST(OverloadIntegration, StormRunIsReproducible) {
  const workload::RunResult a = workload::run_scenario(storm_scenario(), 9);
  const workload::RunResult b = workload::run_scenario(storm_scenario(), 9);

  EXPECT_EQ(a.completed(), b.completed());
  EXPECT_EQ(a.events_fired, b.events_fired);
  EXPECT_EQ(a.jobs_shed, b.jobs_shed);
  EXPECT_EQ(a.sheds_rescheduled, b.sheds_rescheduled);
  EXPECT_EQ(a.sheds_failsafe, b.sheds_failsafe);
  EXPECT_EQ(a.assign_rejects, b.assign_rejects);
  EXPECT_EQ(a.reject_rediscoveries, b.reject_rediscoveries);
  EXPECT_EQ(a.bids_suppressed, b.bids_suppressed);
  EXPECT_EQ(a.peak_queue_depth, b.peak_queue_depth);
  EXPECT_EQ(a.traffic.total().messages, b.traffic.total().messages);
  EXPECT_EQ(a.traffic.total().bytes, b.traffic.total().bytes);
}

// ---------------------------------------------------------------------------
// Cocktail: overload + churn + loss
// ---------------------------------------------------------------------------

TEST(OverloadIntegration, CocktailWithChurnAndLossReplaysExactly) {
  workload::ScenarioConfig cfg = storm_scenario();
  cfg.faults.enabled = true;
  cfg.faults.seed = 0xBEEF;
  cfg.faults.loss = 0.05;
  cfg.faults.churn = sim::FaultConfig::Churn{};
  cfg.aria.failsafe = true;

  const workload::RunResult a = workload::run_scenario(cfg, 13);
  const workload::RunResult b = workload::run_scenario(cfg, 13);

  ASSERT_TRUE(a.overload_enabled);
  ASSERT_TRUE(a.faults_enabled);
  EXPECT_GT(a.faults.crashes, 0u);
  // Churn + loss + storm together still leave every job terminal.
  EXPECT_EQ(a.stranded(), 0u);
  EXPECT_TRUE(a.tracker.violations().empty());

  EXPECT_EQ(a.completed(), b.completed());
  EXPECT_EQ(a.events_fired, b.events_fired);
  EXPECT_EQ(a.jobs_shed, b.jobs_shed);
  EXPECT_EQ(a.assign_rejects, b.assign_rejects);
  EXPECT_EQ(a.reject_rediscoveries, b.reject_rediscoveries);
  EXPECT_EQ(a.bids_suppressed, b.bids_suppressed);
  EXPECT_EQ(a.traffic.total().messages, b.traffic.total().messages);
  EXPECT_EQ(a.traffic.total().bytes, b.traffic.total().bytes);
}

}  // namespace
}  // namespace aria::proto
