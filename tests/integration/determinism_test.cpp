// Golden-value determinism regression. The event kernel promises bit-exact
// reproducibility for a fixed seed: ties break on (time, key, sequence) and
// the key/sequence allocation order is part of the public contract. These constants
// were captured from the original shared_ptr/string-keyed kernel and must
// survive any rewrite of the queue or the traffic ledger — if a change to
// src/sim shifts them, it reordered events, which silently invalidates every
// cross-kernel comparison in the bench history.
#include <gtest/gtest.h>

#include "workload/engine.hpp"
#include "workload/scenario.hpp"

namespace aria::workload {
namespace {

ScenarioConfig golden_scenario() {
  ScenarioConfig c = scenario_by_name("iMixed");
  c.node_count = 60;
  c.job_count = 80;
  c.submission_interval = c.submission_interval / 2;
  c.horizon = Duration::hours(30);
  return c;
}

// Re-pinned when latency jitter, fault verdicts and flood target picks
// moved from shared to per-entity RNG streams (the PDES determinism
// contract, docs/pdes.md): the draws themselves changed, so message counts
// and event totals shifted, but completions stayed at the same plateau.
constexpr std::uint64_t kGoldenSeed = 42;
constexpr std::size_t kGoldenCompleted = 80;
constexpr std::uint64_t kGoldenEventsFired = 91929;
constexpr std::uint64_t kGoldenTotalMessages = 67226;
constexpr std::uint64_t kGoldenTotalBytes = 68025856;
constexpr std::uint64_t kGoldenReschedules = 37;
constexpr std::uint64_t kGoldenRequestMessages = 7877;
constexpr std::uint64_t kGoldenInformBytes = 59724800;

TEST(Determinism, GoldenRunMatchesRecordedKernelBehaviour) {
  const RunResult r = run_scenario(golden_scenario(), kGoldenSeed);
  EXPECT_EQ(r.completed(), kGoldenCompleted);
  EXPECT_EQ(r.events_fired, kGoldenEventsFired);
  EXPECT_EQ(r.traffic.total().messages, kGoldenTotalMessages);
  EXPECT_EQ(r.traffic.total().bytes, kGoldenTotalBytes);
  EXPECT_EQ(r.tracker.total_reschedules(), kGoldenReschedules);
  EXPECT_EQ(r.traffic.of("REQUEST").messages, kGoldenRequestMessages);
  EXPECT_EQ(r.traffic.of("INFORM").bytes, kGoldenInformBytes);
}

TEST(Determinism, SameSeedTwiceIsBitIdentical) {
  const RunResult a = run_scenario(golden_scenario(), kGoldenSeed);
  const RunResult b = run_scenario(golden_scenario(), kGoldenSeed);
  EXPECT_EQ(a.events_fired, b.events_fired);
  EXPECT_EQ(a.traffic.total().messages, b.traffic.total().messages);
  EXPECT_EQ(a.traffic.total().bytes, b.traffic.total().bytes);
  EXPECT_EQ(a.tracker.total_reschedules(), b.tracker.total_reschedules());
  // Per-type traffic identical, not just the totals.
  const auto bt = b.traffic.by_type();
  for (const auto& [type, entry] : a.traffic.by_type()) {
    const auto it = bt.find(type);
    ASSERT_NE(it, bt.end()) << type;
    EXPECT_EQ(entry.messages, it->second.messages) << type;
    EXPECT_EQ(entry.bytes, it->second.bytes) << type;
  }
  // Per-job outcomes identical down to executor and completion instant.
  ASSERT_EQ(a.tracker.records().size(), b.tracker.records().size());
  for (const auto& [id, rec] : a.tracker.records()) {
    const proto::JobRecord* other = b.tracker.find(id);
    ASSERT_NE(other, nullptr) << id.to_string();
    EXPECT_EQ(rec.executor, other->executor) << id.to_string();
    ASSERT_TRUE(rec.completed.has_value());
    ASSERT_TRUE(other->completed.has_value());
    EXPECT_EQ(*rec.completed, *other->completed) << id.to_string();
  }
}

}  // namespace
}  // namespace aria::workload
