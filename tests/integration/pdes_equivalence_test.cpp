// Sharded-vs-sequential byte-identity (docs/pdes.md "Determinism
// contract"). The sequential kernel is the oracle: for every scenario the
// executor supports, running the same seed under --shards N must reproduce
// the sequential run exactly — same job lifecycles to the microsecond, same
// per-type traffic, same fault counters, same series. These tests drive
// verify_sharded_equivalence, which also diffs the canonical send journals
// so a regression names the first divergent event instead of a mismatched
// aggregate.
#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/pdes/journal.hpp"
#include "workload/cli.hpp"
#include "workload/engine.hpp"
#include "workload/scenario.hpp"

namespace aria::workload {
namespace {

/// The golden-run shape (determinism_test.cpp), small enough that a
/// sequential + sharded pair stays test-suite cheap.
ScenarioConfig small_scenario() {
  ScenarioConfig c = scenario_by_name("iMixed");
  c.node_count = 60;
  c.job_count = 80;
  c.submission_interval = c.submission_interval / 2;
  c.horizon = Duration::hours(30);
  return c;
}

ScenarioConfig hierarchy_scenario() {
  CliOptions o;
  o.scenario = "iMixed";
  o.nodes = 120;
  o.jobs = 100;
  o.horizon_min = 20.0 * 60.0;
  o.hierarchy = true;
  return resolve_scenario(o);
}

ScenarioConfig churn_loss_scenario() {
  CliOptions o;
  o.scenario = "iMixed";
  o.nodes = 120;
  o.jobs = 100;
  o.horizon_min = 20.0 * 60.0;
  o.churn = true;
  o.loss = 0.02;
  return resolve_scenario(o);
}

TEST(PdesEquivalence, DefaultScenarioIsByteIdenticalAcrossShardCounts) {
  for (const std::size_t shards : {2u, 4u}) {
    const auto eq = verify_sharded_equivalence(small_scenario(), shards, 42);
    EXPECT_TRUE(eq.identical) << "shards=" << shards << ": " << eq.detail;
  }
}

TEST(PdesEquivalence, HierarchyScenarioIsByteIdentical) {
  const auto eq = verify_sharded_equivalence(hierarchy_scenario(), 4, 7);
  EXPECT_TRUE(eq.identical) << eq.detail;
}

TEST(PdesEquivalence, ChurnAndLossCocktailIsByteIdentical) {
  const auto eq = verify_sharded_equivalence(churn_loss_scenario(), 4, 7);
  EXPECT_TRUE(eq.identical) << eq.detail;
}

TEST(PdesEquivalence, SingleShardIsThePlainSequentialPath) {
  // --shards 1 must not merely be equivalent — it takes the exact
  // sequential code path, so two runs fingerprint identically and report
  // no executor telemetry.
  const ScenarioConfig cfg = small_scenario();
  GridSimulation a{cfg, 42};
  GridSimulation b{cfg, 42};
  const RunResult ra = a.run();
  const RunResult rb = b.run();
  EXPECT_EQ(run_fingerprint(ra), run_fingerprint(rb));
  EXPECT_EQ(ra.shards, 1u);
  EXPECT_EQ(ra.pdes_windows, 0u);
  EXPECT_EQ(ra.pdes_shard_events, 0u);
}

TEST(PdesEquivalence, ShardedTelemetryIsReported) {
  ScenarioConfig cfg = small_scenario();
  cfg.shards = 2;
  GridSimulation sim{cfg, 42};
  const RunResult r = sim.run();
  EXPECT_EQ(r.shards, 2u);
  EXPECT_GT(r.pdes_windows, 0u);
  EXPECT_GT(r.pdes_shard_events, 0u);
  EXPECT_GT(r.pdes_messages_forwarded, 0u);
  // The executor is the only driver of the engine simulator in sharded
  // mode, so its per-phase tally plus the shard totals is exactly
  // events_fired.
  EXPECT_EQ(r.pdes_engine_events + r.pdes_shard_events, r.events_fired);
  EXPECT_EQ(r.pdes_channel_overflows, 0u)
      << "default ring capacity should absorb a 60-node run";
}

TEST(PdesEquivalence, GatedPlanesThrowAtBuildTime) {
  // docs/pdes.md "Gated planes": the executor refuses configurations it
  // cannot host rather than silently diverging.
  {
    ScenarioConfig cfg = small_scenario();
    cfg.shards = 2;
    cfg.aria.healing.enabled = true;
    GridSimulation sim{cfg, 1};
    EXPECT_THROW(sim.build(), std::invalid_argument);
  }
  {
    ScenarioConfig cfg = small_scenario();
    cfg.shards = 2;
    cfg.audit.enabled = true;
    GridSimulation sim{cfg, 1};
    EXPECT_THROW(sim.build(), std::invalid_argument);
  }
  {
    ScenarioConfig cfg = small_scenario();
    cfg.shards = 0;
    GridSimulation sim{cfg, 1};
    EXPECT_THROW(sim.build(), std::invalid_argument);
  }
  EXPECT_THROW(verify_sharded_equivalence(small_scenario(), 1, 1),
               std::invalid_argument);
}

TEST(PdesEquivalence, DivergenceWouldNameTheFirstEvent) {
  // Sanity-check the reporting path end to end: a deliberately mismatched
  // comparison (different seeds) must come back non-identical with a
  // description that names a concrete event or fingerprint line.
  ScenarioConfig cfg = small_scenario();
  cfg.pdes_journal = true;
  GridSimulation seq{cfg, 42};
  const RunResult rs = seq.run();
  const auto js = seq.journal_entries();
  GridSimulation other{cfg, 43};
  other.run();
  const auto jo = other.journal_entries();
  const auto d = sim::pdes::first_divergence(js, jo);
  ASSERT_TRUE(d.has_value());
  EXPECT_FALSE(d->description.empty());
  EXPECT_NE(rs.events_fired, 0u);
}

}  // namespace
}  // namespace aria::workload
