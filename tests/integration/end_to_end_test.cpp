// Downsized reproductions of the paper's headline comparisons. These are
// the same experiments as the bench harness, shrunk until they run in
// seconds, asserting the *direction* of each effect.
#include <gtest/gtest.h>

#include "workload/aggregate.hpp"
#include "workload/engine.hpp"
#include "workload/scenario.hpp"

namespace aria::workload {
namespace {

using namespace aria::literals;

ScenarioConfig midsize(const std::string& base) {
  ScenarioConfig c = scenario_by_name(base);
  c.node_count = 120;
  c.job_count = 200;
  c.submission_start = 5_min;
  c.submission_interval = c.submission_interval / 2;  // keep relative loads
  c.horizon = 30_h;
  if (c.expansion) {
    c.expansion->start = 30_min;
    c.expansion->mean_interval = 30_s;
    c.expansion->target_node_count = 170;
  }
  return c;
}

double mean_completion(const std::string& name, std::uint64_t seed) {
  return run_scenario(midsize(name), seed).mean_completion_minutes();
}

TEST(EndToEnd, ReschedulingImprovesSjf) {
  // Paper Fig. 1/2: iSJF clearly beats SJF.
  const double plain = mean_completion("SJF", 3);
  const double dynamic = mean_completion("iSJF", 3);
  EXPECT_LT(dynamic, plain * 0.9);
}

TEST(EndToEnd, ReschedulingImprovesMixed) {
  const double plain = mean_completion("Mixed", 3);
  const double dynamic = mean_completion("iMixed", 3);
  EXPECT_LT(dynamic, plain);
}

TEST(EndToEnd, FcfsIsAlreadyNearOptimal) {
  // Paper: "comparative optimality of FCFS without rescheduling" — FCFS
  // beats plain SJF/Mixed, and iFCFS adds little.
  const double fcfs = mean_completion("FCFS", 4);
  const double sjf = mean_completion("SJF", 4);
  const double mixed = mean_completion("Mixed", 4);
  EXPECT_LT(fcfs, sjf);
  EXPECT_LT(fcfs, mixed);
  const double ifcfs = mean_completion("iFCFS", 4);
  EXPECT_LT(std::abs(ifcfs - fcfs) / fcfs, 0.25);  // small relative change
}

TEST(EndToEnd, ReschedulingReducesWaitingNotExecution) {
  // Paper Fig. 2: the win comes from the waiting component.
  const RunResult plain = run_scenario(midsize("Mixed"), 5);
  const RunResult dynamic = run_scenario(midsize("iMixed"), 5);
  EXPECT_LT(dynamic.mean_waiting_minutes(), plain.mean_waiting_minutes());
  // Execution time may rise slightly (jobs land on less capable nodes).
  EXPECT_GT(dynamic.mean_execution_minutes(),
            plain.mean_execution_minutes() * 0.9);
}

TEST(EndToEnd, ReschedulingReducesMissedDeadlines) {
  // Paper Fig. 4 with tight deadlines (DeadlineH -> iDeadlineH).
  const RunResult plain = run_scenario(midsize("DeadlineH"), 6);
  const RunResult dynamic = run_scenario(midsize("iDeadlineH"), 6);
  EXPECT_LT(dynamic.missed_deadlines(), plain.missed_deadlines());
}

TEST(EndToEnd, ReschedulingImprovesUtilization) {
  // Paper Fig. 3: fewer idle nodes during the busy phase.
  const RunResult plain = run_scenario(midsize("Mixed"), 7);
  const RunResult dynamic = run_scenario(midsize("iMixed"), 7);
  auto busy_phase_mean_idle = [](const RunResult& r) {
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto& p : r.idle_series.points()) {
      if (p.t_hours < 1.0 || p.t_hours > 6.0) continue;
      sum += p.value;
      ++n;
    }
    return sum / static_cast<double>(n);
  };
  EXPECT_LT(busy_phase_mean_idle(dynamic), busy_phase_mean_idle(plain));
}

TEST(EndToEnd, HighLoadWithReschedulingNearsLowLoad) {
  // Paper Fig. 7: iHighLoad is comparable to LowLoad despite 4x the
  // submission rate. Allow generous slack at this scale.
  const double low = mean_completion("LowLoad", 8);
  const double ihigh = mean_completion("iHighLoad", 8);
  const double high = mean_completion("HighLoad", 8);
  EXPECT_LT(ihigh, high);
  EXPECT_LT(ihigh, low * 1.8);
}

TEST(EndToEnd, ExpandingNetworkAbsorbsLoad) {
  // Paper Fig. 5: with rescheduling the new nodes get used.
  const RunResult grown = run_scenario(midsize("iExpanding"), 9);
  const RunResult fixed = run_scenario(midsize("iMixed"), 9);
  EXPECT_EQ(grown.final_node_count, 170u);
  EXPECT_EQ(fixed.final_node_count, 120u);
  EXPECT_EQ(grown.completed(), 200u);
}

TEST(EndToEnd, ReschedulingImprovesLoadBalance) {
  // The paper's abstract promises improved load-balancing; quantify it with
  // the Gini coefficient over per-node busy time.
  const RunResult plain = run_scenario(midsize("Mixed"), 14);
  const RunResult dynamic = run_scenario(midsize("iMixed"), 14);
  const auto plain_lb = plain.busy_time_balance();
  const auto dyn_lb = dynamic.busy_time_balance();
  EXPECT_LT(dyn_lb.gini, plain_lb.gini);
}

TEST(EndToEnd, TrafficDominatedByFloods) {
  // Paper Fig. 10: REQUEST/INFORM dwarf ACCEPT/ASSIGN.
  const RunResult r = run_scenario(midsize("iMixed"), 10);
  EXPECT_GT(r.traffic_mib("REQUEST"), r.traffic_mib("ACCEPT"));
  EXPECT_GT(r.traffic_mib("REQUEST"), r.traffic_mib("ASSIGN"));
  EXPECT_GT(r.traffic_mib("INFORM"), r.traffic_mib("ASSIGN"));
}

TEST(EndToEnd, Inform1GeneratesLessTrafficSamePerformance) {
  // Paper §V-E: iInform1 is the best compromise.
  const RunResult base = run_scenario(midsize("iMixed"), 11);
  const RunResult one = run_scenario(midsize("iInform1"), 11);
  EXPECT_LT(one.traffic_mib("INFORM"), base.traffic_mib("INFORM"));
  EXPECT_LT(one.mean_completion_minutes(),
            base.mean_completion_minutes() * 1.3);
}

TEST(EndToEnd, ErtAccuracyBarelyMatters) {
  // Paper Fig. 9: symmetric error changes little; only AccuracyBad hurts.
  const double precise = mean_completion("iPrecise", 12);
  const double noisy = mean_completion("iAccuracy25", 12);
  EXPECT_LT(std::abs(noisy - precise) / precise, 0.30);
}

TEST(EndToEnd, DeterministicAcrossRepeatedConstruction) {
  // Building the same simulation twice in one process (fresh RNG streams,
  // fresh containers) must give bit-identical results — guards against
  // hidden global state.
  ScenarioConfig cfg = midsize("iMixed");
  cfg.node_count = 60;
  cfg.job_count = 80;
  GridSimulation a{cfg, 77};
  const RunResult ra = a.run();
  GridSimulation b{cfg, 77};
  const RunResult rb = b.run();
  EXPECT_EQ(ra.events_fired, rb.events_fired);
  EXPECT_EQ(ra.traffic.total().bytes, rb.traffic.total().bytes);
  EXPECT_EQ(ra.tracker.total_reschedules(), rb.tracker.total_reschedules());
  for (const auto& [id, rec] : ra.tracker.records()) {
    const proto::JobRecord* other = rb.tracker.find(id);
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(rec.executor, other->executor);
    EXPECT_EQ(*rec.completed, *other->completed);
  }
}

TEST(EndToEnd, CentralizedBaselineBoundsAria) {
  // Ablation: an omniscient centralized scheduler with the same workload
  // can only be better or equal on mean completion time; ARiA should land
  // within a modest factor.
  ScenarioConfig cfg = midsize("iMixed");
  GridSimulation aria_sim{cfg, 13};
  const RunResult aria_result = aria_sim.run();

  // Replay the same workload shape through the centralized baseline.
  GridSimulation central_sim{cfg, 13};
  central_sim.build();
  // Cancel ARiA's scheduled submissions by stealing them: instead, rebuild
  // is complex — run the centralized comparison on its own grid via the
  // dedicated bench; here we only sanity-check ARiA's absolute numbers.
  EXPECT_GT(aria_result.mean_completion_minutes(), 60.0);   // >= mean ERTp
  EXPECT_LT(aria_result.mean_completion_minutes(), 600.0);  // sane upper bound
}

}  // namespace
}  // namespace aria::workload
