// Fault recovery: the hardened protocol (failsafe watchdogs + acknowledged
// delegation) against the fault plane. These are the guarantees
// docs/faults.md promises: crashed assignees lose their queues but not the
// jobs, lost ASSIGNs are retransmitted or re-discovered, and a run with the
// plane attached-but-quiet is indistinguishable from a fault-free one.
#include <gtest/gtest.h>

#include "tests/core/test_grid.hpp"
#include "workload/engine.hpp"
#include "workload/scenario.hpp"

namespace aria::proto {
namespace {

using aria::test::TestGrid;
using namespace aria::literals;
using sched::SchedulerKind;

// ---------------------------------------------------------------------------
// Crash recovery via failsafe
// ---------------------------------------------------------------------------

TEST(FaultRecovery, CrashedAssigneeQueuedJobCompletesViaFailsafe) {
  TestGrid g;
  g.config.failsafe = true;
  g.config.failsafe_factor = 1.5;
  g.config.failsafe_margin = 10_min;
  // Keep the initiator out of the bidding and jobs where they land, so the
  // recovery deterministically executes on node 2 (otherwise the initiator
  // self-quotes on the re-flood, or INFORM rescheduling later steals the
  // recovered job from node 2's queue).
  g.config.initiator_self_candidate = false;
  g.config.dynamic_rescheduling = false;
  g.add_node(SchedulerKind::kFcfs, 1.0);               // initiator
  auto& winner = g.add_node(SchedulerKind::kFcfs, 5.0);  // fast, then dead
  g.add_node(SchedulerKind::kFcfs, 1.0);               // recovery target
  g.connect_all();

  // Two jobs so the second sits *queued* behind the first when the crash
  // wipes the scheduler.
  auto first = g.make_job(2_h);
  auto queued = g.make_job(1_h);
  const JobId queued_id = queued.id;
  g.node(0).submit(std::move(first));
  g.run_for(10_s);
  g.node(0).submit(std::move(queued));
  g.run_for(10_s);
  ASSERT_TRUE(winner.executing());
  ASSERT_EQ(winner.queue_length(), 1u);

  winner.crash();
  EXPECT_TRUE(winner.crashed());
  EXPECT_FALSE(winner.idle());
  EXPECT_EQ(winner.queue_length(), 0u);

  // The initiator's watchdog fires and re-floods; node 2 picks the job up.
  g.run_for(12_h);
  const JobRecord* rec = g.tracker.find(queued_id);
  ASSERT_NE(rec, nullptr);
  EXPECT_TRUE(rec->done());
  EXPECT_GE(rec->recoveries, 1u);
  EXPECT_EQ(rec->executor, NodeId{2});
  EXPECT_GE(g.node(0).counters().recoveries, 1u);
  EXPECT_TRUE(g.tracker.violations().empty());
}

TEST(FaultRecovery, RestartedNodeRejoinsAndExecutesAgain) {
  TestGrid g;
  g.config.failsafe = true;
  g.add_node(SchedulerKind::kFcfs, 1.0);
  auto& churner = g.add_node(SchedulerKind::kFcfs, 5.0);
  g.connect_all();

  churner.crash();
  g.run_for(1_min);
  churner.restart();
  EXPECT_FALSE(churner.crashed());

  auto job = g.make_job(1_h);
  const JobId id = job.id;
  g.node(0).submit(std::move(job));
  g.run_for(4_h);
  const JobRecord* rec = g.tracker.find(id);
  ASSERT_NE(rec, nullptr);
  EXPECT_TRUE(rec->done());
  EXPECT_EQ(rec->executor, churner.id());  // fast node wins again post-restart
  EXPECT_TRUE(g.tracker.violations().empty());
}

// ---------------------------------------------------------------------------
// Acknowledged delegation
// ---------------------------------------------------------------------------

TEST(FaultRecovery, LostAssignIsRetransmittedAndAcked) {
  TestGrid g;
  g.config.initiator_self_candidate = false;
  g.config.assign_ack = true;
  g.config.assign_ack_timeout = 5_s;
  g.add_node(SchedulerKind::kFcfs, 1.0);
  auto& winner = g.add_node(SchedulerKind::kFcfs, 5.0);
  g.connect_all();

  auto job = g.make_job(1_h);
  const JobId id = job.id;
  g.node(0).submit(std::move(job));
  // Let the decision fire (accept_timeout = 1s), then swallow the in-flight
  // ASSIGN by taking the winner down for one retry period.
  g.run_for(1_s + 5_ms);
  g.net().set_up(winner.id(), false);
  g.run_for(4_s);
  g.net().set_up(winner.id(), true);

  g.run_for(4_h);
  const JobRecord* rec = g.tracker.find(id);
  ASSERT_NE(rec, nullptr);
  EXPECT_TRUE(rec->done());
  EXPECT_EQ(rec->executor, winner.id());
  EXPECT_GE(g.node(0).counters().assign_retries, 1u);
  EXPECT_GE(winner.counters().assign_acks_sent, 1u);
  EXPECT_TRUE(g.tracker.violations().empty());
}

TEST(FaultRecovery, AssignRetriesExhaustedFallBackToRediscovery) {
  TestGrid g;
  g.config.initiator_self_candidate = false;
  g.config.assign_ack = true;
  g.config.assign_ack_timeout = 5_s;
  g.config.assign_max_retries = 2;
  g.config.failsafe = true;
  g.add_node(SchedulerKind::kFcfs, 1.0);
  auto& winner = g.add_node(SchedulerKind::kFcfs, 5.0);  // dies for good
  g.add_node(SchedulerKind::kFcfs, 2.0);                 // fallback
  g.connect_all();

  auto job = g.make_job(1_h);
  const JobId id = job.id;
  g.node(0).submit(std::move(job));
  g.run_for(1_s + 5_ms);
  winner.crash();  // original ASSIGN and every retransmission vanish

  g.run_for(6_h);
  const JobRecord* rec = g.tracker.find(id);
  ASSERT_NE(rec, nullptr);
  EXPECT_TRUE(rec->done());
  EXPECT_EQ(rec->executor, NodeId{2});
  EXPECT_EQ(g.node(0).counters().assign_retries, 2u);
  EXPECT_GE(g.node(0).counters().assign_rediscoveries, 1u);
  EXPECT_GE(rec->recoveries, 1u);
  EXPECT_TRUE(g.tracker.violations().empty());
}

TEST(FaultRecovery, DuplicatedAssignIsIdempotent) {
  // A network-duplicated ASSIGN must not queue the job twice. Drive the
  // duplication through the real fault plane at probability 1.
  TestGrid g;
  g.config.initiator_self_candidate = false;
  g.config.assign_ack = true;
  g.add_node(SchedulerKind::kFcfs, 1.0);
  g.add_node(SchedulerKind::kFcfs, 5.0);  // wins the bid, gets the ASSIGN
  g.connect_all();

  sim::FaultConfig fc;
  fc.enabled = true;
  fc.seed = 21;
  fc.duplicate = 1.0;
  sim::FaultPlane plane{fc};
  g.net().set_fault_plane(&plane);

  auto job = g.make_job(1_h);
  const JobId id = job.id;
  g.node(0).submit(std::move(job));
  g.run_for(4_h);
  g.net().set_fault_plane(nullptr);

  const JobRecord* rec = g.tracker.find(id);
  ASSERT_NE(rec, nullptr);
  EXPECT_TRUE(rec->done());
  EXPECT_EQ(rec->assignments.size(), 1u);
  EXPECT_GT(g.net().duplicated_messages(), 0u);
  EXPECT_TRUE(g.tracker.violations().empty());
}

// ---------------------------------------------------------------------------
// End to end: GridSimulation under loss + churn
// ---------------------------------------------------------------------------

workload::ScenarioConfig small_scenario() {
  workload::ScenarioConfig cfg = workload::scenario_by_name("iMixed");
  cfg.node_count = 25;
  cfg.job_count = 40;
  cfg.submission_start = 5_min;
  cfg.submission_interval = 30_s;
  cfg.horizon = 24_h;
  return cfg;
}

TEST(FaultRecovery, LossAndChurnLeaveNoJobStranded) {
  workload::ScenarioConfig cfg = small_scenario();
  cfg.faults.enabled = true;
  cfg.faults.seed = 0xFA;
  cfg.faults.loss = 0.05;
  cfg.faults.churn = sim::FaultConfig::Churn{
      .mean_uptime = 3_h, .mean_downtime = 15_min,
      .node_fraction = 0.2, .start = 30_min};
  cfg.aria.failsafe = true;
  cfg.aria.assign_ack = true;

  const workload::RunResult r = workload::run_scenario(cfg, 5);

  EXPECT_TRUE(r.faults_enabled);
  EXPECT_GT(r.faults.lost, 0u);
  EXPECT_GT(r.faults.crashes, 0u);
  EXPECT_GE(r.faults.crashes, r.faults.restarts);
  // Counter reconciliation: network tallies == plane schedule.
  EXPECT_EQ(r.faulted_messages, r.faults.injected_drops());
  EXPECT_EQ(r.duplicated_messages, r.faults.duplicated);
  // The headline guarantee: every submitted job reached a terminal state.
  EXPECT_EQ(r.stranded(), 0u);
  EXPECT_TRUE(r.tracker.violations().empty());
}

TEST(FaultRecovery, SameFaultSeedReproducesTheRun) {
  workload::ScenarioConfig cfg = small_scenario();
  cfg.faults.enabled = true;
  cfg.faults.seed = 0xD0;
  cfg.faults.loss = 0.03;
  cfg.aria.assign_ack = true;

  const workload::RunResult a = workload::run_scenario(cfg, 9);
  const workload::RunResult b = workload::run_scenario(cfg, 9);
  EXPECT_EQ(a.completed(), b.completed());
  EXPECT_EQ(a.events_fired, b.events_fired);
  EXPECT_EQ(a.faults.lost, b.faults.lost);
  EXPECT_EQ(a.traffic.total().messages, b.traffic.total().messages);
  EXPECT_EQ(a.traffic.total().bytes, b.traffic.total().bytes);
}

TEST(FaultRecovery, QuietFaultPlaneIsByteIdenticalToFaultFree) {
  // Regression for the determinism contract: enabling the plane with every
  // rate at zero must not move a single event or byte.
  workload::ScenarioConfig off = small_scenario();
  workload::ScenarioConfig quiet = small_scenario();
  quiet.faults.enabled = true;
  quiet.faults.seed = 0xBEEF;  // seed irrelevant: no draws ever happen

  const workload::RunResult a = workload::run_scenario(off, 3);
  const workload::RunResult b = workload::run_scenario(quiet, 3);

  EXPECT_FALSE(a.faults_enabled);
  EXPECT_TRUE(b.faults_enabled);
  EXPECT_EQ(b.faults.lost, 0u);
  EXPECT_EQ(a.completed(), b.completed());
  EXPECT_EQ(a.events_fired, b.events_fired);
  EXPECT_EQ(a.tracker.total_reschedules(), b.tracker.total_reschedules());
  EXPECT_EQ(a.traffic.total().messages, b.traffic.total().messages);
  EXPECT_EQ(a.traffic.total().bytes, b.traffic.total().bytes);
  EXPECT_EQ(a.tracker.submitted_count(), b.tracker.submitted_count());
}

}  // namespace
}  // namespace aria::proto
