// Parameterized property suites: protocol invariants must hold for every
// scenario of Table II and across scheduler kinds and seeds.
#include <gtest/gtest.h>

#include "workload/engine.hpp"
#include "workload/scenario.hpp"

namespace aria::workload {
namespace {

using namespace aria::literals;

ScenarioConfig downsize(ScenarioConfig c) {
  c.node_count = 30;
  c.job_count = 20;
  c.submission_start = 1_min;
  c.submission_interval = 15_s;
  c.horizon = 20_h;
  if (c.expansion) {
    c.expansion->start = 5_min;
    c.expansion->mean_interval = 1_min;
    c.expansion->target_node_count = 40;
  }
  return c;
}

// ---------------------------------------------------------------------------
// Property: every Table II scenario runs clean at small scale.
// ---------------------------------------------------------------------------

class EveryScenario : public ::testing::TestWithParam<std::string> {};

TEST_P(EveryScenario, CompletesAllJobsWithoutViolations) {
  const ScenarioConfig cfg = downsize(scenario_by_name(GetParam()));
  GridSimulation sim{cfg, 42};
  const RunResult r = sim.run();

  EXPECT_EQ(r.completed(), cfg.job_count) << GetParam();
  EXPECT_TRUE(r.tracker.violations().empty())
      << GetParam() << ": " << r.tracker.violations().front();
  EXPECT_EQ(r.tracker.unschedulable_count(), 0u);

  for (const auto& [id, rec] : r.tracker.records()) {
    ASSERT_TRUE(rec.done());
    // Lifecycle sanity.
    EXPECT_FALSE(rec.assignments.empty());
    EXPECT_GE(rec.waiting_time(), 0_s);
    EXPECT_GT(rec.execution_time(), 0_s);
    EXPECT_EQ(rec.executor, rec.assignments.back().first);
    // The executor must actually satisfy the job's requirements.
    const proto::AriaNode* executor = sim.node(rec.executor);
    ASSERT_NE(executor, nullptr);
    EXPECT_TRUE(grid::satisfies(executor->profile(), rec.spec.requirements,
                                executor->virtual_org()))
        << GetParam() << " job " << id.to_string();
    // Deadline jobs only run in deadline scenarios and vice versa.
    EXPECT_EQ(rec.has_deadline(), cfg.deadline_scenario());
    // Assignment chain is time-monotone.
    for (std::size_t i = 1; i < rec.assignments.size(); ++i) {
      EXPECT_LE(rec.assignments[i - 1].second, rec.assignments[i].second);
    }
    EXPECT_LE(rec.submitted, *rec.started);
    EXPECT_LT(*rec.started, *rec.completed);
  }
}

std::vector<std::string> all_names() {
  std::vector<std::string> names;
  for (const auto& s : all_scenarios()) names.push_back(s.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(TableII, EveryScenario,
                         ::testing::ValuesIn(all_names()),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------------
// Property: invariants hold across seeds and scheduler mixes.
// ---------------------------------------------------------------------------

struct MixCase {
  std::string label;
  std::vector<sched::SchedulerKind> mix;
  bool deadlines;
};

class MixAndSeed
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(MixAndSeed, InvariantsHold) {
  static const MixCase kCases[] = {
      {"fcfs", {sched::SchedulerKind::kFcfs}, false},
      {"sjf", {sched::SchedulerKind::kSjf}, false},
      {"mixed",
       {sched::SchedulerKind::kFcfs, sched::SchedulerKind::kSjf},
       false},
      {"edf", {sched::SchedulerKind::kEdf}, true},
      {"priority", {sched::SchedulerKind::kPriority}, false},
      {"fairsjf", {sched::SchedulerKind::kFairSjf}, false},
  };
  const auto& [case_index, seed] = GetParam();
  const MixCase& mc = kCases[static_cast<std::size_t>(case_index)];

  ScenarioConfig cfg = downsize(scenario_by_name("iMixed"));
  cfg.scheduler_mix = mc.mix;
  if (mc.deadlines) cfg.jobs.deadline_slack_mean = 450_min;

  GridSimulation sim{cfg, seed};
  const RunResult r = sim.run();
  EXPECT_EQ(r.completed(), cfg.job_count) << mc.label << " seed " << seed;
  EXPECT_TRUE(r.tracker.violations().empty()) << mc.label << " seed " << seed;

  // Conservation: submissions = completions (nothing lost or duplicated).
  EXPECT_EQ(r.tracker.submitted_count(), cfg.job_count);

  // No node still holds queued work after everything completed.
  for (proto::AriaNode* node : sim.all_nodes()) {
    EXPECT_FALSE(node->executing());
    EXPECT_EQ(node->queue_length(), 0u);
  }
}

std::string mix_case_name(
    const ::testing::TestParamInfo<std::tuple<int, std::uint64_t>>& info) {
  static const char* kLabels[] = {"fcfs", "sjf",      "mixed",
                                  "edf",  "priority", "fairsjf"};
  return std::string(kLabels[std::get<0>(info.param)]) + "_seed" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(Sweep, MixAndSeed,
                         ::testing::Combine(::testing::Range(0, 6),
                                            ::testing::Values(std::uint64_t{1},
                                                              std::uint64_t{2},
                                                              std::uint64_t{3})),
                         mix_case_name);

// ---------------------------------------------------------------------------
// Property: rescheduling never hurts the jobs it moves.
// ---------------------------------------------------------------------------

TEST(RescheduleProperty, MovedJobsStillSatisfyRequirements) {
  ScenarioConfig cfg = downsize(scenario_by_name("iMixed"));
  cfg.job_count = 40;
  cfg.submission_interval = 5_s;  // enough contention to force reschedules
  GridSimulation sim{cfg, 99};
  const RunResult r = sim.run();
  ASSERT_GT(r.tracker.total_reschedules(), 0u);  // the property is exercised
  for (const auto& [id, rec] : r.tracker.records()) {
    for (const auto& [node, at] : rec.assignments) {
      const proto::AriaNode* holder = sim.node(node);
      ASSERT_NE(holder, nullptr);
      EXPECT_TRUE(grid::satisfies(holder->profile(), rec.spec.requirements,
                                  holder->virtual_org()));
    }
  }
}

TEST(RescheduleProperty, EveryRescheduledJobStartsExactlyOnce) {
  ScenarioConfig cfg = downsize(scenario_by_name("iMixed"));
  cfg.job_count = 40;
  cfg.submission_interval = 5_s;
  const RunResult r = run_scenario(cfg, 7);
  std::size_t moved = 0;
  for (const auto& [id, rec] : r.tracker.records()) {
    if (rec.reschedule_count() > 0) ++moved;
    EXPECT_TRUE(rec.done());
  }
  EXPECT_GT(moved, 0u);
  EXPECT_TRUE(r.tracker.violations().empty());
}

}  // namespace
}  // namespace aria::workload
