// Targeted fault injection (docs/faults.md "Targeted faults"): role-aimed
// churn against aggregator candidates, region-aligned partitions, and
// message-class fault bias. The contracts mirror the untargeted plane's:
// inert plans are draw-for-draw invisible (byte-identical runs), armed plans
// hit exactly who they aim at, and every chaos run replays exactly.
#include <gtest/gtest.h>

#include "sim/fault.hpp"
#include "workload/cli.hpp"
#include "workload/engine.hpp"
#include "workload/scenario.hpp"

namespace aria::proto {
namespace {

using namespace aria::literals;

workload::ScenarioConfig small_grid() {
  workload::ScenarioConfig cfg = workload::scenario_by_name("iMixed");
  cfg.node_count = 60;
  cfg.job_count = 80;
  return cfg;
}

workload::ScenarioConfig hier_scenario() {
  workload::ScenarioConfig cfg = small_grid();
  cfg.aria.hierarchy.enabled = true;
  cfg.aria.hierarchy.region_count = 4;
  return cfg;
}

// ---------------------------------------------------------------------------
// churn_target: the stateless victim predicate
// ---------------------------------------------------------------------------

TEST(TargetedFault, ChurnTargetSelectsCandidateRanksOnly) {
  sim::FaultConfig fc;
  fc.enabled = true;
  fc.region_count = 4;
  fc.targeted_churn = sim::FaultConfig::TargetedChurn{};
  fc.targeted_churn->ranks = 2;
  const sim::FaultPlane plane{fc};

  // Candidate k of region r is node r + k*4: ranks {0,1} are nodes 0..7.
  for (std::uint32_t n = 0; n < 8; ++n) {
    EXPECT_TRUE(plane.churn_target(NodeId{n})) << n;
  }
  for (std::uint32_t n = 8; n < 20; ++n) {
    EXPECT_FALSE(plane.churn_target(NodeId{n})) << n;
  }
}

TEST(TargetedFault, ChurnTargetHonoursTheRegionRestriction) {
  sim::FaultConfig fc;
  fc.enabled = true;
  fc.region_count = 4;
  fc.targeted_churn = sim::FaultConfig::TargetedChurn{};
  fc.targeted_churn->ranks = 2;
  fc.targeted_churn->regions = {1, 3};
  const sim::FaultPlane plane{fc};

  EXPECT_TRUE(plane.churn_target(NodeId{1}));   // region 1 rank 0
  EXPECT_TRUE(plane.churn_target(NodeId{7}));   // region 3 rank 1
  EXPECT_FALSE(plane.churn_target(NodeId{0}));  // region 0: not listed
  EXPECT_FALSE(plane.churn_target(NodeId{2}));  // region 2: not listed
}

TEST(TargetedFault, ZeroRanksAndZeroRegionCountAreInert) {
  sim::FaultConfig fc;
  fc.enabled = true;
  fc.region_count = 4;
  fc.targeted_churn = sim::FaultConfig::TargetedChurn{};
  fc.targeted_churn->ranks = 0;
  EXPECT_FALSE(sim::FaultPlane{fc}.churn_target(NodeId{0}));

  fc.targeted_churn->ranks = 2;
  fc.region_count = 0;  // hierarchy off: no candidates exist to target
  EXPECT_FALSE(sim::FaultPlane{fc}.churn_target(NodeId{0}));
}

// ---------------------------------------------------------------------------
// Bias: draw parity and per-class rates
// ---------------------------------------------------------------------------

TEST(TargetedFault, BiasedRatesMultiplyAndSaturate) {
  sim::FaultConfig fc;
  fc.enabled = true;
  fc.loss = 0.02;
  fc.duplicate = 0.01;
  fc.message_bias.push_back({"REGION_DIGEST", 25.0, 2.0});
  fc.message_bias.push_back({"REGION_LOAD", 100.0, 1.0});
  const sim::FaultPlane plane{fc};

  const auto digest =
      plane.biased_rates(proto::RegionDigestMsg::static_type());
  EXPECT_DOUBLE_EQ(digest.first, 0.5);    // 0.02 * 25
  EXPECT_DOUBLE_EQ(digest.second, 0.02);  // 0.01 * 2
  const auto load = plane.biased_rates(proto::RegionLoadMsg::static_type());
  EXPECT_DOUBLE_EQ(load.first, 1.0);      // 0.02 * 100 saturates at 1
  const auto request = plane.biased_rates(proto::RequestMsg::static_type());
  EXPECT_DOUBLE_EQ(request.first, 0.02);  // unbiased classes keep base rates
  EXPECT_DOUBLE_EQ(request.second, 0.01);
}

TEST(TargetedFault, UnityBiasIsDrawForDrawInvisible) {
  // A multiplier of 1 folds into the same probability before the same
  // single draw, so the whole run must be bitwise identical.
  workload::ScenarioConfig cfg = hier_scenario();
  cfg.faults.enabled = true;
  cfg.faults.seed = 0xB1A5;
  cfg.faults.loss = 0.02;
  cfg.faults.duplicate = 0.01;
  const workload::RunResult base = workload::run_scenario(cfg, 41);

  cfg.faults.message_bias.push_back({"REGION_DIGEST", 1.0, 1.0});
  cfg.faults.message_bias.push_back({"REQUEST", 1.0, 1.0});
  const workload::RunResult r = workload::run_scenario(cfg, 41);

  EXPECT_EQ(r.events_fired, base.events_fired);
  EXPECT_EQ(r.completed(), base.completed());
  EXPECT_EQ(r.faults.lost, base.faults.lost);
  EXPECT_EQ(r.faults.duplicated, base.faults.duplicated);
  EXPECT_EQ(r.traffic.total().messages, base.traffic.total().messages);
  EXPECT_EQ(r.traffic.total().bytes, base.traffic.total().bytes);
}

TEST(TargetedFault, DigestStarvationHitsOnlyThatClass) {
  workload::ScenarioConfig cfg = hier_scenario();
  cfg.aria.failsafe = true;     // background loss can eat ASSIGN/NOTIFY
  cfg.aria.assign_ack = true;
  cfg.faults.enabled = true;
  cfg.faults.seed = 0xB1A6;
  cfg.faults.loss = 0.02;
  const workload::RunResult base = workload::run_scenario(cfg, 43);

  cfg.faults.message_bias.push_back({"REGION_DIGEST", 25.0, 1.0});
  const workload::RunResult r = workload::run_scenario(cfg, 43);

  // 25x on a 2% base rate halves the digests that land (loss 0.5), yet
  // nothing strands — empty tables only mean discovery stays region-local.
  EXPECT_LT(r.digests_received, (base.digests_received * 6) / 10);
  EXPECT_EQ(r.stranded(), 0u);
  EXPECT_TRUE(r.tracker.violations().empty());
}

// ---------------------------------------------------------------------------
// Targeted churn end to end
// ---------------------------------------------------------------------------

TEST(TargetedFault, AggregatorChurnCrashesOnlyCandidatesAndStrandsNothing) {
  workload::ScenarioConfig cfg = hier_scenario();
  cfg.aria.failsafe = true;
  cfg.faults.enabled = true;
  cfg.faults.seed = 0x7A26;
  cfg.faults.targeted_churn = sim::FaultConfig::TargetedChurn{};
  cfg.faults.targeted_churn->ranks = 2;

  const workload::RunResult a = workload::run_scenario(cfg, 47);
  const workload::RunResult b = workload::run_scenario(cfg, 47);

  ASSERT_TRUE(a.faults_enabled);
  EXPECT_GT(a.faults.targeted_crashes, 0u);
  // Every crash came from the targeted plan (no untargeted churn armed).
  EXPECT_EQ(a.faults.crashes, a.faults.targeted_crashes);
  EXPECT_EQ(a.stranded(), 0u);
  EXPECT_TRUE(a.tracker.violations().empty());

  // Same-seed chaos replays byte for byte.
  EXPECT_EQ(a.events_fired, b.events_fired);
  EXPECT_EQ(a.faults.targeted_crashes, b.faults.targeted_crashes);
  EXPECT_EQ(a.traffic.total().messages, b.traffic.total().messages);
  EXPECT_EQ(a.traffic.total().bytes, b.traffic.total().bytes);
}

// ---------------------------------------------------------------------------
// Region-aligned partitions
// ---------------------------------------------------------------------------

TEST(TargetedFault, RegionPartitionSeversThenHeals) {
  workload::ScenarioConfig cfg = hier_scenario();
  cfg.aria.failsafe = true;
  cfg.faults.enabled = true;
  cfg.faults.seed = 0x9A27;
  cfg.faults.region_partitions.push_back(
      {/*region=*/1, /*start=*/60_min, /*duration=*/45_min});

  const workload::RunResult a = workload::run_scenario(cfg, 53);
  const workload::RunResult b = workload::run_scenario(cfg, 53);

  ASSERT_TRUE(a.faults_enabled);
  // The window actually blocked cross-boundary traffic...
  EXPECT_GT(a.faults.partition_drops, 0u);
  // ...and after the heal the failsafe pulled every job through.
  EXPECT_EQ(a.stranded(), 0u);
  EXPECT_TRUE(a.tracker.violations().empty());

  EXPECT_EQ(a.events_fired, b.events_fired);
  EXPECT_EQ(a.faults.partition_drops, b.faults.partition_drops);
  EXPECT_EQ(a.traffic.total().bytes, b.traffic.total().bytes);
}

TEST(TargetedFault, RegionPartitionIsInertWithoutARegionCount) {
  // region_count 0 = hierarchy off: the window exists but can never split
  // the stateless n % R map, so the run equals the unpartitioned one.
  workload::ScenarioConfig cfg = small_grid();
  cfg.faults.enabled = true;
  cfg.faults.seed = 0x9A28;
  cfg.faults.loss = 0.02;
  const workload::RunResult base = workload::run_scenario(cfg, 59);

  cfg.faults.region_partitions.push_back({1, 60_min, 45_min});
  const workload::RunResult r = workload::run_scenario(cfg, 59);

  EXPECT_EQ(r.faults.partition_drops, 0u);
  EXPECT_EQ(r.events_fired, base.events_fired);
  EXPECT_EQ(r.traffic.total().messages, base.traffic.total().messages);
  EXPECT_EQ(r.traffic.total().bytes, base.traffic.total().bytes);
}

// ---------------------------------------------------------------------------
// Inert CLI knobs against the recorded goldens
// ---------------------------------------------------------------------------

TEST(TargetedFault, ZeroedCliKnobsReproduceTheGolden) {
  // Every new flag on the command line, all of them zeroed (plus --audit,
  // which must be metric-inert): the run reproduces the exact golden
  // constants determinism_test.cpp pinned for this workload.
  workload::CliOptions o;
  ASSERT_FALSE(workload::parse_cli(
                   {"--target-churn", "0", "--region-partition", "1,60,0",
                    "--msg-fault-bias", "REGION_DIGEST:1,1", "--audit"},
                   o)
                   .has_value());
  EXPECT_FALSE(o.any_faults());
  workload::ScenarioConfig cfg = workload::resolve_scenario(o);
  cfg.node_count = 60;
  cfg.job_count = 80;
  cfg.submission_interval = cfg.submission_interval / 2;
  cfg.horizon = Duration::hours(30);
  const workload::RunResult r = workload::run_scenario(cfg, 42);

  // The same pins as Determinism.GoldenRunMatchesRecordedKernelBehaviour.
  EXPECT_EQ(r.completed(), 80u);
  EXPECT_EQ(r.events_fired, 91929u);
  EXPECT_EQ(r.traffic.total().messages, 67226u);
  EXPECT_EQ(r.traffic.total().bytes, 68025856u);
  EXPECT_EQ(r.tracker.total_reschedules(), 37u);
  EXPECT_EQ(r.audit_violations, 0u);
}

}  // namespace
}  // namespace aria::proto
