// Adversarial-node plane (docs/adversary.md): deterministic misbehavior
// injection (underbid, blackhole, freeride, poison) and the defense plane
// that answers it (reputation-weighted bidding, suspicion filtering,
// revoke-then-hedge re-dispatch, digest clamping). The contracts mirror the
// fault plane's: inert plans are draw-for-draw invisible (byte-identical
// runs), armed plans misbehave exactly as designated, every adversarial run
// replays exactly — and the defended grid strands nothing and audits clean.
#include <gtest/gtest.h>

#include "sim/fault.hpp"
#include "workload/cli.hpp"
#include "workload/engine.hpp"
#include "workload/scenario.hpp"

namespace aria::proto {
namespace {

using namespace aria::literals;
using Role = sim::FaultConfig::Adversary::Role;

workload::ScenarioConfig small_grid() {
  workload::ScenarioConfig cfg = workload::scenario_by_name("iMixed");
  cfg.node_count = 60;
  cfg.job_count = 80;
  return cfg;
}

workload::ScenarioConfig hier_scenario() {
  workload::ScenarioConfig cfg = small_grid();
  cfg.aria.hierarchy.enabled = true;
  cfg.aria.hierarchy.region_count = 4;
  return cfg;
}

/// Arms the adversary plan on `cfg` the way the CLI does: faults master
/// switch on, failsafe on (a lying grid needs crash recovery machinery).
void arm_adversaries(workload::ScenarioConfig& cfg, double fraction,
                     std::vector<Role> roles, std::uint64_t seed = 0) {
  cfg.faults.enabled = true;
  cfg.faults.adversary = sim::FaultConfig::Adversary{};
  cfg.faults.adversary->fraction = fraction;
  cfg.faults.adversary->roles = std::move(roles);
  cfg.faults.adversary->seed = seed;
  cfg.aria.failsafe = true;
}

// ---------------------------------------------------------------------------
// adversary_role: the stateless designation predicate
// ---------------------------------------------------------------------------

TEST(Adversary, DesignationIsStatelessFractionBoundedAndRoleClosed) {
  sim::FaultConfig fc;
  fc.enabled = true;
  fc.adversary = sim::FaultConfig::Adversary{};
  fc.adversary->fraction = 0.3;
  fc.adversary->roles = {Role::kUnderbid, Role::kBlackhole, Role::kFreeride,
                         Role::kPoison};
  fc.adversary->seed = 0xCAFE;
  const sim::FaultPlane plane{fc};
  const sim::FaultPlane twin{fc};

  std::size_t designated = 0;
  for (std::uint32_t n = 0; n < 2000; ++n) {
    const auto role = plane.adversary_role(NodeId{n});
    // Pure function of the config: a twin plane (no shared state, no RNG
    // draws consumed) agrees on every node.
    EXPECT_EQ(role, twin.adversary_role(NodeId{n})) << n;
    if (role) ++designated;
  }
  // fraction 0.3 of 2000: the stateless hash lands near 600.
  EXPECT_GT(designated, 480u);
  EXPECT_LT(designated, 720u);

  // A single-role plan only ever hands out that role.
  fc.adversary->roles = {Role::kBlackhole};
  const sim::FaultPlane mono{fc};
  for (std::uint32_t n = 0; n < 500; ++n) {
    const auto role = mono.adversary_role(NodeId{n});
    if (role) EXPECT_EQ(*role, Role::kBlackhole) << n;
  }
}

TEST(Adversary, ZeroFractionAndEmptyRoleListAreInert) {
  sim::FaultConfig fc;
  fc.enabled = true;
  fc.adversary = sim::FaultConfig::Adversary{};
  fc.adversary->seed = 0xCAFE;

  fc.adversary->fraction = 0.0;
  fc.adversary->roles = {Role::kUnderbid};
  for (std::uint32_t n = 0; n < 200; ++n) {
    EXPECT_FALSE(sim::FaultPlane{fc}.adversary_role(NodeId{n})) << n;
  }

  fc.adversary->fraction = 1.0;
  fc.adversary->roles = {};  // no roles to assume
  for (std::uint32_t n = 0; n < 200; ++n) {
    EXPECT_FALSE(sim::FaultPlane{fc}.adversary_role(NodeId{n})) << n;
  }
}

// ---------------------------------------------------------------------------
// Inert plans are byte-identical
// ---------------------------------------------------------------------------

TEST(Adversary, InertAdversaryPlanIsByteIdentical) {
  // An attached plan with fraction 0 designates nobody, consumes no RNG
  // draws, and changes no code path: the run must be bitwise identical to
  // one without the plan (the zeroed-knobs contract every plane honours).
  workload::ScenarioConfig cfg = small_grid();
  cfg.faults.enabled = true;
  cfg.faults.seed = 0xAD00;
  cfg.faults.loss = 0.02;
  cfg.aria.failsafe = true;
  const workload::RunResult base = workload::run_scenario(cfg, 61);

  cfg.faults.adversary = sim::FaultConfig::Adversary{};
  cfg.faults.adversary->fraction = 0.0;
  cfg.faults.adversary->roles = {Role::kUnderbid, Role::kBlackhole};
  const workload::RunResult r = workload::run_scenario(cfg, 61);

  EXPECT_FALSE(r.adversaries_enabled);
  EXPECT_EQ(r.adversary_count, 0u);
  EXPECT_EQ(r.events_fired, base.events_fired);
  EXPECT_EQ(r.completed(), base.completed());
  EXPECT_EQ(r.traffic.total().messages, base.traffic.total().messages);
  EXPECT_EQ(r.traffic.total().bytes, base.traffic.total().bytes);
}

TEST(Adversary, DisabledDefensePlaneIsByteIdentical) {
  // Tuning DefenseParams while enabled stays false must change nothing:
  // no ledger exists, rankings are the plain lowest-cost rule.
  workload::ScenarioConfig cfg = small_grid();
  const workload::RunResult base = workload::run_scenario(cfg, 67);

  cfg.aria.defense.reputation_alpha = 0.9;
  cfg.aria.defense.suspicion_threshold = 0.99;
  cfg.aria.defense.straggler_factor = 1.0;
  cfg.aria.defense.hedge_budget = 5;
  const workload::RunResult r = workload::run_scenario(cfg, 67);

  EXPECT_FALSE(r.defense_enabled);
  EXPECT_EQ(r.events_fired, base.events_fired);
  EXPECT_EQ(r.traffic.total().messages, base.traffic.total().messages);
  EXPECT_EQ(r.traffic.total().bytes, base.traffic.total().bytes);
}

// ---------------------------------------------------------------------------
// Each role misbehaves as designated
// ---------------------------------------------------------------------------

TEST(Adversary, UnderbiddersLieOnTheWire) {
  workload::ScenarioConfig cfg = small_grid();
  arm_adversaries(cfg, 0.2, {Role::kUnderbid});
  const workload::RunResult r = workload::run_scenario(cfg, 71);

  ASSERT_TRUE(r.adversaries_enabled);
  EXPECT_GT(r.adversary_count, 0u);
  EXPECT_GT(r.adv_underbids, 0u);
  // Underbidders run what they win (slowly); nothing strands.
  EXPECT_EQ(r.stranded(), 0u);
  EXPECT_TRUE(r.tracker.violations().empty());
}

TEST(Adversary, BlackholesSwallowAssignsButTheFailsafeRecovers) {
  workload::ScenarioConfig cfg = small_grid();
  arm_adversaries(cfg, 0.2, {Role::kBlackhole});
  cfg.aria.assign_ack = true;  // the ACK is the lie: queued, then dropped
  const workload::RunResult r = workload::run_scenario(cfg, 73);

  ASSERT_TRUE(r.adversaries_enabled);
  EXPECT_GT(r.adv_assigns_swallowed, 0u);
  // Every swallowed job came back through the watchdog re-flood.
  EXPECT_EQ(r.stranded(), 0u);
  EXPECT_TRUE(r.tracker.violations().empty());
}

TEST(Adversary, FreeridersDeflateTheirAdvertisements) {
  workload::ScenarioConfig cfg = small_grid();
  arm_adversaries(cfg, 0.25, {Role::kFreeride});
  const workload::RunResult r = workload::run_scenario(cfg, 79);

  ASSERT_TRUE(r.adversaries_enabled);
  EXPECT_GT(r.adv_informs_deflated, 0u);
  EXPECT_EQ(r.stranded(), 0u);
}

TEST(Adversary, PoisonersInflateDigestsAndTheClampRejectsThem) {
  workload::ScenarioConfig cfg = hier_scenario();
  arm_adversaries(cfg, 0.5, {Role::kPoison}, /*seed=*/0xAD01);
  cfg.audit.enabled = true;
  const workload::RunResult undefended = workload::run_scenario(cfg, 83);

  ASSERT_TRUE(undefended.adversaries_enabled);
  EXPECT_GT(undefended.adv_digests_poisoned, 0u);
  // The auditor knows who was designated: poisoned digests land in the
  // informational expected-adversary counter, not in the violation total.
  EXPECT_EQ(undefended.audit_violations, 0u);

  cfg.aria.defense.enabled = true;
  const workload::RunResult defended = workload::run_scenario(cfg, 83);
  EXPECT_GT(defended.digests_clamped, 0u);
  EXPECT_EQ(defended.audit_violations, 0u);
  EXPECT_EQ(defended.stranded(), 0u);
}

// ---------------------------------------------------------------------------
// Replay and defense end to end
// ---------------------------------------------------------------------------

TEST(Adversary, SameSeedCocktailReplaysByteIdentically) {
  workload::ScenarioConfig cfg = hier_scenario();
  arm_adversaries(
      cfg, 0.2,
      {Role::kUnderbid, Role::kBlackhole, Role::kFreeride, Role::kPoison});
  cfg.aria.defense.enabled = true;
  cfg.aria.assign_ack = true;
  cfg.audit.enabled = true;

  const workload::RunResult a = workload::run_scenario(cfg, 89);
  const workload::RunResult b = workload::run_scenario(cfg, 89);

  EXPECT_EQ(a.adversary_count, b.adversary_count);
  EXPECT_EQ(a.adv_underbids, b.adv_underbids);
  EXPECT_EQ(a.adv_assigns_swallowed, b.adv_assigns_swallowed);
  EXPECT_EQ(a.adv_digests_poisoned, b.adv_digests_poisoned);
  EXPECT_EQ(a.offers_distrusted, b.offers_distrusted);
  EXPECT_EQ(a.hedges_dispatched, b.hedges_dispatched);
  EXPECT_EQ(a.events_fired, b.events_fired);
  EXPECT_EQ(a.traffic.total().messages, b.traffic.total().messages);
  EXPECT_EQ(a.traffic.total().bytes, b.traffic.total().bytes);
}

TEST(Adversary, DefendedCocktailFiltersOffersAndAuditsClean) {
  workload::ScenarioConfig cfg = hier_scenario();
  arm_adversaries(
      cfg, 0.2,
      {Role::kUnderbid, Role::kBlackhole, Role::kFreeride, Role::kPoison});
  cfg.aria.defense.enabled = true;
  cfg.aria.assign_ack = true;
  cfg.audit.enabled = true;
  const workload::RunResult r = workload::run_scenario(cfg, 97);

  ASSERT_TRUE(r.defense_enabled);
  // The ledger convicted repeat offenders and the ranking skipped them.
  EXPECT_GT(r.offers_distrusted, 0u);
  // The acceptance bar of docs/adversary.md: nothing strands, the online
  // auditor sees no invariant violation, the lifecycle tracker agrees.
  EXPECT_EQ(r.stranded(), 0u);
  EXPECT_EQ(r.audit_violations, 0u);
  EXPECT_TRUE(r.tracker.violations().empty());
}

TEST(Adversary, HedgedRedispatchFiresButNeverDoubleRuns) {
  // Tight straggler screws so revoke-then-hedge actually triggers: a
  // blackhole ACKs the ASSIGN and sits on the job, the quoted-ETTC deadline
  // expires, the revoke goes unanswered, and the initiator hedges onto the
  // runner-up. The auditor's hedge-budget and duplicate-completion checks
  // prove on the wire that no job ran twice and no budget was exceeded.
  workload::ScenarioConfig cfg = small_grid();
  arm_adversaries(cfg, 0.3, {Role::kBlackhole});
  cfg.aria.assign_ack = true;
  cfg.aria.defense.enabled = true;
  cfg.aria.defense.straggler_factor = 1.0;
  cfg.aria.defense.straggler_min_overdue = 1_min;
  cfg.aria.defense.hedge_budget = 1;
  cfg.audit.enabled = true;
  const workload::RunResult r = workload::run_scenario(cfg, 101);

  ASSERT_TRUE(r.defense_enabled);
  EXPECT_GT(r.stragglers_detected, 0u);
  EXPECT_GT(r.revokes_sent, 0u);
  EXPECT_GT(r.hedges_dispatched, 0u);
  // Proof of single execution: zero audit violations means every completion
  // fit the 1 + recoveries + hedges budget and no hedge exceeded its cap.
  EXPECT_EQ(r.audit_violations, 0u);
  EXPECT_TRUE(r.tracker.violations().empty());
  EXPECT_EQ(r.stranded(), 0u);
}

TEST(Adversary, ZeroedCliKnobsReproduceTheGolden) {
  // Every new flag zeroed / defaulted: the run reproduces the exact golden
  // constants determinism_test.cpp pinned for this workload.
  workload::CliOptions o;
  ASSERT_FALSE(workload::parse_cli({"--adversaries", "0", "--adversary-roles",
                                    "underbid,blackhole,freeride,poison",
                                    "--adversary-seed", "7"},
                                   o)
                   .has_value());
  EXPECT_FALSE(o.any_faults());
  workload::ScenarioConfig cfg = workload::resolve_scenario(o);
  cfg.node_count = 60;
  cfg.job_count = 80;
  cfg.submission_interval = cfg.submission_interval / 2;
  cfg.horizon = Duration::hours(30);
  const workload::RunResult r = workload::run_scenario(cfg, 42);

  // The same pins as Determinism.GoldenRunMatchesRecordedKernelBehaviour.
  EXPECT_EQ(r.completed(), 80u);
  EXPECT_EQ(r.events_fired, 91929u);
  EXPECT_EQ(r.traffic.total().messages, 67226u);
  EXPECT_EQ(r.traffic.total().bytes, 68025856u);
  EXPECT_EQ(r.tracker.total_reschedules(), 37u);
}

}  // namespace
}  // namespace aria::proto
