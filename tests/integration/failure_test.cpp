// Failure injection: the protocol must degrade gracefully when nodes crash
// or messages are lost. The paper assumes a reliable substrate; these tests
// document the implementation's actual behaviour at the edges.
#include <gtest/gtest.h>

#include "tests/core/test_grid.hpp"

namespace aria::proto {
namespace {

using aria::test::TestGrid;
using namespace aria::literals;
using sched::SchedulerKind;

TEST(Failure, CrashedNodeDoesNotBid) {
  TestGrid g;
  g.add_node(SchedulerKind::kFcfs, 1.0);
  g.add_node(SchedulerKind::kFcfs, 5.0);  // would win, but crashed
  g.add_node(SchedulerKind::kFcfs, 2.0);
  g.connect_all();
  g.net().set_up(NodeId{1}, false);

  auto job = g.make_job(1_h);
  const JobId id = job.id;
  g.node(0).submit(std::move(job));
  g.run_for(10_s);

  const JobRecord* rec = g.tracker.find(id);
  ASSERT_EQ(rec->assignments.size(), 1u);
  EXPECT_EQ(rec->assignments[0].first, NodeId{2});
}

TEST(Failure, AssignToCrashedNodeLosesJobButNothingElse) {
  // A node that bids and then crashes before the ASSIGN arrives swallows
  // the job: the paper's failsafe (initiator notification) is future work,
  // so the job stays assigned-but-never-started. The rest of the grid must
  // keep operating and the tracker must stay consistent.
  TestGrid g;
  g.config.initiator_self_candidate = false;
  g.add_node(SchedulerKind::kFcfs, 1.0);
  auto& winner = g.add_node(SchedulerKind::kFcfs, 5.0);
  g.connect_all();

  auto doomed = g.make_job(1_h);
  const JobId doomed_id = doomed.id;
  g.node(0).submit(std::move(doomed));
  // Let the decision fire (accept_timeout = 1s), then crash the winner
  // while the ASSIGN is still in flight (10ms latency).
  g.run_for(1_s + 5_ms);
  g.net().set_up(winner.id(), false);
  g.run_for(1_min);

  // The ASSIGN was swallowed by the crash: the job is gone — never queued
  // anywhere (on_assigned fires at the receiving node), never started.
  const JobRecord* rec = g.tracker.find(doomed_id);
  EXPECT_TRUE(rec->assignments.empty());
  EXPECT_FALSE(rec->started.has_value());
  EXPECT_GE(g.net().dropped_messages(), 1u);

  // The grid still schedules new work.
  g.net().set_up(winner.id(), true);
  auto next = g.make_job(30_min);
  const JobId next_id = next.id;
  g.node(0).submit(std::move(next));
  g.run_for(3_h);
  EXPECT_TRUE(g.tracker.find(next_id)->done());
  EXPECT_TRUE(g.tracker.violations().empty());
}

TEST(Failure, StoppedNodeLeavesOverlayCleanly) {
  TestGrid g;
  g.add_node(SchedulerKind::kFcfs, 1.0);
  auto& leaver = g.add_node(SchedulerKind::kFcfs, 1.0);
  g.add_node(SchedulerKind::kFcfs, 1.0);
  g.connect_all();

  leaver.stop();
  g.topo.remove_node(leaver.id());
  EXPECT_FALSE(g.net().is_attached(leaver.id()));

  auto job = g.make_job(1_h);
  const JobId id = job.id;
  g.node(0).submit(std::move(job));
  g.run_for(2_h);
  ASSERT_TRUE(g.tracker.find(id)->done());
  EXPECT_NE(g.tracker.find(id)->executor, leaver.id());
  EXPECT_TRUE(g.tracker.violations().empty());
}

TEST(Failure, CrashDuringExecutionStallsOnlyThatJob) {
  TestGrid g;
  g.add_node(SchedulerKind::kFcfs, 1.0);
  auto& executor = g.add_node(SchedulerKind::kFcfs, 5.0);
  g.connect_all();

  auto job = g.make_job(2_h);
  const JobId id = job.id;
  g.node(0).submit(std::move(job));
  g.run_for(10_s);
  ASSERT_TRUE(executor.executing());

  // Hard-stop the executor: its completion event is cancelled.
  executor.stop();
  g.run_for(5_h);
  EXPECT_FALSE(g.tracker.find(id)->done());

  // Other nodes are unaffected.
  auto other = g.make_job(1_h);
  const JobId other_id = other.id;
  g.node(0).submit(std::move(other));
  g.run_for(2_h);
  EXPECT_TRUE(g.tracker.find(other_id)->done());
}

TEST(Failure, DownNodeDuringInformFloodIsSkipped) {
  TestGrid g;
  g.config.reschedule_threshold = 1_s;
  auto& busy = g.add_node(SchedulerKind::kFcfs, 1.0);
  g.add_node(SchedulerKind::kFcfs, 1.0);  // crashed alternative
  g.add_node(SchedulerKind::kFcfs, 1.0);  // healthy alternative
  g.connect_all();
  g.topo.remove_link(NodeId{0}, NodeId{1});
  g.topo.remove_link(NodeId{0}, NodeId{2});
  g.topo.remove_link(NodeId{1}, NodeId{2});

  auto j1 = g.make_job(2_h);
  auto j2 = g.make_job(2_h);
  const JobId queued_id = j2.id;
  busy.submit(std::move(j1));
  busy.submit(std::move(j2));
  g.run_for(5_s);
  ASSERT_EQ(busy.queue_length(), 1u);

  g.net().set_up(NodeId{1}, false);
  g.topo.add_link(NodeId{0}, NodeId{1});
  g.topo.add_link(NodeId{0}, NodeId{2});
  g.run_for(5_min);

  const JobRecord* rec = g.tracker.find(queued_id);
  ASSERT_EQ(rec->assignments.size(), 2u);
  EXPECT_EQ(rec->assignments[1].first, NodeId{2});  // healthy node won
  EXPECT_TRUE(g.tracker.violations().empty());
}

}  // namespace
}  // namespace aria::proto
